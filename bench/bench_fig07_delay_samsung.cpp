// Fig. 7 (a-d): mean per-packet transfer delay, analysis vs. experiment,
// on the Samsung Galaxy S-II, for AES256/3DES and GOP 30/50 (RTP/UDP).
#include "bench/common.hpp"

using namespace tv;

int main(int argc, char** argv) {
  const auto options = bench::BenchOptions::parse(argc, argv);
  bench::print_banner("Figure 7", "transfer latency, Samsung Galaxy S-II",
                      options);
  bench::BenchEngine engine{options};
  bench::run_delay_figure(engine, core::samsung_galaxy_s2(), options,
                          core::Transport::kRtpUdp);
  bench::print_expectation(
      "encrypting P-frame packets costs nearly as much delay as encrypting "
      "everything (P carries most of the bytes/packets), while I-only stays "
      "close to 'none'; 3DES inflates every encrypted level well beyond "
      "AES256, and fast motion amplifies all of it.  Analysis bars track "
      "the experiment.");
  engine.print_summary();
  return 0;
}
