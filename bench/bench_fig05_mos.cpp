// Fig. 5 (a,b): Mean Opinion Score at the eavesdropper's site for slow and
// fast motion flows, GOP 30 and 50 (EvalVid PSNR->MOS banding).
#include <cstdio>

#include "bench/common.hpp"

using namespace tv;

int main(int argc, char** argv) {
  const auto options = bench::BenchOptions::parse(argc, argv);
  bench::print_banner("Figure 5", "eavesdropper MOS vs. encryption level",
                      options);
  bench::WorkloadCache cache{options};
  const auto device = core::samsung_galaxy_s2();

  for (int gop : {30, 50}) {
    std::printf("\n(GOP=%d)\n", gop);
    std::printf("%-8s | %-14s %-14s\n", "level", "slow MOS", "fast MOS");
    for (const auto& pol :
         policy::headline_policies(crypto::Algorithm::kAes256)) {
      std::string row[2];
      for (bool fast : {false, true}) {
        const auto& workload = cache.get(bench::motion_for(fast), gop);
        const auto spec =
            bench::make_spec(workload, pol, device, options, true);
        const auto r = core::run_experiment(spec, workload);
        row[fast ? 1 : 0] = bench::fmt_ci(r.eavesdropper_mos, 2);
      }
      std::printf("%-8s | %-14s %-14s\n", policy::to_string(pol.mode),
                  row[0].c_str(), row[1].c_str());
    }
  }

  bench::print_expectation(
      "MOS drops to ~1 (unviewable) for every policy that encrypts "
      "I-frames; for slow motion even I-only reaches ~1, while for fast "
      "motion P-only is the more damaging single-class policy.");
  return 0;
}
