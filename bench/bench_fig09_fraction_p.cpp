// Fig. 9a: upload latency when encrypting all I-frame packets plus a
// fraction of the P-frame packets (fast motion, GOP=30), for every cipher
// and both devices; Fig. 9b's screenshots are replaced by eavesdropper
// PSNR at I-only vs. I+20%P.
#include <cstdio>
#include <vector>

#include "bench/common.hpp"

using namespace tv;

int main(int argc, char** argv) {
  const auto options = bench::BenchOptions::parse(argc, argv);
  bench::print_banner("Figure 9",
                      "I + fraction-of-P encryption (fast, GOP=30)", options);
  bench::WorkloadCache cache{options};
  const auto& workload = cache.get(video::MotionLevel::kHigh, 30);

  const std::vector<double> fractions = {0.10, 0.15, 0.20, 0.25, 0.30, 0.50};
  const core::DeviceProfile devices[] = {core::htc_amaze_4g(),
                                         core::samsung_galaxy_s2()};
  const crypto::Algorithm algs[] = {crypto::Algorithm::kAes128,
                                    crypto::Algorithm::kAes256,
                                    crypto::Algorithm::kTripleDes};

  std::printf("\n(Fig. 9a) mean delay (ms) vs. %% of P-frame packets "
              "encrypted (on top of all I packets)\n");
  std::printf("%-24s", "series");
  for (double f : fractions) std::printf(" %8.0f%%", f * 100.0);
  std::printf("\n");
  for (const auto& device : devices) {
    for (auto alg : algs) {
      std::printf("%-24s",
                  (device.name.substr(0, 7) + "-" +
                   std::string(crypto::to_string(alg)))
                      .c_str());
      for (double f : fractions) {
        policy::EncryptionPolicy pol{policy::Mode::kIPlusFractionP, alg, f};
        auto spec = bench::make_spec(workload, pol, device, options, false);
        const auto r = core::run_experiment(spec, workload);
        std::printf(" %9.1f", r.delay_ms.mean());
      }
      std::printf("\n");
    }
  }

  std::printf("\n(Fig. 9b substitute) eavesdropper PSNR/MOS, Samsung, "
              "AES256:\n");
  for (double f : {0.0, 0.20}) {
    policy::EncryptionPolicy pol =
        f == 0.0
            ? policy::EncryptionPolicy{policy::Mode::kIFrames,
                                       crypto::Algorithm::kAes256, 0.0}
            : policy::EncryptionPolicy{policy::Mode::kIPlusFractionP,
                                       crypto::Algorithm::kAes256, f};
    auto spec = bench::make_spec(workload, pol, core::samsung_galaxy_s2(),
                                 options, true);
    const auto r = core::run_experiment(spec, workload);
    std::printf("  %-16s PSNR %s dB   MOS %s\n", r.label.c_str(),
                bench::fmt_ci(r.eavesdropper_psnr_db, 2).c_str(),
                bench::fmt_ci(r.eavesdropper_mos, 2).c_str());
  }

  bench::print_expectation(
      "latency grows gently and roughly linearly with the encrypted "
      "P-fraction (paper: ~6.5 ms extra at 20%); 3DES sits far above the "
      "AES curves, and the Samsung above the HTC.  I+20%P pushes the "
      "eavesdropper's MOS to ~1.2 where I-only left fast content partially "
      "recognizable.");
  return 0;
}
