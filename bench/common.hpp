// Shared harness for the per-figure reproduction benches.
//
// Every bench binary prints (a) the Table-1 style configuration banner,
// (b) the paper's rows/series with measured means, 95% confidence
// intervals, and the analytic prediction next to each measurement, and
// (c) a short "expected shape" note quoting what the paper reports.
// Absolute values are simulator-scale; the shapes are the reproduction
// target (see EXPERIMENTS.md).
#pragma once

#include <cstdio>
#include <cstdlib>
#include <cmath>
#include <cstring>
#include <map>
#include <string>
#include <tuple>

#include "core/experiment.hpp"

namespace tv::bench {

/// Command-line knobs shared by all figure benches.
struct BenchOptions {
  int frames = 300;     ///< clip length (paper: 300 frames at 30 fps).
  int quality_reps = 5; ///< repetitions when decoding is involved.
  int delay_reps = 20;  ///< repetitions for timing-only experiments.
  std::uint64_t seed = 2013;

  static BenchOptions parse(int argc, char** argv) {
    BenchOptions o;
    for (int i = 1; i < argc; ++i) {
      const char* arg = argv[i];
      if (std::strncmp(arg, "--frames=", 9) == 0) {
        o.frames = std::atoi(arg + 9);
      } else if (std::strncmp(arg, "--reps=", 7) == 0) {
        o.quality_reps = std::atoi(arg + 7);
        o.delay_reps = std::atoi(arg + 7);
      } else if (std::strncmp(arg, "--seed=", 7) == 0) {
        o.seed = std::strtoull(arg + 7, nullptr, 10);
      } else if (std::strcmp(arg, "--quick") == 0) {
        o.frames = 120;
        o.quality_reps = 2;
        o.delay_reps = 5;
      } else if (std::strcmp(arg, "--help") == 0) {
        std::printf(
            "options: --frames=N --reps=N --seed=S --quick\n");
        std::exit(0);
      }
    }
    return o;
  }
};

/// Build-once cache for workloads shared across experiment configurations.
class WorkloadCache {
 public:
  explicit WorkloadCache(const BenchOptions& options) : options_(options) {}

  const core::Workload& get(video::MotionLevel motion, int gop_size) {
    const auto key = std::make_pair(static_cast<int>(motion), gop_size);
    auto it = cache_.find(key);
    if (it == cache_.end()) {
      std::printf("# building %s-motion workload (GOP %d, %d frames)...\n",
                  video::to_string(motion), gop_size, options_.frames);
      std::fflush(stdout);
      it = cache_
               .emplace(key, core::build_workload(motion, gop_size,
                                                  options_.frames,
                                                  options_.seed))
               .first;
    }
    return it->second;
  }

 private:
  BenchOptions options_;
  std::map<std::pair<int, int>, core::Workload> cache_;
};

inline void print_banner(const char* figure, const char* description,
                         const BenchOptions& options) {
  std::printf("==========================================================\n");
  std::printf("%s — %s\n", figure, description);
  std::printf("setup: CIF 352x288, %d frames @30fps, %d/%d reps, seed %llu\n",
              options.frames, options.quality_reps, options.delay_reps,
              static_cast<unsigned long long>(options.seed));
  std::printf("==========================================================\n");
}

inline void print_expectation(const char* note) {
  std::printf("\npaper shape: %s\n", note);
}

/// "12.3 ±0.4" with fixed widths.
inline std::string fmt_ci(const util::RunningStats& s, int precision = 1) {
  char buf[64];
  std::snprintf(buf, sizeof buf, "%.*f ±%.*f", precision, s.mean(), precision,
                s.ci95_halfwidth());
  return buf;
}

/// The slow/fast labels the paper uses (low/high motion presets).
inline video::MotionLevel motion_for(bool fast) {
  return fast ? video::MotionLevel::kHigh : video::MotionLevel::kLow;
}

inline core::ExperimentSpec make_spec(const core::Workload& workload,
                                      policy::EncryptionPolicy pol,
                                      const core::DeviceProfile& device,
                                      const BenchOptions& options,
                                      bool quality,
                                      core::Transport transport =
                                          core::Transport::kRtpUdp) {
  core::ExperimentSpec spec;
  spec.policy = pol;
  spec.pipeline.device = device;
  spec.pipeline.transport = transport;
  spec.repetitions = quality ? options.quality_reps : options.delay_reps;
  spec.seed = options.seed;
  spec.evaluate_quality = quality;
  spec.sensitivity_fraction = core::default_sensitivity(workload.motion);
  return spec;
}

/// Shared body of the delay figures (Figs. 7, 8, 12, 13): mean per-packet
/// delay, analysis vs. experiment, for AES256 and 3DES, GOP 30/50,
/// slow/fast motion, across the four headline policies.
inline void run_delay_figure(WorkloadCache& cache,
                             const core::DeviceProfile& device,
                             const BenchOptions& options,
                             core::Transport transport) {
  // Like the paper, the HTTP/TCP latency figures (12, 13) show experiment
  // bars only — the 2-MMPP/G/1 analysis models the RTP/UDP service path.
  const bool show_analysis = transport == core::Transport::kRtpUdp;
  for (auto alg : {crypto::Algorithm::kAes256, crypto::Algorithm::kTripleDes}) {
    for (int gop : {30, 50}) {
      std::printf("\n(%s, GOP=%d, %s, %s)\n",
                  std::string(crypto::to_string(alg)).c_str(), gop,
                  device.name.c_str(), core::to_string(transport));
      if (show_analysis) {
        std::printf("%-8s | %-13s %-16s | %-13s %-16s\n", "level",
                    "slow analysis", "slow experiment", "fast analysis",
                    "fast experiment");
      } else {
        std::printf("%-8s | %-16s %-16s\n", "level", "slow experiment",
                    "fast experiment");
      }
      for (const auto& pol : policy::headline_policies(alg)) {
        std::string cells[2][2];
        for (bool fast : {false, true}) {
          const auto& workload = cache.get(motion_for(fast), gop);
          auto spec = make_spec(workload, pol, device, options,
                                /*quality=*/false, transport);
          const auto r = core::run_experiment(spec, workload);
          char pred[32];
          if (std::isfinite(r.predicted_delay.mean_delay_ms)) {
            std::snprintf(pred, sizeof pred, "%.1f ms",
                          r.predicted_delay.mean_delay_ms);
          } else {
            std::snprintf(pred, sizeof pred, "unstable");
          }
          cells[fast ? 1 : 0][0] = pred;
          cells[fast ? 1 : 0][1] = fmt_ci(r.delay_ms, 1) + " ms";
        }
        if (show_analysis) {
          std::printf("%-8s | %-13s %-16s | %-13s %-16s\n",
                      policy::to_string(pol.mode), cells[0][0].c_str(),
                      cells[0][1].c_str(), cells[1][0].c_str(),
                      cells[1][1].c_str());
        } else {
          std::printf("%-8s | %-16s %-16s\n", policy::to_string(pol.mode),
                      cells[0][1].c_str(), cells[1][1].c_str());
        }
      }
    }
  }
}

/// Shared body of the power figures (Figs. 10, 11): mean device power per
/// policy, for AES256 and 3DES, slow/fast motion, GOP 30/50.
inline void run_power_figure(WorkloadCache& cache,
                             const core::DeviceProfile& device,
                             const BenchOptions& options) {
  for (bool fast : {false, true}) {
    for (auto alg :
         {crypto::Algorithm::kAes256, crypto::Algorithm::kTripleDes}) {
      std::printf("\n(%s-motion, %s, %s)\n", fast ? "Fast" : "Slow",
                  std::string(crypto::to_string(alg)).c_str(),
                  device.name.c_str());
      std::printf("%-8s | %-16s %-16s\n", "level", "GOP=30 (W)",
                  "GOP=50 (W)");
      for (const auto& pol : policy::headline_policies(alg)) {
        std::string cells[2];
        int idx = 0;
        for (int gop : {30, 50}) {
          const auto& workload = cache.get(motion_for(fast), gop);
          auto spec = make_spec(workload, pol, device, options,
                                /*quality=*/false);
          const auto r = core::run_experiment(spec, workload);
          cells[idx++] = fmt_ci(r.power_w, 2);
        }
        std::printf("%-8s | %-16s %-16s\n", policy::to_string(pol.mode),
                    cells[0].c_str(), cells[1].c_str());
      }
    }
  }
}

}  // namespace tv::bench
