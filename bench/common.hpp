// Shared harness for the per-figure reproduction benches.
//
// Every bench binary prints (a) the Table-1 style configuration banner,
// (b) the paper's rows/series with measured means, 95% confidence
// intervals, and the analytic prediction next to each measurement, and
// (c) a short "expected shape" note quoting what the paper reports.
// Absolute values are simulator-scale; the shapes are the reproduction
// target (see EXPERIMENTS.md).
//
// Figures that are cartesian grids run through BenchEngine, a thin wrapper
// over core::SweepRunner that executes every grid cell on a work-stealing
// thread pool (--threads=N; docs/sweeps.md).  The engine runs in
// SeedMode::kShared so the printed numbers are bit-identical to the
// historical serial benches at any thread count.
#pragma once

#include <cstdio>
#include <cstdlib>
#include <cmath>
#include <fstream>
#include <iostream>
#include <map>
#include <memory>
#include <string>
#include <tuple>
#include <utility>
#include <vector>

#include "core/experiment.hpp"
#include "core/sweep.hpp"
#include "util/flags.hpp"
#include "util/thread_pool.hpp"

namespace tv::bench {

/// Command-line knobs shared by all figure benches.  Parsing runs through
/// a util::FlagSet registry, so every bench rejects the same unknown
/// options and prints the same generated --help text.
struct BenchOptions {
  int frames = 300;     ///< clip length (paper: 300 frames at 30 fps).
  int quality_reps = 5; ///< repetitions when decoding is involved.
  int delay_reps = 20;  ///< repetitions for timing-only experiments.
  std::uint64_t seed = 2013;
  unsigned threads = util::ThreadPool::default_thread_count();
  std::string json_path;  ///< --json=FILE: machine-readable sweep cells.
  bool csv = false;       ///< --csv: CSV sweep cells on stdout.
  bool quick = false;     ///< --quick preset was requested.

  /// The shared flag registry; benches with extra flags chain more
  /// registrations onto the returned set before calling parse_with().
  static util::FlagSet flag_set(const char* command) {
    util::FlagSet fs{command, "paper-figure reproduction bench"};
    fs.flag("frames", "N", "clip length in frames (default 300)")
        .flag("reps", "N", "repetitions for every experiment class")
        .flag("seed", "S", "root RNG seed (default 2013)")
        .flag("threads", "N", "worker threads for sweep grids")
        .flag("quick", "", "smaller frames/reps preset for smoke runs")
        .flag("json", "FILE", "write sweep cells as JSONL to FILE")
        .flag("csv", "", "print sweep cells as CSV after each table");
    return fs;
  }

  static BenchOptions parse(int argc, char** argv) {
    return parse_with(flag_set(argc > 0 ? argv[0] : "bench"), argc, argv);
  }

  /// Parse against a caller-extended registry (shared flags still apply).
  static BenchOptions parse_with(const util::FlagSet& fs, int argc,
                                 char** argv) {
    BenchOptions o;
    try {
      const auto args = util::Flags::parse(argc, argv);
      fs.check(args);
      if (args.get_bool("help", false)) {
        std::fputs(fs.help_text().c_str(), stdout);
        std::exit(0);
      }
      if (args.get_bool("quick", false)) {
        o.quick = true;
        o.frames = 120;
        o.quality_reps = 2;
        o.delay_reps = 5;
      }
      o.frames = args.get_int("frames", o.frames);
      if (args.has("reps")) {
        o.quality_reps = args.get_int("reps", o.quality_reps);
        o.delay_reps = o.quality_reps;
      }
      o.seed = args.get_uint64("seed", o.seed);
      const int threads = args.get_int("threads",
                                       static_cast<int>(o.threads));
      if (threads < 1) throw util::FlagError{"--threads must be >= 1"};
      o.threads = static_cast<unsigned>(threads);
      o.json_path = args.get("json", "");
      o.csv = args.get_bool("csv", false);
    } catch (const util::FlagError& e) {
      std::fprintf(stderr, "error: %s\n", e.what());
      std::fputs(fs.help_text().c_str(), stderr);
      std::exit(2);
    }
    return o;
  }
};

/// Build-once cache for workloads shared across experiment configurations.
/// (Grid-shaped benches go through BenchEngine instead, which shares the
/// thread-safe core::WorkloadCache; this one serves the remaining serial
/// benches.)
class WorkloadCache {
 public:
  explicit WorkloadCache(const BenchOptions& options) : options_(options) {}

  const core::Workload& get(video::MotionLevel motion, int gop_size) {
    const auto key = std::make_pair(static_cast<int>(motion), gop_size);
    auto it = cache_.find(key);
    if (it == cache_.end()) {
      std::printf("# building %s-motion workload (GOP %d, %d frames)...\n",
                  video::to_string(motion), gop_size, options_.frames);
      std::fflush(stdout);
      it = cache_
               .emplace(key, core::build_workload(motion, gop_size,
                                                  options_.frames,
                                                  options_.seed))
               .first;
    }
    return it->second;
  }

 private:
  BenchOptions options_;
  std::map<std::pair<int, int>, core::Workload> cache_;
};

/// Sweep spec pre-filled with the bench conventions: clip length, rep
/// count for the experiment class, root seed, and — crucially — shared
/// seeding, so every cell reproduces the historical per-figure numbers.
inline core::SweepSpec base_spec(const BenchOptions& options, bool quality) {
  core::SweepSpec spec;
  spec.frames = options.frames;
  spec.repetitions = quality ? options.quality_reps : options.delay_reps;
  spec.seed = options.seed;
  spec.evaluate_quality = quality;
  spec.seed_mode = core::SweepSpec::SeedMode::kShared;
  return spec;
}

/// Fans sweep results out to several sinks; the runner still sees a single
/// ResultSink and keeps its deterministic in-order delivery.
class TeeSink : public core::ResultSink {
 public:
  void add(core::ResultSink* sink) {
    if (sink != nullptr) sinks_.push_back(sink);
  }
  void begin(const core::SweepSpec& spec) override {
    for (auto* s : sinks_) s->begin(spec);
  }
  void cell(const core::CellResult& result) override {
    for (auto* s : sinks_) s->cell(result);
  }
  void end() override {
    for (auto* s : sinks_) s->end();
  }

 private:
  std::vector<core::ResultSink*> sinks_;
};

/// Executes figure grids on the shared thread pool and accumulates a small
/// cells/wall-time tally for the end-of-run summary line.  With
/// --json=FILE / --csv the engine tees every cell into machine-readable
/// sinks alongside the in-memory results the figure printers consume.
class BenchEngine {
 public:
  explicit BenchEngine(const BenchOptions& options)
      : options_(options),
        pool_(options.threads > 1
                  ? std::make_unique<util::ThreadPool>(options.threads)
                  : nullptr),
        runner_(pool_.get()) {
    if (!options.json_path.empty()) {
      json_out_.open(options.json_path);
      if (!json_out_) {
        std::fprintf(stderr, "error: cannot open --json file '%s'\n",
                     options.json_path.c_str());
        std::exit(2);
      }
      json_sink_ = std::make_unique<core::JsonlSink>(json_out_);
    }
    if (options.csv) {
      csv_sink_ = std::make_unique<core::CsvSink>(std::cout);
    }
  }

  /// Runs the grid and returns results in row-major cell order.
  std::vector<core::CellResult> run(const core::SweepSpec& spec) {
    core::CollectSink collect;
    TeeSink tee;
    tee.add(&collect);
    tee.add(json_sink_.get());
    tee.add(csv_sink_.get());
    const auto summary = runner_.run(spec, tee);
    cells_ += summary.cells;
    wall_s_ += summary.wall_s;
    return std::move(collect.results);
  }

  [[nodiscard]] util::ThreadPool* pool() { return pool_.get(); }
  [[nodiscard]] const BenchOptions& options() const { return options_; }

  void print_summary() const {
    std::printf("\n# engine: %zu cells on %u thread(s), %.2f s in sweeps\n",
                cells_, pool_ ? static_cast<unsigned>(options_.threads) : 1u,
                wall_s_);
  }

 private:
  BenchOptions options_;
  std::unique_ptr<util::ThreadPool> pool_;
  core::SweepRunner runner_;
  std::ofstream json_out_;
  std::unique_ptr<core::JsonlSink> json_sink_;
  std::unique_ptr<core::CsvSink> csv_sink_;
  std::size_t cells_ = 0;
  double wall_s_ = 0.0;
};

/// Row-major results hold every grid point; figures print them in the
/// paper's nesting order via this lookup.
inline const core::CellResult* find_cell(
    const std::vector<core::CellResult>& cells, video::MotionLevel motion,
    int gop, policy::Mode mode, crypto::Algorithm alg) {
  for (const auto& c : cells) {
    if (c.cell.motion == motion && c.cell.gop_size == gop &&
        c.cell.policy.mode == mode && c.cell.policy.algorithm == alg) {
      return &c;
    }
  }
  return nullptr;
}

inline void print_banner(const char* figure, const char* description,
                         const BenchOptions& options) {
  std::printf("==========================================================\n");
  std::printf("%s — %s\n", figure, description);
  std::printf("setup: CIF 352x288, %d frames @30fps, %d/%d reps, seed %llu\n",
              options.frames, options.quality_reps, options.delay_reps,
              static_cast<unsigned long long>(options.seed));
  std::printf("==========================================================\n");
}

inline void print_expectation(const char* note) {
  std::printf("\npaper shape: %s\n", note);
}

/// "12.3 ±0.4" with fixed widths.
inline std::string fmt_ci(const util::RunningStats& s, int precision = 1) {
  char buf[64];
  std::snprintf(buf, sizeof buf, "%.*f ±%.*f", precision, s.mean(), precision,
                s.ci95_halfwidth());
  return buf;
}

/// The slow/fast labels the paper uses (low/high motion presets).
inline video::MotionLevel motion_for(bool fast) {
  return fast ? video::MotionLevel::kHigh : video::MotionLevel::kLow;
}

inline core::ExperimentSpec make_spec(const core::Workload& workload,
                                      policy::EncryptionPolicy pol,
                                      const core::DeviceProfile& device,
                                      const BenchOptions& options,
                                      bool quality,
                                      core::Transport transport =
                                          core::Transport::kRtpUdp) {
  core::ExperimentSpec spec;
  spec.policy = pol;
  spec.pipeline.device = device;
  spec.pipeline.transport = transport;
  spec.repetitions = quality ? options.quality_reps : options.delay_reps;
  spec.seed = options.seed;
  spec.evaluate_quality = quality;
  spec.sensitivity_fraction = core::default_sensitivity(workload.motion);
  return spec;
}

/// Shared body of the delay figures (Figs. 7, 8, 12, 13): mean per-packet
/// delay, analysis vs. experiment, for AES256 and 3DES, GOP 30/50,
/// slow/fast motion, across the four headline policies — one 2x2x4x2-cell
/// sweep executed in parallel, printed in the paper's nesting order.
inline void run_delay_figure(BenchEngine& engine,
                             const core::DeviceProfile& device,
                             const BenchOptions& options,
                             core::Transport transport) {
  // Like the paper, the HTTP/TCP latency figures (12, 13) show experiment
  // bars only — the 2-MMPP/G/1 analysis models the RTP/UDP service path.
  const bool show_analysis = transport == core::Transport::kRtpUdp;
  auto spec = base_spec(options, /*quality=*/false);
  spec.motions = {video::MotionLevel::kLow, video::MotionLevel::kHigh};
  spec.gop_sizes = {30, 50};
  spec.policies = policy::headline_policies(crypto::Algorithm::kAes256);
  spec.algorithms = {crypto::Algorithm::kAes256,
                     crypto::Algorithm::kTripleDes};
  spec.devices = {device};
  spec.transports = {transport};
  const auto cells = engine.run(spec);

  for (auto alg : {crypto::Algorithm::kAes256, crypto::Algorithm::kTripleDes}) {
    for (int gop : {30, 50}) {
      std::printf("\n(%s, GOP=%d, %s, %s)\n",
                  std::string(crypto::to_string(alg)).c_str(), gop,
                  device.name.c_str(), core::to_string(transport));
      if (show_analysis) {
        std::printf("%-8s | %-13s %-16s | %-13s %-16s\n", "level",
                    "slow analysis", "slow experiment", "fast analysis",
                    "fast experiment");
      } else {
        std::printf("%-8s | %-16s %-16s\n", "level", "slow experiment",
                    "fast experiment");
      }
      for (const auto& pol : policy::headline_policies(alg)) {
        std::string col[2][2];
        for (bool fast : {false, true}) {
          const auto* c =
              find_cell(cells, motion_for(fast), gop, pol.mode, alg);
          const auto& r = c->result;
          char pred[32];
          if (std::isfinite(r.predicted_delay.mean_delay_ms)) {
            std::snprintf(pred, sizeof pred, "%.1f ms",
                          r.predicted_delay.mean_delay_ms);
          } else {
            std::snprintf(pred, sizeof pred, "unstable");
          }
          col[fast ? 1 : 0][0] = pred;
          col[fast ? 1 : 0][1] = fmt_ci(r.delay_ms, 1) + " ms";
        }
        if (show_analysis) {
          std::printf("%-8s | %-13s %-16s | %-13s %-16s\n",
                      policy::to_string(pol.mode), col[0][0].c_str(),
                      col[0][1].c_str(), col[1][0].c_str(),
                      col[1][1].c_str());
        } else {
          std::printf("%-8s | %-16s %-16s\n", policy::to_string(pol.mode),
                      col[0][1].c_str(), col[1][1].c_str());
        }
      }
    }
  }
}

/// Shared body of the power figures (Figs. 10, 11): mean device power per
/// policy, for AES256 and 3DES, slow/fast motion, GOP 30/50 — the same
/// grid as the delay figures, printed against the power column.
inline void run_power_figure(BenchEngine& engine,
                             const core::DeviceProfile& device,
                             const BenchOptions& options) {
  auto spec = base_spec(options, /*quality=*/false);
  spec.motions = {video::MotionLevel::kLow, video::MotionLevel::kHigh};
  spec.gop_sizes = {30, 50};
  spec.policies = policy::headline_policies(crypto::Algorithm::kAes256);
  spec.algorithms = {crypto::Algorithm::kAes256,
                     crypto::Algorithm::kTripleDes};
  spec.devices = {device};
  const auto cells = engine.run(spec);

  for (bool fast : {false, true}) {
    for (auto alg :
         {crypto::Algorithm::kAes256, crypto::Algorithm::kTripleDes}) {
      std::printf("\n(%s-motion, %s, %s)\n", fast ? "Fast" : "Slow",
                  std::string(crypto::to_string(alg)).c_str(),
                  device.name.c_str());
      std::printf("%-8s | %-16s %-16s\n", "level", "GOP=30 (W)",
                  "GOP=50 (W)");
      for (const auto& pol : policy::headline_policies(alg)) {
        std::string col[2];
        int idx = 0;
        for (int gop : {30, 50}) {
          const auto* c =
              find_cell(cells, motion_for(fast), gop, pol.mode, alg);
          col[idx++] = fmt_ci(c->result.power_w, 2);
        }
        std::printf("%-8s | %-16s %-16s\n", policy::to_string(pol.mode),
                    col[0].c_str(), col[1].c_str());
      }
    }
  }
}

}  // namespace tv::bench
