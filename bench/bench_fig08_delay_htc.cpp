// Fig. 8 (a-d): mean per-packet transfer delay, analysis vs. experiment,
// on the HTC Amaze 4G, for AES256/3DES and GOP 30/50 (RTP/UDP).
#include "bench/common.hpp"

using namespace tv;

int main(int argc, char** argv) {
  const auto options = bench::BenchOptions::parse(argc, argv);
  bench::print_banner("Figure 8", "transfer latency, HTC Amaze 4G", options);
  bench::BenchEngine engine{options};
  bench::run_delay_figure(engine, core::htc_amaze_4g(), options,
                          core::Transport::kRtpUdp);
  bench::print_expectation(
      "same ordering as Fig. 7 (none ~= I << P ~= all); the HTC's faster "
      "crypto keeps the absolute penalties somewhat smaller than the "
      "Samsung's under 3DES.");
  engine.print_summary();
  return 0;
}
