// Microbenchmarks (google-benchmark) for the computational substrates:
// cipher throughput in OFB mode, 8x8 DCT, frame encoding, and the
// 2-MMPP/G/1 solver.  These are the costs underlying the delay-model
// constants in the device profiles.
#include <benchmark/benchmark.h>

#include <vector>

#include "crypto/ofb.hpp"
#include "crypto/suite.hpp"
#include "queueing/mmpp_g1.hpp"
#include "util/rng.hpp"
#include "video/codec.hpp"
#include "video/dct.hpp"
#include "video/scene.hpp"

using namespace tv;

namespace {

void bench_ofb(benchmark::State& state, crypto::Algorithm alg) {
  const auto cipher = crypto::make_cipher_from_seed(alg, 1);
  std::vector<std::uint8_t> iv(cipher->block_size(), 0xA5);
  std::vector<std::uint8_t> payload(static_cast<std::size_t>(state.range(0)));
  util::Rng rng{7};
  for (auto& b : payload) b = static_cast<std::uint8_t>(rng());
  for (auto _ : state) {
    crypto::ofb_transform_inplace(*cipher, iv, payload);
    benchmark::DoNotOptimize(payload.data());
  }
  state.SetBytesProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(payload.size()));
}

void BM_Aes128Ofb(benchmark::State& s) { bench_ofb(s, crypto::Algorithm::kAes128); }
void BM_Aes256Ofb(benchmark::State& s) { bench_ofb(s, crypto::Algorithm::kAes256); }
void BM_TripleDesOfb(benchmark::State& s) {
  bench_ofb(s, crypto::Algorithm::kTripleDes);
}

void BM_ForwardDct(benchmark::State& state) {
  video::Block8x8 block{};
  util::Rng rng{3};
  for (auto& v : block) v = rng.uniform(0.0, 255.0);
  for (auto _ : state) {
    auto out = video::forward_dct(block);
    benchmark::DoNotOptimize(out);
  }
}

void BM_EncodeCifFrame(benchmark::State& state) {
  const video::SceneGenerator scene{
      video::SceneParameters::preset(video::MotionLevel::kMedium), 5};
  const auto clip = scene.render_clip(8);
  const video::Encoder encoder{video::CodecConfig{}};
  for (auto _ : state) {
    auto stream = encoder.encode(clip);
    benchmark::DoNotOptimize(stream.frames.data());
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) * 8);
}

void BM_MmppG1Solve(benchmark::State& state) {
  queueing::Mmpp2 mmpp{.r12 = 250.0, .r21 = 1.0, .lambda1 = 4500.0,
                       .lambda2 = 35.0};
  queueing::ServiceTimeModel svc{
      {{0.3, 2.4e-3, 1e-4}, {0.7, 1.2e-3, 1e-4}},
      queueing::BackoffModel{0.78, 420.0}};
  for (auto _ : state) {
    const queueing::MmppG1Solver solver{mmpp, svc};
    auto sol = solver.solve();
    benchmark::DoNotOptimize(sol.mean_wait);
  }
}

}  // namespace

BENCHMARK(BM_Aes128Ofb)->Arg(1460);
BENCHMARK(BM_Aes256Ofb)->Arg(1460);
BENCHMARK(BM_TripleDesOfb)->Arg(1460);
BENCHMARK(BM_ForwardDct);
BENCHMARK(BM_EncodeCifFrame)->Unit(benchmark::kMillisecond);
BENCHMARK(BM_MmppG1Solve)->Unit(benchmark::kMicrosecond);

BENCHMARK_MAIN();
