// Fig. 4 (a-d): distortion (PSNR) at the eavesdropper for slow/fast motion
// and GOP 30/50 under the none / P / I / all encryption levels, analysis
// vs. experiment (AES256, RTP/UDP, Samsung Galaxy S-II).
#include <cstdio>

#include "bench/common.hpp"

using namespace tv;

int main(int argc, char** argv) {
  const auto options = bench::BenchOptions::parse(argc, argv);
  bench::print_banner("Figure 4",
                      "eavesdropper PSNR vs. encryption level", options);
  bench::WorkloadCache cache{options};
  const auto device = core::samsung_galaxy_s2();

  for (bool fast : {false, true}) {
    for (int gop : {30, 50}) {
      const auto& workload = cache.get(bench::motion_for(fast), gop);
      std::printf("\n(%s-motion, GOP=%d)  [receiver PSNR shown for the "
                  "legitimate decode]\n",
                  fast ? "Fast" : "Slow", gop);
      std::printf("%-8s | %-12s %-12s | %-12s %-12s\n", "level",
                  "analysis dB", "experiment", "rx analysis", "rx exper.");
      for (const auto& pol :
           policy::headline_policies(crypto::Algorithm::kAes256)) {
        const auto spec =
            bench::make_spec(workload, pol, device, options, true);
        const auto r = core::run_experiment(spec, workload);
        std::printf("%-8s | %-12.2f %-12s | %-12.2f %-12s\n",
                    policy::to_string(pol.mode),
                    r.predicted_eavesdropper.psnr_db,
                    bench::fmt_ci(r.eavesdropper_psnr_db, 2).c_str(),
                    r.predicted_receiver.psnr_db,
                    bench::fmt_ci(r.receiver_psnr_db, 2).c_str());
      }
    }
  }

  bench::print_expectation(
      "analysis tracks experiment.  Encrypting I-frames crushes slow-motion "
      "PSNR far more (paper: up to 80% drop, ~= 'all') than fast motion "
      "(~30%); encrypting only P-frames hurts fast motion more than slow "
      "(up to 40%).  'none' stays near the receiver's PSNR.");
  return 0;
}
