// Ablations of the analytic machinery (DESIGN.md Section 4, "ablation"):
//  (a) 2-MMPP/G/1 mean delay: exact solver vs. discrete-event simulation
//      across utilizations, and vs. a naive M/G/1 that ignores burstiness;
//  (b) 802.11 DCF fixed point vs. slotted event simulation across station
//      counts;
//  (c) distortion flow DP (eq. 26 done in O(N * age)) vs. Monte Carlo of
//      the literal GOP state chain.
//
// The rows of (a) and (b) are independent simulations seeded per row, so
// they run concurrently on the thread pool (--threads=N) and print in
// order afterwards; (c) threads one Rng through its rows and stays serial.
#include <cstdio>
#include <optional>
#include <string>
#include <vector>

#include "bench/common.hpp"
#include "distortion/gop_model.hpp"
#include "queueing/mg1.hpp"
#include "queueing/mmpp_g1.hpp"
#include "queueing/queue_sim.hpp"
#include "util/thread_pool.hpp"
#include "wifi/dcf_model.hpp"
#include "wifi/dcf_sim.hpp"

using namespace tv;

namespace {

// Runs `row(i)` for every index either serially or on the pool, then
// prints the formatted lines in row order.
template <typename Row>
void run_rows(util::ThreadPool* pool, std::size_t n, Row row) {
  std::vector<std::string> lines(n);
  const auto body = [&](std::size_t i) { lines[i] = row(i); };
  if (pool && n > 1) {
    pool->parallel_for(n, body);
  } else {
    for (std::size_t i = 0; i < n; ++i) body(i);
  }
  for (const auto& line : lines) std::fputs(line.c_str(), stdout);
}

}  // namespace

int main(int argc, char** argv) {
  const auto options = bench::BenchOptions::parse(argc, argv);
  bench::print_banner("Ablation", "model accuracy checks", options);
  std::optional<util::ThreadPool> pool;
  if (options.threads > 1) pool.emplace(options.threads);
  util::ThreadPool* pool_ptr = pool ? &*pool : nullptr;

  std::printf("\n(a) 2-MMPP/G/1: solver vs. DES vs. naive M/G/1\n");
  std::printf("%-8s %-12s %-14s %-12s %-10s\n", "rho", "solver ms",
              "DES ms", "M/G/1 ms", "err vs DES");
  const std::vector<double> scales = {1.0, 2.0, 4.0, 5.5, 6.3};
  run_rows(pool_ptr, scales.size(), [&](std::size_t i) {
    const double scale = scales[i];
    queueing::Mmpp2 mmpp{.r12 = 260.0, .r21 = 1.05,
                         .lambda1 = 4400.0 * scale, .lambda2 = 40.0 * scale};
    queueing::ServiceTimeModel svc{
        {{0.35, 3.3e-3, 1.2e-4}, {0.65, 1.1e-3, 0.9e-4}},
        queueing::BackoffModel{0.78, 420.0}};
    const queueing::MmppG1Solver solver{mmpp, svc};
    const auto sol = solver.solve();
    const auto sim = queueing::simulate_queue(mmpp, svc, 2000000, 100000,
                                              options.seed);
    const auto pk = queueing::solve_mg1(mmpp.mean_rate(), svc.mean(),
                                        svc.moment2(), svc.moment3());
    char buf[160];
    std::snprintf(buf, sizeof buf, "%-8.3f %-12.3f %-14.3f %-12.3f %9.1f%%\n",
                  sol.utilization, sol.mean_wait * 1e3,
                  sim.wait.mean() * 1e3, pk.mean_wait * 1e3,
                  100.0 * (sol.mean_wait - sim.wait.mean()) /
                      sim.wait.mean());
    return std::string(buf);
  });
  std::printf("-> the MMPP solver matches the DES; the Poisson M/G/1 "
              "misses the burstiness premium entirely.\n");

  std::printf("\n(b) 802.11 DCF: fixed point vs. slotted simulation\n");
  std::printf("%-6s %-12s %-12s %-12s %-12s\n", "n", "tau (model)",
              "tau (sim)", "p (model)", "p (sim)");
  const std::vector<int> stations = {2, 4, 8, 16, 32};
  run_rows(pool_ptr, stations.size(), [&](std::size_t i) {
    const int n = stations[i];
    wifi::DcfParameters params{.contenders = n};
    const auto model = wifi::solve_dcf(params);
    const auto sim = wifi::simulate_dcf(params, 400000, options.seed);
    char buf[160];
    std::snprintf(buf, sizeof buf, "%-6d %-12.5f %-12.5f %-12.5f %-12.5f\n",
                  n, model.attempt_probability, sim.attempt_probability,
                  model.collision_probability, sim.collision_probability);
    return std::string(buf);
  });

  std::printf("\n(c) distortion flow model: exact DP vs. Monte Carlo\n");
  std::printf("%-22s %-12s %-14s\n", "(P_I, P_P)", "DP MSE", "MC MSE");
  util::Rng rng{options.seed};
  for (auto [pi, pp] : {std::pair{0.95, 0.995}, std::pair{0.6, 0.95},
                        std::pair{0.2, 0.9}, std::pair{0.0, 0.98}}) {
    distortion::DistanceSamples samples;
    for (int d = 1; d <= 12; ++d) {
      samples.distances.push_back(d);
      samples.mse.push_back(40.0 * d + 2.0 * d * d);
    }
    auto inter = distortion::DistanceDistortion::fit(samples, 5);
    distortion::FlowModelParameters fp;
    fp.gop_size = 30;
    fp.p_i_success = pi;
    fp.p_p_success = pp;
    fp.d_min = inter(1.0);
    fp.d_max = inter(29.0);
    fp.null_reference_mse = 2200.0;
    const distortion::FlowDistortionModel model{fp, inter};
    const double dp = model.flow_average_distortion(10);
    const double mc = model.flow_average_distortion_mc(10, 20000, rng);
    std::printf("(%.2f, %.3f)%9s %-12.2f %-14.2f\n", pi, pp, "", dp, mc);
  }
  std::printf("-> the O(N*age) DP reproduces the exponential-state-space "
              "expectation of eq. (26).\n");
  return 0;
}
