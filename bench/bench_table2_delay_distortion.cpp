// Table 2: delay vs. distortion vs. MOS for I + a% P encryption on the
// Samsung Galaxy S-II (fast motion, GOP=30, AES256).
#include <cstdio>
#include <vector>

#include "bench/common.hpp"

using namespace tv;

int main(int argc, char** argv) {
  const auto options = bench::BenchOptions::parse(argc, argv);
  bench::print_banner("Table 2", "delay / PSNR / MOS for I + a%P (Samsung)",
                      options);
  bench::WorkloadCache cache{options};
  const auto& workload = cache.get(video::MotionLevel::kHigh, 30);
  const auto device = core::samsung_galaxy_s2();

  struct Row {
    const char* label;
    policy::EncryptionPolicy policy;
  };
  const std::vector<Row> rows = {
      {"I", {policy::Mode::kIFrames, crypto::Algorithm::kAes256, 0.0}},
      {"I+10% P",
       {policy::Mode::kIPlusFractionP, crypto::Algorithm::kAes256, 0.10}},
      {"I+15% P",
       {policy::Mode::kIPlusFractionP, crypto::Algorithm::kAes256, 0.15}},
      {"I+20% P",
       {policy::Mode::kIPlusFractionP, crypto::Algorithm::kAes256, 0.20}},
      {"I+25% P",
       {policy::Mode::kIPlusFractionP, crypto::Algorithm::kAes256, 0.25}},
      {"I+30% P",
       {policy::Mode::kIPlusFractionP, crypto::Algorithm::kAes256, 0.30}},
      {"I+50% P",
       {policy::Mode::kIPlusFractionP, crypto::Algorithm::kAes256, 0.50}},
  };

  std::printf("\n%-10s %-16s %-16s %-14s %-10s\n", "policy", "delay (ms)",
              "PSNR (dB)", "MOS", "power (W)");
  for (const auto& row : rows) {
    auto spec = bench::make_spec(workload, row.policy, device, options, true);
    const auto r = core::run_experiment(spec, workload);
    std::printf("%-10s %-16s %-16s %-14s %-10.2f\n", row.label,
                (bench::fmt_ci(r.delay_ms, 2)).c_str(),
                bench::fmt_ci(r.eavesdropper_psnr_db, 2).c_str(),
                bench::fmt_ci(r.eavesdropper_mos, 2).c_str(),
                r.power_w.mean());
  }

  bench::print_expectation(
      "paper: 48.41 ms / 20.65 dB / MOS 1.71 at I-only, degrading smoothly "
      "to 61.76 ms / 16.01 dB / MOS 1.14 at I+50%P; a=20% is the knee where "
      "the flow becomes essentially unviewable (MOS ~1.2) for ~6.5 ms of "
      "extra delay.");
  return 0;
}
