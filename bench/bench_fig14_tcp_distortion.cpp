// Fig. 14 (a,b): distortion (PSNR) at the eavesdropper for HTTP/TCP
// transfers, slow and fast motion, GOP 30/50 (AES256).
#include <cstdio>

#include "bench/common.hpp"

using namespace tv;

int main(int argc, char** argv) {
  const auto options = bench::BenchOptions::parse(argc, argv);
  bench::print_banner("Figure 14", "eavesdropper PSNR over HTTP/TCP",
                      options);
  bench::WorkloadCache cache{options};
  const auto device = core::samsung_galaxy_s2();

  for (int gop : {30, 50}) {
    std::printf("\n(GOP=%d, HTTP/TCP)\n", gop);
    std::printf("%-8s | %-16s %-16s\n", "level", "slow PSNR (dB)",
                "fast PSNR (dB)");
    for (const auto& pol :
         policy::headline_policies(crypto::Algorithm::kAes256)) {
      std::string cells[2];
      for (bool fast : {false, true}) {
        const auto& workload = cache.get(bench::motion_for(fast), gop);
        auto spec = bench::make_spec(workload, pol, device, options, true,
                                     core::Transport::kHttpTcp);
        const auto r = core::run_experiment(spec, workload);
        cells[fast ? 1 : 0] = bench::fmt_ci(r.eavesdropper_psnr_db, 2);
      }
      std::printf("%-8s | %-16s %-16s\n", policy::to_string(pol.mode),
                  cells[0].c_str(), cells[1].c_str());
    }
  }

  bench::print_expectation(
      "the RTP/UDP trends of Fig. 4 persist under HTTP/TCP: I-frame "
      "encryption crushes slow motion, P-frame encryption hurts fast "
      "motion more, and the eavesdropper benefits slightly from overheard "
      "retransmissions on the unencrypted packets.");
  return 0;
}
