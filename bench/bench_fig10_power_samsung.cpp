// Fig. 10 (a-d): power consumption on the Samsung Galaxy S-II for slow and
// fast motion, AES256/3DES, GOP 30/50, across encryption levels.
#include "bench/common.hpp"

using namespace tv;

int main(int argc, char** argv) {
  const auto options = bench::BenchOptions::parse(argc, argv);
  bench::print_banner("Figure 10", "power consumption, Samsung Galaxy S-II",
                      options);
  bench::BenchEngine engine{options};
  bench::run_power_figure(engine, core::samsung_galaxy_s2(), options);
  bench::print_expectation(
      "none < I-frames < P-frames < all.  For slow motion the paper reports "
      "+140% for 'all' vs. 'none' but only +11% for I-only (a 92% saving of "
      "the penalty); our clip's I-frames carry a larger byte share, so the "
      "I-only increase is larger, but the ordering and the large none->all "
      "spread reproduce.  3DES draws more than AES256 at every level.");
  engine.print_summary();
  return 0;
}
