// Hot-path micro-suite: the perf trajectory of the batched cipher API,
// the AES-NI backend, the vectorized DCT, and the end-to-end transfer
// pipeline — the numbers behind BENCH_hotpath.json (docs/benchmarks.md).
//
// Unlike the figure benches this one measures *host* performance, so the
// output is machine-specific by design: the committed BENCH_hotpath.json
// is a baseline record, and run_benches.sh --json regenerates it so the
// trajectory can be compared across commits on the same machine.
//
// Three cipher paths are timed per algorithm:
//   block  — one virtual encrypt_block() call per block (the old API),
//   batch  — one virtual encrypt_blocks() call per buffer (the new API),
//   aes-ni — the hardware backend through the same batch call (AES only).
// plus the OFB stream path each algorithm actually runs per segment.
// Cycles/byte derive from the calibrated TSC; on hosts without a usable
// cycle counter those fields are null and MB/s stands alone.

#include <algorithm>
#include <atomic>
#include <chrono>
#include <cstdlib>
#include <new>
#include <cinttypes>
#include <cstdio>
#include <fstream>
#include <limits>
#include <string>
#include <vector>

#include "common.hpp"
#include "core/experiment.hpp"
#include "core/pipeline.hpp"
#include "crypto/aes_ni.hpp"
#include "crypto/ofb.hpp"
#include "crypto/suite.hpp"
#include "net/packetizer.hpp"
#include "util/cycle_clock.hpp"
#include "video/dct.hpp"
#include "util/arena.hpp"

namespace {

/// Process-wide allocation counter behind the v2 `allocations_per_packet`
/// field.  The shim routes through std::malloc, so it composes with
/// sanitizer builds; only deltas around the timed region are read.
std::atomic<std::uint64_t> g_heap_allocations{0};

void* counted_alloc(std::size_t size) {
  g_heap_allocations.fetch_add(1, std::memory_order_relaxed);
  if (void* p = std::malloc(size)) return p;
  throw std::bad_alloc{};
}

}  // namespace

void* operator new(std::size_t size) { return counted_alloc(size); }
void* operator new[](std::size_t size) { return counted_alloc(size); }
void operator delete(void* p) noexcept { std::free(p); }
void operator delete[](void* p) noexcept { std::free(p); }
void operator delete(void* p, std::size_t) noexcept { std::free(p); }
void operator delete[](void* p, std::size_t) noexcept { std::free(p); }

namespace {

using tv::crypto::Algorithm;
using tv::crypto::CipherBackend;
using clock_type = std::chrono::steady_clock;

/// Defeats dead-code elimination without a memory barrier per iteration.
volatile std::uint8_t g_sink8 = 0;
volatile double g_sinkd = 0.0;

double seconds_since(clock_type::time_point t0) {
  return std::chrono::duration<double>(clock_type::now() - t0).count();
}

/// Best-of-N wall time of `body` (one untimed warm-up pass first).
template <typename F>
double best_seconds(F&& body, int reps) {
  body();
  double best = std::numeric_limits<double>::infinity();
  for (int r = 0; r < reps; ++r) {
    const auto t0 = clock_type::now();
    body();
    best = std::min(best, seconds_since(t0));
  }
  return best;
}

/// One measured throughput point.
struct Point {
  std::string algorithm;
  std::string backend;
  std::string path;  ///< "block", "batch", or "ofb".
  double mb_s = 0.0;
  double cycles_per_byte = 0.0;  ///< 0 when the cycle clock is unavailable.
  double seconds = 0.0;          ///< best-of wall time (speedup ratios).
};

Algorithm cipher_algorithm(const tv::crypto::BlockCipher& cipher);

Point measure_point(const tv::crypto::BlockCipher& cipher,
                    std::string_view backend, std::string_view path,
                    std::size_t bytes, int reps) {
  const std::size_t block = cipher.block_size();
  const std::size_t n = bytes / block;
  std::vector<std::uint8_t> in(n * block, static_cast<std::uint8_t>(0xa5));
  std::vector<std::uint8_t> out(in.size());
  std::vector<std::uint8_t> iv(block, static_cast<std::uint8_t>(0x3c));
  tv::crypto::OfbStream stream{cipher};

  double seconds = 0.0;
  if (path == "block") {
    seconds = best_seconds(
        [&] {
          for (std::size_t i = 0; i < n; ++i) {
            cipher.encrypt_block(
                std::span<const std::uint8_t>{in.data() + i * block, block},
                std::span<std::uint8_t>{out.data() + i * block, block});
          }
        },
        reps);
  } else if (path == "batch") {
    seconds = best_seconds([&] { cipher.encrypt_blocks(in, out, n); }, reps);
  } else {  // "ofb": the per-segment stream path on a bulk buffer.
    seconds = best_seconds(
        [&] {
          stream.reset(iv);
          stream.apply(out);
        },
        reps);
  }
  g_sink8 = g_sink8 ^ out[out.size() / 2];

  Point p;
  p.algorithm = std::string(tv::crypto::to_string(cipher_algorithm(cipher)));
  p.backend = std::string(backend);
  p.path = std::string(path);
  p.seconds = seconds;
  const double total = static_cast<double>(n * block);
  p.mb_s = total / seconds / 1e6;
  const double ghz = tv::util::tsc_ghz();
  p.cycles_per_byte = ghz > 0.0 ? seconds * ghz * 1e9 / total : 0.0;
  return p;
}

/// Reverse-map a cipher to its Algorithm from name/key size (the bench
/// builds each cipher itself, so this only keeps labels honest).
Algorithm cipher_algorithm(const tv::crypto::BlockCipher& cipher) {
  if (cipher.block_size() == 8) return Algorithm::kTripleDes;
  return cipher.key_size() == 16 ? Algorithm::kAes128 : Algorithm::kAes256;
}

std::string json_number(double v) {
  if (v <= 0.0 || !std::isfinite(v)) return "null";
  char buf[64];
  std::snprintf(buf, sizeof buf, "%.6g", v);
  return buf;
}

}  // namespace

int main(int argc, char** argv) {
  auto options = tv::bench::BenchOptions::parse(argc, argv);
  const std::size_t bulk_bytes = options.quick ? (1u << 18) : (1u << 20);
  const int reps = options.quick ? 3 : 5;
  const std::uint64_t key_seed = 0x7eedfacecafef00dULL;

  std::printf("bench_hotpath: %zu KiB buffers, best of %d, tsc %.3f GHz, "
              "aes-ni %s\n\n",
              bulk_bytes >> 10, reps, tv::util::tsc_ghz(),
              tv::crypto::aes_ni_available() ? "yes" : "no");

  // --- cipher paths -----------------------------------------------------
  std::vector<Point> cipher_points;
  std::vector<Point> ofb_points;
  for (Algorithm alg :
       {Algorithm::kAes128, Algorithm::kAes256, Algorithm::kTripleDes}) {
    const auto scalar =
        tv::crypto::make_cipher_from_seed(alg, key_seed, CipherBackend::kScalar);
    cipher_points.push_back(
        measure_point(*scalar, "scalar", "block", bulk_bytes, reps));
    cipher_points.push_back(
        measure_point(*scalar, "scalar", "batch", bulk_bytes, reps));
    if (alg != Algorithm::kTripleDes && tv::crypto::aes_ni_available()) {
      const auto ni = tv::crypto::make_cipher_from_seed(alg, key_seed,
                                                        CipherBackend::kAesNi);
      cipher_points.push_back(
          measure_point(*ni, "aes-ni", "batch", bulk_bytes, reps));
    }
    // OFB through whatever make_cipher selects by default — the path the
    // packetizer and live sender actually run.
    const auto deployed =
        tv::crypto::make_cipher_from_seed(alg, key_seed, CipherBackend::kAuto);
    ofb_points.push_back(measure_point(
        *deployed,
        tv::crypto::aes_ni_selected(alg) ? "aes-ni" : "scalar", "ofb",
        bulk_bytes, reps));
  }

  std::printf("%-10s %-8s %-6s %12s %14s\n", "algorithm", "backend", "path",
              "MB/s", "cycles/byte");
  for (const auto& p : cipher_points) {
    std::printf("%-10s %-8s %-6s %12.1f %14.2f\n", p.algorithm.c_str(),
                p.backend.c_str(), p.path.c_str(), p.mb_s, p.cycles_per_byte);
  }
  for (const auto& p : ofb_points) {
    std::printf("%-10s %-8s %-6s %12.1f %14.2f\n", p.algorithm.c_str(),
                p.backend.c_str(), p.path.c_str(), p.mb_s, p.cycles_per_byte);
  }

  // --- DCT --------------------------------------------------------------
  constexpr std::size_t kDctBlocks = 4096;
  std::vector<tv::video::Block8x8> blocks(kDctBlocks);
  std::uint32_t lcg = 2013;
  for (auto& b : blocks) {
    for (auto& v : b) {
      lcg = lcg * 1664525u + 1013904223u;
      v = static_cast<double>(lcg >> 24) - 128.0;
    }
  }
  const double fwd_s = best_seconds(
      [&] {
        double acc = 0.0;
        for (const auto& b : blocks) acc += tv::video::forward_dct(b)[0];
        g_sinkd = acc;
      },
      reps);
  const double round_s = best_seconds(
      [&] {
        double acc = 0.0;
        for (const auto& b : blocks) {
          const auto coeff = tv::video::forward_dct(b);
          const auto q = tv::video::quantize(coeff, 12.0);
          acc += tv::video::inverse_dct(tv::video::dequantize(q, 12.0))[0];
        }
        g_sinkd = acc;
      },
      reps);
  const double fwd_blocks_s = static_cast<double>(kDctBlocks) / fwd_s;
  const double round_blocks_s = static_cast<double>(kDctBlocks) / round_s;
  std::printf("\ndct: forward %.0f blocks/s, quant round-trip %.0f blocks/s\n",
              fwd_blocks_s, round_blocks_s);

  // --- end-to-end transfer ---------------------------------------------
  const int frames = options.quick ? 60 : 120;
  const auto workload = tv::core::build_workload(
      tv::video::MotionLevel::kLow, 30, frames, options.seed);
  tv::util::Arena arena;
  auto packets = tv::net::clone_packets(workload.packets, arena);
  const auto cipher = tv::crypto::make_cipher_from_seed(
      Algorithm::kAes128, key_seed, CipherBackend::kAuto);
  const std::vector<std::uint8_t> flow_iv(cipher->block_size(),
                                          static_cast<std::uint8_t>(0x3c));
  tv::net::encrypt_selected(packets, std::vector<bool>(packets.size(), true),
                            *cipher, flow_iv);
  tv::core::PipelineConfig config;
  config.device = tv::core::samsung_galaxy_s2();
  config.algorithm = Algorithm::kAes128;
  const double sim_s = best_seconds(
      [&] {
        const auto result =
            tv::core::simulate_transfer(config, packets, options.seed);
        g_sinkd = result.duration_s;
      },
      std::max(1, reps - 2));
  const double packets_per_s = static_cast<double>(packets.size()) / sim_s;
  // Steady-state heap traffic of one transfer (the loop above warmed every
  // lazy path): with arena-backed packets this is the handful of result
  // vectors, so per-packet it sits at ~0.
  const std::uint64_t allocs_before =
      g_heap_allocations.load(std::memory_order_relaxed);
  {
    const auto result = tv::core::simulate_transfer(config, packets,
                                                    options.seed);
    g_sinkd = result.duration_s;
  }
  const std::uint64_t transfer_allocs =
      g_heap_allocations.load(std::memory_order_relaxed) - allocs_before;
  const double allocs_per_packet =
      static_cast<double>(transfer_allocs) /
      static_cast<double>(packets.size());
  std::printf(
      "transfer: %zu packets simulated at %.0f packets/s (host), "
      "%.4f heap allocations/packet (%" PRIu64 " per transfer)\n",
      packets.size(), packets_per_s, allocs_per_packet, transfer_allocs);
  std::printf(
      "arena: %zu payload bytes in %" PRIu64 " chunk(s), %" PRIu64
      " arena allocation(s)\n",
      arena.bytes_in_use(), arena.chunk_count(), arena.allocation_count());

  // --- speedups the acceptance gate reads -------------------------------
  const auto find_point = [&](std::string_view alg, std::string_view backend,
                              std::string_view path) -> const Point* {
    for (const auto& p : cipher_points) {
      if (p.algorithm == alg && p.backend == backend && p.path == path) {
        return &p;
      }
    }
    return nullptr;
  };
  const std::string aes128(tv::crypto::to_string(Algorithm::kAes128));
  const Point* aes_block = find_point(aes128, "scalar", "block");
  const Point* aes_batch = find_point(aes128, "scalar", "batch");
  const Point* aes_ni = find_point(aes128, "aes-ni", "batch");
  const double batch_speedup =
      aes_block && aes_batch ? aes_block->seconds / aes_batch->seconds : 0.0;
  const double ni_speedup =
      aes_block && aes_ni ? aes_block->seconds / aes_ni->seconds : 0.0;
  std::printf("speedup vs per-block scalar AES-128: batch %.2fx, aes-ni "
              "%.2fx\n",
              batch_speedup, ni_speedup);

  // --- JSON -------------------------------------------------------------
  if (!options.json_path.empty()) {
    std::ofstream out(options.json_path);
    if (!out) {
      std::fprintf(stderr, "error: cannot open --json file '%s'\n",
                   options.json_path.c_str());
      return 2;
    }
    out << "{\n";
    out << "  \"schema\": \"tv-bench-hotpath-v2\",\n";
    out << "  \"quick\": " << (options.quick ? "true" : "false") << ",\n";
    out << "  \"buffer_bytes\": " << bulk_bytes << ",\n";
    out << "  \"tsc_ghz\": " << json_number(tv::util::tsc_ghz()) << ",\n";
    out << "  \"cycle_clock_available\": "
        << (tv::util::cycle_clock_available() ? "true" : "false") << ",\n";
    out << "  \"aes_ni_available\": "
        << (tv::crypto::aes_ni_available() ? "true" : "false") << ",\n";
    out << "  \"ciphers\": [\n";
    const auto emit_point = [&](const Point& p, bool last) {
      out << "    {\"algorithm\": \"" << p.algorithm << "\", \"backend\": \""
          << p.backend << "\", \"path\": \"" << p.path
          << "\", \"mb_s\": " << json_number(p.mb_s)
          << ", \"cycles_per_byte\": " << json_number(p.cycles_per_byte)
          << "}" << (last ? "" : ",") << "\n";
    };
    for (std::size_t i = 0; i < cipher_points.size(); ++i) {
      emit_point(cipher_points[i], i + 1 == cipher_points.size());
    }
    out << "  ],\n";
    out << "  \"ofb\": [\n";
    for (std::size_t i = 0; i < ofb_points.size(); ++i) {
      emit_point(ofb_points[i], i + 1 == ofb_points.size());
    }
    out << "  ],\n";
    out << "  \"dct\": {\"forward_blocks_per_s\": "
        << json_number(fwd_blocks_s)
        << ", \"roundtrip_blocks_per_s\": " << json_number(round_blocks_s)
        << "},\n";
    out << "  \"transfer\": {\"packets\": " << packets.size()
        << ", \"packets_per_s\": " << json_number(packets_per_s)
        << ", \"allocations_per_packet\": " << json_number(allocs_per_packet)
        << ", \"allocations_per_transfer\": " << transfer_allocs << "},\n";
    out << "  \"arena\": {\"payload_bytes\": " << arena.bytes_in_use()
        << ", \"chunks\": " << arena.chunk_count()
        << ", \"allocations\": " << arena.allocation_count() << "},\n";
    out << "  \"speedups\": {\"aes128_batch_over_block\": "
        << json_number(batch_speedup)
        << ", \"aes128_aesni_over_block\": " << json_number(ni_speedup)
        << "}\n";
    out << "}\n";
    std::printf("\nwrote %s\n", options.json_path.c_str());
  }
  return 0;
}
