// Fig. 6: "screenshots" of the video at the eavesdropper's site for slow
// and fast motion under each encryption level (GOP=30).  With no display
// we emit ASCII luma thumbnails of a mid-clip frame side by side with the
// original, plus the frame's PSNR.
#include <cstdio>

#include "bench/common.hpp"
#include "video/quality.hpp"
#include "util/arena.hpp"

using namespace tv;

namespace {

void show_pair(const video::Frame& original, const video::Frame& seen,
               const char* label) {
  const auto left = video::ascii_thumbnail(original, 38, 14);
  const auto right = video::ascii_thumbnail(seen, 38, 14);
  std::printf("\n[%s]  frame PSNR at eavesdropper: %.1f dB\n", label,
              video::luma_psnr(original, seen));
  std::printf("%-40s %s\n", "original:", "eavesdropper sees:");
  for (std::size_t i = 0; i < left.size(); ++i) {
    std::printf("%-40s %s\n", left[i].c_str(), right[i].c_str());
  }
}

}  // namespace

int main(int argc, char** argv) {
  auto options = bench::BenchOptions::parse(argc, argv);
  options.quality_reps = 1;  // one transfer per policy is a screenshot.
  bench::print_banner("Figure 6", "eavesdropper view (ASCII screenshots)",
                      options);
  bench::WorkloadCache cache{options};
  const auto device = core::samsung_galaxy_s2();

  for (bool fast : {false, true}) {
    const auto& workload = cache.get(bench::motion_for(fast), 30);
    const int mid = options.frames / 2;
    std::printf("\n================ %s motion ================\n",
                fast ? "FAST" : "SLOW");
    for (const auto& pol :
         policy::headline_policies(crypto::Algorithm::kAes256)) {
      // Rebuild the eavesdropper's decode for this policy.
      util::Arena arena;
      std::vector<net::VideoPacket> packets =
          net::clone_packets(workload.packets, arena);
      const auto selected = pol.select(packets);
      const auto cipher =
          crypto::make_cipher_from_seed(pol.algorithm, options.seed);
      std::vector<std::uint8_t> iv(cipher->block_size(), 0x42);
      net::encrypt_selected(packets, selected, *cipher, iv);
      auto spec = bench::make_spec(workload, pol, device, options, false);
      const auto transfer =
          core::simulate_transfer(spec.pipeline, packets, options.seed);
      const auto frames = net::reassemble(
          packets, transfer.eavesdropper_captured,
          static_cast<int>(workload.stream.frames.size()), nullptr, iv);
      const video::Decoder decoder{workload.codec};
      const auto seen = decoder.decode_stream(workload.stream.width,
                                              workload.stream.height, frames);
      show_pair(workload.clip[static_cast<std::size_t>(mid)],
                seen[static_cast<std::size_t>(mid)],
                policy::to_string(pol.mode));
    }
  }

  bench::print_expectation(
      "with 'none' the eavesdropper sees the content; I-frame encryption "
      "leaves slow motion unrecognizable while fast motion retains coarse "
      "structure (intra-refreshed blocks); 'all' shows nothing.");
  return 0;
}
