// Fig. 12 (a-d): per-packet delay over HTTP/TCP on the Samsung Galaxy S-II
// (Section 6.4: marker bit moves into an option header; retransmissions
// recover losses).
#include "bench/common.hpp"

using namespace tv;

int main(int argc, char** argv) {
  const auto options = bench::BenchOptions::parse(argc, argv);
  bench::print_banner("Figure 12", "HTTP/TCP latency, Samsung Galaxy S-II",
                      options);
  bench::BenchEngine engine{options};
  bench::run_delay_figure(engine, core::samsung_galaxy_s2(), options,
                          core::Transport::kHttpTcp);
  bench::print_expectation(
      "the RTP/UDP ordering (none ~= I << P ~= all) persists, with every "
      "bar higher than Fig. 7 due to retransmissions and ACK processing.");
  engine.print_summary();
  return 0;
}
