// Fig. 11 (a-d): power consumption on the HTC Amaze 4G.
#include "bench/common.hpp"

using namespace tv;

int main(int argc, char** argv) {
  const auto options = bench::BenchOptions::parse(argc, argv);
  bench::print_banner("Figure 11", "power consumption, HTC Amaze 4G",
                      options);
  bench::BenchEngine engine{options};
  bench::run_power_figure(engine, core::htc_amaze_4g(), options);
  bench::print_expectation(
      "same ordering as Fig. 10 but a much flatter response (paper: largest "
      "increases +50% slow / +38% fast vs. Samsung's +140%).");
  engine.print_summary();
  return 0;
}
