// Fig. 13 (a-d): per-packet delay over HTTP/TCP on the HTC Amaze 4G.
#include "bench/common.hpp"

using namespace tv;

int main(int argc, char** argv) {
  const auto options = bench::BenchOptions::parse(argc, argv);
  bench::print_banner("Figure 13", "HTTP/TCP latency, HTC Amaze 4G",
                      options);
  bench::BenchEngine engine{options};
  bench::run_delay_figure(engine, core::htc_amaze_4g(), options,
                          core::Transport::kHttpTcp);
  bench::print_expectation(
      "same ordering as Fig. 12; latencies above the RTP/UDP runs of "
      "Fig. 8.");
  engine.print_summary();
  return 0;
}
