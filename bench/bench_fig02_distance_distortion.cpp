// Fig. 2: average distortion (MSE) vs. reference-substitution distance for
// low / medium / high motion content, plus the degree-5 polynomial
// regression of Section 4.3.2.
#include <cstdio>

#include "bench/common.hpp"
#include "distortion/inter_gop.hpp"
#include "util/polynomial.hpp"
#include "video/motion.hpp"
#include "video/scene.hpp"

using namespace tv;

int main(int argc, char** argv) {
  const auto options = bench::BenchOptions::parse(argc, argv);
  bench::print_banner("Figure 2", "average distortion vs. distance", options);

  for (auto level : {video::MotionLevel::kLow, video::MotionLevel::kMedium,
                     video::MotionLevel::kHigh}) {
    const video::SceneGenerator scene{video::SceneParameters::preset(level),
                                      options.seed};
    const video::FrameSequence clip = scene.render_clip(options.frames);
    const auto report = video::classify_motion(clip);
    const auto samples = distortion::measure_substitution_distortion(clip, 12);
    const auto fit = distortion::DistanceDistortion::fit(samples, 5);
    const double r2 =
        util::r_squared(fit.polynomial(), samples.distances, samples.mse);

    std::printf("\n(%s motion, classifier score %.3f -> %s)\n",
                video::to_string(level), report.score,
                video::to_string(report.level));
    std::printf("%-10s %-14s %-14s\n", "distance", "measured MSE",
                "poly fit D(d)");
    for (std::size_t i = 0; i < samples.distances.size(); ++i) {
      std::printf("%-10.0f %-14.2f %-14.2f\n", samples.distances[i],
                  samples.mse[i], fit(samples.distances[i]));
    }
    std::printf("degree-5 coefficients:");
    for (double c : fit.polynomial().coefficients()) std::printf(" %.4g", c);
    std::printf("   R^2 = %.4f\n", r2);
  }

  bench::print_expectation(
      "distortion grows with distance; the curves rise faster and saturate "
      "higher as motion increases (low << medium << high), and degree-5 "
      "polynomials fit the curves closely.");
  return 0;
}
