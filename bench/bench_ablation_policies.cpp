// Policy ablations the paper discusses in prose:
//  * Section 6.2 (end): encrypting only *half* the I-frame packets gives
//    distortion "similar to the case where all the P-frame packets are
//    encrypted and thus does not provide adequate obfuscation".
//  * The I+a%P sweep for SLOW motion (the paper only needs it for fast
//    motion; here we show why: I-only is already terminal for slow).
//  * Cipher choice does not change distortion, only delay/energy — the
//    confidentiality comes from *which* packets are hidden, not how
//    strongly.
//
// Each section is a one-axis sweep run through BenchEngine; rows come
// back in declaration order, computed in parallel across --threads.
#include <cstdio>

#include "bench/common.hpp"

using namespace tv;

int main(int argc, char** argv) {
  const auto options = bench::BenchOptions::parse(argc, argv);
  bench::print_banner("Policy ablations",
                      "partial-I, slow-motion I+a%P, cipher independence",
                      options);
  bench::BenchEngine engine{options};
  const auto device = core::samsung_galaxy_s2();

  std::printf("\n(a) fraction-of-I encryption, slow motion, GOP 30\n");
  std::printf("%-14s %-16s %-14s %-12s\n", "policy", "eaves PSNR dB",
              "eaves MOS", "delay ms");
  {
    auto spec = bench::base_spec(options, /*quality=*/true);
    spec.devices = {device};
    spec.policies = {
        {policy::Mode::kFractionI, crypto::Algorithm::kAes256, 0.25},
        {policy::Mode::kFractionI, crypto::Algorithm::kAes256, 0.50},
        {policy::Mode::kFractionI, crypto::Algorithm::kAes256, 0.75},
        {policy::Mode::kIFrames, crypto::Algorithm::kAes256, 0.0},
        {policy::Mode::kPFrames, crypto::Algorithm::kAes256, 0.0},
    };
    for (const auto& c : engine.run(spec)) {
      std::printf("%-14s %-16s %-14s %-12.1f\n",
                  c.cell.policy.label().c_str(),
                  bench::fmt_ci(c.result.eavesdropper_psnr_db, 2).c_str(),
                  bench::fmt_ci(c.result.eavesdropper_mos, 2).c_str(),
                  c.result.delay_ms.mean());
    }
  }

  std::printf("\n(b) I+a%%P on slow motion (already terminal at a=0)\n");
  std::printf("%-14s %-16s %-14s\n", "policy", "eaves PSNR dB", "eaves MOS");
  {
    auto spec = bench::base_spec(options, /*quality=*/true);
    spec.devices = {device};
    spec.policies = {
        {policy::Mode::kIFrames, crypto::Algorithm::kAes256, 0.0},
        {policy::Mode::kIPlusFractionP, crypto::Algorithm::kAes256, 0.2},
        {policy::Mode::kIPlusFractionP, crypto::Algorithm::kAes256, 0.5},
    };
    for (const auto& c : engine.run(spec)) {
      std::printf("%-14s %-16s %-14s\n", c.cell.policy.label().c_str(),
                  bench::fmt_ci(c.result.eavesdropper_psnr_db, 2).c_str(),
                  bench::fmt_ci(c.result.eavesdropper_mos, 2).c_str());
    }
  }

  std::printf("\n(c) cipher independence of distortion (fast, I-frames)\n");
  std::printf("%-10s %-16s %-12s %-10s\n", "cipher", "eaves PSNR dB",
              "delay ms", "power W");
  {
    auto spec = bench::base_spec(options, /*quality=*/true);
    spec.devices = {device};
    spec.motions = {video::MotionLevel::kHigh};
    spec.policies = {{policy::Mode::kIFrames, crypto::Algorithm::kAes256,
                      0.0}};
    spec.algorithms = {crypto::Algorithm::kAes128, crypto::Algorithm::kAes256,
                       crypto::Algorithm::kTripleDes};
    for (const auto& c : engine.run(spec)) {
      std::printf("%-10s %-16s %-12.1f %-10.2f\n",
                  std::string(crypto::to_string(c.cell.policy.algorithm))
                      .c_str(),
                  bench::fmt_ci(c.result.eavesdropper_psnr_db, 2).c_str(),
                  c.result.delay_ms.mean(), c.result.power_w.mean());
    }
  }

  bench::print_expectation(
      "(a) partial-I encryption degrades gracefully and somewhere below "
      "full-I it stops being adequate — the paper found 50% already at "
      "P-only levels; with this codec's slice structure the inadequate "
      "point sits near 25% (an evenly-strided half kills most slices).  "
      "(b) for slow motion, adding P fractions on top of I buys almost "
      "nothing; (c) PSNR is flat across ciphers while delay/power vary, "
      "because confidentiality comes from packet selection, not key "
      "length.");
  engine.print_summary();
  return 0;
}
