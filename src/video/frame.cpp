#include "video/frame.hpp"

#include <cmath>
#include <limits>
#include <stdexcept>
#include <string>

namespace tv::video {

Frame::Frame(int width, int height) : width_(width), height_(height) {
  if (width <= 0 || height <= 0 || width % 16 != 0 || height % 16 != 0) {
    throw std::invalid_argument{"Frame: dimensions must be positive multiples of 16"};
  }
  y_.assign(static_cast<std::size_t>(width) * static_cast<std::size_t>(height),
            0);
  u_.assign(static_cast<std::size_t>(width / 2) *
                static_cast<std::size_t>(height / 2),
            128);
  v_.assign(static_cast<std::size_t>(width / 2) *
                static_cast<std::size_t>(height / 2),
            128);
}

void Frame::fill(std::uint8_t yv, std::uint8_t uv, std::uint8_t vv) {
  y_.assign(y_.size(), yv);
  u_.assign(u_.size(), uv);
  v_.assign(v_.size(), vv);
}

double luma_mse(const Frame& a, const Frame& b) {
  if (a.width() != b.width() || a.height() != b.height()) {
    throw std::invalid_argument{"luma_mse: dimension mismatch"};
  }
  const auto& ya = a.y_plane();
  const auto& yb = b.y_plane();
  double acc = 0.0;
  for (std::size_t i = 0; i < ya.size(); ++i) {
    const double d = static_cast<double>(ya[i]) - static_cast<double>(yb[i]);
    acc += d * d;
  }
  return acc / static_cast<double>(ya.size());
}

double psnr_from_mse(double mse) {
  if (mse <= 0.0) return std::numeric_limits<double>::infinity();
  return 20.0 * std::log10(255.0 / std::sqrt(mse));
}

double mse_from_psnr(double psnr_db) {
  const double ratio = 255.0 / std::pow(10.0, psnr_db / 20.0);
  return ratio * ratio;
}

double luma_psnr(const Frame& a, const Frame& b) {
  return psnr_from_mse(luma_mse(a, b));
}

double sequence_psnr(const FrameSequence& reference,
                     const FrameSequence& received) {
  if (reference.size() != received.size() || reference.empty()) {
    throw std::invalid_argument{"sequence_psnr: length mismatch or empty"};
  }
  double mse_sum = 0.0;
  for (std::size_t i = 0; i < reference.size(); ++i) {
    mse_sum += luma_mse(reference[i], received[i]);
  }
  return psnr_from_mse(mse_sum / static_cast<double>(reference.size()));
}

std::vector<std::string> ascii_thumbnail(const Frame& frame, int cols,
                                         int rows) {
  static constexpr char kRamp[] = " .:-=+*#%@";
  static constexpr int kRampSize = 10;
  std::vector<std::string> out;
  out.reserve(static_cast<std::size_t>(rows));
  for (int r = 0; r < rows; ++r) {
    std::string line;
    line.reserve(static_cast<std::size_t>(cols));
    for (int c = 0; c < cols; ++c) {
      // Average the luma cell that maps onto this character.
      const int x0 = c * frame.width() / cols;
      const int x1 = (c + 1) * frame.width() / cols;
      const int y0 = r * frame.height() / rows;
      const int y1 = (r + 1) * frame.height() / rows;
      long sum = 0;
      int count = 0;
      for (int yy = y0; yy < y1; ++yy) {
        for (int xx = x0; xx < x1; ++xx) {
          sum += frame.y(xx, yy);
          ++count;
        }
      }
      const int avg = count > 0 ? static_cast<int>(sum / count) : 0;
      line.push_back(kRamp[avg * kRampSize / 256]);
    }
    out.push_back(std::move(line));
  }
  return out;
}

}  // namespace tv::video
