#include "video/y4m.hpp"

#include <fstream>
#include <sstream>
#include <stdexcept>

namespace tv::video {

void write_y4m(std::ostream& out, const FrameSequence& clip, int fps) {
  if (clip.empty()) throw std::invalid_argument{"write_y4m: empty clip"};
  if (fps <= 0) throw std::invalid_argument{"write_y4m: bad fps"};
  const int w = clip.front().width();
  const int h = clip.front().height();
  out << "YUV4MPEG2 W" << w << " H" << h << " F" << fps << ":1 Ip A1:1 C420\n";
  for (const Frame& f : clip) {
    if (f.width() != w || f.height() != h) {
      throw std::invalid_argument{"write_y4m: mixed frame sizes"};
    }
    out << "FRAME\n";
    out.write(reinterpret_cast<const char*>(f.y_plane().data()),
              static_cast<std::streamsize>(f.y_plane().size()));
    out.write(reinterpret_cast<const char*>(f.u_plane().data()),
              static_cast<std::streamsize>(f.u_plane().size()));
    out.write(reinterpret_cast<const char*>(f.v_plane().data()),
              static_cast<std::streamsize>(f.v_plane().size()));
  }
  if (!out) throw std::runtime_error{"write_y4m: stream failure"};
}

void write_y4m_file(const std::string& path, const FrameSequence& clip,
                    int fps) {
  std::ofstream out{path, std::ios::binary};
  if (!out) throw std::runtime_error{"write_y4m_file: cannot open " + path};
  write_y4m(out, clip, fps);
}

Y4mClip read_y4m(std::istream& in) {
  std::string header;
  if (!std::getline(in, header)) {
    throw std::runtime_error{"read_y4m: missing stream header"};
  }
  std::istringstream tokens{header};
  std::string magic;
  tokens >> magic;
  if (magic != "YUV4MPEG2") {
    throw std::runtime_error{"read_y4m: not a YUV4MPEG2 stream"};
  }
  int width = 0;
  int height = 0;
  Y4mClip clip;
  std::string tag;
  while (tokens >> tag) {
    switch (tag[0]) {
      case 'W': width = std::stoi(tag.substr(1)); break;
      case 'H': height = std::stoi(tag.substr(1)); break;
      case 'F': {
        const auto colon = tag.find(':');
        clip.fps_numerator = std::stoi(tag.substr(1, colon - 1));
        if (colon != std::string::npos) {
          clip.fps_denominator = std::stoi(tag.substr(colon + 1));
        }
        break;
      }
      case 'C':
        if (tag != "C420" && tag != "C420jpeg" && tag != "C420mpeg2" &&
            tag != "C420paldv") {
          throw std::runtime_error{"read_y4m: unsupported chroma " + tag};
        }
        break;
      default:
        break;  // interlacing/aspect tags are irrelevant here.
    }
  }
  if (width <= 0 || height <= 0) {
    throw std::runtime_error{"read_y4m: missing dimensions"};
  }
  if (width % 16 != 0 || height % 16 != 0) {
    throw std::runtime_error{
        "read_y4m: dimensions must be multiples of 16 for the codec"};
  }

  std::string frame_line;
  while (std::getline(in, frame_line)) {
    if (frame_line.rfind("FRAME", 0) != 0) {
      throw std::runtime_error{"read_y4m: expected FRAME marker"};
    }
    Frame f(width, height);
    in.read(reinterpret_cast<char*>(f.y_plane().data()),
            static_cast<std::streamsize>(f.y_plane().size()));
    in.read(reinterpret_cast<char*>(f.u_plane().data()),
            static_cast<std::streamsize>(f.u_plane().size()));
    in.read(reinterpret_cast<char*>(f.v_plane().data()),
            static_cast<std::streamsize>(f.v_plane().size()));
    if (!in) throw std::runtime_error{"read_y4m: truncated frame data"};
    clip.frames.push_back(std::move(f));
  }
  if (clip.frames.empty()) {
    throw std::runtime_error{"read_y4m: no frames"};
  }
  return clip;
}

Y4mClip read_y4m_file(const std::string& path) {
  std::ifstream in{path, std::ios::binary};
  if (!in) throw std::runtime_error{"read_y4m_file: cannot open " + path};
  return read_y4m(in);
}

}  // namespace tv::video
