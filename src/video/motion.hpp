// Motion-level estimation — the AForge stand-in (Fig. 1 calibration step).
//
// The paper uses the AForge motion-detection tool to classify clips into
// low/medium/high motion before picking decoder-sensitivity and distortion
// parameters.  AForge's detector is frame differencing; we do the same:
// the motion score is the fraction of luma pixels whose inter-frame change
// exceeds a threshold, averaged over the clip.
#pragma once

#include "video/frame.hpp"
#include "video/scene.hpp"

namespace tv::video {

struct MotionReport {
  double score = 0.0;       ///< mean fraction of changed pixels, [0, 1].
  MotionLevel level = MotionLevel::kLow;
};

/// Fraction of luma pixels differing by more than `threshold` between two
/// frames.
[[nodiscard]] double motion_score(const Frame& previous, const Frame& current,
                                  int threshold = 18);

/// Classify a clip.  The cutoffs (0.005, 0.05) were calibrated so the
/// three SceneParameters presets map to their own classes with an
/// order-of-magnitude margin; they are exposed for calibration
/// experiments on other content.
[[nodiscard]] MotionReport classify_motion(const FrameSequence& clip,
                                           int pixel_threshold = 18,
                                           double low_cutoff = 0.005,
                                           double high_cutoff = 0.05);

}  // namespace tv::video
