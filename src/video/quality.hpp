// Objective and subjective quality metrics.
//
// The paper reports PSNR (eq. 28) and the EvalVid Mean Opinion Score, a
// 1..5 band derived from PSNR.  We use EvalVid's published PSNR-to-MOS
// mapping so "MOS drops to ~1 under partial encryption" reads identically.
#pragma once

#include "video/frame.hpp"

namespace tv::video {

/// EvalVid's PSNR -> MOS banding:
///   > 37 dB -> 5 (excellent), 31-37 -> 4, 25-31 -> 3, 20-25 -> 2, <20 -> 1.
[[nodiscard]] int mos_from_psnr(double psnr_db);

/// Per-frame MOS averaged over the clip, EvalVid-style: each frame's PSNR
/// is banded, then the bands are averaged (this is why the paper's MOS has
/// fractional values like 1.26).
[[nodiscard]] double sequence_mos(const FrameSequence& reference,
                                  const FrameSequence& received);

/// Per-frame luma PSNR trace between two clips (clamped to `cap` dB where
/// frames are identical, matching EvalVid's handling of infinite PSNR).
[[nodiscard]] std::vector<double> psnr_trace(const FrameSequence& reference,
                                             const FrameSequence& received,
                                             double cap = 60.0);

}  // namespace tv::video
