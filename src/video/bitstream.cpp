#include "video/bitstream.hpp"

namespace tv::video {

void ByteWriter::put_varint(std::uint64_t v) {
  while (v >= 0x80) {
    bytes_.push_back(static_cast<std::uint8_t>(v) | 0x80);
    v >>= 7;
  }
  bytes_.push_back(static_cast<std::uint8_t>(v));
}

void ByteWriter::put_signed(std::int64_t v) {
  const std::uint64_t zz =
      (static_cast<std::uint64_t>(v) << 1) ^
      static_cast<std::uint64_t>(v >> 63);
  put_varint(zz);
}

std::uint8_t ByteReader::get_u8() {
  if (pos_ >= data_.size()) throw BitstreamError{"get_u8: out of data"};
  return data_[pos_++];
}

std::uint16_t ByteReader::get_u16() {
  const std::uint16_t lo = get_u8();
  const std::uint16_t hi = get_u8();
  return static_cast<std::uint16_t>(lo | (hi << 8));
}

std::uint32_t ByteReader::get_u32() {
  std::uint32_t v = 0;
  for (int i = 0; i < 4; ++i) {
    v |= static_cast<std::uint32_t>(get_u8()) << (8 * i);
  }
  return v;
}

std::uint64_t ByteReader::get_varint() {
  std::uint64_t v = 0;
  int shift = 0;
  for (;;) {
    if (shift >= 64) throw BitstreamError{"get_varint: overlong"};
    const std::uint8_t byte = get_u8();
    v |= static_cast<std::uint64_t>(byte & 0x7f) << shift;
    if ((byte & 0x80) == 0) break;
    shift += 7;
  }
  return v;
}

std::int64_t ByteReader::get_signed() {
  const std::uint64_t zz = get_varint();
  return static_cast<std::int64_t>((zz >> 1) ^ (~(zz & 1) + 1));
}

}  // namespace tv::video
