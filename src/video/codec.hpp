// Block-transform video codec with an IPP...P GOP structure.
//
// This is the from-scratch substitute for the paper's x264/GPAC toolchain
// (DESIGN.md Section 2).  It reproduces the structural properties the
// models depend on:
//   * I-frames are intra-coded and large (fragment into many MTU packets);
//   * P-frames are motion-compensated against the previous reconstructed
//     frame and shrink/grow with content motion;
//   * each frame is coded as independently decodable macroblock-row slices,
//     so losing (or failing to decrypt) part of a frame degrades rather
//     than destroys it — this is what gives the decoder a "sensitivity"
//     in the sense of Section 4.3 of the paper;
//   * a frame whose header packet is missing is undecodable, and P-frames
//     decoded against concealed references drift, exactly the mechanism
//     behind the paper's reference-substitution distortion model.
#pragma once

#include <cstdint>
#include <optional>
#include <vector>

#include "video/frame.hpp"

namespace tv::video {

/// Encoder tuning knobs.  Defaults give CIF I-frames of roughly 8-20 kB and
/// slow-motion P-frames of tens to hundreds of bytes, matching the size
/// ratios quoted in Sections 2 and 4.2 of the paper.
struct CodecConfig {
  int gop_size = 30;        ///< frames per GOP (Table 1: 30 or 50).
  double i_qstep = 14.0;    ///< quantizer step for intra blocks.
  double p_qstep = 18.0;    ///< quantizer step for inter residuals.
  int search_range = 8;     ///< full-pel motion search radius.
  /// Mean per-pixel SAD above which a P-frame macroblock is coded intra
  /// instead of inter (new content after cuts / fast motion) — the same
  /// refresh mechanism H.264 encoders use.  Fast content therefore remains
  /// partially reconstructible from P-frames alone, which is exactly why
  /// the paper needs I+20%P encryption for fast-motion video.
  double intra_refresh_sad = 10.0;
};

/// One compressed frame.
struct EncodedFrame {
  int index = 0;      ///< display/encode order (no B-frames).
  bool is_i = false;  ///< true for intra (GOP-leading) frames.
  std::vector<std::uint8_t> data;

  [[nodiscard]] std::size_t size_bytes() const { return data.size(); }
};

/// A compressed clip.
struct EncodedStream {
  CodecConfig config;
  int width = 0;
  int height = 0;
  std::vector<EncodedFrame> frames;

  [[nodiscard]] std::size_t total_bytes() const;
  /// Mean size of I-frames / P-frames in bytes (0 if none).
  [[nodiscard]] double mean_i_bytes() const;
  [[nodiscard]] double mean_p_bytes() const;
};

/// What a receiver ends up with for one frame after transmission: which
/// byte ranges of the compressed frame are present and readable.  A byte is
/// readable when its packet was received *and* was either unencrypted or
/// the receiver can decrypt it.
struct ReceivedFrameData {
  std::vector<std::uint8_t> data;  ///< full-length buffer (zeros where missing).
  std::vector<bool> byte_ok;       ///< per-byte availability, same length.

  /// Completely missing frame.
  [[nodiscard]] static ReceivedFrameData lost(std::size_t size);
  /// Perfect copy.
  [[nodiscard]] static ReceivedFrameData intact(std::vector<std::uint8_t> bytes);

  [[nodiscard]] bool range_ok(std::size_t begin, std::size_t end) const;
};

class Encoder {
 public:
  explicit Encoder(CodecConfig config);

  /// Encode a clip into an IPP...P stream.  Frames must share dimensions.
  [[nodiscard]] EncodedStream encode(const FrameSequence& clip) const;

 private:
  CodecConfig config_;
};

/// Per-frame decode outcome.
struct DecodeResult {
  Frame frame;
  int total_macroblocks = 0;
  int decoded_macroblocks = 0;  ///< MBs decoded from bits (not concealed).
  bool header_ok = false;

  [[nodiscard]] double decoded_fraction() const {
    return total_macroblocks > 0
               ? static_cast<double>(decoded_macroblocks) / total_macroblocks
               : 0.0;
  }
};

class Decoder {
 public:
  explicit Decoder(CodecConfig config);

  /// Decode a single frame from possibly incomplete data.  `reference` is
  /// the previously displayed frame (nullptr only before the first frame).
  /// Slices whose bytes are missing are concealed from the reference (or
  /// mid-gray when there is none).
  [[nodiscard]] DecodeResult decode_frame(const ReceivedFrameData& received,
                                          const Frame* reference) const;

  /// Decode a whole transmitted stream with loss concealment: a frame whose
  /// header is unreadable is replaced by the previous output frame (the
  /// paper's frame-copy concealment), and later P-frames keep decoding
  /// against the concealed output (drift).
  [[nodiscard]] FrameSequence decode_stream(
      int width, int height,
      const std::vector<ReceivedFrameData>& frames) const;

 private:
  CodecConfig config_;
};

}  // namespace tv::video
