// 8x8 block transforms: floating-point DCT-II/III, uniform quantization and
// zigzag scan — the signal-processing core of the intra/inter codec.
#pragma once

#include <array>
#include <cstdint>

namespace tv::video {

/// An 8x8 block of spatial samples or transform coefficients, row-major.
using Block8x8 = std::array<double, 64>;
/// Quantized coefficient block.
using QuantBlock = std::array<std::int16_t, 64>;

/// Forward 8x8 DCT-II (orthonormal).
[[nodiscard]] Block8x8 forward_dct(const Block8x8& spatial);

/// Inverse 8x8 DCT (DCT-III), the exact inverse of forward_dct.
[[nodiscard]] Block8x8 inverse_dct(const Block8x8& coefficients);

/// Uniform mid-tread quantizer.  The DC coefficient uses qstep/2 so flat
/// areas keep their level, mimicking codec practice.
[[nodiscard]] QuantBlock quantize(const Block8x8& coefficients, double qstep);

/// Reconstruction levels for `quantize`.
[[nodiscard]] Block8x8 dequantize(const QuantBlock& levels, double qstep);

/// Dead-zone quantizer for inter (residual) blocks: coefficients with
/// |c| < qstep map to zero, so quantization noise left by the reference
/// frame (bounded by ~qstep/2) cannot oscillate across the coding
/// threshold and re-code static macroblocks every frame.
[[nodiscard]] QuantBlock quantize_deadzone(const Block8x8& coefficients,
                                           double qstep);

/// Reconstruction for `quantize_deadzone` (bin centers).
[[nodiscard]] Block8x8 dequantize_deadzone(const QuantBlock& levels,
                                           double qstep);

/// JPEG/H.26x zigzag scan order: kZigzag[i] is the row-major index of the
/// i-th coefficient in scan order.
extern const std::array<int, 64> kZigzag;

}  // namespace tv::video
