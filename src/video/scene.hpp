// Synthetic YUV scene generator — the stand-in for the paper's CIF
// reference clips (Section 2 of DESIGN.md).
//
// The paper distinguishes slow-, medium- and high-motion content: motion
// level drives (a) P-frame sizes relative to I-frames and (b) how fast the
// reference-substitution distortion (Fig. 2) grows with distance.  Both
// effects come purely from how much pixel content changes between frames,
// so a procedural world with a panning camera, moving textured objects and
// optional scene cuts exercises the identical code paths.
#pragma once

#include <cstdint>
#include <string_view>
#include <vector>

#include "video/frame.hpp"

namespace tv::video {

/// Paper's three content classes (Section 4.3.2, Fig. 2).
enum class MotionLevel { kLow, kMedium, kHigh };

[[nodiscard]] const char* to_string(MotionLevel level);

/// Inverse of to_string; also accepts the paper's "slow"/"fast" aliases.
/// Throws std::invalid_argument on anything else.
[[nodiscard]] MotionLevel motion_from_string(std::string_view name);

/// Tunable generator parameters; use the presets unless you are making a
/// custom workload.
struct SceneParameters {
  int width = kCifWidth;
  int height = kCifHeight;
  double pan_speed = 0.3;        ///< camera pan, luma pixels per frame.
  double object_speed = 1.0;     ///< object translation, pixels per frame.
  int object_count = 3;          ///< moving textured objects.
  int scene_cut_period = 0;      ///< frames between hard cuts; 0 = never.
  double texture_scale = 24.0;   ///< background feature size in pixels.
  double noise_amplitude = 6.0;  ///< per-pixel sensor-noise level.

  [[nodiscard]] static SceneParameters preset(MotionLevel level);
};

/// Deterministic procedural video source.
class SceneGenerator {
 public:
  SceneGenerator(SceneParameters params, std::uint64_t seed);

  /// Render frame `index` (0-based).  Rendering is a pure function of
  /// (params, seed, index), so frames can be generated in any order.
  [[nodiscard]] Frame render(int index) const;

  /// Render frames [0, count).
  [[nodiscard]] FrameSequence render_clip(int count) const;

  [[nodiscard]] const SceneParameters& parameters() const { return params_; }

 private:
  struct Object {
    double x0 = 0.0;  ///< initial center.
    double y0 = 0.0;
    double vx = 0.0;  ///< velocity, px/frame.
    double vy = 0.0;
    double radius = 20.0;
    std::uint8_t luma = 200;
    std::uint8_t cb = 128;
    std::uint8_t cr = 128;
    std::uint64_t texture_seed = 0;
  };

  [[nodiscard]] std::vector<Object> objects_for_scene(std::uint64_t scene) const;

  SceneParameters params_;
  std::uint64_t seed_;
};

}  // namespace tv::video
