#include "video/quality.hpp"

#include <algorithm>
#include <stdexcept>

namespace tv::video {

int mos_from_psnr(double psnr_db) {
  if (psnr_db > 37.0) return 5;
  if (psnr_db > 31.0) return 4;
  if (psnr_db > 25.0) return 3;
  if (psnr_db > 20.0) return 2;
  return 1;
}

double sequence_mos(const FrameSequence& reference,
                    const FrameSequence& received) {
  if (reference.size() != received.size() || reference.empty()) {
    throw std::invalid_argument{"sequence_mos: length mismatch or empty"};
  }
  double total = 0.0;
  for (std::size_t i = 0; i < reference.size(); ++i) {
    total += mos_from_psnr(luma_psnr(reference[i], received[i]));
  }
  return total / static_cast<double>(reference.size());
}

std::vector<double> psnr_trace(const FrameSequence& reference,
                               const FrameSequence& received, double cap) {
  if (reference.size() != received.size()) {
    throw std::invalid_argument{"psnr_trace: length mismatch"};
  }
  std::vector<double> trace;
  trace.reserve(reference.size());
  for (std::size_t i = 0; i < reference.size(); ++i) {
    trace.push_back(std::min(cap, luma_psnr(reference[i], received[i])));
  }
  return trace;
}

}  // namespace tv::video
