// Byte-oriented bitstream writer/reader used by the codec.
//
// Coefficients are coded as (run, level) pairs with LEB128 varints and
// zigzag-signed mapping — a deliberately simple stand-in for CAVLC that
// still shrinks with content redundancy, so I/P frame sizes respond to
// motion the way the paper's x264 streams do.
#pragma once

#include <cstdint>
#include <span>
#include <stdexcept>
#include <vector>

namespace tv::video {

/// Thrown by ByteReader on truncated or malformed input; the decoder turns
/// it into concealment of the remaining blocks.
class BitstreamError : public std::runtime_error {
 public:
  using std::runtime_error::runtime_error;
};

class ByteWriter {
 public:
  void put_u8(std::uint8_t v) { bytes_.push_back(v); }
  void put_u16(std::uint16_t v) {
    bytes_.push_back(static_cast<std::uint8_t>(v & 0xff));
    bytes_.push_back(static_cast<std::uint8_t>(v >> 8));
  }
  void put_u32(std::uint32_t v) {
    for (int i = 0; i < 4; ++i) {
      bytes_.push_back(static_cast<std::uint8_t>(v & 0xff));
      v >>= 8;
    }
  }
  /// Unsigned LEB128.
  void put_varint(std::uint64_t v);
  /// Zigzag-mapped signed varint.
  void put_signed(std::int64_t v);

  [[nodiscard]] std::size_t size() const { return bytes_.size(); }
  [[nodiscard]] std::vector<std::uint8_t> take() { return std::move(bytes_); }
  [[nodiscard]] const std::vector<std::uint8_t>& bytes() const { return bytes_; }

 private:
  std::vector<std::uint8_t> bytes_;
};

class ByteReader {
 public:
  explicit ByteReader(std::span<const std::uint8_t> data) : data_(data) {}

  [[nodiscard]] std::uint8_t get_u8();
  [[nodiscard]] std::uint16_t get_u16();
  [[nodiscard]] std::uint32_t get_u32();
  [[nodiscard]] std::uint64_t get_varint();
  [[nodiscard]] std::int64_t get_signed();

  [[nodiscard]] std::size_t position() const { return pos_; }
  [[nodiscard]] std::size_t remaining() const { return data_.size() - pos_; }
  [[nodiscard]] bool exhausted() const { return pos_ >= data_.size(); }

 private:
  std::span<const std::uint8_t> data_;
  std::size_t pos_ = 0;
};

}  // namespace tv::video
