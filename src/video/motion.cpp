#include "video/motion.hpp"

#include <cmath>
#include <stdexcept>

namespace tv::video {

double motion_score(const Frame& previous, const Frame& current,
                    int threshold) {
  if (previous.width() != current.width() ||
      previous.height() != current.height()) {
    throw std::invalid_argument{"motion_score: dimension mismatch"};
  }
  const auto& a = previous.y_plane();
  const auto& b = current.y_plane();
  std::size_t changed = 0;
  for (std::size_t i = 0; i < a.size(); ++i) {
    if (std::abs(static_cast<int>(a[i]) - static_cast<int>(b[i])) > threshold) {
      ++changed;
    }
  }
  return static_cast<double>(changed) / static_cast<double>(a.size());
}

MotionReport classify_motion(const FrameSequence& clip, int pixel_threshold,
                             double low_cutoff, double high_cutoff) {
  if (clip.size() < 2) {
    throw std::invalid_argument{"classify_motion: need at least two frames"};
  }
  double total = 0.0;
  for (std::size_t i = 1; i < clip.size(); ++i) {
    total += motion_score(clip[i - 1], clip[i], pixel_threshold);
  }
  MotionReport report;
  report.score = total / static_cast<double>(clip.size() - 1);
  if (report.score < low_cutoff) {
    report.level = MotionLevel::kLow;
  } else if (report.score < high_cutoff) {
    report.level = MotionLevel::kMedium;
  } else {
    report.level = MotionLevel::kHigh;
  }
  return report;
}

}  // namespace tv::video
