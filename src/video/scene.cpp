#include "video/scene.hpp"

#include <cmath>
#include <stdexcept>
#include <string>

#include "util/rng.hpp"

namespace tv::video {

namespace {

// Integer coordinate hash -> [0, 1).  Deterministic spatial noise basis.
double lattice_noise(std::int64_t ix, std::int64_t iy, std::uint64_t seed) {
  std::uint64_t h = seed;
  h ^= static_cast<std::uint64_t>(ix) * 0x9e3779b97f4a7c15ULL;
  h = (h ^ (h >> 30)) * 0xbf58476d1ce4e5b9ULL;
  h ^= static_cast<std::uint64_t>(iy) * 0xc2b2ae3d27d4eb4fULL;
  h = (h ^ (h >> 27)) * 0x94d049bb133111ebULL;
  h ^= h >> 31;
  return static_cast<double>(h >> 11) * 0x1.0p-53;
}

double smoothstep(double t) { return t * t * (3.0 - 2.0 * t); }

// Bilinear value noise at continuous world coordinates.
double value_noise(double x, double y, double scale, std::uint64_t seed) {
  const double fx = x / scale;
  const double fy = y / scale;
  const auto ix = static_cast<std::int64_t>(std::floor(fx));
  const auto iy = static_cast<std::int64_t>(std::floor(fy));
  const double tx = smoothstep(fx - static_cast<double>(ix));
  const double ty = smoothstep(fy - static_cast<double>(iy));
  const double n00 = lattice_noise(ix, iy, seed);
  const double n10 = lattice_noise(ix + 1, iy, seed);
  const double n01 = lattice_noise(ix, iy + 1, seed);
  const double n11 = lattice_noise(ix + 1, iy + 1, seed);
  const double a = n00 + (n10 - n00) * tx;
  const double b = n01 + (n11 - n01) * tx;
  return a + (b - a) * ty;
}

// Two-octave fractal noise, mapped to [0, 255].
double background_luma(double x, double y, double scale, std::uint64_t seed) {
  const double coarse = value_noise(x, y, scale, seed);
  const double fine = value_noise(x, y, scale / 4.0, seed ^ 0xabcdULL);
  return 40.0 + 170.0 * (0.7 * coarse + 0.3 * fine);
}

std::uint8_t clamp_pixel(double v) {
  if (v < 0.0) return 0;
  if (v > 255.0) return 255;
  return static_cast<std::uint8_t>(v + 0.5);
}

}  // namespace

const char* to_string(MotionLevel level) {
  switch (level) {
    case MotionLevel::kLow: return "low";
    case MotionLevel::kMedium: return "medium";
    case MotionLevel::kHigh: return "high";
  }
  return "?";
}

MotionLevel motion_from_string(std::string_view name) {
  if (name == "low" || name == "slow") return MotionLevel::kLow;
  if (name == "medium") return MotionLevel::kMedium;
  if (name == "high" || name == "fast") return MotionLevel::kHigh;
  throw std::invalid_argument{"unknown motion level: " + std::string{name} +
                              " (low|medium|high)"};
}

SceneParameters SceneParameters::preset(MotionLevel level) {
  SceneParameters p;
  switch (level) {
    // Note on pan speeds: the codec uses full-pel motion compensation (no
    // sub-pel interpolation), so a fractional global pan would defeat MC in
    // every macroblock and inflate P-frames unrealistically.  Camera pans
    // are therefore 0 (static, "slow" surveillance-style content) or whole
    // pixels per frame; content motion comes from the objects and cuts.
    case MotionLevel::kLow:
      p.pan_speed = 0.0;
      p.object_speed = 0.9;
      p.object_count = 3;
      p.scene_cut_period = 0;
      p.noise_amplitude = 4.0;
      break;
    case MotionLevel::kMedium:
      p.pan_speed = 1.0;
      p.object_speed = 3.5;
      p.object_count = 4;
      p.scene_cut_period = 0;
      break;
    case MotionLevel::kHigh:
      p.pan_speed = 4.0;
      p.object_speed = 11.0;
      p.object_count = 6;
      p.scene_cut_period = 45;  // 1.5 s at 30 fps between hard cuts.
      break;
  }
  return p;
}

SceneGenerator::SceneGenerator(SceneParameters params, std::uint64_t seed)
    : params_(params), seed_(seed) {}

std::vector<SceneGenerator::Object> SceneGenerator::objects_for_scene(
    std::uint64_t scene) const {
  util::Rng rng{seed_ ^ (scene * 0x2545f4914f6cdd1dULL + 0x1234ULL)};
  std::vector<Object> objects;
  objects.reserve(static_cast<std::size_t>(params_.object_count));
  for (int i = 0; i < params_.object_count; ++i) {
    Object o;
    o.x0 = rng.uniform(0.0, params_.width);
    o.y0 = rng.uniform(0.0, params_.height);
    const double angle = rng.uniform(0.0, 6.283185307);
    const double speed = params_.object_speed * rng.uniform(0.6, 1.4);
    o.vx = speed * std::cos(angle);
    o.vy = speed * std::sin(angle);
    o.radius = rng.uniform(14.0, 34.0);
    o.luma = static_cast<std::uint8_t>(rng.uniform_int(180) + 60);
    o.cb = static_cast<std::uint8_t>(rng.uniform_int(160) + 48);
    o.cr = static_cast<std::uint8_t>(rng.uniform_int(160) + 48);
    o.texture_seed = rng();
    objects.push_back(o);
  }
  return objects;
}

Frame SceneGenerator::render(int index) const {
  Frame frame(params_.width, params_.height);
  const std::uint64_t scene =
      params_.scene_cut_period > 0
          ? static_cast<std::uint64_t>(index / params_.scene_cut_period)
          : 0;
  const int frame_in_scene =
      params_.scene_cut_period > 0 ? index % params_.scene_cut_period : index;
  const std::uint64_t bg_seed = seed_ ^ (scene * 0x9e3779b97f4a7c15ULL);
  const double pan_x = params_.pan_speed * frame_in_scene;
  const double pan_y = 0.37 * params_.pan_speed * frame_in_scene;

  const std::vector<Object> objects = objects_for_scene(scene);

  // Luma plane: background + objects + sensor noise.
  for (int yy = 0; yy < params_.height; ++yy) {
    for (int xx = 0; xx < params_.width; ++xx) {
      double value = background_luma(xx + pan_x, yy + pan_y,
                                     params_.texture_scale, bg_seed);
      for (const Object& o : objects) {
        const double cx = o.x0 + o.vx * frame_in_scene;
        const double cy = o.y0 + o.vy * frame_in_scene;
        // Objects wrap around the frame so they never leave the picture.
        const double w = params_.width;
        const double h = params_.height;
        const double ox = cx - w * std::floor(cx / w);
        const double oy = cy - h * std::floor(cy / h);
        const double dx = xx - ox;
        const double dy = yy - oy;
        const double dist = std::sqrt(dx * dx + dy * dy);
        if (dist < o.radius) {
          const double tex = value_noise(dx + 100.0, dy + 100.0, 6.0,
                                         o.texture_seed);
          const double object_value = o.luma + 40.0 * (tex - 0.5);
          // Soft 3-pixel rim: sub-pixel object motion then produces small,
          // quantizable residuals instead of hard-edge spikes.
          const double edge = o.radius - dist;
          const double alpha =
              edge >= 3.0 ? 1.0 : smoothstep(edge / 3.0);
          value = value + alpha * (object_value - value);
        }
      }
      // Deterministic per-pixel, per-frame noise (sensor grain).
      const double grain =
          params_.noise_amplitude *
          (lattice_noise(xx + 7919 * index, yy, bg_seed ^ 0x5a5aULL) - 0.5);
      frame.y(xx, yy) = clamp_pixel(value + grain);
    }
  }

  // Chroma planes: smooth background tint + object colors.
  for (int yy = 0; yy < frame.chroma_height(); ++yy) {
    for (int xx = 0; xx < frame.chroma_width(); ++xx) {
      const double wx = 2.0 * xx;
      const double wy = 2.0 * yy;
      double cb = 118.0 + 24.0 * value_noise(wx + pan_x, wy + pan_y,
                                             params_.texture_scale * 3.0,
                                             bg_seed ^ 0xbeefULL);
      double cr = 118.0 + 24.0 * value_noise(wx + pan_x, wy + pan_y,
                                             params_.texture_scale * 3.0,
                                             bg_seed ^ 0xfeedULL);
      for (const Object& o : objects) {
        const double cx = o.x0 + o.vx * frame_in_scene;
        const double cy = o.y0 + o.vy * frame_in_scene;
        const double w = params_.width;
        const double h = params_.height;
        const double ox = cx - w * std::floor(cx / w);
        const double oy = cy - h * std::floor(cy / h);
        const double dx = wx - ox;
        const double dy = wy - oy;
        if (dx * dx + dy * dy < o.radius * o.radius) {
          cb = o.cb;
          cr = o.cr;
        }
      }
      frame.u(xx, yy) = clamp_pixel(cb);
      frame.v(xx, yy) = clamp_pixel(cr);
    }
  }
  return frame;
}

FrameSequence SceneGenerator::render_clip(int count) const {
  FrameSequence clip;
  clip.reserve(static_cast<std::size_t>(count));
  for (int i = 0; i < count; ++i) clip.push_back(render(i));
  return clip;
}

}  // namespace tv::video
