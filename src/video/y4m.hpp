// YUV4MPEG2 (.y4m) reading and writing.
//
// The paper's pipeline starts and ends in raw YUV files (EvalVid converts
// YUV -> H.264 -> MP4 and reconstructs YUV at the receiver).  Y4M is the
// self-describing flavor of that format: any clip this library generates
// or reconstructs can be dumped to disk and played with `ffplay out.y4m`,
// and reference clips from the EvalVid site can be fed in.
#pragma once

#include <iosfwd>
#include <string>

#include "video/frame.hpp"

namespace tv::video {

/// Write a clip as YUV4MPEG2 with 4:2:0 chroma at the given frame rate.
/// Throws std::runtime_error on I/O failure.
void write_y4m(std::ostream& out, const FrameSequence& clip, int fps = 30);
void write_y4m_file(const std::string& path, const FrameSequence& clip,
                    int fps = 30);

/// Parsed Y4M stream.
struct Y4mClip {
  FrameSequence frames;
  int fps_numerator = 30;
  int fps_denominator = 1;
};

/// Read a YUV4MPEG2 stream (C420/C420jpeg/C420mpeg2 only; other chroma
/// taggings throw std::runtime_error).  Frame dimensions must be multiples
/// of 16 to be usable by the codec.
[[nodiscard]] Y4mClip read_y4m(std::istream& in);
[[nodiscard]] Y4mClip read_y4m_file(const std::string& path);

}  // namespace tv::video
