#include "video/codec.hpp"

#include <algorithm>
#include <cmath>
#include <cstdlib>
#include <stdexcept>

#include "video/bitstream.hpp"
#include "video/dct.hpp"

namespace tv::video {

namespace {

constexpr std::uint8_t kMagic = 0x54;
constexpr std::uint8_t kTypeI = 0;
constexpr std::uint8_t kTypeP = 1;
constexpr std::uint8_t kModeSkipRun = 0;
constexpr std::uint8_t kModeInter = 1;
constexpr std::uint8_t kModeIntra = 2;

int clampi(int v, int lo, int hi) { return v < lo ? lo : (v > hi ? hi : v); }

// Read an 8x8 block from a plane with coordinate clamping (needed for
// motion-compensated reads that may point outside the picture).
Block8x8 read_block(const std::vector<std::uint8_t>& plane, int w, int h,
                    int x0, int y0) {
  Block8x8 block{};
  for (int r = 0; r < 8; ++r) {
    const int yy = clampi(y0 + r, 0, h - 1);
    for (int c = 0; c < 8; ++c) {
      const int xx = clampi(x0 + c, 0, w - 1);
      block[static_cast<std::size_t>(r * 8 + c)] = static_cast<double>(
          plane[static_cast<std::size_t>(yy) * static_cast<std::size_t>(w) +
                static_cast<std::size_t>(xx)]);
    }
  }
  return block;
}

void write_block(std::vector<std::uint8_t>& plane, int w, int /*h*/, int x0,
                 int y0, const Block8x8& block) {
  for (int r = 0; r < 8; ++r) {
    for (int c = 0; c < 8; ++c) {
      double v = block[static_cast<std::size_t>(r * 8 + c)];
      if (v < 0.0) v = 0.0;
      if (v > 255.0) v = 255.0;
      plane[static_cast<std::size_t>(y0 + r) * static_cast<std::size_t>(w) +
            static_cast<std::size_t>(x0 + c)] =
          static_cast<std::uint8_t>(v + 0.5);
    }
  }
}

bool all_zero(const QuantBlock& q) {
  for (std::int16_t v : q) {
    if (v != 0) return false;
  }
  return true;
}

// Coefficient coding: varint count of nonzeros, then per coefficient the
// zigzag-position gap (delta-1 from the previous position) and the
// zigzag-signed level.
void code_coefficients(ByteWriter& writer, const QuantBlock& q) {
  int nnz = 0;
  for (int i = 0; i < 64; ++i) {
    if (q[static_cast<std::size_t>(kZigzag[static_cast<std::size_t>(i)])] != 0) {
      ++nnz;
    }
  }
  writer.put_varint(static_cast<std::uint64_t>(nnz));
  int prev = -1;
  for (int i = 0; i < 64; ++i) {
    const std::int16_t level =
        q[static_cast<std::size_t>(kZigzag[static_cast<std::size_t>(i)])];
    if (level == 0) continue;
    writer.put_varint(static_cast<std::uint64_t>(i - prev - 1));
    writer.put_signed(level);
    prev = i;
  }
}

QuantBlock decode_coefficients(ByteReader& reader) {
  QuantBlock q{};
  const std::uint64_t nnz = reader.get_varint();
  if (nnz > 64) throw BitstreamError{"too many coefficients"};
  int pos = -1;
  for (std::uint64_t i = 0; i < nnz; ++i) {
    pos += static_cast<int>(reader.get_varint()) + 1;
    if (pos >= 64) throw BitstreamError{"coefficient position overflow"};
    const std::int64_t level = reader.get_signed();
    if (level < -32768 || level > 32767 || level == 0) {
      throw BitstreamError{"bad coefficient level"};
    }
    q[static_cast<std::size_t>(kZigzag[static_cast<std::size_t>(pos)])] =
        static_cast<std::int16_t>(level);
  }
  return q;
}

// The six 8x8 blocks of a macroblock: 4 luma + U + V.
struct MbGeometry {
  // Luma block origins.
  int lx[4];
  int ly[4];
  // Chroma block origin.
  int cx;
  int cy;
};

MbGeometry mb_geometry(int mb_x, int mb_y) {
  MbGeometry g{};
  const int bx = mb_x * 16;
  const int by = mb_y * 16;
  g.lx[0] = bx;     g.ly[0] = by;
  g.lx[1] = bx + 8; g.ly[1] = by;
  g.lx[2] = bx;     g.ly[2] = by + 8;
  g.lx[3] = bx + 8; g.ly[3] = by + 8;
  g.cx = mb_x * 8;
  g.cy = mb_y * 8;
  return g;
}

// Sum of absolute differences of a 16x16 luma block at (bx,by) in `cur`
// against (bx+dx, by+dy) in `ref` (clamped reads).
double sad_16x16(const Frame& cur, const Frame& ref, int bx, int by, int dx,
                 int dy) {
  double acc = 0.0;
  for (int r = 0; r < 16; ++r) {
    const int ry = clampi(by + dy + r, 0, ref.height() - 1);
    for (int c = 0; c < 16; ++c) {
      const int rx = clampi(bx + dx + c, 0, ref.width() - 1);
      acc += std::abs(static_cast<double>(cur.y(bx + c, by + r)) -
                      static_cast<double>(ref.y(rx, ry)));
    }
  }
  return acc;
}

// Three-step search around (0,0); returns the best full-pel vector.
std::pair<int, int> motion_search(const Frame& cur, const Frame& ref, int bx,
                                  int by, int range) {
  int best_dx = 0;
  int best_dy = 0;
  double best = sad_16x16(cur, ref, bx, by, 0, 0) - 128.0;  // zero-mv bias.
  for (int step = std::max(1, range / 2); step >= 1; step /= 2) {
    const int cx = best_dx;
    const int cy = best_dy;
    for (int sy = -1; sy <= 1; ++sy) {
      for (int sx = -1; sx <= 1; ++sx) {
        if (sx == 0 && sy == 0) continue;
        const int dx = clampi(cx + sx * step, -range, range);
        const int dy = clampi(cy + sy * step, -range, range);
        const double cost = sad_16x16(cur, ref, bx, by, dx, dy);
        if (cost < best) {
          best = cost;
          best_dx = dx;
          best_dy = dy;
        }
      }
    }
  }
  return {best_dx, best_dy};
}

struct PlaneRef {
  std::vector<std::uint8_t>* plane;
  int w;
  int h;
};

// Transform, quantize, code and reconstruct one block whose prediction is
// `prediction`; reconstruction is written back into `recon` at (x0,y0).
// Returns the quantized block (for CBP decisions the caller quantizes
// first; this overload takes precomputed levels).
void reconstruct_block(PlaneRef recon, int x0, int y0,
                       const Block8x8& prediction, const QuantBlock& levels,
                       double qstep, bool deadzone) {
  const Block8x8 residual = inverse_dct(
      deadzone ? dequantize_deadzone(levels, qstep) : dequantize(levels, qstep));
  Block8x8 rebuilt{};
  for (int i = 0; i < 64; ++i) {
    rebuilt[static_cast<std::size_t>(i)] =
        prediction[static_cast<std::size_t>(i)] +
        residual[static_cast<std::size_t>(i)];
  }
  write_block(*recon.plane, recon.w, recon.h, x0, y0, rebuilt);
}

QuantBlock quantize_difference(const Block8x8& source,
                               const Block8x8& prediction, double qstep,
                               bool deadzone) {
  Block8x8 diff{};
  for (int i = 0; i < 64; ++i) {
    diff[static_cast<std::size_t>(i)] = source[static_cast<std::size_t>(i)] -
                                        prediction[static_cast<std::size_t>(i)];
  }
  const Block8x8 coeffs = forward_dct(diff);
  return deadzone ? quantize_deadzone(coeffs, qstep) : quantize(coeffs, qstep);
}

}  // namespace

std::size_t EncodedStream::total_bytes() const {
  std::size_t total = 0;
  for (const auto& f : frames) total += f.data.size();
  return total;
}

double EncodedStream::mean_i_bytes() const {
  std::size_t total = 0;
  std::size_t count = 0;
  for (const auto& f : frames) {
    if (f.is_i) {
      total += f.data.size();
      ++count;
    }
  }
  return count > 0 ? static_cast<double>(total) / static_cast<double>(count)
                   : 0.0;
}

double EncodedStream::mean_p_bytes() const {
  std::size_t total = 0;
  std::size_t count = 0;
  for (const auto& f : frames) {
    if (!f.is_i) {
      total += f.data.size();
      ++count;
    }
  }
  return count > 0 ? static_cast<double>(total) / static_cast<double>(count)
                   : 0.0;
}

ReceivedFrameData ReceivedFrameData::lost(std::size_t size) {
  ReceivedFrameData r;
  r.data.assign(size, 0);
  r.byte_ok.assign(size, false);
  return r;
}

ReceivedFrameData ReceivedFrameData::intact(std::vector<std::uint8_t> bytes) {
  ReceivedFrameData r;
  r.byte_ok.assign(bytes.size(), true);
  r.data = std::move(bytes);
  return r;
}

bool ReceivedFrameData::range_ok(std::size_t begin, std::size_t end) const {
  if (end > byte_ok.size()) return false;
  for (std::size_t i = begin; i < end; ++i) {
    if (!byte_ok[i]) return false;
  }
  return true;
}

Encoder::Encoder(CodecConfig config) : config_(config) {
  if (config_.gop_size < 1) throw std::invalid_argument{"gop_size < 1"};
  if (config_.i_qstep <= 0.0 || config_.p_qstep <= 0.0) {
    throw std::invalid_argument{"quantizer steps must be positive"};
  }
}

EncodedStream Encoder::encode(const FrameSequence& clip) const {
  if (clip.empty()) throw std::invalid_argument{"encode: empty clip"};
  const int width = clip.front().width();
  const int height = clip.front().height();
  for (const Frame& f : clip) {
    if (f.width() != width || f.height() != height) {
      throw std::invalid_argument{"encode: frame dimensions differ"};
    }
  }

  EncodedStream stream;
  stream.config = config_;
  stream.width = width;
  stream.height = height;
  stream.frames.reserve(clip.size());

  const int mb_cols = width / 16;
  const int mb_rows = height / 16;
  Frame recon(width, height);  // encoder-side decoded reference.

  for (std::size_t fi = 0; fi < clip.size(); ++fi) {
    const Frame& source = clip[fi];
    const bool is_i = (fi % static_cast<std::size_t>(config_.gop_size)) == 0;
    const double qstep = is_i ? config_.i_qstep : config_.p_qstep;
    Frame next_recon(width, height);

    PlaneRef ry{&next_recon.y_plane(), width, height};
    PlaneRef ru{&next_recon.u_plane(), width / 2, height / 2};
    PlaneRef rv{&next_recon.v_plane(), width / 2, height / 2};

    // Encode every macroblock row as an independent slice.
    std::vector<std::vector<std::uint8_t>> slices;
    slices.reserve(static_cast<std::size_t>(mb_rows));

    for (int mb_y = 0; mb_y < mb_rows; ++mb_y) {
      ByteWriter row;
      int pending_skips = 0;
      std::size_t skip_patch_pos = 0;  // unused when pending_skips == 0.
      std::vector<std::uint8_t> row_bytes;

      auto flush_skips = [&]() {
        // Skip runs are coded as mode byte + varint(extra skips); patching
        // varints in place is fiddly, so buffer the run and emit on flush.
        if (pending_skips == 0) return;
        row.put_u8(kModeSkipRun);
        row.put_varint(static_cast<std::uint64_t>(pending_skips - 1));
        pending_skips = 0;
        (void)skip_patch_pos;
      };

      for (int mb_x = 0; mb_x < mb_cols; ++mb_x) {
        const MbGeometry g = mb_geometry(mb_x, mb_y);

        if (is_i) {
          // Intra MB: predict from flat mid-gray; code all six blocks.
          Block8x8 flat{};
          flat.fill(128.0);
          for (int b = 0; b < 4; ++b) {
            const Block8x8 src =
                read_block(source.y_plane(), width, height, g.lx[b], g.ly[b]);
            const QuantBlock q = quantize_difference(src, flat, qstep, false);
            code_coefficients(row, q);
            reconstruct_block(ry, g.lx[b], g.ly[b], flat, q, qstep, false);
          }
          const Block8x8 src_u = read_block(source.u_plane(), width / 2,
                                            height / 2, g.cx, g.cy);
          const QuantBlock qu = quantize_difference(src_u, flat, qstep, false);
          code_coefficients(row, qu);
          reconstruct_block(ru, g.cx, g.cy, flat, qu, qstep, false);
          const Block8x8 src_v = read_block(source.v_plane(), width / 2,
                                            height / 2, g.cx, g.cy);
          const QuantBlock qv = quantize_difference(src_v, flat, qstep, false);
          code_coefficients(row, qv);
          reconstruct_block(rv, g.cx, g.cy, flat, qv, qstep, false);
          continue;
        }

        // Inter MB: try the zero-motion skip first — if the zero-mv
        // residual quantizes to nothing everywhere, the MB is a skip and no
        // search is needed (this is what makes static content cheap).
        int dx = 0;
        int dy = 0;
        {
          bool zero_skippable = true;
          for (int b = 0; b < 4 && zero_skippable; ++b) {
            const Block8x8 pred =
                read_block(recon.y_plane(), width, height, g.lx[b], g.ly[b]);
            const Block8x8 src =
                read_block(source.y_plane(), width, height, g.lx[b], g.ly[b]);
            zero_skippable = all_zero(quantize_difference(src, pred, qstep, true));
          }
          if (zero_skippable) {
            const Block8x8 pu = read_block(recon.u_plane(), width / 2,
                                           height / 2, g.cx, g.cy);
            const Block8x8 su = read_block(source.u_plane(), width / 2,
                                           height / 2, g.cx, g.cy);
            zero_skippable = all_zero(quantize_difference(su, pu, qstep, true));
          }
          if (zero_skippable) {
            const Block8x8 pv = read_block(recon.v_plane(), width / 2,
                                           height / 2, g.cx, g.cy);
            const Block8x8 sv = read_block(source.v_plane(), width / 2,
                                           height / 2, g.cx, g.cy);
            zero_skippable = all_zero(quantize_difference(sv, pv, qstep, true));
          }
          if (!zero_skippable) {
            const auto best = motion_search(source, recon, mb_x * 16,
                                            mb_y * 16, config_.search_range);
            dx = best.first;
            dy = best.second;
          }
        }

        // Intra refresh: when even the best motion-compensated prediction
        // is poor (new content), code the MB intra like an I-frame MB.
        if (sad_16x16(source, recon, mb_x * 16, mb_y * 16, dx, dy) >
            config_.intra_refresh_sad * 256.0) {
          flush_skips();
          row.put_u8(kModeIntra);
          Block8x8 flat{};
          flat.fill(128.0);
          for (int b = 0; b < 4; ++b) {
            const Block8x8 src =
                read_block(source.y_plane(), width, height, g.lx[b], g.ly[b]);
            const QuantBlock q = quantize_difference(src, flat, qstep, false);
            code_coefficients(row, q);
            reconstruct_block(ry, g.lx[b], g.ly[b], flat, q, qstep, false);
          }
          const Block8x8 src_u = read_block(source.u_plane(), width / 2,
                                            height / 2, g.cx, g.cy);
          const QuantBlock qu = quantize_difference(src_u, flat, qstep, false);
          code_coefficients(row, qu);
          reconstruct_block(ru, g.cx, g.cy, flat, qu, qstep, false);
          const Block8x8 src_v = read_block(source.v_plane(), width / 2,
                                            height / 2, g.cx, g.cy);
          const QuantBlock qv = quantize_difference(src_v, flat, qstep, false);
          code_coefficients(row, qv);
          reconstruct_block(rv, g.cx, g.cy, flat, qv, qstep, false);
          continue;
        }

        Block8x8 pred_y[4];
        QuantBlock qy[4];
        for (int b = 0; b < 4; ++b) {
          pred_y[b] = read_block(recon.y_plane(), width, height, g.lx[b] + dx,
                                 g.ly[b] + dy);
          const Block8x8 src =
              read_block(source.y_plane(), width, height, g.lx[b], g.ly[b]);
          qy[b] = quantize_difference(src, pred_y[b], qstep, true);
        }
        const int cdx = dx / 2;
        const int cdy = dy / 2;
        const Block8x8 pred_u = read_block(recon.u_plane(), width / 2,
                                           height / 2, g.cx + cdx, g.cy + cdy);
        const Block8x8 src_u =
            read_block(source.u_plane(), width / 2, height / 2, g.cx, g.cy);
        const QuantBlock qu = quantize_difference(src_u, pred_u, qstep, true);
        const Block8x8 pred_v = read_block(recon.v_plane(), width / 2,
                                           height / 2, g.cx + cdx, g.cy + cdy);
        const Block8x8 src_v =
            read_block(source.v_plane(), width / 2, height / 2, g.cx, g.cy);
        const QuantBlock qv = quantize_difference(src_v, pred_v, qstep, true);

        const bool skippable = dx == 0 && dy == 0 && all_zero(qy[0]) &&
                               all_zero(qy[1]) && all_zero(qy[2]) &&
                               all_zero(qy[3]) && all_zero(qu) && all_zero(qv);
        if (skippable) {
          ++pending_skips;
          for (int b = 0; b < 4; ++b) {
            reconstruct_block(ry, g.lx[b], g.ly[b], pred_y[b], qy[b], qstep, true);
          }
          reconstruct_block(ru, g.cx, g.cy, pred_u, qu, qstep, true);
          reconstruct_block(rv, g.cx, g.cy, pred_v, qv, qstep, true);
          continue;
        }

        flush_skips();
        row.put_u8(kModeInter);
        row.put_signed(dx);
        row.put_signed(dy);
        std::uint8_t cbp = 0;
        for (int b = 0; b < 4; ++b) {
          if (!all_zero(qy[b])) cbp |= static_cast<std::uint8_t>(1U << b);
        }
        if (!all_zero(qu)) cbp |= 1U << 4;
        if (!all_zero(qv)) cbp |= 1U << 5;
        row.put_u8(cbp);
        for (int b = 0; b < 4; ++b) {
          if (cbp & (1U << b)) code_coefficients(row, qy[b]);
          reconstruct_block(ry, g.lx[b], g.ly[b], pred_y[b], qy[b], qstep, true);
        }
        if (cbp & (1U << 4)) code_coefficients(row, qu);
        reconstruct_block(ru, g.cx, g.cy, pred_u, qu, qstep, true);
        if (cbp & (1U << 5)) code_coefficients(row, qv);
        reconstruct_block(rv, g.cx, g.cy, pred_v, qv, qstep, true);
      }
      flush_skips();
      slices.push_back(row.take());
    }

    // Assemble the frame: header (magic, type, index, dims, slice table)
    // followed by the slices.
    ByteWriter frame;
    frame.put_u8(kMagic);
    frame.put_u8(is_i ? kTypeI : kTypeP);
    frame.put_u32(static_cast<std::uint32_t>(fi));
    frame.put_u16(static_cast<std::uint16_t>(width));
    frame.put_u16(static_cast<std::uint16_t>(height));
    frame.put_u16(static_cast<std::uint16_t>(mb_rows));
    for (const auto& s : slices) {
      frame.put_varint(s.size());
    }
    for (const auto& s : slices) {
      for (std::uint8_t b : s) frame.put_u8(b);
    }

    EncodedFrame out;
    out.index = static_cast<int>(fi);
    out.is_i = is_i;
    out.data = frame.take();
    stream.frames.push_back(std::move(out));
    recon = std::move(next_recon);
  }
  return stream;
}

Decoder::Decoder(CodecConfig config) : config_(config) {}

DecodeResult Decoder::decode_frame(const ReceivedFrameData& received,
                                   const Frame* reference) const {
  DecodeResult result;

  // Header parse; any unreadable byte aborts the whole frame.
  struct HeaderInfo {
    bool is_i = false;
    int width = 0;
    int height = 0;
    int mb_rows = 0;
    std::vector<std::size_t> slice_begin;
    std::vector<std::size_t> slice_end;
  } header;

  try {
    ByteReader reader{received.data};
    auto checked = [&](std::size_t end) {
      if (!received.range_ok(0, end)) throw BitstreamError{"header bytes missing"};
    };
    checked(12);
    if (reader.get_u8() != kMagic) throw BitstreamError{"bad magic"};
    const std::uint8_t type = reader.get_u8();
    if (type != kTypeI && type != kTypeP) throw BitstreamError{"bad type"};
    header.is_i = type == kTypeI;
    (void)reader.get_u32();  // frame index (informational).
    header.width = reader.get_u16();
    header.height = reader.get_u16();
    header.mb_rows = reader.get_u16();
    if (header.width <= 0 || header.height <= 0 || header.width % 16 != 0 ||
        header.height % 16 != 0 || header.mb_rows != header.height / 16) {
      throw BitstreamError{"bad dimensions"};
    }
    std::vector<std::size_t> sizes;
    sizes.reserve(static_cast<std::size_t>(header.mb_rows));
    for (int r = 0; r < header.mb_rows; ++r) {
      checked(reader.position() + 1);
      // Varint may span several bytes; validate byte-by-byte.
      const std::size_t before = reader.position();
      checked(before + 5 <= received.data.size() ? before + 5
                                                 : received.data.size());
      sizes.push_back(reader.get_varint());
    }
    std::size_t offset = reader.position();
    for (int r = 0; r < header.mb_rows; ++r) {
      header.slice_begin.push_back(offset);
      offset += sizes[static_cast<std::size_t>(r)];
      header.slice_end.push_back(offset);
    }
    if (offset > received.data.size()) throw BitstreamError{"slice overflow"};
    result.header_ok = true;
  } catch (const BitstreamError&) {
    result.header_ok = false;
  }

  if (!result.header_ok) {
    // Whole-frame concealment: repeat the reference, or emit gray.
    if (reference != nullptr) {
      result.frame = *reference;
    } else {
      result.frame = Frame(kCifWidth, kCifHeight);
      result.frame.fill(128, 128, 128);
    }
    return result;
  }

  const int width = header.width;
  const int height = header.height;
  const int mb_cols = width / 16;
  result.total_macroblocks = mb_cols * header.mb_rows;

  // Start from the concealment baseline.
  if (reference != nullptr && reference->width() == width &&
      reference->height() == height) {
    result.frame = *reference;
  } else {
    result.frame = Frame(width, height);
    result.frame.fill(128, 128, 128);
  }
  const Frame baseline = result.frame;  // prediction source for inter MBs.

  PlaneRef ry{&result.frame.y_plane(), width, height};
  PlaneRef ru{&result.frame.u_plane(), width / 2, height / 2};
  PlaneRef rv{&result.frame.v_plane(), width / 2, height / 2};
  const double qstep = header.is_i ? config_.i_qstep : config_.p_qstep;

  for (int mb_y = 0; mb_y < header.mb_rows; ++mb_y) {
    const std::size_t begin = header.slice_begin[static_cast<std::size_t>(mb_y)];
    const std::size_t end = header.slice_end[static_cast<std::size_t>(mb_y)];
    if (!received.range_ok(begin, end)) continue;  // concealed row.
    try {
      ByteReader row{std::span<const std::uint8_t>(received.data)
                         .subspan(begin, end - begin)};
      int skip_remaining = 0;
      for (int mb_x = 0; mb_x < mb_cols; ++mb_x) {
        const MbGeometry g = mb_geometry(mb_x, mb_y);
        if (header.is_i) {
          Block8x8 flat{};
          flat.fill(128.0);
          for (int b = 0; b < 4; ++b) {
            const QuantBlock q = decode_coefficients(row);
            reconstruct_block(ry, g.lx[b], g.ly[b], flat, q, qstep, false);
          }
          const QuantBlock qu = decode_coefficients(row);
          reconstruct_block(ru, g.cx, g.cy, flat, qu, qstep, false);
          const QuantBlock qv = decode_coefficients(row);
          reconstruct_block(rv, g.cx, g.cy, flat, qv, qstep, false);
          ++result.decoded_macroblocks;
          continue;
        }

        if (skip_remaining > 0) {
          --skip_remaining;
          ++result.decoded_macroblocks;
          continue;  // baseline already holds the reference copy.
        }
        const std::uint8_t mode = row.get_u8();
        if (mode == kModeSkipRun) {
          skip_remaining = static_cast<int>(row.get_varint());
          ++result.decoded_macroblocks;
          continue;
        }
        if (mode == kModeIntra) {
          Block8x8 flat{};
          flat.fill(128.0);
          for (int b = 0; b < 4; ++b) {
            const QuantBlock q = decode_coefficients(row);
            reconstruct_block(ry, g.lx[b], g.ly[b], flat, q, qstep, false);
          }
          const QuantBlock qu = decode_coefficients(row);
          reconstruct_block(ru, g.cx, g.cy, flat, qu, qstep, false);
          const QuantBlock qv = decode_coefficients(row);
          reconstruct_block(rv, g.cx, g.cy, flat, qv, qstep, false);
          ++result.decoded_macroblocks;
          continue;
        }
        if (mode != kModeInter) throw BitstreamError{"bad MB mode"};
        const int dx = static_cast<int>(row.get_signed());
        const int dy = static_cast<int>(row.get_signed());
        if (std::abs(dx) > 64 || std::abs(dy) > 64) {
          throw BitstreamError{"bad motion vector"};
        }
        const std::uint8_t cbp = row.get_u8();
        for (int b = 0; b < 4; ++b) {
          const Block8x8 pred = read_block(baseline.y_plane(), width, height,
                                           g.lx[b] + dx, g.ly[b] + dy);
          QuantBlock q{};
          if (cbp & (1U << b)) q = decode_coefficients(row);
          reconstruct_block(ry, g.lx[b], g.ly[b], pred, q, qstep, true);
        }
        const int cdx = dx / 2;
        const int cdy = dy / 2;
        {
          const Block8x8 pred =
              read_block(baseline.u_plane(), width / 2, height / 2,
                         g.cx + cdx, g.cy + cdy);
          QuantBlock q{};
          if (cbp & (1U << 4)) q = decode_coefficients(row);
          reconstruct_block(ru, g.cx, g.cy, pred, q, qstep, true);
        }
        {
          const Block8x8 pred =
              read_block(baseline.v_plane(), width / 2, height / 2,
                         g.cx + cdx, g.cy + cdy);
          QuantBlock q{};
          if (cbp & (1U << 5)) q = decode_coefficients(row);
          reconstruct_block(rv, g.cx, g.cy, pred, q, qstep, true);
        }
        ++result.decoded_macroblocks;
      }
    } catch (const BitstreamError&) {
      // Malformed slice tail: keep whatever was decoded, rest stays
      // concealed.
    }
  }
  return result;
}

FrameSequence Decoder::decode_stream(
    int width, int height,
    const std::vector<ReceivedFrameData>& frames) const {
  FrameSequence out;
  out.reserve(frames.size());
  Frame current(width, height);
  current.fill(128, 128, 128);
  bool have_reference = false;
  for (const auto& received : frames) {
    const DecodeResult r =
        decode_frame(received, have_reference ? &current : nullptr);
    current = r.frame;
    have_reference = true;
    out.push_back(current);
  }
  return out;
}

}  // namespace tv::video
