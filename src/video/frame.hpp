// YUV 4:2:0 frames — the raw-video currency of the library.
//
// The paper's pipeline starts from uncompressed YUV CIF sequences (ITU-R
// BT.601); all distortion numbers (MSE, PSNR) are computed between YUV
// frames exactly as EvalVid does, on the luma plane.
#pragma once

#include <cstddef>
#include <cstdint>
#include <string>
#include <vector>

namespace tv::video {

/// Common Intermediate Format, the paper's frame size (Table 1).
inline constexpr int kCifWidth = 352;
inline constexpr int kCifHeight = 288;

/// A planar YUV 4:2:0 frame.  Luma is width x height; each chroma plane is
/// (width/2) x (height/2).  Dimensions must be multiples of 16 so that
/// macroblock processing needs no edge cases.
class Frame {
 public:
  Frame() = default;
  Frame(int width, int height);

  [[nodiscard]] int width() const { return width_; }
  [[nodiscard]] int height() const { return height_; }
  [[nodiscard]] int chroma_width() const { return width_ / 2; }
  [[nodiscard]] int chroma_height() const { return height_ / 2; }

  [[nodiscard]] std::uint8_t& y(int x, int yy) {
    return y_[static_cast<std::size_t>(yy) * static_cast<std::size_t>(width_) +
              static_cast<std::size_t>(x)];
  }
  [[nodiscard]] std::uint8_t y(int x, int yy) const {
    return y_[static_cast<std::size_t>(yy) * static_cast<std::size_t>(width_) +
              static_cast<std::size_t>(x)];
  }
  [[nodiscard]] std::uint8_t& u(int x, int yy) {
    return u_[static_cast<std::size_t>(yy) *
                  static_cast<std::size_t>(chroma_width()) +
              static_cast<std::size_t>(x)];
  }
  [[nodiscard]] std::uint8_t u(int x, int yy) const {
    return u_[static_cast<std::size_t>(yy) *
                  static_cast<std::size_t>(chroma_width()) +
              static_cast<std::size_t>(x)];
  }
  [[nodiscard]] std::uint8_t& v(int x, int yy) {
    return v_[static_cast<std::size_t>(yy) *
                  static_cast<std::size_t>(chroma_width()) +
              static_cast<std::size_t>(x)];
  }
  [[nodiscard]] std::uint8_t v(int x, int yy) const {
    return v_[static_cast<std::size_t>(yy) *
                  static_cast<std::size_t>(chroma_width()) +
              static_cast<std::size_t>(x)];
  }

  [[nodiscard]] std::vector<std::uint8_t>& y_plane() { return y_; }
  [[nodiscard]] const std::vector<std::uint8_t>& y_plane() const { return y_; }
  [[nodiscard]] std::vector<std::uint8_t>& u_plane() { return u_; }
  [[nodiscard]] const std::vector<std::uint8_t>& u_plane() const { return u_; }
  [[nodiscard]] std::vector<std::uint8_t>& v_plane() { return v_; }
  [[nodiscard]] const std::vector<std::uint8_t>& v_plane() const { return v_; }

  /// Fill all planes with a constant (Y, U, V).
  void fill(std::uint8_t yv, std::uint8_t uv, std::uint8_t vv);

 private:
  int width_ = 0;
  int height_ = 0;
  std::vector<std::uint8_t> y_;
  std::vector<std::uint8_t> u_;
  std::vector<std::uint8_t> v_;
};

/// Mean square error over the luma plane (the paper's distortion metric;
/// eq. 28 maps it to PSNR).  Frames must have identical dimensions.
[[nodiscard]] double luma_mse(const Frame& a, const Frame& b);

/// PSNR in dB from a distortion (MSE) value, eq. (28).  Returns +inf for
/// zero distortion; callers that print typically clamp.
[[nodiscard]] double psnr_from_mse(double mse);

/// Inverse of psnr_from_mse.
[[nodiscard]] double mse_from_psnr(double psnr_db);

/// PSNR between two frames over luma.
[[nodiscard]] double luma_psnr(const Frame& a, const Frame& b);

/// A decoded video clip.
using FrameSequence = std::vector<Frame>;

/// Average luma PSNR between two equally long sequences, with per-frame MSE
/// averaged first (EvalVid's convention: average MSE, then convert).
[[nodiscard]] double sequence_psnr(const FrameSequence& reference,
                                   const FrameSequence& received);

/// ASCII rendering of the luma plane (for Fig. 6's "screenshots" in a
/// terminal): rows x cols downsampled, darkest-to-brightest ramp.
[[nodiscard]] std::vector<std::string> ascii_thumbnail(const Frame& frame,
                                                       int cols = 64,
                                                       int rows = 24);

}  // namespace tv::video
