#include "video/dct.hpp"

#include <cmath>
#include <numbers>

namespace tv::video {

namespace {

// Precomputed cosine basis: table[u][x] = c(u) * cos((2x+1) u pi / 16),
// plus its transpose.  The transform loops below are written in
// independent-accumulator form: the reduction index is the *outer* loop
// and all 8 outputs accumulate in the inner loop.  Each output still sums
// its products in exactly the same order as the classic dot-product
// formulation — bit-identical results, pinned by the golden sweeps — but
// the inner loop is now 8 independent contiguous lanes, which the
// autovectorizer turns into packed-double adds/muls instead of a serial
// reduction it is not allowed to reassociate.
struct Basis {
  double table[8][8];
  double transposed[8][8];  // transposed[x][u] == table[u][x].
  Basis() {
    for (int u = 0; u < 8; ++u) {
      const double cu = u == 0 ? std::sqrt(1.0 / 8.0) : std::sqrt(2.0 / 8.0);
      for (int x = 0; x < 8; ++x) {
        table[u][x] = cu * std::cos((2.0 * x + 1.0) * u * std::numbers::pi / 16.0);
        transposed[x][u] = table[u][x];
      }
    }
  }
};

const Basis kBasis;

// out[k][u] (+)= Σ_j in[k][j] * basis[j][u] for all 8 rows: the shared
// 8x8 matrix product of both passes of both transforms.  `basis` selects
// table (inverse direction) or transposed (forward direction); row-major
// vs. column-major access of `in`/`out` is handled by the callers via the
// stride arguments.
inline void mat8_accumulate(const double* in, std::size_t in_stride,
                            const double (&basis)[8][8], double* out,
                            std::size_t out_stride) {
  for (int k = 0; k < 8; ++k) {
    double acc[8] = {};
    const double* row = in + static_cast<std::size_t>(k) * in_stride;
    for (int j = 0; j < 8; ++j) {
      const double s = row[static_cast<std::size_t>(j)];
      const double* b = basis[j];
      for (int u = 0; u < 8; ++u) acc[u] += s * b[u];
    }
    double* orow = out + static_cast<std::size_t>(k) * out_stride;
    for (int u = 0; u < 8; ++u) orow[static_cast<std::size_t>(u)] = acc[u];
  }
}

// Transpose an 8x8 block (rows <-> columns), so the column passes can run
// the same contiguous row kernel.
inline void transpose8(const Block8x8& in, Block8x8& out) {
  for (int r = 0; r < 8; ++r) {
    for (int c = 0; c < 8; ++c) {
      out[static_cast<std::size_t>(c * 8 + r)] =
          in[static_cast<std::size_t>(r * 8 + c)];
    }
  }
}

}  // namespace

Block8x8 forward_dct(const Block8x8& spatial) {
  // Separable: rows then columns.  tmp[r][u] = Σ_x s[r][x] * B[u][x].
  Block8x8 tmp{};
  mat8_accumulate(spatial.data(), 8, kBasis.transposed, tmp.data(), 8);
  // out[v][c] = Σ_y tmp[y][c] * B[v][y]: transpose, row kernel, transpose
  // back — the kernel then reads and writes contiguous lanes.
  Block8x8 tmp_t{};
  transpose8(tmp, tmp_t);
  Block8x8 out_t{};
  mat8_accumulate(tmp_t.data(), 8, kBasis.transposed, out_t.data(), 8);
  Block8x8 out{};
  transpose8(out_t, out);
  return out;
}

Block8x8 inverse_dct(const Block8x8& coefficients) {
  // Columns first (mirrors the forward transform's historical order):
  // tmp[y][c] = Σ_v C[v][c] * B[v][y].
  Block8x8 coeff_t{};
  transpose8(coefficients, coeff_t);
  Block8x8 tmp_t{};
  mat8_accumulate(coeff_t.data(), 8, kBasis.table, tmp_t.data(), 8);
  Block8x8 tmp{};
  transpose8(tmp_t, tmp);
  // Rows: out[r][x] = Σ_u tmp[r][u] * B[u][x].
  Block8x8 out{};
  mat8_accumulate(tmp.data(), 8, kBasis.table, out.data(), 8);
  return out;
}

QuantBlock quantize(const Block8x8& coefficients, double qstep) {
  QuantBlock out{};
  for (int i = 0; i < 64; ++i) {
    const double step = i == 0 ? qstep * 0.5 : qstep;
    out[static_cast<std::size_t>(i)] = static_cast<std::int16_t>(
        std::lround(coefficients[static_cast<std::size_t>(i)] / step));
  }
  return out;
}

Block8x8 dequantize(const QuantBlock& levels, double qstep) {
  Block8x8 out{};
  for (int i = 0; i < 64; ++i) {
    const double step = i == 0 ? qstep * 0.5 : qstep;
    out[static_cast<std::size_t>(i)] =
        static_cast<double>(levels[static_cast<std::size_t>(i)]) * step;
  }
  return out;
}

QuantBlock quantize_deadzone(const Block8x8& coefficients, double qstep) {
  QuantBlock out{};
  for (int i = 0; i < 64; ++i) {
    const double c = coefficients[static_cast<std::size_t>(i)];
    // Truncation toward zero: the dead zone spans (-qstep, qstep).
    out[static_cast<std::size_t>(i)] =
        static_cast<std::int16_t>(c / qstep);
  }
  return out;
}

Block8x8 dequantize_deadzone(const QuantBlock& levels, double qstep) {
  Block8x8 out{};
  for (int i = 0; i < 64; ++i) {
    const double l = levels[static_cast<std::size_t>(i)];
    if (l == 0.0) {
      out[static_cast<std::size_t>(i)] = 0.0;
    } else {
      const double sign = l > 0.0 ? 1.0 : -1.0;
      out[static_cast<std::size_t>(i)] = (l + 0.5 * sign) * qstep;
    }
  }
  return out;
}

const std::array<int, 64> kZigzag = {
    0,  1,  8,  16, 9,  2,  3,  10, 17, 24, 32, 25, 18, 11, 4,  5,
    12, 19, 26, 33, 40, 48, 41, 34, 27, 20, 13, 6,  7,  14, 21, 28,
    35, 42, 49, 56, 57, 50, 43, 36, 29, 22, 15, 23, 30, 37, 44, 51,
    58, 59, 52, 45, 38, 31, 39, 46, 53, 60, 61, 54, 47, 55, 62, 63};

}  // namespace tv::video
