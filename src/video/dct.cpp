#include "video/dct.hpp"

#include <cmath>
#include <numbers>

namespace tv::video {

namespace {

// Precomputed cosine basis: kCos[u][x] = c(u) * cos((2x+1) u pi / 16).
struct Basis {
  double table[8][8];
  Basis() {
    for (int u = 0; u < 8; ++u) {
      const double cu = u == 0 ? std::sqrt(1.0 / 8.0) : std::sqrt(2.0 / 8.0);
      for (int x = 0; x < 8; ++x) {
        table[u][x] = cu * std::cos((2.0 * x + 1.0) * u * std::numbers::pi / 16.0);
      }
    }
  }
};

const Basis kBasis;

}  // namespace

Block8x8 forward_dct(const Block8x8& spatial) {
  // Separable: rows then columns.
  Block8x8 tmp{};
  for (int r = 0; r < 8; ++r) {
    for (int u = 0; u < 8; ++u) {
      double acc = 0.0;
      for (int x = 0; x < 8; ++x) {
        acc += spatial[static_cast<std::size_t>(r * 8 + x)] * kBasis.table[u][x];
      }
      tmp[static_cast<std::size_t>(r * 8 + u)] = acc;
    }
  }
  Block8x8 out{};
  for (int c = 0; c < 8; ++c) {
    for (int v = 0; v < 8; ++v) {
      double acc = 0.0;
      for (int y = 0; y < 8; ++y) {
        acc += tmp[static_cast<std::size_t>(y * 8 + c)] * kBasis.table[v][y];
      }
      out[static_cast<std::size_t>(v * 8 + c)] = acc;
    }
  }
  return out;
}

Block8x8 inverse_dct(const Block8x8& coefficients) {
  Block8x8 tmp{};
  for (int c = 0; c < 8; ++c) {
    for (int y = 0; y < 8; ++y) {
      double acc = 0.0;
      for (int v = 0; v < 8; ++v) {
        acc += coefficients[static_cast<std::size_t>(v * 8 + c)] *
               kBasis.table[v][y];
      }
      tmp[static_cast<std::size_t>(y * 8 + c)] = acc;
    }
  }
  Block8x8 out{};
  for (int r = 0; r < 8; ++r) {
    for (int x = 0; x < 8; ++x) {
      double acc = 0.0;
      for (int u = 0; u < 8; ++u) {
        acc += tmp[static_cast<std::size_t>(r * 8 + u)] * kBasis.table[u][x];
      }
      out[static_cast<std::size_t>(r * 8 + x)] = acc;
    }
  }
  return out;
}

QuantBlock quantize(const Block8x8& coefficients, double qstep) {
  QuantBlock out{};
  for (int i = 0; i < 64; ++i) {
    const double step = i == 0 ? qstep * 0.5 : qstep;
    out[static_cast<std::size_t>(i)] = static_cast<std::int16_t>(
        std::lround(coefficients[static_cast<std::size_t>(i)] / step));
  }
  return out;
}

Block8x8 dequantize(const QuantBlock& levels, double qstep) {
  Block8x8 out{};
  for (int i = 0; i < 64; ++i) {
    const double step = i == 0 ? qstep * 0.5 : qstep;
    out[static_cast<std::size_t>(i)] =
        static_cast<double>(levels[static_cast<std::size_t>(i)]) * step;
  }
  return out;
}

QuantBlock quantize_deadzone(const Block8x8& coefficients, double qstep) {
  QuantBlock out{};
  for (int i = 0; i < 64; ++i) {
    const double c = coefficients[static_cast<std::size_t>(i)];
    // Truncation toward zero: the dead zone spans (-qstep, qstep).
    out[static_cast<std::size_t>(i)] =
        static_cast<std::int16_t>(c / qstep);
  }
  return out;
}

Block8x8 dequantize_deadzone(const QuantBlock& levels, double qstep) {
  Block8x8 out{};
  for (int i = 0; i < 64; ++i) {
    const double l = levels[static_cast<std::size_t>(i)];
    if (l == 0.0) {
      out[static_cast<std::size_t>(i)] = 0.0;
    } else {
      const double sign = l > 0.0 ? 1.0 : -1.0;
      out[static_cast<std::size_t>(i)] = (l + 0.5 * sign) * qstep;
    }
  }
  return out;
}

const std::array<int, 64> kZigzag = {
    0,  1,  8,  16, 9,  2,  3,  10, 17, 24, 32, 25, 18, 11, 4,  5,
    12, 19, 26, 33, 40, 48, 41, 34, 27, 20, 13, 6,  7,  14, 21, 28,
    35, 42, 49, 56, 57, 50, 43, 36, 29, 22, 15, 23, 30, 37, 44, 51,
    58, 59, 52, 45, 38, 31, 39, 46, 53, 60, 61, 54, 47, 55, 62, 63};

}  // namespace tv::video
