// Flow-level distortion model (Sections 4.3.2-4.3.4, eqs. 21-27).
//
// Each GOP is IPP...P with G frames.  Per the paper's abstraction:
//  * Case 1 (intra-GOP): the I-frame arrives; if the first unrecoverable
//    P-frame is the i-th, the GOP's distortion is d_i (eq. 21) and the
//    event has probability P_I P_P^{i-1} (1 - P_P) (eq. 22).
//  * Case 2 (inter-GOP): the I-frame is lost; every frame of the GOP is
//    replaced by the most recent good frame, whose distance keeps growing
//    across consecutively lost GOPs; distortion follows the fitted
//    distance polynomial D(d).
//  * Case 3 (initial GOP): no good frame exists yet; distortion saturates
//    at the maximum of D.
//
// The paper's eq. (26) sums over the exponential state space {0..G}^N; the
// distortion of GOP i only depends on its own first-loss state and on the
// age of the last good frame, so an exact dynamic program over that age
// computes E[D] in O(N * age_cap) instead (validated against a Monte Carlo
// of the literal model in the tests).
#pragma once

#include "distortion/inter_gop.hpp"
#include "util/rng.hpp"

namespace tv::distortion {

struct FlowModelParameters {
  int gop_size = 30;          ///< G.
  double p_i_success = 1.0;   ///< P_I: I-frame success rate (eq. 20).
  double p_p_success = 1.0;   ///< P_P: P-frame success rate.
  double d_min = 0.0;         ///< intra-GOP distortion floor (eq. 21).
  double d_max = 0.0;         ///< intra-GOP distortion ceiling.
  double base_mse = 0.0;      ///< coding distortion present even lossless.
  int age_cap_gops = 8;       ///< DP truncation: ages beyond this saturate.
  /// Case 3: distortion of a GOP decoded with no reference ever received
  /// (all I-frames of the flow so far lost/encrypted) — the paper's
  /// D^(0) = max distortion.  Measured as the content's MSE against the
  /// decoder's blank (mid-gray) output.
  double null_reference_mse = 0.0;
};

class FlowDistortionModel {
 public:
  FlowDistortionModel(FlowModelParameters params, DistanceDistortion inter);

  /// d_i of eq. (21): expected GOP distortion when the first unrecoverable
  /// frame is the i-th P-frame (i in 1..G-1).
  [[nodiscard]] double intra_distortion(int i) const;

  /// P_i of eq. (22).
  [[nodiscard]] double first_loss_probability(int i) const;

  /// E[D^(1)]: expected intra-GOP distortion contribution of one GOP.
  [[nodiscard]] double intra_gop_expected() const;

  /// Per-GOP state occupancy of the eq. (23) chain: slot 0 = intact GOP,
  /// slot i (1..G-1) = first unrecoverable frame is the i-th P-frame
  /// (eq. 22), slot G = I-frame unrecoverable.  The branch probabilities
  /// do not depend on the reference age, so the pmf is the same for every
  /// GOP; the discrete-event eavesdropper simulator cross-checks it
  /// empirically.
  [[nodiscard]] std::vector<double> gop_state_pmf() const;

  /// Exact expected average distortion of an N-GOP flow (eq. 27) by DP.
  [[nodiscard]] double flow_average_distortion(int n_gops) const;

  /// Monte-Carlo estimate of the same quantity by simulating the literal
  /// GOP state chain of eqs. (23)-(26); cross-checks the DP.
  [[nodiscard]] double flow_average_distortion_mc(int n_gops, int repetitions,
                                                  util::Rng& rng) const;

  /// PSNR corresponding to the flow-average distortion, eq. (28).
  [[nodiscard]] double flow_average_psnr(int n_gops) const;

  [[nodiscard]] const FlowModelParameters& parameters() const {
    return params_;
  }

 private:
  /// Distortion of a fully lost GOP whose last good frame is `age` frames
  /// before the GOP's first frame.
  [[nodiscard]] double lost_gop_distortion(int age) const;

  FlowModelParameters params_;
  DistanceDistortion inter_;
};

}  // namespace tv::distortion
