#include "distortion/frame_success.hpp"

#include <cmath>
#include <stdexcept>
#include <vector>

namespace tv::distortion {

double receiver_decryption_rate(double packet_success_rate) {
  if (packet_success_rate < 0.0 || packet_success_rate > 1.0) {
    throw std::invalid_argument{"receiver_decryption_rate: bad p_s"};
  }
  return packet_success_rate;
}

double eavesdropper_decryption_rate(double encrypted_fraction,
                                    double packet_success_rate) {
  if (encrypted_fraction < 0.0 || encrypted_fraction > 1.0 ||
      packet_success_rate < 0.0 || packet_success_rate > 1.0) {
    throw std::invalid_argument{"eavesdropper_decryption_rate: bad inputs"};
  }
  return (1.0 - encrypted_fraction) * packet_success_rate;
}

double frame_success_probability(int packets_per_frame, int sensitivity,
                                 double decryption_rate) {
  if (packets_per_frame < 1) {
    throw std::invalid_argument{"frame_success_probability: n < 1"};
  }
  if (sensitivity < 0 || sensitivity > packets_per_frame - 1) {
    throw std::invalid_argument{"frame_success_probability: s out of range"};
  }
  if (decryption_rate < 0.0 || decryption_rate > 1.0) {
    throw std::invalid_argument{"frame_success_probability: bad p_d"};
  }
  const double p = decryption_rate;
  const int m = packets_per_frame - 1;
  // Binomial tail: sum_{i=s}^{m} C(m, i) p^i (1-p)^(m-i), computed with a
  // running binomial pmf for numerical robustness at large n.
  double tail = 0.0;
  // pmf(0) = (1-p)^m; iterate upward.
  double pmf = std::pow(1.0 - p, m);
  if (p == 1.0) {
    tail = 1.0;  // all of the remaining packets always arrive.
  } else {
    for (int i = 0; i <= m; ++i) {
      if (i >= sensitivity) tail += pmf;
      // pmf(i+1) = pmf(i) * (m - i)/(i + 1) * p/(1-p).
      pmf *= static_cast<double>(m - i) / static_cast<double>(i + 1) * p /
             (1.0 - p);
    }
    if (tail > 1.0) tail = 1.0;
  }
  return p * tail;
}

int sensitivity_from_fraction(int packets_per_frame, double fraction) {
  if (packets_per_frame < 1) {
    throw std::invalid_argument{"sensitivity_from_fraction: n < 1"};
  }
  if (fraction < 0.0 || fraction > 1.0) {
    throw std::invalid_argument{"sensitivity_from_fraction: bad fraction"};
  }
  const int m = packets_per_frame - 1;
  const int s = static_cast<int>(std::ceil(fraction * m));
  return s > m ? m : s;
}

}  // namespace tv::distortion
