// Inter-GOP (reference-substitution) distortion vs. distance — Fig. 2 and
// the degree-5 polynomial regression of Section 4.3.2.
//
// When a frame is concealed by an older frame, the distortion depends on
// how far apart they are and on the content's motion level.  The paper
// measures MSE between frames at increasing distances on reference clips,
// then fits D(d) = sum a_i d^i (degree 5).  We run the identical procedure
// on synthetic clips.
#pragma once

#include <vector>

#include "util/polynomial.hpp"
#include "video/frame.hpp"

namespace tv::distortion {

/// (distance, mean MSE) samples measured from a clip.
struct DistanceSamples {
  std::vector<double> distances;
  std::vector<double> mse;
};

/// Average luma MSE between each frame t and frame t-d, for d = 1..max
/// (the paper's "artificially created frame losses ... substitutions from
/// various distances").
[[nodiscard]] DistanceSamples measure_substitution_distortion(
    const video::FrameSequence& clip, int max_distance);

/// The fitted distance-to-distortion curve.  Evaluation clamps the
/// distance into [1, saturation_distance]: the polynomial is only trusted
/// on the fitted range, and beyond it the distortion has physically
/// saturated (frames are simply "different scenes").
class DistanceDistortion {
 public:
  /// Default: zero distortion at any distance (placeholder until fitted).
  DistanceDistortion() : poly_{util::Polynomial{{0.0}}}, saturation_(1.0) {}

  DistanceDistortion(util::Polynomial polynomial, double saturation_distance);

  /// Build by degree-`degree` regression on measured samples (Fig. 2's
  /// "multinomial regression" with degree 5).
  [[nodiscard]] static DistanceDistortion fit(const DistanceSamples& samples,
                                              std::size_t degree = 5);

  /// D(d): expected MSE of substituting a frame `distance` frames away.
  [[nodiscard]] double operator()(double distance) const;

  [[nodiscard]] const util::Polynomial& polynomial() const { return poly_; }
  [[nodiscard]] double saturation_distance() const { return saturation_; }
  /// Maximum distortion (at the saturation distance).
  [[nodiscard]] double max_distortion() const;

 private:
  util::Polynomial poly_;
  double saturation_;
};

}  // namespace tv::distortion
