#include "distortion/gop_model.hpp"

#include <cmath>
#include <stdexcept>
#include <vector>

#include "video/frame.hpp"

namespace tv::distortion {

FlowDistortionModel::FlowDistortionModel(FlowModelParameters params,
                                         DistanceDistortion inter)
    : params_(params), inter_(std::move(inter)) {
  if (params_.gop_size < 2) {
    throw std::invalid_argument{"FlowDistortionModel: gop_size < 2"};
  }
  if (params_.p_i_success < 0.0 || params_.p_i_success > 1.0 ||
      params_.p_p_success < 0.0 || params_.p_p_success > 1.0) {
    throw std::invalid_argument{"FlowDistortionModel: bad success rates"};
  }
  if (params_.age_cap_gops < 2) {
    throw std::invalid_argument{"FlowDistortionModel: age_cap_gops < 2"};
  }
}

double FlowDistortionModel::intra_distortion(int i) const {
  const int g = params_.gop_size;
  if (i < 1 || i > g - 1) {
    throw std::invalid_argument{"intra_distortion: i out of 1..G-1"};
  }
  // Eq. (21): d_i = (G - i) (i d_min + (G - i - 1) d_max) / ((G - 1) G).
  // Early losses freeze more frames at larger distances, so d_i decreases
  // in i from ~d_max toward ~d_min / G.
  const double gi = static_cast<double>(g - i);
  return gi *
         (static_cast<double>(i) * params_.d_min +
          static_cast<double>(g - i - 1) * params_.d_max) /
         (static_cast<double>(g - 1) * static_cast<double>(g));
}

double FlowDistortionModel::first_loss_probability(int i) const {
  const int g = params_.gop_size;
  if (i < 1 || i > g - 1) {
    throw std::invalid_argument{"first_loss_probability: i out of 1..G-1"};
  }
  // Eq. (22): P_i = P_I P_P^{i-1} (1 - P_P).
  return params_.p_i_success * std::pow(params_.p_p_success, i - 1) *
         (1.0 - params_.p_p_success);
}

std::vector<double> FlowDistortionModel::gop_state_pmf() const {
  const int g = params_.gop_size;
  std::vector<double> pmf(static_cast<std::size_t>(g) + 1, 0.0);
  pmf[0] = params_.p_i_success * std::pow(params_.p_p_success, g - 1);
  for (int i = 1; i <= g - 1; ++i) {
    pmf[static_cast<std::size_t>(i)] = first_loss_probability(i);
  }
  pmf[static_cast<std::size_t>(g)] = 1.0 - params_.p_i_success;
  return pmf;
}

double FlowDistortionModel::intra_gop_expected() const {
  double acc = 0.0;
  for (int i = 1; i <= params_.gop_size - 1; ++i) {
    acc += intra_distortion(i) * first_loss_probability(i);
  }
  return acc;
}

double FlowDistortionModel::lost_gop_distortion(int age) const {
  // Every frame j = 0..G-1 is replaced by a frame at distance age + j.
  const int g = params_.gop_size;
  double acc = 0.0;
  for (int j = 0; j < g; ++j) {
    acc += inter_(static_cast<double>(age + j));
  }
  return acc / static_cast<double>(g);
}

double FlowDistortionModel::flow_average_distortion(int n_gops) const {
  if (n_gops < 1) {
    throw std::invalid_argument{"flow_average_distortion: n_gops < 1"};
  }
  const int g = params_.gop_size;
  const double pi_ok = params_.p_i_success;
  const double pp = params_.p_p_success;
  const int cap = params_.age_cap_gops * g + 1;  // ages 1..cap, saturating.

  // DP over the age (frames) of the last good displayed frame at GOP start,
  // plus the Case-3 "no reference ever" state tracked separately.
  std::vector<double> age_prob(static_cast<std::size_t>(cap) + 1, 0.0);
  double null_prob = 1.0;  // before the first GOP there is no good frame.

  // Precompute the intra-GOP branch (age-independent).
  const double p_all_ok = pi_ok * std::pow(pp, g - 1);
  double intra_term = 0.0;  // sum_i d_i P_i, with P_I folded in.
  std::vector<double> p_first_loss(static_cast<std::size_t>(g), 0.0);
  for (int i = 1; i <= g - 1; ++i) {
    p_first_loss[static_cast<std::size_t>(i)] = first_loss_probability(i);
    intra_term +=
        intra_distortion(i) * p_first_loss[static_cast<std::size_t>(i)];
  }

  double total = 0.0;
  for (int gop = 0; gop < n_gops; ++gop) {
    // Expected distortion of this GOP.  The intra branch (I received, some
    // P lost) applies from every state; the I-lost branch depends on the
    // reference age, or yields the Case-3 maximum from the null state.
    double expected = intra_term;
    for (int a = 1; a <= cap; ++a) {
      const double pa = age_prob[static_cast<std::size_t>(a)];
      if (pa <= 0.0) continue;
      expected += pa * (1.0 - pi_ok) * lost_gop_distortion(a);
    }
    expected += null_prob * (1.0 - pi_ok) * params_.null_reference_mse;
    total += expected + params_.base_mse;

    // Age transition.
    std::vector<double> next(static_cast<std::size_t>(cap) + 1, 0.0);
    // All frames fine -> age 1.
    next[1] += p_all_ok;
    // First loss at P-frame i -> age G - i + 1.
    for (int i = 1; i <= g - 1; ++i) {
      next[static_cast<std::size_t>(g - i + 1)] +=
          p_first_loss[static_cast<std::size_t>(i)];
    }
    // I-frame lost -> age grows by G (saturating at cap); from the null
    // state only a received I-frame provides a first reference.
    for (int a = 1; a <= cap; ++a) {
      const double pa = age_prob[static_cast<std::size_t>(a)];
      if (pa <= 0.0) continue;
      const int na = a + g > cap ? cap : a + g;
      next[static_cast<std::size_t>(na)] += pa * (1.0 - pi_ok);
    }
    null_prob *= (1.0 - pi_ok);
    age_prob = std::move(next);
  }
  return total / static_cast<double>(n_gops);
}

double FlowDistortionModel::flow_average_distortion_mc(int n_gops,
                                                       int repetitions,
                                                       util::Rng& rng) const {
  if (n_gops < 1 || repetitions < 1) {
    throw std::invalid_argument{"flow_average_distortion_mc: bad inputs"};
  }
  const int g = params_.gop_size;
  const int cap = params_.age_cap_gops * g + 1;
  double grand_total = 0.0;
  for (int rep = 0; rep < repetitions; ++rep) {
    int age = -1;  // -1: no good frame ever (Case 3).
    double total = 0.0;
    for (int gop = 0; gop < n_gops; ++gop) {
      if (!rng.bernoulli(params_.p_i_success)) {
        if (age < 0) {
          total += params_.null_reference_mse;
        } else {
          total += lost_gop_distortion(age);
          age = age + g > cap ? cap : age + g;
        }
      } else {
        // Find the first lost P-frame, if any (state S_i of eq. 23).
        int first_loss = 0;  // 0 = none.
        for (int i = 1; i <= g - 1; ++i) {
          if (!rng.bernoulli(params_.p_p_success)) {
            first_loss = i;
            break;
          }
        }
        if (first_loss == 0) {
          age = 1;
        } else {
          total += intra_distortion(first_loss);
          age = g - first_loss + 1;
        }
      }
      total += params_.base_mse;
    }
    grand_total += total / static_cast<double>(n_gops);
  }
  return grand_total / static_cast<double>(repetitions);
}

double FlowDistortionModel::flow_average_psnr(int n_gops) const {
  return video::psnr_from_mse(flow_average_distortion(n_gops));
}

}  // namespace tv::distortion
