// Packet decryption rate and video-frame success rate (Sections 4.3, 4.3.1).
//
// A node can use a packet iff it was received without channel errors AND it
// can decrypt it.  The legitimate receiver decrypts everything:
//     p_d^l = p_s;
// the eavesdropper only uses clear packets:
//     p_d^e = (1 - q(P)) p_s,
// where q(P) is the fraction of packets the policy encrypts.  A frame of n
// packets is decodable when its first packet (headers) is usable and at
// least s of the remaining n-1 are (eq. 20); s is the decoder sensitivity,
// which grows with content motion.
#pragma once

namespace tv::distortion {

/// Eavesdropper / receiver packet decryption rates (Section 4.3).
[[nodiscard]] double receiver_decryption_rate(double packet_success_rate);
[[nodiscard]] double eavesdropper_decryption_rate(double encrypted_fraction,
                                                  double packet_success_rate);

/// Frame success rate, eq. (20): the first packet must be usable and at
/// least `sensitivity` of the remaining n-1 must be.  sensitivity must be
/// in [0, n-1].
[[nodiscard]] double frame_success_probability(int packets_per_frame,
                                               int sensitivity,
                                               double decryption_rate);

/// Sensitivity as a fraction of the frame's remaining packets, by motion
/// level; defaults follow the calibration in DESIGN.md (fast-motion
/// content tolerates almost no loss).
[[nodiscard]] int sensitivity_from_fraction(int packets_per_frame,
                                            double fraction);

}  // namespace tv::distortion
