#include "distortion/inter_gop.hpp"

#include <algorithm>
#include <stdexcept>

namespace tv::distortion {

DistanceSamples measure_substitution_distortion(
    const video::FrameSequence& clip, int max_distance) {
  if (max_distance < 1 ||
      clip.size() <= static_cast<std::size_t>(max_distance)) {
    throw std::invalid_argument{
        "measure_substitution_distortion: clip too short for max_distance"};
  }
  DistanceSamples samples;
  for (int d = 1; d <= max_distance; ++d) {
    double acc = 0.0;
    std::size_t count = 0;
    for (std::size_t t = static_cast<std::size_t>(d); t < clip.size(); ++t) {
      acc += video::luma_mse(clip[t], clip[t - static_cast<std::size_t>(d)]);
      ++count;
    }
    samples.distances.push_back(static_cast<double>(d));
    samples.mse.push_back(acc / static_cast<double>(count));
  }
  return samples;
}

DistanceDistortion::DistanceDistortion(util::Polynomial polynomial,
                                       double saturation_distance)
    : poly_(std::move(polynomial)), saturation_(saturation_distance) {
  if (saturation_ < 1.0) {
    throw std::invalid_argument{"DistanceDistortion: saturation < 1"};
  }
}

DistanceDistortion DistanceDistortion::fit(const DistanceSamples& samples,
                                           std::size_t degree) {
  if (samples.distances.size() != samples.mse.size() ||
      samples.distances.empty()) {
    throw std::invalid_argument{"DistanceDistortion::fit: bad samples"};
  }
  // The regression needs more samples than coefficients; degrade the degree
  // gracefully for short sample sets (the paper fits degree 5 on its data).
  const std::size_t usable_degree =
      std::min(degree, samples.distances.size() - 1);
  util::Polynomial poly =
      util::polyfit(samples.distances, samples.mse, usable_degree);
  const double saturation =
      *std::max_element(samples.distances.begin(), samples.distances.end());
  return DistanceDistortion{std::move(poly), saturation};
}

double DistanceDistortion::operator()(double distance) const {
  const double d = std::clamp(distance, 1.0, saturation_);
  const double value = poly_(d);
  return value > 0.0 ? value : 0.0;
}

double DistanceDistortion::max_distortion() const {
  // The measured curves are increasing in distance, but a degree-5 fit can
  // wiggle; scan the clamped range.
  double best = 0.0;
  for (double d = 1.0; d <= saturation_; d += 0.25) {
    best = std::max(best, (*this)(d));
  }
  return best;
}

}  // namespace tv::distortion
