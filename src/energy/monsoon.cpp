#include "energy/monsoon.hpp"

#include <stdexcept>

namespace tv::energy {

double watts_from_microamp_hours(double micro_amp_hours,
                                 double stream_duration_s, double voltage) {
  if (stream_duration_s <= 0.0 || voltage <= 0.0 || micro_amp_hours < 0.0) {
    throw std::invalid_argument{"watts_from_microamp_hours: bad inputs"};
  }
  return micro_amp_hours * voltage * 3600.0 * 1e-6 / stream_duration_s;
}

double microamp_hours_from_watts(double watts, double stream_duration_s,
                                 double voltage) {
  if (stream_duration_s <= 0.0 || voltage <= 0.0 || watts < 0.0) {
    throw std::invalid_argument{"microamp_hours_from_watts: bad inputs"};
  }
  return watts * stream_duration_s / (voltage * 3600.0 * 1e-6);
}

}  // namespace tv::energy
