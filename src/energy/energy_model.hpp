// Component-based energy model for the streaming device (Section 6.3).
//
// The paper measures whole-device power with a Monsoon monitor; we
// integrate energy over the simulated transfer from three components:
//   * a baseline draw while the streaming app runs (CPU, screen, WiFi idle),
//   * CPU energy per encrypted byte (device- and algorithm-dependent),
//   * radio energy while the packet is on the air.
// Device profiles in core/ are calibrated so the *relative* increases match
// the figures the paper reports (e.g. Samsung S-II slow motion: all = +140%
// over none, I-only = +11%, i.e. 92% of the penalty saved).
#pragma once

#include <cstddef>

namespace tv::energy {

/// Power/energy coefficients of one device + cipher combination.
struct PowerCoefficients {
  double base_w = 1.0;            ///< baseline device power (W).
  double crypto_j_per_mb = 0.0;   ///< CPU energy per encrypted megabyte (J).
  double radio_tx_w = 0.6;        ///< extra radio power while transmitting.
  /// Ceiling on the crypto component's mean power draw: once the cipher
  /// keeps a core permanently busy, burning more bytes cannot draw more
  /// power (it only stretches the transfer).
  double crypto_max_w = 1.5;
};

/// Energy decomposition of one transfer.
struct EnergyBreakdown {
  double base_j = 0.0;
  double crypto_j = 0.0;
  double radio_j = 0.0;

  [[nodiscard]] double total_j() const { return base_j + crypto_j + radio_j; }
};

/// Integrate the energy of a transfer that lasted `duration_s`, encrypted
/// `encrypted_bytes` and kept the radio transmitting for `airtime_s`.
[[nodiscard]] EnergyBreakdown transfer_energy(const PowerCoefficients& coeffs,
                                              double duration_s,
                                              std::size_t encrypted_bytes,
                                              double airtime_s);

/// Mean power over the stream duration — the quantity in Figs. 10-11.
[[nodiscard]] double mean_power_w(const EnergyBreakdown& energy,
                                  double duration_s);

}  // namespace tv::energy
