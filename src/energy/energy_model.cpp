#include "energy/energy_model.hpp"

#include <algorithm>
#include <stdexcept>

namespace tv::energy {

EnergyBreakdown transfer_energy(const PowerCoefficients& coeffs,
                                double duration_s,
                                std::size_t encrypted_bytes,
                                double airtime_s) {
  if (duration_s <= 0.0 || airtime_s < 0.0 || airtime_s > duration_s) {
    throw std::invalid_argument{"transfer_energy: bad durations"};
  }
  EnergyBreakdown e;
  e.base_j = coeffs.base_w * duration_s;
  e.crypto_j = std::min(
      coeffs.crypto_j_per_mb * static_cast<double>(encrypted_bytes) / 1e6,
      coeffs.crypto_max_w * duration_s);
  e.radio_j = coeffs.radio_tx_w * airtime_s;
  return e;
}

double mean_power_w(const EnergyBreakdown& energy, double duration_s) {
  if (duration_s <= 0.0) {
    throw std::invalid_argument{"mean_power_w: bad duration"};
  }
  return energy.total_j() / duration_s;
}

}  // namespace tv::energy
