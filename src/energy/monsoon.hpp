// Monsoon power-monitor arithmetic (eq. 29).
//
// The paper's monitor reports charge in microampere-hours; eq. (29)
// converts a reading into mean power at the 3.9 V supply.  Provided both
// ways so experiment output can be cross-checked against monitor-style
// readings.
#pragma once

namespace tv::energy {

inline constexpr double kMonsoonVoltage = 3.9;  ///< volts, per Section 6.3.

/// Eq. (29): power (W) from a charge reading v (uAh) over a stream
/// duration (s):  P = v * Voltage * 3600 * 1e-6 / duration.
[[nodiscard]] double watts_from_microamp_hours(double micro_amp_hours,
                                               double stream_duration_s,
                                               double voltage = kMonsoonVoltage);

/// Inverse of eq. (29): the uAh reading a Monsoon monitor would show for a
/// transfer of the given mean power and duration.
[[nodiscard]] double microamp_hours_from_watts(double watts,
                                               double stream_duration_s,
                                               double voltage = kMonsoonVoltage);

}  // namespace tv::energy
