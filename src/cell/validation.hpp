// Cross-check grid: the heterogeneous Bianchi fixed point against the
// multi-station DCF discrete-event simulator (docs/cell.md).
//
// A CellValidationSpec declares a cartesian grid over (n video stations,
// CWmin, backoff stages), each optionally sharing the cell with a
// background class.  For every grid cell the runner solves
// wifi::solve_dcf_classes and simulates wifi::simulate_dcf_classes on the
// same population (with a warmup prefix discarded, see dcf_sim.hpp), then
// compares every per-class statistic — attempt probability tau_c,
// conditional collision probability p_c — and the cell-wide success
// fraction under an acceptance band of
//
//   tol = z * SE_hat + rel * |analytic| + abs_floor
//
// where SE_hat is the binomial standard-error estimate of the simulated
// statistic and the relative term absorbs the decoupling bias of the
// fixed-point approximation itself (the DES has real inter-station
// coupling; Bianchi assumes independence).  Same determinism contract as
// sim::ValidationRunner: derived per-cell seeds, strictly ordered sink
// calls, byte-identical output at any thread count.
#pragma once

#include <cstdint>
#include <ostream>
#include <string>
#include <vector>

#include "wifi/dcf_model.hpp"
#include "wifi/dcf_sim.hpp"

namespace tv::util {
class ThreadPool;
}

namespace tv::cell {

/// Declarative fixed-point-vs-DES grid.  The defaults form the CI gate:
/// 16 cells (>= the 12 the acceptance criteria require) covering light to
/// heavy contention at two window geometries.
struct CellValidationSpec {
  // Grid axes, row-major cell order (contenders, cw_min, stages).
  std::vector<int> contenders{2, 3, 5, 8};
  std::vector<int> cw_mins{16, 32};
  std::vector<int> stage_counts{3, 6};
  /// Background cross-traffic class present in every cell (0 disables).
  int background_stations = 0;
  int background_cw_min = 32;
  int background_stages = 6;

  std::uint64_t slots = 300000;   ///< measured slots per cell.
  std::uint64_t warmup = 20000;   ///< discarded cold-start slots.
  double z = 3.0;                 ///< multiplier on the SE estimate.
  double relative_slack = 0.06;   ///< decoupling-bias allowance.
  double absolute_floor = 5e-4;   ///< band floor for near-zero statistics.
  std::uint64_t seed = 1;

  /// Throws std::invalid_argument on empty axes or unusable knobs.
  void validate() const;
  [[nodiscard]] std::size_t cell_count() const;
};

/// One fully-resolved grid point.
struct CellValidationCell {
  std::size_t index = 0;  ///< row-major position in the grid.
  int contenders = 0;
  int cw_min = 16;
  int stages = 6;
  std::uint64_t seed = 0;  ///< derive_seed(spec.seed, index).
};

/// Expand the grid (row-major, with derived seeds).  Pure.
[[nodiscard]] std::vector<CellValidationCell> enumerate_validation_cells(
    const CellValidationSpec& spec);

/// One simulated-vs-analytic comparison.
struct CellValidationCheck {
  std::string name;
  double simulated = 0.0;
  double analytic = 0.0;
  double tolerance = 0.0;  ///< acceptance band halfwidth.
  bool ok = false;
};

struct CellValidationCellResult {
  CellValidationCell cell;
  wifi::MultiDcfSolution model;
  wifi::MultiDcfSimResult sim;
  std::vector<CellValidationCheck> checks;
  [[nodiscard]] bool passed() const;
};

/// Consumer of validation results; calls arrive strictly in cell order.
class CellValidationSink {
 public:
  virtual ~CellValidationSink() = default;
  virtual void begin(const CellValidationSpec& /*spec*/) {}
  virtual void cell(const CellValidationCellResult& result) = 0;
  virtual void end() {}
};

/// Human-readable aligned table, one row per grid cell.
class CellValidationTableSink : public CellValidationSink {
 public:
  explicit CellValidationTableSink(std::ostream& out) : out_(out) {}
  void begin(const CellValidationSpec& spec) override;
  void cell(const CellValidationCellResult& result) override;

 private:
  std::ostream& out_;
};

/// One JSON object per cell per line at %.17g.
class CellValidationJsonlSink : public CellValidationSink {
 public:
  explicit CellValidationJsonlSink(std::ostream& out) : out_(out) {}
  void cell(const CellValidationCellResult& result) override;

 private:
  std::ostream& out_;
};

/// In-memory sink for tests and programmatic consumers.
class CellValidationCollectSink : public CellValidationSink {
 public:
  void cell(const CellValidationCellResult& result) override {
    results.push_back(result);
  }
  std::vector<CellValidationCellResult> results;
};

struct CellValidationSummary {
  std::size_t cells = 0;
  std::size_t passed_cells = 0;
  std::size_t failed_checks = 0;
  unsigned threads = 1;
  double wall_s = 0.0;
  [[nodiscard]] bool all_passed() const { return passed_cells == cells; }
};

/// Runs one grid cell end to end (solve + simulate + band checks).  Pure
/// in (spec, cell); exposed for tests.
[[nodiscard]] CellValidationCellResult run_cell_validation_cell(
    const CellValidationSpec& spec, const CellValidationCell& cell);

/// Executes CellValidationSpecs, optionally on a thread pool.
class CellValidationRunner {
 public:
  /// `pool == nullptr` runs serially; any pool size yields byte-identical
  /// sink output.
  explicit CellValidationRunner(util::ThreadPool* pool = nullptr)
      : pool_(pool) {}

  CellValidationSummary run(const CellValidationSpec& spec,
                            CellValidationSink& sink);

 private:
  util::ThreadPool* pool_;
};

}  // namespace tv::cell
