// Bianchi <-> ServiceModel coupling: from a cell population to the MAC
// knobs each flow's transfer pipeline consumes.
//
// The single-flow pipeline (core::simulate_transfer) models the MAC as two
// scalars: the per-attempt success probability p_s (eq. 6) and the backoff
// wait rate lambda_b (eq. 7).  In a shared cell both are functions of who
// else is contending.  This module solves the heterogeneous n-station
// Bianchi fixed point (wifi::solve_dcf_classes) for a population of video
// uploaders plus background cross-traffic stations and maps the solution
// onto those two knobs plus the per-flow saturation throughput — the
// quantities the cell engine (cell.hpp) injects into every flow's
// PipelineConfig.  See docs/cell.md for the mapping derivation.
#pragma once

#include "wifi/channel.hpp"
#include "wifi/dcf_model.hpp"

namespace tv::cell {

/// Who shares the AP and on what PHY.
struct ContentionConfig {
  /// Saturated video uploaders (class 0 of the fixed point).
  wifi::DcfClass video{.stations = 1, .cw_min = 16, .backoff_stages = 6};
  /// Background cross-traffic stations (class 1; 0 disables the class).
  wifi::DcfClass background{.stations = 0, .cw_min = 32, .backoff_stages = 6};
  /// PHY timings for the virtual-slot durations and throughput.
  wifi::PhyParameters phy{.data_rate_mbps = 4.0};
  /// Mean on-air bytes of one video packet (payload + RTP/UDP/IP).
  double mean_wire_bytes = 1200.0;
  /// Flat per-attempt channel error probability composed into p_s.
  double channel_error_prob = 0.0;

  void validate() const;
};

/// The fixed-point solution mapped onto the pipeline's MAC knobs.
struct ContentionSolution {
  wifi::MultiDcfSolution dcf;   ///< class 0 = video, class 1 = background.
  int contenders = 0;           ///< total stations in the cell.
  double collision_prob = 0.0;  ///< p_c of the video class.
  /// p_s = (1 - p_c)(1 - p_err): PipelineConfig::mac_success_prob.
  double mac_success_prob = 1.0;
  /// lambda_b (1/s): PipelineConfig::backoff_rate.  Derived from the mean
  /// first-retry backoff window counted in mean virtual slots.
  double backoff_rate = 0.0;
  /// E[virtual slot] (s): idle sigma / success T_s / collision T_c mix.
  double mean_slot_s = 0.0;
  /// One video station's saturation throughput share (Mbit/s).
  double per_flow_throughput_mbps = 0.0;
};

/// Solve the cell's fixed point and derive the pipeline knobs.  Pure.
/// Throws std::invalid_argument on an unusable configuration (no video
/// stations, non-positive payload, error probability outside [0, 1)).
[[nodiscard]] ContentionSolution solve_contention(
    const ContentionConfig& config);

}  // namespace tv::cell
