#include "cell/cell.hpp"

#include <chrono>
#include <cmath>
#include <cstdarg>
#include <cstdio>
#include <memory>
#include <stdexcept>
#include <utility>

#include "crypto/suite.hpp"
#include "util/arena.hpp"
#include "energy/energy_model.hpp"
#include "util/thread_pool.hpp"
#include "video/quality.hpp"
#include "wifi/gilbert_elliott.hpp"

namespace tv::cell {

namespace {

std::string fmt(const char* format, ...) {
  char buf[256];
  va_list args;
  va_start(args, format);
  std::vsnprintf(buf, sizeof buf, format, args);
  va_end(args);
  return buf;
}

std::string json_escape(const std::string& s) {
  std::string out;
  out.reserve(s.size());
  for (char c : s) {
    if (c == '"' || c == '\\') out.push_back('\\');
    out.push_back(c);
  }
  return out;
}

/// %.17g rendering with non-finite values mapped to null (slack is +inf
/// for flows without a deadline; JSON has no inf literal).
std::string json_double(double v) {
  if (!std::isfinite(v)) return "null";
  return fmt("%.17g", v);
}

std::string json_stats(const util::RunningStats& s) {
  if (s.count() == 0) return "null";
  return fmt("{\"n\":%zu,\"mean\":%.17g,\"ci95\":%.17g,\"min\":%.17g,"
             "\"max\":%.17g}",
             s.count(), s.mean(), s.ci95_halfwidth(), s.min(), s.max());
}

/// Deterministic per-flow IV sized for the cipher (same derivation idiom
/// as run_experiment's).
std::vector<std::uint8_t> flow_iv_for(const crypto::BlockCipher& cipher,
                                      std::uint64_t seed) {
  std::vector<std::uint8_t> iv(cipher.block_size());
  std::uint64_t state = seed ^ 0x1234567890abcdefULL;
  for (auto& b : iv) {
    state = state * 6364136223846793005ULL + 1442695040888963407ULL;
    b = static_cast<std::uint8_t>(state >> 56);
  }
  return iv;
}

/// Mean on-air bytes (payload + RTP/UDP/IP) of a packetization.
double mean_wire_bytes(const std::vector<net::VideoPacket>& packets) {
  if (packets.empty()) return 0.0;
  double total = 0.0;
  for (const net::VideoPacket& p : packets) {
    total += static_cast<double>(p.wire_bytes());
  }
  return total / static_cast<double>(packets.size());
}

double i_packet_share(const std::vector<net::VideoPacket>& packets) {
  if (packets.empty()) return 0.0;
  std::size_t i_packets = 0;
  for (const net::VideoPacket& p : packets) {
    if (p.is_i_frame) ++i_packets;
  }
  return static_cast<double>(i_packets) /
         static_cast<double>(packets.size());
}

}  // namespace

void CellSpec::validate() const {
  if (flows < 1) throw std::invalid_argument{"CellSpec: flows < 1"};
  if (background_stations < 0) {
    throw std::invalid_argument{"CellSpec: background_stations < 0"};
  }
  if (motions.empty() || gop_sizes.empty() || policies.empty() ||
      algorithms.empty() || devices.empty() || deadlines_s.empty()) {
    throw std::invalid_argument{"CellSpec: empty axis"};
  }
  for (const policy::EncryptionPolicy& p : policies) p.validate();
  for (int gop : gop_sizes) {
    if (gop < 1 || frames < gop) {
      throw std::invalid_argument{"CellSpec: frames must cover every GOP"};
    }
  }
  if (fps <= 0.0) throw std::invalid_argument{"CellSpec: fps <= 0"};
  if (repetitions < 1) {
    throw std::invalid_argument{"CellSpec: repetitions < 1"};
  }
  if (cw_min < 1 || backoff_stages < 0 || background_cw_min < 1 ||
      background_stages < 0) {
    throw std::invalid_argument{"CellSpec: bad MAC parameters"};
  }
  if (channel_error_prob < 0.0 || channel_error_prob >= 1.0) {
    throw std::invalid_argument{"CellSpec: channel_error_prob outside [0,1)"};
  }
  if (fade_prob < 0.0 || fade_prob >= 1.0 || fade_error_prob < 0.0 ||
      fade_error_prob >= 1.0 || mean_fade_reps < 1.0) {
    throw std::invalid_argument{"CellSpec: bad fading parameters"};
  }
}

FlowConfig resolve_flow(const CellSpec& spec, std::size_t flow) {
  FlowConfig c;
  c.motion = spec.motions[flow % spec.motions.size()];
  c.gop_size = spec.gop_sizes[flow % spec.gop_sizes.size()];
  c.policy = spec.policies[flow % spec.policies.size()];
  c.policy.algorithm = spec.algorithms[flow % spec.algorithms.size()];
  c.device = spec.devices[flow % spec.devices.size()];
  c.deadline_s = spec.deadlines_s[flow % spec.deadlines_s.size()];
  return c;
}

CellResult run_cell(const CellSpec& spec, core::WorkloadCache& cache,
                    util::ThreadPool* pool) {
  spec.validate();
  const std::size_t n = static_cast<std::size_t>(spec.flows);

  // Resolve every flow's axes and (cached) workload.
  std::vector<FlowConfig> configs(n);
  std::vector<std::shared_ptr<const core::Workload>> workloads(n);
  for (std::size_t f = 0; f < n; ++f) {
    configs[f] = resolve_flow(spec, f);
    workloads[f] = cache.get(configs[f].motion, configs[f].gop_size,
                             spec.frames, spec.seed, spec.fps);
  }

  // The scheduler's view of each flow: first moments of eq. (3)'s stages.
  std::vector<FlowDemand> demands(n);
  double population_wire_bytes = 0.0;
  for (std::size_t f = 0; f < n; ++f) {
    const core::Workload& w = *workloads[f];
    FlowDemand& d = demands[f];
    d.index = f;
    d.policy = configs[f].policy;
    d.deadline_s = configs[f].deadline_s;
    d.clip_duration_s = static_cast<double>(spec.frames) / spec.fps;
    d.packet_count = w.packets.size();
    d.i_packet_share = i_packet_share(w.packets);
    const double wire = mean_wire_bytes(w.packets);
    population_wire_bytes += wire;
    double payload = 0.0;
    for (const net::VideoPacket& p : w.packets) {
      payload += static_cast<double>(p.payload.size());
    }
    payload /= static_cast<double>(w.packets.size());
    d.encryption_mean_s = configs[f].device.encryption_seconds(
        configs[f].policy.algorithm, static_cast<std::size_t>(payload));
    d.transmission_mean_s = wifi::transmission_time_s(
        spec.phy, static_cast<std::size_t>(wire));
  }

  ContentionConfig contention;
  contention.video = {spec.flows, spec.cw_min, spec.backoff_stages};
  contention.background = {spec.background_stations, spec.background_cw_min,
                           spec.background_stages};
  contention.phy = spec.phy;
  contention.mean_wire_bytes = population_wire_bytes / static_cast<double>(n);
  contention.channel_error_prob = spec.channel_error_prob;

  const DeadlineScheduler scheduler{spec.scheduler};
  const ScheduleResult schedule = scheduler.schedule(demands, contention);
  const ContentionSolution& sol = schedule.contention;

  // Per-flow block-fading state, one coherence block per repetition.  The
  // chains are derived for every flow — admitted or not — so the stream
  // assignment is independent of scheduling decisions.
  const std::size_t reps = static_cast<std::size_t>(spec.repetitions);
  std::vector<std::vector<bool>> faded(n);
  for (std::size_t f = 0; f < n; ++f) {
    if (spec.fade_prob > 0.0) {
      wifi::GilbertElliottParams fade;
      fade.mean_loss_prob = spec.fade_prob;
      fade.mean_burst_length = spec.mean_fade_reps;
      fade.good_loss_prob = 0.0;
      fade.bad_loss_prob = 1.0;
      wifi::GilbertElliottChannel chain{
          fade, util::derive_seed(spec.seed, kFadeStream, f)};
      faded[f] = chain.trace(reps);
    } else {
      faded[f].assign(reps, false);
    }
  }

  // Fail fast on configuration mistakes before burning simulation time:
  // the deepest fade must still leave a usable MAC success probability.
  {
    const double worst_fade = spec.fade_prob > 0.0 ? spec.fade_error_prob : 0.0;
    core::PipelineConfig probe = spec.pipeline;
    probe.fps = spec.fps;
    probe.phy = spec.phy;
    probe.mac_success_prob = sol.mac_success_prob * (1.0 - worst_fade);
    probe.backoff_rate = sol.backoff_rate;
    core::validate(probe);
  }

  // Flows are mutually independent: each reads only shared const state and
  // writes its own outcome slot; the fold below walks the slots in flow
  // order, so a pooled run is bit-identical to the serial one.
  std::vector<FlowOutcome> outcomes(n);
  const bool instrumented = spec.trace != nullptr;

  auto run_flow = [&](std::size_t f) {
    FlowOutcome& out = outcomes[f];
    const FlowConfig& cfg = configs[f];
    const FlowDecision& decision = schedule.flows[f];
    out.index = f;
    out.motion = cfg.motion;
    out.gop_size = cfg.gop_size;
    out.requested_policy = cfg.policy;
    out.policy = decision.policy;
    out.policy.algorithm = cfg.policy.algorithm;
    out.device_key = cfg.device.key;
    out.deadline_s = cfg.deadline_s;
    out.admitted = decision.admitted;
    out.degrade_steps = decision.degrade_steps;
    out.predicted_completion_s = decision.predicted_completion_s;
    out.slack_s = decision.slack_s;
    for (std::size_t r = 0; r < reps; ++r) {
      if (faded[f][r]) ++out.faded_repetitions;
    }
    if (!decision.admitted) return;  // deferred: no airtime, no statistics.

    const core::Workload& w = *workloads[f];
    // Per-flow arena: one bump-allocated clone of the shared plaintext
    // packets, encrypted in place for this flow only, dropped wholesale
    // when the task ends.  Keeps 10k-flow sweeps off the global heap.
    util::Arena arena;
    std::vector<net::VideoPacket> packets = net::clone_packets(w.packets, arena);
    const std::vector<bool> selected = out.policy.select(packets);
    const std::uint64_t cipher_seed =
        util::derive_seed(spec.seed, kCipherStream, f);
    const auto cipher =
        crypto::make_cipher_from_seed(out.policy.algorithm, cipher_seed);
    const auto flow_iv = flow_iv_for(*cipher, cipher_seed);
    net::encrypt_selected(packets, selected, *cipher, flow_iv);

    const int frame_count = static_cast<int>(w.stream.frames.size());
    const video::Decoder decoder{w.codec};

    core::PipelineConfig base = spec.pipeline;
    base.device = cfg.device;
    base.algorithm = out.policy.algorithm;
    base.fps = spec.fps;
    base.phy = spec.phy;
    base.backoff_rate = sol.backoff_rate;

    for (std::size_t r = 0; r < reps; ++r) {
      // The repetition's coherence block: a fade multiplies extra error
      // into both the MAC attempt success (more backoff) and the
      // delivery probability (more loss at the receiver).
      const double e = faded[f][r] ? spec.fade_error_prob : 0.0;
      core::PipelineConfig pipeline = base;
      pipeline.mac_success_prob = sol.mac_success_prob * (1.0 - e);
      pipeline.receiver_loss_prob =
          1.0 - (1.0 - base.receiver_loss_prob) * (1.0 - e);

      std::optional<core::StampTraceSink> stamp;
      if (instrumented) {
        stamp.emplace(spec.trace, nullptr,
                      static_cast<int>(f) * 1000 + static_cast<int>(r));
      }
      core::TransferResult transfer;
      try {
        transfer = core::simulate_transfer(
            pipeline, packets, flow_transfer_seed(spec.seed, f, r),
            stamp ? &*stamp : nullptr);
      } catch (const std::exception&) {
        ++out.failed_repetitions;
        continue;
      }
      ++out.completed_repetitions;

      out.delay_ms.add(transfer.mean_delay_ms());
      out.duration_s.add(transfer.duration_s);
      if (cfg.deadline_s > 0.0 && transfer.duration_s > cfg.deadline_s) {
        ++out.deadline_misses;
      }

      const energy::EnergyBreakdown energy = energy::transfer_energy(
          cfg.device.power_coefficients(out.policy.algorithm),
          transfer.duration_s, transfer.encrypted_payload_bytes,
          transfer.airtime_s);
      out.power_w.add(energy::mean_power_w(energy, transfer.duration_s));
      out.energy_j.add(energy.total_j());

      if (spec.evaluate_quality) {
        const auto rx_frames =
            net::reassemble(packets, transfer.receiver_delivered, frame_count,
                            cipher.get(), flow_iv);
        const video::FrameSequence rx = decoder.decode_stream(
            w.stream.width, w.stream.height, rx_frames);
        out.receiver_psnr_db.add(video::sequence_psnr(w.clip, rx));

        const auto ev_frames =
            net::reassemble(packets, transfer.eavesdropper_captured,
                            frame_count, nullptr, flow_iv);
        const video::FrameSequence ev = decoder.decode_stream(
            w.stream.width, w.stream.height, ev_frames);
        out.eavesdropper_psnr_db.add(video::sequence_psnr(w.clip, ev));
      }
    }
  };

  if (pool != nullptr && n > 1 && !instrumented) {
    pool->parallel_for(n, run_flow);
  } else {
    for (std::size_t f = 0; f < n; ++f) run_flow(f);
  }

  // Deterministic fold in flow order.
  CellResult result;
  result.flows = spec.flows;
  result.background = spec.background_stations;
  result.admitted = schedule.admitted;
  result.deferred = schedule.deferred;
  result.total_degrade_steps = schedule.total_degrade_steps;
  result.schedule_iterations = schedule.iterations;
  result.contention = sol;
  for (FlowOutcome& out : outcomes) {
    if (out.admitted) {
      result.delay_ms.merge(out.delay_ms);
      result.duration_s.merge(out.duration_s);
      result.power_w.merge(out.power_w);
      result.energy_j.merge(out.energy_j);
      result.receiver_psnr_db.merge(out.receiver_psnr_db);
      result.eavesdropper_psnr_db.merge(out.eavesdropper_psnr_db);
      result.deadline_misses += out.deadline_misses;
      if (out.deadline_s > 0.0) {
        result.deadline_repetitions +=
            static_cast<std::size_t>(out.completed_repetitions);
      }
    }
    result.flow_outcomes.push_back(std::move(out));
  }
  return result;
}

void CapacitySpec::validate() const {
  if (flow_counts.empty()) {
    throw std::invalid_argument{"CapacitySpec: no flow counts"};
  }
  for (int flows : flow_counts) {
    if (flows < 1) {
      throw std::invalid_argument{"CapacitySpec: flow count < 1"};
    }
  }
  CellSpec probe = base;
  probe.flows = flow_counts.front();
  probe.validate();
}

void CellTableSink::begin(const CapacitySpec& spec) {
  quality_ = spec.base.evaluate_quality;
  out_ << "flows  adm  def  deg  p_coll   p_s     Mb/s/flow  E[W] ms   ";
  if (quality_) out_ << "rxPSNR   evPSNR   ";
  out_ << "W mean   J mean    miss%\n";
}

void CellTableSink::point(const CapacityPoint& p) {
  const CellResult& r = p.result;
  out_ << fmt("%5d  %3d  %3d  %3d  %7.4f  %6.4f  %9.4f  %8.3f  ", p.flows,
              r.admitted, r.deferred, r.total_degrade_steps,
              r.contention.collision_prob, r.contention.mac_success_prob,
              r.contention.per_flow_throughput_mbps, r.delay_ms.mean());
  if (quality_) {
    out_ << fmt("%7.2f  %7.2f  ", r.receiver_psnr_db.mean(),
                r.eavesdropper_psnr_db.mean());
  }
  out_ << fmt("%7.3f  %8.3f  %5.1f\n", r.power_w.mean(), r.energy_j.mean(),
              100.0 * r.deadline_miss_fraction());
}

void CellJsonlSink::point(const CapacityPoint& p) {
  const CellResult& r = p.result;
  out_ << "{\"point\":" << p.index << ",\"flows\":" << p.flows
       << ",\"background\":" << r.background
       << ",\"admitted\":" << r.admitted << ",\"deferred\":" << r.deferred
       << ",\"degrade_steps\":" << r.total_degrade_steps
       << ",\"schedule_iterations\":" << r.schedule_iterations
       << fmt(",\"contention\":{\"contenders\":%d,\"collision_prob\":%.17g,"
              "\"mac_success_prob\":%.17g,\"backoff_rate\":%.17g,"
              "\"mean_slot_s\":%.17g,\"per_flow_throughput_mbps\":%.17g,"
              "\"iterations\":%d}",
              r.contention.contenders, r.contention.collision_prob,
              r.contention.mac_success_prob, r.contention.backoff_rate,
              r.contention.mean_slot_s,
              r.contention.per_flow_throughput_mbps, r.contention.dcf.iterations)
       << ",\"delay_ms\":" << json_stats(r.delay_ms)
       << ",\"duration_s\":" << json_stats(r.duration_s)
       << ",\"power_w\":" << json_stats(r.power_w)
       << ",\"energy_j\":" << json_stats(r.energy_j)
       << ",\"receiver_psnr_db\":" << json_stats(r.receiver_psnr_db)
       << ",\"eavesdropper_psnr_db\":" << json_stats(r.eavesdropper_psnr_db)
       << fmt(",\"deadline_miss_fraction\":%.17g",
              r.deadline_miss_fraction())
       << ",\"flows_detail\":[";
  for (std::size_t f = 0; f < r.flow_outcomes.size(); ++f) {
    const FlowOutcome& o = r.flow_outcomes[f];
    if (f > 0) out_ << ",";
    out_ << "{\"flow\":" << o.index << ",\"motion\":\""
         << video::to_string(o.motion) << "\",\"gop\":" << o.gop_size
         << ",\"requested\":\"" << json_escape(o.requested_policy.spec())
         << "\",\"policy\":\"" << json_escape(o.policy.spec())
         << "\",\"algorithm\":\"" << crypto::to_string(o.policy.algorithm)
         << "\",\"device\":\"" << json_escape(o.device_key)
         << "\",\"admitted\":" << (o.admitted ? "true" : "false")
         << ",\"degrade_steps\":" << o.degrade_steps
         << fmt(",\"deadline_s\":%.17g,\"predicted_s\":%.17g,",
                o.deadline_s, o.predicted_completion_s)
         << "\"slack_s\":" << json_double(o.slack_s)
         << ",\"faded\":" << o.faded_repetitions
         << ",\"completed\":" << o.completed_repetitions
         << ",\"failed\":" << o.failed_repetitions
         << ",\"misses\":" << o.deadline_misses
         << ",\"delay_ms\":" << json_stats(o.delay_ms)
         << ",\"duration_s\":" << json_stats(o.duration_s)
         << ",\"power_w\":" << json_stats(o.power_w)
         << ",\"energy_j\":" << json_stats(o.energy_j)
         << ",\"receiver_psnr_db\":" << json_stats(o.receiver_psnr_db)
         << ",\"eavesdropper_psnr_db\":" << json_stats(o.eavesdropper_psnr_db)
         << "}";
  }
  out_ << "]}\n";
}

void CellCsvSink::begin(const CapacitySpec& /*spec*/) {
  out_ << "flows,background,admitted,deferred,degrade_steps,collision_prob,"
          "mac_success_prob,backoff_rate,per_flow_throughput_mbps,"
          "delay_ms_mean,delay_ms_ci95,duration_s_mean,power_w_mean,"
          "energy_j_mean,receiver_psnr_db_mean,eavesdropper_psnr_db_mean,"
          "deadline_miss_fraction\n";
}

void CellCsvSink::point(const CapacityPoint& p) {
  const CellResult& r = p.result;
  out_ << fmt("%d,%d,%d,%d,%d,%.17g,%.17g,%.17g,%.17g,", p.flows,
              r.background, r.admitted, r.deferred, r.total_degrade_steps,
              r.contention.collision_prob, r.contention.mac_success_prob,
              r.contention.backoff_rate,
              r.contention.per_flow_throughput_mbps)
       << fmt("%.17g,%.17g,%.17g,%.17g,%.17g,%.17g,%.17g,%.17g\n",
              r.delay_ms.mean(), r.delay_ms.ci95_halfwidth(),
              r.duration_s.mean(), r.power_w.mean(), r.energy_j.mean(),
              r.receiver_psnr_db.mean(), r.eavesdropper_psnr_db.mean(),
              r.deadline_miss_fraction());
}

CellSweepSummary CellRunner::run(const CapacitySpec& spec, CellSink& sink) {
  spec.validate();
  const auto t0 = std::chrono::steady_clock::now();
  sink.begin(spec);

  CellSweepSummary summary;
  summary.points = spec.flow_counts.size();
  summary.threads = pool_ != nullptr ? pool_->thread_count() : 1;

  // Points run strictly in order (the sink contract); the pool
  // parallelizes the flows inside each point, which is where the work is.
  for (std::size_t i = 0; i < spec.flow_counts.size(); ++i) {
    CellSpec cell = spec.base;
    cell.flows = spec.flow_counts[i];
    CapacityPoint point;
    point.index = i;
    point.flows = cell.flows;
    point.result = run_cell(cell, cache_, pool_);
    sink.point(point);
  }
  sink.end();

  summary.workloads = cache_.size();
  summary.wall_s =
      std::chrono::duration<double>(std::chrono::steady_clock::now() - t0)
          .count();
  return summary;
}

}  // namespace tv::cell
