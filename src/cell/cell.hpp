// Cell-scale multi-flow engine: N heterogeneous uploaders sharing one AP.
//
// The paper measures a single phone uploading through an open cafe WLAN;
// ROADMAP item 1 scales that to a cell.  A CellSpec describes N flows
// (clips, motion levels, GOPs, encryption policies, device profiles and
// deadlines assigned round-robin over the flow index), optional background
// cross-traffic stations, and a per-flow block-fading channel.  run_cell
//   * solves the heterogeneous Bianchi fixed point for the population
//     (cell/contention.hpp) to get each flow's collision probability,
//     backoff economics and saturation throughput share,
//   * lets the DeadlineScheduler (cell/scheduler.hpp) admit, degrade
//     (policy::degrade_step) or defer flows by deadline slack,
//   * and then runs every admitted flow's full transfer pipeline
//     (core::simulate_transfer) with the contention-derived MAC knobs and
//     its repetition's fading state, measuring E[W], duration, power,
//     energy and (optionally) receiver/eavesdropper PSNR.
//
// Determinism contract (same as core::SweepRunner): all seeds derive from
// the spec seed via util::derive_seed with the fixed stream tags below,
// flows run on independent slots folded in flow order, and a pooled run is
// bit-identical to the serial one at any thread count.
#pragma once

#include <cstdint>
#include <ostream>
#include <vector>

#include "cell/contention.hpp"
#include "cell/scheduler.hpp"
#include "core/sweep.hpp"
#include "util/rng.hpp"

namespace tv::util {
class ThreadPool;
}

namespace tv::cell {

// Per-purpose RNG substreams folded onto the spec seed (exposed so tests
// can reproduce any flow's exact random stream).
inline constexpr std::uint64_t kCipherStream = 0xC1;
inline constexpr std::uint64_t kFadeStream = 0xFA;
inline constexpr std::uint64_t kTransferStream = 0x7F;

/// The transfer seed of repetition `rep` of flow `flow`.
[[nodiscard]] constexpr std::uint64_t flow_transfer_seed(std::uint64_t seed,
                                                         std::uint64_t flow,
                                                         std::uint64_t rep) {
  return util::derive_seed(seed, kTransferStream, flow, rep);
}

/// One cell: N uploaders + background stations behind one AP.
struct CellSpec {
  int flows = 4;
  int background_stations = 0;

  // Heterogeneity axes, assigned to flow f as axis[f % axis.size()].
  std::vector<video::MotionLevel> motions{video::MotionLevel::kLow};
  std::vector<int> gop_sizes{15};
  /// Policy shapes; flow f combines policies[f % |policies|] with
  /// algorithms[f % |algorithms|] (the shape's own algorithm is ignored).
  std::vector<policy::EncryptionPolicy> policies{
      {policy::Mode::kIFrames, crypto::Algorithm::kAes256, 0.0}};
  std::vector<crypto::Algorithm> algorithms{crypto::Algorithm::kAes256};
  std::vector<core::DeviceProfile> devices{core::samsung_galaxy_s2()};
  /// Upload deadlines (s); <= 0 means the flow has none.
  std::vector<double> deadlines_s{0.0};

  int frames = 90;
  double fps = 30.0;
  int repetitions = 5;
  bool evaluate_quality = true;
  std::uint64_t seed = 1;  ///< root seed; also the workload seed.

  // MAC / PHY population parameters.
  int cw_min = 16;
  int backoff_stages = 6;
  int background_cw_min = 32;
  int background_stages = 6;
  wifi::PhyParameters phy{.data_rate_mbps = 4.0};
  /// Flat per-attempt channel error probability (all flows).
  double channel_error_prob = 0.0;

  // Block fading: each repetition of each flow is an independent coherence
  // block that is either Good or in a deep fade.  The per-flow fade
  // process is a Gilbert-Elliott chain over repetitions (stationary fade
  // probability `fade_prob`, mean `mean_fade_reps` consecutive faded
  // blocks), and a faded block multiplies an extra `fade_error_prob` into
  // the flow's per-attempt MAC success and its delivery probability.
  double fade_prob = 0.0;
  double mean_fade_reps = 1.0;
  double fade_error_prob = 0.25;

  SchedulerConfig scheduler;
  /// Base pipeline knobs (transport, producer model, loss floors...).
  /// Its device/algorithm/phy/mac_success_prob/backoff_rate fields are
  /// overwritten per flow from the axes and the contention solution.
  core::PipelineConfig pipeline;
  /// Optional per-packet stage tracing: events are stamped with the flow
  /// index (TraceEvent repetition field = flow * 1000 + repetition) and a
  /// traced run executes its flows serially so the stream is
  /// deterministic.
  core::TraceSink* trace = nullptr;

  /// Throws std::invalid_argument on empty axes or unusable knobs.
  void validate() const;
};

/// Flow f's resolved axis assignment.  Pure.
struct FlowConfig {
  video::MotionLevel motion = video::MotionLevel::kLow;
  int gop_size = 15;
  policy::EncryptionPolicy policy;  ///< algorithm axis already applied.
  core::DeviceProfile device;
  double deadline_s = 0.0;
};
[[nodiscard]] FlowConfig resolve_flow(const CellSpec& spec, std::size_t flow);

/// Measured + scheduled outcome of one flow.
struct FlowOutcome {
  std::size_t index = 0;
  video::MotionLevel motion = video::MotionLevel::kLow;
  int gop_size = 15;
  policy::EncryptionPolicy requested_policy;
  policy::EncryptionPolicy policy;  ///< after degradation.
  std::string device_key;
  double deadline_s = 0.0;

  bool admitted = true;
  int degrade_steps = 0;
  double predicted_completion_s = 0.0;
  double slack_s = 0.0;

  int completed_repetitions = 0;
  int failed_repetitions = 0;
  int faded_repetitions = 0;
  std::size_t deadline_misses = 0;  ///< reps whose duration beat no deadline.

  util::RunningStats delay_ms;
  util::RunningStats duration_s;
  util::RunningStats power_w;
  util::RunningStats energy_j;
  util::RunningStats receiver_psnr_db;
  util::RunningStats eavesdropper_psnr_db;
};

/// One cell's result: the contention solution, the schedule, per-flow
/// outcomes and aggregates over the admitted flows (folded in flow order).
struct CellResult {
  int flows = 0;
  int background = 0;
  int admitted = 0;
  int deferred = 0;
  int total_degrade_steps = 0;
  int schedule_iterations = 0;
  ContentionSolution contention;
  std::vector<FlowOutcome> flow_outcomes;

  util::RunningStats delay_ms;
  util::RunningStats duration_s;
  util::RunningStats power_w;
  util::RunningStats energy_j;
  util::RunningStats receiver_psnr_db;
  util::RunningStats eavesdropper_psnr_db;
  std::size_t deadline_misses = 0;
  std::size_t deadline_repetitions = 0;  ///< reps that had a deadline.
  [[nodiscard]] double deadline_miss_fraction() const {
    return deadline_repetitions > 0
               ? static_cast<double>(deadline_misses) /
                     static_cast<double>(deadline_repetitions)
               : 0.0;
  }
};

/// Run one cell.  Workloads come from (and are shared through) `cache`;
/// `pool` parallelizes the per-flow loop (bit-identical to serial).
[[nodiscard]] CellResult run_cell(const CellSpec& spec,
                                  core::WorkloadCache& cache,
                                  util::ThreadPool* pool = nullptr);

/// Capacity sweep: the same cell at increasing population sizes.
struct CapacitySpec {
  std::vector<int> flow_counts{1, 2, 4, 8};
  CellSpec base;  ///< its `flows` field is overwritten per point.

  void validate() const;
  [[nodiscard]] std::size_t point_count() const { return flow_counts.size(); }
};

struct CapacityPoint {
  std::size_t index = 0;
  int flows = 0;
  CellResult result;
};

/// Consumer of capacity-sweep points; calls arrive strictly in point order
/// (same contract as core::ResultSink).
class CellSink {
 public:
  virtual ~CellSink() = default;
  virtual void begin(const CapacitySpec& /*spec*/) {}
  virtual void point(const CapacityPoint& point) = 0;
  virtual void end() {}
};

/// Human-readable aligned capacity table, one row per population size.
class CellTableSink : public CellSink {
 public:
  explicit CellTableSink(std::ostream& out) : out_(out) {}
  void begin(const CapacitySpec& spec) override;
  void point(const CapacityPoint& point) override;

 private:
  std::ostream& out_;
  bool quality_ = true;
};

/// One JSON object per point per line at %.17g (byte-comparable across
/// runs and thread counts), with a per-flow breakdown array.
class CellJsonlSink : public CellSink {
 public:
  explicit CellJsonlSink(std::ostream& out) : out_(out) {}
  void point(const CapacityPoint& point) override;

 private:
  std::ostream& out_;
};

/// Spreadsheet-friendly CSV, one row per point.
class CellCsvSink : public CellSink {
 public:
  explicit CellCsvSink(std::ostream& out) : out_(out) {}
  void begin(const CapacitySpec& spec) override;
  void point(const CapacityPoint& point) override;

 private:
  std::ostream& out_;
};

/// In-memory sink for tests and programmatic consumers.
class CellCollectSink : public CellSink {
 public:
  void point(const CapacityPoint& point) override {
    points.push_back(point);
  }
  std::vector<CapacityPoint> points;
};

struct CellSweepSummary {
  std::size_t points = 0;
  std::size_t workloads = 0;  ///< distinct workloads in the cache.
  unsigned threads = 1;
  double wall_s = 0.0;
};

/// Executes CapacitySpecs.  Points run in order (each reuses the shared
/// workload cache); the pool parallelizes the flows inside each point.
class CellRunner {
 public:
  explicit CellRunner(util::ThreadPool* pool = nullptr) : pool_(pool) {}

  CellSweepSummary run(const CapacitySpec& spec, CellSink& sink);

  [[nodiscard]] core::WorkloadCache& workloads() { return cache_; }

 private:
  util::ThreadPool* pool_;
  core::WorkloadCache cache_;
};

}  // namespace tv::cell
