#include "cell/scheduler.hpp"

#include <limits>
#include <stdexcept>

#include "wifi/dcf_model.hpp"

namespace tv::cell {

namespace {

constexpr double kInfinity = std::numeric_limits<double>::infinity();

bool same_policy(const policy::EncryptionPolicy& a,
                 const policy::EncryptionPolicy& b) {
  return a.mode == b.mode && a.fraction == b.fraction;
}

}  // namespace

double DeadlineScheduler::predict_completion(
    const FlowDemand& demand, const policy::EncryptionPolicy& policy,
    const ContentionSolution& solution) {
  const double encrypted_share =
      policy.i_packet_fraction() * demand.i_packet_share +
      policy.p_packet_fraction() * (1.0 - demand.i_packet_share);
  // E[T] = T_e + T_b + T_t (eq. 3): the encryption share of the policy,
  // the geometric retry count each paying one mean backoff wait (eqs. 6-7),
  // and the physical transmission time.
  const double mean_backoff =
      wifi::mean_collisions(solution.mac_success_prob) /
      solution.backoff_rate;
  const double per_packet = encrypted_share * demand.encryption_mean_s +
                            mean_backoff + demand.transmission_mean_s;
  const double service_total =
      static_cast<double>(demand.packet_count) * per_packet;
  return service_total > demand.clip_duration_s ? service_total
                                                : demand.clip_duration_s;
}

ScheduleResult DeadlineScheduler::schedule(
    const std::vector<FlowDemand>& demands,
    ContentionConfig contention) const {
  if (demands.empty()) {
    throw std::invalid_argument{"DeadlineScheduler: no demands"};
  }

  ScheduleResult result;
  result.flows.resize(demands.size());
  for (std::size_t f = 0; f < demands.size(); ++f) {
    result.flows[f].policy = demands[f].policy;
  }

  // <= 0: size the round budget to the population — every flow can walk
  // its full degrade ladder and then be deferred, plus the terminal
  // feasible/no-lever round.  Every loop iteration below either takes one
  // of those actions or breaks, so this bound is never the binding exit
  // on a converging schedule.
  const long max_iterations =
      config_.max_iterations > 0
          ? config_.max_iterations
          : static_cast<long>(config_.max_degrade_steps + 1) *
                    static_cast<long>(demands.size()) +
                1;

  // One admitted count and one contention solve per *population change*,
  // not per round: solve_contention and predict_completion are pure, so
  // reusing their outputs while the admitted set and a flow's policy are
  // unchanged reproduces the recompute-everything loop bit for bit — a
  // degrade-heavy 10k-flow schedule pays ~10k solves instead of ~90k.
  int admitted = static_cast<int>(demands.size());
  int solved_stations = -1;
  std::size_t repredict_one = demands.size();  // policy changed last round.

  for (long iter = 0; iter < max_iterations; ++iter) {
    const bool resolve = admitted != solved_stations;
    if (resolve) {
      contention.video.stations = admitted;
      result.contention = solve_contention(contention);
      solved_stations = admitted;
    }
    result.iterations = static_cast<int>(iter) + 1;

    // Slack under the current population; find the tightest flow.  Only
    // stale predictions are refreshed: all of them after a population
    // change, just the degraded flow's otherwise.
    std::size_t worst = demands.size();
    double worst_slack = 0.0;
    for (std::size_t f = 0; f < demands.size(); ++f) {
      FlowDecision& d = result.flows[f];
      if (!d.admitted) continue;
      if (resolve || f == repredict_one) {
        d.predicted_completion_s =
            predict_completion(demands[f], d.policy, result.contention);
        d.slack_s = demands[f].deadline_s > 0.0
                        ? demands[f].deadline_s - d.predicted_completion_s
                        : kInfinity;
      }
      if (d.slack_s < 0.0 &&
          (worst == demands.size() || d.slack_s < worst_slack)) {
        worst = f;
        worst_slack = d.slack_s;
      }
    }
    repredict_one = demands.size();
    if (worst == demands.size()) break;  // everyone admitted is feasible.

    FlowDecision& d = result.flows[worst];
    if (config_.allow_degrade && d.degrade_steps < config_.max_degrade_steps) {
      const policy::EncryptionPolicy next = policy::degrade_step(d.policy);
      if (!same_policy(next, d.policy)) {
        d.policy = next;
        ++d.degrade_steps;
        ++result.total_degrade_steps;
        repredict_one = worst;
        continue;
      }
    }
    // Past the ladder floor: defer the flow — unless it is the last one
    // standing, which just misses its deadline (shedding it buys nobody
    // anything).
    if (config_.allow_shedding && admitted > 1) {
      d.admitted = false;
      --admitted;
      continue;
    }
    break;  // infeasible but no remaining lever.
  }

  // Report deferred flows' hypothetical numbers under the final cell, so
  // sinks can show what they would have faced.
  for (std::size_t f = 0; f < demands.size(); ++f) {
    FlowDecision& d = result.flows[f];
    if (d.admitted) continue;
    d.predicted_completion_s =
        predict_completion(demands[f], d.policy, result.contention);
    d.slack_s = demands[f].deadline_s > 0.0
                    ? demands[f].deadline_s - d.predicted_completion_s
                    : kInfinity;
  }
  result.admitted = admitted;
  result.deferred = static_cast<int>(demands.size()) - result.admitted;
  return result;
}

}  // namespace tv::cell
