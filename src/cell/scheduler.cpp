#include "cell/scheduler.hpp"

#include <limits>
#include <stdexcept>

#include "wifi/dcf_model.hpp"

namespace tv::cell {

namespace {

constexpr double kInfinity = std::numeric_limits<double>::infinity();

bool same_policy(const policy::EncryptionPolicy& a,
                 const policy::EncryptionPolicy& b) {
  return a.mode == b.mode && a.fraction == b.fraction;
}

}  // namespace

double DeadlineScheduler::predict_completion(
    const FlowDemand& demand, const policy::EncryptionPolicy& policy,
    const ContentionSolution& solution) {
  const double encrypted_share =
      policy.i_packet_fraction() * demand.i_packet_share +
      policy.p_packet_fraction() * (1.0 - demand.i_packet_share);
  // E[T] = T_e + T_b + T_t (eq. 3): the encryption share of the policy,
  // the geometric retry count each paying one mean backoff wait (eqs. 6-7),
  // and the physical transmission time.
  const double mean_backoff =
      wifi::mean_collisions(solution.mac_success_prob) /
      solution.backoff_rate;
  const double per_packet = encrypted_share * demand.encryption_mean_s +
                            mean_backoff + demand.transmission_mean_s;
  const double service_total =
      static_cast<double>(demand.packet_count) * per_packet;
  return service_total > demand.clip_duration_s ? service_total
                                                : demand.clip_duration_s;
}

ScheduleResult DeadlineScheduler::schedule(
    const std::vector<FlowDemand>& demands,
    ContentionConfig contention) const {
  if (demands.empty()) {
    throw std::invalid_argument{"DeadlineScheduler: no demands"};
  }

  ScheduleResult result;
  result.flows.resize(demands.size());
  for (std::size_t f = 0; f < demands.size(); ++f) {
    result.flows[f].policy = demands[f].policy;
  }

  auto admitted_count = [&] {
    int n = 0;
    for (const FlowDecision& d : result.flows) n += d.admitted ? 1 : 0;
    return n;
  };

  for (int iter = 0; iter < config_.max_iterations; ++iter) {
    contention.video.stations = admitted_count();
    result.contention = solve_contention(contention);
    result.iterations = iter + 1;

    // Slack under the current population; find the tightest flow.
    std::size_t worst = demands.size();
    double worst_slack = 0.0;
    for (std::size_t f = 0; f < demands.size(); ++f) {
      FlowDecision& d = result.flows[f];
      if (!d.admitted) continue;
      d.predicted_completion_s =
          predict_completion(demands[f], d.policy, result.contention);
      d.slack_s = demands[f].deadline_s > 0.0
                      ? demands[f].deadline_s - d.predicted_completion_s
                      : kInfinity;
      if (d.slack_s < 0.0 &&
          (worst == demands.size() || d.slack_s < worst_slack)) {
        worst = f;
        worst_slack = d.slack_s;
      }
    }
    if (worst == demands.size()) break;  // everyone admitted is feasible.

    FlowDecision& d = result.flows[worst];
    if (config_.allow_degrade && d.degrade_steps < config_.max_degrade_steps) {
      const policy::EncryptionPolicy next = policy::degrade_step(d.policy);
      if (!same_policy(next, d.policy)) {
        d.policy = next;
        ++d.degrade_steps;
        ++result.total_degrade_steps;
        continue;
      }
    }
    // Past the ladder floor: defer the flow — unless it is the last one
    // standing, which just misses its deadline (shedding it buys nobody
    // anything).
    if (config_.allow_shedding && admitted_count() > 1) {
      d.admitted = false;
      continue;
    }
    break;  // infeasible but no remaining lever.
  }

  // Report deferred flows' hypothetical numbers under the final cell, so
  // sinks can show what they would have faced.
  for (std::size_t f = 0; f < demands.size(); ++f) {
    FlowDecision& d = result.flows[f];
    if (d.admitted) continue;
    d.predicted_completion_s =
        predict_completion(demands[f], d.policy, result.contention);
    d.slack_s = demands[f].deadline_s > 0.0
                    ? demands[f].deadline_s - d.predicted_completion_s
                    : kInfinity;
  }
  result.admitted = admitted_count();
  result.deferred = static_cast<int>(demands.size()) - result.admitted;
  return result;
}

}  // namespace tv::cell
