#include "cell/contention.hpp"

#include <algorithm>
#include <stdexcept>
#include <vector>

namespace tv::cell {

void ContentionConfig::validate() const {
  if (video.stations < 1 || video.cw_min < 1 || video.backoff_stages < 0) {
    throw std::invalid_argument{"ContentionConfig: bad video class"};
  }
  if (background.stations < 0 || background.cw_min < 1 ||
      background.backoff_stages < 0) {
    throw std::invalid_argument{"ContentionConfig: bad background class"};
  }
  if (mean_wire_bytes <= 0.0) {
    throw std::invalid_argument{"ContentionConfig: mean_wire_bytes <= 0"};
  }
  if (channel_error_prob < 0.0 || channel_error_prob >= 1.0) {
    throw std::invalid_argument{
        "ContentionConfig: channel_error_prob outside [0, 1)"};
  }
  if (phy.data_rate_mbps <= 0.0 || phy.control_rate_mbps <= 0.0 ||
      phy.slot_time_s <= 0.0) {
    throw std::invalid_argument{"ContentionConfig: bad PHY"};
  }
}

ContentionSolution solve_contention(const ContentionConfig& config) {
  config.validate();

  std::vector<wifi::DcfClass> classes{config.video};
  if (config.background.stations > 0) classes.push_back(config.background);

  ContentionSolution sol;
  sol.dcf = wifi::solve_dcf_classes(classes);
  sol.contenders = config.video.stations + config.background.stations;
  sol.collision_prob = sol.dcf.collision_probability[0];
  sol.mac_success_prob =
      (1.0 - sol.collision_prob) * (1.0 - config.channel_error_prob);

  // Virtual-slot durations (Bianchi's throughput analysis): an idle slot
  // lasts sigma, a success the full data + SIFS + ACK exchange plus DIFS,
  // and a collision the data burst plus DIFS — the colliders never get an
  // ACK, so the SIFS + ACK tail is dropped (EIFS deferral is folded into
  // the DIFS term; the approximation is well inside the validation bands).
  const std::size_t wire =
      static_cast<std::size_t>(std::max(1.0, config.mean_wire_bytes));
  const double t_success =
      wifi::transmission_time_s(config.phy, wire) + config.phy.difs_s;
  const double ack_time =
      config.phy.plcp_preamble_s +
      8.0 * static_cast<double>(config.phy.ack_bytes) /
          (config.phy.control_rate_mbps * 1e6);
  const double t_collision = t_success - config.phy.sifs_s - ack_time;
  const double p_idle = sol.dcf.idle_prob;
  const double p_succ = sol.dcf.success_prob;
  const double p_coll = sol.dcf.any_transmission_prob - p_succ;
  sol.mean_slot_s = p_idle * config.phy.slot_time_s + p_succ * t_success +
                    p_coll * t_collision;

  // lambda_b: the pipeline charges one Exp(1/lambda_b) wait per lost MAC
  // attempt (eq. 7).  We set its mean to the first-retry cost: the wasted
  // collision burst plus the mean stage-1 backoff count, each counter tick
  // worth one mean virtual slot.  Collisions are geometric in p, so in the
  // admissible operating region the first retry dominates the ladder.
  const int first_stage = std::min(1, config.video.backoff_stages);
  const double retry_window =
      static_cast<double>(config.video.cw_min << first_stage);
  const double mean_retry_wait =
      t_collision + 0.5 * (retry_window - 1.0) * sol.mean_slot_s;
  sol.backoff_rate = 1.0 / mean_retry_wait;

  // One uploader's saturation share: its success probability per virtual
  // slot times the payload it lands, over the mean slot duration.
  sol.per_flow_throughput_mbps = sol.dcf.per_station_success_prob[0] *
                                 config.mean_wire_bytes * 8.0 /
                                 sol.mean_slot_s / 1e6;
  return sol;
}

}  // namespace tv::cell
