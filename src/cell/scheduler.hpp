// Deadline-slack admission and graceful degradation for a shared cell.
//
// Each flow wants its clip uploaded by a deadline.  Under contention the
// per-packet MAC cost grows with the admitted population, so the scheduler
// iterates: solve the cell's Bianchi fixed point for the current admitted
// set, predict every flow's completion time from the same first-moment
// service decomposition the paper uses (E[T] = T_e + T_b + T_t, eq. 3),
// rank flows by deadline slack, and while the tightest flow is infeasible
// first walk it down the policy::degrade_step ladder (shedding encryption
// latency) and then — past the ladder floor — defer it, which shrinks the
// contending population for everyone left.  Deterministic: ties break on
// the lowest flow index and no randomness is consumed.
#pragma once

#include <cstddef>
#include <vector>

#include "cell/contention.hpp"
#include "policy/policy.hpp"

namespace tv::cell {

struct SchedulerConfig {
  bool allow_degrade = true;  ///< walk policy::degrade_step under overload.
  bool allow_shedding = true; ///< defer flows past the degradation floor.
  /// Ladder budget per flow before deferring it.
  int max_degrade_steps = 8;
  /// Safety bound on solve/degrade/shed rounds.  <= 0 (the default) sizes
  /// the bound to the population — (max_degrade_steps + 1) * flows + 1,
  /// enough for every flow to walk its full ladder and be deferred — so
  /// a 10k-flow overload sheds to feasibility instead of stopping with
  /// thousands of infeasible flows still admitted (whose near-zero MAC
  /// success probability would make the per-flow pipelines intractable).
  int max_iterations = 0;
};

/// What the scheduler needs to know about one flow.  The encryption and
/// transmission means are per-packet first moments; `i_packet_share` is
/// the fraction of the flow's packets that belong to I-frames (so the
/// encrypted share under any policy is q_I * share_I + q_P * share_P).
struct FlowDemand {
  std::size_t index = 0;
  policy::EncryptionPolicy policy;   ///< requested (pre-degradation).
  double deadline_s = 0.0;           ///< <= 0 means no deadline.
  double clip_duration_s = 0.0;      ///< producer pacing floor.
  std::size_t packet_count = 0;
  double i_packet_share = 0.0;
  double encryption_mean_s = 0.0;    ///< T_e of one encrypted packet.
  double transmission_mean_s = 0.0;  ///< T_t of one packet.
};

/// The scheduler's verdict for one flow.
struct FlowDecision {
  bool admitted = true;
  policy::EncryptionPolicy policy;  ///< possibly degraded.
  int degrade_steps = 0;
  double predicted_completion_s = 0.0;
  double slack_s = 0.0;  ///< deadline - predicted; +inf with no deadline.
};

struct ScheduleResult {
  std::vector<FlowDecision> flows;  ///< indexed like the demand list.
  int admitted = 0;
  int deferred = 0;
  int total_degrade_steps = 0;
  int iterations = 0;  ///< fixed-point solve rounds used.
  /// Contention solution for the final admitted set (what the cell engine
  /// injects into the admitted flows' pipelines).
  ContentionSolution contention;
};

class DeadlineScheduler {
 public:
  explicit DeadlineScheduler(SchedulerConfig config = {}) : config_(config) {}

  /// Admit/degrade/defer `demands` against a cell whose background half is
  /// described by `contention` (its video.stations field is overwritten
  /// with the admitted count each round).  Pure and deterministic.
  /// Throws std::invalid_argument on an empty demand list.
  [[nodiscard]] ScheduleResult schedule(const std::vector<FlowDemand>& demands,
                                        ContentionConfig contention) const;

  /// Predicted completion of one flow under a solved cell: the producer
  /// pacing floor or the summed per-packet service, whichever binds.
  [[nodiscard]] static double predict_completion(
      const FlowDemand& demand, const policy::EncryptionPolicy& policy,
      const ContentionSolution& solution);

 private:
  SchedulerConfig config_;
};

}  // namespace tv::cell
