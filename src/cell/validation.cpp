#include "cell/validation.hpp"

#include <chrono>
#include <cmath>
#include <cstdarg>
#include <cstdio>
#include <memory>
#include <mutex>
#include <stdexcept>

#include "util/rng.hpp"
#include "util/thread_pool.hpp"

namespace tv::cell {

namespace {

std::string fmt(const char* format, ...) {
  char buf[256];
  va_list args;
  va_start(args, format);
  std::vsnprintf(buf, sizeof buf, format, args);
  va_end(args);
  return buf;
}

/// Binomial standard-error estimate of a proportion over `trials`.
double proportion_se(double p, double trials) {
  if (trials <= 0.0) return 0.0;
  const double clamped = p < 0.0 ? 0.0 : (p > 1.0 ? 1.0 : p);
  return std::sqrt(clamped * (1.0 - clamped) / trials);
}

void add_check(CellValidationCellResult& r, const CellValidationSpec& spec,
               std::string name, double simulated, double analytic,
               double se) {
  CellValidationCheck check;
  check.name = std::move(name);
  check.simulated = simulated;
  check.analytic = analytic;
  check.tolerance = spec.z * se + spec.relative_slack * std::abs(analytic) +
                    spec.absolute_floor;
  check.ok = std::abs(simulated - analytic) <= check.tolerance;
  r.checks.push_back(std::move(check));
}

std::vector<wifi::DcfClass> cell_classes(const CellValidationSpec& spec,
                                         const CellValidationCell& cell) {
  std::vector<wifi::DcfClass> classes{
      {cell.contenders, cell.cw_min, cell.stages}};
  if (spec.background_stations > 0) {
    classes.push_back({spec.background_stations, spec.background_cw_min,
                       spec.background_stages});
  }
  return classes;
}

}  // namespace

void CellValidationSpec::validate() const {
  if (contenders.empty() || cw_mins.empty() || stage_counts.empty()) {
    throw std::invalid_argument{"CellValidationSpec: empty axis"};
  }
  for (int n : contenders) {
    if (n < 1) throw std::invalid_argument{"CellValidationSpec: n < 1"};
  }
  for (int w : cw_mins) {
    if (w < 1) throw std::invalid_argument{"CellValidationSpec: cw_min < 1"};
  }
  for (int m : stage_counts) {
    if (m < 0) throw std::invalid_argument{"CellValidationSpec: stages < 0"};
  }
  if (background_stations < 0 || background_cw_min < 1 ||
      background_stages < 0) {
    throw std::invalid_argument{"CellValidationSpec: bad background class"};
  }
  if (slots == 0) throw std::invalid_argument{"CellValidationSpec: no slots"};
  if (z <= 0.0 || relative_slack < 0.0 || absolute_floor < 0.0) {
    throw std::invalid_argument{"CellValidationSpec: bad acceptance band"};
  }
}

std::size_t CellValidationSpec::cell_count() const {
  return contenders.size() * cw_mins.size() * stage_counts.size();
}

std::vector<CellValidationCell> enumerate_validation_cells(
    const CellValidationSpec& spec) {
  std::vector<CellValidationCell> cells;
  cells.reserve(spec.cell_count());
  std::size_t index = 0;
  for (int n : spec.contenders) {
    for (int w : spec.cw_mins) {
      for (int m : spec.stage_counts) {
        CellValidationCell cell;
        cell.index = index;
        cell.contenders = n;
        cell.cw_min = w;
        cell.stages = m;
        cell.seed = util::derive_seed(spec.seed, index);
        cells.push_back(cell);
        ++index;
      }
    }
  }
  return cells;
}

bool CellValidationCellResult::passed() const {
  for (const CellValidationCheck& c : checks) {
    if (!c.ok) return false;
  }
  return true;
}

CellValidationCellResult run_cell_validation_cell(
    const CellValidationSpec& spec, const CellValidationCell& cell) {
  CellValidationCellResult r;
  r.cell = cell;
  const std::vector<wifi::DcfClass> classes = cell_classes(spec, cell);
  r.model = wifi::solve_dcf_classes(classes);
  r.sim = wifi::simulate_dcf_classes(classes, spec.slots, spec.warmup,
                                     cell.seed);

  const double slots = static_cast<double>(spec.slots);
  const char* labels[] = {"video", "bg"};
  for (std::size_t c = 0; c < classes.size(); ++c) {
    const double stations = classes[c].stations;
    // tau_c: one Bernoulli trial per station per slot.
    add_check(r, spec, fmt("tau[%s]", labels[c]),
              r.sim.attempt_probability[c], r.model.attempt_probability[c],
              proportion_se(r.model.attempt_probability[c],
                            stations * slots));
    // p_c: conditioned on the class's measured transmissions.
    add_check(r, spec, fmt("p[%s]", labels[c]),
              r.sim.collision_probability[c],
              r.model.collision_probability[c],
              proportion_se(r.model.collision_probability[c],
                            static_cast<double>(r.sim.transmissions[c])));
  }
  // Cell-wide success fraction: one trial per slot.
  add_check(r, spec, "success",
            static_cast<double>(r.sim.success_slots) / slots,
            r.model.success_prob,
            proportion_se(r.model.success_prob, slots));
  return r;
}

void CellValidationTableSink::begin(const CellValidationSpec& spec) {
  out_ << "cell   n   W    m   ";
  out_ << "tau_sim    tau_fp     p_sim      p_fp       succ_sim   succ_fp    "
          "checks\n";
  (void)spec;
}

void CellValidationTableSink::cell(const CellValidationCellResult& r) {
  std::size_t failed = 0;
  for (const CellValidationCheck& c : r.checks) {
    if (!c.ok) ++failed;
  }
  out_ << fmt("%4zu %3d %4d %4d   %.7f  %.7f  %.7f  %.7f  %.7f  %.7f  ",
              r.cell.index, r.cell.contenders, r.cell.cw_min, r.cell.stages,
              r.sim.attempt_probability[0], r.model.attempt_probability[0],
              r.sim.collision_probability[0],
              r.model.collision_probability[0],
              static_cast<double>(r.sim.success_slots) /
                  static_cast<double>(r.sim.slots),
              r.model.success_prob);
  if (failed == 0) {
    out_ << fmt("%zu/%zu ok\n", r.checks.size(), r.checks.size());
  } else {
    out_ << fmt("%zu FAILED:", failed);
    for (const CellValidationCheck& c : r.checks) {
      if (c.ok) continue;
      out_ << fmt(" %s(|%.5f-%.5f|>%.5f)", c.name.c_str(), c.simulated,
                  c.analytic, c.tolerance);
    }
    out_ << "\n";
  }
}

void CellValidationJsonlSink::cell(const CellValidationCellResult& r) {
  out_ << "{\"cell\":" << r.cell.index << ",\"n\":" << r.cell.contenders
       << ",\"cw_min\":" << r.cell.cw_min << ",\"stages\":" << r.cell.stages
       << ",\"seed\":" << r.cell.seed
       << ",\"passed\":" << (r.passed() ? "true" : "false")
       << fmt(",\"iterations\":%d", r.model.iterations) << ",\"checks\":[";
  for (std::size_t i = 0; i < r.checks.size(); ++i) {
    const CellValidationCheck& c = r.checks[i];
    if (i > 0) out_ << ",";
    out_ << fmt("{\"name\":\"%s\",\"simulated\":%.17g,\"analytic\":%.17g,"
                "\"tolerance\":%.17g,\"ok\":%s}",
                c.name.c_str(), c.simulated, c.analytic, c.tolerance,
                c.ok ? "true" : "false");
  }
  out_ << "]}\n";
}

CellValidationSummary CellValidationRunner::run(const CellValidationSpec& spec,
                                                CellValidationSink& sink) {
  spec.validate();
  const std::vector<CellValidationCell> cells =
      enumerate_validation_cells(spec);

  const auto t0 = std::chrono::steady_clock::now();
  sink.begin(spec);

  CellValidationSummary summary;
  summary.cells = cells.size();
  summary.threads = pool_ != nullptr ? pool_->thread_count() : 1;

  // Cells complete in any order; slots + next_flush turn that back into
  // strictly in-order sink calls (the determinism contract).
  std::vector<std::unique_ptr<CellValidationCellResult>> slots(cells.size());
  std::size_t next_flush = 0;
  std::mutex flush_mu;
  auto store_and_flush = [&](std::size_t index,
                             std::unique_ptr<CellValidationCellResult> r) {
    std::lock_guard lock{flush_mu};
    slots[index] = std::move(r);
    while (next_flush < slots.size() && slots[next_flush]) {
      const CellValidationCellResult& result = *slots[next_flush];
      if (result.passed()) ++summary.passed_cells;
      for (const CellValidationCheck& c : result.checks) {
        if (!c.ok) ++summary.failed_checks;
      }
      sink.cell(result);
      slots[next_flush].reset();
      ++next_flush;
    }
  };

  auto run_one = [&](std::size_t index) {
    store_and_flush(index, std::make_unique<CellValidationCellResult>(
                               run_cell_validation_cell(spec, cells[index])));
  };

  if (pool_ != nullptr && cells.size() > 1) {
    pool_->parallel_for(cells.size(), run_one);
  } else {
    for (std::size_t i = 0; i < cells.size(); ++i) run_one(i);
  }
  sink.end();

  summary.wall_s =
      std::chrono::duration<double>(std::chrono::steady_clock::now() - t0)
          .count();
  return summary;
}

}  // namespace tv::cell
