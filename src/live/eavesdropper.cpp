#include "live/eavesdropper.hpp"

#include <array>
#include <utility>

#include "net/rtp.hpp"

namespace tv::live {

void EavesdropperTap::set_capture_mask(const StreamMap* map,
                                       std::vector<bool> mask) {
  mask_map_ = map;
  capture_mask_ = std::move(mask);
  channel_.reset();
}

void EavesdropperTap::set_channel(const wifi::GilbertElliottParams& params,
                                  std::uint64_t seed) {
  channel_.emplace(params, seed);
  mask_map_ = nullptr;
  capture_mask_.clear();
}

void EavesdropperTap::hear(double time_s,
                           std::span<const std::uint8_t> datagram) {
  ++report_.heard;
  bool captured = true;
  if (mask_map_ != nullptr) {
    // Replay mode: the mask is indexed by stream position.  Loopback
    // streams are contiguous from the base sequence, so the wire
    // sequence resolves directly (streams here are far shorter than one
    // 16-bit cycle).
    captured = false;
    if (const auto header = net::RtpHeader::try_parse(datagram)) {
      const auto index = mask_map_->index_of(
          static_cast<std::int64_t>(header->sequence_number));
      if (index && *index < capture_mask_.size()) {
        captured = capture_mask_[*index];
      }
    }
  } else if (channel_) {
    captured = !channel_->lose_packet();
  }
  if (!captured) return;
  ++report_.captured;
  captures_.push_back(net::RawCapture{
      time_s, std::vector<std::uint8_t>(datagram.begin(), datagram.end())});
  if (trace_ != nullptr) {
    trace_->event({core::Stage::kChannel, "eavesdrop", -1, 0, time_s,
                   static_cast<double>(datagram.size())});
  }
}

std::size_t EavesdropperTap::write_pcap(const std::string& path) const {
  return net::write_pcap_datagrams_file(path, captures_);
}

std::vector<video::ReceivedFrameData> EavesdropperTap::reassemble(
    const StreamMap& map) const {
  // Run the capture through a fresh receive path: the snooper has the
  // same reorder/dedup machinery as the legitimate receiver, just no key.
  net::Receiver receiver;
  for (const net::RawCapture& cap : captures_) receiver.push(cap.datagram);
  auto packets = receiver.drain_ready();
  auto tail = receiver.flush();
  packets.insert(packets.end(), std::make_move_iterator(tail.begin()),
                 std::make_move_iterator(tail.end()));
  const std::array<std::uint8_t, 16> no_iv{};
  return reassemble_wire(map, packets, nullptr, no_iv);
}

}  // namespace tv::live
