#include "live/supervisor.hpp"

#include <algorithm>
#include <cmath>
#include <stdexcept>

#include "net/rtp.hpp"

namespace tv::live {

namespace {

constexpr std::uint8_t kMagic[4] = {'T', 'V', 'C', '1'};

void put_u32(std::vector<std::uint8_t>& out, std::uint32_t value) {
  out.push_back(static_cast<std::uint8_t>(value >> 24));
  out.push_back(static_cast<std::uint8_t>(value >> 16));
  out.push_back(static_cast<std::uint8_t>(value >> 8));
  out.push_back(static_cast<std::uint8_t>(value));
}

std::uint32_t get_u32(std::span<const std::uint8_t> bytes) {
  return (static_cast<std::uint32_t>(bytes[0]) << 24) |
         (static_cast<std::uint32_t>(bytes[1]) << 16) |
         (static_cast<std::uint32_t>(bytes[2]) << 8) |
         static_cast<std::uint32_t>(bytes[3]);
}

const char* state_trace_kind(SessionState state) {
  switch (state) {
    case SessionState::kConnecting:
      return "sess_connecting";
    case SessionState::kStreaming:
      return "sess_streaming";
    case SessionState::kDraining:
      return "sess_draining";
    case SessionState::kClosed:
      return "sess_closed";
    case SessionState::kFailed:
      return "sess_failed";
  }
  return "sess_?";
}

}  // namespace

std::vector<std::uint8_t> ControlMsg::serialize() const {
  std::vector<std::uint8_t> out;
  out.reserve(kSize);
  out.insert(out.end(), std::begin(kMagic), std::end(kMagic));
  out.push_back(static_cast<std::uint8_t>(type));
  put_u32(out, ssrc);
  put_u32(out, aux);
  return out;
}

std::optional<ControlMsg> ControlMsg::try_parse(
    std::span<const std::uint8_t> datagram) {
  if (datagram.size() != kSize) return std::nullopt;
  if (!std::equal(std::begin(kMagic), std::end(kMagic), datagram.begin())) {
    return std::nullopt;
  }
  const std::uint8_t raw_type = datagram[4];
  if (raw_type < static_cast<std::uint8_t>(Type::kHello) ||
      raw_type > static_cast<std::uint8_t>(Type::kByeAck)) {
    return std::nullopt;
  }
  ControlMsg msg;
  msg.type = static_cast<Type>(raw_type);
  msg.ssrc = get_u32(datagram.subspan(5, 4));
  msg.aux = get_u32(datagram.subspan(9, 4));
  return msg;
}

const char* to_string(SessionState state) {
  switch (state) {
    case SessionState::kConnecting:
      return "connecting";
    case SessionState::kStreaming:
      return "streaming";
    case SessionState::kDraining:
      return "draining";
    case SessionState::kClosed:
      return "closed";
    case SessionState::kFailed:
      return "failed";
  }
  return "?";
}

const char* to_string(SessionOutcome outcome) {
  switch (outcome) {
    case SessionOutcome::kPending:
      return "pending";
    case SessionOutcome::kCompleted:
      return "completed";
    case SessionOutcome::kRecovered:
      return "retried-recovered";
    case SessionOutcome::kShed:
      return "shed";
    case SessionOutcome::kWatchdogKilled:
      return "watchdog-killed";
  }
  return "?";
}

const char* outcome_trace_kind(SessionOutcome outcome) {
  switch (outcome) {
    case SessionOutcome::kPending:
      return "outcome_pending";
    case SessionOutcome::kCompleted:
      return "outcome_completed";
    case SessionOutcome::kRecovered:
      return "outcome_recovered";
    case SessionOutcome::kShed:
      return "outcome_shed";
    case SessionOutcome::kWatchdogKilled:
      return "outcome_watchdog_killed";
  }
  return "outcome_?";
}

void SupervisorConfig::validate() const {
  if (max_handshake_retries < 0 || max_bye_retries < 0 ||
      max_send_retries < 0) {
    throw std::invalid_argument{"SupervisorConfig: negative retry budget"};
  }
  if (backoff_base_s <= 0.0 || backoff_multiplier < 1.0 ||
      backoff_max_s < backoff_base_s || send_retry_base_s <= 0.0) {
    throw std::invalid_argument{"SupervisorConfig: bad backoff parameters"};
  }
  if (backoff_jitter < 0.0 || backoff_jitter >= 1.0) {
    throw std::invalid_argument{"SupervisorConfig: jitter outside [0,1)"};
  }
  if (stall_timeout_s <= 0.0) {
    throw std::invalid_argument{"SupervisorConfig: stall timeout <= 0"};
  }
  if (queue_cap == 0 || degrade_depth == 0) {
    throw std::invalid_argument{"SupervisorConfig: zero queue depth"};
  }
}

double backoff_wait_s(const SupervisorConfig& config, int attempt,
                      util::Rng& rng) {
  double wait = config.backoff_base_s *
                std::pow(config.backoff_multiplier, std::max(attempt, 0));
  wait = std::min(wait, config.backoff_max_s);
  if (config.backoff_jitter > 0.0) {
    wait *= 1.0 + config.backoff_jitter * (2.0 * rng.uniform() - 1.0);
  }
  return wait;
}

ClientSession::ClientSession(EventLoop& loop, ClientConfig config,
                             const std::vector<net::VideoPacket>& wire_packets,
                             const std::vector<net::VideoPacket>& clear_packets,
                             PacedSchedule schedule,
                             std::function<void()> on_done)
    : loop_(loop),
      config_(std::move(config)),
      wire_packets_(wire_packets),
      clear_packets_(clear_packets),
      schedule_(std::move(schedule)),
      on_done_(std::move(on_done)),
      socket_{},
      chaos_socket_{loop_, socket_, config_.chaos,
                    util::derive_seed(config_.seed, 0x50c4e7, 0, 0)},
      rng_{util::derive_seed(config_.seed, 0x5093, 0, 0)},
      current_policy_(config_.policy) {
  config_.supervisor.validate();
  if (schedule_.arrival_s.size() != wire_packets_.size() ||
      schedule_.send_s.size() != wire_packets_.size() ||
      clear_packets_.size() != wire_packets_.size()) {
    throw std::invalid_argument{"ClientSession: schedule/packet mismatch"};
  }
  socket_.bind(Endpoint{});
}

void ClientSession::start() {
  loop_.watch_readable(socket_.fd(), [this] { on_readable(); });
  set_state(SessionState::kConnecting);
  hello_timer_ = loop_.schedule_at(config_.start_s, [this] { send_hello(); });
}

void ClientSession::send_hello() {
  if (dead_) return;
  if (hello_attempts_ > config_.supervisor.max_handshake_retries) {
    trace_event("handshake_exhausted", static_cast<double>(hello_attempts_));
    finish(SessionOutcome::kWatchdogKilled);
    return;
  }
  ControlMsg hello;
  hello.type = ControlMsg::Type::kHello;
  hello.ssrc = config_.ssrc;
  hello.aux = static_cast<std::uint32_t>(wire_packets_.size());
  (void)chaos_socket_.send_to(config_.server, hello.serialize());
  if (hello_attempts_ > 0) {
    stats_.handshake_retries = static_cast<std::size_t>(hello_attempts_);
    trace_event("handshake_retry", static_cast<double>(hello_attempts_));
  }
  const double wait =
      backoff_wait_s(config_.supervisor, hello_attempts_, rng_);
  ++hello_attempts_;
  hello_timer_ = loop_.schedule_after(wait, [this] { send_hello(); });
}

void ClientSession::on_readable() {
  while (auto datagram = chaos_socket_.receive()) {
    if (dead_) continue;  // keep draining so the fd goes quiet.
    const auto msg = ControlMsg::try_parse(datagram->payload);
    if (msg) handle_control(*msg);
  }
}

void ClientSession::handle_control(const ControlMsg& msg) {
  if (msg.ssrc != config_.ssrc) return;
  switch (msg.type) {
    case ControlMsg::Type::kAccept:
      if (stats_.state != SessionState::kConnecting) return;
      loop_.cancel(hello_timer_);
      stats_.accepted_s = loop_.now_s();
      t0_ = loop_.now_s();
      begin_streaming();
      return;
    case ControlMsg::Type::kReject:
      if (stats_.state != SessionState::kConnecting) return;
      loop_.cancel(hello_timer_);
      finish(SessionOutcome::kShed);
      return;
    case ControlMsg::Type::kByeAck:
      if (stats_.state != SessionState::kDraining) return;
      loop_.cancel(bye_timer_);
      stats_.bye_acked = true;
      finish(stats_.send_retries > 0 || stats_.packets_shed > 0 ||
                     stats_.degrade_steps > 0 || stats_.handshake_retries > 0 ||
                     stats_.short_sends > 0 || stats_.bye_retries > 0
                 ? SessionOutcome::kRecovered
                 : SessionOutcome::kCompleted);
      return;
    case ControlMsg::Type::kHello:
    case ControlMsg::Type::kBye:
      return;  // server-bound messages; ignore if echoed back.
  }
}

void ClientSession::begin_streaming() {
  set_state(SessionState::kStreaming);
  last_progress_s_ = loop_.now_s();
  if (wire_packets_.empty()) {
    begin_draining();
    return;
  }
  release_timer_ = loop_.schedule_at(t0_ + schedule_.arrival_s[0],
                                     [this] { on_release(0); });
}

void ClientSession::on_release(std::size_t index) {
  if (dead_) return;
  if (queue_.empty()) last_progress_s_ = loop_.now_s();
  queue_.push_back(index);
  stats_.max_queue_depth = std::max(stats_.max_queue_depth, queue_.size());

  // Backpressure, in escalation order: step the policy down at the
  // degradation watermark, shed oldest at the hard cap.
  if (queue_.size() > config_.supervisor.degrade_depth) {
    const policy::EncryptionPolicy next = policy::degrade_step(current_policy_);
    if (next.mode != current_policy_.mode ||
        next.fraction != current_policy_.fraction) {
      current_policy_ = next;
      degraded_selected_ = current_policy_.select(clear_packets_);
      ++stats_.degrade_steps;
      trace_event("degrade", static_cast<double>(stats_.degrade_steps));
    }
  }
  if (queue_.size() > config_.supervisor.queue_cap) {
    queue_.pop_front();
    head_retries_ = 0;
    ++stats_.packets_shed;
    trace_event("queue_shed", static_cast<double>(queue_.size()));
  }

  next_release_ = index + 1;
  if (next_release_ < wire_packets_.size()) {
    release_timer_ =
        loop_.schedule_at(t0_ + schedule_.arrival_s[next_release_],
                          [this, i = next_release_] { on_release(i); });
  }
  ensure_send_armed();
  ensure_watchdog_armed();
}

void ClientSession::ensure_send_armed() {
  if (send_armed_ || dead_ || queue_.empty()) return;
  send_armed_ = true;
  const double target =
      std::max(loop_.now_s(), t0_ + schedule_.send_s[queue_.front()]);
  send_timer_ = loop_.schedule_at(target, [this] { try_send(); });
}

void ClientSession::try_send() {
  send_armed_ = false;
  if (dead_ || queue_.empty()) return;
  const std::size_t index = queue_.front();
  const net::VideoPacket* packet = &wire_packets_[index];
  bool degraded_clear = false;
  if (stats_.degrade_steps > 0 && packet->encrypted &&
      !degraded_selected_[index]) {
    // The stepped-down policy no longer encrypts this packet: ship the
    // plaintext copy, marker off, and save the encryption work.
    packet = &clear_packets_[index];
    degraded_clear = true;
  }
  net::RtpHeader header;
  header.marker = degraded_clear ? false : packet->encrypted;
  header.sequence_number = packet->sequence;
  header.timestamp = packet->timestamp;
  header.ssrc = config_.ssrc;
  buffer_.resize(net::RtpHeader::kSize + packet->payload.size());
  (void)header.write_to(buffer_);
  std::copy(packet->payload.begin(), packet->payload.end(),
            buffer_.begin() + net::RtpHeader::kSize);

  const SendOutcome outcome = chaos_socket_.send_to(config_.server, buffer_);
  if (outcome == SendOutcome::kSent) {
    queue_.pop_front();
    head_retries_ = 0;
    ++stats_.packets_sent;
    if (degraded_clear) {
      ++stats_.packets_degraded;
      trace_event("degraded_clear", static_cast<double>(index));
    }
    last_progress_s_ = loop_.now_s();
    if (queue_.empty() && next_release_ == wire_packets_.size()) {
      begin_draining();
      return;
    }
    ensure_send_armed();
    return;
  }

  // kAgain / kShort / kRefused: retry with capped exponential backoff
  // and jitter until the per-packet budget runs out, then shed.
  if (outcome == SendOutcome::kShort) ++stats_.short_sends;
  ++stats_.send_retries;
  ++head_retries_;
  trace_event("send_retry", static_cast<double>(head_retries_));
  if (head_retries_ > config_.supervisor.max_send_retries) {
    queue_.pop_front();
    head_retries_ = 0;
    ++stats_.packets_shed;
    trace_event("retry_exhausted", static_cast<double>(index));
    if (queue_.empty() && next_release_ == wire_packets_.size()) {
      begin_draining();
      return;
    }
    ensure_send_armed();
    return;
  }
  double wait = config_.supervisor.send_retry_base_s *
                std::pow(config_.supervisor.backoff_multiplier,
                         std::max(head_retries_ - 1, 0));
  wait = std::min(wait, config_.supervisor.backoff_max_s);
  if (config_.supervisor.backoff_jitter > 0.0) {
    wait *= 1.0 +
            config_.supervisor.backoff_jitter * (2.0 * rng_.uniform() - 1.0);
  }
  send_armed_ = true;
  send_timer_ = loop_.schedule_after(wait, [this] { try_send(); });
}

void ClientSession::ensure_watchdog_armed() {
  if (watchdog_armed_ || dead_) return;
  watchdog_armed_ = true;
  watchdog_timer_ =
      loop_.schedule_at(last_progress_s_ + config_.supervisor.stall_timeout_s,
                        [this] { on_watchdog(); });
}

void ClientSession::on_watchdog() {
  watchdog_armed_ = false;
  if (dead_) return;
  if (queue_.empty()) return;  // re-armed by the next release.
  // Deadline comparison, not `now - last_progress`: the virtual clock
  // lands exactly on `last_progress + stall_timeout`, and floating-point
  // `(a + b) - a` can round below `b` — subtracting would re-arm at an
  // already-past deadline and livelock the loop (same hazard as the
  // server's idle watchdog).
  if (last_progress_s_ + config_.supervisor.stall_timeout_s <=
      loop_.now_s()) {
    trace_event("stall", static_cast<double>(queue_.size()));
    finish(SessionOutcome::kWatchdogKilled);
    return;
  }
  ensure_watchdog_armed();  // progress happened; roll the deadline.
}

void ClientSession::begin_draining() {
  set_state(SessionState::kDraining);
  bye_attempts_ = 0;
  send_bye();
}

void ClientSession::send_bye() {
  if (dead_) return;
  if (bye_attempts_ > config_.supervisor.max_bye_retries) {
    // The data is delivered; an unacknowledged goodbye degrades the
    // outcome to "recovered", never to a failure.
    finish(SessionOutcome::kRecovered);
    return;
  }
  ControlMsg bye;
  bye.type = ControlMsg::Type::kBye;
  bye.ssrc = config_.ssrc;
  bye.aux = static_cast<std::uint32_t>(stats_.packets_sent);
  (void)chaos_socket_.send_to(config_.server, bye.serialize());
  if (bye_attempts_ > 0) {
    stats_.bye_retries = static_cast<std::size_t>(bye_attempts_);
  }
  const double wait = backoff_wait_s(config_.supervisor, bye_attempts_, rng_);
  ++bye_attempts_;
  bye_timer_ = loop_.schedule_after(wait, [this] { send_bye(); });
}

void ClientSession::chaos_kill() {
  if (dead_) return;
  stats_.chaos_killed = true;
  trace_event("chaos_kill", static_cast<double>(stats_.packets_sent));
  finish(SessionOutcome::kWatchdogKilled);
}

void ClientSession::finish(SessionOutcome outcome) {
  if (dead_) return;
  dead_ = true;
  loop_.cancel(hello_timer_);
  loop_.cancel(bye_timer_);
  loop_.cancel(release_timer_);
  loop_.cancel(send_timer_);
  loop_.cancel(watchdog_timer_);
  loop_.unwatch(socket_.fd());
  stats_.outcome = outcome;
  stats_.done_s = loop_.now_s();
  set_state(outcome == SessionOutcome::kCompleted ||
                    outcome == SessionOutcome::kRecovered
                ? SessionState::kClosed
                : SessionState::kFailed);
  trace_event(outcome_trace_kind(outcome),
              static_cast<double>(stats_.packets_sent));
  if (on_done_) on_done_();
}

void ClientSession::set_state(SessionState state) {
  stats_.state = state;
  trace_event(state_trace_kind(state), 0.0);
}

void ClientSession::trace_event(const char* kind, double value) {
  if (config_.trace == nullptr) return;
  config_.trace->event({core::Stage::kTransport, kind,
                        static_cast<std::int64_t>(config_.ssrc), 0,
                        loop_.now_s(), value});
}

}  // namespace tv::live
