#include "live/udp.hpp"

#include <arpa/inet.h>
#include <fcntl.h>
#include <netinet/in.h>
#include <sys/socket.h>
#include <unistd.h>

#include <cerrno>
#include <cstring>
#include <stdexcept>

namespace tv::live {

namespace {

sockaddr_in to_sockaddr(const Endpoint& endpoint) {
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_addr.s_addr = htonl(endpoint.ip);
  addr.sin_port = htons(endpoint.port);
  return addr;
}

Endpoint from_sockaddr(const sockaddr_in& addr) {
  Endpoint endpoint;
  endpoint.ip = ntohl(addr.sin_addr.s_addr);
  endpoint.port = ntohs(addr.sin_port);
  return endpoint;
}

[[noreturn]] void throw_errno(const std::string& what) {
  throw std::runtime_error{what + ": " + std::strerror(errno)};
}

}  // namespace

const char* to_string(SendOutcome outcome) {
  switch (outcome) {
    case SendOutcome::kSent:
      return "sent";
    case SendOutcome::kAgain:
      return "again";
    case SendOutcome::kRefused:
      return "refused";
    case SendOutcome::kShort:
      return "short";
  }
  return "?";
}

std::string Endpoint::to_string() const {
  return std::to_string((ip >> 24) & 0xff) + "." +
         std::to_string((ip >> 16) & 0xff) + "." +
         std::to_string((ip >> 8) & 0xff) + "." + std::to_string(ip & 0xff) +
         ":" + std::to_string(port);
}

std::optional<Endpoint> parse_endpoint(const std::string& text) {
  if (text.empty()) return std::nullopt;
  const auto colon = text.rfind(':');
  std::string host = colon == std::string::npos ? "" : text.substr(0, colon);
  const std::string port_text =
      colon == std::string::npos ? text : text.substr(colon + 1);
  if (port_text.empty()) return std::nullopt;
  for (char c : port_text) {
    if (c < '0' || c > '9') return std::nullopt;
  }
  const unsigned long port = std::stoul(port_text);
  if (port > 65535) return std::nullopt;

  Endpoint endpoint;
  endpoint.port = static_cast<std::uint16_t>(port);
  if (!host.empty()) {
    in_addr parsed{};
    if (inet_pton(AF_INET, host.c_str(), &parsed) != 1) return std::nullopt;
    endpoint.ip = ntohl(parsed.s_addr);
  }
  return endpoint;
}

UdpSocket::UdpSocket() {
  fd_ = ::socket(AF_INET, SOCK_DGRAM, 0);
  if (fd_ < 0) throw_errno("UdpSocket: socket");
  const int flags = ::fcntl(fd_, F_GETFL, 0);
  if (flags < 0 || ::fcntl(fd_, F_SETFL, flags | O_NONBLOCK) < 0) {
    ::close(fd_);
    fd_ = -1;
    throw_errno("UdpSocket: O_NONBLOCK");
  }
}

UdpSocket::~UdpSocket() {
  if (fd_ >= 0) ::close(fd_);
}

UdpSocket::UdpSocket(UdpSocket&& other) noexcept : fd_(other.fd_) {
  other.fd_ = -1;
}

UdpSocket& UdpSocket::operator=(UdpSocket&& other) noexcept {
  if (this != &other) {
    if (fd_ >= 0) ::close(fd_);
    fd_ = other.fd_;
    other.fd_ = -1;
  }
  return *this;
}

void UdpSocket::bind(const Endpoint& endpoint) {
  const sockaddr_in addr = to_sockaddr(endpoint);
  if (::bind(fd_, reinterpret_cast<const sockaddr*>(&addr), sizeof addr) <
      0) {
    throw_errno("UdpSocket: bind " + endpoint.to_string());
  }
}

Endpoint UdpSocket::local_endpoint() const {
  sockaddr_in addr{};
  socklen_t len = sizeof addr;
  if (::getsockname(fd_, reinterpret_cast<sockaddr*>(&addr), &len) < 0) {
    throw_errno("UdpSocket: getsockname");
  }
  return from_sockaddr(addr);
}

void UdpSocket::connect(const Endpoint& peer) {
  const sockaddr_in addr = to_sockaddr(peer);
  if (::connect(fd_, reinterpret_cast<const sockaddr*>(&addr), sizeof addr) <
      0) {
    throw_errno("UdpSocket: connect " + peer.to_string());
  }
}

SendOutcome UdpSocket::send_to(const Endpoint& to,
                               std::span<const std::uint8_t> payload) {
  const sockaddr_in addr = to_sockaddr(to);
  for (;;) {
    const ssize_t sent =
        ::sendto(fd_, payload.data(), payload.size(), 0,
                 reinterpret_cast<const sockaddr*>(&addr), sizeof addr);
    if (sent < 0) {
      if (errno == EINTR) continue;  // signal mid-call: the datagram is
                                     // still ours, just try again.
      if (errno == EAGAIN || errno == EWOULDBLOCK || errno == ENOBUFS) {
        return SendOutcome::kAgain;
      }
      if (errno == ECONNREFUSED) {
        // A previous datagram to a connected peer drew an ICMP
        // port-unreachable; the kernel reports it here and did not send
        // this one.  The session layer decides whether to retry.
        ++refusals_;
        return SendOutcome::kRefused;
      }
      throw_errno("UdpSocket: sendto " + to.to_string());
    }
    return static_cast<std::size_t>(sent) == payload.size()
               ? SendOutcome::kSent
               : SendOutcome::kShort;
  }
}

std::optional<Datagram> UdpSocket::receive() {
  Datagram datagram;
  if (!receive_into(datagram)) return std::nullopt;
  return datagram;
}

bool UdpSocket::receive_into(Datagram& out) {
  // 64 KiB covers any UDP datagram; reused stack buffer, one copy out —
  // into `out.payload`, whose capacity survives across calls.
  std::uint8_t buffer[65536];
  for (;;) {
    sockaddr_in addr{};
    socklen_t len = sizeof addr;
    const ssize_t got = ::recvfrom(fd_, buffer, sizeof buffer, 0,
                                   reinterpret_cast<sockaddr*>(&addr), &len);
    if (got < 0) {
      if (errno == EINTR) continue;  // retry: a miss here would end the
                                     // caller's drain loop early.
      if (errno == ECONNREFUSED) {
        // Queued ICMP error on a connected socket.  Consume and count it,
        // then retry — real datagrams may sit behind it.
        ++refusals_;
        continue;
      }
      if (errno == EAGAIN || errno == EWOULDBLOCK) {
        return false;
      }
      throw_errno("UdpSocket: recvfrom");
    }
    out.from = from_sockaddr(addr);
    out.payload.assign(buffer, buffer + got);
    return true;
  }
}

void UdpSocket::set_receive_buffer(int bytes) {
  // Best-effort: the loopback test needs headroom for bursts, but a
  // kernel refusing the hint is not an error.
  (void)::setsockopt(fd_, SOL_SOCKET, SO_RCVBUF, &bytes, sizeof bytes);
}

}  // namespace tv::live
