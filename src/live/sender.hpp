// Live sender session: paced RTP/UDP emission of a packetized stream.
//
// The sender owns nothing clever on the wire — a datagram is RTP header
// (marker bit = "payload is encrypted", Section 5) plus the payload the
// packetizer/policy produced.  What it does own is pacing: each packet
// goes out at a scheduled send time derived from the 2-MMPP/G/1 service
// law (T_e + T_b + T_t), either replayed from an in-memory transfer's
// per-packet completion times or drawn fresh from core::ServiceModel.
// Pacing is enforced with event-loop deadline timers — a token bucket
// with one token per service completion — never with sleeps.
#pragma once

#include <cstdint>
#include <functional>
#include <vector>

#include "core/pipeline.hpp"
#include "core/trace.hpp"
#include "live/event_loop.hpp"
#include "live/udp.hpp"
#include "net/packetizer.hpp"

namespace tv::live {

/// Per-packet send times from an in-memory transfer: the completion time
/// of each packet's service (encryption + backoff + air time), so the
/// live flow reproduces the simulated pacing exactly.
[[nodiscard]] std::vector<double> schedule_from_timings(
    const std::vector<core::PacketTiming>& timings);

/// Per-packet send times drawn fresh from the service model: producer
/// release (frame cadence + read latency + jitter) followed by one
/// encrypt/backoff/transmit service round per packet, no channel loss.
/// This paces a standalone `live send` when no simulation ran first.
[[nodiscard]] std::vector<double> schedule_from_service_model(
    const core::PipelineConfig& config,
    const std::vector<net::VideoPacket>& packets, std::uint64_t seed,
    core::TraceSink* trace = nullptr);

/// Release and send instants for a supervised client session: packet i
/// enters the session's send queue at `arrival_s[i]` (producer release)
/// and completes service — goes on the air — at `send_s[i]`.  The gap
/// between the two is the queue pressure the supervisor's shedding and
/// degradation hooks act on.
struct PacedSchedule {
  std::vector<double> arrival_s;
  std::vector<double> send_s;
};

[[nodiscard]] PacedSchedule paced_schedule_from_service_model(
    const core::PipelineConfig& config,
    const std::vector<net::VideoPacket>& packets, std::uint64_t seed,
    core::TraceSink* trace = nullptr);

/// Timing-jitter countermeasure (docs/adversary.md): add a seeded
/// half-normal offset |N(0, sigma^2)| to every send time, in place.
/// Offsets are non-negative — a packet never leaves before its service
/// completed — and packets are deliberately NOT re-sorted: occasional
/// local reordering is part of the obfuscation and the receiver already
/// handles it.  No-op when sigma <= 0.
void jitter_schedule(std::vector<double>& send_times_s, double stddev_s,
                     std::uint64_t seed);

/// Mean extra per-packet delay jitter_schedule adds: sigma * sqrt(2/pi)
/// (the mean of a half-normal) — the delay cost the leakage report
/// charges the jitter knob.
[[nodiscard]] double jitter_mean_delay_s(double stddev_s);

struct SenderConfig {
  Endpoint destination;
  std::uint32_t ssrc = 0x74561D01;
  core::TraceSink* trace = nullptr;  ///< optional; zero overhead when null.
};

struct SenderReport {
  std::size_t packets_sent = 0;
  std::size_t datagram_bytes_sent = 0;  ///< RTP header + payload bytes.
  std::size_t encrypted_packets = 0;
  std::size_t kernel_retries = 0;  ///< transient sendto refusals, retried.
  double first_send_s = 0.0;
  double last_send_s = 0.0;
};

/// Streams `packets` to `destination` over `socket`, one timer per send
/// time.  The packet list must outlive the session; the session is done
/// (on_done fired) when every packet has been handed to the kernel.
class SenderSession {
 public:
  SenderSession(EventLoop& loop, UdpSocket& socket, SenderConfig config,
                const std::vector<net::VideoPacket>& packets,
                std::vector<double> send_times,
                std::function<void(const SenderReport&)> on_done = {});

  /// Arm one deadline timer per packet.  Call once.
  void start();

  [[nodiscard]] const SenderReport& report() const { return report_; }

 private:
  void send_packet(std::size_t index);

  EventLoop& loop_;
  UdpSocket& socket_;
  SenderConfig config_;
  const std::vector<net::VideoPacket>& packets_;
  std::vector<double> send_times_;
  std::function<void(const SenderReport&)> on_done_;
  std::vector<std::uint8_t> buffer_;  ///< reused per-datagram scratch.
  SenderReport report_;
  std::size_t remaining_ = 0;
};

}  // namespace tv::live
