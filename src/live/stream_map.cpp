#include "live/stream_map.hpp"

#include <stdexcept>

namespace tv::live {

std::vector<std::uint8_t> flow_iv_for(const crypto::BlockCipher& cipher,
                                      std::uint64_t seed) {
  std::vector<std::uint8_t> iv(cipher.block_size());
  std::uint64_t state = seed ^ 0x1234567890abcdefULL;
  for (auto& b : iv) {
    state = state * 6364136223846793005ULL + 1442695040888963407ULL;
    b = static_cast<std::uint8_t>(state >> 56);
  }
  return iv;
}

StreamMap StreamMap::of(const std::vector<net::VideoPacket>& packets,
                        int frame_count) {
  if (packets.empty()) {
    throw std::invalid_argument{"StreamMap::of: empty stream"};
  }
  StreamMap map;
  map.base_sequence_ = packets.front().sequence;
  map.frame_count_ = frame_count;
  map.slots_.reserve(packets.size());
  for (std::size_t i = 0; i < packets.size(); ++i) {
    const net::VideoPacket& p = packets[i];
    const auto expected = static_cast<std::uint16_t>(
        map.base_sequence_ + static_cast<std::uint16_t>(i));
    if (p.sequence != expected) {
      throw std::invalid_argument{"StreamMap::of: non-contiguous sequences"};
    }
    StreamSlot slot;
    slot.timestamp = p.timestamp;
    slot.frame_index = p.frame_index;
    slot.fragment_index = p.fragment_index;
    slot.fragment_count = p.fragment_count;
    slot.byte_offset = p.byte_offset;
    slot.payload_size = p.payload.size();
    slot.pad_bytes = p.pad_bytes;
    slot.is_i_frame = p.is_i_frame;
    slot.encrypted = p.encrypted;
    map.slots_.push_back(slot);
  }
  return map;
}

std::optional<std::size_t> StreamMap::index_of(
    std::int64_t extended_sequence) const {
  // net::Receiver's extended sequence is cycle*65536 + wire sequence with
  // the first packet landing in cycle 0, so the stream occupies the
  // contiguous range [base, base + count).
  const auto base = static_cast<std::int64_t>(base_sequence_);
  if (extended_sequence < base) return std::nullopt;
  const auto offset = static_cast<std::uint64_t>(extended_sequence - base);
  if (offset >= slots_.size()) return std::nullopt;
  return static_cast<std::size_t>(offset);
}

std::vector<video::ReceivedFrameData> reassemble_wire(
    const StreamMap& map, const std::vector<net::ReceivedPacket>& received,
    const crypto::BlockCipher* cipher, std::span<const std::uint8_t> flow_iv,
    bool markers_hidden) {
  // Build a full-geometry packet list so net::reassemble derives the same
  // frame sizes as the sender; undelivered slots keep zeroed payloads of
  // the right length and stay behind delivered=false.  One local arena
  // owns every payload for the duration of the reassembly.
  util::Arena arena;
  std::vector<net::VideoPacket> packets(map.packet_count());
  std::vector<bool> delivered(map.packet_count(), false);
  for (std::size_t i = 0; i < map.packet_count(); ++i) {
    const StreamSlot& slot = map.slot(i);
    net::VideoPacket& p = packets[i];
    p.sequence = static_cast<std::uint16_t>(0);  // filled for delivered ones.
    p.timestamp = slot.timestamp;
    p.frame_index = slot.frame_index;
    p.fragment_index = slot.fragment_index;
    p.fragment_count = slot.fragment_count;
    p.byte_offset = slot.byte_offset;
    p.is_i_frame = slot.is_i_frame;
    p.encrypted = false;
    p.pad_bytes = slot.pad_bytes;  // frame sizes count content bytes only.
    p.allocate_payload(arena, slot.payload_size, 0);
  }
  for (const net::ReceivedPacket& rx : received) {
    const auto index = map.index_of(rx.extended_sequence);
    if (!index) continue;  // not part of this stream.
    const StreamSlot& slot = map.slot(*index);
    net::VideoPacket& p = packets[*index];
    // Wire-faithful: bytes and marker from the datagram, geometry from
    // the map.  Oversized payloads (a fault grew the datagram) truncate
    // to the slot; short ones contribute only what arrived.
    p.sequence = rx.header.sequence_number;
    // Marker hiding: wire markers are deliberately clear, so the
    // encryption flag travels out-of-band in the map.
    p.encrypted = markers_hidden ? slot.encrypted : rx.header.marker;
    const std::span<const std::uint8_t> rx_payload = rx.payload();
    const std::size_t take = std::min(rx_payload.size(), slot.payload_size);
    // Truncation faults eat the pad trailer first: the surviving prefix
    // is content up to the slot's content size, padding after that.
    const std::size_t content_take =
        std::min(take, slot.payload_size - slot.pad_bytes);
    p.pad_bytes = take - content_take;
    p.payload = net::PacketBuf::from_wire(
        p.payload.wire().first(net::RtpHeader::kSize + take));
    if (take > 0) std::memcpy(p.payload.data(), rx_payload.data(), take);
    delivered[*index] = true;
  }
  return net::reassemble(packets, delivered, map.frame_count(), cipher,
                         flow_iv);
}

}  // namespace tv::live
