// In-process live testbed: sender → impairment proxy (+ eavesdropper tap)
// → receiver over real UDP on the loopback interface.
//
// Two modes share one orchestration:
//
//  * replay (default, deterministic): an in-memory core::simulate_transfer
//    runs first; its per-packet completion times pace the live sender and
//    its receiver/eavesdropper channel masks drive the proxy and tap.  The
//    live receiver then sees, byte for byte, the delivery the simulation
//    decided — so its PSNR equals the in-memory result exactly, which is
//    what the pinned e2e test asserts (within 0.1 dB).
//
//  * stochastic: the proxy impairs with its own Gilbert-Elliott chain /
//    fault plan seeded from the run seed.  Still deterministic in the
//    seed (virtual clock, fixed RNG streams), but no in-memory twin.
//
// Either way the run reports live, in-memory and analytic (distortion
// model) PSNRs side by side for the receiver and the eavesdropper.
#pragma once

#include <cstdint>
#include <optional>
#include <string>

#include "core/experiment.hpp"
#include "core/pipeline.hpp"
#include "core/trace.hpp"
#include "live/eavesdropper.hpp"
#include "live/proxy.hpp"
#include "live/sender.hpp"
#include "net/fault_injector.hpp"
#include "net/receiver.hpp"
#include "policy/policy.hpp"
#include "video/scene.hpp"

namespace tv::live {

struct LoopbackConfig {
  video::MotionLevel motion = video::MotionLevel::kLow;
  int gop_size = 16;
  int frames = 48;
  policy::EncryptionPolicy policy;
  /// Traffic-shaping countermeasures (docs/adversary.md): padding is
  /// applied before encryption, marker hiding after, jitter on the send
  /// schedule.  Their delay/energy price flows through the same
  /// simulate_transfer/energy pipeline as everything else.
  policy::ShapingPolicy shaping;
  core::PipelineConfig pipeline;
  std::uint64_t seed = 1;
  /// false: replay the in-memory transfer's masks (pinned determinism).
  /// true: the proxy/tap impair stochastically from the seed.
  bool stochastic = false;
  /// Stochastic-mode extras (ignored in replay mode).
  std::optional<net::FaultPlan> faults;
  std::optional<wifi::GilbertElliottParams> eavesdropper_channel;
  /// When non-empty, write the tap's capture here as a classic pcap.
  std::string pcap_path;
  core::TraceSink* trace = nullptr;  ///< optional; zero overhead when null.
};

struct LoopbackReport {
  std::size_t packet_count = 0;
  net::EncryptionStats encryption;
  double duration_s = 0.0;  ///< in-memory transfer duration.
  std::size_t pad_overhead_bytes = 0;  ///< pad trailer bytes on the wire.
  double jitter_mean_delay_s = 0.0;    ///< mean extra send delay (jitter).

  // Receiver PSNR: live wire path vs. in-memory twin vs. analytic model.
  double live_receiver_psnr_db = 0.0;
  double memory_receiver_psnr_db = 0.0;
  double predicted_receiver_psnr_db = 0.0;
  // Eavesdropper (no key; marked payloads are erasures).
  double live_eavesdropper_psnr_db = 0.0;
  double memory_eavesdropper_psnr_db = 0.0;
  double predicted_eavesdropper_psnr_db = 0.0;

  SenderReport sender;
  ProxyReport proxy;
  net::ReceiverStats receiver;
  TapReport tap;
  std::size_t pcap_clamped = 0;  ///< writer clamp count (0 = clean).
};

/// Run the full three-role loopback testbed on a virtual-clock event
/// loop.  No sleeps, no wall-clock dependence: a run is a pure function
/// of its config.
[[nodiscard]] LoopbackReport run_loopback(const LoopbackConfig& config);

}  // namespace tv::live
