// Multi-session load generator: hundreds of supervised uploaders against
// one live::Server on a single virtual-clock event loop.
//
// This is the chaos harness's driver and the overload experiment in one:
// every session is a ClientSession streaming the same policy-encrypted
// workload on its own seeded pacing, through its own seeded ChaosSocket,
// into one Server with admission control.  Everything runs in-process on
// the virtual clock, so a 200-session run with kills, stalls and EAGAIN
// storms finishes in wall-milliseconds and is deterministic in the root
// seed: same seed, same per-session outcomes, byte for byte.
#pragma once

#include <cstdint>
#include <vector>

#include "core/experiment.hpp"
#include "core/pipeline.hpp"
#include "core/trace.hpp"
#include "live/chaos.hpp"
#include "live/server.hpp"
#include "live/supervisor.hpp"
#include "policy/policy.hpp"
#include "video/scene.hpp"

namespace tv::live {

struct LoadConfig {
  int sessions = 8;
  /// Admission budget; 0 means "no contention" (budget = sessions).
  std::size_t max_sessions = 0;

  // Workload shared by every session (built once).
  video::MotionLevel motion = video::MotionLevel::kLow;
  int gop_size = 8;
  int frames = 16;
  policy::EncryptionPolicy policy;
  core::PipelineConfig pipeline;  ///< paces each session's schedule.

  std::uint64_t seed = 1;
  double ramp_s = 2.0;  ///< session HELLOs spread evenly over this window.

  SupervisorConfig supervisor;
  ChaosPlan chaos;

  // Server knobs surfaced for the overload experiment.
  double server_idle_timeout_s = 5.0;
  std::size_t overload_high = 4096;
  std::size_t overload_low = 1024;

  /// Decode each admitted session's delivery into a PSNR (costly; off by
  /// default — delivery fractions are free either way).
  bool evaluate_psnr = false;

  core::TraceSink* trace = nullptr;
};

/// One row of the per-session table.
struct SessionSummary {
  int index = 0;
  std::uint32_t ssrc = 0;
  ClientStats client;
  ChaosStats chaos;
  SessionState server_state = SessionState::kConnecting;
  SessionOutcome server_outcome = SessionOutcome::kPending;
  std::size_t delivered = 0;  ///< packets accepted server-side.
  double delivered_fraction = 0.0;
  double psnr_db = 0.0;  ///< 0 unless evaluate_psnr and admitted.
};

struct LoadReport {
  std::size_t packet_count = 0;  ///< per session.
  std::vector<SessionSummary> sessions;

  // Outcome tallies (client-side classification; sums to `sessions`).
  std::size_t completed = 0;
  std::size_t recovered = 0;
  std::size_t shed = 0;
  std::size_t watchdog_killed = 0;

  std::size_t total_send_retries = 0;
  std::size_t total_packets_shed = 0;
  std::size_t total_packets_degraded = 0;
  std::size_t max_client_queue_depth = 0;

  ServerReport server;
  double duration_s = 0.0;  ///< virtual seconds until the loop idled.
};

/// Run the whole fleet to completion.  Deterministic in config.seed.
[[nodiscard]] LoadReport run_load(const LoadConfig& config);

}  // namespace tv::live
