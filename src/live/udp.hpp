// Minimal non-blocking IPv4 UDP sockets for the live subsystem.
//
// The live roles (sender, receiver, proxy, eavesdropper) exchange real
// datagrams over the kernel's UDP stack — loopback in the pinned e2e
// test, any LAN address in manual runs.  This wrapper is deliberately
// thin: AF_INET only, always non-blocking, move-only RAII ownership of
// the descriptor.  Everything above it (pacing, impairment, reassembly)
// lives in the event loop and sessions, which is what the paper models.
#pragma once

#include <cstddef>
#include <cstdint>
#include <optional>
#include <span>
#include <string>
#include <vector>

namespace tv::live {

/// An IPv4 address + UDP port.  Host byte order throughout; conversion
/// to sockaddr happens inside UdpSocket.
struct Endpoint {
  std::uint32_t ip = 0x7f000001;  ///< 127.0.0.1
  std::uint16_t port = 0;

  [[nodiscard]] std::string to_string() const;
  friend bool operator==(const Endpoint&, const Endpoint&) = default;
};

/// Parse "A.B.C.D:port" (or ":port" / "port" meaning loopback).
/// Returns std::nullopt on malformed input.
[[nodiscard]] std::optional<Endpoint> parse_endpoint(const std::string& text);

/// A received datagram with its source address.
struct Datagram {
  Endpoint from;
  std::vector<std::uint8_t> payload;
};

/// What happened to a datagram handed to the kernel.  Only kSent means
/// the peer can possibly see the whole payload; everything else is a
/// per-packet condition the session layer must decide about (retry,
/// shed, or fail the session) instead of the old silent bool.
enum class SendOutcome {
  kSent,     ///< whole payload accepted by the kernel.
  kAgain,    ///< transient refusal (EAGAIN/ENOBUFS): retry later.
  kRefused,  ///< ECONNREFUSED via ICMP on a connected socket: peer gone.
  kShort,    ///< kernel accepted a short write: datagram truncated.
};

[[nodiscard]] const char* to_string(SendOutcome outcome);

/// Move-only owner of a non-blocking AF_INET/SOCK_DGRAM descriptor.
class UdpSocket {
 public:
  /// Creates an unbound non-blocking UDP socket; throws std::runtime_error
  /// if the kernel refuses.
  UdpSocket();
  ~UdpSocket();
  UdpSocket(UdpSocket&& other) noexcept;
  UdpSocket& operator=(UdpSocket&& other) noexcept;
  UdpSocket(const UdpSocket&) = delete;
  UdpSocket& operator=(const UdpSocket&) = delete;

  /// Bind to an address; port 0 asks the kernel for an ephemeral port
  /// (use local_endpoint() to learn it).  Throws on failure.
  void bind(const Endpoint& endpoint);

  /// The bound address (meaningful after bind).  Throws on failure.
  [[nodiscard]] Endpoint local_endpoint() const;

  /// Associate the socket with a default peer.  The kernel then reports
  /// ICMP port-unreachable back as ECONNREFUSED on later sends/receives,
  /// which send_to()/receive() surface without aborting.  Throws on
  /// failure.
  void connect(const Endpoint& peer);

  /// Sends one datagram, retrying EINTR internally.  See SendOutcome for
  /// the per-packet conditions; throws only on non-transient errors.
  SendOutcome send_to(const Endpoint& to, std::span<const std::uint8_t> payload);

  /// Receives one datagram if available (non-blocking); std::nullopt
  /// when nothing is queued.  EINTR is retried internally and a pending
  /// ECONNREFUSED (connected sockets) is consumed and counted rather
  /// than thrown, so a drain loop never ends early on either.  Throws on
  /// non-transient errors.
  [[nodiscard]] std::optional<Datagram> receive();

  /// receive() into a caller-owned Datagram: the payload vector's
  /// capacity is reused across calls, so a drain loop allocates nothing
  /// once warm.  Returns false when nothing is queued.  Same EINTR /
  /// ECONNREFUSED handling as receive().
  [[nodiscard]] bool receive_into(Datagram& out);

  /// ECONNREFUSED indications consumed by send_to()/receive().
  [[nodiscard]] std::size_t refusals() const noexcept { return refusals_; }

  /// Grow the kernel receive buffer (best-effort; keeps burst arrivals
  /// from overflowing between poll rounds).
  void set_receive_buffer(int bytes);

  [[nodiscard]] int fd() const noexcept { return fd_; }

 private:
  int fd_ = -1;
  std::size_t refusals_ = 0;
};

}  // namespace tv::live
