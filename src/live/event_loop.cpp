#include "live/event_loop.hpp"

#include <poll.h>
#include <time.h>

#include <algorithm>
#include <cerrno>
#include <cmath>
#include <cstring>
#include <stdexcept>

namespace tv::live {

EventLoop::EventLoop(ClockMode mode) : mode_(mode) {
  if (mode_ == ClockMode::kMonotonic) {
    monotonic_origin_s_ = monotonic_now_s();
  }
}

double EventLoop::monotonic_now_s() const {
  timespec ts{};
  clock_gettime(CLOCK_MONOTONIC, &ts);
  return static_cast<double>(ts.tv_sec) +
         static_cast<double>(ts.tv_nsec) * 1e-9;
}

double EventLoop::now_s() const {
  if (mode_ == ClockMode::kVirtual) return virtual_now_s_;
  return monotonic_now_s() - monotonic_origin_s_;
}

void EventLoop::watch_readable(int fd, std::function<void()> on_readable) {
  for (auto& [watched_fd, callback] : watchers_) {
    if (watched_fd == fd) {
      callback = std::move(on_readable);
      return;
    }
  }
  watchers_.emplace_back(fd, std::move(on_readable));
}

void EventLoop::unwatch(int fd) {
  watchers_.erase(
      std::remove_if(watchers_.begin(), watchers_.end(),
                     [fd](const auto& w) { return w.first == fd; }),
      watchers_.end());
}

EventLoop::TimerId EventLoop::schedule_at(double deadline_s,
                                          std::function<void()> callback) {
  const TimerId id = next_timer_id_++;
  timers_.emplace(TimerKey{deadline_s, id}, std::move(callback));
  return id;
}

EventLoop::TimerId EventLoop::schedule_after(double delay_s,
                                             std::function<void()> callback) {
  return schedule_at(now_s() + delay_s, std::move(callback));
}

void EventLoop::cancel(TimerId id) {
  for (auto it = timers_.begin(); it != timers_.end(); ++it) {
    if (it->first.id == id) {
      timers_.erase(it);
      return;
    }
  }
}

std::size_t EventLoop::poll_once(int timeout_ms) {
  if (watchers_.empty()) return 0;
  std::vector<pollfd> fds;
  fds.reserve(watchers_.size());
  for (const auto& [fd, callback] : watchers_) {
    fds.push_back(pollfd{fd, POLLIN, 0});
  }
  int ready = ::poll(fds.data(), fds.size(), timeout_ms);
  if (ready < 0) {
    if (errno == EINTR) return 0;
    throw std::runtime_error{std::string{"EventLoop: poll: "} +
                             std::strerror(errno)};
  }
  std::size_t dispatched = 0;
  for (const pollfd& p : fds) {
    if ((p.revents & (POLLIN | POLLERR | POLLHUP)) == 0) continue;
    // Re-find by fd: an earlier callback this round may have unwatched
    // or replaced it.
    for (const auto& [fd, callback] : watchers_) {
      if (fd == p.fd) {
        callback();
        ++dispatched;
        break;
      }
    }
  }
  return dispatched;
}

std::size_t EventLoop::pump() {
  std::size_t total = 0;
  for (;;) {
    const std::size_t n = poll_once(0);
    if (n == 0) return total;
    total += n;
  }
}

void EventLoop::run() {
  stopped_ = false;
  while (!stopped_) {
    if (mode_ == ClockMode::kVirtual) {
      // Drain I/O first so at most a handful of datagrams sit in kernel
      // buffers between timer firings — that bound is what makes virtual
      // runs immune to buffer overflow and hence deterministic.
      if (poll_once(0) > 0) continue;
      if (timers_.empty()) return;  // idle: nothing readable, no deadlines.
      auto it = timers_.begin();
      virtual_now_s_ = std::max(virtual_now_s_, it->first.deadline_s);
      auto callback = std::move(it->second);
      timers_.erase(it);
      callback();
      continue;
    }

    // Monotonic mode: block in poll until the earliest deadline.
    int timeout_ms = -1;
    if (!timers_.empty()) {
      const double wait_s = timers_.begin()->first.deadline_s - now_s();
      timeout_ms = wait_s <= 0.0
                       ? 0
                       : static_cast<int>(std::ceil(wait_s * 1e3));
    } else if (watchers_.empty()) {
      return;  // idle: no deadlines, nothing to watch.
    }
    poll_once(timeout_ms);
    // Fire everything that has come due.
    while (!stopped_ && !timers_.empty() &&
           timers_.begin()->first.deadline_s <= now_s()) {
      auto it = timers_.begin();
      auto callback = std::move(it->second);
      timers_.erase(it);
      callback();
    }
  }
}

void EventLoop::stop() { stopped_ = true; }

}  // namespace tv::live
