#include "live/event_loop.hpp"

#include <poll.h>
#include <time.h>
#include <unistd.h>

#ifdef __linux__
#include <sys/epoll.h>
#endif

#include <algorithm>
#include <cerrno>
#include <cmath>
#include <cstring>
#include <stdexcept>

namespace tv::live {

EventLoop::EventLoop(ClockMode mode, PollBackend backend) : mode_(mode) {
  if (mode_ == ClockMode::kMonotonic) {
    monotonic_origin_s_ = monotonic_now_s();
  }
#ifdef __linux__
  if (backend != PollBackend::kPoll) {
    epoll_fd_ = ::epoll_create1(0);
    if (epoll_fd_ < 0 && backend == PollBackend::kEpoll) {
      throw std::runtime_error{std::string{"EventLoop: epoll_create1: "} +
                               std::strerror(errno)};
    }
  }
#else
  if (backend == PollBackend::kEpoll) {
    throw std::runtime_error{"EventLoop: epoll backend unsupported here"};
  }
#endif
}

EventLoop::~EventLoop() {
  if (epoll_fd_ >= 0) ::close(epoll_fd_);
}

PollBackend EventLoop::backend() const {
  return epoll_fd_ >= 0 ? PollBackend::kEpoll : PollBackend::kPoll;
}

double EventLoop::monotonic_now_s() const {
  timespec ts{};
  clock_gettime(CLOCK_MONOTONIC, &ts);
  return static_cast<double>(ts.tv_sec) +
         static_cast<double>(ts.tv_nsec) * 1e-9;
}

double EventLoop::now_s() const {
  if (mode_ == ClockMode::kVirtual) return virtual_now_s_;
  return monotonic_now_s() - monotonic_origin_s_;
}

void EventLoop::watch_readable(int fd, std::function<void()> on_readable) {
  for (auto& [watched_fd, callback] : watchers_) {
    if (watched_fd == fd) {
      // Same descriptor, new callback: the epoll registration stands.
      callback = std::move(on_readable);
      return;
    }
  }
  watchers_.emplace_back(fd, std::move(on_readable));
#ifdef __linux__
  if (epoll_fd_ >= 0) {
    epoll_event event{};
    event.events = EPOLLIN;
    event.data.fd = fd;
    if (::epoll_ctl(epoll_fd_, EPOLL_CTL_ADD, fd, &event) < 0) {
      watchers_.pop_back();
      throw std::runtime_error{std::string{"EventLoop: epoll_ctl add: "} +
                               std::strerror(errno)};
    }
  }
#endif
}

void EventLoop::unwatch(int fd) {
  const auto end = std::remove_if(watchers_.begin(), watchers_.end(),
                                  [fd](const auto& w) { return w.first == fd; });
  if (end == watchers_.end()) return;
  watchers_.erase(end, watchers_.end());
#ifdef __linux__
  if (epoll_fd_ >= 0) {
    // The descriptor may already be closed; deregistration is best-effort.
    (void)::epoll_ctl(epoll_fd_, EPOLL_CTL_DEL, fd, nullptr);
  }
#endif
}

EventLoop::TimerId EventLoop::schedule_at(double deadline_s,
                                          std::function<void()> callback) {
  const TimerId id = next_timer_id_++;
  timers_.emplace(TimerKey{deadline_s, id}, std::move(callback));
  return id;
}

EventLoop::TimerId EventLoop::schedule_after(double delay_s,
                                             std::function<void()> callback) {
  return schedule_at(now_s() + delay_s, std::move(callback));
}

void EventLoop::cancel(TimerId id) {
  for (auto it = timers_.begin(); it != timers_.end(); ++it) {
    if (it->first.id == id) {
      timers_.erase(it);
      return;
    }
  }
}

std::size_t EventLoop::dispatch_fd(int fd) {
  // Re-find by fd: an earlier callback this round may have unwatched or
  // replaced it.
  for (const auto& [watched_fd, callback] : watchers_) {
    if (watched_fd == fd) {
      callback();
      return 1;
    }
  }
  return 0;
}

std::size_t EventLoop::poll_once(int timeout_ms) {
  ++poll_rounds_;
  if (watchers_.empty()) {
    // Nothing to watch, but the timeout must still be honoured: a
    // monotonic loop whose only pending work is a future timer sleeps to
    // the deadline here instead of spinning.  poll(2) with zero fds is a
    // portable sleep.
    if (timeout_ms != 0) (void)::poll(nullptr, 0, timeout_ms);
    return 0;
  }

#ifdef __linux__
  if (epoll_fd_ >= 0) {
    epoll_event events[64];
    const int ready = ::epoll_wait(epoll_fd_, events,
                                   static_cast<int>(std::size(events)),
                                   timeout_ms);
    if (ready < 0) {
      if (errno == EINTR) return 0;
      throw std::runtime_error{std::string{"EventLoop: epoll_wait: "} +
                               std::strerror(errno)};
    }
    std::size_t dispatched = 0;
    for (int i = 0; i < ready; ++i) {
      dispatched += dispatch_fd(events[i].data.fd);
    }
    return dispatched;
  }
#endif

  std::vector<pollfd> fds;
  fds.reserve(watchers_.size());
  for (const auto& [fd, callback] : watchers_) {
    fds.push_back(pollfd{fd, POLLIN, 0});
  }
  const int ready = ::poll(fds.data(), fds.size(), timeout_ms);
  if (ready < 0) {
    if (errno == EINTR) return 0;
    throw std::runtime_error{std::string{"EventLoop: poll: "} +
                             std::strerror(errno)};
  }
  std::size_t dispatched = 0;
  for (const pollfd& p : fds) {
    if ((p.revents & (POLLIN | POLLERR | POLLHUP)) == 0) continue;
    dispatched += dispatch_fd(p.fd);
  }
  return dispatched;
}

std::size_t EventLoop::pump() {
  std::size_t total = 0;
  for (;;) {
    const std::size_t n = poll_once(0);
    if (n == 0) return total;
    total += n;
  }
}

void EventLoop::run() {
  stopped_ = false;
  while (!stopped_) {
    if (mode_ == ClockMode::kVirtual) {
      // Drain I/O first so at most a handful of datagrams sit in kernel
      // buffers between timer firings — that bound is what makes virtual
      // runs immune to buffer overflow and hence deterministic.  The
      // drain happens before *every* jump, including to zero-delay and
      // already-past deadlines.
      if (poll_once(0) > 0) continue;
      if (timers_.empty()) return;  // idle: nothing readable, no deadlines.
      auto it = timers_.begin();
      virtual_now_s_ = std::max(virtual_now_s_, it->first.deadline_s);
      auto callback = std::move(it->second);
      timers_.erase(it);
      callback();
      continue;
    }

    // Monotonic mode: block in the kernel wait until the earliest
    // deadline.  A deadline already in the past yields a zero timeout —
    // one non-blocking drain, then the timer fires on this iteration.
    int timeout_ms = -1;
    if (!timers_.empty()) {
      const double wait_s = timers_.begin()->first.deadline_s - now_s();
      timeout_ms = wait_s <= 0.0
                       ? 0
                       : static_cast<int>(std::ceil(wait_s * 1e3));
    } else if (watchers_.empty()) {
      return;  // idle: no deadlines, nothing to watch.
    }
    poll_once(timeout_ms);
    // Fire everything that has come due.  The map is re-read after every
    // callback so a timer cancelled by an earlier one in the same due
    // batch never fires.
    while (!stopped_ && !timers_.empty() &&
           timers_.begin()->first.deadline_s <= now_s()) {
      auto it = timers_.begin();
      auto callback = std::move(it->second);
      timers_.erase(it);
      callback();
    }
  }
}

void EventLoop::stop() { stopped_ = true; }

}  // namespace tv::live
