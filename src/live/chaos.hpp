// Seeded chaos harness for the live layer.
//
// The simulation already has channel hostility (Gilbert-Elliott bursts,
// AP outage windows, FaultInjector bit damage); what it cannot express
// is the *socket surface* misbehaving: sendto() returning EAGAIN under
// memory pressure, short writes, EINTR storms interrupting receive
// loops, a receiver process stalling, a client dying mid-stream.  The
// ChaosPlan composes both families under one seed, and ChaosSocket
// wraps a UdpSocket so a session under test experiences them exactly
// where production code would — at the send/receive call sites — while
// staying byte-reproducible.
#pragma once

#include <cstdint>
#include <optional>
#include <string>
#include <vector>

#include "net/fault_injector.hpp"
#include "wifi/gilbert_elliott.hpp"
#include "live/event_loop.hpp"
#include "live/udp.hpp"
#include "util/rng.hpp"

namespace tv::live {

/// Everything that can go wrong in one run, declaratively.  Fault
/// probabilities are independent per call; all draws come from RNGs
/// forked off the single seed handed to the harness, so the same plan +
/// seed reproduces the same damage byte for byte.
struct ChaosPlan {
  // fd-level faults at the socket surface.
  double eagain_prob = 0.0;      ///< sendto reports EAGAIN; nothing sent.
  double short_send_prob = 0.0;  ///< kernel accepts a truncated datagram.
  double spurious_wakeup_prob = 0.0;  ///< receive returns empty (EINTR storm).

  // network faults on the data path (uplink).
  std::optional<net::FaultPlan> faults;  ///< bit damage / dup / truncate.
  std::optional<wifi::GilbertElliottParams> channel;  ///< bursty loss.
  std::vector<wifi::OutageWindow> outages;  ///< AP gone: nothing heard.

  // control-plane and application-level faults.
  double ctrl_drop_prob = 0.0;  ///< server's control replies vanish.
  double kill_prob = 0.0;       ///< session dies mid-stream, no goodbye.
  std::vector<wifi::OutageWindow> stalls;  ///< receiver stops processing.

  [[nodiscard]] bool any_egress_fault() const {
    return eagain_prob > 0.0 || short_send_prob > 0.0 || faults.has_value() ||
           channel.has_value() || !outages.empty();
  }

  void validate() const;  ///< throws std::invalid_argument on bad values.
};

/// Parse a chaos spec like
///   "eagain=0.2,short=0.05,spurious=0.1,drop=0.05,corrupt=0.02,
///    truncate=0.01,dup=0.02,loss=0.1,burst=4,ctrl-drop=0.3,kill=0.1,
///    outage=2:0.5;8:0.25,stall=4:1"
/// (whitespace-free; window lists use ';' between START:DURATION pairs).
/// Throws std::invalid_argument naming the offending key.
[[nodiscard]] ChaosPlan chaos_plan_from_string(const std::string& spec);

/// What the harness actually injected (per wrapped socket).
struct ChaosStats {
  std::size_t sends = 0;              ///< send attempts seen.
  std::size_t eagain_injected = 0;
  std::size_t short_sends_injected = 0;
  std::size_t spurious_wakeups = 0;
  std::size_t dropped = 0;            ///< outage + burst + fault drops.
  std::size_t damaged = 0;            ///< corrupt/truncate applied.
  std::size_t duplicated = 0;
};

/// Chaos wrapper over a UdpSocket's data path.  Egress faults are
/// decided before the kernel sees the datagram: an injected EAGAIN or
/// short write surfaces through the same SendOutcome the real kernel
/// would use, a drop is reported as kSent (channel loss is invisible to
/// a sender), and bit damage rewrites the bytes on the way out.
class ChaosSocket {
 public:
  /// The plan and socket must outlive the wrapper.
  ChaosSocket(EventLoop& loop, UdpSocket& socket, const ChaosPlan& plan,
              std::uint64_t seed);

  SendOutcome send_to(const Endpoint& to, std::span<const std::uint8_t> payload);
  [[nodiscard]] std::optional<Datagram> receive();

  [[nodiscard]] const ChaosStats& stats() const { return stats_; }
  [[nodiscard]] int fd() const noexcept { return socket_.fd(); }
  [[nodiscard]] UdpSocket& socket() noexcept { return socket_; }

 private:
  EventLoop& loop_;
  UdpSocket& socket_;
  const ChaosPlan& plan_;
  util::Rng egress_rng_;
  util::Rng ingress_rng_;
  std::optional<wifi::GilbertElliottChannel> channel_;
  std::optional<net::FaultInjector> injector_;
  ChaosStats stats_;
  std::vector<std::uint8_t> scratch_;  ///< reused per-send damage buffer.
};

}  // namespace tv::live
