#include "live/sender.hpp"

#include <algorithm>
#include <cmath>
#include <stdexcept>

#include "core/pipeline_stages.hpp"
#include "net/rtp.hpp"
#include "util/rng.hpp"

namespace tv::live {

void jitter_schedule(std::vector<double>& send_times_s, double stddev_s,
                     std::uint64_t seed) {
  if (stddev_s <= 0.0) return;
  // Its own derivation tag so the jitter stream never collides with the
  // service-model draws that produced the schedule.
  util::Rng rng{util::derive_seed(seed, 0x7177E4u)};
  for (double& t : send_times_s) {
    t += std::abs(rng.gaussian(0.0, stddev_s));
  }
}

double jitter_mean_delay_s(double stddev_s) {
  if (stddev_s <= 0.0) return 0.0;
  return stddev_s * std::sqrt(2.0 / 3.14159265358979323846);
}

std::vector<double> schedule_from_timings(
    const std::vector<core::PacketTiming>& timings) {
  std::vector<double> times;
  times.reserve(timings.size());
  for (const core::PacketTiming& t : timings) times.push_back(t.completion);
  return times;
}

PacedSchedule paced_schedule_from_service_model(
    const core::PipelineConfig& config,
    const std::vector<net::VideoPacket>& packets, std::uint64_t seed,
    core::TraceSink* trace) {
  util::Rng rng{seed};
  core::ProducerStage producer{config, trace};
  core::PolicyGateStage gate{config, trace};
  core::ServiceStage service{config, trace};
  PacedSchedule schedule;
  schedule.arrival_s.reserve(packets.size());
  schedule.send_s.reserve(packets.size());
  double clock = 0.0;
  for (std::size_t i = 0; i < packets.size(); ++i) {
    const net::VideoPacket& p = packets[i];
    const double arrival = producer.release(p, i, rng);
    clock = std::max(clock, arrival);
    // The gate only affects whether T_e is paid here; live payloads keep
    // whatever encryption the caller applied.
    const bool degraded = gate.degrade(p, i, arrival, clock);
    if (p.encrypted && !degraded) {
      clock += service.encrypt(p, i, clock, rng);
    }
    double backoff_total = 0.0;
    service.backoff(i, &clock, &backoff_total, rng);
    clock += service.transmit(i, service.transmission_mean_s(p), clock, rng);
    schedule.arrival_s.push_back(arrival);
    schedule.send_s.push_back(clock);
  }
  return schedule;
}

std::vector<double> schedule_from_service_model(
    const core::PipelineConfig& config,
    const std::vector<net::VideoPacket>& packets, std::uint64_t seed,
    core::TraceSink* trace) {
  return paced_schedule_from_service_model(config, packets, seed, trace)
      .send_s;
}

SenderSession::SenderSession(EventLoop& loop, UdpSocket& socket,
                             SenderConfig config,
                             const std::vector<net::VideoPacket>& packets,
                             std::vector<double> send_times,
                             std::function<void(const SenderReport&)> on_done)
    : loop_(loop),
      socket_(socket),
      config_(config),
      packets_(packets),
      send_times_(std::move(send_times)),
      on_done_(std::move(on_done)) {
  if (send_times_.size() != packets_.size()) {
    throw std::invalid_argument{"SenderSession: schedule size mismatch"};
  }
}

void SenderSession::start() {
  remaining_ = packets_.size();
  if (remaining_ == 0) {
    if (on_done_) on_done_(report_);
    return;
  }
  for (std::size_t i = 0; i < packets_.size(); ++i) {
    if (config_.trace != nullptr) {
      config_.trace->event({core::Stage::kProducer, "release",
                            static_cast<std::int64_t>(i), 0, send_times_[i], 0.0});
    }
    loop_.schedule_at(send_times_[i], [this, i] { send_packet(i); });
  }
}

void SenderSession::send_packet(std::size_t index) {
  const net::VideoPacket& p = packets_[index];
  // The packet's arena already holds the full wire image (header +
  // payload, marker synced by encrypt_selected).  Send it zero-copy when
  // the configured SSRC matches the pre-written one; otherwise copy once
  // and patch the 4 SSRC bytes in the scratch buffer.
  std::span<const std::uint8_t> wire = p.payload.wire();
  if (config_.ssrc != net::kDefaultSsrc &&
      wire.size() >= net::RtpHeader::kSize) {
    buffer_.assign(wire.begin(), wire.end());
    buffer_[8] = static_cast<std::uint8_t>(config_.ssrc >> 24);
    buffer_[9] = static_cast<std::uint8_t>((config_.ssrc >> 16) & 0xff);
    buffer_[10] = static_cast<std::uint8_t>((config_.ssrc >> 8) & 0xff);
    buffer_[11] = static_cast<std::uint8_t>(config_.ssrc & 0xff);
    wire = buffer_;
  }
  if (socket_.send_to(config_.destination, wire) != SendOutcome::kSent) {
    // Kernel buffer full, short write, or a queued ICMP refusal: retry
    // shortly (a real pacer would also back off).  The retry is a timer,
    // not a sleep, so virtual-clock runs stay deterministic.
    ++report_.kernel_retries;
    loop_.schedule_after(5e-4, [this, index] { send_packet(index); });
    return;
  }
  const double now = loop_.now_s();
  if (report_.packets_sent == 0) report_.first_send_s = now;
  report_.last_send_s = now;
  ++report_.packets_sent;
  report_.datagram_bytes_sent += wire.size();
  if (p.encrypted) ++report_.encrypted_packets;
  if (config_.trace != nullptr) {
    config_.trace->event({core::Stage::kTransport, "send",
                          static_cast<std::int64_t>(index), 0, now,
                          static_cast<double>(wire.size())});
  }
  if (--remaining_ == 0 && on_done_) on_done_(report_);
}

}  // namespace tv::live
