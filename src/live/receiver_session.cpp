#include "live/receiver_session.hpp"

namespace tv::live {

ReceiverSession::ReceiverSession(EventLoop& loop, UdpSocket& socket,
                                 ReceiverSessionConfig config)
    : loop_(loop),
      socket_(socket),
      config_(config),
      receiver_(config.receiver) {}

void ReceiverSession::start() {
  watching_ = true;
  last_arrival_s_ = loop_.now_s();
  loop_.watch_readable(socket_.fd(), [this] { on_readable(); });
  if (config_.idle_timeout_s > 0.0) arm_idle_deadline();
}

void ReceiverSession::on_readable() {
  // Drain everything queued: poll readability is level-triggered but one
  // callback per datagram would cost a poll round each.  The scratch
  // datagram's capacity is reused; an admitted packet moves the buffer
  // into the receiver (the one unavoidable ownership transfer), while a
  // rejected one costs no allocation at all.
  while (socket_.receive_into(scratch_)) {
    last_arrival_s_ = loop_.now_s();
    const auto bytes = static_cast<double>(scratch_.payload.size());
    receiver_.push(std::move(scratch_.payload));
    if (config_.trace != nullptr) {
      config_.trace->event({core::Stage::kTransport, "receive", -1, 0,
                            last_arrival_s_, bytes});
    }
  }
  auto ready = receiver_.drain_ready();
  received_.insert(received_.end(), std::make_move_iterator(ready.begin()),
                   std::make_move_iterator(ready.end()));
}

void ReceiverSession::arm_idle_deadline() {
  const double deadline = last_arrival_s_ + config_.idle_timeout_s;
  loop_.schedule_at(deadline, [this] {
    if (!watching_) return;
    if (loop_.now_s() - last_arrival_s_ >= config_.idle_timeout_s) {
      // Idle long enough: treat as end of stream and let run() wind down.
      watching_ = false;
      loop_.unwatch(socket_.fd());
      return;
    }
    arm_idle_deadline();  // datagrams arrived since; push the deadline out.
  });
}

std::vector<net::ReceivedPacket> ReceiverSession::finish() {
  if (watching_) {
    on_readable();  // pick up anything still queued in the kernel.
    loop_.unwatch(socket_.fd());
    watching_ = false;
  }
  auto tail = receiver_.flush();
  received_.insert(received_.end(), std::make_move_iterator(tail.begin()),
                   std::make_move_iterator(tail.end()));
  return std::move(received_);
}

}  // namespace tv::live
