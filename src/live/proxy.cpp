#include "live/proxy.hpp"

#include <utility>

#include "net/rtp.hpp"

namespace tv::live {

ImpairmentProxy::ImpairmentProxy(EventLoop& loop, UdpSocket& in_socket,
                                 UdpSocket& out_socket, ProxyConfig config,
                                 EavesdropperTap* tap)
    : loop_(loop),
      in_socket_(in_socket),
      out_socket_(out_socket),
      config_(std::move(config)),
      tap_(tap),
      reorder_rng_(util::derive_seed(config_.seed, 0x5e0de17, 0, 0)) {
  if (config_.faults) {
    config_.faults->validate();
    injector_.emplace(*config_.faults,
                      util::derive_seed(config_.seed, 0xfa017, 0, 0));
  }
  if (config_.receiver_channel) {
    channel_.emplace(*config_.receiver_channel,
                     util::derive_seed(config_.seed, 0xc4a1, 0, 0));
  }
}

void ImpairmentProxy::set_forward_mask(const StreamMap* map,
                                       std::vector<bool> mask) {
  mask_map_ = map;
  forward_mask_ = std::move(mask);
}

void ImpairmentProxy::start() {
  watching_ = true;
  last_arrival_s_ = loop_.now_s();
  loop_.watch_readable(in_socket_.fd(), [this] { on_readable(); });
  if (config_.idle_timeout_s > 0.0) arm_idle_deadline();
}

void ImpairmentProxy::on_readable() {
  while (in_socket_.receive_into(scratch_)) {
    last_arrival_s_ = loop_.now_s();
    handle(scratch_.payload);
  }
}

void ImpairmentProxy::handle(std::vector<std::uint8_t>& datagram) {
  ++report_.heard;
  const double now = loop_.now_s();
  // The tap overhears the air before the receiver's channel is decided:
  // a snooper can capture a packet the receiver loses, and vice versa.
  if (tap_ != nullptr) tap_->hear(now, datagram);

  bool deliver = true;
  bool matched_mask = false;
  if (mask_map_ != nullptr) {
    if (const auto header = net::RtpHeader::try_parse(datagram)) {
      const auto index = mask_map_->index_of(
          static_cast<std::int64_t>(header->sequence_number));
      if (index && *index < forward_mask_.size()) {
        deliver = forward_mask_[*index];
        matched_mask = true;
      }
    }
  }
  if (!matched_mask) {
    if (wifi::in_outage(config_.outages, now)) deliver = false;
    if (deliver && channel_ && channel_->lose_packet()) deliver = false;
  }
  if (!deliver) {
    ++report_.dropped;
    if (config_.trace != nullptr) {
      config_.trace->event({core::Stage::kChannel, "loss", -1, 0, now,
                            static_cast<double>(datagram.size())});
    }
    return;
  }

  // Fault plan (corruption/truncation/duplication/drop) via the shared
  // injector, in place on the receive buffer; replay-matched packets skip
  // it so deterministic loopback reproduces the in-memory delivery mask
  // bit for bit.
  std::size_t copies = 1;
  if (!matched_mask && injector_) {
    const net::AppliedFaults applied = injector_->apply_one(datagram);
    if (applied.dropped) {
      ++report_.dropped;
      return;
    }
    if (applied.duplicated) {
      ++report_.duplicated;
      copies = 2;
    }
  }

  for (std::size_t c = 0; c < copies; ++c) {
    // Proxy-side reordering: hold a datagram back and release it after
    // the next one passes — the singleton injector draws above cannot
    // express cross-datagram displacement.
    const bool hold = !matched_mask && config_.faults &&
                      config_.faults->reorder_prob > 0.0 && held_.empty() &&
                      reorder_rng_.bernoulli(config_.faults->reorder_prob);
    if (hold) {
      held_.push_back(datagram);
      continue;
    }
    forward(datagram);
    while (!held_.empty()) {
      ++report_.reordered;
      forward(held_.front());
      held_.pop_front();
    }
  }
}

void ImpairmentProxy::forward(std::span<const std::uint8_t> datagram) {
  if (out_socket_.send_to(config_.forward_to, datagram) !=
      SendOutcome::kSent) {
    ++report_.send_failures;
    return;
  }
  ++report_.forwarded;
  if (config_.trace != nullptr) {
    config_.trace->event({core::Stage::kChannel, "deliver", -1, 0,
                          loop_.now_s(),
                          static_cast<double>(datagram.size())});
  }
}

void ImpairmentProxy::flush() {
  while (!held_.empty()) {
    forward(held_.front());
    held_.pop_front();
  }
}

void ImpairmentProxy::arm_idle_deadline() {
  const double deadline = last_arrival_s_ + config_.idle_timeout_s;
  loop_.schedule_at(deadline, [this] {
    if (!watching_) return;
    if (loop_.now_s() - last_arrival_s_ >= config_.idle_timeout_s) {
      flush();
      watching_ = false;
      loop_.unwatch(in_socket_.fd());
      return;
    }
    arm_idle_deadline();
  });
}

}  // namespace tv::live
