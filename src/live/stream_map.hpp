// Stream metadata shared out-of-band between live roles.
//
// On the wire a live datagram is only RTP header + payload: fragment
// geometry (frame index, byte offset, fragment counts) is sender-side
// knowledge, exactly as an RTP receiver would learn it from a session
// description.  A StreamMap captures that geometry from the packetized
// stream so the receiver and eavesdropper can rebuild per-frame byte
// availability from whatever subset of datagrams actually arrived —
// with payload bytes and marker bits taken from the wire, not from the
// sender's copy.
#pragma once

#include <cstdint>
#include <optional>
#include <span>
#include <vector>

#include "crypto/block_cipher.hpp"
#include "net/packetizer.hpp"
#include "net/receiver.hpp"
#include "video/codec.hpp"

namespace tv::live {

/// Per-packet geometry, indexed by offset from the first sequence number.
struct StreamSlot {
  std::uint32_t timestamp = 0;
  int frame_index = 0;
  int fragment_index = 0;
  int fragment_count = 0;
  std::size_t byte_offset = 0;
  std::size_t payload_size = 0;  ///< wire payload incl. any pad trailer.
  std::size_t pad_bytes = 0;     ///< RFC 3550 pad trailer length.
  bool is_i_frame = false;
  bool encrypted = false;  ///< out-of-band copy of the encryption flag —
                           ///< the marker-hiding countermeasure's channel
                           ///< (wire markers stay clear; docs/adversary.md).
};

class StreamMap {
 public:
  /// Capture the geometry of a packetized (and policy-encrypted) stream.
  [[nodiscard]] static StreamMap of(
      const std::vector<net::VideoPacket>& packets, int frame_count);

  /// Map an extended sequence number (net::Receiver's unwrapped counter)
  /// to a packet index, or std::nullopt for sequences outside the stream.
  [[nodiscard]] std::optional<std::size_t> index_of(
      std::int64_t extended_sequence) const;

  [[nodiscard]] std::size_t packet_count() const { return slots_.size(); }
  [[nodiscard]] int frame_count() const { return frame_count_; }
  [[nodiscard]] const StreamSlot& slot(std::size_t index) const {
    return slots_[index];
  }

 private:
  std::vector<StreamSlot> slots_;
  std::uint16_t base_sequence_ = 0;
  int frame_count_ = 0;
};

/// Deterministic per-flow IV sized for the cipher — the same derivation
/// core::run_experiment uses, so a live sender and a live receiver that
/// share (algorithm, seed) agree on the keystream without any wire
/// exchange (the out-of-band key-setup assumption of Section 3).
[[nodiscard]] std::vector<std::uint8_t> flow_iv_for(
    const crypto::BlockCipher& cipher, std::uint64_t seed);

/// Rebuild per-frame byte availability from packets received off the wire.
///
/// Wire-faithful: payload bytes and the marker ("payload is encrypted")
/// bit come from the received datagrams; only geometry comes from the
/// map.  A null `cipher` models the eavesdropper — marked payloads are
/// erasures even though the bytes were overheard.  Received payloads are
/// truncated to the slot's size if a fault lengthened them; short
/// payloads (truncation faults) contribute only the bytes that arrived.
///
/// With `markers_hidden` (the marker-hiding countermeasure) the wire
/// marker bits are clear on every datagram; the encryption flag comes
/// from the map's out-of-band slots instead, so the legitimate receiver
/// still decrypts exactly the right payloads while the wire shows the
/// adversary nothing.  Pad trailers recorded in the map are stripped
/// after decryption either way.
[[nodiscard]] std::vector<video::ReceivedFrameData> reassemble_wire(
    const StreamMap& map, const std::vector<net::ReceivedPacket>& received,
    const crypto::BlockCipher* cipher, std::span<const std::uint8_t> flow_iv,
    bool markers_hidden = false);

}  // namespace tv::live
