#include "live/load.hpp"

#include <algorithm>
#include <deque>
#include <map>
#include <memory>
#include <stdexcept>

#include "crypto/suite.hpp"
#include "util/arena.hpp"
#include "live/stream_map.hpp"
#include "util/rng.hpp"
#include "video/quality.hpp"

namespace tv::live {

namespace {

double decode_psnr(const core::Workload& workload,
                   const std::vector<video::ReceivedFrameData>& frames) {
  const video::Decoder decoder{workload.codec};
  const video::FrameSequence decoded = decoder.decode_stream(
      workload.stream.width, workload.stream.height, frames);
  return video::sequence_psnr(workload.clip, decoded);
}

constexpr std::uint32_t kSsrcBase = 0x74561D00;

}  // namespace

LoadReport run_load(const LoadConfig& config) {
  if (config.sessions <= 0) {
    throw std::invalid_argument{"run_load: sessions <= 0"};
  }
  config.supervisor.validate();
  config.chaos.validate();

  // ---- One shared workload: every session uploads the same clip under
  // the same policy, so per-session results are comparable and the
  // expensive parts (encode, packetize, encrypt) are paid once.
  const core::Workload workload =
      core::build_workload(config.motion, config.gop_size, config.frames,
                           config.seed, config.pipeline.fps);
  util::Arena arena;
  std::vector<net::VideoPacket> wire =
      net::clone_packets(workload.packets, arena);
  const std::vector<bool> selected = config.policy.select(wire);
  const auto cipher =
      crypto::make_cipher_from_seed(config.policy.algorithm, config.seed);
  const auto flow_iv = flow_iv_for(*cipher, config.seed);
  net::encrypt_selected(wire, selected, *cipher, flow_iv);

  core::PipelineConfig pipeline = config.pipeline;
  pipeline.algorithm = config.policy.algorithm;
  core::validate(pipeline);

  const int frame_count = static_cast<int>(workload.stream.frames.size());
  const StreamMap map = StreamMap::of(wire, frame_count);

  LoadReport report;
  report.packet_count = wire.size();

  // ---- The fleet: one virtual-clock loop, one server, N clients.
  EventLoop loop{ClockMode::kVirtual};

  core::StampTraceSink server_trace{config.trace, nullptr, -1};
  ServerConfig server_config;
  server_config.max_sessions = config.max_sessions != 0
                                   ? config.max_sessions
                                   : static_cast<std::size_t>(config.sessions);
  server_config.overload_high = config.overload_high;
  server_config.overload_low = config.overload_low;
  server_config.idle_timeout_s = config.server_idle_timeout_s;
  server_config.ctrl_drop_prob = config.chaos.ctrl_drop_prob;
  server_config.stalls = config.chaos.stalls;
  server_config.seed = util::derive_seed(config.seed, 0x5e97e7, 0, 0);
  server_config.trace = config.trace != nullptr ? &server_trace : nullptr;
  Server server{loop, server_config};
  server.start();
  const Endpoint server_endpoint = server.endpoint();

  const std::size_t n = static_cast<std::size_t>(config.sessions);
  std::deque<core::StampTraceSink> stamps;  // stable addresses.
  std::vector<std::unique_ptr<ClientSession>> clients;
  clients.reserve(n);
  util::Rng kill_rng{util::derive_seed(config.seed, 0x4111, 0, 0)};

  for (std::size_t i = 0; i < n; ++i) {
    stamps.emplace_back(config.trace, nullptr, static_cast<int>(i));
    const double start_s =
        config.ramp_s * static_cast<double>(i) / static_cast<double>(n);
    ClientConfig client;
    client.server = server_endpoint;
    client.ssrc = kSsrcBase + static_cast<std::uint32_t>(i);
    client.supervisor = config.supervisor;
    client.policy = config.policy;
    client.chaos = config.chaos;
    client.seed = util::derive_seed(config.seed, 0xc11e7, i, 0);
    client.start_s = start_s;
    client.trace = config.trace != nullptr ? &stamps.back() : nullptr;

    PacedSchedule schedule = paced_schedule_from_service_model(
        pipeline, wire, util::derive_seed(config.seed, 0x9a3e, i, 0));
    const double stream_span =
        schedule.send_s.empty() ? 0.0 : schedule.send_s.back();

    clients.push_back(std::make_unique<ClientSession>(
        loop, std::move(client), wire, workload.packets,
        std::move(schedule)));

    // Chaos kills: a seeded coin per session, dying at a seeded fraction
    // of its own stream.  The drawing order is fixed (session index), so
    // the kill set is a pure function of the root seed.
    if (config.chaos.kill_prob > 0.0 &&
        kill_rng.bernoulli(config.chaos.kill_prob)) {
      const double at = start_s + kill_rng.uniform(0.1, 0.9) * stream_span;
      ClientSession* target = clients.back().get();
      loop.schedule_at(at, [target] { target->chaos_kill(); });
    }
  }
  for (auto& client : clients) client->start();

  loop.run();  // virtual clock: returns when every session settled.

  // ---- Accounting.
  report.duration_s = loop.now_s();
  auto server_sessions = server.finish();
  report.server = server.report();

  std::map<std::uint32_t, ServerSessionResult*> by_ssrc;
  for (auto& result : server_sessions) by_ssrc[result.ssrc] = &result;

  report.sessions.reserve(n);
  for (std::size_t i = 0; i < n; ++i) {
    SessionSummary summary;
    summary.index = static_cast<int>(i);
    summary.ssrc = kSsrcBase + static_cast<std::uint32_t>(i);
    summary.client = clients[i]->stats();
    summary.chaos = clients[i]->chaos_stats();
    const auto it = by_ssrc.find(summary.ssrc);
    if (it != by_ssrc.end()) {
      summary.server_state = it->second->state;
      summary.server_outcome = it->second->outcome;
      summary.delivered = it->second->packets.size();
      summary.delivered_fraction =
          wire.empty() ? 0.0
                       : static_cast<double>(summary.delivered) /
                             static_cast<double>(wire.size());
      if (config.evaluate_psnr && !it->second->packets.empty()) {
        summary.psnr_db = decode_psnr(
            workload, reassemble_wire(map, it->second->packets, cipher.get(),
                                      flow_iv));
      }
    }
    switch (summary.client.outcome) {
      case SessionOutcome::kCompleted:
        ++report.completed;
        break;
      case SessionOutcome::kRecovered:
        ++report.recovered;
        break;
      case SessionOutcome::kShed:
        ++report.shed;
        break;
      case SessionOutcome::kWatchdogKilled:
        ++report.watchdog_killed;
        break;
      case SessionOutcome::kPending:
        break;  // cannot happen after run(); kept for completeness.
    }
    report.total_send_retries += summary.client.send_retries;
    report.total_packets_shed += summary.client.packets_shed;
    report.total_packets_degraded += summary.client.packets_degraded;
    report.max_client_queue_depth = std::max(report.max_client_queue_depth,
                                             summary.client.max_queue_depth);
    report.sessions.push_back(std::move(summary));
  }
  return report;
}

}  // namespace tv::live
