// Multi-session live server: one socket, N supervised sessions.
//
// The server half of the ROADMAP-3 "many contending uploaders" story.
// One UDP socket receives everything; datagrams demux by kind (control
// magic vs RTP version byte) and then by SSRC to a per-session
// net::Receiver.  Admission is a token budget: at most `max_sessions`
// concurrent sessions, and an overload latch — entered when the summed
// reassembly backlog crosses a high watermark — rejects new HELLOs while
// existing sessions drain.  Every admitted session is watched by an idle
// watchdog so an uploader that dies mid-stream (chaos kill, battery,
// walked out of AP range) is reaped and classified instead of leaking a
// session slot forever.  Receiver-side chaos (processing stalls,
// control-reply loss) lives here too, so the harness can exercise the
// client's retry ladder end to end.
#pragma once

#include <cstdint>
#include <deque>
#include <map>
#include <vector>

#include "core/trace.hpp"
#include "live/event_loop.hpp"
#include "live/supervisor.hpp"
#include "live/udp.hpp"
#include "net/receiver.hpp"
#include "util/rng.hpp"
#include "wifi/gilbert_elliott.hpp"

namespace tv::live {

struct ServerConfig {
  Endpoint bind;  ///< default loopback, ephemeral port.
  std::size_t max_sessions = 64;  ///< admission token budget.

  /// Overload latch on the summed reassembly + stall backlog (datagrams):
  /// enter at `overload_high`, leave at `overload_low` (hysteresis so the
  /// latch does not flap at the boundary).
  std::size_t overload_high = 4096;
  std::size_t overload_low = 1024;

  double idle_timeout_s = 5.0;  ///< per-session silent-uploader watchdog.
  net::ReceiverConfig receiver;  ///< per-session reassembly knobs.

  // Receiver-side chaos (driven by the harness's seed):
  double ctrl_drop_prob = 0.0;  ///< control replies lost on the way out.
  std::vector<wifi::OutageWindow> stalls;  ///< processing stops; input queues.
  std::size_t stall_backlog_cap = 8192;    ///< deferred datagrams kept.

  std::uint64_t seed = 1;
  core::TraceSink* trace = nullptr;
};

struct ServerReport {
  std::size_t datagrams = 0;
  std::size_t hellos = 0;
  std::size_t admitted = 0;
  std::size_t rejected = 0;        ///< admission control said no.
  std::size_t closed = 0;          ///< orderly BYE.
  std::size_t watchdog_killed = 0; ///< reaped after idle_timeout_s.
  std::size_t unknown_ssrc = 0;    ///< unparsable or unadmitted data.
  std::size_t ctrl_drops = 0;      ///< chaos ate a control reply.
  std::size_t stall_deferred = 0;
  std::size_t stall_dropped = 0;   ///< stall backlog cap overflow.
  std::size_t max_backlog = 0;
  std::size_t overload_entries = 0;
};

/// Final accounting for one server-side session.
struct ServerSessionResult {
  std::uint32_t ssrc = 0;
  SessionState state = SessionState::kConnecting;
  SessionOutcome outcome = SessionOutcome::kPending;
  std::size_t expected_packets = 0;  ///< from HELLO.
  std::size_t reported_sent = 0;     ///< from BYE.
  net::ReceiverStats receiver;
  std::vector<net::ReceivedPacket> packets;  ///< in stream order.
};

class Server {
 public:
  Server(EventLoop& loop, ServerConfig config);

  /// Bind, watch, and arm the stall-window drains.  Call once.
  void start();

  [[nodiscard]] Endpoint endpoint() const;

  /// Flush every remaining receiver and return all sessions (by SSRC
  /// order).  Call after the loop finishes.
  [[nodiscard]] std::vector<ServerSessionResult> finish();

  [[nodiscard]] const ServerReport& report() const { return report_; }
  [[nodiscard]] std::size_t active_sessions() const { return active_; }
  [[nodiscard]] bool overloaded() const { return overloaded_; }

 private:
  struct Session {
    Endpoint peer;
    SessionState state = SessionState::kConnecting;
    SessionOutcome outcome = SessionOutcome::kPending;
    std::size_t expected_packets = 0;
    std::size_t reported_sent = 0;
    net::Receiver receiver;
    std::vector<net::ReceivedPacket> received;
    double last_heard_s = 0.0;
    bool watchdog_armed = false;
    EventLoop::TimerId watchdog = 0;

    explicit Session(const net::ReceiverConfig& config)
        : receiver(config) {}
  };

  void on_readable();
  void process(Datagram&& datagram);
  void handle_control(const ControlMsg& msg, const Endpoint& from);
  void handle_data(Datagram&& datagram);
  void send_control(ControlMsg::Type type, std::uint32_t ssrc,
                    const Endpoint& to);
  void close_session(std::uint32_t ssrc, Session& session, std::uint32_t aux);
  void arm_watchdog(std::uint32_t ssrc, Session& session);
  void drain_deferred();
  void update_backlog();
  [[nodiscard]] std::size_t backlog() const;
  void trace_event(const char* kind, std::uint32_t ssrc, double value);

  EventLoop& loop_;
  ServerConfig config_;
  UdpSocket socket_;
  util::Rng ctrl_rng_;
  std::map<std::uint32_t, Session> sessions_;
  std::deque<Datagram> deferred_;  ///< datagrams queued during a stall.
  std::size_t active_ = 0;
  bool overloaded_ = false;
  ServerReport report_;
};

}  // namespace tv::live
