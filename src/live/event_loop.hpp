// Single-threaded event loop with deadline timers, two clock modes and
// two poll backends.
//
// Every live role runs inside one of these: readable-fd callbacks drive
// datagram handling, deadline timers drive pacing and idle detection.
// There are no sleeps anywhere.  In monotonic mode the loop blocks in
// the kernel wait until the earliest deadline — real-time behaviour for
// LAN runs.  In virtual mode the clock is a number the loop advances to
// the next deadline whenever no descriptor is readable — the pinned
// loopback e2e test runs milliseconds of wall time for minutes of
// simulated transfer and is bit-reproducible because nothing ever waits
// on the wall clock.
//
// The kernel wait is epoll(7) where available (the multi-session server
// watches one descriptor per client session, and poll(2)'s O(n) scan per
// round is the wrong shape for hundreds of flows); poll(2) remains as a
// portable fallback and is selectable for tests.  Both backends are
// level-triggered and dispatch identically, so runs are byte-identical
// across backends.
#pragma once

#include <cstdint>
#include <functional>
#include <map>
#include <vector>

namespace tv::live {

enum class ClockMode {
  kVirtual,    ///< clock jumps to the next deadline; the wait never blocks.
  kMonotonic,  ///< CLOCK_MONOTONIC; the wait blocks until the next deadline.
};

enum class PollBackend {
  kAuto,   ///< epoll on Linux, poll elsewhere.
  kPoll,   ///< portable poll(2).
  kEpoll,  ///< epoll(7); construction throws where unsupported.
};

class EventLoop {
 public:
  using TimerId = std::uint64_t;

  explicit EventLoop(ClockMode mode, PollBackend backend = PollBackend::kAuto);
  ~EventLoop();
  EventLoop(const EventLoop&) = delete;
  EventLoop& operator=(const EventLoop&) = delete;

  /// The backend actually in use (kAuto resolved at construction).
  [[nodiscard]] PollBackend backend() const;

  /// Current time in seconds.  Virtual mode starts at 0; monotonic mode
  /// is relative to loop construction.
  [[nodiscard]] double now_s() const;

  /// Invoke `on_readable` whenever `fd` has data.  One watcher per fd.
  void watch_readable(int fd, std::function<void()> on_readable);
  void unwatch(int fd);

  /// Schedule `callback` at an absolute loop time (seconds).  Timers at
  /// equal deadlines fire in scheduling order.  Past deadlines fire on
  /// the next iteration without busy-waiting.
  TimerId schedule_at(double deadline_s, std::function<void()> callback);
  TimerId schedule_after(double delay_s, std::function<void()> callback);
  void cancel(TimerId id);

  /// Run until stop() — or until the loop is idle (no timers pending and
  /// no readable descriptor), which is how deterministic runs end.
  void run();

  /// Ask run() to return after the current dispatch.
  void stop();

  /// Drain everything currently readable without advancing the clock or
  /// firing timers.  Returns the number of callbacks dispatched.
  std::size_t pump();

  /// Number of kernel waits performed so far.  A monotonic run that
  /// sleeps to its deadlines performs a handful; a busy-spinning one
  /// performs thousands — the regression tests pin the former.
  [[nodiscard]] std::size_t poll_rounds() const { return poll_rounds_; }

 private:
  struct TimerKey {
    double deadline_s;
    TimerId id;
    bool operator<(const TimerKey& other) const {
      if (deadline_s != other.deadline_s) {
        return deadline_s < other.deadline_s;
      }
      return id < other.id;
    }
  };

  /// Wait for watched fds (via the active backend) and dispatch ready
  /// callbacks.  `timeout_ms` < 0 blocks indefinitely.  With no watchers
  /// the call still honours the timeout as a plain sleep.  Returns the
  /// number of callbacks dispatched.
  std::size_t poll_once(int timeout_ms);
  std::size_t dispatch_fd(int fd);

  [[nodiscard]] double monotonic_now_s() const;

  ClockMode mode_;
  double virtual_now_s_ = 0.0;
  double monotonic_origin_s_ = 0.0;
  bool stopped_ = false;
  TimerId next_timer_id_ = 1;
  std::size_t poll_rounds_ = 0;
  int epoll_fd_ = -1;  ///< -1 when the poll(2) backend is active.
  std::map<TimerKey, std::function<void()>> timers_;
  std::vector<std::pair<int, std::function<void()>>> watchers_;
};

}  // namespace tv::live
