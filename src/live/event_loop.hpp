// Single-threaded poll(2) event loop with deadline timers and two clock
// modes.
//
// Every live role runs inside one of these: readable-fd callbacks drive
// datagram handling, deadline timers drive pacing and idle detection.
// There are no sleeps anywhere.  In monotonic mode the loop blocks in
// poll() until the earliest deadline — real-time behaviour for LAN runs.
// In virtual mode the clock is a number the loop advances to the next
// deadline whenever no descriptor is readable — the pinned loopback e2e
// test runs milliseconds of wall time for minutes of simulated transfer
// and is bit-reproducible because nothing ever waits on the wall clock.
#pragma once

#include <cstdint>
#include <functional>
#include <map>
#include <vector>

namespace tv::live {

enum class ClockMode {
  kVirtual,    ///< clock jumps to the next deadline; poll never blocks.
  kMonotonic,  ///< CLOCK_MONOTONIC; poll blocks until the next deadline.
};

class EventLoop {
 public:
  using TimerId = std::uint64_t;

  explicit EventLoop(ClockMode mode);

  /// Current time in seconds.  Virtual mode starts at 0; monotonic mode
  /// is relative to loop construction.
  [[nodiscard]] double now_s() const;

  /// Invoke `on_readable` whenever `fd` has data.  One watcher per fd.
  void watch_readable(int fd, std::function<void()> on_readable);
  void unwatch(int fd);

  /// Schedule `callback` at an absolute loop time (seconds).  Timers at
  /// equal deadlines fire in scheduling order.  Past deadlines fire on
  /// the next iteration.
  TimerId schedule_at(double deadline_s, std::function<void()> callback);
  TimerId schedule_after(double delay_s, std::function<void()> callback);
  void cancel(TimerId id);

  /// Run until stop() — or until the loop is idle (no timers pending and
  /// no readable descriptor), which is how deterministic runs end.
  void run();

  /// Ask run() to return after the current dispatch.
  void stop();

  /// Drain everything currently readable without advancing the clock or
  /// firing timers.  Returns the number of callbacks dispatched.
  std::size_t pump();

 private:
  struct TimerKey {
    double deadline_s;
    TimerId id;
    bool operator<(const TimerKey& other) const {
      if (deadline_s != other.deadline_s) {
        return deadline_s < other.deadline_s;
      }
      return id < other.id;
    }
  };

  /// Poll all watched fds and dispatch ready callbacks.  `timeout_ms` < 0
  /// blocks indefinitely.  Returns the number of callbacks dispatched.
  std::size_t poll_once(int timeout_ms);

  [[nodiscard]] double monotonic_now_s() const;

  ClockMode mode_;
  double virtual_now_s_ = 0.0;
  double monotonic_origin_s_ = 0.0;
  bool stopped_ = false;
  TimerId next_timer_id_ = 1;
  std::map<TimerKey, std::function<void()>> timers_;
  std::vector<std::pair<int, std::function<void()>>> watchers_;
};

}  // namespace tv::live
