// Wire-level eavesdropper tap: what the rooted phone with tcpdump hears.
//
// The tap sits inside the impairment proxy — the "air" of the testbed —
// and overhears datagrams before the proxy decides the legitimate
// receiver's fate, exactly the Section 3 threat model: an attacker on
// the same open WiFi hears the transmission, not the delivery.  It
// records raw captures (writable as a classic pcap via net/pcap), and
// scores itself by reassembling without the key: payloads whose RTP
// marker bit is set are erasures no matter how cleanly they were heard.
#pragma once

#include <cstdint>
#include <optional>
#include <span>
#include <string>
#include <vector>

#include "core/trace.hpp"
#include "live/stream_map.hpp"
#include "net/pcap.hpp"
#include "net/receiver.hpp"
#include "wifi/gilbert_elliott.hpp"

namespace tv::live {

struct TapReport {
  std::size_t heard = 0;     ///< datagrams presented to the tap.
  std::size_t captured = 0;  ///< datagrams the tap's own channel let through.
};

/// Capture policy: everything, a replayed per-packet mask (deterministic
/// loopback), or the tap's own Gilbert-Elliott fading chain.
class EavesdropperTap {
 public:
  explicit EavesdropperTap(core::TraceSink* trace = nullptr)
      : trace_(trace) {}

  /// Replay mode: capture exactly the packets whose stream index is set
  /// in `mask` (an in-memory transfer's eavesdropper_captured).  Needs
  /// the map to turn wire sequences into stream indices.
  void set_capture_mask(const StreamMap* map, std::vector<bool> mask);

  /// Stochastic mode: the tap fades independently of the receiver.
  void set_channel(const wifi::GilbertElliottParams& params,
                   std::uint64_t seed);

  /// Present one overheard datagram to the tap at `time_s`.  The tap
  /// copies the bytes only when it actually captures them.
  void hear(double time_s, std::span<const std::uint8_t> datagram);

  /// Write everything captured as a classic pcap file.  Returns the
  /// writer's clamp count (suspect-capture flag).
  std::size_t write_pcap(const std::string& path) const;

  /// Score the capture: reassemble without the key (marked payloads are
  /// erasures) into per-frame byte availability.
  [[nodiscard]] std::vector<video::ReceivedFrameData> reassemble(
      const StreamMap& map) const;

  [[nodiscard]] const TapReport& report() const { return report_; }
  [[nodiscard]] const std::vector<net::RawCapture>& captures() const {
    return captures_;
  }

 private:
  core::TraceSink* trace_;
  const StreamMap* mask_map_ = nullptr;
  std::vector<bool> capture_mask_;
  std::optional<wifi::GilbertElliottChannel> channel_;
  std::vector<net::RawCapture> captures_;
  TapReport report_;
};

}  // namespace tv::live
