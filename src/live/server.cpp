#include "live/server.hpp"

#include <algorithm>
#include <stdexcept>

#include "net/rtp.hpp"

namespace tv::live {

Server::Server(EventLoop& loop, ServerConfig config)
    : loop_(loop),
      config_(std::move(config)),
      ctrl_rng_{util::derive_seed(config_.seed, 0x5e97e7, 0, 0)} {
  if (config_.overload_low > config_.overload_high) {
    throw std::invalid_argument{"Server: overload_low > overload_high"};
  }
  if (config_.max_sessions == 0) {
    throw std::invalid_argument{"Server: max_sessions == 0"};
  }
}

void Server::start() {
  socket_.bind(config_.bind);
  socket_.set_receive_buffer(1 << 22);
  loop_.watch_readable(socket_.fd(), [this] { on_readable(); });
  // One drain per stall window end: everything deferred while the
  // receiver was wedged is processed the instant it recovers.
  for (const wifi::OutageWindow& stall : config_.stalls) {
    loop_.schedule_at(stall.end_s(), [this] { drain_deferred(); });
  }
}

Endpoint Server::endpoint() const { return socket_.local_endpoint(); }

void Server::on_readable() {
  while (auto datagram = socket_.receive()) {
    ++report_.datagrams;
    if (wifi::in_outage(config_.stalls, loop_.now_s())) {
      // Receiver stall: the kernel socket is still drained (so chaos
      // runs stay deterministic instead of racing the kernel buffer)
      // but processing is deferred to the window end, bounded by the
      // stall backlog cap with drop-oldest shedding.
      if (deferred_.size() >= config_.stall_backlog_cap) {
        deferred_.pop_front();
        ++report_.stall_dropped;
        trace_event("srv_stall_shed", 0, static_cast<double>(deferred_.size()));
      }
      deferred_.push_back(std::move(*datagram));
      ++report_.stall_deferred;
      update_backlog();
      continue;
    }
    process(std::move(*datagram));
  }
}

void Server::drain_deferred() {
  while (!deferred_.empty()) {
    Datagram datagram = std::move(deferred_.front());
    deferred_.pop_front();
    process(std::move(datagram));
  }
  update_backlog();
}

void Server::process(Datagram&& datagram) {
  if (const auto msg = ControlMsg::try_parse(datagram.payload)) {
    handle_control(*msg, datagram.from);
    return;
  }
  handle_data(std::move(datagram));
  update_backlog();
}

void Server::handle_control(const ControlMsg& msg, const Endpoint& from) {
  switch (msg.type) {
    case ControlMsg::Type::kHello: {
      ++report_.hellos;
      const auto it = sessions_.find(msg.ssrc);
      if (it != sessions_.end()) {
        // Retransmitted HELLO (our ACCEPT was lost): answer idempotently
        // as long as the session is not dead.
        if (it->second.state == SessionState::kConnecting ||
            it->second.state == SessionState::kStreaming) {
          send_control(ControlMsg::Type::kAccept, msg.ssrc, from);
        }
        return;
      }
      if (active_ >= config_.max_sessions || overloaded_) {
        ++report_.rejected;
        trace_event("srv_reject", msg.ssrc,
                    static_cast<double>(active_));
        send_control(ControlMsg::Type::kReject, msg.ssrc, from);
        return;
      }
      const auto slot =
          sessions_.emplace(msg.ssrc, Session{config_.receiver}).first;
      Session& session = slot->second;
      session.peer = from;
      session.expected_packets = msg.aux;
      session.last_heard_s = loop_.now_s();
      ++active_;
      ++report_.admitted;
      trace_event("srv_admit", msg.ssrc, static_cast<double>(active_));
      arm_watchdog(msg.ssrc, session);
      send_control(ControlMsg::Type::kAccept, msg.ssrc, from);
      return;
    }
    case ControlMsg::Type::kBye: {
      const auto it = sessions_.find(msg.ssrc);
      if (it == sessions_.end()) return;
      Session& session = it->second;
      session.last_heard_s = loop_.now_s();
      if (session.state == SessionState::kClosed) {
        // Duplicate BYE: our ACK was lost; just re-ACK.
        send_control(ControlMsg::Type::kByeAck, msg.ssrc, from);
        return;
      }
      if (session.state == SessionState::kConnecting ||
          session.state == SessionState::kStreaming) {
        close_session(msg.ssrc, session, msg.aux);
        send_control(ControlMsg::Type::kByeAck, msg.ssrc, from);
      }
      return;
    }
    case ControlMsg::Type::kAccept:
    case ControlMsg::Type::kReject:
    case ControlMsg::Type::kByeAck:
      return;  // client-bound; a client never sends these.
  }
}

void Server::handle_data(Datagram&& datagram) {
  const auto header = net::RtpHeader::try_parse(datagram.payload);
  if (!header) {
    // Unparsable datagram: without an SSRC there is no session to
    // charge it to.  Count and move on — hostile input must never
    // throw (net::Receiver's contract, kept at the demux layer too).
    ++report_.unknown_ssrc;
    return;
  }
  const auto it = sessions_.find(header->ssrc);
  if (it == sessions_.end()) {
    ++report_.unknown_ssrc;
    return;
  }
  Session& session = it->second;
  if (session.state == SessionState::kClosed ||
      session.state == SessionState::kFailed) {
    return;  // stragglers after close are not an error.
  }
  if (session.state == SessionState::kConnecting) {
    session.state = SessionState::kStreaming;
    trace_event("srv_streaming", header->ssrc, 0.0);
  }
  session.last_heard_s = loop_.now_s();
  session.receiver.push(datagram.payload);
  auto ready = session.receiver.drain_ready();
  session.received.insert(session.received.end(),
                          std::make_move_iterator(ready.begin()),
                          std::make_move_iterator(ready.end()));
}

void Server::close_session(std::uint32_t ssrc, Session& session,
                           std::uint32_t aux) {
  session.state = SessionState::kDraining;
  auto rest = session.receiver.flush();
  session.received.insert(session.received.end(),
                          std::make_move_iterator(rest.begin()),
                          std::make_move_iterator(rest.end()));
  session.reported_sent = aux;
  session.state = SessionState::kClosed;
  session.outcome = SessionOutcome::kCompleted;
  if (session.watchdog_armed) {
    loop_.cancel(session.watchdog);
    session.watchdog_armed = false;
  }
  --active_;
  ++report_.closed;
  trace_event("srv_bye", ssrc, static_cast<double>(session.received.size()));
  update_backlog();
}

void Server::arm_watchdog(std::uint32_t ssrc, Session& session) {
  session.watchdog_armed = true;
  session.watchdog = loop_.schedule_at(
      session.last_heard_s + config_.idle_timeout_s, [this, ssrc] {
        const auto it = sessions_.find(ssrc);
        if (it == sessions_.end()) return;
        Session& s = it->second;
        s.watchdog_armed = false;
        if (s.state == SessionState::kClosed ||
            s.state == SessionState::kFailed) {
          return;
        }
        // Compare against the recomputed deadline, never `now - last_heard`:
        // the virtual clock jumps to exactly `last_heard + idle_timeout`,
        // and in floating point `(a + b) - a` can round below `b`, which
        // would re-arm the watchdog at an already-past deadline and spin
        // the loop forever at a frozen virtual time.
        const double deadline = s.last_heard_s + config_.idle_timeout_s;
        if (deadline <= loop_.now_s()) {
          // Silent uploader: reap it so the admission token comes back.
          auto rest = s.receiver.flush();
          s.received.insert(s.received.end(),
                            std::make_move_iterator(rest.begin()),
                            std::make_move_iterator(rest.end()));
          s.state = SessionState::kFailed;
          s.outcome = SessionOutcome::kWatchdogKilled;
          --active_;
          ++report_.watchdog_killed;
          trace_event("srv_watchdog_killed", ssrc,
                      loop_.now_s() - s.last_heard_s);
          update_backlog();
          return;
        }
        arm_watchdog(ssrc, s);  // heard from since; roll the deadline.
      });
}

void Server::send_control(ControlMsg::Type type, std::uint32_t ssrc,
                          const Endpoint& to) {
  if (config_.ctrl_drop_prob > 0.0 &&
      ctrl_rng_.bernoulli(config_.ctrl_drop_prob)) {
    ++report_.ctrl_drops;
    return;  // chaos ate the reply; the client's retry ladder covers it.
  }
  ControlMsg msg;
  msg.type = type;
  msg.ssrc = ssrc;
  (void)socket_.send_to(to, msg.serialize());
}

std::size_t Server::backlog() const {
  std::size_t total = deferred_.size();
  for (const auto& [ssrc, session] : sessions_) {
    total += session.receiver.buffered();
  }
  return total;
}

void Server::update_backlog() {
  const std::size_t depth = backlog();
  report_.max_backlog = std::max(report_.max_backlog, depth);
  if (!overloaded_ && depth >= config_.overload_high) {
    overloaded_ = true;
    ++report_.overload_entries;
    trace_event("srv_overload_enter", 0, static_cast<double>(depth));
  } else if (overloaded_ && depth <= config_.overload_low) {
    overloaded_ = false;
    trace_event("srv_overload_exit", 0, static_cast<double>(depth));
  }
}

std::vector<ServerSessionResult> Server::finish() {
  drain_deferred();
  std::vector<ServerSessionResult> results;
  results.reserve(sessions_.size());
  for (auto& [ssrc, session] : sessions_) {
    if (session.state == SessionState::kConnecting ||
        session.state == SessionState::kStreaming) {
      auto rest = session.receiver.flush();
      session.received.insert(session.received.end(),
                              std::make_move_iterator(rest.begin()),
                              std::make_move_iterator(rest.end()));
    }
    ServerSessionResult result;
    result.ssrc = ssrc;
    result.state = session.state;
    result.outcome = session.outcome;
    result.expected_packets = session.expected_packets;
    result.reported_sent = session.reported_sent;
    result.receiver = session.receiver.stats();
    result.packets = std::move(session.received);
    results.push_back(std::move(result));
  }
  return results;
}

void Server::trace_event(const char* kind, std::uint32_t ssrc, double value) {
  if (config_.trace == nullptr) return;
  config_.trace->event({core::Stage::kTransport, kind,
                        static_cast<std::int64_t>(ssrc), 0, loop_.now_s(),
                        value});
}

}  // namespace tv::live
