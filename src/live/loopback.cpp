#include "live/loopback.hpp"

#include <cstring>
#include <stdexcept>
#include <utility>
#include <vector>

#include "core/calibration.hpp"
#include "core/predictor.hpp"
#include "crypto/suite.hpp"
#include "live/event_loop.hpp"
#include "live/receiver_session.hpp"
#include "live/stream_map.hpp"
#include "util/rng.hpp"
#include "video/quality.hpp"

namespace tv::live {

namespace {

double decode_psnr(const core::Workload& workload,
                   const std::vector<video::ReceivedFrameData>& frames) {
  const video::Decoder decoder{workload.codec};
  const video::FrameSequence decoded = decoder.decode_stream(
      workload.stream.width, workload.stream.height, frames);
  return video::sequence_psnr(workload.clip, decoded);
}

}  // namespace

LoopbackReport run_loopback(const LoopbackConfig& config) {
  // ---- Build the workload and the wire stream (policy + encryption).
  const core::Workload workload =
      core::build_workload(config.motion, config.gop_size, config.frames,
                           config.seed, config.pipeline.fps);
  util::Arena arena;
  std::vector<net::VideoPacket> packets =
      net::clone_packets(workload.packets, arena);
  // Shaping, step 1: pad before encryption so the pad trailer — and with
  // it the true payload length — ends up inside the ciphertext.  The
  // padded sizes then flow through simulate_transfer, so the knob's
  // delay/energy price is charged by the same models as everything else.
  config.shaping.validate();
  net::pad_to_bucket(packets, arena, config.shaping.pad_bucket_bytes);
  const std::vector<bool> selected = config.policy.select(packets);
  const auto cipher =
      crypto::make_cipher_from_seed(config.policy.algorithm, config.seed);
  const auto flow_iv = flow_iv_for(*cipher, config.seed);
  net::encrypt_selected(packets, selected, *cipher, flow_iv);

  core::PipelineConfig pipeline = config.pipeline;
  pipeline.algorithm = config.policy.algorithm;
  core::validate(pipeline);

  // ---- In-memory twin: the service-law transfer that paces the sender
  // and (in replay mode) decides every delivery.
  const core::TransferResult transfer =
      core::simulate_transfer(pipeline, packets, config.seed, config.trace);

  // Queue-pressure degradation shipped some packets in clear: the wire
  // stream must reflect that (payload back to plaintext, marker off).
  for (std::size_t i = 0; i < packets.size(); ++i) {
    if (i < transfer.degraded_cleartext.size() &&
        transfer.degraded_cleartext[i]) {
      // Restore the plaintext bytes into this clone's wire region and
      // clear the marker bit there too — the wire image is what the
      // sender transmits.  Padded clones are larger than the pristine
      // originals: restore the content prefix, then re-write the pad
      // trailer the encryption pass scrambled.
      std::memcpy(packets[i].payload.data(),
                  workload.packets[i].payload.data(),
                  packets[i].content_size());
      if (packets[i].pad_bytes > 0) {
        (void)net::rtp_write_pad_trailer(packets[i].payload,
                                         packets[i].content_size());
      }
      packets[i].encrypted = false;
      packets[i].payload.set_marker(false);
    }
  }
  // Shaping, step 2: hide the wire markers.  Metadata keeps the truth —
  // the StreamMap built below carries it out-of-band to the receiver.
  if (config.shaping.hide_markers) net::hide_wire_markers(packets);

  LoopbackReport report;
  report.packet_count = packets.size();
  report.encryption = net::encryption_stats(packets);
  report.duration_s = transfer.duration_s;
  for (const net::VideoPacket& p : packets) {
    report.pad_overhead_bytes += p.pad_bytes;
  }
  report.jitter_mean_delay_s =
      jitter_mean_delay_s(config.shaping.jitter_stddev_s);

  const int frame_count = static_cast<int>(workload.stream.frames.size());

  // ---- In-memory reference PSNRs over the same wire packets.
  report.memory_receiver_psnr_db = decode_psnr(
      workload, net::reassemble(packets, transfer.receiver_delivered,
                                frame_count, cipher.get(), flow_iv));
  report.memory_eavesdropper_psnr_db = decode_psnr(
      workload, net::reassemble(packets, transfer.eavesdropper_captured,
                                frame_count, nullptr, flow_iv));

  // ---- Analytic predictions (Section 4.4 distortion model).
  {
    const core::TrafficCalibration traffic = core::calibrate_traffic(
        packets, transfer.timings, workload.fps, /*sample_packets=*/0);
    core::DistortionInputs di;
    di.gop_size = workload.codec.gop_size;
    di.n_gops = frame_count / workload.codec.gop_size;
    di.sensitivity_fraction = core::default_sensitivity(config.motion);
    di.base_mse = workload.base_mse;
    di.null_mse = workload.null_mse;
    di.inter = workload.inter;
    const double p_s_rx = 1.0 - pipeline.receiver_loss_prob;
    const double p_s_ev = 1.0 - pipeline.eavesdropper_loss_prob;
    report.predicted_receiver_psnr_db =
        core::predict_distortion(di, traffic, p_s_rx, 0.0, 0.0).psnr_db;
    report.predicted_eavesdropper_psnr_db =
        core::predict_distortion(di, traffic, p_s_ev,
                                 config.policy.i_packet_fraction(),
                                 config.policy.p_packet_fraction())
            .psnr_db;
  }

  // ---- The live testbed: three roles on one virtual-clock loop.
  EventLoop loop{ClockMode::kVirtual};
  const Endpoint loopback{};  // 127.0.0.1:0 — kernel picks the ports.

  UdpSocket sender_socket;
  sender_socket.bind(loopback);
  UdpSocket proxy_socket;
  proxy_socket.bind(loopback);
  proxy_socket.set_receive_buffer(1 << 20);
  UdpSocket receiver_socket;
  receiver_socket.bind(loopback);
  receiver_socket.set_receive_buffer(1 << 20);

  const StreamMap map = StreamMap::of(packets, frame_count);

  EavesdropperTap tap{config.trace};
  if (!config.stochastic) {
    tap.set_capture_mask(&map, transfer.eavesdropper_captured);
  } else if (config.eavesdropper_channel) {
    tap.set_channel(*config.eavesdropper_channel,
                    util::derive_seed(config.seed, 0xeaef, 0, 0));
  }

  ProxyConfig proxy_config;
  proxy_config.forward_to = receiver_socket.local_endpoint();
  proxy_config.seed = config.seed;
  proxy_config.trace = config.trace;
  if (config.stochastic) {
    proxy_config.faults = config.faults;
    if (pipeline.channel) {
      proxy_config.receiver_channel = pipeline.channel->receiver;
      proxy_config.outages = pipeline.channel->outages;
    }
  }
  ImpairmentProxy proxy{loop, proxy_socket, proxy_socket, proxy_config,
                        &tap};
  if (!config.stochastic) {
    proxy.set_forward_mask(&map, transfer.receiver_delivered);
  }

  ReceiverSessionConfig rx_config;
  rx_config.trace = config.trace;
  ReceiverSession receiver{loop, receiver_socket, rx_config};

  SenderConfig sender_config;
  sender_config.destination = proxy_socket.local_endpoint();
  sender_config.trace = config.trace;
  // Shaping, step 3: seeded half-normal jitter on the send schedule.
  std::vector<double> send_times = schedule_from_timings(transfer.timings);
  jitter_schedule(send_times, config.shaping.jitter_stddev_s, config.seed);
  SenderSession sender{loop,    sender_socket,
                       sender_config, packets,
                       std::move(send_times)};

  proxy.start();
  receiver.start();
  sender.start();
  loop.run();  // virtual clock: returns when idle — no sleeps anywhere.
  proxy.flush();
  (void)loop.pump();  // drain anything the flush put on the wire.

  const std::vector<net::ReceivedPacket> received = receiver.finish();
  report.live_receiver_psnr_db = decode_psnr(
      workload, reassemble_wire(map, received, cipher.get(), flow_iv,
                                config.shaping.hide_markers));
  report.live_eavesdropper_psnr_db =
      decode_psnr(workload, tap.reassemble(map));

  report.sender = sender.report();
  report.proxy = proxy.report();
  report.receiver = receiver.stats();
  report.tap = tap.report();
  if (!config.pcap_path.empty()) {
    report.pcap_clamped = tap.write_pcap(config.pcap_path);
  }
  return report;
}

}  // namespace tv::live
