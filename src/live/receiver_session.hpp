// Live receiver session: datagrams off a UDP socket into net::Receiver.
//
// The receiver is the phone's peer from Fig. 3: it hears whatever the
// channel (here, the impairment proxy) delivered, heals reordering and
// duplicates, and — once the stream ends — reassembles frames, decrypting
// every payload whose RTP marker bit says it was encrypted.  End of
// stream is a rolling idle deadline (real-time runs) or loop quiescence
// (virtual-clock runs); there is no in-band terminator, matching plain
// RTP practice.
#pragma once

#include <vector>

#include "core/trace.hpp"
#include "live/event_loop.hpp"
#include "live/udp.hpp"
#include "net/receiver.hpp"

namespace tv::live {

struct ReceiverSessionConfig {
  net::ReceiverConfig receiver;
  core::TraceSink* trace = nullptr;  ///< optional; zero overhead when null.
  /// When > 0: after this long with no datagrams, the session unwatches
  /// its socket and stops the loop — the real-time end-of-stream signal.
  double idle_timeout_s = 0.0;
};

class ReceiverSession {
 public:
  ReceiverSession(EventLoop& loop, UdpSocket& socket,
                  ReceiverSessionConfig config);

  /// Start watching the socket (and arm the idle deadline if configured).
  void start();

  /// End of stream: stop watching, flush the reorder buffer, and return
  /// every accepted packet in stream order.
  [[nodiscard]] std::vector<net::ReceivedPacket> finish();

  [[nodiscard]] const net::ReceiverStats& stats() const {
    return receiver_.stats();
  }
  [[nodiscard]] double last_arrival_s() const { return last_arrival_s_; }

 private:
  void on_readable();
  void arm_idle_deadline();

  EventLoop& loop_;
  UdpSocket& socket_;
  ReceiverSessionConfig config_;
  net::Receiver receiver_;
  std::vector<net::ReceivedPacket> received_;
  Datagram scratch_;  ///< pooled receive buffer; capacity reused.
  double last_arrival_s_ = 0.0;
  bool watching_ = false;
};

}  // namespace tv::live
