// Session supervision for the live layer: a tiny control protocol, the
// per-session state machine, and the supervised uploading client.
//
// The paper's testbed was one phone and one server on a quiet WLAN; an
// open network is hundreds of contending uploaders, each of which can
// stall, die, or be refused.  Supervision is the recovery story: every
// session walks connecting -> streaming -> draining -> closed/failed
// under a watchdog, socket errors are retried with capped exponential
// backoff plus jitter, a bounded send queue sheds oldest-first under
// pressure, and sustained pressure steps the encryption policy down the
// paper's degradation ladder (policy::degrade_step) instead of letting
// latency grow without bound.  Every decision is visible through
// core::TraceSink events so a chaos run can be audited offline.
#pragma once

#include <cstdint>
#include <deque>
#include <functional>
#include <optional>
#include <span>
#include <vector>

#include "core/trace.hpp"
#include "live/chaos.hpp"
#include "live/event_loop.hpp"
#include "live/sender.hpp"
#include "live/udp.hpp"
#include "net/packetizer.hpp"
#include "policy/policy.hpp"
#include "util/rng.hpp"

namespace tv::live {

/// Control-plane message, distinguishable from RTP by its first byte
/// ('T' = 0x54; RTP version 2 always starts 0x80).  Wire layout:
/// "TVC1" + type + ssrc (BE) + aux (BE), 13 bytes.
struct ControlMsg {
  enum class Type : std::uint8_t {
    kHello = 1,   ///< client -> server: admit me (aux = packet count).
    kAccept = 2,  ///< server -> client: admitted, start streaming.
    kReject = 3,  ///< server -> client: shed (admission denied).
    kBye = 4,     ///< client -> server: stream complete (aux = sent count).
    kByeAck = 5,  ///< server -> client: drained and accounted.
  };

  Type type = Type::kHello;
  std::uint32_t ssrc = 0;
  std::uint32_t aux = 0;

  static constexpr std::size_t kSize = 13;

  [[nodiscard]] std::vector<std::uint8_t> serialize() const;
  [[nodiscard]] static std::optional<ControlMsg> try_parse(
      std::span<const std::uint8_t> datagram);
};

/// The per-session lifecycle both endpoints walk.
enum class SessionState {
  kConnecting,  ///< handshake in flight (with retry/backoff).
  kStreaming,   ///< data on the wire.
  kDraining,    ///< goodbye in flight; receiver flushing.
  kClosed,      ///< orderly end.
  kFailed,      ///< supervisor gave up.
};

[[nodiscard]] const char* to_string(SessionState state);

/// How a session ended, for the chaos run's accounting.  Every session
/// lands in exactly one bucket.
enum class SessionOutcome {
  kPending,         ///< still running.
  kCompleted,       ///< clean run, no recovery action needed.
  kRecovered,       ///< completed, but only via retries/shedding/degrade.
  kShed,            ///< admission control refused it.
  kWatchdogKilled,  ///< stall/handshake watchdog (or chaos kill) ended it.
};

[[nodiscard]] const char* to_string(SessionOutcome outcome);

/// The trace `kind` a finished session's outcome is recorded under.
[[nodiscard]] const char* outcome_trace_kind(SessionOutcome outcome);

/// Supervision knobs shared by the client sessions and documented in
/// docs/resilience.md.
struct SupervisorConfig {
  // Handshake/goodbye control retries: capped exponential with jitter.
  int max_handshake_retries = 6;
  int max_bye_retries = 4;
  double backoff_base_s = 0.05;
  double backoff_multiplier = 2.0;
  double backoff_max_s = 1.0;
  double backoff_jitter = 0.25;  ///< +-25% of the computed wait.

  // Data-path retry on kAgain/kShort/kRefused, per packet.
  int max_send_retries = 8;
  double send_retry_base_s = 1e-3;

  // Stall watchdog: no successful send for this long while packets are
  // queued => the session has wedged; kill it.
  double stall_timeout_s = 5.0;

  // Backpressure: queue depth caps and the degradation watermark.
  std::size_t queue_cap = 64;      ///< beyond this, shed oldest.
  std::size_t degrade_depth = 32;  ///< beyond this, step the policy down.

  void validate() const;  ///< throws std::invalid_argument on bad values.
};

/// Capped exponential backoff with symmetric jitter: attempt 0 waits
/// ~base, each further attempt doubles (by `backoff_multiplier`) up to
/// `backoff_max_s`, then jitter spreads contending sessions apart.
/// Deterministic in the rng.
[[nodiscard]] double backoff_wait_s(const SupervisorConfig& config,
                                    int attempt, util::Rng& rng);

/// Everything the supervisor counted for one client session.
struct ClientStats {
  SessionState state = SessionState::kConnecting;
  SessionOutcome outcome = SessionOutcome::kPending;
  std::size_t packets_sent = 0;
  std::size_t packets_shed = 0;      ///< drop-oldest + retry-exhausted.
  std::size_t packets_degraded = 0;  ///< sent clear under pressure.
  std::size_t send_retries = 0;
  std::size_t handshake_retries = 0;
  std::size_t bye_retries = 0;
  std::size_t short_sends = 0;
  std::size_t max_queue_depth = 0;
  int degrade_steps = 0;
  bool bye_acked = false;
  bool chaos_killed = false;
  double accepted_s = 0.0;  ///< when ACCEPT arrived (loop time).
  double done_s = 0.0;      ///< when the session reached a final state.
};

struct ClientConfig {
  Endpoint server;
  std::uint32_t ssrc = 0;
  SupervisorConfig supervisor;
  policy::EncryptionPolicy policy;  ///< top of the degradation ladder.
  ChaosPlan chaos;                  ///< this session's injected hostility.
  std::uint64_t seed = 1;
  double start_s = 0.0;  ///< loop time of the first HELLO.
  core::TraceSink* trace = nullptr;
};

/// One supervised uploader: owns its socket, handshakes with the
/// server, streams `wire_packets` at the paced schedule, and walks the
/// session state machine under the watchdog.  `wire_packets` carry the
/// policy's encryption; `clear_packets` are the same stream in
/// plaintext, used when the degradation ladder decides a packet should
/// ship clear.  Both must outlive the session.
class ClientSession {
 public:
  ClientSession(EventLoop& loop, ClientConfig config,
                const std::vector<net::VideoPacket>& wire_packets,
                const std::vector<net::VideoPacket>& clear_packets,
                PacedSchedule schedule, std::function<void()> on_done = {});
  ClientSession(const ClientSession&) = delete;
  ClientSession& operator=(const ClientSession&) = delete;

  /// Arm the HELLO at config.start_s.  Call once.
  void start();

  /// Chaos hook: the process dies mid-stream — no goodbye, socket goes
  /// silent.  The server's idle watchdog must reap the other half.
  void chaos_kill();

  [[nodiscard]] const ClientStats& stats() const { return stats_; }
  [[nodiscard]] std::uint32_t ssrc() const { return config_.ssrc; }
  [[nodiscard]] bool finished() const {
    return stats_.outcome != SessionOutcome::kPending;
  }
  [[nodiscard]] const ChaosStats& chaos_stats() const {
    return chaos_socket_.stats();
  }

 private:
  void send_hello();
  void on_readable();
  void handle_control(const ControlMsg& msg);
  void begin_streaming();
  void on_release(std::size_t index);
  void ensure_send_armed();
  void try_send();
  void ensure_watchdog_armed();
  void on_watchdog();
  void begin_draining();
  void send_bye();
  void finish(SessionOutcome outcome);
  void set_state(SessionState state);
  void trace_event(const char* kind, double value);

  EventLoop& loop_;
  ClientConfig config_;
  const std::vector<net::VideoPacket>& wire_packets_;
  const std::vector<net::VideoPacket>& clear_packets_;
  PacedSchedule schedule_;
  std::function<void()> on_done_;
  UdpSocket socket_;
  ChaosSocket chaos_socket_;
  util::Rng rng_;

  ClientStats stats_;
  policy::EncryptionPolicy current_policy_;
  std::vector<bool> degraded_selected_;  ///< empty until the first step.
  std::deque<std::size_t> queue_;        ///< packet indices awaiting send.
  std::vector<std::uint8_t> buffer_;     ///< per-datagram scratch.
  std::size_t next_release_ = 0;
  int head_retries_ = 0;
  int hello_attempts_ = 0;
  int bye_attempts_ = 0;
  double t0_ = 0.0;             ///< stream clock origin (= ACCEPT time).
  double last_progress_s_ = 0.0;
  bool send_armed_ = false;
  bool watchdog_armed_ = false;
  bool dead_ = false;
  EventLoop::TimerId hello_timer_ = 0;
  EventLoop::TimerId bye_timer_ = 0;
  EventLoop::TimerId release_timer_ = 0;
  EventLoop::TimerId send_timer_ = 0;
  EventLoop::TimerId watchdog_timer_ = 0;
};

}  // namespace tv::live
