// UDP impairment proxy: the testbed's "air".
//
// Sender → proxy → receiver, all real UDP.  Every datagram the proxy
// hears is first offered to the eavesdropper tap (an attacker overhears
// the transmission, not the delivery), then subjected to the receiver's
// channel: a replayed per-packet delivery mask (deterministic loopback),
// scheduled AP outages plus a Gilbert-Elliott fading chain, and/or a
// net::FaultInjector plan (corruption, truncation, duplication) with a
// proxy-side holdback queue for reordering.  Survivors are forwarded to
// the receiver's endpoint.  Everything is driven by one seed.
#pragma once

#include <cstdint>
#include <deque>
#include <optional>
#include <span>
#include <vector>

#include "core/trace.hpp"
#include "live/eavesdropper.hpp"
#include "live/event_loop.hpp"
#include "live/stream_map.hpp"
#include "live/udp.hpp"
#include "net/fault_injector.hpp"
#include "util/rng.hpp"
#include "wifi/gilbert_elliott.hpp"

namespace tv::live {

struct ProxyConfig {
  Endpoint forward_to;
  /// Receiver-path impairments (all optional; replay mask wins if set).
  std::optional<net::FaultPlan> faults;
  std::optional<wifi::GilbertElliottParams> receiver_channel;
  std::vector<wifi::OutageWindow> outages;
  std::uint64_t seed = 1;
  core::TraceSink* trace = nullptr;  ///< optional; zero overhead when null.
  /// When > 0: after this long with no datagrams, release holdbacks,
  /// unwatch, and let the loop wind down (real-time end of stream).
  double idle_timeout_s = 0.0;
};

struct ProxyReport {
  std::size_t heard = 0;      ///< datagrams in.
  std::size_t forwarded = 0;  ///< datagrams out (incl. duplicates).
  std::size_t dropped = 0;    ///< lost to mask/outage/channel/faults.
  std::size_t duplicated = 0;
  std::size_t reordered = 0;  ///< held back past a later datagram.
  std::size_t send_failures = 0;
};

class ImpairmentProxy {
 public:
  /// `tap` may be null (no eavesdropper on this network).  The tap and
  /// sockets must outlive the proxy.
  ImpairmentProxy(EventLoop& loop, UdpSocket& in_socket,
                  UdpSocket& out_socket, ProxyConfig config,
                  EavesdropperTap* tap);

  /// Replay mode: forward exactly the packets whose stream index is set
  /// in `mask` (an in-memory transfer's receiver_delivered).  Overrides
  /// outage/channel/fault impairments for matched packets.
  void set_forward_mask(const StreamMap* map, std::vector<bool> mask);

  /// Start watching the ingress socket (and arm the idle deadline).
  void start();

  /// Release any held-back datagrams (end of stream).
  void flush();

  [[nodiscard]] const ProxyReport& report() const { return report_; }

 private:
  void on_readable();
  /// Impair and forward one datagram, damaging it in place — the caller's
  /// buffer (the pooled receive scratch) doubles as the damage buffer.
  void handle(std::vector<std::uint8_t>& datagram);
  void forward(std::span<const std::uint8_t> datagram);
  void arm_idle_deadline();

  EventLoop& loop_;
  UdpSocket& in_socket_;
  UdpSocket& out_socket_;
  ProxyConfig config_;
  EavesdropperTap* tap_;
  std::optional<net::FaultInjector> injector_;
  std::optional<wifi::GilbertElliottChannel> channel_;
  util::Rng reorder_rng_;
  const StreamMap* mask_map_ = nullptr;
  std::vector<bool> forward_mask_;
  std::deque<std::vector<std::uint8_t>> held_;
  ProxyReport report_;
  Datagram scratch_;  ///< pooled receive + in-place damage buffer.
  double last_arrival_s_ = 0.0;
  bool watching_ = false;
};

}  // namespace tv::live
