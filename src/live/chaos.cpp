#include "live/chaos.hpp"

#include <cstdlib>
#include <stdexcept>

namespace tv::live {

namespace {

void check_prob(double value, const char* name) {
  if (value < 0.0 || value > 1.0) {
    throw std::invalid_argument{std::string{"ChaosPlan: "} + name +
                                " outside [0,1]"};
  }
}

double parse_number(const std::string& text, const std::string& key) {
  char* end = nullptr;
  const double value = std::strtod(text.c_str(), &end);
  if (text.empty() || end != text.c_str() + text.size()) {
    throw std::invalid_argument{"chaos spec: bad value for '" + key +
                                "': " + text};
  }
  return value;
}

/// "START:DUR;START:DUR;..." -> outage windows.
std::vector<wifi::OutageWindow> parse_windows(const std::string& text,
                                              const std::string& key) {
  std::vector<wifi::OutageWindow> windows;
  std::size_t pos = 0;
  while (pos <= text.size()) {
    const std::size_t semi = text.find(';', pos);
    const std::string item = text.substr(
        pos, semi == std::string::npos ? std::string::npos : semi - pos);
    const std::size_t colon = item.find(':');
    if (colon == std::string::npos) {
      throw std::invalid_argument{"chaos spec: '" + key +
                                  "' wants START:DURATION, got: " + item};
    }
    wifi::OutageWindow window;
    window.start_s = parse_number(item.substr(0, colon), key);
    window.duration_s = parse_number(item.substr(colon + 1), key);
    if (window.start_s < 0.0 || window.duration_s <= 0.0) {
      throw std::invalid_argument{"chaos spec: '" + key +
                                  "' window must have start >= 0, "
                                  "duration > 0"};
    }
    windows.push_back(window);
    if (semi == std::string::npos) break;
    pos = semi + 1;
  }
  return windows;
}

}  // namespace

void ChaosPlan::validate() const {
  check_prob(eagain_prob, "eagain_prob");
  check_prob(short_send_prob, "short_send_prob");
  check_prob(spurious_wakeup_prob, "spurious_wakeup_prob");
  check_prob(ctrl_drop_prob, "ctrl_drop_prob");
  check_prob(kill_prob, "kill_prob");
  if (faults) faults->validate();
  if (channel) channel->validate();
}

ChaosPlan chaos_plan_from_string(const std::string& spec) {
  ChaosPlan plan;
  net::FaultPlan faults;
  bool have_faults = false;
  wifi::GilbertElliottParams channel;
  bool have_channel = false;

  std::size_t pos = 0;
  while (pos < spec.size()) {
    const std::size_t comma = spec.find(',', pos);
    const std::string item = spec.substr(
        pos, comma == std::string::npos ? std::string::npos : comma - pos);
    pos = comma == std::string::npos ? spec.size() : comma + 1;
    if (item.empty()) continue;
    const std::size_t eq = item.find('=');
    if (eq == std::string::npos) {
      throw std::invalid_argument{"chaos spec: want key=value, got: " + item};
    }
    const std::string key = item.substr(0, eq);
    const std::string value = item.substr(eq + 1);
    if (key == "eagain") {
      plan.eagain_prob = parse_number(value, key);
    } else if (key == "short") {
      plan.short_send_prob = parse_number(value, key);
    } else if (key == "spurious" || key == "eintr") {
      plan.spurious_wakeup_prob = parse_number(value, key);
    } else if (key == "drop") {
      faults.drop_prob = parse_number(value, key);
      have_faults = true;
    } else if (key == "corrupt") {
      faults.corrupt_payload_prob = parse_number(value, key);
      have_faults = true;
    } else if (key == "truncate") {
      faults.truncate_prob = parse_number(value, key);
      have_faults = true;
    } else if (key == "dup") {
      faults.duplicate_prob = parse_number(value, key);
      have_faults = true;
    } else if (key == "loss") {
      channel.mean_loss_prob = parse_number(value, key);
      have_channel = true;
    } else if (key == "burst") {
      channel.mean_burst_length = parse_number(value, key);
      have_channel = true;
    } else if (key == "ctrl-drop") {
      plan.ctrl_drop_prob = parse_number(value, key);
    } else if (key == "kill") {
      plan.kill_prob = parse_number(value, key);
    } else if (key == "outage") {
      plan.outages = parse_windows(value, key);
    } else if (key == "stall") {
      plan.stalls = parse_windows(value, key);
    } else {
      throw std::invalid_argument{"chaos spec: unknown key: " + key};
    }
  }
  if (have_faults) plan.faults = faults;
  if (have_channel) plan.channel = channel;
  plan.validate();
  return plan;
}

ChaosSocket::ChaosSocket(EventLoop& loop, UdpSocket& socket,
                         const ChaosPlan& plan, std::uint64_t seed)
    : loop_(loop),
      socket_(socket),
      plan_(plan),
      egress_rng_{util::derive_seed(seed, 0xc4a05, 1, 0)},
      ingress_rng_{util::derive_seed(seed, 0xc4a05, 2, 0)} {
  plan_.validate();
  if (plan_.channel) {
    channel_.emplace(*plan_.channel, util::derive_seed(seed, 0xc4a05, 3, 0));
  }
  if (plan_.faults) {
    injector_.emplace(*plan_.faults, util::derive_seed(seed, 0xc4a05, 4, 0));
  }
}

SendOutcome ChaosSocket::send_to(const Endpoint& to,
                                 std::span<const std::uint8_t> payload) {
  ++stats_.sends;
  // fd-level faults come first: the kernel never saw the datagram, so
  // the caller must treat it exactly like a real EAGAIN / short write.
  if (plan_.eagain_prob > 0.0 && egress_rng_.bernoulli(plan_.eagain_prob)) {
    ++stats_.eagain_injected;
    return SendOutcome::kAgain;
  }
  if (plan_.short_send_prob > 0.0 &&
      egress_rng_.bernoulli(plan_.short_send_prob) && payload.size() > 1) {
    // Half the datagram reaches the wire — the receiver sees a runt.
    ++stats_.short_sends_injected;
    (void)socket_.send_to(to, payload.subspan(0, payload.size() / 2));
    return SendOutcome::kShort;
  }
  // Channel faults: the send succeeded as far as the sender knows.
  if (wifi::in_outage(plan_.outages, loop_.now_s())) {
    ++stats_.dropped;
    return SendOutcome::kSent;
  }
  if (channel_ && channel_->lose_packet()) {
    ++stats_.dropped;
    return SendOutcome::kSent;
  }
  if (injector_) {
    scratch_.assign(payload.begin(), payload.end());
    const net::AppliedFaults applied = injector_->apply_one(scratch_);
    if (applied.dropped) {
      ++stats_.dropped;
      return SendOutcome::kSent;
    }
    if (applied.duplicated) ++stats_.duplicated;
    stats_.damaged += static_cast<std::size_t>(applied.damaged);
    SendOutcome outcome = SendOutcome::kSent;
    const int sends = applied.duplicated ? 2 : 1;
    for (int s = 0; s < sends; ++s) {
      const SendOutcome o = socket_.send_to(to, scratch_);
      if (o != SendOutcome::kSent) outcome = o;
    }
    return outcome;
  }
  return socket_.send_to(to, payload);
}

std::optional<Datagram> ChaosSocket::receive() {
  if (plan_.spurious_wakeup_prob > 0.0 &&
      ingress_rng_.bernoulli(plan_.spurious_wakeup_prob)) {
    // An EINTR storm ends the drain early.  The data is still queued and
    // the loop is level-triggered, so nothing is lost — only delayed —
    // which is exactly the failure mode worth surviving.
    ++stats_.spurious_wakeups;
    return std::nullopt;
  }
  return socket_.receive();
}

}  // namespace tv::live
