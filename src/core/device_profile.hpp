// Device profiles: the stand-ins for the paper's two handsets (Table 1).
//
// The paper runs every experiment on a Samsung Galaxy S-II (1.2 GHz
// Cortex-A9) and an HTC Amaze 4G (1.5 GHz Snapdragon S3), both on Android
// 4.0.  We cannot run on those CPUs, so each profile carries calibrated
// software-crypto throughputs (MB/s per algorithm plus a fixed per-packet
// overhead for the JNI/GPAC call path) and power coefficients.  The
// constants were tuned so the *relative* delay and power movements match
// the paper's reported deltas (see DESIGN.md Section 2 and EXPERIMENTS.md);
// absolute scales are testbed-specific by nature.
#pragma once

#include <cstddef>
#include <string>
#include <string_view>

#include "crypto/suite.hpp"
#include "energy/energy_model.hpp"

namespace tv::core {

struct CryptoSpeed {
  double throughput_mb_s = 10.0;    ///< sustained payload throughput.
  double per_packet_overhead_s = 0.0;  ///< key/IV setup + call overhead.
  double jitter_stddev_s = 0.0;     ///< Gaussian jitter of eq. (15).
};

struct DeviceProfile {
  std::string name;
  /// Short machine-readable key ("samsung", "htc") round-tripping through
  /// device_from_string; used by the CLI flags and the sweep result sinks.
  std::string key;
  CryptoSpeed aes128;
  CryptoSpeed aes256;
  CryptoSpeed triple_des;
  /// Baseline (unencrypted streaming) device power, W.
  double base_power_w = 1.0;
  /// CPU energy per encrypted megabyte, J/MB, per algorithm.
  double aes128_j_per_mb = 0.0;
  double aes256_j_per_mb = 0.0;
  double triple_des_j_per_mb = 0.0;
  /// Extra radio power while a packet is on the air, W.
  double radio_tx_power_w = 0.7;
  /// Ceiling on crypto power once the cipher saturates a core, W.
  double crypto_max_power_w = 1.5;

  [[nodiscard]] const CryptoSpeed& speed(crypto::Algorithm a) const;
  [[nodiscard]] double crypto_j_per_mb(crypto::Algorithm a) const;

  /// Mean time to encrypt `payload_bytes` with algorithm `a`.
  [[nodiscard]] double encryption_seconds(crypto::Algorithm a,
                                          std::size_t payload_bytes) const;

  /// Power coefficients for the energy model under algorithm `a`.
  [[nodiscard]] energy::PowerCoefficients power_coefficients(
      crypto::Algorithm a) const;
};

/// Samsung Galaxy S-II (1.2 GHz dual Cortex-A9, Mali-400): the slower
/// crypto of the two but the steeper power response in the paper.
[[nodiscard]] DeviceProfile samsung_galaxy_s2();

/// HTC Amaze 4G (1.5 GHz dual Snapdragon S3): faster crypto, flatter power
/// response.
[[nodiscard]] DeviceProfile htc_amaze_4g();

/// Look up a built-in profile by its short key ("samsung", "htc") or full
/// display name.  Throws std::invalid_argument listing the valid keys.
[[nodiscard]] DeviceProfile device_from_string(std::string_view name);

}  // namespace tv::core
