// Parallel sweep engine: every figure in the paper is a cartesian grid
// over (motion, GOP, policy, algorithm, device, transport, channel) with
// repeated experiments per cell.  SweepSpec declares such a grid once;
// SweepRunner executes its cells on a work-stealing thread pool, shares
// the expensive encode/packetize step through a build-once WorkloadCache,
// and streams results through a ResultSink in deterministic cell order.
//
// Determinism contract: per-cell seeds are derived purely from the root
// seed (util::derive_seed) and per-repetition statistics are folded in a
// fixed order (run_experiment), so a run at any thread count — including
// fully serial — produces bit-identical statistics and sink output.
#pragma once

#include <cstdint>
#include <future>
#include <map>
#include <memory>
#include <mutex>
#include <optional>
#include <ostream>
#include <tuple>
#include <vector>

#include "core/experiment.hpp"

namespace tv::util {
class ThreadPool;
}

namespace tv::core {

/// Declarative cartesian experiment grid over the paper's axes.
struct SweepSpec {
  std::vector<video::MotionLevel> motions{video::MotionLevel::kLow};
  std::vector<int> gop_sizes{30};
  /// Policy shapes (mode + fraction); each is combined with every entry of
  /// `algorithms`, so the shape's own `algorithm` field is ignored.
  std::vector<policy::EncryptionPolicy> policies{
      {policy::Mode::kIFrames, crypto::Algorithm::kAes256, 0.0}};
  std::vector<crypto::Algorithm> algorithms{crypto::Algorithm::kAes256};
  std::vector<DeviceProfile> devices{samsung_galaxy_s2()};
  std::vector<Transport> transports{Transport::kRtpUdp};
  /// Channel-knob axis; std::nullopt is the clean i.i.d. link.
  std::vector<std::optional<ChannelModel>> channels{std::nullopt};

  int frames = 300;
  int repetitions = 20;
  double fps = 30.0;
  bool evaluate_quality = true;
  /// Collect per-stage aggregates per cell (ExperimentResult::stage_stats);
  /// the sinks then emit them as extra columns/fields.  Off by default so
  /// existing sweep outputs (and the golden file) stay byte-identical.
  bool collect_stage_stats = false;
  std::uint64_t seed = 1;  ///< root seed; also the workload seed.

  /// How per-cell experiment seeds derive from the root seed:
  ///  * kPerCell (default): splitmix-derived from (seed, cell index), so
  ///    every cell runs an independent random stream.
  ///  * kShared: every cell reuses the root seed verbatim — the historical
  ///    behaviour of the figure benches, kept so their tables reproduce.
  enum class SeedMode { kPerCell, kShared };
  SeedMode seed_mode = SeedMode::kPerCell;

  /// Throws std::invalid_argument on empty axes or unusable scalar knobs.
  void validate() const;
  [[nodiscard]] std::size_t cell_count() const;
};

/// One fully-resolved grid point, in row-major axis order
/// (motion, gop, policy, algorithm, device, transport, channel).
struct SweepCell {
  std::size_t index = 0;  ///< row-major position in the grid.
  video::MotionLevel motion = video::MotionLevel::kLow;
  int gop_size = 30;
  policy::EncryptionPolicy policy;  ///< algorithm axis already applied.
  DeviceProfile device;
  Transport transport = Transport::kRtpUdp;
  std::optional<ChannelModel> channel;
  std::uint64_t seed = 0;  ///< derived per-cell experiment seed.
};

/// Expand the grid (row-major, with derived seeds).  Pure.
[[nodiscard]] std::vector<SweepCell> enumerate_cells(const SweepSpec& spec);

struct CellResult {
  SweepCell cell;
  ExperimentResult result;
};

/// Consumer of sweep results.  SweepRunner serializes the calls and makes
/// them strictly in cell-index order, so implementations need no locking
/// and their output is deterministic.
class ResultSink {
 public:
  virtual ~ResultSink() = default;
  virtual void begin(const SweepSpec& /*spec*/) {}
  virtual void cell(const CellResult& result) = 0;
  virtual void end() {}
};

/// Human-readable aligned table.
class TableSink : public ResultSink {
 public:
  explicit TableSink(std::ostream& out) : out_(out) {}
  void begin(const SweepSpec& spec) override;
  void cell(const CellResult& result) override;

 private:
  std::ostream& out_;
  bool quality_ = true;
};

/// One JSON object per cell per line, full statistics at %.17g so two runs
/// can be compared byte for byte.
class JsonlSink : public ResultSink {
 public:
  explicit JsonlSink(std::ostream& out) : out_(out) {}
  void cell(const CellResult& result) override;

 private:
  std::ostream& out_;
};

/// Spreadsheet-friendly CSV with a header row.
class CsvSink : public ResultSink {
 public:
  explicit CsvSink(std::ostream& out) : out_(out) {}
  void begin(const SweepSpec& spec) override;
  void cell(const CellResult& result) override;

 private:
  std::ostream& out_;
  bool stage_stats_ = false;
};

/// In-memory sink for programmatic consumers (benches, tests).
class CollectSink : public ResultSink {
 public:
  void cell(const CellResult& result) override { results.push_back(result); }
  std::vector<CellResult> results;
};

/// Thread-safe build-once workload cache keyed by (motion, gop, frames,
/// seed, fps).  Concurrent requests for the same key block on one build;
/// the result is shared read-only.
class WorkloadCache {
 public:
  [[nodiscard]] std::shared_ptr<const Workload> get(video::MotionLevel motion,
                                                    int gop_size, int frames,
                                                    std::uint64_t seed,
                                                    double fps = 30.0);
  /// Number of distinct workloads built (or being built) so far.
  [[nodiscard]] std::size_t size() const;

 private:
  using Key = std::tuple<int, int, int, std::uint64_t, double>;
  mutable std::mutex mu_;
  std::map<Key, std::shared_future<std::shared_ptr<const Workload>>> cache_;
};

struct SweepSummary {
  std::size_t cells = 0;
  std::size_t workloads = 0;  ///< distinct workloads in the cache.
  unsigned threads = 1;
  double wall_s = 0.0;
};

/// Executes SweepSpecs.  Reuse one runner across related sweeps to share
/// its workload cache.
class SweepRunner {
 public:
  /// `pool == nullptr` runs serially (through the same fold paths, so the
  /// statistics are identical either way).
  explicit SweepRunner(util::ThreadPool* pool = nullptr) : pool_(pool) {}

  /// Runs every cell, streaming results to `sink` in cell order.
  /// Validates the spec and every cell's pipeline configuration up front.
  SweepSummary run(const SweepSpec& spec, ResultSink& sink);

  [[nodiscard]] WorkloadCache& workloads() { return cache_; }

 private:
  util::ThreadPool* pool_;
  WorkloadCache cache_;
};

}  // namespace tv::core
