// Policy advisor: the decision box of Fig. 1.
//
// "A third choice would allow the user to minimize performance penalties
//  while largely preserving confidentiality."  Given the calibrated model,
// the advisor evaluates candidate policies analytically (no transfers
// needed) and returns the cheapest one that pushes the eavesdropper's PSNR
// below a confidentiality ceiling.
#pragma once

#include <optional>
#include <vector>

#include "core/predictor.hpp"
#include "policy/policy.hpp"

namespace tv::core {

struct AdvisorRequest {
  /// Confidentiality requirement: eavesdropper PSNR must not exceed this.
  double max_eavesdropper_psnr_db = 18.0;
  /// What to minimize among qualifying policies.
  enum class Objective { kDelay, kPower } objective = Objective::kDelay;
  crypto::Algorithm algorithm = crypto::Algorithm::kAes256;
  /// Candidate fractions for the I+a%P sweep (Fig. 9 / Table 2).
  std::vector<double> p_fractions = {0.10, 0.15, 0.20, 0.25, 0.30, 0.50};
};

struct PolicyEvaluation {
  policy::EncryptionPolicy policy;
  DelayPrediction delay;
  DistortionPrediction eavesdropper;
  PowerPrediction power;
  bool confidential = false;  ///< meets the PSNR ceiling.
};

struct AdvisorResult {
  std::vector<PolicyEvaluation> evaluations;  ///< everything considered.
  std::optional<PolicyEvaluation> recommendation;
};

/// Evaluate the standard policy ladder (none, I, P, I+a%P sweep, all) and
/// recommend the cheapest confidential one.  "none" is never recommended
/// unless the ceiling is above the clear-stream PSNR (i.e. no protection
/// needed).
[[nodiscard]] AdvisorResult advise(const AdvisorRequest& request,
                                   const TrafficCalibration& traffic,
                                   const ServiceCalibration& service,
                                   const DeviceProfile& device,
                                   const DistortionInputs& distortion_inputs,
                                   double eavesdropper_success_rate);

}  // namespace tv::core
