#include "core/advisor.hpp"

namespace tv::core {

AdvisorResult advise(const AdvisorRequest& request,
                     const TrafficCalibration& traffic,
                     const ServiceCalibration& service,
                     const DeviceProfile& device,
                     const DistortionInputs& distortion_inputs,
                     double eavesdropper_success_rate) {
  using policy::EncryptionPolicy;
  using policy::Mode;

  std::vector<EncryptionPolicy> candidates;
  candidates.push_back({Mode::kNone, request.algorithm, 0.0});
  candidates.push_back({Mode::kIFrames, request.algorithm, 0.0});
  candidates.push_back({Mode::kPFrames, request.algorithm, 0.0});
  for (double f : request.p_fractions) {
    candidates.push_back({Mode::kIPlusFractionP, request.algorithm, f});
  }
  candidates.push_back({Mode::kAll, request.algorithm, 0.0});

  AdvisorResult result;
  for (const EncryptionPolicy& p : candidates) {
    PolicyEvaluation eval;
    eval.policy = p;
    const double q_i = p.i_packet_fraction();
    const double q_p = p.p_packet_fraction();
    eval.delay = predict_delay(traffic, service, q_i, q_p);
    eval.power = predict_power(device, request.algorithm, traffic, service,
                               q_i, q_p);
    eval.eavesdropper = predict_distortion(
        distortion_inputs, traffic, eavesdropper_success_rate, q_i, q_p);
    eval.confidential =
        eval.eavesdropper.psnr_db <= request.max_eavesdropper_psnr_db;
    result.evaluations.push_back(eval);
  }

  for (const PolicyEvaluation& eval : result.evaluations) {
    if (!eval.confidential) continue;
    if (!result.recommendation) {
      result.recommendation = eval;
      continue;
    }
    const bool better =
        request.objective == AdvisorRequest::Objective::kDelay
            ? eval.delay.mean_delay_ms <
                  result.recommendation->delay.mean_delay_ms
            : eval.power.mean_power_w <
                  result.recommendation->power.mean_power_w;
    if (better) result.recommendation = eval;
  }
  return result;
}

}  // namespace tv::core
