#include "core/experiment.hpp"

#include <algorithm>
#include <cmath>
#include <stdexcept>

#include "crypto/suite.hpp"
#include "util/thread_pool.hpp"
#include "video/quality.hpp"

namespace tv::core {

namespace {

/// Deterministic per-flow IV sized for the cipher.
std::vector<std::uint8_t> flow_iv_for(const crypto::BlockCipher& cipher,
                                      std::uint64_t seed) {
  std::vector<std::uint8_t> iv(cipher.block_size());
  std::uint64_t state = seed ^ 0x1234567890abcdefULL;
  for (auto& b : iv) {
    state = state * 6364136223846793005ULL + 1442695040888963407ULL;
    b = static_cast<std::uint8_t>(state >> 56);
  }
  return iv;
}

}  // namespace

double default_sensitivity(video::MotionLevel motion) {
  switch (motion) {
    case video::MotionLevel::kLow: return 0.35;
    case video::MotionLevel::kMedium: return 0.50;
    case video::MotionLevel::kHigh: return 0.65;
  }
  return 0.6;
}

Workload build_workload(video::MotionLevel motion, int gop_size, int frames,
                        std::uint64_t seed, double fps) {
  if (frames < gop_size) {
    throw std::invalid_argument{"build_workload: need at least one GOP"};
  }
  Workload w;
  w.motion = motion;
  w.fps = fps;
  w.codec.gop_size = gop_size;
  // Crude one-pass rate control, standing in for x264's: faster content
  // gets a coarser inter quantizer so the bitrate grows sublinearly with
  // motion (paper clips were encoded at comparable rates).
  switch (motion) {
    case video::MotionLevel::kLow: w.codec.p_qstep = 14.0; break;
    case video::MotionLevel::kMedium: w.codec.p_qstep = 18.0; break;
    case video::MotionLevel::kHigh: w.codec.p_qstep = 24.0; break;
  }

  const video::SceneGenerator scene{video::SceneParameters::preset(motion),
                                    seed};
  w.clip = scene.render_clip(frames);

  const video::Encoder encoder{w.codec};
  w.stream = encoder.encode(w.clip);
  w.packets = net::packetize(w.stream, w.arena, net::kDefaultMtu, fps);

  // Coding distortion floor: decode the intact stream and compare.
  {
    const video::Decoder decoder{w.codec};
    std::vector<video::ReceivedFrameData> intact;
    intact.reserve(w.stream.frames.size());
    for (const auto& f : w.stream.frames) {
      intact.push_back(video::ReceivedFrameData::intact(f.data));
    }
    const video::FrameSequence lossless =
        decoder.decode_stream(w.stream.width, w.stream.height, intact);
    double mse = 0.0;
    for (std::size_t i = 0; i < w.clip.size(); ++i) {
      mse += video::luma_mse(w.clip[i], lossless[i]);
    }
    w.base_mse = mse / static_cast<double>(w.clip.size());
  }

  // Case-3 reference: content against the decoder's blank mid-gray output.
  {
    video::Frame gray(w.stream.width, w.stream.height);
    gray.fill(128, 128, 128);
    double mse = 0.0;
    for (const auto& f : w.clip) mse += video::luma_mse(f, gray);
    w.null_mse = mse / static_cast<double>(w.clip.size());
  }

  // Fit the distance-distortion curve (Fig. 2 procedure) on this content,
  // out to a GOP's worth of frames so the saturation value reflects the
  // staleness a lost I-frame actually produces.
  const int max_distance =
      std::min<int>(gop_size, static_cast<int>(w.clip.size()) - 1);
  w.inter = distortion::DistanceDistortion::fit(
      distortion::measure_substitution_distortion(w.clip, max_distance), 5);
  return w;
}

ExperimentResult run_experiment(const ExperimentSpec& spec,
                                const Workload& workload,
                                util::ThreadPool* pool) {
  if (spec.repetitions < 1) {
    throw std::invalid_argument{"run_experiment: repetitions < 1"};
  }
  ExperimentResult result;
  result.label = spec.policy.label();

  // Apply the policy's packet selection and encrypt for real — on a
  // private clone so the shared workload's plaintext bytes stay intact.
  util::Arena arena;
  std::vector<net::VideoPacket> packets =
      net::clone_packets(workload.packets, arena);
  const std::vector<bool> selected = spec.policy.select(packets);
  const auto cipher =
      crypto::make_cipher_from_seed(spec.policy.algorithm, spec.seed);
  const auto flow_iv = flow_iv_for(*cipher, spec.seed);
  net::encrypt_selected(packets, selected, *cipher, flow_iv);
  result.encryption = net::encryption_stats(packets);

  PipelineConfig pipeline = spec.pipeline;
  pipeline.algorithm = spec.policy.algorithm;

  const int frame_count = static_cast<int>(workload.stream.frames.size());
  const video::Decoder decoder{workload.codec};

  // Repetitions are mutually independent: each draws its own seed from
  // (spec.seed, rep), reads only shared const state, and writes only its
  // own slot.  The fold below then merges the slots in repetition order
  // (see util::RunningStats::merge), so a pooled run is bit-identical to
  // the serial one at any thread count.
  struct RepOutcome {
    bool ok = false;
    TransferResult transfer;
    util::RunningStats delay_ms, duration_s, power_w;
    util::RunningStats rx_psnr, rx_mos, ev_psnr, ev_mos;
    std::vector<FailureEvent> failures;
  };
  std::vector<RepOutcome> reps(static_cast<std::size_t>(spec.repetitions));

  // Instrumented runs (tracing or stage aggregation) execute serially so
  // the trace stream and the collector's contents are deterministic.
  const bool instrumented = spec.trace != nullptr || spec.collect_stage_stats;
  StageStatsCollector collector;

  auto run_rep = [&](std::size_t index) {
    RepOutcome& out = reps[index];
    const int rep = static_cast<int>(index);
    std::optional<StampTraceSink> stamp;
    if (instrumented) {
      stamp.emplace(spec.trace,
                    spec.collect_stage_stats ? &collector : nullptr, rep);
    }
    // A repetition that dies on a degraded network is recorded as a
    // FailureEvent and skipped; the survivors still produce statistics.
    TransferResult transfer;
    try {
      transfer = simulate_transfer(
          pipeline, packets,
          spec.seed * 7919 + static_cast<std::uint64_t>(rep),
          stamp ? &*stamp : nullptr);
    } catch (const std::exception&) {
      FailureEvent failure;
      failure.kind = FailureEvent::Kind::kException;
      failure.repetition = rep;
      out.failures.push_back(failure);
      return;
    }
    out.ok = true;
    for (FailureEvent f : transfer.failures) {
      f.repetition = rep;
      out.failures.push_back(f);
    }

    out.delay_ms.add(transfer.mean_delay_ms());
    out.duration_s.add(transfer.duration_s);

    const energy::EnergyBreakdown energy = energy::transfer_energy(
        spec.pipeline.device.power_coefficients(spec.policy.algorithm),
        transfer.duration_s, transfer.encrypted_payload_bytes,
        transfer.airtime_s);
    out.power_w.add(energy::mean_power_w(energy, transfer.duration_s));

    if (spec.evaluate_quality) {
      // Legitimate receiver: decrypts what it gets.
      const auto rx_frames =
          net::reassemble(packets, transfer.receiver_delivered, frame_count,
                          cipher.get(), flow_iv);
      const video::FrameSequence rx = decoder.decode_stream(
          workload.stream.width, workload.stream.height, rx_frames);
      out.rx_psnr.add(video::sequence_psnr(workload.clip, rx));
      out.rx_mos.add(video::sequence_mos(workload.clip, rx));

      // Eavesdropper: overhears, cannot decrypt.
      const auto ev_frames =
          net::reassemble(packets, transfer.eavesdropper_captured,
                          frame_count, nullptr, flow_iv);
      const video::FrameSequence ev = decoder.decode_stream(
          workload.stream.width, workload.stream.height, ev_frames);
      out.ev_psnr.add(video::sequence_psnr(workload.clip, ev));
      out.ev_mos.add(video::sequence_mos(workload.clip, ev));
    }
    out.transfer = std::move(transfer);
  };

  if (pool != nullptr && reps.size() > 1 && !instrumented) {
    pool->parallel_for(reps.size(), run_rep);
  } else {
    for (std::size_t i = 0; i < reps.size(); ++i) run_rep(i);
  }
  if (spec.collect_stage_stats) result.stage_stats = collector.stats;

  // Deterministic fold in repetition order.
  const TransferResult* first_transfer = nullptr;
  for (const RepOutcome& out : reps) {
    result.failures.insert(result.failures.end(), out.failures.begin(),
                           out.failures.end());
    if (!out.ok) {
      ++result.failed_repetitions;
      continue;
    }
    if (first_transfer == nullptr) first_transfer = &out.transfer;
    result.total_retransmissions += out.transfer.retransmissions;
    result.total_deadline_drops += out.transfer.deadline_drops;
    result.total_outage_drops += out.transfer.outage_drops;
    result.total_degraded_packets += out.transfer.degraded_packets;
    ++result.completed_repetitions;

    result.delay_ms.merge(out.delay_ms);
    result.duration_s.merge(out.duration_s);
    result.power_w.merge(out.power_w);
    result.receiver_psnr_db.merge(out.rx_psnr);
    result.receiver_mos.merge(out.rx_mos);
    result.eavesdropper_psnr_db.merge(out.ev_psnr);
    result.eavesdropper_mos.merge(out.ev_mos);
  }

  // Every repetition failed: return what we have (the failure record)
  // rather than crashing the caller's whole sweep.
  if (first_transfer == nullptr) return result;

  // Calibrate the analytic model on the first transfer (Section 6.1) and
  // attach its predictions.
  const TrafficCalibration traffic = calibrate_traffic(
      packets, first_transfer->timings, workload.fps, /*sample_packets=*/0);
  const ServiceCalibration service =
      calibrate_service(packets, first_transfer->timings, pipeline, traffic);

  const double q_i = spec.policy.i_packet_fraction();
  const double q_p = spec.policy.p_packet_fraction();
  result.predicted_delay = predict_delay(traffic, service, q_i, q_p);
  result.predicted_power = predict_power(
      pipeline.device, spec.policy.algorithm, traffic, service, q_i, q_p);

  DistortionInputs di;
  di.gop_size = workload.codec.gop_size;
  di.n_gops = frame_count / workload.codec.gop_size;
  di.sensitivity_fraction = spec.sensitivity_fraction;
  di.base_mse = workload.base_mse;
  di.null_mse = workload.null_mse;
  di.inter = workload.inter;

  const bool tcp = pipeline.transport == Transport::kHttpTcp;
  // Per-packet delivery rates at each node.  Under the reliable transport
  // the receiver eventually gets (essentially) everything and the
  // eavesdropper benefits from overhearing the retransmissions.
  const double p_s_rx =
      tcp ? 1.0 : 1.0 - pipeline.receiver_loss_prob;
  double p_s_ev = 1.0 - pipeline.eavesdropper_loss_prob;
  if (tcp) {
    const double mean_attempts =
        1.0 / (1.0 - pipeline.receiver_loss_prob);
    p_s_ev = 1.0 - std::pow(pipeline.eavesdropper_loss_prob, mean_attempts);
  }
  result.predicted_receiver =
      predict_distortion(di, traffic, p_s_rx, 0.0, 0.0);
  result.predicted_eavesdropper =
      predict_distortion(di, traffic, p_s_ev, q_i, q_p);
  return result;
}

}  // namespace tv::core
