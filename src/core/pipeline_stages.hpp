// The sender transfer decomposed into composable stages (Fig. 3):
//
//   producer -> policy gate -> service (T_e + T_b + T_t) -> channel
//                                   ^----- transport/ARQ retry loop ----'
//
// Each stage is a small object with explicit inputs and outputs so a new
// transport or channel model plugs in without touching the others:
//
//   * ProducerStage     — release times: frame cadence, scheduling jitter,
//                         per-segment read latency;
//   * PolicyGateStage   — queue-pressure degradation (selective encryption
//                         collapses to I-frame-only under pressure);
//   * ServiceStage      — the eq. (3) service law, via the shared
//                         core::ServiceModel (the only place T_e/T_b/T_t
//                         are drawn);
//   * ChannelStage      — per-attempt receiver/eavesdropper outcomes:
//                         i.i.d. Bernoulli or Gilbert-Elliott chains plus
//                         scheduled AP outages;
//   * TransportStage    — the ARQ policy: fire-and-forget RTP/UDP or the
//                         reliable HTTP/TCP stand-in with exponential
//                         retransmission backoff and per-packet deadlines.
//
// Determinism contract: the stages draw from the RNGs handed to them in a
// fixed order, so core::simulate_transfer composed from these stages is
// byte-identical to the historical monolithic implementation (pinned by
// the sweep golden file and the CLI byte-identity checks).  Every stage
// takes an optional TraceSink; with the sink null the stages cost one
// never-taken branch per event site and consume identical randomness.
//
// The per-packet methods are defined inline: they are the transfer hot
// path, and keeping them visible to simulate_transfer lets the compiler
// fold the whole stage composition into one loop.  The target is baseline
// x86-64 (no FMA), so cross-boundary inlining cannot contract any
// floating-point expression — every draw stays bit-identical (pinned by
// the sweep/cell goldens).
#pragma once

#include <algorithm>
#include <array>
#include <cstdint>
#include <utility>
#include <optional>

#include "core/pipeline.hpp"
#include "core/service_model.hpp"
#include "core/trace.hpp"
#include "util/rng.hpp"

namespace tv::core {

/// Producer: packets of frame f become available at f/fps; successive
/// segments of the same frame are separated by their read latency
/// (overhead + bytes), and each frame's release carries OS scheduling
/// jitter.  The producer is sequential: it cannot start a frame before it
/// has finished reading the previous one.
class ProducerStage {
 public:
  ProducerStage(const PipelineConfig& config, TraceSink* trace)
      : config_(config),
        trace_(trace),
        // The exponential rates are loop-invariant; computing each division
        // once up front yields the exact double the per-packet division
        // produced, so the draws are unchanged bit for bit.
        read_rate_(1.0 / config.read_overhead_s),
        jitter_rate_(config.frame_jitter_mean_s > 0.0
                         ? 1.0 / config.frame_jitter_mean_s
                         : 0.0) {}

  /// Arrival time of the next packet.  Draws the frame-boundary jitter and
  /// the per-segment read latency from `rng`.
  [[nodiscard]] double release(const net::VideoPacket& packet,
                               std::size_t index, util::Rng& rng) {
    if (packet.frame_index != current_frame_) {
      current_frame_ = packet.frame_index;
      const double jitter = config_.frame_jitter_mean_s > 0.0
                                ? rng.exponential(jitter_rate_)
                                : 0.0;
      frame_cursor_ = std::max(
          frame_cursor_,
          static_cast<double>(packet.frame_index) / config_.fps + jitter);
    }
    const double read_time =
        rng.exponential(read_rate_) +
        config_.read_per_byte_s * static_cast<double>(packet.payload.size());
    frame_cursor_ += read_time;
    if (trace_ != nullptr) {
      trace_->event({Stage::kProducer, "release",
                     static_cast<std::int64_t>(index), -1, frame_cursor_,
                     read_time});
    }
    return frame_cursor_;
  }

 private:
  const PipelineConfig& config_;
  TraceSink* trace_;
  double read_rate_;
  double jitter_rate_;
  double frame_cursor_ = 0.0;
  int current_frame_ = -1;
};

/// Policy gate: when a packet's queueing delay exceeds the configured
/// sojourn threshold, encrypted non-I packets are shipped in clear — the
/// selective-encryption policy degrades to I-frame-only under pressure.
class PolicyGateStage {
 public:
  PolicyGateStage(const PipelineConfig& config, TraceSink* trace)
      : config_(config), trace_(trace) {}

  /// True when `packet` should be downgraded to cleartext.  Emits one
  /// policy-gate event per packet (value: the queue wait that drove the
  /// decision).
  [[nodiscard]] bool degrade(const net::VideoPacket& packet,
                             std::size_t index, double arrival_s,
                             double service_start_s) const {
    const double queue_wait = service_start_s - arrival_s;
    const bool degraded = config_.degrade_sojourn_s > 0.0 &&
                          packet.encrypted && !packet.is_i_frame &&
                          queue_wait > config_.degrade_sojourn_s;
    if (trace_ != nullptr) {
      trace_->event({Stage::kPolicyGate, degraded ? "degrade" : "pass",
                     static_cast<std::int64_t>(index), -1, service_start_s,
                     queue_wait});
    }
    return degraded;
  }

 private:
  const PipelineConfig& config_;
  TraceSink* trace_;
};

/// Service: the per-packet T_e/T_b/T_t draws of eq. (3), delegated to the
/// shared core::ServiceModel.
class ServiceStage {
 public:
  ServiceStage(const PipelineConfig& config, TraceSink* trace);

  [[nodiscard]] const ServiceModel& model() const { return model_; }

  /// T_e for an encrypted packet (mean from the calibrated DeviceProfile).
  /// The mean is a pure function of the payload size, so it is memoized the
  /// same way as the transmission mean below.
  [[nodiscard]] double encrypt(const net::VideoPacket& packet,
                               std::size_t index, double now_s,
                               util::Rng& rng) const {
    const double t_e = ServiceModel::draw_encryption(
        rng, cached_mean(enc_cache_, enc_cache_used_, packet.payload.size(),
                         [this](std::size_t n) {
                           return config_.device.encryption_seconds(
                               config_.algorithm, n);
                         }),
        enc_jitter_stddev_s_);
    if (trace_ != nullptr) {
      trace_->event({Stage::kService, "encrypt",
                     static_cast<std::int64_t>(index), -1, now_s, t_e});
    }
    return t_e;
  }

  /// PHY mean on-air time for this packet (computed once per packet; the
  /// per-attempt draws jitter around it).  Memoized per distinct wire
  /// size — the PHY law is a pure function of it, so the cached double
  /// is bit-identical to a fresh computation.
  [[nodiscard]] double transmission_mean_s(
      const net::VideoPacket& packet) const {
    return cached_mean(tx_cache_, tx_cache_used_, packet.wire_bytes(),
                       [this](std::size_t n) {
                         return wifi::transmission_time_s(config_.phy, n);
                       });
  }

  /// One MAC backoff round (T_b).  Each wait is added to *clock and
  /// *total as drawn (see ServiceModel::draw_backoff).
  double backoff(std::size_t index, double* clock, double* total,
                 util::Rng& rng) const {
    const ServiceModel::BackoffDraw draw =
        model_.draw_backoff(rng, clock, total);
    if (trace_ != nullptr) {
      trace_->event({Stage::kService, "backoff",
                     static_cast<std::int64_t>(index), -1,
                     clock != nullptr ? *clock : 0.0, draw.total_s});
    }
    return draw.total_s;
  }

  /// One on-air transmission draw (T_t).
  [[nodiscard]] double transmit(std::size_t index, double mean_s,
                                double now_s, util::Rng& rng) const {
    const double t_t = ServiceModel::draw_transmission(
        rng, mean_s, config_.tx_jitter_stddev_s);
    if (trace_ != nullptr) {
      trace_->event({Stage::kService, "transmit",
                     static_cast<std::int64_t>(index), -1, now_s + t_t, t_t});
    }
    return t_t;
  }

 private:
  using MeanCache = std::array<std::pair<std::size_t, double>, 8>;

  /// Linear-scan memo for a pure size -> seconds law.  A stream carries a
  /// handful of distinct packet sizes (full-MTU fragments + per-frame
  /// tails), and the cached value is the exact double a fresh computation
  /// would produce, so replay bytes are unchanged.
  template <typename Law>
  static double cached_mean(MeanCache& cache, std::size_t& used,
                            std::size_t bytes, Law law) {
    for (std::size_t i = 0; i < used; ++i) {
      if (cache[i].first == bytes) return cache[i].second;
    }
    const double mean = law(bytes);
    if (used < cache.size()) cache[used++] = {bytes, mean};
    return mean;
  }

  const PipelineConfig& config_;
  TraceSink* trace_;
  ServiceModel model_;
  double enc_jitter_stddev_s_;
  mutable MeanCache tx_cache_{};
  mutable std::size_t tx_cache_used_ = 0;
  mutable MeanCache enc_cache_{};
  mutable std::size_t enc_cache_used_ = 0;
};

/// Channel: decides, per on-air attempt, whether the receiver and the
/// eavesdropper each hear the packet.  With a ChannelModel configured the
/// outcomes come from per-listener Gilbert-Elliott chains (seeded from the
/// transfer seed) and scheduled AP outages; otherwise from the legacy
/// i.i.d. Bernoulli draws on the transfer RNG.
class ChannelStage {
 public:
  ChannelStage(const PipelineConfig& config, std::uint64_t transfer_seed,
               TraceSink* trace);

  struct Outcome {
    bool receiver_ok = false;
    bool eavesdropper_heard = false;
    bool in_outage = false;
  };

  /// One attempt at time `now_s`.  The eavesdropper's draw is skipped once
  /// it has already captured the packet (`eavesdropper_already`), exactly
  /// mirroring the historical short-circuit, so chain states and RNG
  /// consumption are unchanged.
  [[nodiscard]] Outcome attempt(std::size_t index, double now_s,
                                bool eavesdropper_already, util::Rng& rng) {
    Outcome out;
    if (config_.channel) {
      out.in_outage = wifi::in_outage(config_.channel->outages, now_s);
      if (out.in_outage) {
        out.receiver_ok = false;
        out.eavesdropper_heard = eavesdropper_already;
      } else {
        out.receiver_ok = !receiver_->lose_packet();
        out.eavesdropper_heard =
            eavesdropper_already ? true : !eavesdropper_->lose_packet();
      }
    } else {
      out.receiver_ok = !rng.bernoulli(config_.receiver_loss_prob);
      out.eavesdropper_heard =
          eavesdropper_already
              ? true
              : !rng.bernoulli(config_.eavesdropper_loss_prob);
    }
    if (trace_ != nullptr) {
      const char* kind =
          out.in_outage ? "outage" : (out.receiver_ok ? "deliver" : "loss");
      trace_->event({Stage::kChannel, kind, static_cast<std::int64_t>(index),
                     -1, now_s, 0.0});
      if (out.eavesdropper_heard && !eavesdropper_already) {
        trace_->event({Stage::kChannel, "eavesdrop",
                       static_cast<std::int64_t>(index), -1, now_s, 0.0});
      }
    }
    return out;
  }

 private:
  const PipelineConfig& config_;
  TraceSink* trace_;
  std::optional<wifi::GilbertElliottChannel> receiver_;
  std::optional<wifi::GilbertElliottChannel> eavesdropper_;
};

/// Transport/ARQ: RTP/UDP fires and forgets; the HTTP/TCP stand-in
/// retransmits with exponential backoff, capped waits, a retransmission
/// budget, and an optional per-packet deadline.
class TransportStage {
 public:
  TransportStage(const PipelineConfig& config, TraceSink* trace)
      : config_(config), trace_(trace) {}

  [[nodiscard]] bool reliable() const {
    return config_.transport == Transport::kHttpTcp;
  }
  [[nodiscard]] double per_packet_overhead_s() const {
    return reliable() ? config_.tcp_per_packet_overhead_s : 0.0;
  }

  enum class Verdict {
    kRetry,        ///< wait `wait_s`, then retransmit.
    kMaxAttempts,  ///< retransmission budget exhausted; give up.
    kDeadline,     ///< the retry would blow the per-packet deadline.
  };
  struct Decision {
    Verdict verdict = Verdict::kRetry;
    double wait_s = 0.0;  ///< recovery wait before the next attempt.
  };

  /// Decide what to do after a failed attempt (`attempts` made so far).
  [[nodiscard]] Decision after_loss(std::size_t index, int attempts,
                                    double now_s, double arrival_s) const {
    Decision decision;
    if (attempts >= config_.tcp_max_attempts) {
      decision.verdict = Verdict::kMaxAttempts;
      return decision;
    }
    // Loss recovery: the sender notices via dupacks/timeout and retries,
    // waiting exponentially longer each round (capped).
    double wait = config_.tcp_retx_penalty_s;
    for (int a = 1; a < attempts; ++a) wait *= config_.tcp_backoff_multiplier;
    if (config_.tcp_backoff_max_s > 0.0) {
      wait = std::min(wait, config_.tcp_backoff_max_s);
    }
    if (config_.packet_deadline_s > 0.0 &&
        (now_s + wait) - arrival_s > config_.packet_deadline_s) {
      decision.verdict = Verdict::kDeadline;
      return decision;
    }
    decision.wait_s = wait;
    if (trace_ != nullptr) {
      trace_->event({Stage::kTransport, "retransmit",
                     static_cast<std::int64_t>(index), -1, now_s, wait});
    }
    return decision;
  }

  /// Emit the packet's terminal transport event ("deliver", "lost",
  /// "deadline", "max_attempts", "outage"); value is the packet delay.
  void finish(std::size_t index, const char* kind, double completion_s,
              double delay_s) const {
    if (trace_ != nullptr) {
      trace_->event({core::Stage::kTransport, kind,
                     static_cast<std::int64_t>(index), -1, completion_s,
                     delay_s});
    }
  }

 private:
  const PipelineConfig& config_;
  TraceSink* trace_;
};

}  // namespace tv::core
