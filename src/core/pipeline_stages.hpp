// The sender transfer decomposed into composable stages (Fig. 3):
//
//   producer -> policy gate -> service (T_e + T_b + T_t) -> channel
//                                   ^----- transport/ARQ retry loop ----'
//
// Each stage is a small object with explicit inputs and outputs so a new
// transport or channel model plugs in without touching the others:
//
//   * ProducerStage     — release times: frame cadence, scheduling jitter,
//                         per-segment read latency;
//   * PolicyGateStage   — queue-pressure degradation (selective encryption
//                         collapses to I-frame-only under pressure);
//   * ServiceStage      — the eq. (3) service law, via the shared
//                         core::ServiceModel (the only place T_e/T_b/T_t
//                         are drawn);
//   * ChannelStage      — per-attempt receiver/eavesdropper outcomes:
//                         i.i.d. Bernoulli or Gilbert-Elliott chains plus
//                         scheduled AP outages;
//   * TransportStage    — the ARQ policy: fire-and-forget RTP/UDP or the
//                         reliable HTTP/TCP stand-in with exponential
//                         retransmission backoff and per-packet deadlines.
//
// Determinism contract: the stages draw from the RNGs handed to them in a
// fixed order, so core::simulate_transfer composed from these stages is
// byte-identical to the historical monolithic implementation (pinned by
// the sweep golden file and the CLI byte-identity checks).  Every stage
// takes an optional TraceSink; with the sink null the stages cost one
// never-taken branch per event site and consume identical randomness.
#pragma once

#include <cstdint>
#include <optional>

#include "core/pipeline.hpp"
#include "core/service_model.hpp"
#include "core/trace.hpp"
#include "util/rng.hpp"

namespace tv::core {

/// Producer: packets of frame f become available at f/fps; successive
/// segments of the same frame are separated by their read latency
/// (overhead + bytes), and each frame's release carries OS scheduling
/// jitter.  The producer is sequential: it cannot start a frame before it
/// has finished reading the previous one.
class ProducerStage {
 public:
  ProducerStage(const PipelineConfig& config, TraceSink* trace)
      : config_(config), trace_(trace) {}

  /// Arrival time of the next packet.  Draws the frame-boundary jitter and
  /// the per-segment read latency from `rng`.
  [[nodiscard]] double release(const net::VideoPacket& packet,
                               std::size_t index, util::Rng& rng);

 private:
  const PipelineConfig& config_;
  TraceSink* trace_;
  double frame_cursor_ = 0.0;
  int current_frame_ = -1;
};

/// Policy gate: when a packet's queueing delay exceeds the configured
/// sojourn threshold, encrypted non-I packets are shipped in clear — the
/// selective-encryption policy degrades to I-frame-only under pressure.
class PolicyGateStage {
 public:
  PolicyGateStage(const PipelineConfig& config, TraceSink* trace)
      : config_(config), trace_(trace) {}

  /// True when `packet` should be downgraded to cleartext.  Emits one
  /// policy-gate event per packet (value: the queue wait that drove the
  /// decision).
  [[nodiscard]] bool degrade(const net::VideoPacket& packet,
                             std::size_t index, double arrival_s,
                             double service_start_s) const;

 private:
  const PipelineConfig& config_;
  TraceSink* trace_;
};

/// Service: the per-packet T_e/T_b/T_t draws of eq. (3), delegated to the
/// shared core::ServiceModel.
class ServiceStage {
 public:
  ServiceStage(const PipelineConfig& config, TraceSink* trace);

  [[nodiscard]] const ServiceModel& model() const { return model_; }

  /// T_e for an encrypted packet (mean from the calibrated DeviceProfile).
  [[nodiscard]] double encrypt(const net::VideoPacket& packet,
                               std::size_t index, double now_s,
                               util::Rng& rng) const;

  /// PHY mean on-air time for this packet (computed once per packet; the
  /// per-attempt draws jitter around it).
  [[nodiscard]] double transmission_mean_s(
      const net::VideoPacket& packet) const;

  /// One MAC backoff round (T_b).  Each wait is added to *clock and
  /// *total as drawn (see ServiceModel::draw_backoff).
  double backoff(std::size_t index, double* clock, double* total,
                 util::Rng& rng) const;

  /// One on-air transmission draw (T_t).
  [[nodiscard]] double transmit(std::size_t index, double mean_s,
                                double now_s, util::Rng& rng) const;

 private:
  const PipelineConfig& config_;
  TraceSink* trace_;
  ServiceModel model_;
};

/// Channel: decides, per on-air attempt, whether the receiver and the
/// eavesdropper each hear the packet.  With a ChannelModel configured the
/// outcomes come from per-listener Gilbert-Elliott chains (seeded from the
/// transfer seed) and scheduled AP outages; otherwise from the legacy
/// i.i.d. Bernoulli draws on the transfer RNG.
class ChannelStage {
 public:
  ChannelStage(const PipelineConfig& config, std::uint64_t transfer_seed,
               TraceSink* trace);

  struct Outcome {
    bool receiver_ok = false;
    bool eavesdropper_heard = false;
    bool in_outage = false;
  };

  /// One attempt at time `now_s`.  The eavesdropper's draw is skipped once
  /// it has already captured the packet (`eavesdropper_already`), exactly
  /// mirroring the historical short-circuit, so chain states and RNG
  /// consumption are unchanged.
  [[nodiscard]] Outcome attempt(std::size_t index, double now_s,
                                bool eavesdropper_already, util::Rng& rng);

 private:
  const PipelineConfig& config_;
  TraceSink* trace_;
  std::optional<wifi::GilbertElliottChannel> receiver_;
  std::optional<wifi::GilbertElliottChannel> eavesdropper_;
};

/// Transport/ARQ: RTP/UDP fires and forgets; the HTTP/TCP stand-in
/// retransmits with exponential backoff, capped waits, a retransmission
/// budget, and an optional per-packet deadline.
class TransportStage {
 public:
  TransportStage(const PipelineConfig& config, TraceSink* trace)
      : config_(config), trace_(trace) {}

  [[nodiscard]] bool reliable() const {
    return config_.transport == Transport::kHttpTcp;
  }
  [[nodiscard]] double per_packet_overhead_s() const {
    return reliable() ? config_.tcp_per_packet_overhead_s : 0.0;
  }

  enum class Verdict {
    kRetry,        ///< wait `wait_s`, then retransmit.
    kMaxAttempts,  ///< retransmission budget exhausted; give up.
    kDeadline,     ///< the retry would blow the per-packet deadline.
  };
  struct Decision {
    Verdict verdict = Verdict::kRetry;
    double wait_s = 0.0;  ///< recovery wait before the next attempt.
  };

  /// Decide what to do after a failed attempt (`attempts` made so far).
  [[nodiscard]] Decision after_loss(std::size_t index, int attempts,
                                    double now_s, double arrival_s) const;

  /// Emit the packet's terminal transport event ("deliver", "lost",
  /// "deadline", "max_attempts", "outage"); value is the packet delay.
  void finish(std::size_t index, const char* kind, double completion_s,
              double delay_s) const;

 private:
  const PipelineConfig& config_;
  TraceSink* trace_;
};

}  // namespace tv::core
