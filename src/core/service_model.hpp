// The single service law of eq. (3): T = T_e(P) + T_b + T_t.
//
// Every per-packet stage draw of the sender — encryption time T_e (eq. 15),
// MAC backoff T_b as a geometric number of Exp(lambda_b) collision waits
// (eqs. 6-7), and transmission time T_t (eq. 16) — lives here and nowhere
// else.  Both implementations of the sender consume this model:
//
//   * core::simulate_transfer (the packet-faithful transfer pipeline) draws
//     all three stages from its single per-transfer RNG;
//   * sim::simulate_sender (the event-driven 2-MMPP/G/1 validator) draws
//     each stage from its own derived RNG stream.
//
// The draw functions take the RNG as a parameter precisely so both stream
// disciplines share one implementation: identical seeds and parameters
// produce bit-identical stage draws (pinned by ServiceModelEquivalence
// tests).  Any calibration or resilience change to the service law is made
// here once and both simulators pick it up.
#pragma once

#include <algorithm>
#include <cstdint>

#include "core/device_profile.hpp"
#include "util/rng.hpp"

namespace tv::core {

/// Owner of the per-packet T_e/T_b/T_t draws.  The MAC knobs (per-attempt
/// success probability p_s and backoff wait rate lambda_b) are state; the
/// Gaussian stages are parameterised per draw because their means depend on
/// the packet (payload size, frame class) at each call site.
struct ServiceModel {
  double mac_success_prob = 0.78;  ///< p_s of eq. (6).
  double backoff_rate = 420.0;     ///< lambda_b of eq. (7), 1/s.

  /// One MAC backoff round: a geometric number of collisions, each followed
  /// by an exponential wait.
  struct BackoffDraw {
    std::uint64_t collisions = 0;
    double total_s = 0.0;  ///< sum of the collision waits, in draw order.
  };

  /// T_e (eq. 15): Gaussian around the per-packet mean, clamped at zero.
  /// Consumes exactly one Gaussian variate from `rng`.  Callers skip the
  /// call entirely for packets the policy leaves clear (the point mass at
  /// T_e = 0).
  [[nodiscard]] static double draw_encryption(util::Rng& rng, double mean_s,
                                              double stddev_s) {
    return std::max(0.0, rng.gaussian(mean_s, stddev_s));
  }

  /// T_e convenience: mean from the calibrated DeviceProfile's measured
  /// per-byte encryption speed, jitter from the same calibration.
  [[nodiscard]] static double draw_encryption(util::Rng& rng,
                                              const DeviceProfile& device,
                                              crypto::Algorithm algorithm,
                                              std::size_t payload_bytes) {
    return draw_encryption(rng,
                           device.encryption_seconds(algorithm, payload_bytes),
                           device.speed(algorithm).jitter_stddev_s);
  }

  /// T_b (eqs. 6-7): draws the geometric collision count, then one
  /// Exp(backoff_rate) wait per collision.  Each wait is added to every
  /// non-null accumulator as it is drawn, preserving the caller's
  /// floating-point accumulation order exactly (the transfer pipeline
  /// advances both its virtual clock and the packet's running backoff
  /// total per wait; summing first and adding once would change the
  /// rounding and break byte-identical replays).
  [[nodiscard]] BackoffDraw draw_backoff(util::Rng& rng,
                                         double* clock = nullptr,
                                         double* accumulator = nullptr) const {
    BackoffDraw draw;
    draw.collisions = rng.geometric_failures(mac_success_prob);
    for (std::uint64_t c = 0; c < draw.collisions; ++c) {
      const double wait = rng.exponential(backoff_rate);
      draw.total_s += wait;
      if (clock != nullptr) *clock += wait;
      if (accumulator != nullptr) *accumulator += wait;
    }
    return draw;
  }

  /// T_t (eq. 16): Gaussian around the PHY transmission time, clamped at
  /// zero.  Consumes exactly one Gaussian variate from `rng`.
  [[nodiscard]] static double draw_transmission(util::Rng& rng, double mean_s,
                                                double stddev_s) {
    return std::max(0.0, rng.gaussian(mean_s, stddev_s));
  }
};

}  // namespace tv::core
