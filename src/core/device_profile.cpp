#include "core/device_profile.hpp"

#include <stdexcept>

namespace tv::core {

const CryptoSpeed& DeviceProfile::speed(crypto::Algorithm a) const {
  switch (a) {
    case crypto::Algorithm::kAes128: return aes128;
    case crypto::Algorithm::kAes256: return aes256;
    case crypto::Algorithm::kTripleDes: return triple_des;
  }
  throw std::invalid_argument{"DeviceProfile::speed: bad algorithm"};
}

double DeviceProfile::crypto_j_per_mb(crypto::Algorithm a) const {
  switch (a) {
    case crypto::Algorithm::kAes128: return aes128_j_per_mb;
    case crypto::Algorithm::kAes256: return aes256_j_per_mb;
    case crypto::Algorithm::kTripleDes: return triple_des_j_per_mb;
  }
  throw std::invalid_argument{"DeviceProfile::crypto_j_per_mb: bad algorithm"};
}

double DeviceProfile::encryption_seconds(crypto::Algorithm a,
                                         std::size_t payload_bytes) const {
  const CryptoSpeed& s = speed(a);
  return s.per_packet_overhead_s +
         static_cast<double>(payload_bytes) / (s.throughput_mb_s * 1e6);
}

energy::PowerCoefficients DeviceProfile::power_coefficients(
    crypto::Algorithm a) const {
  return energy::PowerCoefficients{base_power_w, crypto_j_per_mb(a),
                                   radio_tx_power_w, crypto_max_power_w};
}

DeviceProfile samsung_galaxy_s2() {
  DeviceProfile d;
  d.name = "Samsung Galaxy S-II";
  d.key = "samsung";
  d.aes128 = {7.0, 220e-6, 45e-6};
  d.aes256 = {5.2, 220e-6, 55e-6};
  d.triple_des = {1.1, 260e-6, 120e-6};
  d.base_power_w = 1.00;
  d.aes128_j_per_mb = 16.0;
  d.aes256_j_per_mb = 20.0;
  d.triple_des_j_per_mb = 30.0;
  d.crypto_max_power_w = 1.45;
  d.radio_tx_power_w = 0.65;
  return d;
}

DeviceProfile htc_amaze_4g() {
  DeviceProfile d;
  d.name = "HTC Amaze 4G";
  d.key = "htc";
  d.aes128 = {8.5, 180e-6, 40e-6};
  d.aes256 = {6.4, 180e-6, 50e-6};
  d.triple_des = {1.4, 210e-6, 100e-6};
  d.base_power_w = 1.45;
  d.aes128_j_per_mb = 8.0;
  d.aes256_j_per_mb = 10.4;
  d.triple_des_j_per_mb = 15.0;
  d.crypto_max_power_w = 0.58;
  d.radio_tx_power_w = 0.70;
  return d;
}

DeviceProfile device_from_string(std::string_view name) {
  for (const DeviceProfile& d : {samsung_galaxy_s2(), htc_amaze_4g()}) {
    if (name == d.key || name == d.name) return d;
  }
  throw std::invalid_argument{"unknown device: " + std::string{name} +
                              " (samsung|htc)"};
}

}  // namespace tv::core
