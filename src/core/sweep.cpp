#include "core/sweep.hpp"

#include <chrono>
#include <cstdarg>
#include <cstdio>
#include <stdexcept>
#include <string>

#include "util/rng.hpp"
#include "util/thread_pool.hpp"

namespace tv::core {

namespace {

std::string fmt(const char* format, ...) {
  char buf[256];
  va_list args;
  va_start(args, format);
  std::vsnprintf(buf, sizeof buf, format, args);
  va_end(args);
  return buf;
}

std::string json_escape(const std::string& s) {
  std::string out;
  out.reserve(s.size());
  for (char c : s) {
    if (c == '"' || c == '\\') out.push_back('\\');
    out.push_back(c);
  }
  return out;
}

/// Full-precision statistics object for JSONL ("null" when no samples, so
/// quality-off sweeps stay parseable).
std::string json_stats(const util::RunningStats& s) {
  if (s.count() == 0) return "null";
  return fmt("{\"n\":%zu,\"mean\":%.17g,\"ci95\":%.17g,\"min\":%.17g,"
             "\"max\":%.17g}",
             s.count(), s.mean(), s.ci95_halfwidth(), s.min(), s.max());
}

std::string csv_stats(const util::RunningStats& s) {
  if (s.count() == 0) return ",";
  return fmt("%.10g,%.10g", s.mean(), s.ci95_halfwidth());
}

/// Stage aggregates as one JSON object keyed by stage; histograms are
/// sparse [[bin, count], ...] pairs (bin edges are fixed, see
/// TimeHistogram::bin_lower_s).
std::string json_stage_stats(const StageAggregates& stages) {
  std::string out = "{";
  for (std::size_t s = 0; s < kStageCount; ++s) {
    const StageAggregates::Entry& entry = stages.stages[s];
    if (s != 0) out += ",";
    out += fmt("\"%s\":{\"events\":%llu,\"time_s\":",
               stage_key(static_cast<Stage>(s)),
               static_cast<unsigned long long>(entry.events));
    out += json_stats(entry.time_s);
    out += ",\"hist\":[";
    bool first = true;
    for (int bin = 0; bin < TimeHistogram::kBins; ++bin) {
      if (entry.histogram.count(bin) == 0) continue;
      if (!first) out += ",";
      first = false;
      out += fmt("[%d,%llu]", bin,
                 static_cast<unsigned long long>(entry.histogram.count(bin)));
    }
    out += "]}";
  }
  out += "}";
  return out;
}

}  // namespace

void SweepSpec::validate() const {
  const auto require = [](bool ok, const char* what) {
    if (!ok) throw std::invalid_argument{std::string{"SweepSpec: "} + what};
  };
  require(!motions.empty(), "no motion levels");
  require(!gop_sizes.empty(), "no GOP sizes");
  require(!policies.empty(), "no policies");
  require(!algorithms.empty(), "no algorithms");
  require(!devices.empty(), "no devices");
  require(!transports.empty(), "no transports");
  require(!channels.empty(), "no channel entries");
  require(repetitions >= 1, "repetitions < 1");
  require(fps > 0.0, "fps <= 0");
  for (int gop : gop_sizes) {
    require(gop >= 1, "GOP size < 1");
    require(frames >= gop, "frames < GOP size");
  }
  for (const auto& pol : policies) pol.validate();
}

std::size_t SweepSpec::cell_count() const {
  return motions.size() * gop_sizes.size() * policies.size() *
         algorithms.size() * devices.size() * transports.size() *
         channels.size();
}

std::vector<SweepCell> enumerate_cells(const SweepSpec& spec) {
  std::vector<SweepCell> cells;
  cells.reserve(spec.cell_count());
  for (const auto motion : spec.motions) {
    for (const int gop : spec.gop_sizes) {
      for (const auto& shape : spec.policies) {
        for (const auto algorithm : spec.algorithms) {
          for (const auto& device : spec.devices) {
            for (const auto transport : spec.transports) {
              for (const auto& channel : spec.channels) {
                SweepCell cell;
                cell.index = cells.size();
                cell.motion = motion;
                cell.gop_size = gop;
                cell.policy = shape;
                cell.policy.algorithm = algorithm;
                cell.device = device;
                cell.transport = transport;
                cell.channel = channel;
                cell.seed = spec.seed_mode == SweepSpec::SeedMode::kShared
                                ? spec.seed
                                : util::derive_seed(spec.seed, 0x5eedC311ULL,
                                                    cell.index);
                cells.push_back(std::move(cell));
              }
            }
          }
        }
      }
    }
  }
  return cells;
}

void TableSink::begin(const SweepSpec& spec) {
  quality_ = spec.evaluate_quality;
  out_ << fmt("%-4s %-6s %-4s %-10s %-7s %-8s %-4s %-18s %-16s", "cell",
              "motion", "gop", "policy", "alg", "device", "tx",
              "delay ms", "power W");
  if (quality_) out_ << fmt(" %-14s %-14s", "rx dB", "eaves dB");
  out_ << fmt(" %-7s %s\n", "reps", "fail");
}

void TableSink::cell(const CellResult& r) {
  const auto& e = r.result;
  out_ << fmt("%-4zu %-6s %-4d %-10s %-7s %-8s %-4s %-18s %-16s",
              r.cell.index, video::to_string(r.cell.motion), r.cell.gop_size,
              r.cell.policy.spec().c_str(),
              std::string{crypto::to_string(r.cell.policy.algorithm)}.c_str(),
              r.cell.device.key.c_str(), transport_key(r.cell.transport),
              fmt("%.2f ±%.2f", e.delay_ms.mean(),
                  e.delay_ms.ci95_halfwidth())
                  .c_str(),
              fmt("%.3f ±%.3f", e.power_w.mean(), e.power_w.ci95_halfwidth())
                  .c_str());
  if (quality_) {
    out_ << fmt(" %-14s %-14s",
                fmt("%.2f ±%.2f", e.receiver_psnr_db.mean(),
                    e.receiver_psnr_db.ci95_halfwidth())
                    .c_str(),
                fmt("%.2f ±%.2f", e.eavesdropper_psnr_db.mean(),
                    e.eavesdropper_psnr_db.ci95_halfwidth())
                    .c_str());
  }
  out_ << fmt(" %-7s %zu\n",
              fmt("%d/%d", e.completed_repetitions,
                  e.completed_repetitions + e.failed_repetitions)
                  .c_str(),
              e.failures.size());
  if (e.stage_stats) {
    out_ << "     stages:";
    for (std::size_t s = 0; s < kStageCount; ++s) {
      const StageAggregates::Entry& entry = e.stage_stats->stages[s];
      out_ << fmt(" %s n=%llu mean=%.3gms", stage_key(static_cast<Stage>(s)),
                  static_cast<unsigned long long>(entry.events),
                  entry.time_s.mean() * 1e3);
    }
    out_ << "\n";
  }
}

void JsonlSink::cell(const CellResult& r) {
  const auto& e = r.result;
  out_ << "{\"cell\":" << r.cell.index << ",\"motion\":\""
       << video::to_string(r.cell.motion) << "\",\"gop\":" << r.cell.gop_size
       << ",\"policy\":\"" << json_escape(r.cell.policy.spec())
       << "\",\"algorithm\":\"" << crypto::to_string(r.cell.policy.algorithm)
       << "\",\"device\":\"" << json_escape(r.cell.device.key)
       << "\",\"transport\":\"" << transport_key(r.cell.transport)
       << "\",\"seed\":" << r.cell.seed
       << ",\"completed\":" << e.completed_repetitions
       << ",\"failed\":" << e.failed_repetitions
       << ",\"failures\":" << e.failures.size()
       << fmt(",\"counters\":{\"retransmissions\":%zu,\"deadline_drops\":%zu,"
              "\"outage_drops\":%zu,\"degraded_packets\":%zu}",
              e.total_retransmissions, e.total_deadline_drops,
              e.total_outage_drops, e.total_degraded_packets)
       << ",\"encrypted_packet_fraction\":"
       << fmt("%.17g", e.encryption.packet_fraction())
       << ",\"delay_ms\":" << json_stats(e.delay_ms)
       << ",\"duration_s\":" << json_stats(e.duration_s)
       << ",\"power_w\":" << json_stats(e.power_w)
       << ",\"receiver_psnr_db\":" << json_stats(e.receiver_psnr_db)
       << ",\"receiver_mos\":" << json_stats(e.receiver_mos)
       << ",\"eavesdropper_psnr_db\":" << json_stats(e.eavesdropper_psnr_db)
       << ",\"eavesdropper_mos\":" << json_stats(e.eavesdropper_mos);
  if (e.stage_stats) {
    out_ << ",\"stages\":" << json_stage_stats(*e.stage_stats);
  }
  out_ << fmt(",\"predicted\":{\"delay_ms\":%.17g,\"eavesdropper_psnr_db\":"
              "%.17g,\"power_w\":%.17g}}\n",
              e.predicted_delay.mean_delay_ms,
              e.predicted_eavesdropper.psnr_db,
              e.predicted_power.mean_power_w);
}

void CsvSink::begin(const SweepSpec& spec) {
  stage_stats_ = spec.collect_stage_stats;
  out_ << "cell,motion,gop,policy,algorithm,device,transport,seed,"
          "completed,failed,failures,retransmissions,deadline_drops,"
          "outage_drops,degraded_packets,delay_ms_mean,delay_ms_ci95,"
          "power_w_mean,power_w_ci95,receiver_psnr_db_mean,"
          "receiver_psnr_db_ci95,eavesdropper_psnr_db_mean,"
          "eavesdropper_psnr_db_ci95,predicted_delay_ms,"
          "predicted_eavesdropper_psnr_db,predicted_power_w";
  if (stage_stats_) {
    for (std::size_t s = 0; s < kStageCount; ++s) {
      const char* key = stage_key(static_cast<Stage>(s));
      out_ << fmt(",%s_events,%s_time_mean_s", key, key);
    }
  }
  out_ << "\n";
}

void CsvSink::cell(const CellResult& r) {
  const auto& e = r.result;
  out_ << fmt("%zu,%s,%d,%s,%s,%s,%s,%llu,%d,%d,%zu,%zu,%zu,%zu,%zu,",
              r.cell.index, video::to_string(r.cell.motion), r.cell.gop_size,
              r.cell.policy.spec().c_str(),
              std::string{crypto::to_string(r.cell.policy.algorithm)}.c_str(),
              r.cell.device.key.c_str(), transport_key(r.cell.transport),
              static_cast<unsigned long long>(r.cell.seed),
              e.completed_repetitions, e.failed_repetitions,
              e.failures.size(), e.total_retransmissions,
              e.total_deadline_drops, e.total_outage_drops,
              e.total_degraded_packets)
       << csv_stats(e.delay_ms) << "," << csv_stats(e.power_w) << ","
       << csv_stats(e.receiver_psnr_db) << ","
       << csv_stats(e.eavesdropper_psnr_db) << ","
       << fmt("%.10g,%.10g,%.10g", e.predicted_delay.mean_delay_ms,
              e.predicted_eavesdropper.psnr_db,
              e.predicted_power.mean_power_w);
  if (stage_stats_) {
    for (std::size_t s = 0; s < kStageCount; ++s) {
      if (e.stage_stats) {
        const StageAggregates::Entry& entry = e.stage_stats->stages[s];
        out_ << fmt(",%llu,%.10g",
                    static_cast<unsigned long long>(entry.events),
                    entry.time_s.mean());
      } else {
        out_ << ",,";
      }
    }
  }
  out_ << "\n";
}

std::shared_ptr<const Workload> WorkloadCache::get(video::MotionLevel motion,
                                                   int gop_size, int frames,
                                                   std::uint64_t seed,
                                                   double fps) {
  const Key key{static_cast<int>(motion), gop_size, frames, seed, fps};
  std::shared_future<std::shared_ptr<const Workload>> future;
  std::promise<std::shared_ptr<const Workload>> promise;
  bool builder = false;
  {
    std::lock_guard lock{mu_};
    const auto it = cache_.find(key);
    if (it != cache_.end()) {
      future = it->second;
    } else {
      builder = true;
      future = promise.get_future().share();
      cache_.emplace(key, future);
    }
  }
  if (builder) {
    // Build outside the lock: siblings needing other keys proceed, and
    // siblings needing this key block on the future below.
    try {
      promise.set_value(std::make_shared<const Workload>(
          build_workload(motion, gop_size, frames, seed, fps)));
    } catch (...) {
      promise.set_exception(std::current_exception());
    }
  }
  return future.get();  // rethrows a build failure to every waiter.
}

std::size_t WorkloadCache::size() const {
  std::lock_guard lock{mu_};
  return cache_.size();
}

SweepSummary SweepRunner::run(const SweepSpec& spec, ResultSink& sink) {
  spec.validate();
  const std::vector<SweepCell> cells = enumerate_cells(spec);

  // Fail fast on configuration mistakes before any cell runs: a bad
  // channel knob should abort the sweep, not surface as thousands of
  // kException failure records.
  for (const SweepCell& cell : cells) {
    PipelineConfig pipeline;
    pipeline.device = cell.device;
    pipeline.transport = cell.transport;
    pipeline.channel = cell.channel;
    pipeline.fps = spec.fps;
    core::validate(pipeline);
  }

  const auto t0 = std::chrono::steady_clock::now();
  sink.begin(spec);

  // Cells complete in any order; slots + next_flush turn that back into
  // strictly in-order sink calls (and free each result once emitted).
  std::vector<std::unique_ptr<CellResult>> slots(cells.size());
  std::size_t next_flush = 0;
  std::mutex flush_mu;
  auto store_and_flush = [&](std::size_t index,
                             std::unique_ptr<CellResult> result) {
    std::lock_guard lock{flush_mu};
    slots[index] = std::move(result);
    while (next_flush < slots.size() && slots[next_flush]) {
      sink.cell(*slots[next_flush]);
      slots[next_flush].reset();
      ++next_flush;
    }
  };

  auto run_cell = [&](std::size_t index) {
    const SweepCell& cell = cells[index];
    ExperimentSpec es;
    es.policy = cell.policy;
    es.pipeline.device = cell.device;
    es.pipeline.transport = cell.transport;
    es.pipeline.channel = cell.channel;
    es.pipeline.fps = spec.fps;
    es.repetitions = spec.repetitions;
    es.seed = cell.seed;
    es.evaluate_quality = spec.evaluate_quality;
    es.sensitivity_fraction = default_sensitivity(cell.motion);
    es.collect_stage_stats = spec.collect_stage_stats;
    const std::shared_ptr<const Workload> workload =
        cache_.get(cell.motion, cell.gop_size, spec.frames, spec.seed,
                   spec.fps);
    auto result = std::make_unique<CellResult>();
    result->cell = cell;
    result->result = run_experiment(es, *workload, pool_);
    store_and_flush(index, std::move(result));
  };

  if (pool_ != nullptr && cells.size() > 1) {
    pool_->parallel_for(cells.size(), run_cell);
  } else {
    for (std::size_t i = 0; i < cells.size(); ++i) run_cell(i);
  }
  sink.end();

  SweepSummary summary;
  summary.cells = cells.size();
  summary.workloads = cache_.size();
  summary.threads = pool_ != nullptr ? pool_->thread_count() : 1;
  summary.wall_s = std::chrono::duration<double>(
                       std::chrono::steady_clock::now() - t0)
                       .count();
  return summary;
}

}  // namespace tv::core
