// Core-layer aliases for the zero-copy buffer types (docs/architecture.md
// "Buffer ownership").  The definitions live downstream of their
// dependencies — Arena and ByteView in util (no deps), PacketBuf in net
// (knows the RTP wire layout) — but the pipeline-facing names are spelled
// core::, matching the layer that orchestrates packet lifetimes.
#pragma once

#include "net/packet_buf.hpp"
#include "util/arena.hpp"
#include "util/bytes.hpp"

namespace tv::core {

using Arena = util::Arena;
using ByteView = util::ByteView;
using PacketBuf = net::PacketBuf;

}  // namespace tv::core
