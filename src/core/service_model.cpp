#include "core/service_model.hpp"

#include <algorithm>

namespace tv::core {

double ServiceModel::draw_encryption(util::Rng& rng, double mean_s,
                                     double stddev_s) {
  return std::max(0.0, rng.gaussian(mean_s, stddev_s));
}

double ServiceModel::draw_encryption(util::Rng& rng,
                                     const DeviceProfile& device,
                                     crypto::Algorithm algorithm,
                                     std::size_t payload_bytes) {
  return draw_encryption(rng,
                         device.encryption_seconds(algorithm, payload_bytes),
                         device.speed(algorithm).jitter_stddev_s);
}

ServiceModel::BackoffDraw ServiceModel::draw_backoff(
    util::Rng& rng, double* clock, double* accumulator) const {
  BackoffDraw draw;
  draw.collisions = rng.geometric_failures(mac_success_prob);
  for (std::uint64_t c = 0; c < draw.collisions; ++c) {
    const double wait = rng.exponential(backoff_rate);
    draw.total_s += wait;
    if (clock != nullptr) *clock += wait;
    if (accumulator != nullptr) *accumulator += wait;
  }
  return draw;
}

double ServiceModel::draw_transmission(util::Rng& rng, double mean_s,
                                       double stddev_s) {
  return std::max(0.0, rng.gaussian(mean_s, stddev_s));
}

}  // namespace tv::core
