#include "core/service_model.hpp"

// The draw functions live inline in the header: they sit on the per-packet
// hot path of both simulators, and keeping them visible to callers lets the
// compiler fold them into the transfer loop (the target is baseline x86-64,
// so inlining cannot introduce FMA contraction and every draw stays
// bit-identical — pinned by the sweep/cell goldens).
