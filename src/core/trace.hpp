// Zero-overhead-when-off instrumentation for the sender pipeline stages.
//
// Every stage of a transfer — producer, policy gate, service (T_e/T_b/T_t),
// channel, transport/ARQ — can emit TraceEvents into a TraceSink.  The hook
// is a plain nullable pointer: with tracing off (the default everywhere)
// the stages take a single never-taken branch per event site and draw the
// exact same random numbers, so golden outputs are byte-identical whether
// the hook exists or not.
//
// Two consumers ship with the library:
//   * JsonlTraceSink — one JSON object per event per line (the
//     `thriftyvid ... --trace=FILE` format; schema in
//     docs/architecture.md);
//   * StageStatsCollector — per-stage counters, per-event time statistics
//     and log-spaced time histograms, surfaced as StageAggregates in
//     ExperimentResult and the sweep sinks.
//
// Per-stage timing visibility is exactly what encrypted-traffic QoE
// inference treats as a first-class signal: the trace carries enough to
// reconstruct per-packet delay decompositions without touching the stages.
#pragma once

#include <array>
#include <cstddef>
#include <cstdint>
#include <ostream>

#include "util/stats.hpp"

namespace tv::core {

/// The composable stages of the sender (docs/architecture.md).
enum class Stage {
  kProducer,    ///< read/packetize: releases packets into the send queue.
  kPolicyGate,  ///< queue-pressure degradation decision.
  kService,     ///< the service law draws: T_e, T_b, T_t.
  kChannel,     ///< per-attempt receiver/eavesdropper outcome.
  kTransport,   ///< ARQ retransmissions and terminal delivery verdicts.
};
inline constexpr std::size_t kStageCount = 5;

/// Short machine-readable stage key ("producer", "policy_gate", ...).
[[nodiscard]] const char* stage_key(Stage stage);

/// One instrumented event.  `kind` is a static string naming the event
/// within its stage ("encrypt", "backoff", "transmit", "retransmit",
/// "deliver", ...; full schema in docs/architecture.md).  `value_s` is the
/// stage duration for duration-bearing events and 0 for pure outcomes.
struct TraceEvent {
  Stage stage = Stage::kProducer;
  const char* kind = "";
  std::int64_t packet = -1;  ///< packet index; -1 when not packet-specific.
  /// Repetition index (stamped by run_experiment) or validation-grid cell
  /// index (stamped by ValidationRunner); -1 when untagged.
  int repetition = -1;
  double time_s = 0.0;   ///< simulation clock at the event.
  double value_s = 0.0;  ///< stage duration (0 for outcome events).
};

/// Consumer of trace events.  Instrumented runs are serialized (repetitions
/// and validation cells run in order), so implementations need no locking.
class TraceSink {
 public:
  virtual ~TraceSink() = default;
  virtual void event(const TraceEvent& e) = 0;
};

/// Fixed log-spaced histogram of stage times: `kBinsPerDecade` bins per
/// decade from `kFloorS` up, with explicit under/overflow bins, so two runs
/// produce identical (and mergeable) counts without data-dependent bin
/// edges.
class TimeHistogram {
 public:
  static constexpr int kBinsPerDecade = 4;
  static constexpr int kDecades = 8;  ///< floor .. floor * 10^8 (1e-7..10 s).
  static constexpr double kFloorS = 1e-7;
  /// Bin 0 is underflow (< kFloorS, including exact zeros); the last bin is
  /// overflow.
  static constexpr int kBins = kBinsPerDecade * kDecades + 2;

  void add(double seconds);
  void merge(const TimeHistogram& other);

  [[nodiscard]] std::uint64_t count(int bin) const { return counts_[bin]; }
  [[nodiscard]] std::uint64_t total() const { return total_; }
  /// Lower edge of bin i (0 for the underflow bin).
  [[nodiscard]] static double bin_lower_s(int bin);

 private:
  std::array<std::uint64_t, kBins> counts_{};
  std::uint64_t total_ = 0;
};

/// Per-stage aggregates: event counters, running statistics over the
/// events' `value_s`, and a time histogram.  Collected by
/// StageStatsCollector; surfaced in ExperimentResult::stage_stats and the
/// sweep sinks when stage-stats collection is on.
struct StageAggregates {
  struct Entry {
    std::uint64_t events = 0;
    util::RunningStats time_s;  ///< over value_s of the stage's events.
    TimeHistogram histogram;

    void add(double value_s);
    void merge(const Entry& other);
  };

  std::array<Entry, kStageCount> stages;

  [[nodiscard]] Entry& operator[](Stage stage) {
    return stages[static_cast<std::size_t>(stage)];
  }
  [[nodiscard]] const Entry& operator[](Stage stage) const {
    return stages[static_cast<std::size_t>(stage)];
  }
  void merge(const StageAggregates& other);
};

/// TraceSink that folds events into StageAggregates.
class StageStatsCollector final : public TraceSink {
 public:
  void event(const TraceEvent& e) override {
    stats[e.stage].add(e.value_s);
  }
  StageAggregates stats;
};

/// One JSON object per event per line, full precision, byte-stable across
/// runs of the same seed.  The `thriftyvid ... --trace=FILE` format.
class JsonlTraceSink final : public TraceSink {
 public:
  explicit JsonlTraceSink(std::ostream& out) : out_(out) {}
  void event(const TraceEvent& e) override;

 private:
  std::ostream& out_;
};

/// Forwards each event to up to two downstream sinks with the repetition
/// field stamped.  run_experiment uses it to tag repetitions;
/// ValidationRunner to tag grid cells.
class StampTraceSink final : public TraceSink {
 public:
  StampTraceSink(TraceSink* primary, TraceSink* secondary, int repetition)
      : primary_(primary), secondary_(secondary), repetition_(repetition) {}

  void event(const TraceEvent& e) override {
    TraceEvent stamped = e;
    stamped.repetition = repetition_;
    if (primary_ != nullptr) primary_->event(stamped);
    if (secondary_ != nullptr) secondary_->event(stamped);
  }

 private:
  TraceSink* primary_;
  TraceSink* secondary_;
  int repetition_;
};

}  // namespace tv::core
