#include "core/host_calibration.hpp"

#include <algorithm>
#include <chrono>
#include <limits>
#include <vector>

#include "crypto/ofb.hpp"
#include "util/stats.hpp"

namespace tv::core {

namespace {

using clock = std::chrono::steady_clock;

double seconds_since(clock::time_point t0) {
  return std::chrono::duration<double>(clock::now() - t0).count();
}

/// Typical RTP payload the sender encrypts per segment.
constexpr std::size_t kSegmentBytes = 1460;

}  // namespace

HostCryptoMeasurement measure_host_crypto(crypto::Algorithm a,
                                          crypto::CipherBackend backend,
                                          std::size_t sample_bytes) {
  HostCryptoMeasurement m;
  m.algorithm = a;
  m.backend = backend;
  if (backend == crypto::CipherBackend::kAuto) {
    m.backend = crypto::aes_ni_selected(a) ? crypto::CipherBackend::kAesNi
                                           : crypto::CipherBackend::kScalar;
  }
  const auto cipher =
      crypto::make_cipher_from_seed(a, 0x7eedfacecafef00dULL, backend);
  std::vector<std::uint8_t> iv(cipher->block_size(),
                               static_cast<std::uint8_t>(0x3c));
  crypto::OfbStream stream{*cipher};

  // Bulk throughput: best-of-3 over a large buffer (best-of suppresses
  // scheduler noise; the cipher is deterministic so every pass does the
  // same work).
  std::vector<std::uint8_t> bulk(std::max<std::size_t>(sample_bytes, 4096),
                                 static_cast<std::uint8_t>(0xa5));
  double best_s = std::numeric_limits<double>::infinity();
  for (int rep = 0; rep < 3; ++rep) {
    stream.reset(iv);
    const auto t0 = clock::now();
    stream.apply(bulk);
    best_s = std::min(best_s, seconds_since(t0));
  }
  m.throughput_mb_s = static_cast<double>(bulk.size()) / best_s / 1e6;

  // Per-segment path: exactly what net::encrypt_selected runs per packet.
  std::vector<std::uint8_t> segment(kSegmentBytes,
                                    static_cast<std::uint8_t>(0x5a));
  const std::span<std::uint8_t> iv_span{iv.data(), iv.size()};
  util::RunningStats per_segment;
  for (std::uint64_t seq = 0; seq < 256; ++seq) {
    const auto t0 = clock::now();
    crypto::segment_iv(*cipher, iv_span, seq, iv_span);
    stream.reset(iv_span);
    stream.apply(segment);
    per_segment.add(seconds_since(t0));
  }
  const double bulk_share =
      static_cast<double>(kSegmentBytes) / (m.throughput_mb_s * 1e6);
  m.per_packet_overhead_s = std::max(0.0, per_segment.mean() - bulk_share);
  // Same clamp as calibrate_service(): the Gaussian term models minor
  // variation around the mean, not timer outliers.
  m.jitter_stddev_s =
      std::min(per_segment.stddev(), 0.25 * per_segment.mean());
  return m;
}

DeviceProfile calibrated_host_profile(crypto::CipherBackend backend) {
  DeviceProfile d = samsung_galaxy_s2();
  d.name = "Host (calibrated)";
  d.key = "host";
  const auto speed_of = [](crypto::Algorithm a, crypto::CipherBackend b) {
    const HostCryptoMeasurement m = measure_host_crypto(a, b, 1 << 18);
    return CryptoSpeed{m.throughput_mb_s, m.per_packet_overhead_s,
                       m.jitter_stddev_s};
  };
  d.aes128 = speed_of(crypto::Algorithm::kAes128, backend);
  d.aes256 = speed_of(crypto::Algorithm::kAes256, backend);
  // 3DES has no AES-NI backend; a kAesNi request still calibrates its
  // scalar path rather than failing the whole profile.
  d.triple_des = speed_of(crypto::Algorithm::kTripleDes,
                          backend == crypto::CipherBackend::kAesNi
                              ? crypto::CipherBackend::kScalar
                              : backend);
  return d;
}

}  // namespace tv::core
