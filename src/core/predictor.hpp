// Analytic predictors: the "Analysis" bars of Figs. 4, 7 and 8.
//
// Given the calibrated traffic/service parameters and a policy's
// encryption fractions, predict
//   * the mean per-packet delay from the exact 2-MMPP/G/1 solution
//     (Section 4.2),
//   * the distortion/PSNR at the legitimate receiver and at the
//     eavesdropper from the GOP flow model (Section 4.3), and
//   * the mean device power from the component energy model (Section 6.3).
#pragma once

#include "core/calibration.hpp"
#include "core/pipeline.hpp"
#include "distortion/gop_model.hpp"
#include "distortion/inter_gop.hpp"

namespace tv::core {

struct DelayPrediction {
  double utilization = 0.0;
  double mean_wait_ms = 0.0;   ///< queueing only.
  double mean_delay_ms = 0.0;  ///< queueing + service (what Figs. 7-8 plot).
  double delay_stddev_ms = 0.0;
};

/// Solve the 2-MMPP/G/1 queue for a policy with fractions (q_i, q_p).
[[nodiscard]] DelayPrediction predict_delay(
    const TrafficCalibration& traffic, const ServiceCalibration& service,
    double q_i, double q_p);

/// Content/channel inputs of the distortion model.
struct DistortionInputs {
  int gop_size = 30;
  int n_gops = 10;
  double sensitivity_fraction = 0.6;  ///< decoder sensitivity s/(n-1).
  double base_mse = 0.0;              ///< coding distortion floor.
  double null_mse = 0.0;              ///< Case-3 no-reference distortion.
  distortion::DistanceDistortion inter;  ///< fitted D(d) (Fig. 2).
};

struct DistortionPrediction {
  double mse = 0.0;
  double psnr_db = 0.0;
  double mos = 1.0;
  double p_i_frame_success = 0.0;
  double p_p_frame_success = 0.0;
};

/// Distortion at a node whose per-packet delivery rate is
/// `packet_success_rate` and that cannot use encrypted packets unless it
/// holds the key: pass the policy fractions seen *as erasures* (0, 0 for
/// the legitimate receiver).
[[nodiscard]] DistortionPrediction predict_distortion(
    const DistortionInputs& inputs, const TrafficCalibration& traffic,
    double packet_success_rate, double erased_q_i, double erased_q_p);

struct PowerPrediction {
  double duration_s = 0.0;
  double airtime_s = 0.0;
  double encrypted_bytes = 0.0;
  double mean_power_w = 0.0;
};

/// Mean power over the transfer for a policy with fractions (q_i, q_p).
[[nodiscard]] PowerPrediction predict_power(
    const DeviceProfile& device, crypto::Algorithm algorithm,
    const TrafficCalibration& traffic, const ServiceCalibration& service,
    double q_i, double q_p);

}  // namespace tv::core
