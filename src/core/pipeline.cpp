#include "core/pipeline.hpp"

#include <algorithm>
#include <stdexcept>
#include <string>

#include "util/rng.hpp"

namespace tv::core {

const char* to_string(Transport t) {
  switch (t) {
    case Transport::kRtpUdp: return "RTP/UDP";
    case Transport::kHttpTcp: return "HTTP/TCP";
  }
  return "?";
}

const char* transport_key(Transport t) {
  switch (t) {
    case Transport::kRtpUdp: return "udp";
    case Transport::kHttpTcp: return "tcp";
  }
  return "?";
}

Transport transport_from_string(std::string_view name) {
  if (name == "udp" || name == "RTP/UDP") return Transport::kRtpUdp;
  if (name == "tcp" || name == "HTTP/TCP") return Transport::kHttpTcp;
  throw std::invalid_argument{"unknown transport: " + std::string{name} +
                              " (udp|tcp)"};
}

const char* to_string(FailureEvent::Kind kind) {
  switch (kind) {
    case FailureEvent::Kind::kApOutage: return "ap-outage";
    case FailureEvent::Kind::kDeadlineExpired: return "deadline-expired";
    case FailureEvent::Kind::kMaxAttempts: return "max-attempts";
    case FailureEvent::Kind::kException: return "exception";
  }
  return "?";
}

double TransferResult::mean_delay_s() const {
  if (timings.empty()) return 0.0;
  double acc = 0.0;
  for (const auto& t : timings) acc += t.delay();
  return acc / static_cast<double>(timings.size());
}

void validate(const PipelineConfig& config) {
  if (config.mac_success_prob <= 0.0 || config.mac_success_prob > 1.0 ||
      config.backoff_rate <= 0.0 || config.fps <= 0.0) {
    throw std::invalid_argument{"simulate_transfer: bad config"};
  }
  if (config.tcp_backoff_multiplier < 1.0 || config.tcp_backoff_max_s < 0.0 ||
      config.packet_deadline_s < 0.0 || config.degrade_sojourn_s < 0.0) {
    throw std::invalid_argument{"simulate_transfer: bad resilience config"};
  }
  if (config.channel) {
    config.channel->receiver.validate();
    config.channel->eavesdropper.validate();
    for (const auto& o : config.channel->outages) {
      if (o.start_s < 0.0 || o.duration_s < 0.0) {
        throw std::invalid_argument{"outage window: negative start/duration"};
      }
    }
  }
}

TransferResult simulate_transfer(const PipelineConfig& config,
                                 const std::vector<net::VideoPacket>& packets,
                                 std::uint64_t seed) {
  if (packets.empty()) {
    throw std::invalid_argument{"simulate_transfer: no packets"};
  }
  validate(config);
  util::Rng rng{seed};

  TransferResult result;
  result.timings.resize(packets.size());
  result.receiver_delivered.assign(packets.size(), false);
  result.eavesdropper_captured.assign(packets.size(), false);
  result.degraded_cleartext.assign(packets.size(), false);

  // Bursty channel chains (opt-in): one per listener, seeded from the
  // transfer seed so a given seed reproduces the identical loss trace.
  std::optional<wifi::GilbertElliottChannel> rx_channel;
  std::optional<wifi::GilbertElliottChannel> ev_channel;
  if (config.channel) {
    util::Rng channel_seeder{seed ^ 0x6a09e667f3bcc908ULL};
    rx_channel.emplace(config.channel->receiver, channel_seeder());
    ev_channel.emplace(config.channel->eavesdropper, channel_seeder());
  }

  // --- Producer: arrival times. -------------------------------------------
  // Packets of frame f become available at f/fps; successive segments of
  // the same frame are separated by their read latency (overhead + bytes).
  {
    double frame_cursor = 0.0;
    int current_frame = -1;
    for (std::size_t i = 0; i < packets.size(); ++i) {
      const auto& p = packets[i];
      if (p.frame_index != current_frame) {
        current_frame = p.frame_index;
        // The producer is sequential: it cannot start a frame before it has
        // finished reading the previous one; each release also carries OS
        // scheduling jitter.
        const double jitter =
            config.frame_jitter_mean_s > 0.0
                ? rng.exponential(1.0 / config.frame_jitter_mean_s)
                : 0.0;
        frame_cursor = std::max(
            frame_cursor,
            static_cast<double>(p.frame_index) / config.fps + jitter);
      }
      const double read_time =
          rng.exponential(1.0 / config.read_overhead_s) +
          config.read_per_byte_s * static_cast<double>(p.payload.size());
      frame_cursor += read_time;
      result.timings[i].arrival = frame_cursor;
    }
  }

  // --- Server: FIFO encrypt + backoff + transmit. --------------------------
  const bool reliable = config.transport == Transport::kHttpTcp;
  double server_free = 0.0;
  for (std::size_t i = 0; i < packets.size(); ++i) {
    const auto& p = packets[i];
    PacketTiming& t = result.timings[i];
    t.service_start = std::max(t.arrival, server_free);

    // Graceful policy degradation: when the queue's sojourn exceeds the
    // threshold, ship encrypted non-I packets in clear — the selective-
    // encryption policy collapses to I-frame-only under pressure.
    const bool degraded =
        config.degrade_sojourn_s > 0.0 && p.encrypted && !p.is_i_frame &&
        (t.service_start - t.arrival) > config.degrade_sojourn_s;
    if (degraded) {
      result.degraded_cleartext[i] = true;
      ++result.degraded_packets;
    }

    // T_e: encryption time with Gaussian jitter (eq. 15).
    if (p.encrypted && !degraded) {
      const double mean =
          config.device.encryption_seconds(config.algorithm, p.payload.size());
      const double jitter =
          config.device.speed(config.algorithm).jitter_stddev_s;
      t.encryption_s = std::max(0.0, rng.gaussian(mean, jitter));
      result.encrypted_payload_bytes += p.payload.size();
    }

    const double tx_mean =
        wifi::transmission_time_s(config.phy, p.wire_bytes());

    bool receiver_got = false;
    bool eaves_got = false;
    bool last_attempt_in_outage = false;
    int attempts = 0;
    double backoff_total = 0.0;
    double tx_total = 0.0;
    double recovery_total = 0.0;
    double now = t.service_start + t.encryption_s;
    for (;;) {
      ++attempts;
      // T_b: geometric number of collisions, exponential waits (eq. 6/7).
      const std::uint64_t collisions =
          rng.geometric_failures(config.mac_success_prob);
      for (std::uint64_t c = 0; c < collisions; ++c) {
        const double wait = rng.exponential(config.backoff_rate);
        backoff_total += wait;
        now += wait;
      }
      // T_t with jitter (eq. 16).
      const double tx =
          std::max(0.0, rng.gaussian(tx_mean, config.tx_jitter_stddev_s));
      tx_total += tx;
      now += tx;
      // Channel outcome at each listener (independent positions).  A
      // scheduled AP outage swallows the packet for everyone; otherwise
      // the bursty chains (or the legacy i.i.d. draws) decide.
      bool rx_ok;
      if (config.channel) {
        last_attempt_in_outage = wifi::in_outage(config.channel->outages, now);
        if (last_attempt_in_outage) {
          ++result.outage_drops;
          rx_ok = false;
        } else {
          rx_ok = !rx_channel->lose_packet();
          eaves_got = eaves_got || !ev_channel->lose_packet();
        }
      } else {
        rx_ok = !rng.bernoulli(config.receiver_loss_prob);
        eaves_got =
            eaves_got || !rng.bernoulli(config.eavesdropper_loss_prob);
      }
      if (rx_ok) {
        receiver_got = true;
        break;
      }
      if (!reliable) {
        if (last_attempt_in_outage) {
          result.failures.push_back({FailureEvent::Kind::kApOutage, now,
                                     static_cast<std::int64_t>(i), -1});
        }
        break;
      }
      if (attempts >= config.tcp_max_attempts) {
        result.failures.push_back({FailureEvent::Kind::kMaxAttempts, now,
                                   static_cast<std::int64_t>(i), -1});
        break;
      }
      // Loss recovery: the sender notices via dupacks/timeout and
      // retries, waiting exponentially longer each round (capped).
      double wait = config.tcp_retx_penalty_s;
      for (int a = 1; a < attempts; ++a) wait *= config.tcp_backoff_multiplier;
      if (config.tcp_backoff_max_s > 0.0) {
        wait = std::min(wait, config.tcp_backoff_max_s);
      }
      if (config.packet_deadline_s > 0.0 &&
          (now + wait) - t.arrival > config.packet_deadline_s) {
        // Give up instead of blocking the queue behind a doomed packet.
        ++result.deadline_drops;
        result.failures.push_back({FailureEvent::Kind::kDeadlineExpired, now,
                                   static_cast<std::int64_t>(i), -1});
        break;
      }
      recovery_total += wait;
      now += wait;
      ++result.retransmissions;
    }

    t.backoff_s = backoff_total;
    t.transmit_s = tx_total;
    t.attempts = attempts;
    const double transport_overhead =
        reliable ? config.tcp_per_packet_overhead_s : 0.0;
    t.completion = t.service_start + t.encryption_s + backoff_total +
                   tx_total + recovery_total + transport_overhead;
    server_free = t.completion;
    result.airtime_s += tx_total;
    result.receiver_delivered[i] = receiver_got;
    result.eavesdropper_captured[i] = eaves_got;
  }

  const double first = result.timings.front().arrival;
  double last = 0.0;
  for (const auto& t : result.timings) last = std::max(last, t.completion);
  result.duration_s = last - first;
  return result;
}

}  // namespace tv::core
