#include "core/pipeline.hpp"

#include <algorithm>
#include <stdexcept>
#include <string>

#include "core/pipeline_stages.hpp"
#include "util/rng.hpp"

namespace tv::core {

const char* to_string(Transport t) {
  switch (t) {
    case Transport::kRtpUdp: return "RTP/UDP";
    case Transport::kHttpTcp: return "HTTP/TCP";
  }
  return "?";
}

const char* transport_key(Transport t) {
  switch (t) {
    case Transport::kRtpUdp: return "udp";
    case Transport::kHttpTcp: return "tcp";
  }
  return "?";
}

Transport transport_from_string(std::string_view name) {
  if (name == "udp" || name == "RTP/UDP") return Transport::kRtpUdp;
  if (name == "tcp" || name == "HTTP/TCP") return Transport::kHttpTcp;
  throw std::invalid_argument{"unknown transport: " + std::string{name} +
                              " (udp|tcp)"};
}

const char* to_string(FailureEvent::Kind kind) {
  switch (kind) {
    case FailureEvent::Kind::kApOutage: return "ap-outage";
    case FailureEvent::Kind::kDeadlineExpired: return "deadline-expired";
    case FailureEvent::Kind::kMaxAttempts: return "max-attempts";
    case FailureEvent::Kind::kException: return "exception";
  }
  return "?";
}

double TransferResult::mean_delay_s() const {
  if (timings.empty()) return 0.0;
  double acc = 0.0;
  for (const auto& t : timings) acc += t.delay();
  return acc / static_cast<double>(timings.size());
}

void validate(const PipelineConfig& config) {
  if (config.mac_success_prob <= 0.0 || config.mac_success_prob > 1.0 ||
      config.backoff_rate <= 0.0 || config.fps <= 0.0) {
    throw std::invalid_argument{"simulate_transfer: bad config"};
  }
  if (config.tcp_backoff_multiplier < 1.0 || config.tcp_backoff_max_s < 0.0 ||
      config.packet_deadline_s < 0.0 || config.degrade_sojourn_s < 0.0) {
    throw std::invalid_argument{"simulate_transfer: bad resilience config"};
  }
  if (config.channel) {
    config.channel->receiver.validate();
    config.channel->eavesdropper.validate();
    for (const auto& o : config.channel->outages) {
      if (o.start_s < 0.0 || o.duration_s < 0.0) {
        throw std::invalid_argument{"outage window: negative start/duration"};
      }
    }
  }
}

TransferResult simulate_transfer(const PipelineConfig& config,
                                 const std::vector<net::VideoPacket>& packets,
                                 std::uint64_t seed, TraceSink* trace) {
  if (packets.empty()) {
    throw std::invalid_argument{"simulate_transfer: no packets"};
  }
  validate(config);
  util::Rng rng{seed};

  TransferResult result;
  result.timings.resize(packets.size());
  result.receiver_delivered.assign(packets.size(), false);
  result.eavesdropper_captured.assign(packets.size(), false);
  result.degraded_cleartext.assign(packets.size(), false);

  // The transfer is the composition of the five stages; every random draw
  // happens inside a stage, in the documented fixed order, from the single
  // per-transfer RNG (plus the channel chains' own derived streams).
  ProducerStage producer{config, trace};
  PolicyGateStage gate{config, trace};
  ServiceStage service{config, trace};
  ChannelStage channel{config, seed, trace};
  TransportStage transport{config, trace};

  // --- Producer: arrival times. -------------------------------------------
  for (std::size_t i = 0; i < packets.size(); ++i) {
    result.timings[i].arrival = producer.release(packets[i], i, rng);
  }

  // --- Server: FIFO policy gate + service + channel + transport. ----------
  double server_free = 0.0;
  for (std::size_t i = 0; i < packets.size(); ++i) {
    const auto& p = packets[i];
    PacketTiming& t = result.timings[i];
    t.service_start = std::max(t.arrival, server_free);

    const bool degraded = gate.degrade(p, i, t.arrival, t.service_start);
    if (degraded) {
      result.degraded_cleartext[i] = true;
      ++result.degraded_packets;
    }

    // T_e (eq. 15): only for packets the policy still wants encrypted.
    if (p.encrypted && !degraded) {
      t.encryption_s = service.encrypt(p, i, t.service_start, rng);
      result.encrypted_payload_bytes += p.payload.size();
    }

    const double tx_mean = service.transmission_mean_s(p);

    bool receiver_got = false;
    bool eaves_got = false;
    const char* terminal = "lost";
    int attempts = 0;
    double backoff_total = 0.0;
    double tx_total = 0.0;
    double recovery_total = 0.0;
    double now = t.service_start + t.encryption_s;
    for (;;) {
      ++attempts;
      // T_b (eqs. 6-7): waits are folded into `now` and `backoff_total`
      // per draw to keep the accumulation order byte-stable.
      (void)service.backoff(i, &now, &backoff_total, rng);
      // T_t (eq. 16).
      const double tx = service.transmit(i, tx_mean, now, rng);
      tx_total += tx;
      now += tx;
      // Channel outcome at each listener (independent positions).
      const ChannelStage::Outcome outcome =
          channel.attempt(i, now, eaves_got, rng);
      if (outcome.in_outage) ++result.outage_drops;
      eaves_got = outcome.eavesdropper_heard;
      if (outcome.receiver_ok) {
        receiver_got = true;
        terminal = "deliver";
        break;
      }
      if (!transport.reliable()) {
        if (outcome.in_outage) {
          terminal = "outage";
          result.failures.push_back({FailureEvent::Kind::kApOutage, now,
                                     static_cast<std::int64_t>(i), -1});
        }
        break;
      }
      const TransportStage::Decision decision =
          transport.after_loss(i, attempts, now, t.arrival);
      if (decision.verdict == TransportStage::Verdict::kMaxAttempts) {
        terminal = "max_attempts";
        result.failures.push_back({FailureEvent::Kind::kMaxAttempts, now,
                                   static_cast<std::int64_t>(i), -1});
        break;
      }
      if (decision.verdict == TransportStage::Verdict::kDeadline) {
        // Give up instead of blocking the queue behind a doomed packet.
        terminal = "deadline";
        ++result.deadline_drops;
        result.failures.push_back({FailureEvent::Kind::kDeadlineExpired, now,
                                   static_cast<std::int64_t>(i), -1});
        break;
      }
      recovery_total += decision.wait_s;
      now += decision.wait_s;
      ++result.retransmissions;
    }

    t.backoff_s = backoff_total;
    t.transmit_s = tx_total;
    t.attempts = attempts;
    t.completion = t.service_start + t.encryption_s + backoff_total +
                   tx_total + recovery_total +
                   transport.per_packet_overhead_s();
    server_free = t.completion;
    result.airtime_s += tx_total;
    result.receiver_delivered[i] = receiver_got;
    result.eavesdropper_captured[i] = eaves_got;
    transport.finish(i, terminal, t.completion, t.delay());
  }

  const double first = result.timings.front().arrival;
  double last = 0.0;
  for (const auto& t : result.timings) last = std::max(last, t.completion);
  result.duration_s = last - first;
  return result;
}

}  // namespace tv::core
