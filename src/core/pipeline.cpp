#include "core/pipeline.hpp"

#include <algorithm>
#include <stdexcept>

#include "util/rng.hpp"

namespace tv::core {

const char* to_string(Transport t) {
  switch (t) {
    case Transport::kRtpUdp: return "RTP/UDP";
    case Transport::kHttpTcp: return "HTTP/TCP";
  }
  return "?";
}

double TransferResult::mean_delay_s() const {
  if (timings.empty()) return 0.0;
  double acc = 0.0;
  for (const auto& t : timings) acc += t.delay();
  return acc / static_cast<double>(timings.size());
}

TransferResult simulate_transfer(const PipelineConfig& config,
                                 const std::vector<net::VideoPacket>& packets,
                                 std::uint64_t seed) {
  if (packets.empty()) {
    throw std::invalid_argument{"simulate_transfer: no packets"};
  }
  if (config.mac_success_prob <= 0.0 || config.mac_success_prob > 1.0 ||
      config.backoff_rate <= 0.0 || config.fps <= 0.0) {
    throw std::invalid_argument{"simulate_transfer: bad config"};
  }
  util::Rng rng{seed};

  TransferResult result;
  result.timings.resize(packets.size());
  result.receiver_delivered.assign(packets.size(), false);
  result.eavesdropper_captured.assign(packets.size(), false);

  // --- Producer: arrival times. -------------------------------------------
  // Packets of frame f become available at f/fps; successive segments of
  // the same frame are separated by their read latency (overhead + bytes).
  {
    double frame_cursor = 0.0;
    int current_frame = -1;
    for (std::size_t i = 0; i < packets.size(); ++i) {
      const auto& p = packets[i];
      if (p.frame_index != current_frame) {
        current_frame = p.frame_index;
        // The producer is sequential: it cannot start a frame before it has
        // finished reading the previous one; each release also carries OS
        // scheduling jitter.
        const double jitter =
            config.frame_jitter_mean_s > 0.0
                ? rng.exponential(1.0 / config.frame_jitter_mean_s)
                : 0.0;
        frame_cursor = std::max(
            frame_cursor,
            static_cast<double>(p.frame_index) / config.fps + jitter);
      }
      const double read_time =
          rng.exponential(1.0 / config.read_overhead_s) +
          config.read_per_byte_s * static_cast<double>(p.payload.size());
      frame_cursor += read_time;
      result.timings[i].arrival = frame_cursor;
    }
  }

  // --- Server: FIFO encrypt + backoff + transmit. --------------------------
  const bool reliable = config.transport == Transport::kHttpTcp;
  double server_free = 0.0;
  for (std::size_t i = 0; i < packets.size(); ++i) {
    const auto& p = packets[i];
    PacketTiming& t = result.timings[i];
    t.service_start = std::max(t.arrival, server_free);

    // T_e: encryption time with Gaussian jitter (eq. 15).
    if (p.encrypted) {
      const double mean =
          config.device.encryption_seconds(config.algorithm, p.payload.size());
      const double jitter =
          config.device.speed(config.algorithm).jitter_stddev_s;
      t.encryption_s = std::max(0.0, rng.gaussian(mean, jitter));
      result.encrypted_payload_bytes += p.payload.size();
    }

    const double tx_mean =
        wifi::transmission_time_s(config.phy, p.wire_bytes());

    bool receiver_got = false;
    bool eaves_got = false;
    int attempts = 0;
    double backoff_total = 0.0;
    double tx_total = 0.0;
    double recovery_total = 0.0;
    for (;;) {
      ++attempts;
      // T_b: geometric number of collisions, exponential waits (eq. 6/7).
      const std::uint64_t collisions =
          rng.geometric_failures(config.mac_success_prob);
      for (std::uint64_t c = 0; c < collisions; ++c) {
        backoff_total += rng.exponential(config.backoff_rate);
      }
      // T_t with jitter (eq. 16).
      tx_total += std::max(0.0, rng.gaussian(tx_mean,
                                             config.tx_jitter_stddev_s));
      // Channel outcome at each listener (independent positions).
      const bool rx_ok = !rng.bernoulli(config.receiver_loss_prob);
      eaves_got =
          eaves_got || !rng.bernoulli(config.eavesdropper_loss_prob);
      if (rx_ok) {
        receiver_got = true;
        break;
      }
      if (!reliable || attempts >= config.tcp_max_attempts) break;
      // Loss recovery: the sender notices via dupacks/timeout and retries.
      recovery_total += config.tcp_retx_penalty_s;
    }

    t.backoff_s = backoff_total;
    t.transmit_s = tx_total;
    t.attempts = attempts;
    const double transport_overhead =
        reliable ? config.tcp_per_packet_overhead_s : 0.0;
    t.completion = t.service_start + t.encryption_s + backoff_total +
                   tx_total + recovery_total + transport_overhead;
    server_free = t.completion;
    result.airtime_s += tx_total;
    result.receiver_delivered[i] = receiver_got;
    result.eavesdropper_captured[i] = eaves_got;
  }

  const double first = result.timings.front().arrival;
  double last = 0.0;
  for (const auto& t : result.timings) last = std::max(last, t.completion);
  result.duration_s = last - first;
  return result;
}

}  // namespace tv::core
