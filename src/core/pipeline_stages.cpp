#include "core/pipeline_stages.hpp"

#include <algorithm>

namespace tv::core {

double ProducerStage::release(const net::VideoPacket& packet,
                              std::size_t index, util::Rng& rng) {
  if (packet.frame_index != current_frame_) {
    current_frame_ = packet.frame_index;
    const double jitter =
        config_.frame_jitter_mean_s > 0.0
            ? rng.exponential(1.0 / config_.frame_jitter_mean_s)
            : 0.0;
    frame_cursor_ = std::max(
        frame_cursor_,
        static_cast<double>(packet.frame_index) / config_.fps + jitter);
  }
  const double read_time =
      rng.exponential(1.0 / config_.read_overhead_s) +
      config_.read_per_byte_s * static_cast<double>(packet.payload.size());
  frame_cursor_ += read_time;
  if (trace_ != nullptr) {
    trace_->event({Stage::kProducer, "release",
                   static_cast<std::int64_t>(index), -1, frame_cursor_,
                   read_time});
  }
  return frame_cursor_;
}

bool PolicyGateStage::degrade(const net::VideoPacket& packet,
                              std::size_t index, double arrival_s,
                              double service_start_s) const {
  const double queue_wait = service_start_s - arrival_s;
  const bool degraded = config_.degrade_sojourn_s > 0.0 && packet.encrypted &&
                        !packet.is_i_frame &&
                        queue_wait > config_.degrade_sojourn_s;
  if (trace_ != nullptr) {
    trace_->event({Stage::kPolicyGate, degraded ? "degrade" : "pass",
                   static_cast<std::int64_t>(index), -1, service_start_s,
                   queue_wait});
  }
  return degraded;
}

ServiceStage::ServiceStage(const PipelineConfig& config, TraceSink* trace)
    : config_(config), trace_(trace) {
  model_.mac_success_prob = config.mac_success_prob;
  model_.backoff_rate = config.backoff_rate;
}

double ServiceStage::encrypt(const net::VideoPacket& packet, std::size_t index,
                             double now_s, util::Rng& rng) const {
  const double t_e = ServiceModel::draw_encryption(
      rng, config_.device, config_.algorithm, packet.payload.size());
  if (trace_ != nullptr) {
    trace_->event({Stage::kService, "encrypt",
                   static_cast<std::int64_t>(index), -1, now_s, t_e});
  }
  return t_e;
}

double ServiceStage::transmission_mean_s(const net::VideoPacket& packet) const {
  return wifi::transmission_time_s(config_.phy, packet.wire_bytes());
}

double ServiceStage::backoff(std::size_t index, double* clock, double* total,
                             util::Rng& rng) const {
  const ServiceModel::BackoffDraw draw = model_.draw_backoff(rng, clock, total);
  if (trace_ != nullptr) {
    trace_->event({Stage::kService, "backoff",
                   static_cast<std::int64_t>(index), -1,
                   clock != nullptr ? *clock : 0.0, draw.total_s});
  }
  return draw.total_s;
}

double ServiceStage::transmit(std::size_t index, double mean_s, double now_s,
                              util::Rng& rng) const {
  const double t_t =
      ServiceModel::draw_transmission(rng, mean_s, config_.tx_jitter_stddev_s);
  if (trace_ != nullptr) {
    trace_->event({Stage::kService, "transmit",
                   static_cast<std::int64_t>(index), -1, now_s + t_t, t_t});
  }
  return t_t;
}

ChannelStage::ChannelStage(const PipelineConfig& config,
                           std::uint64_t transfer_seed, TraceSink* trace)
    : config_(config), trace_(trace) {
  if (config.channel) {
    // One chain per listener, seeded from the transfer seed so a given seed
    // reproduces the identical loss trace.
    util::Rng channel_seeder{transfer_seed ^ 0x6a09e667f3bcc908ULL};
    receiver_.emplace(config.channel->receiver, channel_seeder());
    eavesdropper_.emplace(config.channel->eavesdropper, channel_seeder());
  }
}

ChannelStage::Outcome ChannelStage::attempt(std::size_t index, double now_s,
                                            bool eavesdropper_already,
                                            util::Rng& rng) {
  Outcome out;
  if (config_.channel) {
    out.in_outage = wifi::in_outage(config_.channel->outages, now_s);
    if (out.in_outage) {
      out.receiver_ok = false;
      out.eavesdropper_heard = eavesdropper_already;
    } else {
      out.receiver_ok = !receiver_->lose_packet();
      out.eavesdropper_heard =
          eavesdropper_already ? true : !eavesdropper_->lose_packet();
    }
  } else {
    out.receiver_ok = !rng.bernoulli(config_.receiver_loss_prob);
    out.eavesdropper_heard =
        eavesdropper_already ? true
                             : !rng.bernoulli(config_.eavesdropper_loss_prob);
  }
  if (trace_ != nullptr) {
    const char* kind =
        out.in_outage ? "outage" : (out.receiver_ok ? "deliver" : "loss");
    trace_->event({Stage::kChannel, kind, static_cast<std::int64_t>(index), -1,
                   now_s, 0.0});
    if (out.eavesdropper_heard && !eavesdropper_already) {
      trace_->event({Stage::kChannel, "eavesdrop",
                     static_cast<std::int64_t>(index), -1, now_s, 0.0});
    }
  }
  return out;
}

TransportStage::Decision TransportStage::after_loss(std::size_t index,
                                                    int attempts, double now_s,
                                                    double arrival_s) const {
  Decision decision;
  if (attempts >= config_.tcp_max_attempts) {
    decision.verdict = Verdict::kMaxAttempts;
    return decision;
  }
  // Loss recovery: the sender notices via dupacks/timeout and retries,
  // waiting exponentially longer each round (capped).
  double wait = config_.tcp_retx_penalty_s;
  for (int a = 1; a < attempts; ++a) wait *= config_.tcp_backoff_multiplier;
  if (config_.tcp_backoff_max_s > 0.0) {
    wait = std::min(wait, config_.tcp_backoff_max_s);
  }
  if (config_.packet_deadline_s > 0.0 &&
      (now_s + wait) - arrival_s > config_.packet_deadline_s) {
    decision.verdict = Verdict::kDeadline;
    return decision;
  }
  decision.wait_s = wait;
  if (trace_ != nullptr) {
    trace_->event({Stage::kTransport, "retransmit",
                   static_cast<std::int64_t>(index), -1, now_s, wait});
  }
  return decision;
}

void TransportStage::finish(std::size_t index, const char* kind,
                            double completion_s, double delay_s) const {
  if (trace_ != nullptr) {
    trace_->event({Stage::kTransport, kind, static_cast<std::int64_t>(index),
                   -1, completion_s, delay_s});
  }
}

}  // namespace tv::core
