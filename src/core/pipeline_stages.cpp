#include "core/pipeline_stages.hpp"

namespace tv::core {

ServiceStage::ServiceStage(const PipelineConfig& config, TraceSink* trace)
    : config_(config),
      trace_(trace),
      // The jitter sigma is per-algorithm, not per-packet; load it once so
      // the per-packet draw skips the profile lookup.
      enc_jitter_stddev_s_(config.device.speed(config.algorithm).jitter_stddev_s) {
  model_.mac_success_prob = config.mac_success_prob;
  model_.backoff_rate = config.backoff_rate;
}

ChannelStage::ChannelStage(const PipelineConfig& config,
                           std::uint64_t transfer_seed, TraceSink* trace)
    : config_(config), trace_(trace) {
  if (config.channel) {
    // One chain per listener, seeded from the transfer seed so a given seed
    // reproduces the identical loss trace.
    util::Rng channel_seeder{transfer_seed ^ 0x6a09e667f3bcc908ULL};
    receiver_.emplace(config.channel->receiver, channel_seeder());
    eavesdropper_.emplace(config.channel->eavesdropper, channel_seeder());
  }
}

}  // namespace tv::core
