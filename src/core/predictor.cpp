#include "core/predictor.hpp"

#include <cmath>
#include <limits>

#include "distortion/frame_success.hpp"
#include "queueing/mmpp_g1.hpp"
#include "video/frame.hpp"
#include "video/quality.hpp"

namespace tv::core {

DelayPrediction predict_delay(const TrafficCalibration& traffic,
                              const ServiceCalibration& service, double q_i,
                              double q_p) {
  const queueing::ServiceParameters sp =
      service_parameters(traffic, service, q_i, q_p);
  const queueing::ServiceTimeModel model =
      queueing::ServiceTimeModel::from_parameters(sp);
  const double rho = traffic.mmpp.mean_rate() * model.mean();
  if (rho >= 0.999) {
    // The policy saturates the sender; report the overload instead of a
    // stationary delay (the experiment will show delays growing with the
    // backlog).
    DelayPrediction out;
    out.utilization = rho;
    out.mean_wait_ms = std::numeric_limits<double>::infinity();
    out.mean_delay_ms = std::numeric_limits<double>::infinity();
    out.delay_stddev_ms = std::numeric_limits<double>::infinity();
    return out;
  }
  const queueing::MmppG1Solver solver{traffic.mmpp, model};
  const queueing::MmppG1Solution sol = solver.solve();

  DelayPrediction out;
  out.utilization = sol.utilization;
  out.mean_wait_ms = sol.mean_wait * 1e3;
  out.mean_delay_ms = sol.mean_sojourn * 1e3;
  out.delay_stddev_ms = sol.wait_stddev() * 1e3;
  return out;
}

DistortionPrediction predict_distortion(const DistortionInputs& inputs,
                                        const TrafficCalibration& traffic,
                                        double packet_success_rate,
                                        double erased_q_i,
                                        double erased_q_p) {
  const double p_d_i = distortion::eavesdropper_decryption_rate(
      erased_q_i, packet_success_rate);
  const double p_d_p = distortion::eavesdropper_decryption_rate(
      erased_q_p, packet_success_rate);

  const int n_i = std::max(
      1, static_cast<int>(std::lround(traffic.mean_i_packets_per_frame)));
  const int n_p = std::max(
      1, static_cast<int>(std::lround(traffic.mean_p_packets_per_frame)));
  const int s_i = distortion::sensitivity_from_fraction(
      n_i, inputs.sensitivity_fraction);
  const int s_p = distortion::sensitivity_from_fraction(
      n_p, inputs.sensitivity_fraction);

  DistortionPrediction out;
  out.p_i_frame_success =
      distortion::frame_success_probability(n_i, s_i, p_d_i);
  out.p_p_frame_success =
      distortion::frame_success_probability(n_p, s_p, p_d_p);

  distortion::FlowModelParameters fp;
  fp.gop_size = inputs.gop_size;
  fp.p_i_success = out.p_i_frame_success;
  fp.p_p_success = out.p_p_frame_success;
  fp.d_min = inputs.inter(1.0);
  fp.d_max = inputs.inter(static_cast<double>(inputs.gop_size - 1));
  fp.base_mse = inputs.base_mse;
  fp.null_reference_mse = inputs.null_mse;
  const distortion::FlowDistortionModel model{fp, inputs.inter};
  out.mse = model.flow_average_distortion(inputs.n_gops);
  out.psnr_db = video::psnr_from_mse(out.mse);
  out.mos = static_cast<double>(video::mos_from_psnr(out.psnr_db));
  return out;
}

PowerPrediction predict_power(const DeviceProfile& device,
                              crypto::Algorithm algorithm,
                              const TrafficCalibration& traffic,
                              const ServiceCalibration& service, double q_i,
                              double q_p) {
  PowerPrediction out;
  const double packets = static_cast<double>(traffic.packet_count);
  out.airtime_s = packets * (traffic.p_i * service.tx_i_mean +
                             (1.0 - traffic.p_i) * service.tx_p_mean);
  const double i_bytes = static_cast<double>(traffic.i_payload_bytes);
  const double p_bytes =
      static_cast<double>(traffic.total_payload_bytes) - i_bytes;
  out.encrypted_bytes = q_i * i_bytes + q_p * p_bytes;
  // The stream is paced at the frame rate, so the transfer lasts at least
  // the clip duration; encryption work extends it when it dominates.
  const double enc_time =
      packets * (traffic.p_i * q_i * service.enc_i_mean +
                 (1.0 - traffic.p_i) * q_p * service.enc_p_mean);
  out.duration_s = std::max(traffic.clip_duration_s,
                            out.airtime_s + enc_time);
  const energy::EnergyBreakdown breakdown = energy::transfer_energy(
      device.power_coefficients(algorithm), out.duration_s,
      static_cast<std::size_t>(out.encrypted_bytes), out.airtime_s);
  out.mean_power_w = energy::mean_power_w(breakdown, out.duration_s);
  return out;
}

}  // namespace tv::core
