#include "core/calibration.hpp"

#include <cmath>
#include <stdexcept>

#include "util/stats.hpp"
#include "wifi/channel.hpp"

namespace tv::core {

TrafficCalibration calibrate_traffic(
    const std::vector<net::VideoPacket>& packets,
    const std::vector<PacketTiming>& timings, double fps,
    std::size_t sample_packets) {
  if (packets.size() != timings.size() || packets.empty()) {
    throw std::invalid_argument{"calibrate_traffic: bad inputs"};
  }
  const std::size_t n =
      sample_packets == 0 ? packets.size()
                          : std::min(sample_packets, packets.size());

  TrafficCalibration cal;
  std::vector<queueing::LabelledArrival> trace;
  trace.reserve(n);
  std::size_t i_packets = 0;
  std::size_t i_bytes_sampled = 0;
  std::size_t p_bytes_sampled = 0;
  for (std::size_t k = 0; k < n; ++k) {
    trace.push_back({timings[k].arrival, packets[k].is_i_frame});
    if (packets[k].is_i_frame) {
      ++i_packets;
      i_bytes_sampled += packets[k].payload.size();
    } else {
      p_bytes_sampled += packets[k].payload.size();
    }
  }
  cal.mmpp = queueing::estimate_mmpp(trace);
  cal.p_i = static_cast<double>(i_packets) / static_cast<double>(n);
  cal.mean_i_payload =
      i_packets > 0
          ? static_cast<double>(i_bytes_sampled) / static_cast<double>(i_packets)
          : 0.0;
  const std::size_t p_packets = n - i_packets;
  cal.mean_p_payload =
      p_packets > 0
          ? static_cast<double>(p_bytes_sampled) / static_cast<double>(p_packets)
          : 0.0;

  // Frame shapes and totals use the whole stream (the sender knows its own
  // file; only the *timing* statistics need sampling).
  int max_frame = 0;
  std::size_t i_frames = 0;
  std::size_t p_frames = 0;
  std::size_t i_frag_total = 0;
  std::size_t p_frag_total = 0;
  for (const auto& p : packets) {
    cal.total_payload_bytes += p.payload.size();
    if (p.is_i_frame) cal.i_payload_bytes += p.payload.size();
    max_frame = std::max(max_frame, p.frame_index);
    if (p.fragment_index == 0) {
      if (p.is_i_frame) {
        ++i_frames;
        i_frag_total += static_cast<std::size_t>(p.fragment_count);
      } else {
        ++p_frames;
        p_frag_total += static_cast<std::size_t>(p.fragment_count);
      }
    }
  }
  cal.mean_i_packets_per_frame =
      i_frames > 0 ? static_cast<double>(i_frag_total) /
                         static_cast<double>(i_frames)
                   : 1.0;
  cal.mean_p_packets_per_frame =
      p_frames > 0 ? static_cast<double>(p_frag_total) /
                         static_cast<double>(p_frames)
                   : 1.0;
  cal.packet_count = packets.size();
  cal.clip_duration_s = static_cast<double>(max_frame + 1) / fps;
  return cal;
}

namespace {

struct ClassStats {
  util::RunningStats enc;
  util::RunningStats tx;
};

}  // namespace

ServiceCalibration calibrate_service(
    const std::vector<net::VideoPacket>& packets,
    const std::vector<PacketTiming>& timings, const PipelineConfig& config,
    const TrafficCalibration& traffic) {
  if (packets.size() != timings.size() || packets.empty()) {
    throw std::invalid_argument{"calibrate_service: bad inputs"};
  }
  ClassStats i_class;
  ClassStats p_class;
  for (std::size_t k = 0; k < packets.size(); ++k) {
    ClassStats& cls = packets[k].is_i_frame ? i_class : p_class;
    if (packets[k].encrypted) cls.enc.add(timings[k].encryption_s);
    if (timings[k].attempts == 1) {
      // Retransmitted packets fold several transmissions into transmit_s;
      // only single-attempt samples estimate T_t cleanly.
      cls.tx.add(timings[k].transmit_s);
    }
  }

  ServiceCalibration out;
  // The analytic model's Gaussian terms represent *minor* variations
  // around the class mean (eq. 15).  Measured per-class spreads also pick
  // up packet-size bimodality (e.g. a frame's full-MTU fragments plus its
  // short tail fragment), which the paper's model does not represent —
  // clamp to the regime where the Gaussian LST/MGF is meaningful.
  auto clamp_jitter = [](double mean, double stddev) {
    return std::min(stddev, 0.25 * mean);
  };
  auto fill_enc = [&](const util::RunningStats& s, double typical_payload,
                      double& mean, double& stddev) {
    if (s.count() >= 8) {
      mean = s.mean();
      stddev = clamp_jitter(mean, s.stddev());
    } else {
      // Fallback: the device's deterministic cost for a typical payload.
      mean = config.device.encryption_seconds(
          config.algorithm, static_cast<std::size_t>(typical_payload));
      stddev = config.device.speed(config.algorithm).jitter_stddev_s;
    }
  };
  fill_enc(i_class.enc, traffic.mean_i_payload, out.enc_i_mean,
           out.enc_i_stddev);
  fill_enc(p_class.enc, traffic.mean_p_payload, out.enc_p_mean,
           out.enc_p_stddev);

  auto fill_tx = [&](const util::RunningStats& s, double typical_payload,
                     double& mean, double& stddev) {
    if (s.count() >= 8) {
      mean = s.mean();
      stddev = clamp_jitter(mean, s.stddev());
    } else {
      const std::size_t wire = static_cast<std::size_t>(typical_payload) +
                               net::RtpHeader::kSize + net::kIpUdpOverhead;
      mean = wifi::transmission_time_s(config.phy, wire);
      stddev = config.tx_jitter_stddev_s;
    }
  };
  fill_tx(i_class.tx, traffic.mean_i_payload, out.tx_i_mean, out.tx_i_stddev);
  fill_tx(p_class.tx, traffic.mean_p_payload, out.tx_p_mean, out.tx_p_stddev);

  // Backoff: p_s from the fraction of collision-free first attempts is not
  // directly observable here, so use the configured MAC model the sender
  // measured offline (the paper's model [13] supplies it analytically).
  out.mac_success_prob = config.mac_success_prob;
  out.backoff_rate = config.backoff_rate;
  return out;
}

queueing::ServiceParameters service_parameters(
    const TrafficCalibration& traffic, const ServiceCalibration& service,
    double q_i, double q_p) {
  queueing::ServiceParameters sp;
  sp.p_i = traffic.p_i;
  sp.q_i = q_i;
  sp.q_p = q_p;
  sp.enc_i_mean = service.enc_i_mean;
  sp.enc_i_stddev = service.enc_i_stddev;
  sp.enc_p_mean = service.enc_p_mean;
  sp.enc_p_stddev = service.enc_p_stddev;
  sp.tx_i_mean = service.tx_i_mean;
  sp.tx_i_stddev = service.tx_i_stddev;
  sp.tx_p_mean = service.tx_p_mean;
  sp.tx_p_stddev = service.tx_p_stddev;
  sp.success_prob = service.mac_success_prob;
  sp.backoff_rate = service.backoff_rate;
  return sp;
}

}  // namespace tv::core
