// Model calibration from an observed transfer prefix (Section 6.1,
// "Applying the mathematical framework").
//
// "We use an initial sequence of events to tune the parameters of our
//  mathematical model": the insertion times and frame types of the queued
//  segments give the 2-MMPP parameters (R, Lambda); measured encryption and
//  transmission times give the means/variances of eqs. (15)-(16); backoff
//  observations give p_s and lambda_b.  The client has all of this locally.
#pragma once

#include <cstddef>
#include <vector>

#include "core/pipeline.hpp"
#include "queueing/mmpp.hpp"
#include "queueing/service_time.hpp"

namespace tv::core {

/// Traffic-side calibration: arrival process and stream shape.
struct TrafficCalibration {
  queueing::Mmpp2 mmpp;            ///< R and Lambda of eq. (1).
  double p_i = 0.0;                ///< fraction of packets from I-frames.
  double mean_i_payload = 0.0;     ///< bytes.
  double mean_p_payload = 0.0;
  double mean_i_packets_per_frame = 1.0;  ///< n for eq. (20), I-frames.
  double mean_p_packets_per_frame = 1.0;
  std::size_t total_payload_bytes = 0;
  std::size_t i_payload_bytes = 0;
  std::size_t packet_count = 0;
  double clip_duration_s = 0.0;    ///< frames / fps.
};

/// Estimate the traffic calibration from packet metadata and the arrival
/// timestamps recorded by the pipeline.  `sample_packets` limits the prefix
/// used for the MMPP fit (0 = use everything).
[[nodiscard]] TrafficCalibration calibrate_traffic(
    const std::vector<net::VideoPacket>& packets,
    const std::vector<PacketTiming>& timings, double fps,
    std::size_t sample_packets = 0);

/// Service-side calibration measured from a transfer prefix: per-class
/// encryption/transmission means and jitter plus backoff parameters.
struct ServiceCalibration {
  double enc_i_mean = 0.0;
  double enc_i_stddev = 0.0;
  double enc_p_mean = 0.0;
  double enc_p_stddev = 0.0;
  double tx_i_mean = 0.0;
  double tx_i_stddev = 0.0;
  double tx_p_mean = 0.0;
  double tx_p_stddev = 0.0;
  double mac_success_prob = 1.0;
  double backoff_rate = 1.0;
};

/// Measure service statistics from observed timings.  Classes with no
/// encrypted samples in the prefix fall back to the device profile's
/// deterministic cost for a typical payload of that class, so the model can
/// still predict policies that encrypt classes the sampled policy did not.
[[nodiscard]] ServiceCalibration calibrate_service(
    const std::vector<net::VideoPacket>& packets,
    const std::vector<PacketTiming>& timings, const PipelineConfig& config,
    const TrafficCalibration& traffic);

/// Assemble the analytic queue inputs for a policy with I/P encryption
/// fractions (q_i, q_p) from the calibrations (Section 4.2.2).
[[nodiscard]] queueing::ServiceParameters service_parameters(
    const TrafficCalibration& traffic, const ServiceCalibration& service,
    double q_i, double q_p);

}  // namespace tv::core
