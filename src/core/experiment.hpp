// End-to-end experiment runner: Section 6's methodology in one call.
//
// A Workload (clip + encoded stream + packetization) is built once per
// (motion level, GOP size) configuration; each experiment applies a policy,
// simulates `repetitions` transfers (the paper uses 20), reconstructs the
// video at the legitimate receiver and at the eavesdropper, and reports
// means with 95% confidence intervals next to the analytic predictions.
#pragma once

#include <cstdint>
#include <optional>
#include <string>
#include <vector>

#include "core/device_profile.hpp"
#include "core/pipeline.hpp"
#include "core/predictor.hpp"
#include "policy/policy.hpp"
#include "util/arena.hpp"
#include "util/stats.hpp"
#include "video/codec.hpp"
#include "video/scene.hpp"

namespace tv::util {
class ThreadPool;
}

namespace tv::core {

/// A reusable, deterministic video workload.
///
/// Move-only: `arena` owns the wire bytes of `packets`, which are views
/// (net::PacketBuf) into it.  Experiments never mutate the workload's
/// packets — they clone_packets() into their own arena before encrypting.
struct Workload {
  video::MotionLevel motion = video::MotionLevel::kLow;
  video::CodecConfig codec;
  double fps = 30.0;
  video::FrameSequence clip;            ///< original YUV frames.
  video::EncodedStream stream;          ///< compressed IPP...P stream.
  util::Arena arena;                    ///< owns the packets' wire bytes.
  std::vector<net::VideoPacket> packets;  ///< plaintext packetization.
  double base_mse = 0.0;  ///< coding distortion of a lossless decode.
  double null_mse = 0.0;  ///< content MSE vs. a blank (gray) decode.
  distortion::DistanceDistortion inter;  ///< fitted D(d) for this content.
};

/// Generate, encode, packetize and characterize a clip.  Deterministic in
/// `seed`.  `frames` should be a multiple of the GOP size (Table 1 clips
/// are 300 frames at 30 fps).
[[nodiscard]] Workload build_workload(video::MotionLevel motion,
                                      int gop_size, int frames,
                                      std::uint64_t seed, double fps = 30.0);

/// What a single experiment should measure.
struct ExperimentSpec {
  policy::EncryptionPolicy policy;
  PipelineConfig pipeline;
  int repetitions = 20;
  std::uint64_t seed = 1;
  bool evaluate_quality = true;  ///< decode at receiver + eavesdropper.
  /// Decoder sensitivity fraction used by the analytic distortion model;
  /// pick by motion level (fast content tolerates almost no loss).
  double sensitivity_fraction = 0.6;
  /// Optional per-packet stage tracing: every stage of every repetition's
  /// transfer emits TraceEvents (stamped with the repetition index) into
  /// this sink.  Instrumented runs execute their repetitions serially so
  /// the event stream is deterministic.
  TraceSink* trace = nullptr;
  /// Collect per-stage aggregates (event counts, time statistics,
  /// histograms) into ExperimentResult::stage_stats.  Also serializes the
  /// repetition loop.  Off by default: results and outputs are then
  /// byte-identical to an uninstrumented build.
  bool collect_stage_stats = false;
};

struct ExperimentResult {
  std::string label;
  net::EncryptionStats encryption;

  // Resilience accounting.  A repetition that fails mid-flight is
  // recorded (kind + time + packet index + repetition) instead of
  // aborting the whole experiment; the statistics below then cover the
  // repetitions that produced data.
  std::vector<FailureEvent> failures;
  std::size_t total_retransmissions = 0;
  std::size_t total_deadline_drops = 0;
  std::size_t total_outage_drops = 0;
  std::size_t total_degraded_packets = 0;
  int completed_repetitions = 0;  ///< repetitions that yielded statistics.
  int failed_repetitions = 0;     ///< repetitions that threw.

  // Measured (across repetitions).
  util::RunningStats delay_ms;            ///< mean per-packet delay per rep.
  util::RunningStats receiver_psnr_db;
  util::RunningStats eavesdropper_psnr_db;
  util::RunningStats receiver_mos;
  util::RunningStats eavesdropper_mos;
  util::RunningStats power_w;
  util::RunningStats duration_s;

  // Analytic predictions from the calibrated model.
  DelayPrediction predicted_delay;
  DistortionPrediction predicted_receiver;
  DistortionPrediction predicted_eavesdropper;
  PowerPrediction predicted_power;

  /// Per-stage aggregates over all completed repetitions; present only
  /// when ExperimentSpec::collect_stage_stats was set.
  std::optional<StageAggregates> stage_stats;
};

/// Run one experiment configuration against a prebuilt workload.
///
/// When `pool` is non-null the repetition loop runs on it; each repetition
/// derives its own seed from `spec.seed` and its index, and the partial
/// per-repetition statistics are folded in repetition order, so the result
/// is bit-identical to the serial run at any thread count.
[[nodiscard]] ExperimentResult run_experiment(const ExperimentSpec& spec,
                                              const Workload& workload,
                                              util::ThreadPool* pool = nullptr);

/// Default sensitivity fraction per motion level (calibrated so the model's
/// frame success tracks the slice-decoder's observed robustness).
[[nodiscard]] double default_sensitivity(video::MotionLevel motion);

}  // namespace tv::core
