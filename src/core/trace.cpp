#include "core/trace.hpp"

#include <cmath>
#include <cstdio>

namespace tv::core {

const char* stage_key(Stage stage) {
  switch (stage) {
    case Stage::kProducer: return "producer";
    case Stage::kPolicyGate: return "policy_gate";
    case Stage::kService: return "service";
    case Stage::kChannel: return "channel";
    case Stage::kTransport: return "transport";
  }
  return "?";
}

void TimeHistogram::add(double seconds) {
  int bin = 0;
  if (seconds >= kFloorS) {
    bin = 1 + static_cast<int>(std::floor(
                  std::log10(seconds / kFloorS) *
                  static_cast<double>(kBinsPerDecade)));
    if (bin >= kBins) bin = kBins - 1;
  }
  ++counts_[static_cast<std::size_t>(bin)];
  ++total_;
}

void TimeHistogram::merge(const TimeHistogram& other) {
  for (int i = 0; i < kBins; ++i) {
    counts_[static_cast<std::size_t>(i)] +=
        other.counts_[static_cast<std::size_t>(i)];
  }
  total_ += other.total_;
}

double TimeHistogram::bin_lower_s(int bin) {
  if (bin <= 0) return 0.0;
  return kFloorS * std::pow(10.0, static_cast<double>(bin - 1) /
                                      static_cast<double>(kBinsPerDecade));
}

void StageAggregates::Entry::add(double value_s) {
  ++events;
  time_s.add(value_s);
  histogram.add(value_s);
}

void StageAggregates::Entry::merge(const Entry& other) {
  events += other.events;
  time_s.merge(other.time_s);
  histogram.merge(other.histogram);
}

void StageAggregates::merge(const StageAggregates& other) {
  for (std::size_t i = 0; i < kStageCount; ++i) {
    stages[i].merge(other.stages[i]);
  }
}

void JsonlTraceSink::event(const TraceEvent& e) {
  char buf[256];
  std::snprintf(buf, sizeof buf,
                "{\"rep\":%d,\"packet\":%lld,\"stage\":\"%s\","
                "\"kind\":\"%s\",\"t\":%.17g,\"value_s\":%.17g}\n",
                e.repetition, static_cast<long long>(e.packet),
                stage_key(e.stage), e.kind, e.time_s, e.value_s);
  out_ << buf;
}

}  // namespace tv::core
