// The sender/receiver/eavesdropper pipeline of Fig. 3, as a discrete-event
// simulation.
//
// Producer thread: reads video segments from "disk" into the send queue;
// packets of frame f arrive at f/fps plus per-read latencies, so I-frames
// produce the bursty phase-1 arrivals of the 2-MMPP and P-frames the
// sparse phase-2 arrivals.
// Consumer/server: FIFO; per packet the service is encryption time (if the
// policy selected it), MAC backoff (geometric collisions, exponential
// waits — eq. 6), and transmission time — exactly the T = T_e + T_b + T_t
// of eq. (3).
// Channel: after the MAC wins the medium, independent channel errors decide
// whether the receiver and the eavesdropper each capture the packet.
// Transport: RTP/UDP (fire and forget) or the reliable ARQ stand-in for
// HTTP/TCP (Section 6.4) where lost packets are retransmitted and delays
// include the recovery time.
#pragma once

#include <cstdint>
#include <optional>
#include <string_view>
#include <vector>

#include "core/device_profile.hpp"
#include "core/trace.hpp"
#include "net/packetizer.hpp"
#include "policy/policy.hpp"
#include "wifi/channel.hpp"
#include "wifi/gilbert_elliott.hpp"

namespace tv::core {

enum class Transport { kRtpUdp, kHttpTcp };

[[nodiscard]] const char* to_string(Transport t);

/// Short machine-readable key ("udp", "tcp") round-tripping through
/// transport_from_string; used by CLI flags and sweep result sinks.
[[nodiscard]] const char* transport_key(Transport t);

/// Parse "udp"/"tcp" (or the to_string display names).  Throws
/// std::invalid_argument on anything else.
[[nodiscard]] Transport transport_from_string(std::string_view name);

/// Opt-in degraded-network channel model.  When set on a PipelineConfig
/// it replaces the flat Bernoulli `receiver_loss_prob` /
/// `eavesdropper_loss_prob` knobs with per-listener Gilbert-Elliott
/// chains (bursty, correlated losses) and adds scheduled AP-outage
/// windows during which no listener hears anything.  With
/// `mean_burst_length <= 1` the chains degenerate to exactly the legacy
/// i.i.d. losses, so burstiness can be swept at a fixed loss rate.
struct ChannelModel {
  wifi::GilbertElliottParams receiver;
  wifi::GilbertElliottParams eavesdropper;
  std::vector<wifi::OutageWindow> outages;
};

/// Something that went wrong during a transfer (or, with repetition >= 0,
/// during one repetition of an experiment).  Recording these instead of
/// throwing is what lets a degraded-network run finish with partial
/// statistics.
struct FailureEvent {
  enum class Kind {
    kApOutage,         ///< packet swallowed by a scheduled AP outage.
    kDeadlineExpired,  ///< ARQ gave up: per-packet deadline exceeded.
    kMaxAttempts,      ///< ARQ gave up: retransmission budget exhausted.
    kException,        ///< a repetition threw; partial stats were kept.
  };
  Kind kind = Kind::kApOutage;
  double time_s = 0.0;
  std::int64_t packet_index = -1;  ///< -1 when not packet-specific.
  int repetition = -1;             ///< set by run_experiment.
};

[[nodiscard]] const char* to_string(FailureEvent::Kind kind);

/// Everything the sender-side DES needs besides the packets themselves.
struct PipelineConfig {
  DeviceProfile device;
  crypto::Algorithm algorithm = crypto::Algorithm::kAes256;
  Transport transport = Transport::kRtpUdp;
  double fps = 30.0;
  /// Producer read model: per-segment overhead + per-byte time.  The
  /// overhead is exponentially distributed (syscalls, JNI, disk cache),
  /// and each frame's release carries an exponential scheduling jitter —
  /// which is also what makes the 2-MMPP a good fit for the arrivals.
  double read_overhead_s = 180e-6;
  double read_per_byte_s = 22e-9;
  double frame_jitter_mean_s = 22e-3;
  /// MAC model (Section 4.2.2): per-attempt success and backoff wait rate.
  double mac_success_prob = 0.78;
  double backoff_rate = 420.0;  ///< lambda_b (1/s).
  /// PHY for transmission times (effective rate on a contended cafe WLAN).
  wifi::PhyParameters phy{.data_rate_mbps = 4.0};
  double tx_jitter_stddev_s = 20e-6;
  /// Independent channel-error loss probabilities per on-air packet
  /// (the legacy i.i.d. model, used whenever `channel` is not set).
  double receiver_loss_prob = 0.003;
  double eavesdropper_loss_prob = 0.01;
  /// Bursty-loss / AP-outage channel model (opt-in; see ChannelModel).
  std::optional<ChannelModel> channel;
  /// TCP mode: extra recovery latency charged per retransmission, plus a
  /// per-packet overhead for ACK processing and congestion-window pacing.
  double tcp_retx_penalty_s = 18e-3;
  double tcp_per_packet_overhead_s = 1.6e-3;
  int tcp_max_attempts = 8;
  /// ARQ resilience: each successive retransmission wait is the penalty
  /// scaled by this factor (1.0 = the legacy flat penalty), capped at
  /// `tcp_backoff_max_s`.
  double tcp_backoff_multiplier = 1.0;
  double tcp_backoff_max_s = 0.25;
  /// ARQ give-up: stop retransmitting a packet once its sojourn (arrival
  /// to projected completion) would exceed this deadline.  0 disables.
  double packet_deadline_s = 0.0;
  /// Graceful policy degradation: when a packet has waited in the send
  /// queue longer than this, encrypted non-I packets are sent in clear
  /// (I-frame-only encryption) to shed encryption latency.  0 disables.
  double degrade_sojourn_s = 0.0;
};

/// Per-packet timeline through the sender (timestamps in seconds).
struct PacketTiming {
  double arrival = 0.0;        ///< enqueued by the producer.
  double service_start = 0.0;  ///< head of queue.
  double encryption_s = 0.0;   ///< T_e (0 when not encrypted).
  double backoff_s = 0.0;      ///< T_b (summed over attempts in TCP mode).
  double transmit_s = 0.0;     ///< T_t (summed over attempts in TCP mode).
  double completion = 0.0;     ///< left the sender.
  int attempts = 1;            ///< transmissions (TCP mode may retransmit).

  [[nodiscard]] double delay() const { return completion - arrival; }
  [[nodiscard]] double service() const { return completion - service_start; }
};

/// Result of simulating one transfer.
struct TransferResult {
  std::vector<PacketTiming> timings;          ///< one per packet.
  std::vector<bool> receiver_delivered;
  std::vector<bool> eavesdropper_captured;
  std::vector<bool> degraded_cleartext;  ///< sent clear under queue pressure.
  double duration_s = 0.0;       ///< first arrival to last completion.
  double airtime_s = 0.0;        ///< radio-on time (all attempts).
  std::size_t encrypted_payload_bytes = 0;

  // Resilience accounting (all zero on a healthy network).
  std::vector<FailureEvent> failures;  ///< in packet order.
  std::size_t retransmissions = 0;     ///< ARQ retries across all packets.
  std::size_t deadline_drops = 0;      ///< packets abandoned past deadline.
  std::size_t outage_drops = 0;        ///< attempts swallowed by AP outages.
  std::size_t degraded_packets = 0;    ///< packets downgraded to cleartext.

  [[nodiscard]] double mean_delay_s() const;
  [[nodiscard]] double mean_delay_ms() const { return mean_delay_s() * 1e3; }
};

/// Throws std::invalid_argument on an unusable configuration (bad MAC /
/// rate / fps values, bad resilience knobs, unreachable channel-model
/// parameters).  Callers that degrade gracefully on *transient* failures
/// should validate up front so configuration mistakes still fail fast.
void validate(const PipelineConfig& config);

/// Simulate the transfer of an already policy-encrypted packet sequence.
/// `encrypted[i]` mirrors packets[i].encrypted (passed separately so the
/// caller can reuse one packetization across policies).
///
/// The transfer is composed from the stages in core/pipeline_stages.hpp
/// (producer -> policy gate -> service -> channel -> transport).  When
/// `trace` is non-null every stage emits TraceEvents into it; with it null
/// (the default) the run is byte-identical to an untraced build.
[[nodiscard]] TransferResult simulate_transfer(
    const PipelineConfig& config, const std::vector<net::VideoPacket>& packets,
    std::uint64_t seed, TraceSink* trace = nullptr);

}  // namespace tv::core
