// Host crypto calibration: measure what *this* machine's cipher hot path
// actually costs and feed it into the service model.
//
// The built-in DeviceProfiles carry constants tuned to the paper's two
// handsets (Table 1).  When the simulator instead models the machine it is
// running on — e.g. the live testbed sender, or a bench tracking the
// batched/AES-NI hot paths — the encryption term of eq. (15) should come
// from measurement, not folklore.  measure_host_crypto() times the real
// OfbStream segment path (segment IV derivation + reset + apply, exactly
// what the packetizer runs) and calibrated_host_profile() packages the
// three algorithms into a DeviceProfile whose encryption_seconds() then
// drives ServiceModel::draw_encryption for pipeline and sweep runs.
#pragma once

#include <cstddef>

#include "core/device_profile.hpp"
#include "crypto/suite.hpp"

namespace tv::core {

/// One algorithm's measured hot-path cost on the host CPU.
struct HostCryptoMeasurement {
  crypto::Algorithm algorithm = crypto::Algorithm::kAes128;
  /// Backend that actually ran (kAuto resolves to kAesNi or kScalar).
  crypto::CipherBackend backend = crypto::CipherBackend::kScalar;
  /// Sustained bulk throughput over a large buffer, MB/s.
  double throughput_mb_s = 0.0;
  /// Mean per-segment overhead beyond bulk throughput (IV derivation,
  /// stream reset, call path), seconds.
  double per_packet_overhead_s = 0.0;
  /// Spread of per-segment times, the Gaussian jitter of eq. (15).
  double jitter_stddev_s = 0.0;
};

/// Time the OFB segment path for `a` on this host.  `sample_bytes` sizes
/// the bulk-throughput buffer; the per-packet pass always uses MTU-sized
/// segments.  Deterministic key/IV, best-of-N timing: results are stable
/// enough for calibration but are still wall-clock measurements — do not
/// golden-pin them.
[[nodiscard]] HostCryptoMeasurement measure_host_crypto(
    crypto::Algorithm a,
    crypto::CipherBackend backend = crypto::CipherBackend::kAuto,
    std::size_t sample_bytes = 1 << 20);

/// A DeviceProfile for the host: the three CryptoSpeed entries are
/// measured with measure_host_crypto(); the power-side coefficients are
/// inherited from the Samsung profile (this hook calibrates *time*, not
/// the paper's handset power model — see docs/benchmarks.md).
[[nodiscard]] DeviceProfile calibrated_host_profile(
    crypto::CipherBackend backend = crypto::CipherBackend::kAuto);

}  // namespace tv::core
