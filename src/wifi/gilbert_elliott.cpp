#include "wifi/gilbert_elliott.hpp"

#include <stdexcept>

namespace tv::wifi {

double GilbertElliottParams::stationary_bad_prob() const {
  if (effectively_iid()) return 0.0;
  return (mean_loss_prob - good_loss_prob) / (bad_loss_prob - good_loss_prob);
}

double GilbertElliottParams::bad_to_good_prob() const {
  if (effectively_iid()) return 1.0;
  return 1.0 / mean_burst_length;
}

double GilbertElliottParams::good_to_bad_prob() const {
  if (effectively_iid()) return 0.0;
  const double pi_bad = stationary_bad_prob();
  // Balance: pi_good * p = pi_bad * r.
  return bad_to_good_prob() * pi_bad / (1.0 - pi_bad);
}

void GilbertElliottParams::validate() const {
  if (mean_loss_prob < 0.0 || mean_loss_prob > 1.0 ||
      good_loss_prob < 0.0 || good_loss_prob > 1.0 ||
      bad_loss_prob < 0.0 || bad_loss_prob > 1.0) {
    throw std::invalid_argument{
        "GilbertElliottParams: probabilities must lie in [0, 1]"};
  }
  if (mean_burst_length < 0.0) {
    throw std::invalid_argument{
        "GilbertElliottParams: mean_burst_length must be >= 0"};
  }
  if (effectively_iid()) return;  // plain Bernoulli: nothing else to check.
  if (good_loss_prob >= bad_loss_prob) {
    throw std::invalid_argument{
        "GilbertElliottParams: need good_loss_prob < bad_loss_prob"};
  }
  if (mean_loss_prob < good_loss_prob || mean_loss_prob > bad_loss_prob) {
    throw std::invalid_argument{
        "GilbertElliottParams: mean_loss_prob must lie between the "
        "per-state loss probabilities"};
  }
  const double pi_bad = stationary_bad_prob();
  if (pi_bad >= 1.0) {
    throw std::invalid_argument{
        "GilbertElliottParams: stationary Bad probability is 1; the Good "
        "state never occurs"};
  }
  if (good_to_bad_prob() > 1.0) {
    throw std::invalid_argument{
        "GilbertElliottParams: burst length too short for the requested "
        "loss rate (Good->Bad probability exceeds 1)"};
  }
}

bool in_outage(const std::vector<OutageWindow>& outages, double t) {
  for (const auto& w : outages) {
    if (w.contains(t)) return true;
  }
  return false;
}

GilbertElliottChannel::GilbertElliottChannel(
    const GilbertElliottParams& params, std::uint64_t seed)
    : params_(params), rng_(seed) {
  params_.validate();
  if (!params_.effectively_iid()) {
    p_good_to_bad_ = params_.good_to_bad_prob();
    p_bad_to_good_ = params_.bad_to_good_prob();
    // Start from the stationary distribution so the loss rate holds from
    // the first slot (the chain has no warm-up transient).
    bad_ = rng_.bernoulli(params_.stationary_bad_prob());
  }
}

bool GilbertElliottChannel::lose_packet() {
  if (params_.effectively_iid()) {
    return rng_.bernoulli(params_.mean_loss_prob);
  }
  const bool lost = rng_.bernoulli(bad_ ? params_.bad_loss_prob
                                        : params_.good_loss_prob);
  bad_ = bad_ ? !rng_.bernoulli(p_bad_to_good_)
              : rng_.bernoulli(p_good_to_bad_);
  return lost;
}

std::vector<bool> GilbertElliottChannel::trace(std::size_t n) {
  std::vector<bool> out(n);
  for (std::size_t i = 0; i < n; ++i) out[i] = lose_packet();
  return out;
}

}  // namespace tv::wifi
