#include "wifi/dcf_model.hpp"

#include <cmath>
#include <stdexcept>

namespace tv::wifi {

DcfSolution solve_dcf(const DcfParameters& params, double tolerance,
                      int max_iterations) {
  if (params.contenders < 1 || params.cw_min < 1 ||
      params.backoff_stages < 0) {
    throw std::invalid_argument{"solve_dcf: bad parameters"};
  }
  const double n = params.contenders;
  const double w = params.cw_min;
  const int m = params.backoff_stages;

  if (params.contenders == 1) {
    // No contention: never collides, attempts with the backoff-limited rate.
    DcfSolution s;
    s.collision_probability = 0.0;
    s.attempt_probability = 2.0 / (w + 1.0);
    s.iterations = 0;
    return s;
  }

  double p = 0.1;  // initial collision probability guess.
  DcfSolution s;
  for (int iter = 0; iter < max_iterations; ++iter) {
    // tau from Bianchi's backoff chain.
    const double two_p = 2.0 * p;
    double geometric;  // (1 - (2p)^m) / (1 - 2p), handling 2p -> 1.
    if (std::abs(1.0 - two_p) < 1e-9) {
      geometric = m;
    } else {
      geometric = (1.0 - std::pow(two_p, m)) / (1.0 - two_p);
    }
    const double tau = 2.0 / (1.0 + w + p * w * geometric);
    const double p_next = 1.0 - std::pow(1.0 - tau, n - 1.0);
    const double p_new = 0.5 * (p + p_next);  // damping.
    s.attempt_probability = tau;
    s.iterations = iter + 1;
    if (std::abs(p_new - p) < tolerance) {
      s.collision_probability = p_new;
      return s;
    }
    p = p_new;
  }
  throw std::runtime_error{"solve_dcf: fixed point did not converge"};
}

MultiDcfSolution solve_dcf_classes(const std::vector<DcfClass>& classes,
                                   double tolerance, int max_iterations) {
  if (classes.empty()) {
    throw std::invalid_argument{"solve_dcf_classes: no classes"};
  }
  int total_stations = 0;
  for (const DcfClass& c : classes) {
    if (c.stations < 1 || c.cw_min < 1 || c.backoff_stages < 0) {
      throw std::invalid_argument{"solve_dcf_classes: bad class parameters"};
    }
    total_stations += c.stations;
  }
  const std::size_t k = classes.size();

  MultiDcfSolution s;
  s.attempt_probability.assign(k, 0.0);
  s.collision_probability.assign(k, 0.0);
  s.class_success_prob.assign(k, 0.0);
  s.per_station_success_prob.assign(k, 0.0);

  // Derived per-slot event probabilities, shared by both exits below.
  auto finish = [&](const std::vector<double>& tau) {
    double idle = 1.0;
    for (std::size_t c = 0; c < k; ++c) {
      idle *= std::pow(1.0 - tau[c], static_cast<double>(classes[c].stations));
    }
    s.idle_prob = idle;
    s.any_transmission_prob = 1.0 - idle;
    double success = 0.0;
    for (std::size_t c = 0; c < k; ++c) {
      const double n_c = classes[c].stations;
      double others = 1.0;
      for (std::size_t d = 0; d < k; ++d) {
        if (d == c) continue;
        others *= std::pow(1.0 - tau[d],
                           static_cast<double>(classes[d].stations));
      }
      s.class_success_prob[c] =
          n_c * tau[c] * std::pow(1.0 - tau[c], n_c - 1.0) * others;
      s.per_station_success_prob[c] = s.class_success_prob[c] / n_c;
      success += s.class_success_prob[c];
    }
    s.success_prob = success;
  };

  if (total_stations == 1) {
    // The lone station never collides; mirror solve_dcf's degenerate exit.
    const double w = classes[0].cw_min;
    s.attempt_probability[0] = 2.0 / (w + 1.0);
    s.collision_probability[0] = 0.0;
    s.iterations = 0;
    finish(s.attempt_probability);
    return s;
  }

  // Jacobi-style damped iteration: every class's update reads only the
  // previous iterate, so the solution is invariant (bitwise, up to index
  // permutation) under reordering of the class list — and with one class
  // the arithmetic below reduces term by term to solve_dcf's loop.
  std::vector<double> p(k, 0.1);  // initial collision probability guesses.
  std::vector<double> tau(k, 0.0);
  std::vector<double> p_new(k, 0.0);
  for (int iter = 0; iter < max_iterations; ++iter) {
    for (std::size_t c = 0; c < k; ++c) {
      const double w = classes[c].cw_min;
      const int m = classes[c].backoff_stages;
      const double two_p = 2.0 * p[c];
      double geometric;  // (1 - (2p)^m) / (1 - 2p), handling 2p -> 1.
      if (std::abs(1.0 - two_p) < 1e-9) {
        geometric = m;
      } else {
        geometric = (1.0 - std::pow(two_p, m)) / (1.0 - two_p);
      }
      tau[c] = 2.0 / (1.0 + w + p[c] * w * geometric);
    }
    double max_delta = 0.0;
    for (std::size_t c = 0; c < k; ++c) {
      const double n_c = classes[c].stations;
      double others = 1.0;
      for (std::size_t d = 0; d < k; ++d) {
        if (d == c) continue;
        others *= std::pow(1.0 - tau[d],
                           static_cast<double>(classes[d].stations));
      }
      const double p_next = 1.0 - std::pow(1.0 - tau[c], n_c - 1.0) * others;
      p_new[c] = 0.5 * (p[c] + p_next);  // damping.
      max_delta = std::max(max_delta, std::abs(p_new[c] - p[c]));
    }
    s.attempt_probability = tau;
    s.iterations = iter + 1;
    if (max_delta < tolerance) {
      s.collision_probability = p_new;
      finish(tau);
      return s;
    }
    p = p_new;
  }
  throw std::runtime_error{"solve_dcf_classes: fixed point did not converge"};
}

double packet_success_rate(const DcfParameters& params,
                           double channel_error_probability) {
  if (channel_error_probability < 0.0 || channel_error_probability > 1.0) {
    throw std::invalid_argument{"packet_success_rate: bad error probability"};
  }
  const DcfSolution s = solve_dcf(params);
  return (1.0 - s.collision_probability) * (1.0 - channel_error_probability);
}

double mean_collisions(double success_rate) {
  if (success_rate <= 0.0 || success_rate > 1.0) {
    throw std::invalid_argument{"mean_collisions: success rate out of (0,1]"};
  }
  return (1.0 - success_rate) / success_rate;
}

}  // namespace tv::wifi
