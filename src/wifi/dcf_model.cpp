#include "wifi/dcf_model.hpp"

#include <cmath>
#include <stdexcept>

namespace tv::wifi {

DcfSolution solve_dcf(const DcfParameters& params, double tolerance,
                      int max_iterations) {
  if (params.contenders < 1 || params.cw_min < 1 ||
      params.backoff_stages < 0) {
    throw std::invalid_argument{"solve_dcf: bad parameters"};
  }
  const double n = params.contenders;
  const double w = params.cw_min;
  const int m = params.backoff_stages;

  if (params.contenders == 1) {
    // No contention: never collides, attempts with the backoff-limited rate.
    DcfSolution s;
    s.collision_probability = 0.0;
    s.attempt_probability = 2.0 / (w + 1.0);
    s.iterations = 0;
    return s;
  }

  double p = 0.1;  // initial collision probability guess.
  DcfSolution s;
  for (int iter = 0; iter < max_iterations; ++iter) {
    // tau from Bianchi's backoff chain.
    const double two_p = 2.0 * p;
    double geometric;  // (1 - (2p)^m) / (1 - 2p), handling 2p -> 1.
    if (std::abs(1.0 - two_p) < 1e-9) {
      geometric = m;
    } else {
      geometric = (1.0 - std::pow(two_p, m)) / (1.0 - two_p);
    }
    const double tau = 2.0 / (1.0 + w + p * w * geometric);
    const double p_next = 1.0 - std::pow(1.0 - tau, n - 1.0);
    const double p_new = 0.5 * (p + p_next);  // damping.
    s.attempt_probability = tau;
    s.iterations = iter + 1;
    if (std::abs(p_new - p) < tolerance) {
      s.collision_probability = p_new;
      return s;
    }
    p = p_new;
  }
  throw std::runtime_error{"solve_dcf: fixed point did not converge"};
}

double packet_success_rate(const DcfParameters& params,
                           double channel_error_probability) {
  if (channel_error_probability < 0.0 || channel_error_probability > 1.0) {
    throw std::invalid_argument{"packet_success_rate: bad error probability"};
  }
  const DcfSolution s = solve_dcf(params);
  return (1.0 - s.collision_probability) * (1.0 - channel_error_probability);
}

double mean_collisions(double success_rate) {
  if (success_rate <= 0.0 || success_rate > 1.0) {
    throw std::invalid_argument{"mean_collisions: success rate out of (0,1]"};
  }
  return (1.0 - success_rate) / success_rate;
}

}  // namespace tv::wifi
