// 802.11g PHY timing and channel error model.
//
// Converts packet sizes into on-air transmission times (PLCP preamble, MAC
// framing, SIFS + ACK) and bit error rates into per-packet error
// probabilities.  These feed T_t in eq. (3) and the channel component of
// the packet success rate in Section 4.1.
#pragma once

#include <cstddef>

namespace tv::wifi {

/// 802.11g (ERP-OFDM) PHY constants and rates.
struct PhyParameters {
  double data_rate_mbps = 24.0;   ///< payload rate.
  double control_rate_mbps = 6.0; ///< rate for ACKs.
  double slot_time_s = 9e-6;
  double sifs_s = 10e-6;
  double difs_s = 28e-6;          ///< SIFS + 2 slots.
  double plcp_preamble_s = 20e-6; ///< OFDM preamble + signal field.
  std::size_t mac_overhead_bytes = 28;  ///< MAC header (24) + FCS (4).
  std::size_t ack_bytes = 14;
};

/// Time to put `wire_bytes` of IP datagram on the air, including MAC
/// framing, the PLCP preamble, and the SIFS + ACK exchange.
[[nodiscard]] double transmission_time_s(const PhyParameters& phy,
                                         std::size_t wire_bytes);

/// Per-packet channel error probability for a given bit error rate:
/// 1 - (1 - ber)^(8 * wire_bytes), computed in log space for stability.
[[nodiscard]] double packet_error_probability(double bit_error_rate,
                                              std::size_t wire_bytes);

/// BER of coherent BPSK over AWGN at the given linear SNR:
/// Q(sqrt(2 snr)).  A convenient way to derive bit_error_rate inputs.
[[nodiscard]] double bpsk_bit_error_rate(double snr_linear);

}  // namespace tv::wifi
