// Gilbert-Elliott bursty channel model and scheduled AP outages.
//
// The paper's experiments ran on a live cafe WLAN where losses cluster:
// a fade or a burst of contention wipes out several consecutive packets,
// and the AP occasionally drops the association entirely (roaming,
// deauth, beacon loss).  The flat Bernoulli knobs in the pipeline model
// neither.  This module provides the classic two-state Gilbert-Elliott
// chain — a Good state with residual loss h_g and a Bad state with loss
// h_b, parameterised by the *observable* quantities (stationary loss
// rate, mean Bad-state sojourn) rather than raw transition
// probabilities — plus scheduled outage windows during which nothing is
// heard by anyone.
#pragma once

#include <cstdint>
#include <vector>

#include "util/rng.hpp"

namespace tv::wifi {

/// Observable parameterisation of a two-state Gilbert-Elliott channel.
///
/// `mean_loss_prob` is the stationary per-packet loss probability;
/// `mean_burst_length` the expected number of consecutive packet slots
/// spent in the Bad state once entered (the mean sojourn, in packets).
/// A `mean_burst_length` of 1 (or less) degenerates to i.i.d. Bernoulli
/// losses at `mean_loss_prob`, which is exactly the pipeline's legacy
/// channel — so sweeping burstiness up from 1 isolates the effect of
/// loss correlation at a fixed loss rate.
struct GilbertElliottParams {
  double mean_loss_prob = 0.0;
  double mean_burst_length = 1.0;
  double good_loss_prob = 0.0;  ///< h_g: residual loss in the Good state.
  double bad_loss_prob = 1.0;   ///< h_b: loss inside a burst.

  /// True when the configuration is memoryless (plain Bernoulli).
  [[nodiscard]] bool effectively_iid() const {
    return mean_burst_length <= 1.0;
  }

  /// Stationary probability of the Bad state implied by the targets.
  [[nodiscard]] double stationary_bad_prob() const;
  /// Per-slot Bad -> Good transition probability (1 / mean burst).
  [[nodiscard]] double bad_to_good_prob() const;
  /// Per-slot Good -> Bad transition probability.
  [[nodiscard]] double good_to_bad_prob() const;

  /// Throws std::invalid_argument when the targets are unreachable
  /// (e.g. mean loss outside [h_g, h_b], or a burst so long the Good
  /// state cannot compensate).
  void validate() const;
};

/// A window during which the AP is gone (disassociation / roaming): no
/// listener hears anything transmitted inside it.
struct OutageWindow {
  double start_s = 0.0;
  double duration_s = 0.0;

  [[nodiscard]] double end_s() const { return start_s + duration_s; }
  [[nodiscard]] bool contains(double t) const {
    return t >= start_s && t < end_s();
  }
};

/// True if `t` falls inside any of the windows.
[[nodiscard]] bool in_outage(const std::vector<OutageWindow>& outages,
                             double t);

/// The chain itself: one instance per listener, advanced once per
/// on-air packet.  Deterministic in its seed.
class GilbertElliottChannel {
 public:
  GilbertElliottChannel(const GilbertElliottParams& params,
                        std::uint64_t seed);

  /// Advance one packet slot; returns true when the packet is lost.
  [[nodiscard]] bool lose_packet();

  [[nodiscard]] bool in_bad_state() const { return bad_; }
  [[nodiscard]] const GilbertElliottParams& params() const { return params_; }

  /// Convenience: generate the loss indicator sequence for `n` slots.
  [[nodiscard]] std::vector<bool> trace(std::size_t n);

 private:
  GilbertElliottParams params_;
  util::Rng rng_;
  double p_good_to_bad_ = 0.0;
  double p_bad_to_good_ = 1.0;
  bool bad_ = false;
};

}  // namespace tv::wifi
