#include "wifi/channel.hpp"

#include <cmath>
#include <stdexcept>

namespace tv::wifi {

double transmission_time_s(const PhyParameters& phy, std::size_t wire_bytes) {
  if (phy.data_rate_mbps <= 0.0 || phy.control_rate_mbps <= 0.0) {
    throw std::invalid_argument{"transmission_time_s: bad rates"};
  }
  const double data_bits =
      8.0 * static_cast<double>(wire_bytes + phy.mac_overhead_bytes);
  const double ack_bits = 8.0 * static_cast<double>(phy.ack_bytes);
  const double data_time =
      phy.plcp_preamble_s + data_bits / (phy.data_rate_mbps * 1e6);
  const double ack_time =
      phy.plcp_preamble_s + ack_bits / (phy.control_rate_mbps * 1e6);
  return data_time + phy.sifs_s + ack_time;
}

double packet_error_probability(double bit_error_rate,
                                std::size_t wire_bytes) {
  if (bit_error_rate < 0.0 || bit_error_rate >= 1.0) {
    throw std::invalid_argument{"packet_error_probability: bad BER"};
  }
  if (bit_error_rate == 0.0) return 0.0;
  const double bits = 8.0 * static_cast<double>(wire_bytes);
  return -std::expm1(bits * std::log1p(-bit_error_rate));
}

double bpsk_bit_error_rate(double snr_linear) {
  if (snr_linear < 0.0) {
    throw std::invalid_argument{"bpsk_bit_error_rate: negative SNR"};
  }
  // Q(x) = erfc(x / sqrt(2)) / 2 with x = sqrt(2 snr).
  return 0.5 * std::erfc(std::sqrt(snr_linear));
}

}  // namespace tv::wifi
