// Slotted discrete-event simulation of saturated 802.11 DCF.
//
// Ground truth against which the fixed-point approximation of
// dcf_model.hpp is validated (the paper validates its model [13] against a
// testbed; we validate against an event-accurate MAC, see
// bench_ablation_models and the wifi tests).
// Multi-station collision / tie-break semantics (shared by both entry
// points below):
//  * Time advances in virtual slots (the Bianchi abstraction): an idle
//    slot, a success and a collision each occupy one loop step.
//  * Every station whose backoff counter is zero at a slot boundary
//    transmits in that slot.  Two or more simultaneous transmitters all
//    collide — there is no capture effect and no tie-break winner.
//  * Every colliding station escalates its backoff stage (capped at its
//    class's m) and redraws its counter from the widened window;
//    a lone successful transmitter resets to stage 0 and redraws.
//  * Stations that did not transmit decrement their counter at the end of
//    the (possibly busy) slot — counters freeze during the busy period
//    itself, which is what makes the slotted clock equivalent to DCF's
//    frozen-backoff rule.
//  * Backoff draws come from one shared RNG, consumed in station order
//    (classes in list order, stations within a class in index order):
//    first one initial stage-0 draw per station, then per slot one redraw
//    per transmitter.  simulate_dcf's single-class stream is the exact
//    prefix-compatible special case of this sequence.
//
// Historical note: the original simulate_dcf was written (and only
// exercised) with a homogeneous station population and reported aggregate
// statistics only, so per-class behaviour in a heterogeneous cell was
// unobservable, and every run started all stations cold at backoff stage
// 0.  A lone station never leaves stage 0, so the cold start is invisible
// at n = 1 — but with contention it biases the measured collision
// probability low until the stage distribution mixes.  The multi-class
// entry point therefore takes an explicit warmup: those initial slots are
// simulated but excluded from the measured statistics.
#pragma once

#include <cstdint>
#include <vector>

#include "wifi/dcf_model.hpp"

namespace tv::wifi {

struct DcfSimResult {
  double attempt_probability = 0.0;    ///< measured tau.
  double collision_probability = 0.0;  ///< measured conditional p.
  std::uint64_t transmissions = 0;
  std::uint64_t collisions = 0;
  std::uint64_t slots = 0;
};

/// Simulate `slots` backoff slots of `params.contenders` saturated stations
/// using binary exponential backoff (CWmin = cw_min, m = backoff_stages).
/// Equivalent to simulate_dcf_classes with one class and no warmup; kept
/// for the single-class callers and the historical aggregate result shape.
[[nodiscard]] DcfSimResult simulate_dcf(const DcfParameters& params,
                                        std::uint64_t slots,
                                        std::uint64_t seed);

/// Per-class measured statistics of a heterogeneous cell.  Vectors are
/// indexed by class in the caller's class order, matching
/// wifi::solve_dcf_classes.
struct MultiDcfSimResult {
  std::vector<double> attempt_probability;    ///< measured tau_c.
  std::vector<double> collision_probability;  ///< measured conditional p_c.
  std::vector<std::uint64_t> transmissions;   ///< per class.
  std::vector<std::uint64_t> collisions;      ///< per class.
  std::uint64_t success_slots = 0;  ///< slots with exactly one transmitter.
  std::uint64_t busy_slots = 0;     ///< slots with >= 1 transmitter.
  std::uint64_t slots = 0;          ///< measured slots (warmup excluded).
};

/// Simulate `warmup_slots + slots` backoff slots of a heterogeneous
/// saturated cell and measure per-class statistics over the final `slots`
/// only (see the warmup note above).  The RNG stream is consumed exactly
/// as documented in the semantics block, so a single-class call with
/// warmup 0 reproduces simulate_dcf's raw counters bit for bit.
[[nodiscard]] MultiDcfSimResult simulate_dcf_classes(
    const std::vector<DcfClass>& classes, std::uint64_t slots,
    std::uint64_t warmup_slots, std::uint64_t seed);

}  // namespace tv::wifi
