// Slotted discrete-event simulation of saturated 802.11 DCF.
//
// Ground truth against which the fixed-point approximation of
// dcf_model.hpp is validated (the paper validates its model [13] against a
// testbed; we validate against an event-accurate MAC, see
// bench_ablation_models and the wifi tests).
#pragma once

#include <cstdint>

#include "wifi/dcf_model.hpp"

namespace tv::wifi {

struct DcfSimResult {
  double attempt_probability = 0.0;    ///< measured tau.
  double collision_probability = 0.0;  ///< measured conditional p.
  std::uint64_t transmissions = 0;
  std::uint64_t collisions = 0;
  std::uint64_t slots = 0;
};

/// Simulate `slots` backoff slots of `params.contenders` saturated stations
/// using binary exponential backoff (CWmin = cw_min, m = backoff_stages).
[[nodiscard]] DcfSimResult simulate_dcf(const DcfParameters& params,
                                        std::uint64_t slots,
                                        std::uint64_t seed);

}  // namespace tv::wifi
