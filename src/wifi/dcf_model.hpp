// Fixed-point model of IEEE 802.11 DCF — the packet-success-rate substrate
// of Section 4.1.
//
// The paper plugs the PHY/MAC model of [13] (a fixed-point approximation in
// the Bianchi family) into its delay and distortion analysis to obtain the
// packet success rate p_s under persistent sources.  We implement the
// canonical saturated-DCF fixed point:
//
//   tau = 2 (1 - 2p) / [ (1 - 2p)(W + 1) + p W (1 - (2p)^m) ]
//   p   = 1 - (1 - tau)^(n-1)
//
// solved iteratively, and compose the collision probability with a channel
// error probability to produce the per-attempt packet success rate used by
// eqs. (6) and (20).  The companion DcfSimulator (dcf_sim.hpp) validates
// this approximation event-by-event.
#pragma once

#include <cstddef>
#include <vector>

namespace tv::wifi {

/// Inputs of the saturated Bianchi fixed point.
struct DcfParameters {
  int contenders = 4;     ///< stations with backlogged traffic (n >= 1).
  int cw_min = 16;        ///< W: minimum contention window (slots).
  int backoff_stages = 6; ///< m: CWmax = 2^m * CWmin.
};

/// Outputs of the fixed point.
struct DcfSolution {
  double attempt_probability = 0.0;    ///< tau: per-slot transmit prob.
  double collision_probability = 0.0;  ///< p: conditional collision prob.
  int iterations = 0;                  ///< fixed-point iterations used.
};

/// Solve the fixed point by damped iteration.  Converges for all practical
/// inputs; throws std::runtime_error if it somehow does not.
[[nodiscard]] DcfSolution solve_dcf(const DcfParameters& params,
                                    double tolerance = 1e-12,
                                    int max_iterations = 100000);

/// One class of stations sharing identical MAC parameters inside a
/// heterogeneous cell — e.g. the video uploaders vs. the cafe's background
/// cross-traffic.  The cell is described by a list of classes.
struct DcfClass {
  int stations = 1;       ///< n_c: stations of this class (>= 1).
  int cw_min = 16;        ///< W_c: minimum contention window (slots).
  int backoff_stages = 6; ///< m_c: CWmax = 2^m * CWmin.
};

/// Outputs of the heterogeneous n-station fixed point.  All vectors are
/// indexed by class, in the caller's class order.
struct MultiDcfSolution {
  std::vector<double> attempt_probability;    ///< tau_c per class.
  std::vector<double> collision_probability;  ///< p_c per class.
  /// P_succ,c: probability a virtual slot carries exactly one transmission
  /// and it belongs to class c.
  std::vector<double> class_success_prob;
  /// P_succ,c / n_c: one station's share — the per-flow saturation
  /// throughput factor.  Non-increasing in the total station count.
  std::vector<double> per_station_success_prob;
  double idle_prob = 0.0;             ///< no station transmits in a slot.
  double any_transmission_prob = 0.0; ///< P_tr = 1 - idle_prob.
  double success_prob = 0.0;          ///< exactly one station transmits.
  int iterations = 0;                 ///< fixed-point iterations used.
};

/// Solve the coupled per-class fixed point
///
///   tau_c = 2 (1 - 2 p_c) / [ (1-2p_c)(W_c+1) + p_c W_c (1-(2p_c)^m_c) ]
///   p_c   = 1 - (1 - tau_c)^(n_c - 1) * prod_{d != c} (1 - tau_d)^(n_d)
///
/// by the same damped iteration as solve_dcf.  With a single class the
/// cross-class product is empty (== 1.0), the update sequence is the exact
/// floating-point sequence of solve_dcf, and the outputs match it bit for
/// bit — including the degenerate one-station cell (tau = 2/(W+1), p = 0).
/// Throws std::invalid_argument on an empty class list or a class with
/// stations < 1 / cw_min < 1 / backoff_stages < 0, and std::runtime_error
/// if the iteration fails to converge.
[[nodiscard]] MultiDcfSolution solve_dcf_classes(
    const std::vector<DcfClass>& classes, double tolerance = 1e-12,
    int max_iterations = 100000);

/// Per-attempt packet success rate p_s combining MAC collisions with a
/// channel error probability for the packet's length:
///   p_s = (1 - p_collision) * (1 - p_channel_error).
[[nodiscard]] double packet_success_rate(const DcfParameters& params,
                                         double channel_error_probability);

/// Mean number of retransmission attempts per delivered packet implied by a
/// per-attempt success rate (geometric, eq. 6): E[K] = (1 - p) / p failures.
[[nodiscard]] double mean_collisions(double success_rate);

}  // namespace tv::wifi
