// Fixed-point model of IEEE 802.11 DCF — the packet-success-rate substrate
// of Section 4.1.
//
// The paper plugs the PHY/MAC model of [13] (a fixed-point approximation in
// the Bianchi family) into its delay and distortion analysis to obtain the
// packet success rate p_s under persistent sources.  We implement the
// canonical saturated-DCF fixed point:
//
//   tau = 2 (1 - 2p) / [ (1 - 2p)(W + 1) + p W (1 - (2p)^m) ]
//   p   = 1 - (1 - tau)^(n-1)
//
// solved iteratively, and compose the collision probability with a channel
// error probability to produce the per-attempt packet success rate used by
// eqs. (6) and (20).  The companion DcfSimulator (dcf_sim.hpp) validates
// this approximation event-by-event.
#pragma once

#include <cstddef>

namespace tv::wifi {

/// Inputs of the saturated Bianchi fixed point.
struct DcfParameters {
  int contenders = 4;     ///< stations with backlogged traffic (n >= 1).
  int cw_min = 16;        ///< W: minimum contention window (slots).
  int backoff_stages = 6; ///< m: CWmax = 2^m * CWmin.
};

/// Outputs of the fixed point.
struct DcfSolution {
  double attempt_probability = 0.0;    ///< tau: per-slot transmit prob.
  double collision_probability = 0.0;  ///< p: conditional collision prob.
  int iterations = 0;                  ///< fixed-point iterations used.
};

/// Solve the fixed point by damped iteration.  Converges for all practical
/// inputs; throws std::runtime_error if it somehow does not.
[[nodiscard]] DcfSolution solve_dcf(const DcfParameters& params,
                                    double tolerance = 1e-12,
                                    int max_iterations = 100000);

/// Per-attempt packet success rate p_s combining MAC collisions with a
/// channel error probability for the packet's length:
///   p_s = (1 - p_collision) * (1 - p_channel_error).
[[nodiscard]] double packet_success_rate(const DcfParameters& params,
                                         double channel_error_probability);

/// Mean number of retransmission attempts per delivered packet implied by a
/// per-attempt success rate (geometric, eq. 6): E[K] = (1 - p) / p failures.
[[nodiscard]] double mean_collisions(double success_rate);

}  // namespace tv::wifi
