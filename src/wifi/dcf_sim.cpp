#include "wifi/dcf_sim.hpp"

#include <stdexcept>
#include <vector>

#include "util/rng.hpp"

namespace tv::wifi {

DcfSimResult simulate_dcf(const DcfParameters& params, std::uint64_t slots,
                          std::uint64_t seed) {
  if (params.contenders < 1) {
    throw std::invalid_argument{"simulate_dcf: need at least one station"};
  }
  util::Rng rng{seed};
  const std::size_t n = static_cast<std::size_t>(params.contenders);

  struct Station {
    int stage = 0;
    std::uint64_t counter = 0;
  };
  std::vector<Station> stations(n);

  auto draw_backoff = [&](int stage) {
    const std::uint64_t window =
        static_cast<std::uint64_t>(params.cw_min) << stage;
    return rng.uniform_int(window);
  };
  for (auto& st : stations) st.counter = draw_backoff(0);

  DcfSimResult result;
  result.slots = slots;
  for (std::uint64_t slot = 0; slot < slots; ++slot) {
    // Stations whose counter hit zero transmit in this slot.
    std::size_t transmitting = 0;
    for (const auto& st : stations) {
      if (st.counter == 0) ++transmitting;
    }
    if (transmitting == 0) {
      for (auto& st : stations) --st.counter;
      continue;
    }
    const bool collision = transmitting > 1;
    for (auto& st : stations) {
      if (st.counter != 0) {
        // In the slotted (Bianchi) abstraction the whole busy period is one
        // virtual slot and every station's counter decrements at its end.
        --st.counter;
        continue;
      }
      ++result.transmissions;
      if (collision) {
        ++result.collisions;
        if (st.stage < params.backoff_stages) ++st.stage;
      } else {
        st.stage = 0;
      }
      st.counter = draw_backoff(st.stage);
    }
  }

  const double station_slots =
      static_cast<double>(result.slots) * static_cast<double>(n);
  result.attempt_probability =
      static_cast<double>(result.transmissions) / station_slots;
  result.collision_probability =
      result.transmissions > 0
          ? static_cast<double>(result.collisions) /
                static_cast<double>(result.transmissions)
          : 0.0;
  return result;
}

}  // namespace tv::wifi
