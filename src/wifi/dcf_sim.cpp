#include "wifi/dcf_sim.hpp"

#include <stdexcept>
#include <vector>

#include "util/rng.hpp"

namespace tv::wifi {

MultiDcfSimResult simulate_dcf_classes(const std::vector<DcfClass>& classes,
                                       std::uint64_t slots,
                                       std::uint64_t warmup_slots,
                                       std::uint64_t seed) {
  if (classes.empty()) {
    throw std::invalid_argument{"simulate_dcf_classes: no classes"};
  }
  for (const DcfClass& c : classes) {
    if (c.stations < 1 || c.cw_min < 1 || c.backoff_stages < 0) {
      throw std::invalid_argument{"simulate_dcf_classes: bad class"};
    }
  }
  util::Rng rng{seed};

  struct Station {
    std::size_t cls = 0;
    int stage = 0;
    std::uint64_t counter = 0;
  };
  std::vector<Station> stations;
  for (std::size_t c = 0; c < classes.size(); ++c) {
    for (int i = 0; i < classes[c].stations; ++i) {
      stations.push_back(Station{c, 0, 0});
    }
  }

  auto draw_backoff = [&](std::size_t cls, int stage) {
    const std::uint64_t window =
        static_cast<std::uint64_t>(classes[cls].cw_min) << stage;
    return rng.uniform_int(window);
  };
  // Initial stage-0 draws in station order — the documented RNG sequence.
  for (auto& st : stations) st.counter = draw_backoff(st.cls, 0);

  MultiDcfSimResult result;
  result.slots = slots;
  result.transmissions.assign(classes.size(), 0);
  result.collisions.assign(classes.size(), 0);
  const std::uint64_t total = warmup_slots + slots;
  for (std::uint64_t slot = 0; slot < total; ++slot) {
    const bool measured = slot >= warmup_slots;
    // Stations whose counter hit zero transmit in this slot.
    std::size_t transmitting = 0;
    for (const auto& st : stations) {
      if (st.counter == 0) ++transmitting;
    }
    if (transmitting == 0) {
      for (auto& st : stations) --st.counter;
      continue;
    }
    const bool collision = transmitting > 1;
    if (measured) {
      ++result.busy_slots;
      if (!collision) ++result.success_slots;
    }
    for (auto& st : stations) {
      if (st.counter != 0) {
        // In the slotted (Bianchi) abstraction the whole busy period is one
        // virtual slot and every station's counter decrements at its end.
        --st.counter;
        continue;
      }
      if (measured) ++result.transmissions[st.cls];
      if (collision) {
        if (measured) ++result.collisions[st.cls];
        if (st.stage < classes[st.cls].backoff_stages) ++st.stage;
      } else {
        st.stage = 0;
      }
      st.counter = draw_backoff(st.cls, st.stage);
    }
  }

  result.attempt_probability.assign(classes.size(), 0.0);
  result.collision_probability.assign(classes.size(), 0.0);
  for (std::size_t c = 0; c < classes.size(); ++c) {
    const double station_slots = static_cast<double>(result.slots) *
                                 static_cast<double>(classes[c].stations);
    result.attempt_probability[c] =
        static_cast<double>(result.transmissions[c]) / station_slots;
    result.collision_probability[c] =
        result.transmissions[c] > 0
            ? static_cast<double>(result.collisions[c]) /
                  static_cast<double>(result.transmissions[c])
            : 0.0;
  }
  return result;
}

DcfSimResult simulate_dcf(const DcfParameters& params, std::uint64_t slots,
                          std::uint64_t seed) {
  if (params.contenders < 1) {
    throw std::invalid_argument{"simulate_dcf: need at least one station"};
  }
  const std::vector<DcfClass> one_class{
      {params.contenders, params.cw_min, params.backoff_stages}};
  const MultiDcfSimResult multi =
      simulate_dcf_classes(one_class, slots, /*warmup_slots=*/0, seed);
  DcfSimResult result;
  result.slots = multi.slots;
  result.transmissions = multi.transmissions[0];
  result.collisions = multi.collisions[0];
  result.attempt_probability = multi.attempt_probability[0];
  result.collision_probability = multi.collision_probability[0];
  return result;
}

}  // namespace tv::wifi
