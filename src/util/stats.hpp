// Streaming statistics and confidence intervals.
//
// The paper reports every experiment as the mean of 20 repetitions with a
// 95% confidence interval; RunningStats is the accumulator used everywhere
// for that purpose.
#pragma once

#include <cstddef>
#include <span>
#include <vector>

namespace tv::util {

/// Welford-style streaming accumulator for mean/variance/min/max.
class RunningStats {
 public:
  void add(double x);

  [[nodiscard]] std::size_t count() const { return n_; }
  [[nodiscard]] double mean() const { return n_ > 0 ? mean_ : 0.0; }
  /// Unbiased sample variance; 0 for fewer than two samples.
  [[nodiscard]] double variance() const;
  [[nodiscard]] double stddev() const;
  /// Standard error of the mean.
  [[nodiscard]] double stderr_mean() const;
  [[nodiscard]] double min() const { return min_; }
  [[nodiscard]] double max() const { return max_; }

  /// Half-width of the 95% confidence interval for the mean, using the
  /// Student-t quantile for the actual sample count.
  [[nodiscard]] double ci95_halfwidth() const;

  /// Merge another accumulator into this one using the Chan et al.
  /// parallel-Welford combination.
  ///
  /// Invariant: `count`, `min` and `max` are exactly independent of the
  /// merge order, and the combined `mean`/`variance` (hence the CI) agree
  /// with the single-stream Welford result up to floating-point round-off
  /// only — the combination is the algebraically exact pooling of the two
  /// partitions' (n, mean, M2).  Callers that need *bit-identical* results
  /// across thread counts (the sweep engine's determinism guarantee) must
  /// therefore fold partial accumulators in a fixed order — e.g.
  /// repetition order — regardless of the order in which the partials were
  /// produced; see core::run_experiment.
  void merge(const RunningStats& other);

 private:
  std::size_t n_ = 0;
  double mean_ = 0.0;
  double m2_ = 0.0;
  double min_ = 0.0;
  double max_ = 0.0;
};

/// 97.5% Student-t quantile for the given degrees of freedom (so that the
/// two-sided interval covers 95%).  Exact table for small df, normal
/// approximation beyond.
[[nodiscard]] double t_quantile_975(std::size_t df);

/// Mean of a span (0 for empty).
[[nodiscard]] double mean_of(std::span<const double> xs);

/// Sample percentile (linear interpolation); p in [0, 100].
[[nodiscard]] double percentile(std::vector<double> xs, double p);

}  // namespace tv::util
