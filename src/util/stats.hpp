// Streaming statistics and confidence intervals.
//
// The paper reports every experiment as the mean of 20 repetitions with a
// 95% confidence interval; RunningStats is the accumulator used everywhere
// for that purpose.
#pragma once

#include <cstddef>
#include <span>
#include <vector>

namespace tv::util {

/// Welford-style streaming accumulator for mean/variance/min/max.
class RunningStats {
 public:
  void add(double x);

  [[nodiscard]] std::size_t count() const { return n_; }
  [[nodiscard]] double mean() const { return n_ > 0 ? mean_ : 0.0; }
  /// Unbiased sample variance; 0 for fewer than two samples.
  [[nodiscard]] double variance() const;
  [[nodiscard]] double stddev() const;
  /// Standard error of the mean.
  [[nodiscard]] double stderr_mean() const;
  [[nodiscard]] double min() const { return min_; }
  [[nodiscard]] double max() const { return max_; }

  /// Half-width of the 95% confidence interval for the mean, using the
  /// Student-t quantile for the actual sample count.
  [[nodiscard]] double ci95_halfwidth() const;

  /// Merge another accumulator into this one (parallel reduction).
  void merge(const RunningStats& other);

 private:
  std::size_t n_ = 0;
  double mean_ = 0.0;
  double m2_ = 0.0;
  double min_ = 0.0;
  double max_ = 0.0;
};

/// 97.5% Student-t quantile for the given degrees of freedom (so that the
/// two-sided interval covers 95%).  Exact table for small df, normal
/// approximation beyond.
[[nodiscard]] double t_quantile_975(std::size_t df);

/// Mean of a span (0 for empty).
[[nodiscard]] double mean_of(std::span<const double> xs);

/// Sample percentile (linear interpolation); p in [0, 100].
[[nodiscard]] double percentile(std::vector<double> xs, double p);

}  // namespace tv::util
