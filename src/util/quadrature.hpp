// Gauss-Legendre quadrature, used to integrate service-time distributions
// (Gaussian-jitter mixtures, eqs. 15-18) when building the uniformized
// arrival matrices of the MMPP/G/1 solver.
#pragma once

#include <functional>
#include <vector>

namespace tv::util {

/// Nodes and weights of an n-point Gauss-Legendre rule on [a, b].
struct QuadratureRule {
  std::vector<double> nodes;
  std::vector<double> weights;
};

/// Build an n-point Gauss-Legendre rule on [a, b] (nodes via Newton on
/// Legendre polynomials).  n must be >= 1.
[[nodiscard]] QuadratureRule gauss_legendre(int n, double a, double b);

/// Integrate f over [a, b] with an n-point rule.
[[nodiscard]] double integrate(const std::function<double(double)>& f,
                               double a, double b, int n = 32);

}  // namespace tv::util
