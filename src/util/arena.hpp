// Chunked bump allocator for packet-path byte storage.
//
// The packet path (packetizer → crypto → pipeline → sockets) needs many
// small byte regions with identical lifetime: one transfer, one flow, one
// event-loop turn.  A general-purpose heap pays lock+metadata costs per
// region and scatters the bytes; the arena hands out pointers from large
// chunks with a pointer bump, keeps everything densely packed, and frees
// the whole run at once with reset().
//
// Properties the packet path relies on:
//  * Stable addresses: chunks are never moved or reallocated, so views
//    (util::ByteView, net::PacketBuf) into arena storage stay valid until
//    reset() or destruction — even as the arena grows.
//  * reset() retains capacity: a steady-state loop (per-flow clone in the
//    cell engine, per-event-loop datagram scratch) allocates from the OS
//    only until its high-water mark, then never again.
//  * Stats: lifetime allocation count, bytes in use, reserved bytes and
//    high-water bytes, so benchmarks and regression tests can assert
//    "allocations per packet ≈ 0" without a counting global allocator.
//
// Not thread-safe: one arena per thread/flow/loop, by design (the cell
// engine gives each flow task its own arena).
#pragma once

#include <cstddef>
#include <cstdint>
#include <memory>
#include <vector>

namespace tv::util {

class Arena {
 public:
  static constexpr std::size_t kDefaultChunkBytes = 256 * 1024;
  static constexpr std::size_t kDefaultAlignment = alignof(std::max_align_t);

  explicit Arena(std::size_t chunk_bytes = kDefaultChunkBytes);
  Arena(Arena&&) noexcept = default;
  Arena& operator=(Arena&&) noexcept = default;
  Arena(const Arena&) = delete;
  Arena& operator=(const Arena&) = delete;

  /// A writable region of `size` bytes aligned to `align` (a power of
  /// two).  Never null; grows the arena as needed.  The bytes are
  /// uninitialized.
  [[nodiscard]] std::uint8_t* allocate(std::size_t size,
                                       std::size_t align = kDefaultAlignment);

  /// Drop every allocation but keep the chunks: the next run re-fills the
  /// same memory.  All outstanding views into the arena become invalid.
  void reset();

  /// Release all chunks back to the OS (and reset stats high-water).
  void release();

  // Stats.
  [[nodiscard]] std::size_t bytes_in_use() const { return in_use_; }
  [[nodiscard]] std::size_t bytes_reserved() const { return reserved_; }
  [[nodiscard]] std::size_t high_water_bytes() const { return high_water_; }
  [[nodiscard]] std::uint64_t allocation_count() const { return allocations_; }
  [[nodiscard]] std::uint64_t chunk_count() const { return chunks_.size(); }
  [[nodiscard]] std::uint64_t reset_count() const { return resets_; }

 private:
  struct Chunk {
    std::unique_ptr<std::uint8_t[]> data;
    std::size_t size = 0;
    std::size_t used = 0;
  };

  /// Make a chunk with room for `size` current, append and make current.
  Chunk& grow(std::size_t size);

  std::vector<Chunk> chunks_;
  std::size_t current_ = 0;  ///< index of the chunk being bumped.
  std::size_t chunk_bytes_;
  std::size_t in_use_ = 0;
  std::size_t reserved_ = 0;
  std::size_t high_water_ = 0;
  std::uint64_t allocations_ = 0;
  std::uint64_t resets_ = 0;
};

}  // namespace tv::util
