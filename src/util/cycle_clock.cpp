#include "util/cycle_clock.hpp"

#include <chrono>

#if defined(__x86_64__) || defined(__i386__)
#include <x86intrin.h>
#define TV_HAVE_RDTSC 1
#endif

namespace tv::util {

bool cycle_clock_available() {
#if defined(TV_HAVE_RDTSC)
  return true;
#else
  return false;
#endif
}

std::uint64_t cycle_now() {
#if defined(TV_HAVE_RDTSC)
  return __rdtsc();
#else
  return 0;
#endif
}

namespace {

#if defined(TV_HAVE_RDTSC)
double calibrate_tsc_ghz() {
  using clock = std::chrono::steady_clock;
  // ~20 ms spin: long enough that steady_clock granularity is noise,
  // short enough not to matter at process start.  Two passes, keep the
  // second (the first warms the core out of any idle state).
  double ghz = 0.0;
  for (int pass = 0; pass < 2; ++pass) {
    const auto t0 = clock::now();
    const std::uint64_t c0 = __rdtsc();
    for (;;) {
      const auto t1 = clock::now();
      const auto ns =
          std::chrono::duration_cast<std::chrono::nanoseconds>(t1 - t0)
              .count();
      if (ns >= 20'000'000) {
        const std::uint64_t c1 = __rdtsc();
        ghz = static_cast<double>(c1 - c0) / static_cast<double>(ns);
        break;
      }
    }
  }
  return ghz;
}
#endif

}  // namespace

double tsc_ghz() {
#if defined(TV_HAVE_RDTSC)
  static const double ghz = calibrate_tsc_ghz();
  return ghz;
#else
  return 0.0;
#endif
}

double cycles_to_seconds(std::uint64_t cycles) {
  const double ghz = tsc_ghz();
  if (ghz <= 0.0) return 0.0;
  return static_cast<double>(cycles) / (ghz * 1e9);
}

}  // namespace tv::util
