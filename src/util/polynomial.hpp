// Polynomials and least-squares polynomial regression.
//
// Section 4.3.2 of the paper approximates the measured inter-GOP distortion
// vs. reference distance curves with degree-5 polynomials fitted by
// regression; Polynomial/polyfit implement exactly that step.
#pragma once

#include <cstddef>
#include <span>
#include <vector>

namespace tv::util {

/// Dense polynomial a0 + a1 x + ... + an x^n.
class Polynomial {
 public:
  Polynomial() = default;
  explicit Polynomial(std::vector<double> coefficients)
      : coefficients_(std::move(coefficients)) {}

  [[nodiscard]] double operator()(double x) const;

  [[nodiscard]] std::size_t degree() const {
    return coefficients_.empty() ? 0 : coefficients_.size() - 1;
  }
  [[nodiscard]] const std::vector<double>& coefficients() const {
    return coefficients_;
  }

  [[nodiscard]] Polynomial derivative() const;

 private:
  std::vector<double> coefficients_;
};

/// Least-squares fit of a degree-`degree` polynomial to (x, y) samples via
/// the normal equations.  Requires xs.size() == ys.size() > degree.
[[nodiscard]] Polynomial polyfit(std::span<const double> xs,
                                 std::span<const double> ys,
                                 std::size_t degree);

/// Coefficient of determination of a fit on the given samples.
[[nodiscard]] double r_squared(const Polynomial& p, std::span<const double> xs,
                               std::span<const double> ys);

}  // namespace tv::util
