// Work-stealing thread pool for the sweep engine.
//
// Each worker owns a deque: its own submissions go to the front (LIFO, for
// locality of nested fork/join work), external submissions are distributed
// round-robin to the backs, and an idle worker steals from the back of a
// sibling's deque.  All deques hang off one mutex — the pool schedules
// coarse tasks (whole experiment cells / repetitions), so contention on the
// lock is negligible next to the milliseconds each task runs.
//
// Two properties the rest of the code depends on:
//  * Blocking waits help: `parallel_for` runs queued tasks while it waits,
//    so nested parallel sections (a sweep cell that parallelizes its own
//    repetitions on the same pool) cannot deadlock.
//  * Shutdown drains: the destructor runs every task that was submitted
//    before it returns — no task is lost.
#pragma once

#include <atomic>
#include <chrono>
#include <condition_variable>
#include <cstddef>
#include <deque>
#include <exception>
#include <functional>
#include <future>
#include <memory>
#include <mutex>
#include <thread>
#include <type_traits>
#include <vector>

namespace tv::util {

class ThreadPool {
 public:
  /// Spawns `threads` workers (clamped to at least one).
  explicit ThreadPool(unsigned threads = default_thread_count());

  /// Drains every queued task, then joins the workers.
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  [[nodiscard]] unsigned thread_count() const {
    return static_cast<unsigned>(workers_.size());
  }

  /// Hardware concurrency, clamped to at least one.
  [[nodiscard]] static unsigned default_thread_count();

  /// Queue a callable; the returned future carries its result (or the
  /// exception it threw).
  template <typename F>
  auto submit(F&& fn) -> std::future<std::invoke_result_t<std::decay_t<F>>> {
    using R = std::invoke_result_t<std::decay_t<F>>;
    auto task =
        std::make_shared<std::packaged_task<R()>>(std::forward<F>(fn));
    std::future<R> future = task->get_future();
    enqueue([task] { (*task)(); });
    return future;
  }

  /// Run `body(i)` for every i in [0, n), blocking until all complete.
  /// Iterations are claimed from a shared atomic counter by up to
  /// `thread_count()` strands; the calling thread helps run queued tasks
  /// while it waits (safe to call from inside a pool task).  If any
  /// iteration throws, the first exception observed is rethrown after all
  /// strands finish.
  template <typename F>
  void parallel_for(std::size_t n, F&& body) {
    if (n == 0) return;
    const std::size_t strands =
        std::min<std::size_t>(n, static_cast<std::size_t>(thread_count()));
    if (strands <= 1) {
      for (std::size_t i = 0; i < n; ++i) body(i);
      return;
    }
    auto next = std::make_shared<std::atomic<std::size_t>>(0);
    std::vector<std::future<void>> futures;
    futures.reserve(strands);
    for (std::size_t s = 0; s < strands; ++s) {
      futures.push_back(submit([next, n, &body] {
        for (std::size_t i = (*next)++; i < n; i = (*next)++) body(i);
      }));
    }
    std::exception_ptr error;
    for (auto& future : futures) {
      while (future.wait_for(std::chrono::seconds{0}) !=
             std::future_status::ready) {
        if (!run_pending_task()) {
          future.wait_for(std::chrono::milliseconds{1});
        }
      }
      try {
        future.get();
      } catch (...) {
        if (!error) error = std::current_exception();
      }
    }
    if (error) std::rethrow_exception(error);
  }

  /// Pop and run one queued task if any is available.  Returns whether a
  /// task ran.  Callable from any thread (this is the "help" primitive).
  bool run_pending_task();

 private:
  void worker_loop(unsigned index);
  void enqueue(std::function<void()> task);
  /// Pop from the front of `home`'s deque, else steal from the back of a
  /// sibling's.  Caller must hold mu_.
  bool pop_task_locked(std::function<void()>& out, std::size_t home);

  mutable std::mutex mu_;
  std::condition_variable cv_;
  std::vector<std::deque<std::function<void()>>> queues_;
  std::vector<std::thread> workers_;
  std::size_t next_queue_ = 0;
  bool stop_ = false;
};

}  // namespace tv::util
