#include "util/build_info.hpp"

#ifndef TV_GIT_DESCRIBE
#define TV_GIT_DESCRIBE "unknown"
#endif
#ifndef TV_BUILD_TYPE
#define TV_BUILD_TYPE "unspecified"
#endif

namespace tv::util {

const char* git_describe() { return TV_GIT_DESCRIBE; }

const char* build_type() { return TV_BUILD_TYPE; }

std::string build_info_line() {
  return std::string{"thriftyvid "} + git_describe() + " (" + build_type() +
         ")";
}

}  // namespace tv::util
