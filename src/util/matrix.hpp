// Small dense matrix algebra for the queueing and distortion models.
//
// The MMPP/G/1 solver works with m x m phase matrices (m = 2 in the paper,
// but the code is written for general small m).  Everything here is plain
// row-major double storage with value semantics; sizes are tiny so clarity
// beats cleverness.
#pragma once

#include <cstddef>
#include <initializer_list>
#include <vector>

namespace tv::util {

/// Row-major dense matrix of doubles.
class Matrix {
 public:
  Matrix() = default;
  Matrix(std::size_t rows, std::size_t cols, double fill = 0.0)
      : rows_(rows), cols_(cols), data_(rows * cols, fill) {}

  /// Construct from nested initializer lists: Matrix{{a,b},{c,d}}.
  Matrix(std::initializer_list<std::initializer_list<double>> rows);

  static Matrix identity(std::size_t n);

  [[nodiscard]] std::size_t rows() const { return rows_; }
  [[nodiscard]] std::size_t cols() const { return cols_; }

  double& operator()(std::size_t r, std::size_t c) {
    return data_[r * cols_ + c];
  }
  double operator()(std::size_t r, std::size_t c) const {
    return data_[r * cols_ + c];
  }

  Matrix& operator+=(const Matrix& other);
  Matrix& operator-=(const Matrix& other);
  Matrix& operator*=(double s);

  friend Matrix operator+(Matrix a, const Matrix& b) { return a += b; }
  friend Matrix operator-(Matrix a, const Matrix& b) { return a -= b; }
  friend Matrix operator*(Matrix a, double s) { return a *= s; }
  friend Matrix operator*(double s, Matrix a) { return a *= s; }
  friend Matrix operator*(const Matrix& a, const Matrix& b);

  /// Largest absolute entry.
  [[nodiscard]] double max_abs() const;

 private:
  std::size_t rows_ = 0;
  std::size_t cols_ = 0;
  std::vector<double> data_;
};

using Vector = std::vector<double>;

/// row vector * matrix.
[[nodiscard]] Vector mul(const Vector& v, const Matrix& m);
/// matrix * column vector.
[[nodiscard]] Vector mul(const Matrix& m, const Vector& v);
/// Dot product.
[[nodiscard]] double dot(const Vector& a, const Vector& b);
/// Sum of components.
[[nodiscard]] double sum(const Vector& v);

/// Solve A x = b by partial-pivot LU.  Throws std::runtime_error if A is
/// (numerically) singular.
[[nodiscard]] Vector solve(Matrix a, Vector b);

/// Solve x A = b (row-vector system) by transposing.
[[nodiscard]] Vector solve_left(const Matrix& a, const Vector& b);

/// Matrix inverse via LU; throws on singular input.
[[nodiscard]] Matrix inverse(const Matrix& a);

/// Matrix exponential expm(A) via scaling-and-squaring with a Taylor core.
/// Intended for small, moderately scaled matrices (phase generators).
[[nodiscard]] Matrix expm(const Matrix& a);

/// Stationary distribution pi of an irreducible CTMC generator Q
/// (pi Q = 0, pi e = 1).
[[nodiscard]] Vector ctmc_stationary(const Matrix& q);

/// Stationary distribution of an irreducible stochastic matrix P
/// (pi P = pi, pi e = 1).
[[nodiscard]] Vector dtmc_stationary(const Matrix& p);

}  // namespace tv::util
