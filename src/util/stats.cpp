#include "util/stats.hpp"

#include <algorithm>
#include <array>
#include <cmath>
#include <stdexcept>

namespace tv::util {

void RunningStats::add(double x) {
  if (n_ == 0) {
    min_ = max_ = x;
  } else {
    min_ = std::min(min_, x);
    max_ = std::max(max_, x);
  }
  ++n_;
  const double delta = x - mean_;
  mean_ += delta / static_cast<double>(n_);
  m2_ += delta * (x - mean_);
}

double RunningStats::variance() const {
  if (n_ < 2) return 0.0;
  return m2_ / static_cast<double>(n_ - 1);
}

double RunningStats::stddev() const { return std::sqrt(variance()); }

double RunningStats::stderr_mean() const {
  if (n_ < 1) return 0.0;
  return stddev() / std::sqrt(static_cast<double>(n_));
}

double RunningStats::ci95_halfwidth() const {
  if (n_ < 2) return 0.0;
  return t_quantile_975(n_ - 1) * stderr_mean();
}

void RunningStats::merge(const RunningStats& other) {
  if (other.n_ == 0) return;
  if (n_ == 0) {
    *this = other;
    return;
  }
  const double total = static_cast<double>(n_ + other.n_);
  const double delta = other.mean_ - mean_;
  const double new_mean =
      mean_ + delta * static_cast<double>(other.n_) / total;
  m2_ += other.m2_ + delta * delta * static_cast<double>(n_) *
                         static_cast<double>(other.n_) / total;
  mean_ = new_mean;
  min_ = std::min(min_, other.min_);
  max_ = std::max(max_, other.max_);
  n_ += other.n_;
}

double t_quantile_975(std::size_t df) {
  // Two-sided 95% critical values of Student's t.
  static constexpr std::array<double, 31> kTable = {
      0.0,    12.706, 4.303, 3.182, 2.776, 2.571, 2.447, 2.365,
      2.306,  2.262,  2.228, 2.201, 2.179, 2.160, 2.145, 2.131,
      2.120,  2.110,  2.101, 2.093, 2.086, 2.080, 2.074, 2.069,
      2.064,  2.060,  2.056, 2.052, 2.048, 2.045, 2.042};
  if (df == 0) return 0.0;
  if (df < kTable.size()) return kTable[df];
  if (df < 60) return 2.021;
  if (df < 120) return 2.000;
  return 1.960;
}

double mean_of(std::span<const double> xs) {
  if (xs.empty()) return 0.0;
  double sum = 0.0;
  for (double x : xs) sum += x;
  return sum / static_cast<double>(xs.size());
}

double percentile(std::vector<double> xs, double p) {
  if (xs.empty()) throw std::invalid_argument{"percentile of empty sample"};
  if (p < 0.0 || p > 100.0) throw std::invalid_argument{"percentile out of range"};
  std::sort(xs.begin(), xs.end());
  const double rank = p / 100.0 * static_cast<double>(xs.size() - 1);
  const auto lo = static_cast<std::size_t>(rank);
  const std::size_t hi = std::min(lo + 1, xs.size() - 1);
  const double frac = rank - static_cast<double>(lo);
  return xs[lo] + frac * (xs[hi] - xs[lo]);
}

}  // namespace tv::util
