#include "util/arena.hpp"

#include <algorithm>

namespace tv::util {

Arena::Arena(std::size_t chunk_bytes)
    : chunk_bytes_(std::max<std::size_t>(chunk_bytes, 64)) {}

std::uint8_t* Arena::allocate(std::size_t size, std::size_t align) {
  if (size == 0) size = 1;  // distinct non-null pointers, vector-style.
  if (align == 0) align = 1;
  ++allocations_;
  if (current_ < chunks_.size()) {
    Chunk& c = chunks_[current_];
    const auto base = reinterpret_cast<std::uintptr_t>(c.data.get());
    const std::size_t aligned =
        static_cast<std::size_t>(((base + c.used + align - 1) & ~(align - 1)) -
                                 base);
    if (aligned + size <= c.size) {
      c.used = aligned + size;
      in_use_ += size;
      high_water_ = std::max(high_water_, in_use_);
      return c.data.get() + aligned;
    }
    // Try the next retained chunk (after a reset) before growing.
    if (current_ + 1 < chunks_.size()) {
      ++current_;
      --allocations_;  // retry accounts once.
      return allocate(size, align);
    }
  }
  Chunk& c = grow(size + align);
  const auto base = reinterpret_cast<std::uintptr_t>(c.data.get());
  const std::size_t aligned =
      static_cast<std::size_t>(((base + align - 1) & ~(align - 1)) - base);
  c.used = aligned + size;
  in_use_ += size;
  high_water_ = std::max(high_water_, in_use_);
  return c.data.get() + aligned;
}

Arena::Chunk& Arena::grow(std::size_t size) {
  const std::size_t bytes = std::max(chunk_bytes_, size);
  Chunk c;
  c.data = std::make_unique_for_overwrite<std::uint8_t[]>(bytes);
  c.size = bytes;
  reserved_ += bytes;
  chunks_.push_back(std::move(c));
  current_ = chunks_.size() - 1;
  return chunks_.back();
}

void Arena::reset() {
  for (Chunk& c : chunks_) c.used = 0;
  current_ = 0;
  in_use_ = 0;
  ++resets_;
}

void Arena::release() {
  chunks_.clear();
  current_ = 0;
  in_use_ = 0;
  reserved_ = 0;
}

}  // namespace tv::util
