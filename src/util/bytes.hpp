// ByteView: a non-owning writable window onto bytes someone else keeps
// alive (an Arena chunk, a pooled datagram buffer, a test vector).
//
// std::span<std::uint8_t> with the ergonomics the packet path needs:
// deep equality (golden tests compare payload bytes, not pointers) and
// implicit conversion to the const/mutable spans the crypto and socket
// layers take.  Views are trivially copyable; copying a packet copies the
// view, not the bytes — clone through an Arena when you need your own
// copy (net::clone_packets).
#pragma once

#include <cstddef>
#include <cstdint>
#include <cstring>
#include <span>
#include <vector>

namespace tv::util {

class ByteView {
 public:
  using value_type = std::uint8_t;
  using iterator = std::uint8_t*;
  using const_iterator = const std::uint8_t*;

  constexpr ByteView() = default;
  constexpr ByteView(std::uint8_t* data, std::size_t size)
      : data_(data), size_(size) {}
  constexpr ByteView(std::span<std::uint8_t> bytes)  // NOLINT(runtime/explicit)
      : data_(bytes.data()), size_(bytes.size()) {}

  [[nodiscard]] constexpr std::uint8_t* data() const { return data_; }
  [[nodiscard]] constexpr std::size_t size() const { return size_; }
  [[nodiscard]] constexpr bool empty() const { return size_ == 0; }

  [[nodiscard]] constexpr iterator begin() const { return data_; }
  [[nodiscard]] constexpr iterator end() const { return data_ + size_; }

  constexpr std::uint8_t& operator[](std::size_t i) const { return data_[i]; }
  [[nodiscard]] constexpr std::uint8_t& front() const { return data_[0]; }
  [[nodiscard]] constexpr std::uint8_t& back() const {
    return data_[size_ - 1];
  }

  [[nodiscard]] constexpr ByteView subview(std::size_t offset) const {
    return {data_ + offset, size_ - offset};
  }
  [[nodiscard]] constexpr ByteView subview(std::size_t offset,
                                           std::size_t count) const {
    return {data_ + offset, count};
  }
  [[nodiscard]] constexpr ByteView first(std::size_t count) const {
    return {data_, count};
  }

  constexpr operator std::span<std::uint8_t>() const {  // NOLINT
    return {data_, size_};
  }
  constexpr operator std::span<const std::uint8_t>() const {  // NOLINT
    return {data_, size_};
  }

  /// Deep byte equality: what packet tests and golden comparisons mean.
  friend bool operator==(ByteView a, ByteView b) {
    return a.size_ == b.size_ &&
           (a.size_ == 0 || std::memcmp(a.data_, b.data_, a.size_) == 0);
  }
  friend bool operator==(ByteView a, const std::vector<std::uint8_t>& b) {
    return a == ByteView{const_cast<std::uint8_t*>(b.data()), b.size()};
  }
  friend bool operator==(const std::vector<std::uint8_t>& a, ByteView b) {
    return b == a;
  }

  /// Materialize an owned copy (tests, offline tools).
  [[nodiscard]] std::vector<std::uint8_t> to_vector() const {
    return {data_, data_ + size_};
  }

 private:
  std::uint8_t* data_ = nullptr;
  std::size_t size_ = 0;
};

}  // namespace tv::util
