#include "util/matrix.hpp"

#include <algorithm>
#include <cmath>
#include <stdexcept>

namespace tv::util {

Matrix::Matrix(std::initializer_list<std::initializer_list<double>> rows) {
  rows_ = rows.size();
  cols_ = rows_ > 0 ? rows.begin()->size() : 0;
  data_.reserve(rows_ * cols_);
  for (const auto& r : rows) {
    if (r.size() != cols_) {
      throw std::invalid_argument{"Matrix: ragged initializer"};
    }
    data_.insert(data_.end(), r.begin(), r.end());
  }
}

Matrix Matrix::identity(std::size_t n) {
  Matrix m(n, n);
  for (std::size_t i = 0; i < n; ++i) m(i, i) = 1.0;
  return m;
}

Matrix& Matrix::operator+=(const Matrix& other) {
  if (rows_ != other.rows_ || cols_ != other.cols_) {
    throw std::invalid_argument{"Matrix +=: shape mismatch"};
  }
  for (std::size_t i = 0; i < data_.size(); ++i) data_[i] += other.data_[i];
  return *this;
}

Matrix& Matrix::operator-=(const Matrix& other) {
  if (rows_ != other.rows_ || cols_ != other.cols_) {
    throw std::invalid_argument{"Matrix -=: shape mismatch"};
  }
  for (std::size_t i = 0; i < data_.size(); ++i) data_[i] -= other.data_[i];
  return *this;
}

Matrix& Matrix::operator*=(double s) {
  for (double& x : data_) x *= s;
  return *this;
}

Matrix operator*(const Matrix& a, const Matrix& b) {
  if (a.cols() != b.rows()) {
    throw std::invalid_argument{"Matrix *: shape mismatch"};
  }
  Matrix out(a.rows(), b.cols());
  for (std::size_t i = 0; i < a.rows(); ++i) {
    for (std::size_t k = 0; k < a.cols(); ++k) {
      const double aik = a(i, k);
      if (aik == 0.0) continue;
      for (std::size_t j = 0; j < b.cols(); ++j) {
        out(i, j) += aik * b(k, j);
      }
    }
  }
  return out;
}

double Matrix::max_abs() const {
  double m = 0.0;
  for (double x : data_) m = std::max(m, std::abs(x));
  return m;
}

Vector mul(const Vector& v, const Matrix& m) {
  if (v.size() != m.rows()) throw std::invalid_argument{"v*M shape"};
  Vector out(m.cols(), 0.0);
  for (std::size_t i = 0; i < m.rows(); ++i) {
    if (v[i] == 0.0) continue;
    for (std::size_t j = 0; j < m.cols(); ++j) out[j] += v[i] * m(i, j);
  }
  return out;
}

Vector mul(const Matrix& m, const Vector& v) {
  if (v.size() != m.cols()) throw std::invalid_argument{"M*v shape"};
  Vector out(m.rows(), 0.0);
  for (std::size_t i = 0; i < m.rows(); ++i) {
    for (std::size_t j = 0; j < m.cols(); ++j) out[i] += m(i, j) * v[j];
  }
  return out;
}

double dot(const Vector& a, const Vector& b) {
  if (a.size() != b.size()) throw std::invalid_argument{"dot shape"};
  double s = 0.0;
  for (std::size_t i = 0; i < a.size(); ++i) s += a[i] * b[i];
  return s;
}

double sum(const Vector& v) {
  double s = 0.0;
  for (double x : v) s += x;
  return s;
}

Vector solve(Matrix a, Vector b) {
  const std::size_t n = a.rows();
  if (a.cols() != n || b.size() != n) {
    throw std::invalid_argument{"solve: shape mismatch"};
  }
  for (std::size_t col = 0; col < n; ++col) {
    std::size_t pivot = col;
    for (std::size_t r = col + 1; r < n; ++r) {
      if (std::abs(a(r, col)) > std::abs(a(pivot, col))) pivot = r;
    }
    if (std::abs(a(pivot, col)) < 1e-14) {
      throw std::runtime_error{"solve: singular matrix"};
    }
    if (pivot != col) {
      for (std::size_t j = 0; j < n; ++j) std::swap(a(pivot, j), a(col, j));
      std::swap(b[pivot], b[col]);
    }
    for (std::size_t r = col + 1; r < n; ++r) {
      const double f = a(r, col) / a(col, col);
      if (f == 0.0) continue;
      for (std::size_t j = col; j < n; ++j) a(r, j) -= f * a(col, j);
      b[r] -= f * b[col];
    }
  }
  Vector x(n);
  for (std::size_t i = n; i-- > 0;) {
    double s = b[i];
    for (std::size_t j = i + 1; j < n; ++j) s -= a(i, j) * x[j];
    x[i] = s / a(i, i);
  }
  return x;
}

Vector solve_left(const Matrix& a, const Vector& b) {
  Matrix at(a.cols(), a.rows());
  for (std::size_t i = 0; i < a.rows(); ++i) {
    for (std::size_t j = 0; j < a.cols(); ++j) at(j, i) = a(i, j);
  }
  return solve(std::move(at), b);
}

Matrix inverse(const Matrix& a) {
  const std::size_t n = a.rows();
  if (a.cols() != n) throw std::invalid_argument{"inverse: not square"};
  Matrix out(n, n);
  for (std::size_t col = 0; col < n; ++col) {
    Vector e(n, 0.0);
    e[col] = 1.0;
    const Vector x = solve(a, std::move(e));
    for (std::size_t r = 0; r < n; ++r) out(r, col) = x[r];
  }
  return out;
}

Matrix expm(const Matrix& a) {
  const std::size_t n = a.rows();
  if (a.cols() != n) throw std::invalid_argument{"expm: not square"};
  // Scale so that the norm is below 0.5, exponentiate a Taylor series, and
  // square back.  Phase generators here are tiny (2x2..4x4), so a plain
  // Taylor core with ~20 terms reaches machine precision.
  const double norm = a.max_abs() * static_cast<double>(n);
  int squarings = 0;
  double scale = 1.0;
  if (norm > 0.5) {
    squarings = static_cast<int>(std::ceil(std::log2(norm / 0.5)));
    scale = std::ldexp(1.0, -squarings);
  }
  Matrix x = a;
  x *= scale;
  Matrix result = Matrix::identity(n);
  Matrix term = Matrix::identity(n);
  for (int k = 1; k <= 24; ++k) {
    term = term * x;
    term *= 1.0 / static_cast<double>(k);
    result += term;
    if (term.max_abs() < 1e-18) break;
  }
  for (int i = 0; i < squarings; ++i) result = result * result;
  return result;
}

namespace {

// Solve pi M = 0 with sum(pi) = 1 by replacing the last column with ones.
Vector left_null_normalized(const Matrix& m) {
  const std::size_t n = m.rows();
  Matrix sys(n, n);
  for (std::size_t i = 0; i < n; ++i) {
    for (std::size_t j = 0; j + 1 < n; ++j) sys(j, i) = m(i, j);
    sys(n - 1, i) = 1.0;
  }
  Vector rhs(n, 0.0);
  rhs[n - 1] = 1.0;
  return solve(std::move(sys), std::move(rhs));
}

}  // namespace

Vector ctmc_stationary(const Matrix& q) { return left_null_normalized(q); }

Vector dtmc_stationary(const Matrix& p) {
  Matrix m = p;
  for (std::size_t i = 0; i < p.rows(); ++i) m(i, i) -= 1.0;
  return left_null_normalized(m);
}

}  // namespace tv::util
