// CPU cycle counter for microbenchmarks.
//
// Wraps rdtsc on x86 with a one-time steady_clock calibration of the TSC
// frequency, so benches can report cycles/byte.  On targets without an
// invariant TSC equivalent the API degrades gracefully:
// cycle_clock_available() returns false and callers fall back to
// wall-clock-only metrics (tests skip, benches emit nulls).
#pragma once

#include <cstdint>

namespace tv::util {

/// True when cycle_now() returns a real, monotonically increasing cycle
/// count on this build/CPU.
[[nodiscard]] bool cycle_clock_available();

/// Current cycle count (rdtsc).  Returns 0 when unavailable.
[[nodiscard]] std::uint64_t cycle_now();

/// Calibrated TSC frequency in GHz (cycles per nanosecond), measured once
/// against std::chrono::steady_clock and cached.  Returns 0.0 when the
/// cycle clock is unavailable.
[[nodiscard]] double tsc_ghz();

/// Convert a cycle delta to seconds using the calibrated frequency.
/// Returns 0.0 when the cycle clock is unavailable.
[[nodiscard]] double cycles_to_seconds(std::uint64_t cycles);

}  // namespace tv::util
