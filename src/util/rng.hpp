// Deterministic, fast pseudo-random number generation for simulations.
//
// All stochastic components of the library draw from tv::util::Rng so that
// every experiment is reproducible from a single 64-bit seed.  The engine is
// xoshiro256++ (Blackman & Vigna), which is far faster than std::mt19937_64
// and has no observable linear artifacts in the outputs we use.
#pragma once

#include <array>
#include <cmath>
#include <cstdint>
#include <numbers>

namespace tv::util {

/// One SplitMix64 step: the statistically-strong 64-bit mixer used both to
/// seed the engine below and to derive independent sub-stream seeds.
[[nodiscard]] constexpr std::uint64_t splitmix64(std::uint64_t x) {
  x += 0x9e3779b97f4a7c15ULL;
  x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ULL;
  x = (x ^ (x >> 27)) * 0x94d049bb133111ebULL;
  return x ^ (x >> 31);
}

/// Derive a child seed from a root seed and up to three stream components
/// (e.g. a purpose tag, a grid-cell index, a repetition index) by chaining
/// SplitMix64 over the components.  The derivation is pure, so any thread
/// can compute the seed of any (cell, repetition) without coordination —
/// this is what makes parallel sweeps bit-identical to serial ones.
[[nodiscard]] constexpr std::uint64_t derive_seed(std::uint64_t root,
                                                  std::uint64_t a,
                                                  std::uint64_t b = 0,
                                                  std::uint64_t c = 0) {
  std::uint64_t s = splitmix64(root);
  s = splitmix64(s ^ a);
  s = splitmix64(s ^ b);
  s = splitmix64(s ^ c);
  return s;
}

/// xoshiro256++ engine with SplitMix64 seeding.
///
/// Satisfies the essentials of UniformRandomBitGenerator so it can be used
/// with <random> distributions as well, though the convenience members below
/// cover everything the library needs.
class Rng {
 public:
  using result_type = std::uint64_t;

  explicit Rng(std::uint64_t seed = 0x9e3779b97f4a7c15ULL) { reseed(seed); }

  /// Re-initialize the state from a 64-bit seed via SplitMix64.
  void reseed(std::uint64_t seed) {
    for (auto& word : state_) {
      word = splitmix64(seed);
      seed += 0x9e3779b97f4a7c15ULL;
    }
    has_cached_gaussian_ = false;
  }

  static constexpr result_type min() { return 0; }
  static constexpr result_type max() { return ~0ULL; }

  result_type operator()() {
    const std::uint64_t result = rotl(state_[0] + state_[3], 23) + state_[0];
    const std::uint64_t t = state_[1] << 17;
    state_[2] ^= state_[0];
    state_[3] ^= state_[1];
    state_[1] ^= state_[2];
    state_[0] ^= state_[3];
    state_[2] ^= t;
    state_[3] = rotl(state_[3], 45);
    return result;
  }

  /// Uniform double in [0, 1).
  double uniform() {
    return static_cast<double>((*this)() >> 11) * 0x1.0p-53;
  }

  /// Uniform double in [lo, hi).
  double uniform(double lo, double hi) { return lo + (hi - lo) * uniform(); }

  /// Uniform integer in [0, n).  n must be > 0.
  std::uint64_t uniform_int(std::uint64_t n) {
    // Lemire's multiply-shift rejection method (unbiased).
    std::uint64_t x = (*this)();
    __uint128_t m = static_cast<__uint128_t>(x) * n;
    auto lo = static_cast<std::uint64_t>(m);
    if (lo < n) {
      const std::uint64_t threshold = (0 - n) % n;
      while (lo < threshold) {
        x = (*this)();
        m = static_cast<__uint128_t>(x) * n;
        lo = static_cast<std::uint64_t>(m);
      }
    }
    return static_cast<std::uint64_t>(m >> 64);
  }

  /// Bernoulli trial with success probability p.
  bool bernoulli(double p) { return uniform() < p; }

  /// Exponential variate with the given rate (mean 1/rate).
  double exponential(double rate) {
    // 1 - uniform() is in (0, 1], avoiding log(0).
    return -std::log(1.0 - uniform()) / rate;
  }

  /// Standard normal via Box-Muller with caching of the second variate.
  double gaussian() {
    if (has_cached_gaussian_) {
      has_cached_gaussian_ = false;
      return cached_gaussian_;
    }
    const double u1 = 1.0 - uniform();
    const double u2 = uniform();
    const double r = std::sqrt(-2.0 * std::log(u1));
    const double theta = 2.0 * std::numbers::pi * u2;
    cached_gaussian_ = r * std::sin(theta);
    has_cached_gaussian_ = true;
    return r * std::cos(theta);
  }

  /// Normal variate with the given mean and standard deviation.
  double gaussian(double mean, double stddev) {
    return mean + stddev * gaussian();
  }

  /// Geometric count of failures before the first success (support 0,1,2,...)
  /// with success probability p, matching eq. (6) of the paper with
  /// p = packet success rate.
  std::uint64_t geometric_failures(double p) {
    std::uint64_t k = 0;
    while (!bernoulli(p)) ++k;
    return k;
  }

  /// Derive an independent child generator (for per-component streams).
  Rng fork() { return Rng{(*this)()}; }

 private:
  static constexpr std::uint64_t rotl(std::uint64_t x, int k) {
    return (x << k) | (x >> (64 - k));
  }

  std::array<std::uint64_t, 4> state_{};
  double cached_gaussian_ = 0.0;
  bool has_cached_gaussian_ = false;
};

}  // namespace tv::util
