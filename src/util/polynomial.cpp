#include "util/polynomial.hpp"

#include <cmath>
#include <stdexcept>

#include "util/matrix.hpp"

namespace tv::util {

double Polynomial::operator()(double x) const {
  double acc = 0.0;
  for (std::size_t i = coefficients_.size(); i-- > 0;) {
    acc = acc * x + coefficients_[i];
  }
  return acc;
}

Polynomial Polynomial::derivative() const {
  if (coefficients_.size() <= 1) return Polynomial{{0.0}};
  std::vector<double> d(coefficients_.size() - 1);
  for (std::size_t i = 1; i < coefficients_.size(); ++i) {
    d[i - 1] = coefficients_[i] * static_cast<double>(i);
  }
  return Polynomial{std::move(d)};
}

Polynomial polyfit(std::span<const double> xs, std::span<const double> ys,
                   std::size_t degree) {
  if (xs.size() != ys.size()) {
    throw std::invalid_argument{"polyfit: size mismatch"};
  }
  if (xs.size() <= degree) {
    throw std::invalid_argument{"polyfit: not enough samples for degree"};
  }
  const std::size_t n = degree + 1;
  // Normal equations: (V^T V) a = V^T y with Vandermonde V.
  Matrix ata(n, n);
  Vector aty(n, 0.0);
  for (std::size_t k = 0; k < xs.size(); ++k) {
    // powers[i] = x^i.
    std::vector<double> powers(n);
    powers[0] = 1.0;
    for (std::size_t i = 1; i < n; ++i) powers[i] = powers[i - 1] * xs[k];
    for (std::size_t i = 0; i < n; ++i) {
      aty[i] += powers[i] * ys[k];
      for (std::size_t j = 0; j < n; ++j) ata(i, j) += powers[i] * powers[j];
    }
  }
  return Polynomial{solve(std::move(ata), std::move(aty))};
}

double r_squared(const Polynomial& p, std::span<const double> xs,
                 std::span<const double> ys) {
  if (xs.size() != ys.size() || xs.empty()) {
    throw std::invalid_argument{"r_squared: bad samples"};
  }
  double mean = 0.0;
  for (double y : ys) mean += y;
  mean /= static_cast<double>(ys.size());
  double ss_res = 0.0;
  double ss_tot = 0.0;
  for (std::size_t i = 0; i < xs.size(); ++i) {
    const double r = ys[i] - p(xs[i]);
    ss_res += r * r;
    const double d = ys[i] - mean;
    ss_tot += d * d;
  }
  if (ss_tot == 0.0) return 1.0;
  return 1.0 - ss_res / ss_tot;
}

}  // namespace tv::util
