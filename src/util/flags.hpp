// Typed command-line flag parsing shared by tools/ and bench/.
//
// The front ends all speak the same dialect: `--key=value` options,
// `--key` boolean shorthands, everything else positional.  The typed
// accessors validate the whole value and throw FlagError with a usable
// message ("invalid value for --reps: 'abc' ...") instead of letting a raw
// std::stoi exception escape to the user.
#pragma once

#include <cstdint>
#include <initializer_list>
#include <map>
#include <stdexcept>
#include <string>
#include <string_view>
#include <vector>

namespace tv::util {

/// Malformed command-line input: unknown flag or a value that fails typed
/// validation.  Front ends catch this and print a usage error.
class FlagError : public std::runtime_error {
 public:
  using std::runtime_error::runtime_error;
};

class Flags {
 public:
  /// Parse argv[from..argc).  `--key=value` and `--key` (stored as "1")
  /// become options; everything else is positional, in order.  Throws
  /// FlagError on a repeated `--key` (a duplicated flag is always a typo or
  /// a script bug, and silently keeping one of the two values hides it) and
  /// on single-dash tokens that are not numbers ("-threads"); negative
  /// numeric tokens ("-5", "-.5") stay positional.
  [[nodiscard]] static Flags parse(int argc, char** argv, int from = 1);

  [[nodiscard]] bool has(const std::string& key) const;

  [[nodiscard]] std::string get(const std::string& key,
                                std::string fallback) const;
  [[nodiscard]] int get_int(const std::string& key, int fallback) const;
  [[nodiscard]] std::uint64_t get_uint64(const std::string& key,
                                         std::uint64_t fallback) const;
  [[nodiscard]] double get_double(const std::string& key,
                                  double fallback) const;
  /// Accepts 1/0, true/false, on/off, yes/no (case-sensitive).
  [[nodiscard]] bool get_bool(const std::string& key, bool fallback) const;
  /// Comma-separated list; empty vector when the flag is absent.
  [[nodiscard]] std::vector<std::string> get_list(
      const std::string& key) const;
  /// Comma-separated integer list; empty vector when the flag is absent.
  [[nodiscard]] std::vector<int> get_int_list(const std::string& key) const;
  /// Comma-separated numeric list; empty vector when the flag is absent.
  [[nodiscard]] std::vector<double> get_double_list(
      const std::string& key) const;

  /// Throws FlagError naming the first option not in `known`.
  void check_known(std::initializer_list<std::string_view> known) const;

  [[nodiscard]] const std::vector<std::string>& positional() const {
    return positional_;
  }

  /// All parsed `--key=value` options, keyed by name.
  [[nodiscard]] const std::map<std::string, std::string>& options() const {
    return options_;
  }

 private:
  std::map<std::string, std::string> options_;
  std::vector<std::string> positional_;
};

/// Declarative flag registry for one (sub)command.  Each flag is registered
/// once with a value hint and a help line; the same registration then both
/// rejects unknown options (check) and generates the command's `--help`
/// text, so the two can never drift apart.
class FlagSet {
 public:
  /// `command` is the full invocation prefix ("thriftyvid sweep");
  /// `summary` is the one-line description shown in the help output.
  FlagSet(std::string command, std::string summary);

  /// Register a flag.  `value_hint` names the expected value ("N",
  /// "udp|tcp", "FILE"); empty marks a boolean switch.  Returns *this so
  /// registrations chain.
  FlagSet& flag(std::string name, std::string value_hint, std::string help);

  [[nodiscard]] const std::string& command() const { return command_; }
  [[nodiscard]] const std::string& summary() const { return summary_; }

  /// Full generated help text: usage line, summary, one aligned line per
  /// registered flag (plus the implicit --help).
  [[nodiscard]] std::string help_text() const;

  /// Throws FlagError naming the first parsed option not registered here.
  /// `--help` is always accepted (front ends handle it before parsing
  /// values).
  void check(const Flags& flags) const;

 private:
  struct Entry {
    std::string name;
    std::string value_hint;
    std::string help;
  };
  std::string command_;
  std::string summary_;
  std::vector<Entry> entries_;
};

}  // namespace tv::util
