#include "util/quadrature.hpp"

#include <cmath>
#include <numbers>
#include <stdexcept>

namespace tv::util {

QuadratureRule gauss_legendre(int n, double a, double b) {
  if (n < 1) throw std::invalid_argument{"gauss_legendre: n < 1"};
  QuadratureRule rule;
  rule.nodes.resize(static_cast<std::size_t>(n));
  rule.weights.resize(static_cast<std::size_t>(n));
  const double mid = 0.5 * (a + b);
  const double half = 0.5 * (b - a);
  // Roots are symmetric; compute the first half by Newton iteration from the
  // Chebyshev-like initial guess.
  const int half_count = (n + 1) / 2;
  for (int i = 0; i < half_count; ++i) {
    double x = std::cos(std::numbers::pi * (static_cast<double>(i) + 0.75) /
                        (static_cast<double>(n) + 0.5));
    double pp = 0.0;
    for (int iter = 0; iter < 100; ++iter) {
      // Evaluate Legendre P_n(x) and its derivative by recurrence.
      double p0 = 1.0;
      double p1 = x;
      for (int k = 2; k <= n; ++k) {
        const double p2 = ((2.0 * k - 1.0) * x * p1 - (k - 1.0) * p0) / k;
        p0 = p1;
        p1 = p2;
      }
      pp = static_cast<double>(n) * (x * p1 - p0) / (x * x - 1.0);
      const double dx = p1 / pp;
      x -= dx;
      if (std::abs(dx) < 1e-15) break;
    }
    const double w = 2.0 / ((1.0 - x * x) * pp * pp);
    rule.nodes[static_cast<std::size_t>(i)] = mid - half * x;
    rule.weights[static_cast<std::size_t>(i)] = half * w;
    rule.nodes[static_cast<std::size_t>(n - 1 - i)] = mid + half * x;
    rule.weights[static_cast<std::size_t>(n - 1 - i)] = half * w;
  }
  return rule;
}

double integrate(const std::function<double(double)>& f, double a, double b,
                 int n) {
  const QuadratureRule rule = gauss_legendre(n, a, b);
  double acc = 0.0;
  for (std::size_t i = 0; i < rule.nodes.size(); ++i) {
    acc += rule.weights[i] * f(rule.nodes[i]);
  }
  return acc;
}

}  // namespace tv::util
