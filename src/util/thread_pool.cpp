#include "util/thread_pool.hpp"

#include <algorithm>
#include <stdexcept>

namespace tv::util {

namespace {

// Identifies the pool (and worker slot) the current thread belongs to, so
// submissions from inside a task land on the submitter's own deque and
// run_pending_task() steals relative to the right home queue.
thread_local const ThreadPool* tl_pool = nullptr;
thread_local std::size_t tl_index = 0;

}  // namespace

unsigned ThreadPool::default_thread_count() {
  return std::max(1u, std::thread::hardware_concurrency());
}

ThreadPool::ThreadPool(unsigned threads) {
  const unsigned n = std::max(1u, threads);
  queues_.resize(n);
  workers_.reserve(n);
  for (unsigned i = 0; i < n; ++i) {
    workers_.emplace_back([this, i] { worker_loop(i); });
  }
}

ThreadPool::~ThreadPool() {
  {
    std::lock_guard lock{mu_};
    stop_ = true;
  }
  cv_.notify_all();
  for (auto& worker : workers_) worker.join();
}

bool ThreadPool::pop_task_locked(std::function<void()>& out,
                                 std::size_t home) {
  auto& own = queues_[home];
  if (!own.empty()) {
    out = std::move(own.front());
    own.pop_front();
    return true;
  }
  for (std::size_t offset = 1; offset < queues_.size(); ++offset) {
    auto& victim = queues_[(home + offset) % queues_.size()];
    if (!victim.empty()) {
      out = std::move(victim.back());
      victim.pop_back();
      return true;
    }
  }
  return false;
}

void ThreadPool::enqueue(std::function<void()> task) {
  {
    std::lock_guard lock{mu_};
    if (stop_ && tl_pool != this) {
      throw std::runtime_error{"ThreadPool: submit after shutdown"};
    }
    if (tl_pool == this) {
      queues_[tl_index].push_front(std::move(task));
    } else {
      queues_[next_queue_++ % queues_.size()].push_back(std::move(task));
    }
  }
  cv_.notify_one();
}

bool ThreadPool::run_pending_task() {
  std::function<void()> task;
  {
    std::lock_guard lock{mu_};
    const std::size_t home = tl_pool == this ? tl_index : 0;
    if (!pop_task_locked(task, home)) return false;
  }
  task();
  return true;
}

void ThreadPool::worker_loop(unsigned index) {
  tl_pool = this;
  tl_index = index;
  std::unique_lock lock{mu_};
  for (;;) {
    std::function<void()> task;
    if (pop_task_locked(task, index)) {
      lock.unlock();
      task();
      task = nullptr;  // release captures before re-locking.
      lock.lock();
      continue;
    }
    // Exit only once the stop flag is set AND every deque is empty, so the
    // destructor's drain guarantee holds.
    if (stop_) return;
    cv_.wait(lock);
  }
}

}  // namespace tv::util
