// Build provenance for CLI banners and experiment logs.
//
// Experiment outputs are only reproducible claims when they name the
// build that produced them; the CLI prints this line in --version and
// its top-level help.  Values are baked in at configure time (git
// describe + CMAKE_BUILD_TYPE) and fall back to "unknown" outside a git
// checkout, so the library never shells out at runtime.
#pragma once

#include <string>

namespace tv::util {

/// `git describe --always --dirty` at configure time, or "unknown".
[[nodiscard]] const char* git_describe();

/// CMAKE_BUILD_TYPE at configure time, or "unspecified".
[[nodiscard]] const char* build_type();

/// One-line banner: "thriftyvid <describe> (<build type>)".
[[nodiscard]] std::string build_info_line();

}  // namespace tv::util
