#include "util/flags.hpp"

#include <algorithm>
#include <cerrno>
#include <charconv>
#include <cstdlib>

namespace tv::util {

namespace {

[[noreturn]] void bad_value(const std::string& key, const std::string& value,
                            const char* expected) {
  throw FlagError{"invalid value for --" + key + ": '" + value +
                  "' (expected " + expected + ")"};
}

template <typename T>
T parse_integral(const std::string& key, const std::string& value,
                 const char* expected) {
  T parsed{};
  const char* begin = value.data();
  const char* end = begin + value.size();
  const auto [ptr, ec] = std::from_chars(begin, end, parsed);
  if (ec != std::errc{} || ptr != end) bad_value(key, value, expected);
  return parsed;
}

// A whole token that strtod consumes entirely ("-5", "-.5", "-1e3"):
// a negative numeric positional, not a mistyped flag.
bool is_numeric_token(const std::string& arg) {
  errno = 0;
  char* end = nullptr;
  (void)std::strtod(arg.c_str(), &end);
  return end == arg.c_str() + arg.size() && errno == 0;
}

}  // namespace

Flags Flags::parse(int argc, char** argv, int from) {
  Flags flags;
  for (int i = from; i < argc; ++i) {
    std::string arg = argv[i];
    if (arg.rfind("--", 0) == 0) {
      const auto eq = arg.find('=');
      std::string key = eq == std::string::npos ? arg.substr(2)
                                                : arg.substr(2, eq - 2);
      std::string value =
          eq == std::string::npos ? std::string{"1"} : arg.substr(eq + 1);
      if (!flags.options_.emplace(std::move(key), std::move(value)).second) {
        throw FlagError{"duplicate option " + arg.substr(0, eq) +
                        " (each flag may be given once)"};
      }
    } else if (arg.size() > 1 && arg.front() == '-' &&
               !is_numeric_token(arg)) {
      // "-threads" is almost certainly a mistyped "--threads"; rejecting it
      // beats silently treating it as a positional.  Negative numbers stay
      // positional.
      throw FlagError{"unknown option '" + arg +
                      "' (options are --key or --key=value; negative "
                      "numbers are accepted as positional arguments)"};
    } else {
      flags.positional_.push_back(std::move(arg));
    }
  }
  return flags;
}

bool Flags::has(const std::string& key) const {
  return options_.count(key) > 0;
}

std::string Flags::get(const std::string& key, std::string fallback) const {
  const auto it = options_.find(key);
  return it == options_.end() ? std::move(fallback) : it->second;
}

int Flags::get_int(const std::string& key, int fallback) const {
  const auto it = options_.find(key);
  if (it == options_.end()) return fallback;
  return parse_integral<int>(key, it->second, "an integer");
}

std::uint64_t Flags::get_uint64(const std::string& key,
                                std::uint64_t fallback) const {
  const auto it = options_.find(key);
  if (it == options_.end()) return fallback;
  return parse_integral<std::uint64_t>(key, it->second,
                                       "a non-negative integer");
}

double Flags::get_double(const std::string& key, double fallback) const {
  const auto it = options_.find(key);
  if (it == options_.end()) return fallback;
  const std::string& value = it->second;
  errno = 0;
  char* end = nullptr;
  const double parsed = std::strtod(value.c_str(), &end);
  if (value.empty() || end != value.c_str() + value.size() || errno != 0) {
    bad_value(key, value, "a number");
  }
  return parsed;
}

bool Flags::get_bool(const std::string& key, bool fallback) const {
  const auto it = options_.find(key);
  if (it == options_.end()) return fallback;
  const std::string& value = it->second;
  if (value == "1" || value == "true" || value == "on" || value == "yes") {
    return true;
  }
  if (value == "0" || value == "false" || value == "off" || value == "no") {
    return false;
  }
  bad_value(key, value, "a boolean (1/0, true/false, on/off, yes/no)");
}

std::vector<std::string> Flags::get_list(const std::string& key) const {
  const auto it = options_.find(key);
  if (it == options_.end()) return {};
  std::vector<std::string> items;
  const std::string& value = it->second;
  std::size_t pos = 0;
  while (pos <= value.size()) {
    const auto comma = value.find(',', pos);
    const auto end = comma == std::string::npos ? value.size() : comma;
    if (end > pos) items.push_back(value.substr(pos, end - pos));
    if (comma == std::string::npos) break;
    pos = comma + 1;
  }
  return items;
}

std::vector<int> Flags::get_int_list(const std::string& key) const {
  std::vector<int> items;
  for (const std::string& item : get_list(key)) {
    items.push_back(parse_integral<int>(key, item, "a comma-separated "
                                        "list of integers"));
  }
  return items;
}

std::vector<double> Flags::get_double_list(const std::string& key) const {
  std::vector<double> items;
  for (const std::string& item : get_list(key)) {
    errno = 0;
    char* end = nullptr;
    const double parsed = std::strtod(item.c_str(), &end);
    if (item.empty() || end != item.c_str() + item.size() || errno != 0) {
      bad_value(key, item, "a comma-separated list of numbers");
    }
    items.push_back(parsed);
  }
  return items;
}

void Flags::check_known(std::initializer_list<std::string_view> known) const {
  for (const auto& [key, value] : options_) {
    if (std::find(known.begin(), known.end(), key) == known.end()) {
      throw FlagError{"unknown option --" + key};
    }
  }
}

FlagSet::FlagSet(std::string command, std::string summary)
    : command_(std::move(command)), summary_(std::move(summary)) {}

FlagSet& FlagSet::flag(std::string name, std::string value_hint,
                       std::string help) {
  entries_.push_back({std::move(name), std::move(value_hint),
                      std::move(help)});
  return *this;
}

std::string FlagSet::help_text() const {
  const auto spelled = [](const Entry& e) {
    return e.value_hint.empty() ? "--" + e.name
                                : "--" + e.name + "=" + e.value_hint;
  };
  std::size_t width = sizeof("--help") - 1;
  for (const Entry& e : entries_) width = std::max(width, spelled(e).size());

  std::string out = "usage: " + command_;
  if (!entries_.empty()) out += " [options]";
  out += "\n\n  " + summary_ + "\n\noptions:\n";
  const auto line = [&](const std::string& left, const std::string& help) {
    out += "  " + left;
    out.append(width - left.size() + 2, ' ');
    out += help + "\n";
  };
  for (const Entry& e : entries_) line(spelled(e), e.help);
  line("--help", "show this help");
  return out;
}

void FlagSet::check(const Flags& flags) const {
  const auto known = [&](const std::string& key) {
    if (key == "help") return true;
    return std::any_of(entries_.begin(), entries_.end(),
                       [&](const Entry& e) { return e.name == key; });
  };
  for (const auto& [key, value] : flags.options()) {
    if (!known(key)) {
      throw FlagError{"unknown option --" + key + " (see " + command_ +
                      " --help)"};
    }
  }
}

}  // namespace tv::util
