#include "queueing/mmpp_g1.hpp"

#include <cmath>
#include <stdexcept>

namespace tv::queueing {

using util::Matrix;
using util::Vector;

double MmppG1Solution::wait_stddev() const {
  const double var = wait_moment2 - mean_wait * mean_wait;
  return var > 0.0 ? std::sqrt(var) : 0.0;
}

MmppG1Solver::MmppG1Solver(const Mmpp2& arrivals, ServiceTimeModel service)
    : MmppG1Solver(MmppN::from(arrivals), std::move(service)) {}

MmppG1Solver::MmppG1Solver(MmppN arrivals, ServiceTimeModel service)
    : arrivals_(std::move(arrivals)), service_(std::move(service)) {
  arrivals_.validate();
}

namespace {

// Solve v Q = c for a singular generator Q (null space spanned by e on the
// right, pi on the left); returns the particular solution with v e = 0.
// Requires sum(c) == 0 up to round-off.
Vector solve_singular_left(const Matrix& q, const Vector& c) {
  const std::size_t n = q.rows();
  // Unknown v solves v Qtilde = rhs where Qtilde is Q with its last column
  // replaced by ones (imposing v e = 0).
  Matrix qt = q;
  for (std::size_t i = 0; i < n; ++i) qt(i, n - 1) = 1.0;
  Vector rhs = c;
  rhs[n - 1] = 0.0;  // v e = 0.
  return util::solve_left(qt, rhs);
}

}  // namespace

MmppG1Solution MmppG1Solver::solve(double tolerance,
                                   int max_iterations) const {
  const Matrix& q = arrivals_.q;
  const Matrix lambda_m = arrivals_.rate_matrix();
  const Vector& lambda_v = arrivals_.rates;
  const Vector pi = arrivals_.stationary();
  const std::size_t n = pi.size();

  const double lambda_bar = util::dot(pi, lambda_v);
  const double h1 = service_.mean();
  const double h2 = service_.moment2();
  const double h3 = service_.moment3();
  const double rho = lambda_bar * h1;
  if (rho >= 1.0) {
    throw std::domain_error{"MmppG1Solver: queue unstable (rho >= 1)"};
  }

  MmppG1Solution sol;
  sol.utilization = rho;

  // --- Step 1: busy-period phase matrix G. ---------------------------------
  // Start from the rank-one stochastic matrix e pi.
  Matrix g(n, n);
  for (std::size_t i = 0; i < n; ++i) {
    for (std::size_t j = 0; j < n; ++j) g(i, j) = pi[j];
  }
  int iterations = 0;
  for (; iterations < max_iterations; ++iterations) {
    // A = Q - Lambda + Lambda G.
    Matrix a = q;
    a -= lambda_m;
    a += lambda_m * g;
    const Matrix next = service_.matrix_mgf(a);
    Matrix diff = next;
    diff -= g;
    g = next;
    if (diff.max_abs() < tolerance) break;
  }
  if (iterations >= max_iterations) {
    throw std::runtime_error{"MmppG1Solver: G iteration did not converge"};
  }
  // G must be (sub)stochastic; a blow-up here means the Gaussian jitter of
  // a service component is too large for its MGF to exist on the needed
  // domain (see ServiceTimeModel).
  for (std::size_t i = 0; i < n; ++i) {
    double row = 0.0;
    for (std::size_t j = 0; j < n; ++j) {
      if (!std::isfinite(g(i, j))) {
        throw std::runtime_error{"MmppG1Solver: G diverged (jitter too large)"};
      }
      row += g(i, j);
    }
    if (row > 1.0 + 1e-6 || row < 0.0) {
      throw std::runtime_error{"MmppG1Solver: G not stochastic"};
    }
  }
  sol.busy_period_phase = g;
  sol.g_iterations = iterations + 1;

  // --- Step 2: idle-phase probabilities u. ----------------------------------
  // U = (Lambda - Q)^{-1} Lambda maps the phase at idle start to the phase
  // at the arrival that ends the idle period.
  Matrix lam_minus_q = lambda_m;
  lam_minus_q -= q;
  const Matrix lmq_inv = util::inverse(lam_minus_q);
  const Matrix u_chain = g * (lmq_inv * lambda_m);
  const Vector phi = util::dtmc_stationary(u_chain);
  // Expected idle time spent in each phase per cycle.
  Vector u = util::mul(util::mul(phi, g), lmq_inv);
  const double u_total = util::sum(u);
  if (u_total <= 0.0) {
    throw std::runtime_error{"MmppG1Solver: degenerate idle distribution"};
  }
  for (double& x : u) x *= (1.0 - rho) / u_total;
  sol.idle_phase = u;

  // --- Step 3: workload moments by rate conservation. -----------------------
  // First moment: v Q = d - h1 (pi o lambda), d_i = pi_i - u_i.
  Vector c1(n);
  for (std::size_t i = 0; i < n; ++i) {
    c1[i] = (pi[i] - u[i]) - h1 * pi[i] * lambda_v[i];
  }
  const Vector vp = solve_singular_left(q, c1);
  // Close with E[V] = v e = h1 (v . lambda) + lambda_bar h2 / 2.
  const double vp_lambda = util::dot(vp, lambda_v);
  const double alpha =
      (h1 * vp_lambda + 0.5 * lambda_bar * h2 - util::sum(vp)) / (1.0 - rho);
  Vector v = vp;
  for (std::size_t i = 0; i < n; ++i) v[i] += alpha * pi[i];

  const double v_lambda = util::dot(v, lambda_v);
  sol.mean_workload = util::sum(v);
  sol.mean_wait = v_lambda / lambda_bar;
  sol.mean_sojourn = sol.mean_wait + h1;
  sol.phase_wait = Vector(n);
  for (std::size_t i = 0; i < n; ++i) sol.phase_wait[i] = v[i] / pi[i];

  // Second moment: w Q = 2v - 2 h1 (v o lambda) - h2 (pi o lambda).
  Vector c2(n);
  for (std::size_t i = 0; i < n; ++i) {
    c2[i] = 2.0 * v[i] - 2.0 * h1 * lambda_v[i] * v[i] -
            h2 * lambda_v[i] * pi[i];
  }
  const Vector wp = solve_singular_left(q, c2);
  const double wp_lambda = util::dot(wp, lambda_v);
  const double beta = (h1 * wp_lambda + h2 * v_lambda +
                       lambda_bar * h3 / 3.0 - util::sum(wp)) /
                      (1.0 - rho);
  Vector w = wp;
  for (std::size_t i = 0; i < n; ++i) w[i] += beta * pi[i];
  sol.wait_moment2 = util::dot(w, lambda_v) / lambda_bar;

  return sol;
}

}  // namespace tv::queueing
