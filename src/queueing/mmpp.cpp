#include "queueing/mmpp.hpp"

#include <cmath>
#include <stdexcept>

namespace tv::queueing {

util::Matrix Mmpp2::generator() const {
  return util::Matrix{{-r12, r12}, {r21, -r21}};
}

util::Matrix Mmpp2::rate_matrix() const {
  return util::Matrix{{lambda1, 0.0}, {0.0, lambda2}};
}

util::Vector Mmpp2::rate_vector() const { return {lambda1, lambda2}; }

util::Vector Mmpp2::stationary() const {
  const double total = r12 + r21;
  return {r21 / total, r12 / total};
}

double Mmpp2::mean_rate() const {
  const util::Vector pi = stationary();
  return pi[0] * lambda1 + pi[1] * lambda2;
}

void Mmpp2::validate() const {
  if (r12 <= 0.0 || r21 <= 0.0 || lambda1 < 0.0 || lambda2 < 0.0 ||
      (lambda1 == 0.0 && lambda2 == 0.0)) {
    throw std::invalid_argument{"Mmpp2: rates must be positive"};
  }
}

std::vector<MmppArrival> simulate_mmpp(const Mmpp2& mmpp, double horizon,
                                       util::Rng& rng) {
  mmpp.validate();
  std::vector<MmppArrival> arrivals;
  const util::Vector pi = mmpp.stationary();
  int state = rng.bernoulli(pi[0]) ? 1 : 2;
  double now = 0.0;
  while (now < horizon) {
    const double rate = state == 1 ? mmpp.lambda1 : mmpp.lambda2;
    const double leave = state == 1 ? mmpp.r12 : mmpp.r21;
    // Competing exponentials: next arrival vs. state change.
    const double total = rate + leave;
    now += rng.exponential(total);
    if (now >= horizon) break;
    if (rng.uniform() < rate / total) {
      arrivals.push_back({now, state});
    } else {
      state = state == 1 ? 2 : 1;
    }
  }
  return arrivals;
}

MmppN MmppN::from(const Mmpp2& two_state) {
  return MmppN{two_state.generator(), two_state.rate_vector()};
}

util::Matrix MmppN::rate_matrix() const {
  util::Matrix lam(states(), states());
  for (std::size_t i = 0; i < states(); ++i) lam(i, i) = rates[i];
  return lam;
}

util::Vector MmppN::stationary() const { return util::ctmc_stationary(q); }

double MmppN::mean_rate() const {
  return util::dot(stationary(), rates);
}

void MmppN::validate() const {
  if (states() < 1 || q.rows() != states() || q.cols() != states()) {
    throw std::invalid_argument{"MmppN: shape mismatch"};
  }
  double total_rate = 0.0;
  for (double r : rates) {
    if (r < 0.0) throw std::invalid_argument{"MmppN: negative rate"};
    total_rate += r;
  }
  if (total_rate <= 0.0) {
    throw std::invalid_argument{"MmppN: all arrival rates zero"};
  }
  for (std::size_t i = 0; i < states(); ++i) {
    double row = 0.0;
    for (std::size_t j = 0; j < states(); ++j) {
      if (i != j && q(i, j) < 0.0) {
        throw std::invalid_argument{"MmppN: negative transition rate"};
      }
      row += q(i, j);
    }
    if (std::abs(row) > 1e-9) {
      throw std::invalid_argument{"MmppN: generator rows must sum to zero"};
    }
  }
}

std::vector<MmppArrival> simulate_mmpp(const MmppN& mmpp, double horizon,
                                       util::Rng& rng) {
  mmpp.validate();
  const std::size_t n = mmpp.states();
  // Start from the stationary distribution.
  const util::Vector pi = mmpp.stationary();
  std::size_t state = n - 1;
  {
    double u = rng.uniform();
    for (std::size_t i = 0; i < n; ++i) {
      if (u < pi[i]) {
        state = i;
        break;
      }
      u -= pi[i];
    }
  }
  std::vector<MmppArrival> arrivals;
  double now = 0.0;
  while (now < horizon) {
    const double leave = -mmpp.q(state, state);
    const double total = mmpp.rates[state] + leave;
    if (total <= 0.0) break;  // absorbing silent state.
    now += rng.exponential(total);
    if (now >= horizon) break;
    if (rng.uniform() < mmpp.rates[state] / total) {
      arrivals.push_back({now, static_cast<int>(state) + 1});
    } else {
      // Jump to a neighbour proportionally to the transition rates.
      double u = rng.uniform() * leave;
      for (std::size_t j = 0; j < n; ++j) {
        if (j == state) continue;
        if (u < mmpp.q(state, j)) {
          state = j;
          break;
        }
        u -= mmpp.q(state, j);
      }
    }
  }
  return arrivals;
}

Mmpp2 estimate_mmpp(const std::vector<LabelledArrival>& trace) {
  if (trace.size() < 4) {
    throw std::invalid_argument{"estimate_mmpp: trace too short"};
  }
  // Segment the trace into alternating runs of I-frame packets (state 1)
  // and P-frame packets (state 2).  A run's duration is measured from its
  // first arrival to the first arrival of the next run.
  struct Run {
    bool is_i;
    double start;
    double end;
    int count;
  };
  std::vector<Run> runs;
  for (const auto& a : trace) {
    if (runs.empty() || runs.back().is_i != a.from_i_frame) {
      runs.push_back({a.from_i_frame, a.time, a.time, 1});
    } else {
      runs.back().end = a.time;
      ++runs.back().count;
    }
  }
  double i_time = 0.0;
  double p_time = 0.0;
  long i_count = 0;
  long p_count = 0;
  long i_runs = 0;
  long p_runs = 0;
  for (std::size_t r = 0; r < runs.size(); ++r) {
    const Run& run = runs[r];
    if (run.is_i) {
      // State 1 (burst) lasts only while I-frame packets stream in: from
      // the first to the last arrival plus one typical intra-burst gap.
      // The idle tail until the next P packet belongs to the slow state.
      double duration = run.end - run.start;
      if (run.count >= 2) {
        duration += duration / static_cast<double>(run.count - 1);
      } else if (r + 1 < runs.size()) {
        // A single-packet burst: charge a nominal gap.
        duration = 0.1 * (runs[r + 1].start - run.start);
      }
      i_time += duration;
      i_count += run.count;
      ++i_runs;
    } else {
      // State 2 spans from the run's first arrival to the start of the
      // next burst (its trailing idle time is genuinely slow-state time).
      const double end = r + 1 < runs.size() ? runs[r + 1].start : run.end;
      p_time += end - run.start;
      p_count += run.count;
      ++p_runs;
    }
  }
  if (i_time <= 0.0 || p_time <= 0.0 || i_runs == 0 || p_runs == 0) {
    throw std::invalid_argument{"estimate_mmpp: trace lacks both states"};
  }
  Mmpp2 out;
  out.lambda1 = static_cast<double>(i_count) / i_time;
  out.lambda2 = static_cast<double>(p_count) / p_time;
  out.r12 = static_cast<double>(i_runs) / i_time;   // leave state 1.
  out.r21 = static_cast<double>(p_runs) / p_time;   // leave state 2.
  out.validate();
  return out;
}

}  // namespace tv::queueing
