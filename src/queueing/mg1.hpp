// Classical M/G/1 results (Pollaczek-Khinchine), used as the degenerate
// reference for the MMPP/G/1 solver and in the ablation benches.
#pragma once

namespace tv::queueing {

struct Mg1Solution {
  double utilization = 0.0;
  double mean_wait = 0.0;     ///< E[W] = lambda h2 / (2 (1 - rho)).
  double wait_moment2 = 0.0;  ///< Takacs: 2 E[W]^2 + lambda h3 / (3(1-rho)).
  double mean_sojourn = 0.0;
};

/// Mean waiting time of an M/G/1 queue with arrival rate lambda and service
/// moments h1, h2, h3.  Throws std::domain_error when rho >= 1.
[[nodiscard]] Mg1Solution solve_mg1(double lambda, double h1, double h2,
                                    double h3 = 0.0);

}  // namespace tv::queueing
