#include "queueing/service_time.hpp"

#include <cmath>
#include <stdexcept>

namespace tv::queueing {

double BackoffModel::mean() const {
  return (1.0 - success_prob) / (success_prob * rate);
}

double BackoffModel::moment2() const {
  const double p = success_prob;
  return 2.0 * (1.0 - p) / (p * p * rate * rate);
}

double BackoffModel::moment3() const {
  const double p = success_prob;
  return 6.0 * (1.0 - p) / (p * p * p * rate * rate * rate);
}

double BackoffModel::lst(double s) const {
  return success_prob * (rate + s) / (s + success_prob * rate);
}

double BackoffModel::sample(util::Rng& rng) const {
  const std::uint64_t collisions = rng.geometric_failures(success_prob);
  double total = 0.0;
  for (std::uint64_t i = 0; i < collisions; ++i) {
    total += rng.exponential(rate);
  }
  return total;
}

ServiceTimeModel::ServiceTimeModel(std::vector<GaussianComponent> components,
                                   BackoffModel backoff)
    : components_(std::move(components)), backoff_(backoff) {
  if (components_.empty()) {
    throw std::invalid_argument{"ServiceTimeModel: no components"};
  }
  double total = 0.0;
  for (const auto& c : components_) {
    if (c.weight < 0.0 || c.mean < 0.0 || c.stddev < 0.0) {
      throw std::invalid_argument{"ServiceTimeModel: bad component"};
    }
    // The Gaussian terms model *minor* variations (eq. 15); a large sigma
    // makes the Gaussian MGF blow up in the matrix-analytic solver (its
    // e^{sigma^2 s^2 / 2} tail dominates), so reject miscalibrated inputs
    // loudly instead of producing NaNs.
    if (c.stddev > 0.5 * c.mean + 1e-12) {
      throw std::invalid_argument{
          "ServiceTimeModel: component stddev too large for the "
          "minor-variations Gaussian model (eq. 15); stddev must be <= "
          "mean / 2"};
    }
    total += c.weight;
  }
  if (std::abs(total - 1.0) > 1e-9) {
    throw std::invalid_argument{"ServiceTimeModel: weights must sum to 1"};
  }
  if (backoff_.success_prob <= 0.0 || backoff_.success_prob > 1.0 ||
      backoff_.rate <= 0.0) {
    throw std::invalid_argument{"ServiceTimeModel: bad backoff"};
  }
}

ServiceTimeModel ServiceTimeModel::from_parameters(
    const ServiceParameters& p) {
  if (p.p_i < 0.0 || p.p_i > 1.0 || p.q_i < 0.0 || p.q_i > 1.0 ||
      p.q_p < 0.0 || p.q_p > 1.0) {
    throw std::invalid_argument{"from_parameters: probabilities out of range"};
  }
  auto var_sum = [](double a, double b) { return std::sqrt(a * a + b * b); };
  std::vector<GaussianComponent> comps;
  // I-frame packet, encrypted: T_e,I + T_t,I.
  comps.push_back({p.p_i * p.q_i, p.enc_i_mean + p.tx_i_mean,
                   var_sum(p.enc_i_stddev, p.tx_i_stddev)});
  // I-frame packet, clear: T_t,I only.
  comps.push_back({p.p_i * (1.0 - p.q_i), p.tx_i_mean, p.tx_i_stddev});
  // P-frame packet, encrypted.
  comps.push_back({(1.0 - p.p_i) * p.q_p, p.enc_p_mean + p.tx_p_mean,
                   var_sum(p.enc_p_stddev, p.tx_p_stddev)});
  // P-frame packet, clear.
  comps.push_back(
      {(1.0 - p.p_i) * (1.0 - p.q_p), p.tx_p_mean, p.tx_p_stddev});
  // Drop zero-weight components for numerical tidiness.
  std::vector<GaussianComponent> kept;
  for (const auto& c : comps) {
    if (c.weight > 0.0) kept.push_back(c);
  }
  return ServiceTimeModel{std::move(kept),
                          BackoffModel{p.success_prob, p.backoff_rate}};
}

double ServiceTimeModel::mean() const {
  double m = 0.0;
  for (const auto& c : components_) m += c.weight * c.mean;
  return m + backoff_.mean();
}

double ServiceTimeModel::moment2() const {
  // S = X + B with X the Gaussian mixture and B the backoff.
  double x1 = 0.0;
  double x2 = 0.0;
  for (const auto& c : components_) {
    x1 += c.weight * c.mean;
    x2 += c.weight * (c.mean * c.mean + c.stddev * c.stddev);
  }
  return x2 + 2.0 * x1 * backoff_.mean() + backoff_.moment2();
}

double ServiceTimeModel::moment3() const {
  double x1 = 0.0;
  double x2 = 0.0;
  double x3 = 0.0;
  for (const auto& c : components_) {
    const double v = c.stddev * c.stddev;
    x1 += c.weight * c.mean;
    x2 += c.weight * (c.mean * c.mean + v);
    x3 += c.weight * (c.mean * c.mean * c.mean + 3.0 * c.mean * v);
  }
  return x3 + 3.0 * x2 * backoff_.mean() + 3.0 * x1 * backoff_.moment2() +
         backoff_.moment3();
}

double ServiceTimeModel::lst(double s) const {
  double acc = 0.0;
  for (const auto& c : components_) {
    acc += c.weight *
           std::exp(-c.mean * s + 0.5 * c.stddev * c.stddev * s * s);
  }
  return acc * backoff_.lst(s);
}

util::Matrix ServiceTimeModel::matrix_mgf(const util::Matrix& a) const {
  const std::size_t n = a.rows();
  // Gaussian mixture factor: sum_c w_c expm(mu_c A + sigma_c^2/2 A^2).
  const util::Matrix a2 = a * a;
  util::Matrix mix(n, n);
  for (const auto& c : components_) {
    util::Matrix arg = a * c.mean;
    arg += a2 * (0.5 * c.stddev * c.stddev);
    mix += util::expm(arg) * c.weight;
  }
  // Backoff factor: p_s (I - (1-p_s) lambda_b (lambda_b I - A)^{-1})^{-1}.
  const double ps = backoff_.success_prob;
  const double lb = backoff_.rate;
  util::Matrix lbi_minus_a = util::Matrix::identity(n) * lb;
  lbi_minus_a -= a;
  const util::Matrix m = util::inverse(lbi_minus_a) * lb;
  util::Matrix inner = util::Matrix::identity(n);
  inner -= m * (1.0 - ps);
  const util::Matrix backoff_factor = util::inverse(inner) * ps;
  // All factors are rational/entire functions of the same matrix A, so
  // they commute; the order below is arbitrary.
  return mix * backoff_factor;
}

double ServiceTimeModel::sample(util::Rng& rng) const {
  // Pick a mixture component.
  double u = rng.uniform();
  const GaussianComponent* chosen = &components_.back();
  for (const auto& c : components_) {
    if (u < c.weight) {
      chosen = &c;
      break;
    }
    u -= c.weight;
  }
  double x = rng.gaussian(chosen->mean, chosen->stddev);
  if (x < 0.0) x = 0.0;  // physical times cannot be negative.
  return x + backoff_.sample(rng);
}

}  // namespace tv::queueing
