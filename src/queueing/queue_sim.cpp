#include "queueing/queue_sim.hpp"

#include <algorithm>

namespace tv::queueing {

QueueSimResult simulate_queue(const Mmpp2& arrivals,
                              const ServiceTimeModel& service,
                              std::uint64_t packets, std::uint64_t warmup,
                              std::uint64_t seed) {
  return simulate_queue(MmppN::from(arrivals), service, packets, warmup,
                        seed);
}

QueueSimResult simulate_queue(const MmppN& arrivals,
                              const ServiceTimeModel& service,
                              std::uint64_t packets, std::uint64_t warmup,
                              std::uint64_t seed) {
  arrivals.validate();
  util::Rng rng{seed};
  QueueSimResult result;

  // Generate arrivals on the fly: competing exponentials for state change
  // vs. next arrival; serve FIFO, tracking when the server frees up.
  const std::size_t n = arrivals.states();
  const util::Vector pi = arrivals.stationary();
  std::size_t state = n - 1;
  {
    double u = rng.uniform();
    for (std::size_t i = 0; i < n; ++i) {
      if (u < pi[i]) {
        state = i;
        break;
      }
      u -= pi[i];
    }
  }
  double now = 0.0;
  double server_free_at = 0.0;
  std::uint64_t count = 0;
  while (count < packets + warmup) {
    const double rate = arrivals.rates[state];
    const double leave = -arrivals.q(state, state);
    const double total = rate + leave;
    now += rng.exponential(total);
    if (rng.uniform() >= rate / total) {
      // Phase change, proportional to the off-diagonal rates.
      double u = rng.uniform() * leave;
      for (std::size_t j = 0; j < n; ++j) {
        if (j == state) continue;
        if (u < arrivals.q(state, j)) {
          state = j;
          break;
        }
        u -= arrivals.q(state, j);
      }
      continue;
    }
    // An arrival.
    const double start = std::max(now, server_free_at);
    const double wait = start - now;
    const double service_time = service.sample(rng);
    server_free_at = start + service_time;
    ++count;
    if (count > warmup) {
      result.wait.add(wait);
      result.sojourn.add(wait + service_time);
      ++result.served;
    }
  }
  return result;
}

}  // namespace tv::queueing
