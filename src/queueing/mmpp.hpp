// Two-state Markov-modulated Poisson process (Section 4.2.1).
//
// State 1 models the back-to-back packets of a fragmented I-frame (rate
// lambda1, fast); state 2 the sparse P-frame packets (rate lambda2, slow).
// The transition rates p1 (1 -> 2) and p2 (2 -> 1) together with the rate
// matrix Lambda parameterize the arrival side of the 2-MMPP/G/1 queue,
// eq. (1); the equilibrium vector pi is eq. (2).
#pragma once

#include <cstdint>
#include <vector>

#include "util/matrix.hpp"
#include "util/rng.hpp"

namespace tv::queueing {

struct Mmpp2 {
  double r12 = 1.0;      ///< p1 in the paper: rate of leaving state 1.
  double r21 = 1.0;      ///< p2 in the paper: rate of leaving state 2.
  double lambda1 = 1.0;  ///< arrival rate in state 1 (I-frame bursts).
  double lambda2 = 1.0;  ///< arrival rate in state 2 (P-frame packets).

  /// Infinitesimal generator R of the modulating chain, eq. (1).
  [[nodiscard]] util::Matrix generator() const;
  /// Diagonal rate matrix Lambda, eq. (1).
  [[nodiscard]] util::Matrix rate_matrix() const;
  /// Arrival-rate vector (diagonal of Lambda).
  [[nodiscard]] util::Vector rate_vector() const;
  /// Equilibrium probabilities of the modulating chain, eq. (2).
  [[nodiscard]] util::Vector stationary() const;
  /// Long-run mean arrival rate pi . lambda.
  [[nodiscard]] double mean_rate() const;

  /// Validate parameters (all rates positive); throws std::invalid_argument.
  void validate() const;
};

/// One simulated arrival.
struct MmppArrival {
  double time = 0.0;
  int state = 1;  ///< modulating state (1 or 2) at the arrival instant.
};

/// Sample an MMPP arrival sequence on [0, horizon) starting from the
/// stationary state distribution.
[[nodiscard]] std::vector<MmppArrival> simulate_mmpp(const Mmpp2& mmpp,
                                                     double horizon,
                                                     util::Rng& rng);

/// General n-state MMPP: the extension hook the paper defers to future
/// work (e.g. a third phase for B-frame traffic).  The MMPP/G/1 solver is
/// written against this representation; Mmpp2 converts into it.
struct MmppN {
  util::Matrix q;       ///< infinitesimal generator, n x n.
  util::Vector rates;   ///< Poisson rate per state, length n.

  [[nodiscard]] static MmppN from(const Mmpp2& two_state);

  [[nodiscard]] std::size_t states() const { return rates.size(); }
  [[nodiscard]] util::Matrix rate_matrix() const;
  [[nodiscard]] util::Vector stationary() const;
  [[nodiscard]] double mean_rate() const;
  void validate() const;
};

/// Sample an n-state MMPP arrival sequence on [0, horizon); the returned
/// state labels are 1-based to match MmppArrival's convention.
[[nodiscard]] std::vector<MmppArrival> simulate_mmpp(const MmppN& mmpp,
                                                     double horizon,
                                                     util::Rng& rng);

/// Method-of-moments estimator used by the calibration step of Fig. 1:
/// given packet arrival timestamps labelled by frame type, recover the
/// 2-MMPP parameters.  State-1 sojourns are the I-frame packet bursts;
/// state-2 sojourns the gaps of P-frame traffic between bursts.
struct LabelledArrival {
  double time = 0.0;
  bool from_i_frame = false;
};

[[nodiscard]] Mmpp2 estimate_mmpp(const std::vector<LabelledArrival>& trace);

}  // namespace tv::queueing
