// The service-time model of Section 4.2.2: T = T_e(P) + T_b + T_t.
//
// A packet's service consists of
//   * T_e — encryption time, present only when the policy encrypts the
//     packet; Gaussian around a per-class mean (eq. 15, LST eq. 17);
//   * T_b — MAC backoff: a geometric number K of collisions (eq. 6), each
//     followed by an Exp(lambda_b) wait (LST eq. 7);
//   * T_t — transmission time, Gaussian per frame class (eq. 16, LST 18).
//
// Because T_e and T_t for a given packet share the packet's class (I
// encrypted / I clear / P encrypted / P clear), we fold the two Gaussians
// of each class into one component; T_b convolves independently on top.
// The paper's printed eq. (4) omits the point mass of unencrypted packets
// at T_e = 0; the implementation includes it so every LST satisfies
// H(0) = 1 (see DESIGN.md).
#pragma once

#include <vector>

#include "util/matrix.hpp"
#include "util/rng.hpp"

namespace tv::queueing {

/// One Gaussian mixture component of the non-backoff service part.
struct GaussianComponent {
  double weight = 1.0;
  double mean = 0.0;
  double stddev = 0.0;
};

/// The compound-geometric backoff of eq. (6)/(7).
struct BackoffModel {
  double success_prob = 1.0;  ///< p_s: per-attempt success rate.
  double rate = 1.0;          ///< lambda_b: rate of each waiting interval.

  [[nodiscard]] double mean() const;
  [[nodiscard]] double moment2() const;
  [[nodiscard]] double moment3() const;
  /// LST H_b(s) = p_s (lambda_b + s) / (s + p_s lambda_b), eq. (7).
  [[nodiscard]] double lst(double s) const;
  [[nodiscard]] double sample(util::Rng& rng) const;
};

/// Inputs for the paper's packet-class construction.
struct ServiceParameters {
  double p_i = 0.1;       ///< probability a packet belongs to an I-frame.
  double q_i = 0.0;       ///< fraction of I-frame packets encrypted.
  double q_p = 0.0;       ///< fraction of P-frame packets encrypted.
  double enc_i_mean = 0.0;    ///< mu_e,I (s).
  double enc_i_stddev = 0.0;  ///< sigma_e,I.
  double enc_p_mean = 0.0;    ///< mu_e,P.
  double enc_p_stddev = 0.0;
  double tx_i_mean = 0.0;     ///< mu_t,I.
  double tx_i_stddev = 0.0;
  double tx_p_mean = 0.0;     ///< mu_t,P.
  double tx_p_stddev = 0.0;
  double success_prob = 1.0;  ///< p_s for the backoff term.
  double backoff_rate = 1.0;  ///< lambda_b.
};

/// Mixture-of-Gaussians plus compound-geometric-exponential service time.
class ServiceTimeModel {
 public:
  ServiceTimeModel(std::vector<GaussianComponent> components,
                   BackoffModel backoff);

  /// Build the four-class model of Section 4.2.2 from paper parameters.
  [[nodiscard]] static ServiceTimeModel from_parameters(
      const ServiceParameters& params);

  [[nodiscard]] const std::vector<GaussianComponent>& components() const {
    return components_;
  }
  [[nodiscard]] const BackoffModel& backoff() const { return backoff_; }

  /// Raw moments about the origin (mu^(1), mu^(2), mu^(3) of eq. 19).
  [[nodiscard]] double mean() const;
  [[nodiscard]] double moment2() const;
  [[nodiscard]] double moment3() const;

  /// Laplace-Stieltjes transform H(s) = H_e+t(s) H_b(s), eq. (10) with the
  /// Gaussian special case of eqs. (17)-(18).
  [[nodiscard]] double lst(double s) const;

  /// Matrix "LST": E[expm(A S)] for a square matrix A whose eigenvalues
  /// have nonpositive real part (A = Q - Lambda + Lambda G in the solver).
  /// Requires spectral radius of the exponential pieces to stay finite;
  /// the backoff factor needs eig(A) < lambda_b, always true here.
  [[nodiscard]] util::Matrix matrix_mgf(const util::Matrix& a) const;

  /// Draw one service time (Gaussians truncated at 0).
  [[nodiscard]] double sample(util::Rng& rng) const;

 private:
  std::vector<GaussianComponent> components_;
  BackoffModel backoff_;
};

}  // namespace tv::queueing
