// Exact mean-delay analysis of the 2-MMPP/G/1 queue (Section 4.2.3).
//
// The paper computes E[W] via the Heffes-Lucantoni / Fischer-Meier-
// Hellstern matrix-analytic procedure (eq. 19); the printed formula is
// OCR-damaged, so this implementation derives the same quantity from first
// principles (full derivation in DESIGN.md Section 5):
//
//  1. Busy-period phase matrix G: minimal solution of
//         G = E[ expm((Q - Lambda + Lambda G) S) ],
//     computed by fixed-point iteration using the exact matrix MGF of the
//     service time (ServiceTimeModel::matrix_mgf).
//  2. Idle-phase occupancy u from the busy/idle cycle chain:
//         phi = phi G U,  U = (Lambda - Q)^{-1} Lambda,
//         u  propto  phi G (Lambda - Q)^{-1},  normalized to u e = 1 - rho.
//  3. Per-phase workload moments from Brumelle-style rate conservation:
//         v Q = (pi - u) - h1 (pi o lambda),
//     closed with E[V] = h1 (v . lambda) + lambda_bar h2 / 2; one order up
//     for second moments.  The mean waiting time of an *arriving* packet
//     is E[W] = (v . lambda) / lambda_bar (conditional PASTA), and its
//     second moment (w . lambda) / lambda_bar gives delay jitter.
//
// Degenerating the MMPP to Poisson reproduces Pollaczek-Khinchine exactly;
// the test suite pins this and cross-validates modulated cases against the
// discrete-event simulator in queue_sim.hpp.
#pragma once

#include "queueing/mmpp.hpp"
#include "queueing/service_time.hpp"
#include "util/matrix.hpp"

namespace tv::queueing {

struct MmppG1Solution {
  double utilization = 0.0;       ///< rho = lambda_bar * h1.
  double mean_wait = 0.0;         ///< E[W]: mean queueing delay of arrivals.
  double wait_moment2 = 0.0;      ///< E[W^2] of arrivals.
  double mean_workload = 0.0;     ///< E[V]: time-stationary workload.
  double mean_sojourn = 0.0;      ///< E[W] + E[S].
  /// E[W | arrival in phase i] = v_i / pi_i (conditional PASTA: an arrival
  /// in phase i sees the time-stationary workload conditioned on J = i).
  /// Cross-checked against the per-state waits of the discrete-event
  /// sender simulator (sim::simulate_sender).
  util::Vector phase_wait;
  util::Matrix busy_period_phase; ///< G.
  util::Vector idle_phase;        ///< u_i = P(V = 0, J = i).
  int g_iterations = 0;

  /// Std deviation of the waiting time.
  [[nodiscard]] double wait_stddev() const;
};

class MmppG1Solver {
 public:
  /// The paper's two-state case.
  MmppG1Solver(const Mmpp2& arrivals, ServiceTimeModel service);
  /// General n-state MMPP (extension; see MmppN).
  MmppG1Solver(MmppN arrivals, ServiceTimeModel service);

  /// Solve the queue.  Throws std::domain_error if rho >= 1 and
  /// std::runtime_error if the G iteration fails to converge.
  [[nodiscard]] MmppG1Solution solve(double tolerance = 1e-13,
                                     int max_iterations = 20000) const;

 private:
  MmppN arrivals_;
  ServiceTimeModel service_;
};

}  // namespace tv::queueing
