// Discrete-event simulation of the MMPP/G/1 queue.
//
// Ground truth for the analytic solver: generates MMPP arrivals, serves
// them FIFO with iid draws from a ServiceTimeModel, and reports waiting-
// time statistics.  Used by tests and by the ablation bench that
// quantifies model accuracy across utilizations.
#pragma once

#include <cstdint>

#include "queueing/mmpp.hpp"
#include "queueing/service_time.hpp"
#include "util/stats.hpp"

namespace tv::queueing {

struct QueueSimResult {
  util::RunningStats wait;     ///< queueing delay per packet.
  util::RunningStats sojourn;  ///< delay + service.
  std::uint64_t served = 0;
};

/// Simulate `packets` arrivals (after discarding `warmup` packets for the
/// transient) and return waiting-time statistics.
[[nodiscard]] QueueSimResult simulate_queue(const Mmpp2& arrivals,
                                            const ServiceTimeModel& service,
                                            std::uint64_t packets,
                                            std::uint64_t warmup,
                                            std::uint64_t seed);

/// n-state variant.
[[nodiscard]] QueueSimResult simulate_queue(const MmppN& arrivals,
                                            const ServiceTimeModel& service,
                                            std::uint64_t packets,
                                            std::uint64_t warmup,
                                            std::uint64_t seed);

}  // namespace tv::queueing
