#include "queueing/mg1.hpp"

#include <stdexcept>

namespace tv::queueing {

Mg1Solution solve_mg1(double lambda, double h1, double h2, double h3) {
  if (lambda <= 0.0 || h1 <= 0.0 || h2 < 0.0) {
    throw std::invalid_argument{"solve_mg1: bad parameters"};
  }
  const double rho = lambda * h1;
  if (rho >= 1.0) throw std::domain_error{"solve_mg1: rho >= 1"};
  Mg1Solution s;
  s.utilization = rho;
  s.mean_wait = lambda * h2 / (2.0 * (1.0 - rho));
  s.wait_moment2 =
      2.0 * s.mean_wait * s.mean_wait + lambda * h3 / (3.0 * (1.0 - rho));
  s.mean_sojourn = s.mean_wait + h1;
  return s;
}

}  // namespace tv::queueing
