#include "analysis/sweep.hpp"

#include <algorithm>
#include <chrono>
#include <cstdarg>
#include <cstdio>
#include <cstring>
#include <memory>
#include <mutex>
#include <stdexcept>
#include <string>

#include "core/experiment.hpp"
#include "crypto/suite.hpp"
#include "energy/energy_model.hpp"
#include "live/sender.hpp"
#include "live/stream_map.hpp"
#include "util/rng.hpp"
#include "util/thread_pool.hpp"
#include "video/quality.hpp"

namespace tv::analysis {

namespace {

std::string fmt(const char* format, ...) {
  char buf[512];
  va_list args;
  va_start(args, format);
  std::vsnprintf(buf, sizeof buf, format, args);
  va_end(args);
  return buf;
}

double decode_psnr(const core::Workload& workload,
                   const std::vector<video::ReceivedFrameData>& frames) {
  const video::Decoder decoder{workload.codec};
  const video::FrameSequence decoded = decoder.decode_stream(
      workload.stream.width, workload.stream.height, frames);
  return video::sequence_psnr(workload.clip, decoded);
}

/// JSON string contents of the policy/shaping specs are plain ASCII
/// ("I+20P", "pad256+jit2ms"), but escape quotes/backslashes anyway so a
/// future spec grammar cannot silently corrupt the JSONL stream.
std::string json_escape(const std::string& s) {
  std::string out;
  out.reserve(s.size());
  for (const char c : s) {
    if (c == '"' || c == '\\') out.push_back('\\');
    out.push_back(c);
  }
  return out;
}

}  // namespace

std::vector<policy::EncryptionPolicy> LeakageSpec::policy_axis() const {
  if (!policies.empty()) return policies;
  return policy::headline_policies(pipeline.algorithm);
}

std::vector<policy::ShapingPolicy> LeakageSpec::shaping_axis() const {
  if (!shapings.empty()) return shapings;
  // The docs/adversary.md headline column: no shaping, then each knob
  // alone so its leakage suppression and cost are attributable.  The
  // jitter sigma is sized against the adversary's 250 ms trajectory
  // window — smaller sigmas never move a packet across a bin edge.
  std::vector<policy::ShapingPolicy> axis(4);
  axis[1].pad_bucket_bytes = 256;
  axis[2].hide_markers = true;
  axis[3].jitter_stddev_s = 20e-3;
  return axis;
}

void LeakageSpec::validate() const {
  if (gop_size < 2) {
    throw std::invalid_argument{"LeakageSpec: gop_size < 2"};
  }
  if (frames < gop_size) {
    throw std::invalid_argument{"LeakageSpec: frames < gop_size"};
  }
  if (adversary.fps <= 0.0 || adversary.trajectory_window_s <= 0.0) {
    throw std::invalid_argument{"LeakageSpec: bad adversary cadence"};
  }
  if (adversary.cluster_separation < 1.0) {
    throw std::invalid_argument{
        "LeakageSpec: cluster_separation < 1 labels everything I"};
  }
  for (const policy::EncryptionPolicy& p : policy_axis()) p.validate();
  for (const policy::ShapingPolicy& s : shaping_axis()) s.validate();
  core::validate(pipeline);
}

std::size_t LeakageSpec::cell_count() const {
  return policy_axis().size() * shaping_axis().size();
}

std::vector<LeakageCell> enumerate_leakage_cells(const LeakageSpec& spec) {
  const std::vector<policy::EncryptionPolicy> policies = spec.policy_axis();
  const std::vector<policy::ShapingPolicy> shapings = spec.shaping_axis();
  std::vector<LeakageCell> cells;
  cells.reserve(policies.size() * shapings.size());
  std::size_t index = 0;
  for (const policy::EncryptionPolicy& p : policies) {
    for (const policy::ShapingPolicy& s : shapings) {
      LeakageCell cell;
      cell.index = index;
      cell.policy = p;
      cell.shaping = s;
      cell.seed = util::derive_seed(spec.seed, index);
      cells.push_back(cell);
      ++index;
    }
  }
  return cells;
}

LeakageCellResult run_leakage_cell(
    const LeakageSpec& spec, const LeakageCell& cell,
    const core::Workload& workload,
    const std::vector<net::WireRtpPacket>* external_capture) {
  LeakageCellResult r;
  r.cell = cell;

  // ---- Sender side, exactly as live::run_loopback stages it: clone,
  // pad (before encryption — the trailer must end up inside the
  // ciphertext), select, encrypt, transfer, degrade-revert, hide markers.
  util::Arena arena;
  std::vector<net::VideoPacket> packets =
      net::clone_packets(workload.packets, arena);
  net::pad_to_bucket(packets, arena, cell.shaping.pad_bucket_bytes);
  const std::vector<bool> selected = cell.policy.select(packets);
  const auto cipher =
      crypto::make_cipher_from_seed(cell.policy.algorithm, cell.seed);
  const auto flow_iv = live::flow_iv_for(*cipher, cell.seed);
  net::encrypt_selected(packets, selected, *cipher, flow_iv);

  core::PipelineConfig pipeline = spec.pipeline;
  pipeline.algorithm = cell.policy.algorithm;
  const core::TransferResult transfer =
      core::simulate_transfer(pipeline, packets, cell.seed);

  for (std::size_t i = 0; i < packets.size(); ++i) {
    if (i < transfer.degraded_cleartext.size() &&
        transfer.degraded_cleartext[i]) {
      std::memcpy(packets[i].payload.data(),
                  workload.packets[i].payload.data(),
                  packets[i].content_size());
      if (packets[i].pad_bytes > 0) {
        (void)net::rtp_write_pad_trailer(packets[i].payload,
                                         packets[i].content_size());
      }
      packets[i].encrypted = false;
      packets[i].payload.set_marker(false);
    }
  }
  if (cell.shaping.hide_markers) net::hide_wire_markers(packets);

  r.packet_count = packets.size();
  for (const net::VideoPacket& p : packets) {
    r.pad_overhead_bytes += p.pad_bytes;
  }

  // ---- The capture the loopback eavesdropper tap would record in
  // replay mode: the wire datagrams the channel let it hear, at jittered
  // send times.  Synthesized in memory so a sweep cell never depends on
  // kernel socket buffers — that is what keeps `--threads N` byte-stable.
  const std::vector<double> send_times =
      live::schedule_from_timings(transfer.timings);
  std::vector<double> jittered = send_times;
  live::jitter_schedule(jittered, cell.shaping.jitter_stddev_s, cell.seed);

  std::vector<net::RawCapture> captures;
  captures.reserve(packets.size());
  for (std::size_t i = 0; i < packets.size(); ++i) {
    if (i >= transfer.eavesdropper_captured.size() ||
        !transfer.eavesdropper_captured[i]) {
      continue;
    }
    const util::ByteView wire = packets[i].payload.wire();
    captures.push_back(net::RawCapture{
        jittered[i], std::vector<std::uint8_t>{wire.begin(), wire.end()}});
  }
  r.captured_packets = captures.size();

  const CaptureFeatures features = external_capture != nullptr
                                       ? extract_features(*external_capture)
                                       : extract_features(captures);
  r.inference = infer_stream(features, spec.adversary);

  // ---- Ground truth from the sender's own state: unjittered schedule,
  // content (unpadded) bytes, and the eavesdropper PSNR actually measured
  // by decoding what the snooper captured.
  r.truth = ground_truth_of(workload, packets, send_times,
                            spec.adversary.trajectory_window_s);
  const int frame_count = static_cast<int>(workload.stream.frames.size());
  r.truth.eavesdropper_psnr_db = decode_psnr(
      workload, net::reassemble(packets, transfer.eavesdropper_captured,
                                frame_count, nullptr, flow_iv));
  r.metrics = score_leakage(r.inference, r.truth);

  // ---- The countermeasures' price, in the paper's currency.  Padding
  // already paid inside simulate_transfer (bigger payloads, longer T_t);
  // jitter extends the transfer tail and adds its half-normal mean to
  // every packet's delay; marker hiding is free on this meter.
  double last_send = transfer.duration_s;
  for (const double t : jittered) last_send = std::max(last_send, t);
  r.duration_s = last_send;
  r.jitter_mean_delay_s =
      live::jitter_mean_delay_s(cell.shaping.jitter_stddev_s);
  r.mean_delay_ms = transfer.mean_delay_ms() + 1e3 * r.jitter_mean_delay_s;
  const energy::EnergyBreakdown energy = energy::transfer_energy(
      pipeline.device.power_coefficients(pipeline.algorithm), r.duration_s,
      transfer.encrypted_payload_bytes, transfer.airtime_s);
  r.mean_power_w = energy::mean_power_w(energy, r.duration_s);
  return r;
}

void LeakageTableSink::begin(const LeakageSpec& spec) {
  out_ << fmt("leakage sweep: motion=%s gop=%d frames=%d seed=%llu\n",
              to_string(spec.motion), spec.gop_size, spec.frames,
              static_cast<unsigned long long>(spec.seed));
  out_ << "cell policy     shaping              "
          "iP     iR     gopE  mot  brErr   trajMAE  qErr    "
          "psnrE   delay_ms  power_w  pad_B\n";
}

void LeakageTableSink::cell(const LeakageCellResult& r) {
  out_ << fmt("%4zu %-10s %-20s %.3f  %.3f  %4d  %-3s  %.4f  %7.1f  %.4f  "
              "%6.2f  %8.2f  %7.3f  %5zu\n",
              r.cell.index, r.cell.policy.spec().c_str(),
              r.cell.shaping.spec().c_str(), r.metrics.i_precision,
              r.metrics.i_recall, r.metrics.gop_error,
              r.metrics.motion_match ? "ok" : "NO",
              r.metrics.bitrate_rel_error, r.metrics.trajectory_mae_kbps,
              r.metrics.encrypted_fraction_error, r.metrics.psnr_error_db,
              r.mean_delay_ms, r.mean_power_w, r.pad_overhead_bytes);
}

void LeakageJsonlSink::cell(const LeakageCellResult& r) {
  out_ << fmt("{\"cell\":%zu,\"policy\":\"%s\",\"shaping\":\"%s\","
              "\"seed\":%llu,",
              r.cell.index, json_escape(r.cell.policy.spec()).c_str(),
              json_escape(r.cell.shaping.spec()).c_str(),
              static_cast<unsigned long long>(r.cell.seed));
  out_ << fmt("\"packets\":%zu,\"captured\":%zu,\"frames_observed\":%zu,"
              "\"i_frames_detected\":%zu,",
              r.packet_count, r.captured_packets, r.inference.frames.size(),
              r.inference.i_frames_detected);
  out_ << fmt("\"gop_est\":%d,\"gop_true\":%d,\"motion_est\":\"%s\","
              "\"motion_true\":\"%s\",",
              r.inference.gop_size_est, r.truth.gop_size,
              to_string(r.inference.motion_est), to_string(r.truth.motion));
  out_ << fmt("\"bitrate_est_bps\":%.17g,\"bitrate_true_bps\":%.17g,"
              "\"q_est\":%.17g,\"q_true\":%.17g,"
              "\"psnr_est_db\":%.17g,\"psnr_true_db\":%.17g,",
              r.inference.mean_bitrate_bps, r.truth.mean_bitrate_bps,
              r.inference.encrypted_fraction_est,
              r.truth.encrypted_packet_fraction,
              r.inference.eavesdropper_psnr_db_est,
              r.truth.eavesdropper_psnr_db);
  out_ << fmt("\"i_precision\":%.17g,\"i_recall\":%.17g,\"i_f1\":%.17g,"
              "\"gop_error\":%d,\"motion_match\":%s,"
              "\"bitrate_rel_error\":%.17g,\"trajectory_mae_kbps\":%.17g,"
              "\"encrypted_fraction_error\":%.17g,\"psnr_error_db\":%.17g,",
              r.metrics.i_precision, r.metrics.i_recall, r.metrics.i_f1,
              r.metrics.gop_error, r.metrics.motion_match ? "true" : "false",
              r.metrics.bitrate_rel_error, r.metrics.trajectory_mae_kbps,
              r.metrics.encrypted_fraction_error, r.metrics.psnr_error_db);
  out_ << fmt("\"duration_s\":%.17g,\"mean_delay_ms\":%.17g,"
              "\"mean_power_w\":%.17g,\"pad_overhead_bytes\":%zu,"
              "\"jitter_mean_delay_s\":%.17g}\n",
              r.duration_s, r.mean_delay_ms, r.mean_power_w,
              r.pad_overhead_bytes, r.jitter_mean_delay_s);
}

void LeakageCsvSink::begin(const LeakageSpec& spec) {
  (void)spec;
  out_ << "cell,policy,shaping,seed,packets,captured,frames_observed,"
          "i_frames_detected,gop_est,gop_true,motion_est,motion_true,"
          "bitrate_est_bps,bitrate_true_bps,q_est,q_true,psnr_est_db,"
          "psnr_true_db,i_precision,i_recall,i_f1,gop_error,motion_match,"
          "bitrate_rel_error,trajectory_mae_kbps,encrypted_fraction_error,"
          "psnr_error_db,duration_s,mean_delay_ms,mean_power_w,"
          "pad_overhead_bytes,jitter_mean_delay_s\n";
}

void LeakageCsvSink::cell(const LeakageCellResult& r) {
  out_ << fmt("%zu,%s,%s,%llu,%zu,%zu,%zu,%zu,%d,%d,%s,%s,", r.cell.index,
              r.cell.policy.spec().c_str(), r.cell.shaping.spec().c_str(),
              static_cast<unsigned long long>(r.cell.seed), r.packet_count,
              r.captured_packets, r.inference.frames.size(),
              r.inference.i_frames_detected, r.inference.gop_size_est,
              r.truth.gop_size, to_string(r.inference.motion_est),
              to_string(r.truth.motion));
  out_ << fmt("%.17g,%.17g,%.17g,%.17g,%.17g,%.17g,",
              r.inference.mean_bitrate_bps, r.truth.mean_bitrate_bps,
              r.inference.encrypted_fraction_est,
              r.truth.encrypted_packet_fraction,
              r.inference.eavesdropper_psnr_db_est,
              r.truth.eavesdropper_psnr_db);
  out_ << fmt("%.17g,%.17g,%.17g,%d,%d,%.17g,%.17g,%.17g,%.17g,",
              r.metrics.i_precision, r.metrics.i_recall, r.metrics.i_f1,
              r.metrics.gop_error, r.metrics.motion_match ? 1 : 0,
              r.metrics.bitrate_rel_error, r.metrics.trajectory_mae_kbps,
              r.metrics.encrypted_fraction_error, r.metrics.psnr_error_db);
  out_ << fmt("%.17g,%.17g,%.17g,%zu,%.17g\n", r.duration_s, r.mean_delay_ms,
              r.mean_power_w, r.pad_overhead_bytes, r.jitter_mean_delay_s);
}

LeakageSummary LeakageRunner::run(const LeakageSpec& spec,
                                  LeakageSink& sink) {
  spec.validate();
  const std::vector<LeakageCell> cells = enumerate_leakage_cells(spec);
  // One shared workload: every cell shapes/encrypts its own clone, so the
  // grid isolates the policy/shaping axes from content variation.
  const core::Workload workload =
      core::build_workload(spec.motion, spec.gop_size, spec.frames,
                           spec.seed, spec.pipeline.fps);

  const auto t0 = std::chrono::steady_clock::now();
  sink.begin(spec);

  LeakageSummary summary;
  summary.cells = cells.size();
  summary.threads = pool_ != nullptr ? pool_->thread_count() : 1;

  // Cells complete in any order; slots + next_flush turn that back into
  // strictly in-order sink calls (the determinism contract).
  std::vector<std::unique_ptr<LeakageCellResult>> slots(cells.size());
  std::size_t next_flush = 0;
  std::mutex flush_mu;
  auto store_and_flush = [&](std::size_t index,
                             std::unique_ptr<LeakageCellResult> r) {
    std::lock_guard lock{flush_mu};
    slots[index] = std::move(r);
    while (next_flush < slots.size() && slots[next_flush]) {
      sink.cell(*slots[next_flush]);
      slots[next_flush].reset();
      ++next_flush;
    }
  };

  auto run_one = [&](std::size_t index) {
    store_and_flush(index, std::make_unique<LeakageCellResult>(
                               run_leakage_cell(spec, cells[index],
                                                workload)));
  };

  if (pool_ != nullptr && cells.size() > 1) {
    pool_->parallel_for(cells.size(), run_one);
  } else {
    for (std::size_t i = 0; i < cells.size(); ++i) run_one(i);
  }
  sink.end();

  summary.wall_s =
      std::chrono::duration<double>(std::chrono::steady_clock::now() - t0)
          .count();
  return summary;
}

}  // namespace tv::analysis
