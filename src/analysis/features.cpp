#include "analysis/features.hpp"

#include <algorithm>
#include <cstdlib>
#include <map>
#include <span>
#include <utility>

#include "net/rtp.hpp"

namespace tv::analysis {

namespace {

/// Unwrap a 16-bit wire sequence against the highest extended sequence
/// seen so far: the representative of `seq` closest to `last` (same
/// window arithmetic as net::Receiver, reimplemented here because the
/// adversary works from captures, not a socket).
std::int64_t unwrap_sequence(std::uint16_t seq, std::int64_t last) {
  const std::int64_t cycle = last >> 16;
  std::int64_t best = (cycle << 16) | seq;
  const std::int64_t lower = ((cycle - 1) << 16) | seq;
  const std::int64_t upper = ((cycle + 1) << 16) | seq;
  if (std::llabs(lower - last) < std::llabs(best - last)) best = lower;
  if (std::llabs(upper - last) < std::llabs(best - last)) best = upper;
  return best < 0 ? static_cast<std::int64_t>(seq) : best;
}

PacketObservation observe(double time_s, const net::RtpHeader& header,
                          std::size_t payload_size,
                          std::span<const std::uint8_t> payload,
                          std::int64_t extended) {
  PacketObservation p;
  p.capture_time_s = time_s;
  p.extended_sequence = extended;
  p.rtp_timestamp = header.timestamp;
  p.wire_payload_bytes = payload_size;
  p.marker = header.marker;
  p.padding_bit = header.padding;
  // The adversary strips a pad trailer only when it can actually read
  // it: P bit set and the payload not flagged encrypted.  A marked
  // payload's trailer is ciphertext — the true length stays hidden.
  // When markers are hidden the snooper reads whatever garbage byte the
  // keystream left and either strips a bogus amount or (on an
  // inconsistent count) nothing: exactly the noise the countermeasure
  // is paid to create.
  p.inferred_content_bytes = payload_size;
  if (header.padding && !header.marker) {
    if (const auto content = net::rtp_unpadded_size(header, payload)) {
      p.inferred_content_bytes = *content;
    }
  }
  return p;
}

}  // namespace

CaptureFeatures extract_features(const std::vector<net::WireRtpPacket>& wire) {
  CaptureFeatures out;
  if (wire.empty()) return out;
  out.packets.reserve(wire.size());
  std::int64_t last = wire.front().header.sequence_number;
  for (const net::WireRtpPacket& w : wire) {
    const std::int64_t ext = unwrap_sequence(w.header.sequence_number, last);
    last = std::max(last, ext);
    out.packets.push_back(observe(w.timestamp_s, w.header, w.payload.size(),
                                  w.payload, ext));
  }

  // Deduplicate by extended sequence, keeping the first observation, and
  // order by sequence: frame grouping below then walks the stream in
  // media order regardless of capture reordering.
  std::stable_sort(out.packets.begin(), out.packets.end(),
                   [](const PacketObservation& a, const PacketObservation& b) {
                     return a.extended_sequence < b.extended_sequence;
                   });
  out.packets.erase(
      std::unique(out.packets.begin(), out.packets.end(),
                  [](const PacketObservation& a, const PacketObservation& b) {
                    return a.extended_sequence == b.extended_sequence;
                  }),
      out.packets.end());

  double start_s = out.packets.front().capture_time_s;
  double end_s = start_s;
  std::size_t marked = 0;
  std::size_t padded = 0;
  // Frames keyed by RTP timestamp; ordered map keeps them in media-clock
  // order, which equals first-sequence order for a single flow.
  std::map<std::uint32_t, FrameObservation> frames;
  for (const PacketObservation& p : out.packets) {
    start_s = std::min(start_s, p.capture_time_s);
    end_s = std::max(end_s, p.capture_time_s);
    if (p.marker) ++marked;
    if (p.padding_bit) ++padded;
    auto [it, inserted] = frames.try_emplace(p.rtp_timestamp);
    FrameObservation& f = it->second;
    if (inserted) {
      f.rtp_timestamp = p.rtp_timestamp;
      f.first_sequence = p.extended_sequence;
      f.first_time_s = p.capture_time_s;
      f.last_time_s = p.capture_time_s;
    }
    f.first_sequence = std::min(f.first_sequence, p.extended_sequence);
    f.first_time_s = std::min(f.first_time_s, p.capture_time_s);
    f.last_time_s = std::max(f.last_time_s, p.capture_time_s);
    ++f.packet_count;
    f.wire_bytes += p.wire_payload_bytes;
    f.inferred_bytes += p.inferred_content_bytes;
    f.marker_fraction += p.marker ? 1.0 : 0.0;
  }
  out.frames.reserve(frames.size());
  for (auto& [ts, f] : frames) {
    f.marker_fraction /= static_cast<double>(f.packet_count);
    out.frames.push_back(f);
  }
  std::sort(out.frames.begin(), out.frames.end(),
            [](const FrameObservation& a, const FrameObservation& b) {
              return a.first_sequence < b.first_sequence;
            });

  out.capture_start_s = start_s;
  out.capture_end_s = end_s;
  const std::int64_t span = out.packets.back().extended_sequence -
                            out.packets.front().extended_sequence + 1;
  out.expected_packets = static_cast<std::size_t>(span);
  out.loss_rate_est =
      1.0 - static_cast<double>(out.packets.size()) /
                static_cast<double>(out.expected_packets);
  out.marker_fraction = static_cast<double>(marked) /
                        static_cast<double>(out.packets.size());
  out.padding_bit_fraction = static_cast<double>(padded) /
                             static_cast<double>(out.packets.size());
  return out;
}

CaptureFeatures extract_features(const std::vector<net::RawCapture>& captures) {
  std::vector<net::WireRtpPacket> wire;
  wire.reserve(captures.size());
  for (const net::RawCapture& cap : captures) {
    const auto header = net::RtpHeader::try_parse(cap.datagram);
    if (!header) continue;  // not RTP — same skip rule as extract_rtp.
    net::WireRtpPacket w;
    w.timestamp_s = cap.timestamp_s;
    w.header = *header;
    w.payload.assign(cap.datagram.begin() + net::RtpHeader::kSize,
                     cap.datagram.end());
    wire.push_back(std::move(w));
  }
  return extract_features(wire);
}

}  // namespace tv::analysis
