// Leakage-vs-cost sweep: the adversary against every (encryption policy
// x shaping countermeasure) pair of a grid, with each knob's delay and
// energy price reported next to the leakage it suppresses.
//
// Per cell the runner re-creates, in memory, exactly what the live
// loopback eavesdropper tap would capture — clone, pad, encrypt, hide
// markers, simulate_transfer for pacing and capture masks, jitter the
// send schedule — then runs feature extraction, inference and scoring on
// that capture, and prices the cell through core::ServiceModel (the
// transfer it just ran) and energy::transfer_energy.  Same determinism
// contract as sim::ValidationRunner and cell::CellValidationRunner:
// derived per-cell seeds, strictly ordered sink calls, byte-identical
// output at any thread count.
#pragma once

#include <cstdint>
#include <ostream>
#include <vector>

#include "analysis/leakage.hpp"
#include "core/pipeline.hpp"

namespace tv::util {
class ThreadPool;
}

namespace tv::analysis {

/// Declarative leakage grid.  The defaults form the docs/adversary.md
/// headline table: the paper's four policies against no shaping and the
/// three countermeasure knobs.
struct LeakageSpec {
  std::vector<policy::EncryptionPolicy> policies;  ///< empty = headline four.
  std::vector<policy::ShapingPolicy> shapings;     ///< empty = none + knobs.
  video::MotionLevel motion = video::MotionLevel::kLow;
  int gop_size = 16;
  int frames = 48;
  core::PipelineConfig pipeline;
  AdversaryConfig adversary;
  std::uint64_t seed = 1;

  /// The effective axes (defaults filled in).
  [[nodiscard]] std::vector<policy::EncryptionPolicy> policy_axis() const;
  [[nodiscard]] std::vector<policy::ShapingPolicy> shaping_axis() const;

  void validate() const;
  [[nodiscard]] std::size_t cell_count() const;
};

/// One fully-resolved grid point (policy-major, shaping-minor order).
struct LeakageCell {
  std::size_t index = 0;
  policy::EncryptionPolicy policy;
  policy::ShapingPolicy shaping;
  std::uint64_t seed = 0;  ///< derive_seed(spec.seed, index).
};

[[nodiscard]] std::vector<LeakageCell> enumerate_leakage_cells(
    const LeakageSpec& spec);

/// Everything one cell produced: the adversary's view, the truth, the
/// scored leakage, and the countermeasures' price in the paper's own
/// delay/energy currency.
struct LeakageCellResult {
  LeakageCell cell;
  InferenceResult inference;
  GroundTruth truth;
  LeakageMetrics metrics;

  std::size_t packet_count = 0;
  std::size_t captured_packets = 0;
  double duration_s = 0.0;      ///< transfer duration incl. jitter tail.
  double mean_delay_ms = 0.0;   ///< per-packet delay + mean jitter.
  double mean_power_w = 0.0;    ///< energy model over the padded stream.
  std::size_t pad_overhead_bytes = 0;
  double jitter_mean_delay_s = 0.0;
};

/// Run one cell against the shared workload.  Pure in (spec, cell,
/// workload).  When `external_capture` is non-null the adversary reads
/// that capture (the `thriftyvid analyze` pcap path) instead of the
/// synthesized one; ground truth and costs still come from the
/// deterministic re-run, so a pcap produced by `live loopback` with the
/// same flags scores against the same truth as the in-memory sweep cell
/// (capture timestamps differ only by pcap's microsecond rounding).
[[nodiscard]] LeakageCellResult run_leakage_cell(
    const LeakageSpec& spec, const LeakageCell& cell,
    const core::Workload& workload,
    const std::vector<net::WireRtpPacket>* external_capture = nullptr);

/// Consumer of cell results; calls arrive strictly in cell order.
class LeakageSink {
 public:
  virtual ~LeakageSink() = default;
  virtual void begin(const LeakageSpec& /*spec*/) {}
  virtual void cell(const LeakageCellResult& result) = 0;
  virtual void end() {}
};

/// Human-readable aligned table, one row per cell.
class LeakageTableSink : public LeakageSink {
 public:
  explicit LeakageTableSink(std::ostream& out) : out_(out) {}
  void begin(const LeakageSpec& spec) override;
  void cell(const LeakageCellResult& result) override;

 private:
  std::ostream& out_;
};

/// One JSON object per cell per line at %.17g (golden-pinnable).
class LeakageJsonlSink : public LeakageSink {
 public:
  explicit LeakageJsonlSink(std::ostream& out) : out_(out) {}
  void cell(const LeakageCellResult& result) override;

 private:
  std::ostream& out_;
};

/// CSV with a header row — the spreadsheet twin of the JSONL sink.
class LeakageCsvSink : public LeakageSink {
 public:
  explicit LeakageCsvSink(std::ostream& out) : out_(out) {}
  void begin(const LeakageSpec& spec) override;
  void cell(const LeakageCellResult& result) override;

 private:
  std::ostream& out_;
};

/// In-memory sink for tests and programmatic consumers.
class LeakageCollectSink : public LeakageSink {
 public:
  void cell(const LeakageCellResult& result) override {
    results.push_back(result);
  }
  std::vector<LeakageCellResult> results;
};

/// Fan a result stream to several sinks (--json/--csv teeing).
class LeakageTeeSink : public LeakageSink {
 public:
  void add(LeakageSink* sink) { sinks_.push_back(sink); }
  void begin(const LeakageSpec& spec) override {
    for (auto* s : sinks_) s->begin(spec);
  }
  void cell(const LeakageCellResult& result) override {
    for (auto* s : sinks_) s->cell(result);
  }
  void end() override {
    for (auto* s : sinks_) s->end();
  }

 private:
  std::vector<LeakageSink*> sinks_;
};

struct LeakageSummary {
  std::size_t cells = 0;
  unsigned threads = 1;
  double wall_s = 0.0;
};

/// Executes LeakageSpecs, optionally on a thread pool.  `pool == nullptr`
/// runs serially; any pool size yields byte-identical sink output.
class LeakageRunner {
 public:
  explicit LeakageRunner(util::ThreadPool* pool = nullptr) : pool_(pool) {}

  LeakageSummary run(const LeakageSpec& spec, LeakageSink& sink);

 private:
  util::ThreadPool* pool_;
};

}  // namespace tv::analysis
