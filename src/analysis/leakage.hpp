// Leakage metrics: how much of the video's structure the ciphertext-only
// adversary actually recovered, scored against ground truth.
//
// Ground truth comes from the sender's side of a deterministic run — the
// workload, the policy selection and the transfer the capture was taken
// from — never from the capture itself.  Each metric pairs with the
// countermeasure that suppresses it (docs/adversary.md): padding blunts
// the size/bitrate channel, marker hiding the encrypted-fraction
// fingerprint, jitter the timing trajectory.
#pragma once

#include <cstdint>
#include <vector>

#include "analysis/inference.hpp"
#include "core/experiment.hpp"
#include "net/packetizer.hpp"
#include "policy/policy.hpp"

namespace tv::analysis {

/// The sender-side truth one capture is scored against.
struct GroundTruth {
  std::vector<bool> frame_is_i;  ///< by frame index.
  int gop_size = 0;
  video::MotionLevel motion = video::MotionLevel::kLow;
  double fps = 30.0;
  double mean_bitrate_bps = 0.0;        ///< content bits over send span.
  std::vector<double> trajectory_kbps;  ///< content bitrate per window, on
                                        ///< the *unjittered* send schedule.
  double trajectory_window_s = 0.0;
  double encrypted_packet_fraction = 0.0;
  double eavesdropper_psnr_db = 0.0;  ///< measured by decoding the capture.
};

/// Build ground truth from the packets as sent and their unjittered send
/// times.  `frame_is_i` spans every frame of the stream; bitrate uses
/// content (unpadded) bytes, which is exactly what the adversary tries
/// to recover through the shaping.
[[nodiscard]] GroundTruth ground_truth_of(
    const core::Workload& workload,
    const std::vector<net::VideoPacket>& packets,
    const std::vector<double>& send_times_s, double trajectory_window_s);

/// Scored leakage of one capture.  Precision/recall conventions: with no
/// I-frames detected, precision is 1 (no false claims) and recall 0;
/// with no true I-frames among observed frames, recall is 1.
struct LeakageMetrics {
  double i_precision = 0.0;
  double i_recall = 0.0;
  double i_f1 = 0.0;
  int gop_error = 0;        ///< |estimated - true| (est 0 counts in full).
  bool motion_match = false;
  double bitrate_rel_error = 0.0;     ///< |est - true| / true.
  double trajectory_mae_kbps = 0.0;   ///< mean |est - true| per window.
  double encrypted_fraction_error = 0.0;  ///< |q_est - q_true|.
  double psnr_error_db = 0.0;  ///< |proxy - measured eavesdropper PSNR|.
};

/// Score an inference result against ground truth.  Frames the capture
/// never observed are excluded from the I-frame precision/recall base
/// (an adversary cannot label what it never heard).
[[nodiscard]] LeakageMetrics score_leakage(const InferenceResult& inference,
                                           const GroundTruth& truth);

}  // namespace tv::analysis
