#include "analysis/leakage.hpp"

#include <algorithm>
#include <cmath>

namespace tv::analysis {

GroundTruth ground_truth_of(const core::Workload& workload,
                            const std::vector<net::VideoPacket>& packets,
                            const std::vector<double>& send_times_s,
                            double trajectory_window_s) {
  GroundTruth truth;
  truth.gop_size = workload.codec.gop_size;
  truth.motion = workload.motion;
  truth.fps = workload.fps;
  truth.trajectory_window_s = trajectory_window_s;
  truth.frame_is_i.reserve(workload.stream.frames.size());
  for (const video::EncodedFrame& f : workload.stream.frames) {
    truth.frame_is_i.push_back(f.is_i);
  }

  if (packets.empty() || send_times_s.size() != packets.size()) {
    return truth;
  }
  const auto [first_it, last_it] =
      std::minmax_element(send_times_s.begin(), send_times_s.end());
  const double start = *first_it;
  const double span = *last_it - start;
  std::size_t content_bytes = 0;
  std::size_t encrypted = 0;
  const auto windows = static_cast<std::size_t>(
      span > 0.0 ? std::ceil(span / trajectory_window_s) : 1);
  truth.trajectory_kbps.assign(windows, 0.0);
  for (std::size_t i = 0; i < packets.size(); ++i) {
    const std::size_t content = packets[i].content_size();
    content_bytes += content;
    if (packets[i].encrypted) ++encrypted;
    auto w = static_cast<std::size_t>((send_times_s[i] - start) /
                                      trajectory_window_s);
    if (w >= windows) w = windows - 1;
    truth.trajectory_kbps[w] += 8.0 * static_cast<double>(content) / 1000.0 /
                                trajectory_window_s;
  }
  if (span > 0.0) {
    truth.mean_bitrate_bps = 8.0 * static_cast<double>(content_bytes) / span;
  }
  truth.encrypted_packet_fraction =
      static_cast<double>(encrypted) / static_cast<double>(packets.size());
  return truth;
}

LeakageMetrics score_leakage(const InferenceResult& inference,
                             const GroundTruth& truth) {
  LeakageMetrics m;

  // ---- I-frame detection quality.  The estimate's RTP timestamp maps
  // back to the frame index through the 90 kHz media clock.
  std::size_t tp = 0, fp = 0, fn = 0;
  for (const FrameEstimate& e : inference.frames) {
    const auto frame_index = static_cast<std::size_t>(std::llround(
        static_cast<double>(e.rtp_timestamp) * truth.fps / 90000.0));
    const bool truly_i = frame_index < truth.frame_is_i.size() &&
                         truth.frame_is_i[frame_index];
    if (e.is_i && truly_i) ++tp;
    if (e.is_i && !truly_i) ++fp;
    if (!e.is_i && truly_i) ++fn;
  }
  m.i_precision = (tp + fp) > 0 ? static_cast<double>(tp) /
                                      static_cast<double>(tp + fp)
                                : 1.0;
  m.i_recall = (tp + fn) > 0 ? static_cast<double>(tp) /
                                   static_cast<double>(tp + fn)
                             : 1.0;
  m.i_f1 = (m.i_precision + m.i_recall) > 0.0
               ? 2.0 * m.i_precision * m.i_recall /
                     (m.i_precision + m.i_recall)
               : 0.0;

  m.gop_error = std::abs(inference.gop_size_est - truth.gop_size);
  m.motion_match = inference.motion_est == truth.motion;

  if (truth.mean_bitrate_bps > 0.0) {
    m.bitrate_rel_error =
        std::abs(inference.mean_bitrate_bps - truth.mean_bitrate_bps) /
        truth.mean_bitrate_bps;
  }

  // ---- Trajectory error: align window-by-window; windows only one side
  // has count in full against zero (the adversary seeing bytes where the
  // sender sent none — or missing a burst — is exactly the leak/noise).
  const std::size_t windows = std::max(inference.trajectory_kbps.size(),
                                       truth.trajectory_kbps.size());
  if (windows > 0) {
    double abs_sum = 0.0;
    for (std::size_t w = 0; w < windows; ++w) {
      const double est =
          w < inference.trajectory_kbps.size() ? inference.trajectory_kbps[w]
                                               : 0.0;
      const double ref =
          w < truth.trajectory_kbps.size() ? truth.trajectory_kbps[w] : 0.0;
      abs_sum += std::abs(est - ref);
    }
    m.trajectory_mae_kbps = abs_sum / static_cast<double>(windows);
  }

  m.encrypted_fraction_error = std::abs(inference.encrypted_fraction_est -
                                        truth.encrypted_packet_fraction);
  m.psnr_error_db = std::abs(inference.eavesdropper_psnr_db_est -
                             truth.eavesdropper_psnr_db);
  return m;
}

}  // namespace tv::analysis
