// The traffic-analysis adversary: quality inference from ciphertext-only
// features (docs/adversary.md).
//
// From the features of one capture the adversary estimates, without
// reading a single video byte:
//   * which frames are I-frames (size-contrast clustering — key frames
//     are the leak that matters, Sagatov et al. in PAPERS.md),
//   * the GOP size (modal spacing of detected I-frames),
//   * the motion class (P/I size ratio against the codec's signature),
//   * the bitrate and its trajectory (windowed bytes over capture time),
//   * the encrypted fraction (visible marker bits), and
//   * a PSNR proxy of what an eavesdropper effectively sees, by feeding
//     its own estimates into the paper's Section 4.3 GOP flow model with
//     content terms self-calibrated from a reference workload of the
//     estimated motion class.
#pragma once

#include <cstdint>
#include <vector>

#include "analysis/features.hpp"
#include "video/scene.hpp"

namespace tv::analysis {

/// Knobs of the inference procedure.  The defaults are what the CLI and
/// the leakage sweep use; they are part of the golden-pinned contract.
struct AdversaryConfig {
  double fps = 30.0;  ///< assumed frame cadence (90 kHz media clock).
  /// Bitrate-trajectory window; small enough that send-time jitter
  /// visibly smears bytes across window boundaries.
  double trajectory_window_s = 0.25;
  /// Frames are split I/P only when the cluster means are separated by
  /// at least this factor; below it the size contrast is considered
  /// flattened (e.g. by padding) and no I-frames are reported.
  double cluster_separation = 1.5;
  /// Seed of the self-calibration workload (content terms for the PSNR
  /// proxy).  Fixed: the adversary owns it, it is not the flow's seed.
  std::uint64_t calibration_seed = 0xADA97;
};

/// One frame as the adversary labelled it.
struct FrameEstimate {
  std::uint32_t rtp_timestamp = 0;
  std::size_t packets = 0;
  std::size_t bytes = 0;  ///< inferred content bytes.
  bool is_i = false;
  double marker_fraction = 0.0;
};

struct InferenceResult {
  std::vector<FrameEstimate> frames;
  std::size_t i_frames_detected = 0;
  int gop_size_est = 0;  ///< 0 when fewer than two I-frames were found.
  video::MotionLevel motion_est = video::MotionLevel::kLow;
  double p_over_i_size_ratio = 0.0;  ///< the motion classifier's input.
  double mean_bitrate_bps = 0.0;     ///< inferred content bits / second.
  std::vector<double> trajectory_kbps;  ///< per-window inferred bitrate.
  double trajectory_window_s = 0.0;
  double encrypted_fraction_est = 0.0;  ///< from visible marker bits.
  double loss_rate_est = 0.0;
  double eavesdropper_psnr_db_est = 0.0;  ///< Section 4.3 proxy.
};

/// Run the full inference chain on one capture's features.  Pure in
/// (features, config) — byte-identical output at any thread count.
[[nodiscard]] InferenceResult infer_stream(const CaptureFeatures& features,
                                           const AdversaryConfig& config = {});

}  // namespace tv::analysis
