// Ciphertext-only feature extraction from eavesdropped captures.
//
// The traffic-analysis adversary (docs/adversary.md) never reads video
// bytes: everything here is computed from packet lengths, capture
// timing, and the RTP header fields an open-WiFi snooper sees in clear —
// sequence numbers, timestamps, the marker bit (the paper's "payload is
// encrypted" flag) and the padding bit.  Schmitt et al. (PAPERS.md) show
// this metadata is enough to infer video structure; these features are
// the raw material for analysis::infer_stream.
#pragma once

#include <cstdint>
#include <vector>

#include "net/pcap.hpp"

namespace tv::analysis {

/// One packet as the adversary saw it on the wire.
struct PacketObservation {
  double capture_time_s = 0.0;
  std::int64_t extended_sequence = 0;  ///< unwrapped 16-bit sequence.
  std::uint32_t rtp_timestamp = 0;
  std::size_t wire_payload_bytes = 0;  ///< RTP payload length as heard.
  /// The adversary's best guess at the content length: a readable pad
  /// trailer (P bit set, marker clear, consistent count) is stripped;
  /// encrypted or inconsistent trailers leave the wire length standing.
  std::size_t inferred_content_bytes = 0;
  bool marker = false;
  bool padding_bit = false;
};

/// Packets grouped by RTP timestamp: one video frame's fragments.
struct FrameObservation {
  std::uint32_t rtp_timestamp = 0;
  std::int64_t first_sequence = 0;  ///< lowest extended sequence seen.
  std::size_t packet_count = 0;
  std::size_t wire_bytes = 0;      ///< sum of wire payload lengths.
  std::size_t inferred_bytes = 0;  ///< sum of inferred content lengths.
  double marker_fraction = 0.0;    ///< fraction of packets with marker set.
  double first_time_s = 0.0;
  double last_time_s = 0.0;
};

/// Everything the adversary measured from one capture.
struct CaptureFeatures {
  std::vector<PacketObservation> packets;  ///< sequence order, deduplicated.
  std::vector<FrameObservation> frames;    ///< ordered by first sequence.
  double capture_start_s = 0.0;
  double capture_end_s = 0.0;
  /// Sequence-gap accounting: the span covered by the observed extended
  /// sequences tells the snooper how many packets it missed.
  std::size_t expected_packets = 0;
  double loss_rate_est = 0.0;
  double marker_fraction = 0.0;      ///< visible-encryption fingerprint.
  double padding_bit_fraction = 0.0; ///< shaping fingerprint.

  [[nodiscard]] double capture_span_s() const {
    return capture_end_s - capture_start_s;
  }
};

/// Extract features from RTP packets recovered off a capture
/// (net::extract_rtp).  Duplicate sequences keep the first observation;
/// packets are re-ordered by extended sequence.  Deterministic: a pure
/// function of the input.
[[nodiscard]] CaptureFeatures extract_features(
    const std::vector<net::WireRtpPacket>& wire);

/// Convenience overload for raw overheard datagrams (the live tap's
/// in-memory record): datagrams that do not parse as RTP are skipped,
/// exactly like extract_rtp skips non-RTP frames.
[[nodiscard]] CaptureFeatures extract_features(
    const std::vector<net::RawCapture>& captures);

}  // namespace tv::analysis
