#include "analysis/inference.hpp"

#include <algorithm>
#include <cmath>
#include <map>

#include "core/experiment.hpp"
#include "core/predictor.hpp"

namespace tv::analysis {

namespace {

/// Deterministic 2-means over frame sizes: centroids start at the min
/// and max, iterate to a fixed point (at most 64 rounds — sizes are a
/// small finite set, it converges long before that).  Returns the two
/// means; assignment is by nearest centroid.
struct TwoMeans {
  double lo = 0.0;
  double hi = 0.0;
};

TwoMeans two_means(const std::vector<double>& values) {
  TwoMeans m;
  const auto [mn, mx] = std::minmax_element(values.begin(), values.end());
  m.lo = *mn;
  m.hi = *mx;
  for (int round = 0; round < 64; ++round) {
    double sum_lo = 0.0, sum_hi = 0.0;
    std::size_t n_lo = 0, n_hi = 0;
    for (const double v : values) {
      if (std::abs(v - m.lo) <= std::abs(v - m.hi)) {
        sum_lo += v;
        ++n_lo;
      } else {
        sum_hi += v;
        ++n_hi;
      }
    }
    const double lo = n_lo > 0 ? sum_lo / static_cast<double>(n_lo) : m.lo;
    const double hi = n_hi > 0 ? sum_hi / static_cast<double>(n_hi) : m.hi;
    if (lo == m.lo && hi == m.hi) break;
    m.lo = lo;
    m.hi = hi;
  }
  return m;
}

/// Modal gap between consecutive detected I-frames (ties -> smallest
/// gap, for determinism).  0 when fewer than two I-frames exist.
int modal_i_spacing(const std::vector<FrameEstimate>& frames) {
  std::map<int, int> gap_counts;
  int last_i = -1;
  for (std::size_t k = 0; k < frames.size(); ++k) {
    if (!frames[k].is_i) continue;
    if (last_i >= 0) ++gap_counts[static_cast<int>(k) - last_i];
    last_i = static_cast<int>(k);
  }
  int best_gap = 0, best_count = 0;
  for (const auto& [gap, count] : gap_counts) {
    if (count > best_count) {
      best_gap = gap;
      best_count = count;
    }
  }
  return best_gap;
}

/// Motion class from the P/I mean-size ratio.  The synthetic codec's
/// rate control (core::build_workload) couples motion to the inter
/// quantizer, so faster content spends relatively more bytes on P
/// frames; the cut points sit between the three presets' measured
/// signatures (low 0.03-0.07, medium 0.13-0.15, high 0.23-0.25 on
/// unshaped captures across seeds).
video::MotionLevel motion_from_ratio(double p_over_i) {
  if (p_over_i < 0.10) return video::MotionLevel::kLow;
  if (p_over_i < 0.19) return video::MotionLevel::kMedium;
  return video::MotionLevel::kHigh;
}

/// The Section 4.3 PSNR proxy: what an eavesdropper with these estimates
/// effectively "sees".  Content terms (base/null MSE, the D(d) fit) come
/// from a reference workload of the *estimated* motion class and GOP —
/// self-calibration, never ground truth.
double psnr_proxy(const InferenceResult& r, const CaptureFeatures& f,
                  const AdversaryConfig& config) {
  if (r.frames.empty()) return 0.0;
  const int gop = std::clamp(r.gop_size_est > 0
                                 ? r.gop_size_est
                                 : static_cast<int>(r.frames.size()),
                             2, 64);
  const core::Workload reference = core::build_workload(
      r.motion_est, gop, 2 * gop, config.calibration_seed, config.fps);

  // Observable traffic shape: packets per frame by estimated class, and
  // per-class encrypted fractions from the visible markers.
  double i_packets = 0.0, p_packets = 0.0, i_frames = 0.0, p_frames = 0.0;
  double i_marked = 0.0, p_marked = 0.0;
  for (const FrameEstimate& fr : r.frames) {
    const auto packets = static_cast<double>(fr.packets);
    if (fr.is_i) {
      i_packets += packets;
      i_marked += fr.marker_fraction * packets;
      ++i_frames;
    } else {
      p_packets += packets;
      p_marked += fr.marker_fraction * packets;
      ++p_frames;
    }
  }
  core::TrafficCalibration traffic;
  traffic.mean_i_packets_per_frame =
      i_frames > 0.0 ? i_packets / i_frames : 1.0;
  traffic.mean_p_packets_per_frame =
      p_frames > 0.0 ? p_packets / p_frames : 1.0;

  core::DistortionInputs di;
  di.gop_size = gop;
  di.n_gops = std::max(1, static_cast<int>(r.frames.size()) / gop);
  di.sensitivity_fraction = core::default_sensitivity(r.motion_est);
  di.base_mse = reference.base_mse;
  di.null_mse = reference.null_mse;
  di.inter = reference.inter;

  const double q_i = i_packets > 0.0 ? i_marked / i_packets : 0.0;
  const double q_p = p_packets > 0.0 ? p_marked / p_packets : 0.0;
  const double p_success = std::clamp(1.0 - f.loss_rate_est, 0.0, 1.0);
  return core::predict_distortion(di, traffic, p_success, q_i, q_p).psnr_db;
}

}  // namespace

InferenceResult infer_stream(const CaptureFeatures& features,
                             const AdversaryConfig& config) {
  InferenceResult out;
  out.trajectory_window_s = config.trajectory_window_s;
  if (features.frames.empty()) return out;

  out.loss_rate_est = features.loss_rate_est;
  out.encrypted_fraction_est = features.marker_fraction;

  // ---- Frame-type labels: two-cluster size contrast.  I-frames are
  // intra-coded and dwarf their P neighbours; when shaping flattens the
  // contrast below the separation factor, the adversary (correctly)
  // reports that it cannot find key frames.
  std::vector<double> sizes;
  sizes.reserve(features.frames.size());
  for (const FrameObservation& f : features.frames) {
    sizes.push_back(static_cast<double>(f.inferred_bytes));
  }
  const TwoMeans clusters = two_means(sizes);
  const bool separated =
      clusters.hi >= config.cluster_separation * std::max(clusters.lo, 1.0);

  out.frames.reserve(features.frames.size());
  double i_bytes = 0.0, p_bytes = 0.0, i_count = 0.0, p_count = 0.0;
  std::size_t total_bytes = 0;
  for (const FrameObservation& f : features.frames) {
    FrameEstimate e;
    e.rtp_timestamp = f.rtp_timestamp;
    e.packets = f.packet_count;
    e.bytes = f.inferred_bytes;
    e.marker_fraction = f.marker_fraction;
    const double size = static_cast<double>(f.inferred_bytes);
    e.is_i = separated &&
             std::abs(size - clusters.hi) < std::abs(size - clusters.lo);
    if (e.is_i) {
      ++out.i_frames_detected;
      i_bytes += size;
      ++i_count;
    } else {
      p_bytes += size;
      ++p_count;
    }
    total_bytes += f.inferred_bytes;
    out.frames.push_back(e);
  }

  // ---- GOP structure and motion class.
  out.gop_size_est = modal_i_spacing(out.frames);
  const double mean_i = i_count > 0.0 ? i_bytes / i_count : 0.0;
  const double mean_p = p_count > 0.0 ? p_bytes / p_count : 0.0;
  out.p_over_i_size_ratio = mean_i > 0.0 ? mean_p / mean_i : 1.0;
  out.motion_est = motion_from_ratio(out.p_over_i_size_ratio);

  // ---- Bitrate: mean and windowed trajectory over capture time.
  const double span = features.capture_span_s();
  if (span > 0.0) {
    out.mean_bitrate_bps = 8.0 * static_cast<double>(total_bytes) / span;
    const auto windows = static_cast<std::size_t>(
        std::ceil(span / config.trajectory_window_s));
    out.trajectory_kbps.assign(windows, 0.0);
    for (const PacketObservation& p : features.packets) {
      auto w = static_cast<std::size_t>(
          (p.capture_time_s - features.capture_start_s) /
          config.trajectory_window_s);
      if (w >= windows) w = windows - 1;  // the end instant.
      out.trajectory_kbps[w] +=
          8.0 * static_cast<double>(p.inferred_content_bytes) / 1000.0 /
          config.trajectory_window_s;
    }
  }

  // ---- What the snooper effectively sees, in dB.
  out.eavesdropper_psnr_db_est = psnr_proxy(out, features, config);
  return out;
}

}  // namespace tv::analysis
