#include "sim/validation.hpp"

#include <chrono>
#include <cmath>
#include <cstdarg>
#include <cstdio>
#include <memory>
#include <mutex>
#include <stdexcept>

#include "core/calibration.hpp"
#include "core/predictor.hpp"
#include "distortion/gop_model.hpp"
#include "queueing/mmpp_g1.hpp"
#include "util/rng.hpp"
#include "util/thread_pool.hpp"

namespace tv::sim {

namespace {

// Per-cell RNG substreams (folded onto the cell's derived seed).
constexpr std::uint64_t kSenderStream = 1;
constexpr std::uint64_t kEavesdropperStream = 2;

std::string fmt(const char* format, ...) {
  char buf[256];
  va_list args;
  va_start(args, format);
  std::vsnprintf(buf, sizeof buf, format, args);
  va_end(args);
  return buf;
}

std::string json_escape(const std::string& s) {
  std::string out;
  out.reserve(s.size());
  for (char c : s) {
    if (c == '"' || c == '\\') out.push_back('\\');
    out.push_back(c);
  }
  return out;
}

core::TrafficCalibration make_traffic(const ValidationSpec& spec,
                                      const ValidationCell& cell) {
  core::TrafficCalibration traffic;
  traffic.mmpp =
      queueing::Mmpp2{spec.r12, spec.r21, cell.lambda1, cell.lambda2};
  traffic.p_i = spec.p_i;
  traffic.mean_i_payload = spec.mean_i_payload;
  traffic.mean_p_payload = spec.mean_p_payload;
  traffic.mean_i_packets_per_frame =
      static_cast<double>(spec.i_packets_per_frame);
  traffic.mean_p_packets_per_frame =
      static_cast<double>(spec.p_packets_per_frame);
  return traffic;
}

core::ServiceCalibration make_service(const ValidationSpec& spec,
                                      crypto::Algorithm algorithm) {
  core::ServiceCalibration service;
  service.enc_i_mean = spec.device.encryption_seconds(
      algorithm, static_cast<std::size_t>(spec.mean_i_payload));
  service.enc_p_mean = spec.device.encryption_seconds(
      algorithm, static_cast<std::size_t>(spec.mean_p_payload));
  service.enc_i_stddev = spec.device.speed(algorithm).jitter_stddev_s;
  service.enc_p_stddev = spec.device.speed(algorithm).jitter_stddev_s;
  service.tx_i_mean = spec.tx_i_mean;
  service.tx_i_stddev = spec.tx_i_stddev;
  service.tx_p_mean = spec.tx_p_mean;
  service.tx_p_stddev = spec.tx_p_stddev;
  service.mac_success_prob = spec.mac_success_prob;
  service.backoff_rate = spec.backoff_rate;
  return service;
}

SenderSimSpec make_sender_spec(const ValidationSpec& spec,
                               const ValidationCell& cell) {
  const core::TrafficCalibration traffic = make_traffic(spec, cell);
  const core::ServiceCalibration service =
      make_service(spec, cell.policy.algorithm);
  SenderSimSpec out;
  out.arrivals = traffic.mmpp;
  out.service =
      core::service_parameters(traffic, service,
                               cell.policy.i_packet_fraction(),
                               cell.policy.p_packet_fraction());
  out.events = spec.events;
  out.warmup = spec.warmup;
  out.batches = spec.batches;
  out.seed = util::derive_seed(cell.seed, kSenderStream);
  return out;
}

EavesdropperSimSpec make_eavesdropper_spec(const ValidationSpec& spec,
                                           const ValidationCell& cell) {
  EavesdropperSimSpec out;
  out.gop_size = spec.gop_size;
  out.n_gops = spec.n_gops;
  out.repetitions = spec.eavesdropper_repetitions;
  out.i_packets_per_frame = spec.i_packets_per_frame;
  out.p_packets_per_frame = spec.p_packets_per_frame;
  out.sensitivity_fraction = spec.sensitivity_fraction;
  out.packet_success_rate = spec.packet_success_rate;
  out.q_i = cell.policy.i_packet_fraction();
  out.q_p = cell.policy.p_packet_fraction();
  out.base_mse = spec.base_mse;
  out.null_reference_mse = spec.null_reference_mse;
  out.d_min = spec.inter(1.0);
  out.d_max = spec.inter(static_cast<double>(spec.gop_size - 1));
  out.age_cap_gops = spec.age_cap_gops;
  out.inter = spec.inter;
  out.seed = util::derive_seed(cell.seed, kEavesdropperStream);
  return out;
}

void add_check(ValidationCellResult& r, std::string name, double simulated,
               double analytic, double tolerance) {
  ValidationCheck c;
  c.name = std::move(name);
  c.simulated = simulated;
  c.analytic = analytic;
  c.tolerance = tolerance;
  c.ok = std::abs(simulated - analytic) <= tolerance;
  r.checks.push_back(std::move(c));
}

}  // namespace

void ValidationSpec::validate() const {
  const auto require = [](bool ok, const char* what) {
    if (!ok) {
      throw std::invalid_argument{std::string{"ValidationSpec: "} + what};
    }
  };
  require(!lambda1s.empty(), "no lambda1 values");
  require(!lambda2s.empty(), "no lambda2 values");
  require(!policies.empty(), "no policies");
  require(!algorithms.empty(), "no algorithms");
  require(r12 > 0.0 && r21 > 0.0, "transition rates must be positive");
  require(p_i > 0.0 && p_i < 1.0, "p_i must be in (0, 1)");
  require(mean_i_payload > 0.0 && mean_p_payload > 0.0,
          "payload sizes must be positive");
  require(i_packets_per_frame >= 1 && p_packets_per_frame >= 1,
          "packets per frame must be >= 1");
  require(z > 0.0, "z must be positive");
  require(eavesdropper_repetitions >= 2, "need >= 2 eavesdropper flows");
  for (const policy::EncryptionPolicy& p : policies) p.validate();
  // Per-cell knobs (stability, truncation constraints, distortion ranges)
  // are validated fail-fast by ValidationRunner::run before any cell
  // executes, via the component specs' own validate().
}

std::size_t ValidationSpec::cell_count() const {
  return lambda1s.size() * lambda2s.size() * policies.size() *
         algorithms.size();
}

std::vector<ValidationCell> enumerate_cells(const ValidationSpec& spec) {
  std::vector<ValidationCell> cells;
  cells.reserve(spec.cell_count());
  std::size_t index = 0;
  for (double l1 : spec.lambda1s) {
    for (double l2 : spec.lambda2s) {
      for (const policy::EncryptionPolicy& shape : spec.policies) {
        for (crypto::Algorithm algorithm : spec.algorithms) {
          ValidationCell cell;
          cell.index = index;
          cell.lambda1 = l1;
          cell.lambda2 = l2;
          cell.policy = shape;
          cell.policy.algorithm = algorithm;
          cell.seed = util::derive_seed(spec.seed, index);
          cells.push_back(cell);
          ++index;
        }
      }
    }
  }
  return cells;
}

bool ValidationCellResult::passed() const {
  for (const ValidationCheck& c : checks) {
    if (!c.ok) return false;
  }
  return true;
}

ValidationCellResult run_validation_cell(const ValidationSpec& spec,
                                         const ValidationCell& cell) {
  ValidationCellResult r;
  r.cell = cell;
  const double z = spec.z;

  // --- Sender side: exact 2-MMPP/G/1 solution vs. event simulation. -------
  SenderSimSpec sender_spec = make_sender_spec(spec, cell);
  core::StampTraceSink stamp{spec.trace, nullptr,
                             static_cast<int>(cell.index)};
  if (spec.trace != nullptr) sender_spec.trace = &stamp;
  const queueing::ServiceTimeModel model =
      queueing::ServiceTimeModel::from_parameters(sender_spec.service);
  const queueing::MmppG1Solver solver{sender_spec.arrivals, model};
  const queueing::MmppG1Solution sol = solver.solve();
  const util::Vector pi = sender_spec.arrivals.stationary();
  const double lambda_bar = sender_spec.arrivals.mean_rate();

  r.analytic_wait = sol.mean_wait;
  r.analytic_wait_state1 = sol.phase_wait[0];
  r.analytic_wait_state2 = sol.phase_wait[1];
  r.analytic_utilization = sol.utilization;
  r.analytic_state1_fraction = pi[0];
  r.analytic_arrival_state1_fraction = pi[0] * cell.lambda1 / lambda_bar;
  r.analytic_service_mean = model.mean();

  r.sender = simulate_sender(sender_spec);

  // E[W]: batch means give the honest standard error; a small relative
  // slack absorbs the residual correlation between adjacent batches.
  const double batch_sem = r.sender.wait_batch_means.stderr_mean();
  add_check(r, "mean_wait", r.sender.wait.mean(), r.analytic_wait,
            z * batch_sem + 0.01 * r.analytic_wait + 1e-6);

  // Per-state waits: their naive standard errors share (approximately) the
  // autocorrelation structure of the pooled sequence, so inflate them by
  // the pooled batch-to-naive ratio.
  const double naive_sem = r.sender.wait.stderr_mean();
  const double inflation = naive_sem > 0.0 ? batch_sem / naive_sem : 1.0;
  add_check(r, "wait_state1", r.sender.wait_state1.mean(),
            r.analytic_wait_state1,
            z * inflation * r.sender.wait_state1.stderr_mean() +
                0.02 * r.analytic_wait_state1 + 1e-6);
  add_check(r, "wait_state2", r.sender.wait_state2.mean(),
            r.analytic_wait_state2,
            z * inflation * r.sender.wait_state2.stderr_mean() +
                0.02 * r.analytic_wait_state2 + 1e-6);

  // Service draws are iid, so their naive standard error is exact.
  add_check(r, "service_mean", r.sender.service.mean(),
            r.analytic_service_mean,
            z * r.sender.service.stderr_mean() + 1e-9);
  add_check(r, "mean_sojourn", r.sender.sojourn.mean(), sol.mean_sojourn,
            z * (batch_sem + r.sender.service.stderr_mean()) +
                0.01 * sol.mean_sojourn + 1e-6);

  // Chain occupancy: the time fraction in state 1 over N sojourn cycles has
  // sd ~ f (1 - f) sqrt(2 / N) (ratio of iid exponential sums).
  const double cycle_mean = 1.0 / spec.r12 + 1.0 / spec.r21;
  const double cycles =
      r.sender.chain_time > 0.0 ? r.sender.chain_time / cycle_mean : 1.0;
  const double f = r.analytic_state1_fraction;

  // Utilization: the simulator measures a fixed *packet count*, so busy/T
  // inherits the randomness of the window length T, which is dominated by
  // the phase-occupancy fluctuation of the mean arrival rate
  // (d lambda_bar / d f = lambda1 - lambda2); the iid service-draw noise
  // adds a smaller term on top.
  const double busy_sd =
      r.sender.measured_time > 0.0
          ? std::sqrt(static_cast<double>(r.sender.service.count()) *
                      r.sender.service.variance()) /
                r.sender.measured_time
          : 0.0;
  const double rel_rate_sd = std::abs(cell.lambda1 - cell.lambda2) * f *
                             (1.0 - f) * std::sqrt(2.0 / cycles) /
                             lambda_bar;
  add_check(r, "utilization", r.sender.utilization(), r.analytic_utilization,
            z * (r.analytic_utilization * rel_rate_sd + 2.0 * busy_sd) +
                0.005 * r.analytic_utilization + 1e-4);
  add_check(r, "state1_fraction", r.sender.state1_fraction(), f,
            z * f * (1.0 - f) * std::sqrt(2.0 / cycles) + 1e-3);
  const double a = r.analytic_arrival_state1_fraction;
  add_check(r, "arrival_state1_fraction", r.sender.arrival_state1_fraction(),
            a, z * std::sqrt(a * (1.0 - a) / cycles) + 1e-3);

  // --- Eavesdropper side: eqs. (20)-(28) vs. packet simulation. -----------
  const core::TrafficCalibration traffic = make_traffic(spec, cell);
  core::DistortionInputs inputs;
  inputs.gop_size = spec.gop_size;
  inputs.n_gops = spec.n_gops;
  inputs.sensitivity_fraction = spec.sensitivity_fraction;
  inputs.base_mse = spec.base_mse;
  inputs.null_mse = spec.null_reference_mse;
  inputs.inter = spec.inter;
  const core::DistortionPrediction prediction = core::predict_distortion(
      inputs, traffic, spec.packet_success_rate,
      cell.policy.i_packet_fraction(), cell.policy.p_packet_fraction());
  r.analytic_i_frame_success = prediction.p_i_frame_success;
  r.analytic_p_frame_success = prediction.p_p_frame_success;
  r.analytic_flow_mse = prediction.mse;

  distortion::FlowModelParameters fp;
  fp.gop_size = spec.gop_size;
  fp.p_i_success = prediction.p_i_frame_success;
  fp.p_p_success = prediction.p_p_frame_success;
  fp.d_min = spec.inter(1.0);
  fp.d_max = spec.inter(static_cast<double>(spec.gop_size - 1));
  fp.base_mse = spec.base_mse;
  fp.null_reference_mse = spec.null_reference_mse;
  fp.age_cap_gops = spec.age_cap_gops;
  r.analytic_gop_state_pmf =
      distortion::FlowDistortionModel{fp, spec.inter}.gop_state_pmf();

  r.eavesdropper = simulate_eavesdropper(make_eavesdropper_spec(spec, cell));

  // Per-flow statistics are iid across repetitions.
  add_check(r, "i_frame_success", r.eavesdropper.i_frame_success.mean(),
            r.analytic_i_frame_success,
            z * r.eavesdropper.i_frame_success.stderr_mean() + 5e-3);
  add_check(r, "p_frame_success", r.eavesdropper.p_frame_success.mean(),
            r.analytic_p_frame_success,
            z * r.eavesdropper.p_frame_success.stderr_mean() + 5e-3);
  add_check(r, "flow_mse", r.eavesdropper.flow_mse.mean(),
            r.analytic_flow_mse,
            z * r.eavesdropper.flow_mse.stderr_mean() +
                0.02 * r.analytic_flow_mse + 1e-3);

  // GOP-state occupancy: intact and I-lost corners binomially, plus the
  // total-variation distance of the whole empirical pmf.
  const double n_gop_samples =
      r.eavesdropper.gops > 0 ? static_cast<double>(r.eavesdropper.gops) : 1.0;
  const auto binom_sd = [&](double p) {
    return std::sqrt(std::max(p * (1.0 - p), 0.0) / n_gop_samples);
  };
  const std::vector<double>& apmf = r.analytic_gop_state_pmf;
  const std::vector<double>& spmf = r.eavesdropper.gop_state_pmf;
  add_check(r, "gop_pmf_intact", spmf.front(), apmf.front(),
            z * binom_sd(apmf.front()) + 2e-3);
  add_check(r, "gop_pmf_i_lost", spmf.back(), apmf.back(),
            z * binom_sd(apmf.back()) + 2e-3);
  double tv = 0.0;
  double tv_tol = 0.0;
  for (std::size_t i = 0; i < apmf.size() && i < spmf.size(); ++i) {
    tv += 0.5 * std::abs(spmf[i] - apmf[i]);
    tv_tol += 0.5 * binom_sd(apmf[i]);
  }
  add_check(r, "gop_pmf_tv", tv, 0.0, z * tv_tol + 2e-3);

  return r;
}

// --- Sinks. ----------------------------------------------------------------

void ValidationTableSink::begin(const ValidationSpec& spec) {
  out_ << fmt("validation grid: %zu cells, %llu events/cell, z = %.3g\n",
              spec.cell_count(),
              static_cast<unsigned long long>(spec.events), spec.z);
  out_ << fmt("%-4s %-6s %-6s %-10s %-7s %-21s %-17s %-15s %-19s %-6s %s\n",
              "cell", "l1", "l2", "policy", "alg", "E[W] sim/ana (ms)",
              "rho sim/ana", "P_I sim/ana", "MSE sim/ana", "checks", "ok");
}

void ValidationTableSink::cell(const ValidationCellResult& r) {
  std::size_t ok = 0;
  for (const ValidationCheck& c : r.checks) ok += c.ok ? 1 : 0;
  out_ << fmt(
      "%-4zu %-6g %-6g %-10s %-7s %-21s %-17s %-15s %-19s %-6s %s\n",
      r.cell.index, r.cell.lambda1, r.cell.lambda2,
      r.cell.policy.spec().c_str(),
      std::string{crypto::to_string(r.cell.policy.algorithm)}.c_str(),
      fmt("%.4f/%.4f", r.sender.wait.mean() * 1e3, r.analytic_wait * 1e3)
          .c_str(),
      fmt("%.4f/%.4f", r.sender.utilization(), r.analytic_utilization)
          .c_str(),
      fmt("%.4f/%.4f", r.eavesdropper.i_frame_success.mean(),
          r.analytic_i_frame_success)
          .c_str(),
      fmt("%.2f/%.2f", r.eavesdropper.flow_mse.mean(), r.analytic_flow_mse)
          .c_str(),
      fmt("%zu/%zu", ok, r.checks.size()).c_str(),
      r.passed() ? "PASS" : "FAIL");
  for (const ValidationCheck& c : r.checks) {
    if (c.ok) continue;
    out_ << fmt("     FAIL %s: simulated %.17g vs analytic %.17g "
                "(|diff| %.3g > tol %.3g)\n",
                c.name.c_str(), c.simulated, c.analytic,
                std::abs(c.simulated - c.analytic), c.tolerance);
  }
}

void ValidationJsonlSink::cell(const ValidationCellResult& r) {
  out_ << "{\"cell\":" << r.cell.index
       << fmt(",\"lambda1\":%.17g,\"lambda2\":%.17g", r.cell.lambda1,
              r.cell.lambda2)
       << ",\"policy\":\"" << json_escape(r.cell.policy.spec())
       << "\",\"algorithm\":\"" << crypto::to_string(r.cell.policy.algorithm)
       << "\",\"seed\":" << r.cell.seed
       << fmt(",\"sender\":{\"wait\":%.17g,\"wait_ci\":%.17g,"
              "\"wait_state1\":%.17g,\"wait_state2\":%.17g,"
              "\"service\":%.17g,\"sojourn\":%.17g,\"utilization\":%.17g,"
              "\"state1_fraction\":%.17g,\"arrival_state1_fraction\":%.17g,"
              "\"served\":%llu}",
              r.sender.wait.mean(),
              r.sender.wait_batch_means.ci95_halfwidth(),
              r.sender.wait_state1.mean(), r.sender.wait_state2.mean(),
              r.sender.service.mean(), r.sender.sojourn.mean(),
              r.sender.utilization(), r.sender.state1_fraction(),
              r.sender.arrival_state1_fraction(),
              static_cast<unsigned long long>(r.sender.served))
       << fmt(",\"eavesdropper\":{\"i_frame_success\":%.17g,"
              "\"p_frame_success\":%.17g,\"flow_mse\":%.17g,"
              "\"mean_psnr_db\":%.17g,\"substitution_distance\":%.17g,"
              "\"gops\":%llu}",
              r.eavesdropper.i_frame_success.mean(),
              r.eavesdropper.p_frame_success.mean(),
              r.eavesdropper.flow_mse.mean(), r.eavesdropper.mean_psnr_db(),
              r.eavesdropper.substitution_distance.mean(),
              static_cast<unsigned long long>(r.eavesdropper.gops))
       << fmt(",\"analytic\":{\"wait\":%.17g,\"wait_state1\":%.17g,"
              "\"wait_state2\":%.17g,\"service\":%.17g,"
              "\"utilization\":%.17g,\"state1_fraction\":%.17g,"
              "\"arrival_state1_fraction\":%.17g,\"i_frame_success\":%.17g,"
              "\"p_frame_success\":%.17g,\"flow_mse\":%.17g}",
              r.analytic_wait, r.analytic_wait_state1, r.analytic_wait_state2,
              r.analytic_service_mean, r.analytic_utilization,
              r.analytic_state1_fraction, r.analytic_arrival_state1_fraction,
              r.analytic_i_frame_success, r.analytic_p_frame_success,
              r.analytic_flow_mse)
       << ",\"checks\":[";
  for (std::size_t i = 0; i < r.checks.size(); ++i) {
    const ValidationCheck& c = r.checks[i];
    if (i > 0) out_ << ',';
    out_ << "{\"name\":\"" << json_escape(c.name)
         << fmt("\",\"simulated\":%.17g,\"analytic\":%.17g,"
                "\"tolerance\":%.17g,\"ok\":%s}",
                c.simulated, c.analytic, c.tolerance,
                c.ok ? "true" : "false");
  }
  out_ << "],\"passed\":" << (r.passed() ? "true" : "false") << "}\n";
}

// --- Runner. ---------------------------------------------------------------

ValidationSummary ValidationRunner::run(const ValidationSpec& spec,
                                        ValidationSink& sink) {
  spec.validate();
  const std::vector<ValidationCell> cells = enumerate_cells(spec);

  // Fail fast on configuration mistakes (instability, truncation-violating
  // jitter, bad distortion knobs) before any cell burns simulation time.
  for (const ValidationCell& cell : cells) {
    make_sender_spec(spec, cell).validate();
    make_eavesdropper_spec(spec, cell).validate();
  }

  const auto t0 = std::chrono::steady_clock::now();
  sink.begin(spec);

  ValidationSummary summary;
  summary.cells = cells.size();
  summary.threads = pool_ != nullptr ? pool_->thread_count() : 1;

  // Cells complete in any order; slots + next_flush turn that back into
  // strictly in-order sink calls (the determinism contract).
  std::vector<std::unique_ptr<ValidationCellResult>> slots(cells.size());
  std::size_t next_flush = 0;
  std::mutex flush_mu;
  auto store_and_flush = [&](std::size_t index,
                             std::unique_ptr<ValidationCellResult> result) {
    std::lock_guard lock{flush_mu};
    slots[index] = std::move(result);
    while (next_flush < slots.size() && slots[next_flush]) {
      const ValidationCellResult& r = *slots[next_flush];
      if (r.passed()) ++summary.passed_cells;
      for (const ValidationCheck& c : r.checks) {
        if (!c.ok) ++summary.failed_checks;
      }
      sink.cell(r);
      slots[next_flush].reset();
      ++next_flush;
    }
  };

  auto run_cell = [&](std::size_t index) {
    store_and_flush(index, std::make_unique<ValidationCellResult>(
                               run_validation_cell(spec, cells[index])));
  };

  // Traced runs execute serially so the event stream arrives in cell order.
  if (pool_ != nullptr && cells.size() > 1 && spec.trace == nullptr) {
    pool_->parallel_for(cells.size(), run_cell);
  } else {
    for (std::size_t i = 0; i < cells.size(); ++i) run_cell(i);
  }
  sink.end();

  summary.wall_s =
      std::chrono::duration<double>(std::chrono::steady_clock::now() - t0)
          .count();
  return summary;
}

}  // namespace tv::sim
