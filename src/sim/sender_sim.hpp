// Event-driven simulation of the paper's sender (Sections 4.2.1-4.2.3).
//
// Independent ground truth for the analytic 2-MMPP/G/1 machinery: unlike
// queueing::ServiceTimeModel — which folds encryption and transmission into
// per-class Gaussian mixture components before the solver ever sees them —
// this simulator draws every physical stage separately, exactly as the
// paper describes the sender:
//
//   * the modulating chain switches between the I-burst and P-drain states
//     (rates r12/r21) as explicit events, cancelling and rescheduling the
//     tentative next arrival on every phase change;
//   * each arriving packet draws its frame class (I w.p. p_i), whether the
//     policy encrypts it (q_i / q_p), an encryption time T_e (eq. 15, only
//     when encrypted), a MAC backoff T_b as a literal geometric number of
//     Exp(lambda_b) collision waits (eqs. 6-7), and a transmission time T_t
//     (eq. 16);
//   * the server is a FIFO single server; waiting time is measured from
//     arrival to service start.
//
// Every stage draws from its own RNG stream (util::derive_seed), so no
// stage's consumption pattern can alias another's.  Waiting times of
// successive packets are heavily autocorrelated, so the result also
// carries batch-mean statistics: the per-batch means are near-independent
// and give an honest confidence interval for E[W] (docs/validation.md).
#pragma once

#include <cstdint>

#include "core/trace.hpp"
#include "queueing/mmpp.hpp"
#include "queueing/service_time.hpp"
#include "util/stats.hpp"

namespace tv::sim {

struct SenderSimSpec {
  queueing::Mmpp2 arrivals;          ///< the 2-MMPP of eq. (1).
  queueing::ServiceParameters service;  ///< per-stage draws (Section 4.2.2).
  std::uint64_t events = 400000;     ///< measured packets after warmup.
  std::uint64_t warmup = 40000;      ///< discarded transient packets.
  std::uint64_t batches = 200;       ///< batch count for batch-mean CIs.
  std::uint64_t seed = 1;
  /// Optional per-packet stage instrumentation: the service stage emits
  /// encrypt/backoff/transmit events (packet = 0-based served index,
  /// time = service start).  Null (the default) costs nothing and leaves
  /// every draw identical.
  core::TraceSink* trace = nullptr;

  /// Throws std::invalid_argument on non-positive sizes or unstable load.
  void validate() const;
};

struct SenderSimResult {
  util::RunningStats wait;      ///< per-packet queueing delay W.
  util::RunningStats service;   ///< per-packet service time S.
  util::RunningStats sojourn;   ///< W + S.
  /// Means of `spec.batches` equal-count batches of consecutive waits:
  /// the accumulator whose ci95_halfwidth() is statistically honest.
  util::RunningStats wait_batch_means;

  // Per-modulating-state decomposition at arrival instants.
  util::RunningStats wait_state1;  ///< waits of packets arriving in state 1.
  util::RunningStats wait_state2;
  std::uint64_t arrivals_state1 = 0;
  std::uint64_t arrivals_state2 = 0;

  // Virtual-time occupancies over the measurement window.
  double measured_time = 0.0;    ///< virtual seconds observed after warmup.
  /// Chain-occupancy window: ends at the last arrival (the chain stops
  /// evolving once arrivals stop, so later time would bias the fraction).
  double chain_time = 0.0;
  double state1_time = 0.0;      ///< time the modulating chain spent in 1.
  double busy_time = 0.0;        ///< time the server spent serving.
  std::uint64_t served = 0;

  /// Empirical rho: busy fraction of the measurement window.
  [[nodiscard]] double utilization() const;
  /// Empirical P(J = 1): compare against Mmpp2::stationary()[0].
  [[nodiscard]] double state1_fraction() const;
  /// Empirical share of arrivals seen in state 1: compare against
  /// pi_1 lambda_1 / lambda_bar.
  [[nodiscard]] double arrival_state1_fraction() const;
};

/// Run the sender simulation.  Deterministic in spec.seed.
[[nodiscard]] SenderSimResult simulate_sender(const SenderSimSpec& spec);

}  // namespace tv::sim
