#include "sim/event_queue.hpp"

#include <stdexcept>
#include <utility>

namespace tv::sim {

EventId EventQueue::schedule_at(double time, std::function<void()> fn) {
  if (time < now_) {
    throw std::invalid_argument{"EventQueue: scheduling into the past"};
  }
  const EventId id = next_id_++;
  heap_.push(Event{time, id, std::move(fn)});
  alive_.insert(id);
  return id;
}

EventId EventQueue::schedule_in(double delay, std::function<void()> fn) {
  if (delay < 0.0) {
    throw std::invalid_argument{"EventQueue: negative delay"};
  }
  return schedule_at(now_ + delay, std::move(fn));
}

bool EventQueue::cancel(EventId id) { return alive_.erase(id) > 0; }

std::uint64_t EventQueue::run(std::uint64_t max_events) {
  std::uint64_t ran = 0;
  while (ran < max_events && !heap_.empty()) {
    // priority_queue::top is const; move out via const_cast before pop,
    // which is safe because the element is popped immediately after.
    Event event = std::move(const_cast<Event&>(heap_.top()));
    heap_.pop();
    if (alive_.erase(event.id) == 0) continue;  // was cancelled.
    now_ = event.time;
    ++processed_;
    ++ran;
    event.fn();
  }
  return ran;
}

}  // namespace tv::sim
