#include "sim/eavesdropper_sim.hpp"

#include <stdexcept>

#include "distortion/frame_success.hpp"
#include "util/rng.hpp"
#include "video/frame.hpp"

namespace tv::sim {

namespace {

constexpr std::uint64_t kFlowStream = 0x7eaf;  // per-repetition RNG tag.

// One frame's packet-level recovery: the first packet (headers) must be
// captured and decryptable, and at least `sensitivity` of the remaining
// n-1 must be — the literal event behind eq. (20).  Every packet is drawn
// even after the outcome is decided so that RNG consumption is a fixed
// function of the frame shape.
bool recover_frame(util::Rng& rng, int packets, int sensitivity,
                   double p_success, double q_encrypted) {
  auto usable = [&] {
    const bool captured = rng.bernoulli(p_success);
    const bool encrypted = rng.bernoulli(q_encrypted);
    return captured && !encrypted;
  };
  const bool header_ok = usable();
  int rest_ok = 0;
  for (int i = 1; i < packets; ++i) rest_ok += usable() ? 1 : 0;
  return header_ok && rest_ok >= sensitivity;
}

// Eq. (21): expected GOP distortion when the first unrecoverable frame is
// the i-th P-frame.  Restated here (not called through distortion::) so the
// simulator stays an independent implementation of the chain around it.
double intra_gop_distortion(int gop_size, int i, double d_min, double d_max) {
  const double g = static_cast<double>(gop_size);
  const double gi = static_cast<double>(gop_size - i);
  return gi * (static_cast<double>(i) * d_min +
               static_cast<double>(gop_size - i - 1) * d_max) /
         ((g - 1.0) * g);
}

}  // namespace

void EavesdropperSimSpec::validate() const {
  if (gop_size < 2) {
    throw std::invalid_argument{"EavesdropperSimSpec: gop_size < 2"};
  }
  if (n_gops < 1 || repetitions < 1) {
    throw std::invalid_argument{
        "EavesdropperSimSpec: n_gops and repetitions must be >= 1"};
  }
  if (i_packets_per_frame < 1 || p_packets_per_frame < 1) {
    throw std::invalid_argument{
        "EavesdropperSimSpec: packets per frame must be >= 1"};
  }
  if (sensitivity_fraction < 0.0 || sensitivity_fraction > 1.0 ||
      packet_success_rate < 0.0 || packet_success_rate > 1.0 ||
      q_i < 0.0 || q_i > 1.0 || q_p < 0.0 || q_p > 1.0) {
    throw std::invalid_argument{
        "EavesdropperSimSpec: probabilities must be in [0, 1]"};
  }
  if (base_mse < 0.0 || null_reference_mse < 0.0 || d_min < 0.0 ||
      d_max < 0.0) {
    throw std::invalid_argument{
        "EavesdropperSimSpec: distortions must be non-negative"};
  }
  if (age_cap_gops < 2) {
    throw std::invalid_argument{"EavesdropperSimSpec: age_cap_gops < 2"};
  }
}

double EavesdropperSimResult::mean_psnr_db() const {
  return video::psnr_from_mse(flow_mse.mean());
}

EavesdropperSimResult simulate_eavesdropper(const EavesdropperSimSpec& spec) {
  spec.validate();
  const int g = spec.gop_size;
  const int s_i = distortion::sensitivity_from_fraction(
      spec.i_packets_per_frame, spec.sensitivity_fraction);
  const int s_p = distortion::sensitivity_from_fraction(
      spec.p_packets_per_frame, spec.sensitivity_fraction);
  const int age_cap = spec.age_cap_gops * g + 1;

  EavesdropperSimResult result;
  result.gop_state_pmf.assign(static_cast<std::size_t>(g) + 1, 0.0);

  for (int rep = 0; rep < spec.repetitions; ++rep) {
    util::Rng rng{util::derive_seed(spec.seed, kFlowStream,
                                    static_cast<std::uint64_t>(rep))};
    int age = -1;  // frames since the last good frame; -1 = none ever.
    double flow_total = 0.0;
    std::uint64_t i_ok = 0;
    std::uint64_t p_ok = 0;
    util::RunningStats distances;

    for (int gop = 0; gop < spec.n_gops; ++gop) {
      // Recover every frame of the GOP at the packet level.  All frames
      // are transmitted regardless of earlier losses, so all are drawn.
      const bool i_recovered =
          recover_frame(rng, spec.i_packets_per_frame, s_i,
                        spec.packet_success_rate, spec.q_i);
      i_ok += i_recovered ? 1 : 0;
      int first_loss = 0;  // 0 = every P-frame recovered.
      for (int j = 1; j <= g - 1; ++j) {
        const bool recovered =
            recover_frame(rng, spec.p_packets_per_frame, s_p,
                          spec.packet_success_rate, spec.q_p);
        p_ok += recovered ? 1 : 0;
        if (!recovered && first_loss == 0) first_loss = j;
      }

      double gop_distortion = 0.0;
      if (!i_recovered) {
        result.gop_state_pmf[static_cast<std::size_t>(g)] += 1.0;
        if (age < 0) {
          // Case 3: no reference has ever been displayed.
          gop_distortion = spec.null_reference_mse;
        } else {
          // Case 2: every frame concealed by the aging reference.
          double acc = 0.0;
          for (int j = 0; j < g; ++j) {
            const double d = static_cast<double>(age + j);
            acc += spec.inter(d);
            distances.add(d);
          }
          gop_distortion = acc / static_cast<double>(g);
          age = age + g > age_cap ? age_cap : age + g;
        }
      } else if (first_loss == 0) {
        result.gop_state_pmf[0] += 1.0;
        age = 1;
      } else {
        // Case 1: frames first_loss..G-1 freeze on the last good P-frame.
        result.gop_state_pmf[static_cast<std::size_t>(first_loss)] += 1.0;
        gop_distortion =
            intra_gop_distortion(g, first_loss, spec.d_min, spec.d_max);
        for (int k = 0; k < g - first_loss; ++k) {
          distances.add(static_cast<double>(k + 1));
        }
        age = g - first_loss + 1;
      }
      flow_total += gop_distortion + spec.base_mse;
    }

    result.flow_mse.add(flow_total / static_cast<double>(spec.n_gops));
    result.i_frame_success.add(static_cast<double>(i_ok) /
                               static_cast<double>(spec.n_gops));
    result.p_frame_success.add(
        static_cast<double>(p_ok) /
        static_cast<double>(spec.n_gops * (g - 1)));
    if (distances.count() > 0) {
      result.substitution_distance.add(distances.mean());
    }
    result.gops += static_cast<std::uint64_t>(spec.n_gops);
    result.frames += static_cast<std::uint64_t>(spec.n_gops) *
                     static_cast<std::uint64_t>(g);
  }

  for (double& p : result.gop_state_pmf) {
    p /= static_cast<double>(result.gops);
  }
  return result;
}

}  // namespace tv::sim
