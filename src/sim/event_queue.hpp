// Deterministic discrete-event core: a virtual clock plus a pending-event
// heap.  The validation simulators (sender_sim, eavesdropper_sim) are built
// on top of this instead of ad-hoc inline loops so that every event has an
// explicit timestamp, cancellation is first-class (needed when an MMPP phase
// change invalidates the tentatively scheduled next arrival), and event
// ordering is reproducible: ties in time are broken by scheduling order, so
// a run is a pure function of the seed regardless of heap internals.
#pragma once

#include <cstdint>
#include <functional>
#include <queue>
#include <unordered_set>
#include <vector>

namespace tv::sim {

/// Handle identifying a scheduled event, usable to cancel it.
using EventId = std::uint64_t;

/// Min-heap of timed events over a virtual clock.  Not thread-safe: each
/// simulation owns one queue (cross-run parallelism happens one level up,
/// in ValidationRunner).
class EventQueue {
 public:
  /// Schedule `fn` at absolute virtual time `time` (must be >= now()).
  /// Returns an id that can be passed to cancel().
  EventId schedule_at(double time, std::function<void()> fn);

  /// Schedule `fn` `delay` seconds after now() (delay must be >= 0).
  EventId schedule_in(double delay, std::function<void()> fn);

  /// Lazily cancel a pending event; cancelled events are skipped (and not
  /// counted as processed) when they surface.  Returns true iff the event
  /// was still pending; cancelling one that already ran or was already
  /// cancelled is a harmless no-op returning false.
  bool cancel(EventId id);

  /// Run events in (time, scheduling-order) order until the queue drains
  /// or `max_events` have been processed.  Returns the number processed.
  std::uint64_t run(std::uint64_t max_events = ~0ULL);

  /// Current virtual time: the timestamp of the last processed event.
  [[nodiscard]] double now() const { return now_; }
  /// Pending (non-cancelled) events.
  [[nodiscard]] std::size_t pending() const { return alive_.size(); }
  [[nodiscard]] bool empty() const { return alive_.empty(); }
  /// Total events processed over the queue's lifetime.
  [[nodiscard]] std::uint64_t processed() const { return processed_; }

 private:
  struct Event {
    double time = 0.0;
    EventId id = 0;  ///< scheduling order; the deterministic tie-break.
    std::function<void()> fn;
  };
  struct Later {
    bool operator()(const Event& a, const Event& b) const {
      if (a.time != b.time) return a.time > b.time;
      return a.id > b.id;
    }
  };

  std::priority_queue<Event, std::vector<Event>, Later> heap_;
  std::unordered_set<EventId> alive_;  ///< scheduled, not yet run/cancelled.
  double now_ = 0.0;
  EventId next_id_ = 0;
  std::uint64_t processed_ = 0;
};

}  // namespace tv::sim
