#include "sim/sender_sim.hpp"

#include <deque>
#include <stdexcept>

#include "core/service_model.hpp"
#include "sim/event_queue.hpp"
#include "util/rng.hpp"

namespace tv::sim {

namespace {

// Purpose tags for the per-stage RNG streams (util::derive_seed).
enum Stream : std::uint64_t {
  kChain = 1,    // modulating-state sojourns and the initial state.
  kArrival = 2,  // interarrival exponentials.
  kClass = 3,    // frame class + encrypt-or-not coin flips.
  kEncrypt = 4,  // T_e Gaussians.
  kBackoff = 5,  // collision counts and Exp waits.
  kTransmit = 6, // T_t Gaussians.
};

struct PendingPacket {
  double arrival = 0.0;
  int state = 1;
};

struct Sim {
  const SenderSimSpec& spec;
  EventQueue queue;
  util::Rng chain_rng, arrival_rng, class_rng, enc_rng, backoff_rng, tx_rng;
  core::ServiceModel service_model;

  SenderSimResult result;
  std::deque<PendingPacket> fifo;
  bool server_busy = false;
  int state = 1;  // 1-based, matching MmppArrival.
  EventId pending_arrival = 0;
  bool arrival_pending = false;

  std::uint64_t total = 0;
  std::uint64_t arrived = 0;
  std::uint64_t started = 0;
  std::uint64_t batch_size = 0;
  std::uint64_t batch_fill = 0;
  double batch_sum = 0.0;

  double window_start = -1.0;  // first measured service start; -1 = not yet.
  double window_end = 0.0;     // last departure processed.
  double state_changed_at = 0.0;
  double chain_end = 0.0;      // last arrival: chain occupancy stops here.
  bool chain_closed = false;

  explicit Sim(const SenderSimSpec& s)
      : spec(s),
        chain_rng(util::derive_seed(s.seed, kChain)),
        arrival_rng(util::derive_seed(s.seed, kArrival)),
        class_rng(util::derive_seed(s.seed, kClass)),
        enc_rng(util::derive_seed(s.seed, kEncrypt)),
        backoff_rng(util::derive_seed(s.seed, kBackoff)),
        tx_rng(util::derive_seed(s.seed, kTransmit)) {
    service_model.mac_success_prob = s.service.success_prob;
    service_model.backoff_rate = s.service.backoff_rate;
  }

  [[nodiscard]] double rate() const {
    return state == 1 ? spec.arrivals.lambda1 : spec.arrivals.lambda2;
  }
  [[nodiscard]] double leave_rate() const {
    return state == 1 ? spec.arrivals.r12 : spec.arrivals.r21;
  }

  // The T_e/T_b/T_t stage draws all come from the shared core::ServiceModel
  // — the same service law core::simulate_transfer composes — each stage
  // consuming its own derived RNG stream.  Backoff waits are folded into
  // total_s per draw (via the model's accumulator hook) so the sum's
  // floating-point order is unchanged by the refactor.
  [[nodiscard]] double draw_service() {
    const auto& p = spec.service;
    const bool is_i = class_rng.bernoulli(p.p_i);
    const bool encrypted = class_rng.bernoulli(is_i ? p.q_i : p.q_p);
    const auto packet = static_cast<std::int64_t>(started);
    const double now = queue.now();
    double total_s = 0.0;
    if (encrypted) {
      const double t_e =
          is_i ? core::ServiceModel::draw_encryption(enc_rng, p.enc_i_mean,
                                                     p.enc_i_stddev)
               : core::ServiceModel::draw_encryption(enc_rng, p.enc_p_mean,
                                                     p.enc_p_stddev);
      total_s += t_e;
      if (spec.trace != nullptr) {
        spec.trace->event(
            {core::Stage::kService, "encrypt", packet, -1, now, t_e});
      }
    }
    const core::ServiceModel::BackoffDraw backoff =
        service_model.draw_backoff(backoff_rng, &total_s);
    if (spec.trace != nullptr) {
      spec.trace->event(
          {core::Stage::kService, "backoff", packet, -1, now, backoff.total_s});
    }
    const double t_t =
        is_i ? core::ServiceModel::draw_transmission(tx_rng, p.tx_i_mean,
                                                     p.tx_i_stddev)
             : core::ServiceModel::draw_transmission(tx_rng, p.tx_p_mean,
                                                     p.tx_p_stddev);
    total_s += t_t;
    if (spec.trace != nullptr) {
      spec.trace->event(
          {core::Stage::kService, "transmit", packet, -1, now, t_t});
    }
    return total_s;
  }

  // Accumulate modulating-state occupancy up to now, clipped to the
  // measurement window.
  void account_state_time(double now) {
    if (window_start >= 0.0 && state == 1) {
      const double from =
          state_changed_at > window_start ? state_changed_at : window_start;
      if (now > from) result.state1_time += now - from;
    }
    state_changed_at = now;
  }

  void schedule_arrival() {
    pending_arrival = queue.schedule_in(
        arrival_rng.exponential(rate()), [this] { on_arrival(); });
    arrival_pending = true;
  }

  void schedule_switch() {
    queue.schedule_in(chain_rng.exponential(leave_rate()),
                      [this] { on_switch(); });
  }

  void on_switch() {
    if (chain_closed) return;  // stale event from before arrivals stopped.
    account_state_time(queue.now());
    state = state == 1 ? 2 : 1;
    if (arrived < total) {
      // The tentative next arrival was drawn at the old rate; by
      // memorylessness, cancelling it and redrawing at the new rate is
      // exactly the modulated process.
      if (arrival_pending) queue.cancel(pending_arrival);
      schedule_arrival();
      schedule_switch();
    }
  }

  void on_arrival() {
    arrival_pending = false;
    ++arrived;
    (state == 1 ? result.arrivals_state1 : result.arrivals_state2) += 1;
    fifo.push_back({queue.now(), state});
    if (!server_busy) start_service();
    if (arrived < total) {
      schedule_arrival();
    } else {
      // Close the chain-occupancy window here: the modulating chain is
      // meaningless once arrivals stop, and a stale switch event firing
      // after the last departure must not extend the occupancy clock.
      account_state_time(queue.now());
      chain_end = queue.now();
      chain_closed = true;
    }
  }

  void start_service() {
    const PendingPacket packet = fifo.front();
    fifo.pop_front();
    server_busy = true;
    const double now = queue.now();
    const double wait = now - packet.arrival;
    const double service = draw_service();
    ++started;
    if (started > spec.warmup) {
      if (window_start < 0.0) {
        window_start = now;
        account_state_time(now);  // clip the occupancy clock to the window.
      }
      result.wait.add(wait);
      result.service.add(service);
      result.sojourn.add(wait + service);
      (packet.state == 1 ? result.wait_state1 : result.wait_state2).add(wait);
      result.busy_time += service;
      ++result.served;
      batch_sum += wait;
      if (++batch_fill == batch_size) {
        result.wait_batch_means.add(batch_sum /
                                    static_cast<double>(batch_size));
        batch_sum = 0.0;
        batch_fill = 0;
      }
    }
    queue.schedule_in(service, [this] { on_departure(); });
  }

  void on_departure() {
    server_busy = false;
    window_end = queue.now();
    if (!fifo.empty()) start_service();
  }

  SenderSimResult run() {
    total = spec.warmup + spec.events;
    batch_size = spec.events / spec.batches;

    // Start the modulating chain from its stationary distribution.
    const util::Vector pi = spec.arrivals.stationary();
    state = chain_rng.uniform() < pi[0] ? 1 : 2;
    state_changed_at = 0.0;
    schedule_switch();
    schedule_arrival();

    // Drain: once `total` packets have arrived no new arrivals or chain
    // sojourns are scheduled, so the heap empties after the backlog is
    // served (plus at most one stale switch event).
    queue.run();

    result.measured_time =
        window_start >= 0.0 ? window_end - window_start : 0.0;
    result.chain_time =
        window_start >= 0.0 && chain_end > window_start
            ? chain_end - window_start
            : 0.0;
    return result;
  }
};

}  // namespace

void SenderSimSpec::validate() const {
  arrivals.validate();
  if (events == 0) {
    throw std::invalid_argument{"SenderSimSpec: events == 0"};
  }
  if (batches < 2 || batches > events) {
    throw std::invalid_argument{
        "SenderSimSpec: batches must be in [2, events]"};
  }
  // from_parameters validates every service knob and gives the mean needed
  // for the stability check.
  const auto model = queueing::ServiceTimeModel::from_parameters(service);
  const double rho = arrivals.mean_rate() * model.mean();
  if (rho >= 1.0) {
    throw std::domain_error{
        "SenderSimSpec: unstable queue (rho >= 1); the simulated backlog "
        "would grow without bound"};
  }
}

double SenderSimResult::utilization() const {
  return measured_time > 0.0 ? busy_time / measured_time : 0.0;
}

double SenderSimResult::state1_fraction() const {
  return chain_time > 0.0 ? state1_time / chain_time : 0.0;
}

double SenderSimResult::arrival_state1_fraction() const {
  const std::uint64_t total = arrivals_state1 + arrivals_state2;
  return total > 0
             ? static_cast<double>(arrivals_state1) /
                   static_cast<double>(total)
             : 0.0;
}

SenderSimResult simulate_sender(const SenderSimSpec& spec) {
  spec.validate();
  Sim sim{spec};
  return sim.run();
}

}  // namespace tv::sim
