// Packet-level simulation of the eavesdropper's frame-recovery process
// (Sections 4.3-4.3.4).
//
// The analytic chain composes three closed forms: per-packet decryption
// rate p_d = (1 - q) p_s, per-frame success via the binomial tail of
// eq. (20), and the GOP first-loss/reference-age chain of eqs. (21)-(27).
// This simulator starts one level below all of them: it draws each packet's
// capture (Bernoulli p_s) and encryption (Bernoulli q per the packet's
// frame class), recovers frames by the literal header-plus-sensitivity rule,
// walks GOPs maintaining the age of the last good reference frame, and
// accumulates distortion from the fitted distance curve — so the empirical
// frame success rates, first-loss occupancy and flow distortion jointly
// cross-check the whole eqs. 20-28 pipeline.
#pragma once

#include <cstdint>
#include <vector>

#include "distortion/inter_gop.hpp"
#include "util/stats.hpp"

namespace tv::sim {

struct EavesdropperSimSpec {
  int gop_size = 30;              ///< G: frames per IPP...P GOP.
  int n_gops = 10;                ///< N: GOPs per simulated flow.
  int repetitions = 200;          ///< independent flows.
  int i_packets_per_frame = 12;   ///< n for eq. (20), I-frames.
  int p_packets_per_frame = 3;
  double sensitivity_fraction = 0.6;  ///< s/(n-1), per motion level.
  double packet_success_rate = 0.9;   ///< channel p_s.
  double q_i = 0.0;  ///< fraction of I-frame packets encrypted (erasures).
  double q_p = 0.0;
  double base_mse = 0.0;           ///< coding distortion floor.
  double null_reference_mse = 0.0; ///< Case-3 no-reference distortion.
  double d_min = 0.0;              ///< intra-GOP endpoints of eq. (21).
  double d_max = 0.0;
  int age_cap_gops = 8;            ///< saturation cap on reference age.
  distortion::DistanceDistortion inter;  ///< fitted D(d) (Fig. 2).
  std::uint64_t seed = 1;

  void validate() const;  ///< throws std::invalid_argument.
};

struct EavesdropperSimResult {
  // Per-repetition empirical rates; their ci95 is honest (flows are iid).
  util::RunningStats i_frame_success;
  util::RunningStats p_frame_success;
  util::RunningStats flow_mse;   ///< per-flow mean GOP distortion, eq. (27).
  /// Reference-substitution distance of each concealed frame, averaged per
  /// flow (Fig. 2's x-axis as the simulation actually exercises it).
  util::RunningStats substitution_distance;

  /// Empirical GOP-state occupancy: slot 0 = intact GOP, slot i (1..G-1) =
  /// first unrecoverable P-frame is the i-th (eq. 22's events), slot G =
  /// I-frame unrecoverable.  Normalized over all simulated GOPs.
  std::vector<double> gop_state_pmf;

  std::uint64_t gops = 0;
  std::uint64_t frames = 0;

  [[nodiscard]] double mean_psnr_db() const;  ///< from flow_mse.mean().
};

/// Run the eavesdropper simulation.  Deterministic in spec.seed; each
/// repetition draws from its own derived RNG stream, so results are
/// independent of repetition interleaving.
[[nodiscard]] EavesdropperSimResult simulate_eavesdropper(
    const EavesdropperSimSpec& spec);

}  // namespace tv::sim
