// Grid validation of the analytic model against the discrete-event
// simulators (docs/validation.md).
//
// A ValidationSpec declares a cartesian grid over (lambda1, lambda2,
// policy, cipher).  For each cell the runner
//   * assembles the analytic inputs through the same core::calibration
//     structures the production predictor uses,
//   * solves the 2-MMPP/G/1 queue (queueing::MmppG1Solver) and the GOP
//     distortion chain (core::predict_distortion),
//   * runs the independent discrete-event sender and eavesdropper
//     simulators on the same parameters, and
//   * compares every simulated statistic against its analytic counterpart
//     under a configured acceptance band (z times the statistic's
//     confidence-interval halfwidth, plus a small absolute floor).
//
// Determinism contract (same as core::SweepRunner): per-cell seeds derive
// purely from the root seed via util::derive_seed, cells are emitted to the
// sink strictly in row-major cell order, and no output depends on thread
// scheduling — a run at --threads N is byte-identical to the serial run.
#pragma once

#include <cstdint>
#include <ostream>
#include <string>
#include <vector>

#include "core/device_profile.hpp"
#include "policy/policy.hpp"
#include "sim/eavesdropper_sim.hpp"
#include "sim/sender_sim.hpp"

namespace tv::util {
class ThreadPool;
}

namespace tv::sim {

/// Declarative validation grid over the paper's model axes.
struct ValidationSpec {
  // Grid axes, row-major cell order (lambda1, lambda2, policy, algorithm).
  std::vector<double> lambda1s{2400.0, 3200.0, 4000.0};
  std::vector<double> lambda2s{80.0, 160.0, 320.0};
  /// Policy shapes; each combines with every algorithm (the shape's own
  /// algorithm field is ignored), mirroring core::SweepSpec.  The defaults
  /// cover both a degenerate eavesdropper (I-frames encrypted: P_I = 0) and
  /// a live one (nothing encrypted).
  std::vector<policy::EncryptionPolicy> policies{
      {policy::Mode::kNone, crypto::Algorithm::kAes256, 0.0},
      {policy::Mode::kIFrames, crypto::Algorithm::kAes256, 0.0}};
  std::vector<crypto::Algorithm> algorithms{crypto::Algorithm::kAes256};

  // Shared traffic shape (Sections 4.2.1 and 6.1).
  double r12 = 50.0;  ///< p1: rate of leaving the I-burst state.
  double r21 = 5.0;   ///< p2.
  double p_i = 0.15;  ///< fraction of packets belonging to I-frames.
  double mean_i_payload = 1200.0;  ///< bytes per I-frame packet.
  double mean_p_payload = 900.0;
  int i_packets_per_frame = 12;
  int p_packets_per_frame = 3;

  // Service-side knobs shared by every cell; encryption means/jitter come
  // from the device profile per cell (they depend on the cipher axis).
  core::DeviceProfile device = core::samsung_galaxy_s2();
  double tx_i_mean = 1.2e-3;  ///< mu_t,I (s), eq. (16).
  double tx_i_stddev = 1.2e-4;
  double tx_p_mean = 0.8e-3;
  double tx_p_stddev = 0.8e-4;
  double mac_success_prob = 0.9;  ///< p_s of eq. (6).
  double backoff_rate = 3000.0;   ///< lambda_b of eq. (7).

  // Eavesdropper / distortion side (Sections 4.3-4.3.4).
  int gop_size = 30;
  int n_gops = 10;
  int eavesdropper_repetitions = 400;  ///< simulated flows per cell.
  double sensitivity_fraction = 0.6;
  double packet_success_rate = 0.9;  ///< channel p_s at the eavesdropper.
  double base_mse = 4.0;
  double null_reference_mse = 900.0;
  /// Fitted D(d); defaults to a representative concave-increasing curve.
  distortion::DistanceDistortion inter{
      util::Polynomial{{0.0, 14.0, -0.15}}, 30.0};
  int age_cap_gops = 8;

  // Simulation effort and acceptance.
  std::uint64_t events = 400000;  ///< measured sender packets per cell.
  std::uint64_t warmup = 40000;
  std::uint64_t batches = 200;    ///< batch-mean batches for the E[W] CI.
  /// Acceptance multiplier on each statistic's CI halfwidth.  3 gives a
  /// per-check false-alarm rate well under 1e-3 even with the residual
  /// correlation between batch means.
  double z = 3.0;
  std::uint64_t seed = 1;
  /// Optional per-packet stage tracing for the sender simulator: service
  /// events are stamped with the cell index (in the TraceEvent repetition
  /// field) and forwarded to this sink.  A traced run executes its cells
  /// serially so the event stream is deterministic.
  core::TraceSink* trace = nullptr;

  /// Throws std::invalid_argument on empty axes or out-of-range knobs.
  void validate() const;
  [[nodiscard]] std::size_t cell_count() const;
};

/// One fully-resolved grid point.
struct ValidationCell {
  std::size_t index = 0;  ///< row-major position in the grid.
  double lambda1 = 0.0;
  double lambda2 = 0.0;
  policy::EncryptionPolicy policy;  ///< algorithm axis already applied.
  std::uint64_t seed = 0;           ///< derive_seed(spec.seed, index).
};

/// Expand the grid (row-major, with derived seeds).  Pure.
[[nodiscard]] std::vector<ValidationCell> enumerate_cells(
    const ValidationSpec& spec);

/// One simulated-vs-analytic comparison.
struct ValidationCheck {
  std::string name;
  double simulated = 0.0;
  double analytic = 0.0;
  double tolerance = 0.0;  ///< acceptance band halfwidth.
  bool ok = false;
};

struct ValidationCellResult {
  ValidationCell cell;
  SenderSimResult sender;
  EavesdropperSimResult eavesdropper;

  // Analytic counterparts.
  double analytic_wait = 0.0;          ///< E[W], eq. (19) machinery.
  double analytic_wait_state1 = 0.0;   ///< E[W | arrival in state i].
  double analytic_wait_state2 = 0.0;
  double analytic_utilization = 0.0;
  double analytic_state1_fraction = 0.0;          ///< pi_1, eq. (2).
  double analytic_arrival_state1_fraction = 0.0;  ///< pi_1 l1 / lbar.
  double analytic_service_mean = 0.0;
  double analytic_i_frame_success = 0.0;  ///< eq. (20).
  double analytic_p_frame_success = 0.0;
  double analytic_flow_mse = 0.0;         ///< eq. (27).
  std::vector<double> analytic_gop_state_pmf;  ///< eq. (22) occupancy.

  std::vector<ValidationCheck> checks;
  [[nodiscard]] bool passed() const;
};

/// Consumer of validation results; calls arrive strictly in cell order
/// (same contract as core::ResultSink).
class ValidationSink {
 public:
  virtual ~ValidationSink() = default;
  virtual void begin(const ValidationSpec& /*spec*/) {}
  virtual void cell(const ValidationCellResult& result) = 0;
  virtual void end() {}
};

/// Human-readable aligned table, one row per cell.
class ValidationTableSink : public ValidationSink {
 public:
  explicit ValidationTableSink(std::ostream& out) : out_(out) {}
  void begin(const ValidationSpec& spec) override;
  void cell(const ValidationCellResult& result) override;

 private:
  std::ostream& out_;
};

/// One JSON object per cell per line at %.17g, byte-comparable across runs
/// and thread counts.
class ValidationJsonlSink : public ValidationSink {
 public:
  explicit ValidationJsonlSink(std::ostream& out) : out_(out) {}
  void cell(const ValidationCellResult& result) override;

 private:
  std::ostream& out_;
};

/// In-memory sink for tests and programmatic consumers.
class ValidationCollectSink : public ValidationSink {
 public:
  void cell(const ValidationCellResult& result) override {
    results.push_back(result);
  }
  std::vector<ValidationCellResult> results;
};

struct ValidationSummary {
  std::size_t cells = 0;
  std::size_t passed_cells = 0;
  std::size_t failed_checks = 0;
  unsigned threads = 1;
  double wall_s = 0.0;
  [[nodiscard]] bool all_passed() const { return passed_cells == cells; }
};

/// Runs one cell end to end (analytic solve + both simulators).  Pure in
/// (spec, cell); exposed for tests.
[[nodiscard]] ValidationCellResult run_validation_cell(
    const ValidationSpec& spec, const ValidationCell& cell);

/// Executes ValidationSpecs, optionally on a thread pool.
class ValidationRunner {
 public:
  /// `pool == nullptr` runs serially; any pool size yields byte-identical
  /// sink output.
  explicit ValidationRunner(util::ThreadPool* pool = nullptr)
      : pool_(pool) {}

  ValidationSummary run(const ValidationSpec& spec, ValidationSink& sink);

 private:
  util::ThreadPool* pool_;
};

}  // namespace tv::sim
