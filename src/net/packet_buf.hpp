// PacketBuf: one contiguous wire-format byte region per packet — the
// 12-byte RTP header immediately followed by the payload — allocated once
// from a util::Arena and viewed, never copied, from packetizer to socket.
//
// The object itself is two words (pointer + size over the wire region);
// it behaves as a container over the *payload* bytes, because that is
// what the crypto, codec and reassembly layers index, while the fault
// injector, pcap writer and live sender take wire() and get the already
// serialized datagram for free.  Invariants:
//
//  * wire()[0..12) is a valid serialized RtpHeader whose sequence,
//    timestamp and marker mirror the owning VideoPacket's metadata
//    (encrypt_selected flips the marker bit in place);
//  * payload() == wire().subview(RtpHeader::kSize);
//  * the bytes live in an Arena (or other caller-kept storage) that
//    outlives every view — packets are POD-copyable, copies alias.
#pragma once

#include <cstddef>
#include <cstdint>
#include <span>
#include <vector>

#include "net/rtp.hpp"
#include "util/arena.hpp"
#include "util/bytes.hpp"

namespace tv::net {

/// The fixed SSRC of the single simulated flow; pre-written into every
/// wire header at packetize time (pcap capture and live sender default).
inline constexpr std::uint32_t kDefaultSsrc = 0x74561D01;

class PacketBuf {
 public:
  using value_type = std::uint8_t;
  using iterator = std::uint8_t*;
  using const_iterator = const std::uint8_t*;

  PacketBuf() = default;

  /// Allocate a wire region for `payload_bytes` of payload and serialize
  /// `header` into its first RtpHeader::kSize bytes.  Payload bytes are
  /// uninitialized.
  static PacketBuf allocate(util::Arena& arena, const RtpHeader& header,
                            std::size_t payload_bytes) {
    PacketBuf buf;
    buf.wire_ = util::ByteView{
        arena.allocate(RtpHeader::kSize + payload_bytes, /*align=*/1),
        RtpHeader::kSize + payload_bytes};
    (void)header.write_to(buf.wire_);
    return buf;
  }

  /// Adopt an existing wire region (>= RtpHeader::kSize bytes already
  /// holding a serialized header) without writing anything.
  static PacketBuf from_wire(util::ByteView wire) {
    PacketBuf buf;
    buf.wire_ = wire;
    return buf;
  }

  /// The full datagram as serialized on the wire: header + payload.
  [[nodiscard]] util::ByteView wire() const { return wire_; }
  /// The payload region (what size(), begin() etc. address).
  [[nodiscard]] util::ByteView payload() const {
    return wire_.empty() ? util::ByteView{} : wire_.subview(RtpHeader::kSize);
  }
  [[nodiscard]] util::ByteView header_bytes() const {
    return wire_.empty() ? util::ByteView{}
                         : wire_.first(RtpHeader::kSize);
  }

  /// Flip the RTP marker bit in the serialized header (encryption state).
  void set_marker(bool marker) {
    if (wire_.empty()) return;
    if (marker) {
      wire_[1] |= std::uint8_t{0x80};
    } else {
      wire_[1] &= std::uint8_t{0x7f};
    }
  }

  // Container-over-payload API (what legacy `packet.payload` call sites
  // use: sizes, iteration, indexing, equality against byte vectors).
  [[nodiscard]] std::size_t size() const { return payload().size(); }
  [[nodiscard]] bool empty() const { return payload().empty(); }
  [[nodiscard]] std::uint8_t* data() const { return payload().data(); }
  [[nodiscard]] iterator begin() const { return payload().begin(); }
  [[nodiscard]] iterator end() const { return payload().end(); }
  std::uint8_t& operator[](std::size_t i) const { return payload()[i]; }
  [[nodiscard]] std::uint8_t& front() const { return payload().front(); }
  [[nodiscard]] std::uint8_t& back() const { return payload().back(); }

  operator std::span<std::uint8_t>() const { return payload(); }  // NOLINT
  operator std::span<const std::uint8_t>() const {  // NOLINT
    return payload();
  }

  /// Deep payload-byte equality (tests compare packet payloads).
  friend bool operator==(const PacketBuf& a, const PacketBuf& b) {
    return a.payload() == b.payload();
  }
  friend bool operator==(const PacketBuf& a,
                         const std::vector<std::uint8_t>& b) {
    return a.payload() == b;
  }
  friend bool operator==(const std::vector<std::uint8_t>& a,
                         const PacketBuf& b) {
    return b.payload() == a;
  }

 private:
  util::ByteView wire_;
};

}  // namespace tv::net
