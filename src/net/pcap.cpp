#include "net/pcap.hpp"

#include <cmath>
#include <fstream>
#include <stdexcept>

#include "net/rtp.hpp"

namespace tv::net {

namespace {

void put_u16be(std::vector<std::uint8_t>& out, std::uint16_t v) {
  out.push_back(static_cast<std::uint8_t>(v >> 8));
  out.push_back(static_cast<std::uint8_t>(v & 0xff));
}

void put_u32be(std::vector<std::uint8_t>& out, std::uint32_t v) {
  out.push_back(static_cast<std::uint8_t>(v >> 24));
  out.push_back(static_cast<std::uint8_t>((v >> 16) & 0xff));
  out.push_back(static_cast<std::uint8_t>((v >> 8) & 0xff));
  out.push_back(static_cast<std::uint8_t>(v & 0xff));
}

void put_u16le(std::ostream& out, std::uint16_t v) {
  const char bytes[2] = {static_cast<char>(v & 0xff),
                         static_cast<char>(v >> 8)};
  out.write(bytes, 2);
}

void put_u32le(std::ostream& out, std::uint32_t v) {
  const char bytes[4] = {
      static_cast<char>(v & 0xff), static_cast<char>((v >> 8) & 0xff),
      static_cast<char>((v >> 16) & 0xff), static_cast<char>(v >> 24)};
  out.write(bytes, 4);
}

// RFC 1071 checksum over a byte span (IPv4 header checksum).
std::uint16_t internet_checksum(const std::uint8_t* data, std::size_t len) {
  std::uint32_t sum = 0;
  for (std::size_t i = 0; i + 1 < len; i += 2) {
    sum += static_cast<std::uint32_t>(data[i]) << 8 | data[i + 1];
  }
  if (len % 2 == 1) sum += static_cast<std::uint32_t>(data[len - 1]) << 8;
  while (sum >> 16) sum = (sum & 0xffff) + (sum >> 16);
  return static_cast<std::uint16_t>(~sum);
}

}  // namespace

std::vector<std::uint8_t> wire_frame(const VideoPacket& packet,
                                     const CaptureEndpoints& endpoints) {
  // Ethernet II: dst MAC, src MAC, ethertype IPv4.  Built in one shot — two
  // consecutive range-inserts here trip a GCC 12 -Wstringop-overflow false
  // positive at -O3 (the optimizer invents a 6-byte allocation).
  std::vector<std::uint8_t> frame = {0x02, 0x00, 0x00, 0x00, 0x00, 0x01,
                                     0x02, 0x00, 0x00, 0x00, 0x00, 0x02,
                                     0x08, 0x00};
  frame.reserve(14 + 20 + 8 + RtpHeader::kSize + packet.payload.size());

  // IPv4 header (20 bytes, no options).
  const std::size_t ip_begin = frame.size();
  const auto udp_len =
      static_cast<std::uint16_t>(8 + RtpHeader::kSize + packet.payload.size());
  frame.push_back(0x45);  // version 4, IHL 5.
  frame.push_back(0x00);  // DSCP/ECN.
  put_u16be(frame, static_cast<std::uint16_t>(20 + udp_len));
  put_u16be(frame, packet.sequence);  // identification: reuse RTP seq.
  put_u16be(frame, 0x4000);           // don't fragment.
  frame.push_back(64);                // TTL.
  frame.push_back(17);                // protocol UDP.
  put_u16be(frame, 0);                // checksum placeholder.
  put_u32be(frame, endpoints.src_ip);
  put_u32be(frame, endpoints.dst_ip);
  const std::uint16_t csum = internet_checksum(&frame[ip_begin], 20);
  frame[ip_begin + 10] = static_cast<std::uint8_t>(csum >> 8);
  frame[ip_begin + 11] = static_cast<std::uint8_t>(csum & 0xff);

  // UDP header (checksum 0 = unused, legal for IPv4).
  put_u16be(frame, endpoints.src_port);
  put_u16be(frame, endpoints.dst_port);
  put_u16be(frame, udp_len);
  put_u16be(frame, 0);

  // RTP header + payload (the real bytes, encrypted or not).
  RtpHeader rtp;
  rtp.marker = packet.encrypted;
  rtp.sequence_number = packet.sequence;
  rtp.timestamp = packet.timestamp;
  rtp.ssrc = 0x74561D01;  // fixed SSRC for the single simulated flow.
  const auto rtp_bytes = rtp.serialize();
  frame.insert(frame.end(), rtp_bytes.begin(), rtp_bytes.end());
  frame.insert(frame.end(), packet.payload.begin(), packet.payload.end());
  return frame;
}

std::size_t write_pcap(std::ostream& out,
                       const std::vector<CapturedPacket>& packets,
                       const CaptureEndpoints& endpoints) {
  // Global header: magic (microsecond), v2.4, LINKTYPE_ETHERNET.
  // Written even for an empty capture list: a header-only pcap is the
  // valid "heard nothing" capture, exactly what tcpdump produces.
  put_u32le(out, 0xa1b2c3d4);
  put_u16le(out, 2);
  put_u16le(out, 4);
  put_u32le(out, 0);      // thiszone.
  put_u32le(out, 0);      // sigfigs.
  put_u32le(out, 65535);  // snaplen.
  put_u32le(out, 1);      // LINKTYPE_ETHERNET.

  std::size_t clamped = 0;
  double previous_ts = 0.0;
  for (const CapturedPacket& cap : packets) {
    if (cap.packet == nullptr) {
      throw std::invalid_argument{"write_pcap: null packet"};
    }
    const auto frame = wire_frame(*cap.packet, endpoints);
    // Clamp timestamps that would corrupt the capture: negative times
    // underflow the unsigned fields, and records running backwards make
    // readers mis-sort or reject the file.
    double ts = cap.timestamp_s;
    if (!(ts >= previous_ts)) {  // also catches NaN.
      ts = previous_ts;
      ++clamped;
    }
    previous_ts = ts;
    const auto secs = static_cast<std::uint32_t>(ts);
    auto usecs = static_cast<std::uint32_t>(
        std::llround((ts - static_cast<double>(secs)) * 1e6));
    if (usecs >= 1000000u) usecs = 999999u;
    put_u32le(out, secs);
    put_u32le(out, usecs);
    put_u32le(out, static_cast<std::uint32_t>(frame.size()));
    put_u32le(out, static_cast<std::uint32_t>(frame.size()));
    out.write(reinterpret_cast<const char*>(frame.data()),
              static_cast<std::streamsize>(frame.size()));
  }
  if (!out) throw std::runtime_error{"write_pcap: stream failure"};
  return clamped;
}

std::size_t write_pcap_file(const std::string& path,
                            const std::vector<CapturedPacket>& packets,
                            const CaptureEndpoints& endpoints) {
  std::ofstream out{path, std::ios::binary};
  if (!out) throw std::runtime_error{"write_pcap_file: cannot open " + path};
  return write_pcap(out, packets, endpoints);
}

std::vector<CapturedPacket> capture_of(
    const std::vector<VideoPacket>& packets,
    const std::vector<bool>& captured,
    const std::vector<double>& timestamps) {
  if (captured.size() != packets.size() ||
      timestamps.size() != packets.size()) {
    throw std::invalid_argument{"capture_of: size mismatch"};
  }
  std::vector<CapturedPacket> out;
  for (std::size_t i = 0; i < packets.size(); ++i) {
    if (captured[i]) out.push_back({timestamps[i], &packets[i]});
  }
  return out;
}

}  // namespace tv::net
