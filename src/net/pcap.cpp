#include "net/pcap.hpp"

#include <cmath>
#include <fstream>
#include <istream>
#include <stdexcept>

#include "net/rtp.hpp"

namespace tv::net {

namespace {

void put_u16be(std::vector<std::uint8_t>& out, std::uint16_t v) {
  out.push_back(static_cast<std::uint8_t>(v >> 8));
  out.push_back(static_cast<std::uint8_t>(v & 0xff));
}

void put_u32be(std::vector<std::uint8_t>& out, std::uint32_t v) {
  out.push_back(static_cast<std::uint8_t>(v >> 24));
  out.push_back(static_cast<std::uint8_t>((v >> 16) & 0xff));
  out.push_back(static_cast<std::uint8_t>((v >> 8) & 0xff));
  out.push_back(static_cast<std::uint8_t>(v & 0xff));
}

void put_u16le(std::ostream& out, std::uint16_t v) {
  const char bytes[2] = {static_cast<char>(v & 0xff),
                         static_cast<char>(v >> 8)};
  out.write(bytes, 2);
}

void put_u32le(std::ostream& out, std::uint32_t v) {
  const char bytes[4] = {
      static_cast<char>(v & 0xff), static_cast<char>((v >> 8) & 0xff),
      static_cast<char>((v >> 16) & 0xff), static_cast<char>(v >> 24)};
  out.write(bytes, 4);
}

// RFC 1071 checksum over a byte span (IPv4 header checksum).
std::uint16_t internet_checksum(const std::uint8_t* data, std::size_t len) {
  std::uint32_t sum = 0;
  for (std::size_t i = 0; i + 1 < len; i += 2) {
    sum += static_cast<std::uint32_t>(data[i]) << 8 | data[i + 1];
  }
  if (len % 2 == 1) sum += static_cast<std::uint32_t>(data[len - 1]) << 8;
  while (sum >> 16) sum = (sum & 0xffff) + (sum >> 16);
  return static_cast<std::uint16_t>(~sum);
}

/// Ethernet II + IPv4 + UDP envelope around an RTP datagram's bytes,
/// rebuilt into `frame` (cleared first) so batch writers reuse one
/// buffer across records.  `ip_id` fills the IPv4 identification field.
void envelope_datagram_into(std::vector<std::uint8_t>& frame,
                            std::span<const std::uint8_t> rtp_datagram,
                            const CaptureEndpoints& endpoints,
                            std::uint16_t ip_id) {
  frame.clear();
  // Exactly one allocation, sized up front — the frame layout is fixed.
  frame.reserve(14 + 20 + 8 + rtp_datagram.size());
  // Ethernet II: dst MAC, src MAC, ethertype IPv4.  Built in one shot — two
  // consecutive range-inserts here trip a GCC 12 -Wstringop-overflow false
  // positive at -O3 (the optimizer invents a 6-byte allocation).
  frame.insert(frame.end(), {0x02, 0x00, 0x00, 0x00, 0x00, 0x01,
                             0x02, 0x00, 0x00, 0x00, 0x00, 0x02,
                             0x08, 0x00});

  // IPv4 header (20 bytes, no options).
  const std::size_t ip_begin = frame.size();
  const auto udp_len = static_cast<std::uint16_t>(8 + rtp_datagram.size());
  frame.push_back(0x45);  // version 4, IHL 5.
  frame.push_back(0x00);  // DSCP/ECN.
  put_u16be(frame, static_cast<std::uint16_t>(20 + udp_len));
  put_u16be(frame, ip_id);
  put_u16be(frame, 0x4000);  // don't fragment.
  frame.push_back(64);       // TTL.
  frame.push_back(17);       // protocol UDP.
  put_u16be(frame, 0);       // checksum placeholder.
  put_u32be(frame, endpoints.src_ip);
  put_u32be(frame, endpoints.dst_ip);
  const std::uint16_t csum = internet_checksum(&frame[ip_begin], 20);
  frame[ip_begin + 10] = static_cast<std::uint8_t>(csum >> 8);
  frame[ip_begin + 11] = static_cast<std::uint8_t>(csum & 0xff);

  // UDP header (checksum 0 = unused, legal for IPv4).
  put_u16be(frame, endpoints.src_port);
  put_u16be(frame, endpoints.dst_port);
  put_u16be(frame, udp_len);
  put_u16be(frame, 0);

  frame.insert(frame.end(), rtp_datagram.begin(), rtp_datagram.end());
}

std::vector<std::uint8_t> envelope_datagram(
    std::span<const std::uint8_t> rtp_datagram,
    const CaptureEndpoints& endpoints, std::uint16_t ip_id) {
  std::vector<std::uint8_t> frame;
  envelope_datagram_into(frame, rtp_datagram, endpoints, ip_id);
  return frame;
}

void write_global_header(std::ostream& out) {
  // Magic (microsecond, little-endian), v2.4, LINKTYPE_ETHERNET.  Written
  // even for an empty capture list: a header-only pcap is the valid "heard
  // nothing" capture, exactly what tcpdump produces.
  put_u32le(out, 0xa1b2c3d4);
  put_u16le(out, 2);
  put_u16le(out, 4);
  put_u32le(out, 0);             // thiszone.
  put_u32le(out, 0);             // sigfigs.
  put_u32le(out, kPcapSnapLen);  // snaplen.
  put_u32le(out, 1);             // LINKTYPE_ETHERNET.
}

/// Write one record; clamps the timestamp monotone (against *previous_ts)
/// and the captured length to the snaplen.  Returns how many clamps the
/// record needed (0, 1 or 2) so callers can flag a suspect capture.
std::size_t write_record(std::ostream& out,
                         std::span<const std::uint8_t> frame,
                         double timestamp_s, double* previous_ts) {
  std::size_t clamped = 0;
  // Clamp timestamps that would corrupt the capture: negative times
  // underflow the unsigned fields, and records running backwards make
  // readers mis-sort or reject the file.
  double ts = timestamp_s;
  if (!(ts >= *previous_ts)) {  // also catches NaN.
    ts = *previous_ts;
    ++clamped;
  }
  *previous_ts = ts;
  const auto secs = static_cast<std::uint32_t>(ts);
  auto usecs = static_cast<std::uint32_t>(
      std::llround((ts - static_cast<double>(secs)) * 1e6));
  if (usecs >= 1000000u) usecs = 999999u;
  // Clamp-and-warn instead of emitting incl_len > snaplen: readers are
  // entitled to reject such a record outright.
  auto incl_len = static_cast<std::uint32_t>(frame.size());
  if (incl_len > kPcapSnapLen) {
    incl_len = kPcapSnapLen;
    ++clamped;
  }
  put_u32le(out, secs);
  put_u32le(out, usecs);
  put_u32le(out, incl_len);
  put_u32le(out, static_cast<std::uint32_t>(frame.size()));  // orig_len.
  out.write(reinterpret_cast<const char*>(frame.data()),
            static_cast<std::streamsize>(incl_len));
  return clamped;
}

}  // namespace

std::vector<std::uint8_t> wire_frame(const VideoPacket& packet,
                                     const CaptureEndpoints& endpoints) {
  // The packet's wire image (RTP header + payload) is already contiguous
  // in its arena — envelope it directly, no intermediate datagram.
  return envelope_datagram(packet.payload.wire(), endpoints,
                           packet.sequence);
}

std::span<const std::uint8_t> wire_frame(const VideoPacket& packet,
                                         const CaptureEndpoints& endpoints,
                                         std::vector<std::uint8_t>& out) {
  envelope_datagram_into(out, packet.payload.wire(), endpoints,
                         packet.sequence);
  return out;
}

std::size_t write_pcap(std::ostream& out,
                       const std::vector<CapturedPacket>& packets,
                       const CaptureEndpoints& endpoints) {
  write_global_header(out);
  std::size_t clamped = 0;
  double previous_ts = 0.0;
  std::vector<std::uint8_t> scratch;  // one frame buffer for every record.
  for (const CapturedPacket& cap : packets) {
    if (cap.packet == nullptr) {
      throw std::invalid_argument{"write_pcap: null packet"};
    }
    const auto frame = wire_frame(*cap.packet, endpoints, scratch);
    clamped += write_record(out, frame, cap.timestamp_s, &previous_ts);
  }
  if (!out) throw std::runtime_error{"write_pcap: stream failure"};
  return clamped;
}

std::size_t write_pcap_file(const std::string& path,
                            const std::vector<CapturedPacket>& packets,
                            const CaptureEndpoints& endpoints) {
  std::ofstream out{path, std::ios::binary};
  if (!out) throw std::runtime_error{"write_pcap_file: cannot open " + path};
  return write_pcap(out, packets, endpoints);
}

std::size_t write_pcap_datagrams(std::ostream& out,
                                 const std::vector<RawCapture>& captures,
                                 const CaptureEndpoints& endpoints) {
  write_global_header(out);
  std::size_t clamped = 0;
  double previous_ts = 0.0;
  std::uint16_t fallback_id = 0;
  std::vector<std::uint8_t> scratch;  // one frame buffer for every record.
  for (const RawCapture& cap : captures) {
    const auto header = RtpHeader::try_parse(cap.datagram);
    const std::uint16_t ip_id =
        header ? header->sequence_number : fallback_id;
    ++fallback_id;
    envelope_datagram_into(scratch, cap.datagram, endpoints, ip_id);
    clamped += write_record(out, scratch, cap.timestamp_s, &previous_ts);
  }
  if (!out) throw std::runtime_error{"write_pcap_datagrams: stream failure"};
  return clamped;
}

std::size_t write_pcap_datagrams_file(const std::string& path,
                                      const std::vector<RawCapture>& captures,
                                      const CaptureEndpoints& endpoints) {
  std::ofstream out{path, std::ios::binary};
  if (!out) {
    throw std::runtime_error{"write_pcap_datagrams_file: cannot open " + path};
  }
  return write_pcap_datagrams(out, captures, endpoints);
}

std::vector<CapturedPacket> capture_of(
    const std::vector<VideoPacket>& packets,
    const std::vector<bool>& captured,
    const std::vector<double>& timestamps) {
  if (captured.size() != packets.size() ||
      timestamps.size() != packets.size()) {
    throw std::invalid_argument{"capture_of: size mismatch"};
  }
  std::vector<CapturedPacket> out;
  for (std::size_t i = 0; i < packets.size(); ++i) {
    if (!captured[i]) continue;
    out.push_back(CapturedPacket{timestamps[i], &packets[i]});
  }
  return out;
}

namespace {

/// Byte-order-aware field reads for the pcap reader.
std::uint32_t load_u32(const std::uint8_t* p, bool big_endian) {
  if (big_endian) {
    return (static_cast<std::uint32_t>(p[0]) << 24) |
           (static_cast<std::uint32_t>(p[1]) << 16) |
           (static_cast<std::uint32_t>(p[2]) << 8) |
           static_cast<std::uint32_t>(p[3]);
  }
  return (static_cast<std::uint32_t>(p[3]) << 24) |
         (static_cast<std::uint32_t>(p[2]) << 16) |
         (static_cast<std::uint32_t>(p[1]) << 8) |
         static_cast<std::uint32_t>(p[0]);
}

bool read_exact(std::istream& in, std::uint8_t* buf, std::size_t n) {
  in.read(reinterpret_cast<char*>(buf), static_cast<std::streamsize>(n));
  return static_cast<std::size_t>(in.gcount()) == n;
}

}  // namespace

PcapFile read_pcap(std::istream& in) {
  std::uint8_t header[24];
  if (!read_exact(in, header, sizeof header)) {
    throw std::runtime_error{"read_pcap: truncated global header"};
  }
  PcapFile file;
  // The magic doubles as the byte-order and timestamp-resolution marker:
  // written in the producer's native order, it reads as one of four values.
  const std::uint32_t magic_le = load_u32(header, /*big_endian=*/false);
  switch (magic_le) {
    case 0xa1b2c3d4: file.big_endian = false; break;
    case 0xd4c3b2a1: file.big_endian = true; break;
    case 0xa1b23c4d:
      file.big_endian = false;
      file.nanosecond_timestamps = true;
      break;
    case 0x4d3cb2a1:
      file.big_endian = true;
      file.nanosecond_timestamps = true;
      break;
    default:
      throw std::runtime_error{"read_pcap: unknown magic"};
  }
  file.snaplen = load_u32(header + 16, file.big_endian);
  file.link_type = load_u32(header + 20, file.big_endian);

  const double tick =
      file.nanosecond_timestamps ? 1e-9 : 1e-6;
  // Defensive ceiling on a single record: a corrupted length field must
  // not turn into a multi-gigabyte allocation.  Generous relative to any
  // real snaplen (tcpdump's maximum is 262144).
  constexpr std::uint32_t kMaxRecordBytes = 1u << 20;

  for (;;) {
    std::uint8_t rec[16];
    in.read(reinterpret_cast<char*>(rec), sizeof rec);
    const auto got = static_cast<std::size_t>(in.gcount());
    if (got == 0) break;  // clean end of capture.
    if (got != sizeof rec) {
      throw std::runtime_error{"read_pcap: truncated record header"};
    }
    const std::uint32_t secs = load_u32(rec, file.big_endian);
    const std::uint32_t frac = load_u32(rec + 4, file.big_endian);
    const std::uint32_t incl_len = load_u32(rec + 8, file.big_endian);
    const std::uint32_t orig_len = load_u32(rec + 12, file.big_endian);
    if (incl_len > kMaxRecordBytes) {
      throw std::runtime_error{"read_pcap: implausible record length"};
    }
    // Clamp-and-warn: a record longer than the declared snaplen is a
    // producer bug, but the bytes are present — keep them and count it.
    if (incl_len > file.snaplen) ++file.oversized_records;
    PcapRecord record;
    record.timestamp_s =
        static_cast<double>(secs) + static_cast<double>(frac) * tick;
    record.original_length = orig_len;
    record.frame.resize(incl_len);
    if (incl_len > 0 && !read_exact(in, record.frame.data(), incl_len)) {
      throw std::runtime_error{"read_pcap: truncated record body"};
    }
    file.records.push_back(std::move(record));
  }
  return file;
}

PcapFile read_pcap_file(const std::string& path) {
  std::ifstream in{path, std::ios::binary};
  if (!in) throw std::runtime_error{"read_pcap_file: cannot open " + path};
  return read_pcap(in);
}

std::vector<WireRtpPacket> extract_rtp(const PcapFile& capture) {
  std::vector<WireRtpPacket> out;
  for (const PcapRecord& record : capture.records) {
    const std::vector<std::uint8_t>& f = record.frame;
    // Ethernet II + minimal IPv4: enough bytes, IPv4 ethertype, proto UDP.
    if (f.size() < 14 + 20 + 8) continue;
    if (f[12] != 0x08 || f[13] != 0x00) continue;
    if ((f[14] >> 4) != 4) continue;
    const std::size_t ihl = static_cast<std::size_t>(f[14] & 0x0f) * 4;
    if (ihl < 20 || f.size() < 14 + ihl + 8) continue;
    if (f[14 + 9] != 17) continue;  // not UDP.
    const std::size_t udp_begin = 14 + ihl;
    const std::size_t udp_len =
        (static_cast<std::size_t>(f[udp_begin + 4]) << 8) | f[udp_begin + 5];
    if (udp_len < 8 || f.size() < udp_begin + udp_len) continue;
    const std::span<const std::uint8_t> payload{f.data() + udp_begin + 8,
                                                udp_len - 8};
    const auto header = RtpHeader::try_parse(payload);
    if (!header) continue;
    WireRtpPacket packet;
    packet.timestamp_s = record.timestamp_s;
    packet.header = *header;
    packet.payload.assign(payload.begin() + RtpHeader::kSize, payload.end());
    out.push_back(std::move(packet));
  }
  return out;
}

}  // namespace tv::net
