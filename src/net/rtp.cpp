#include "net/rtp.hpp"

#include <stdexcept>

namespace tv::net {

std::vector<std::uint8_t> RtpHeader::serialize() const {
  std::vector<std::uint8_t> out(kSize);
  out[0] = static_cast<std::uint8_t>(kVersion << 6);  // no padding/ext/CSRC.
  out[1] = static_cast<std::uint8_t>((marker ? 0x80 : 0x00) |
                                     (payload_type & 0x7f));
  out[2] = static_cast<std::uint8_t>(sequence_number >> 8);
  out[3] = static_cast<std::uint8_t>(sequence_number & 0xff);
  out[4] = static_cast<std::uint8_t>(timestamp >> 24);
  out[5] = static_cast<std::uint8_t>((timestamp >> 16) & 0xff);
  out[6] = static_cast<std::uint8_t>((timestamp >> 8) & 0xff);
  out[7] = static_cast<std::uint8_t>(timestamp & 0xff);
  out[8] = static_cast<std::uint8_t>(ssrc >> 24);
  out[9] = static_cast<std::uint8_t>((ssrc >> 16) & 0xff);
  out[10] = static_cast<std::uint8_t>((ssrc >> 8) & 0xff);
  out[11] = static_cast<std::uint8_t>(ssrc & 0xff);
  return out;
}

RtpHeader RtpHeader::parse(std::span<const std::uint8_t> bytes) {
  if (bytes.size() < kSize) {
    throw std::invalid_argument{"RtpHeader::parse: short buffer"};
  }
  if ((bytes[0] >> 6) != kVersion) {
    throw std::invalid_argument{"RtpHeader::parse: bad version"};
  }
  RtpHeader h;
  h.marker = (bytes[1] & 0x80) != 0;
  h.payload_type = bytes[1] & 0x7f;
  h.sequence_number =
      static_cast<std::uint16_t>((bytes[2] << 8) | bytes[3]);
  h.timestamp = (static_cast<std::uint32_t>(bytes[4]) << 24) |
                (static_cast<std::uint32_t>(bytes[5]) << 16) |
                (static_cast<std::uint32_t>(bytes[6]) << 8) |
                static_cast<std::uint32_t>(bytes[7]);
  h.ssrc = (static_cast<std::uint32_t>(bytes[8]) << 24) |
           (static_cast<std::uint32_t>(bytes[9]) << 16) |
           (static_cast<std::uint32_t>(bytes[10]) << 8) |
           static_cast<std::uint32_t>(bytes[11]);
  return h;
}

}  // namespace tv::net
