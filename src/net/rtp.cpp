#include "net/rtp.hpp"

#include <stdexcept>

namespace tv::net {

bool RtpHeader::write_to(std::span<std::uint8_t> out) const noexcept {
  if (out.size() < kSize) return false;
  out[0] = static_cast<std::uint8_t>((kVersion << 6) |
                                     (padding ? 0x20 : 0x00));  // no ext/CSRC.
  out[1] = static_cast<std::uint8_t>((marker ? 0x80 : 0x00) |
                                     (payload_type & 0x7f));
  out[2] = static_cast<std::uint8_t>(sequence_number >> 8);
  out[3] = static_cast<std::uint8_t>(sequence_number & 0xff);
  out[4] = static_cast<std::uint8_t>(timestamp >> 24);
  out[5] = static_cast<std::uint8_t>((timestamp >> 16) & 0xff);
  out[6] = static_cast<std::uint8_t>((timestamp >> 8) & 0xff);
  out[7] = static_cast<std::uint8_t>(timestamp & 0xff);
  out[8] = static_cast<std::uint8_t>(ssrc >> 24);
  out[9] = static_cast<std::uint8_t>((ssrc >> 16) & 0xff);
  out[10] = static_cast<std::uint8_t>((ssrc >> 8) & 0xff);
  out[11] = static_cast<std::uint8_t>(ssrc & 0xff);
  return true;
}

std::vector<std::uint8_t> RtpHeader::serialize() const {
  std::vector<std::uint8_t> out(kSize);
  (void)write_to(out);  // cannot fail: out is exactly kSize bytes.
  return out;
}

namespace {

/// Decode the fixed fields; the caller has already validated the
/// first byte (version / extension / CSRC count).
RtpHeader decode_fields(std::span<const std::uint8_t> bytes) {
  RtpHeader h;
  h.padding = (bytes[0] & 0x20) != 0;
  h.marker = (bytes[1] & 0x80) != 0;
  h.payload_type = bytes[1] & 0x7f;
  h.sequence_number =
      static_cast<std::uint16_t>((bytes[2] << 8) | bytes[3]);
  h.timestamp = (static_cast<std::uint32_t>(bytes[4]) << 24) |
                (static_cast<std::uint32_t>(bytes[5]) << 16) |
                (static_cast<std::uint32_t>(bytes[6]) << 8) |
                static_cast<std::uint32_t>(bytes[7]);
  h.ssrc = (static_cast<std::uint32_t>(bytes[8]) << 24) |
           (static_cast<std::uint32_t>(bytes[9]) << 16) |
           (static_cast<std::uint32_t>(bytes[10]) << 8) |
           static_cast<std::uint32_t>(bytes[11]);
  return h;
}

}  // namespace

RtpHeader RtpHeader::parse(std::span<const std::uint8_t> bytes) {
  if (bytes.size() < kSize) {
    throw std::invalid_argument{"RtpHeader::parse: short buffer"};
  }
  if ((bytes[0] >> 6) != kVersion) {
    throw std::invalid_argument{"RtpHeader::parse: bad version"};
  }
  // This type models the 12-byte fixed header only.  A nonzero CSRC
  // count or a header extension would shift the payload boundary, so
  // silently accepting them would mis-parse everything after the
  // header; reject instead of ignoring.
  if ((bytes[0] & 0x0f) != 0) {
    throw std::invalid_argument{"RtpHeader::parse: unsupported CSRC count"};
  }
  if ((bytes[0] & 0x10) != 0) {
    throw std::invalid_argument{"RtpHeader::parse: unsupported extension"};
  }
  return decode_fields(bytes);
}

std::optional<RtpHeader> RtpHeader::try_parse(
    std::span<const std::uint8_t> bytes) noexcept {
  if (bytes.size() < kSize) return std::nullopt;
  if ((bytes[0] >> 6) != kVersion) return std::nullopt;
  if ((bytes[0] & 0x1f) != 0) return std::nullopt;  // CSRC count or X bit.
  return decode_fields(bytes);
}

std::optional<std::size_t> rtp_unpadded_size(
    const RtpHeader& header, std::span<const std::uint8_t> payload) noexcept {
  if (!header.padding) return payload.size();
  if (payload.empty()) return std::nullopt;
  const std::size_t pad = payload.back();
  if (pad == 0 || pad > payload.size()) return std::nullopt;
  return payload.size() - pad;
}

bool rtp_write_pad_trailer(std::span<std::uint8_t> payload,
                           std::size_t content_size) noexcept {
  if (content_size >= payload.size()) return false;  // no room for a trailer.
  const std::size_t pad = payload.size() - content_size;
  if (pad > kMaxRtpPadding) return false;
  // Deterministic filler so padded wires are byte-reproducible across
  // runs; 0xA5 is nonzero so a mis-stripped trailer is visible in tests.
  for (std::size_t i = content_size; i + 1 < payload.size(); ++i) {
    payload[i] = 0xA5;
  }
  payload.back() = static_cast<std::uint8_t>(pad);
  return true;
}

}  // namespace tv::net
