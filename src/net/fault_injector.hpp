// Deterministic fault injection for the receive path.
//
// An open-WiFi eavesdropper (and, during fades, the legitimate receiver)
// sees a hostile version of the sender's stream: bit-corrupted payloads
// and headers, duplicated frames from MAC-level retransmissions, packets
// reordered by driver queues, and truncated captures.  The FaultInjector
// turns a clean packetized stream into exactly such a damaged datagram
// sequence, driven by a declarative FaultPlan and a single seed, so that
// every damaged trace is reproducible byte for byte.  Its output feeds
// tv::net::Receiver, which must survive all of it without throwing.
#pragma once

#include <cstdint>
#include <vector>

#include "net/packetizer.hpp"
#include "util/rng.hpp"

namespace tv::net {

/// What happened to one datagram (for the reproducible fault trace).
enum class FaultKind : std::uint8_t {
  kDrop,            ///< datagram never delivered.
  kCorruptHeader,   ///< bit flips inside the 12-byte RTP header.
  kCorruptPayload,  ///< bit flips inside the payload.
  kTruncate,        ///< datagram cut short (possibly below header size).
  kDuplicate,       ///< delivered twice.
  kReorder,         ///< displaced later in the delivery order.
};

[[nodiscard]] const char* to_string(FaultKind kind);

/// Declarative description of how hostile the path is.  Probabilities
/// are independent per datagram; several faults can hit the same one.
struct FaultPlan {
  double drop_prob = 0.0;
  double corrupt_header_prob = 0.0;
  double corrupt_payload_prob = 0.0;
  double truncate_prob = 0.0;
  double duplicate_prob = 0.0;
  double reorder_prob = 0.0;
  int max_bit_flips = 8;              ///< per corrupted payload.
  int max_reorder_displacement = 4;   ///< positions a packet may slip.

  void validate() const;  ///< throws std::invalid_argument on bad values.
};

/// One applied fault: which original packet, what was done, one detail
/// word (bit index for corruption, new length for truncation, new
/// position for reordering).
struct InjectedFault {
  FaultKind kind = FaultKind::kDrop;
  std::size_t packet_index = 0;
  std::uint32_t detail = 0;
};

/// The damaged stream: datagrams in delivery order, the original packet
/// index each one came from, and the full fault trace.
struct InjectionResult {
  std::vector<std::vector<std::uint8_t>> datagrams;
  std::vector<std::size_t> origins;   ///< parallel to `datagrams`.
  std::vector<InjectedFault> faults;  ///< in application order.
};

/// What apply_one did to a single datagram — the in-place counterpart of
/// the InjectionResult fault trace, reduced to what per-datagram callers
/// (the live proxy, the chaos sender) act on.
struct AppliedFaults {
  bool dropped = false;     ///< datagram must not be delivered.
  bool duplicated = false;  ///< deliver the (damaged) datagram twice.
  int damaged = 0;          ///< corrupt/truncate events applied in place.
};

class FaultInjector {
 public:
  FaultInjector(const FaultPlan& plan, std::uint64_t seed);

  /// Copy each packet's wire image (RTP header + payload, contiguous in
  /// its arena) and damage the stream per the plan.  Deterministic: same
  /// plan + seed + input => identical result, including the fault trace.
  [[nodiscard]] InjectionResult apply(
      const std::vector<VideoPacket>& packets);

  /// Damage an already-serialized datagram sequence (origins = index).
  [[nodiscard]] InjectionResult apply_raw(
      std::vector<std::vector<std::uint8_t>> datagrams);

  /// Damage one datagram in place — no per-call vector-of-vectors churn.
  /// Draws the RNG in exactly the order apply_raw would for a one-element
  /// batch, so a stream fed datagram-by-datagram (the live proxy) stays
  /// byte-identical with one fed as a batch.
  [[nodiscard]] AppliedFaults apply_one(std::vector<std::uint8_t>& datagram);

 private:
  /// Drop/corrupt/truncate/duplicate draws for one datagram (the
  /// per-datagram half of apply_raw); `index` labels the fault trace.
  AppliedFaults damage(std::vector<std::uint8_t>& d, std::size_t index,
                       std::vector<InjectedFault>* faults);

  FaultPlan plan_;
  util::Rng rng_;
};

}  // namespace tv::net
