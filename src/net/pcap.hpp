// Pcap capture writing — the tcpdump stand-in of Fig. 3.
//
// The paper's eavesdropper "overhears the transmission on the channel by
// using tcpdump on his rooted phone or laptop".  This writer emits the
// packets a node captured as a classic little-endian pcap file
// (LINKTYPE_ETHERNET) with synthesized Ethernet/IPv4/UDP framing around
// the real RTP payloads, so simulated captures open in
// Wireshark/tcpdump for inspection ("Decode As" RTP shows the marker-bit
// encryption flags).
#pragma once

#include <cstdint>
#include <iosfwd>
#include <optional>
#include <span>
#include <string>
#include <vector>

#include "net/packetizer.hpp"

namespace tv::net {

/// One captured packet with its capture timestamp.
struct CapturedPacket {
  double timestamp_s = 0.0;
  const VideoPacket* packet = nullptr;
};

/// Snap length declared in every capture this writer produces (tcpdump's
/// classic default).  Frames longer than this are clamped on write — the
/// captured prefix is kept, the original length recorded — and counted in
/// the writer's return value instead of silently producing a record whose
/// incl_len exceeds the declared snaplen (which readers may reject).
inline constexpr std::uint32_t kPcapSnapLen = 65535;

/// A raw overheard datagram (RTP header + payload as heard on the wire)
/// with its capture timestamp — what the live impairment proxy's
/// eavesdropper tap records before any reassembly.
struct RawCapture {
  double timestamp_s = 0.0;
  std::vector<std::uint8_t> datagram;
};

/// One record read back from a capture file.
struct PcapRecord {
  double timestamp_s = 0.0;
  std::uint32_t original_length = 0;  ///< orig_len field (pre-snap size).
  std::vector<std::uint8_t> frame;    ///< captured bytes (<= snaplen).
};

/// A parsed capture file.  The reader accepts all four classic magics:
/// little- and big-endian byte orders, microsecond (0xa1b2c3d4) and
/// nanosecond (0xa1b23c4d) timestamp resolutions.
struct PcapFile {
  bool big_endian = false;
  bool nanosecond_timestamps = false;
  std::uint32_t link_type = 0;
  std::uint32_t snaplen = 0;
  /// Records whose incl_len exceeded the declared snaplen.  Clamp-and-warn:
  /// the bytes are kept (the writer said they are there) and the count lets
  /// callers flag the producing tool instead of failing the whole read.
  std::size_t oversized_records = 0;
  std::vector<PcapRecord> records;
};

/// Parse a classic pcap stream/file.  Throws std::runtime_error on an
/// unknown magic, a truncated header or a truncated record body.
[[nodiscard]] PcapFile read_pcap(std::istream& in);
[[nodiscard]] PcapFile read_pcap_file(const std::string& path);

/// One RTP packet recovered from a capture's UDP payloads.
struct WireRtpPacket {
  double timestamp_s = 0.0;
  RtpHeader header;
  std::vector<std::uint8_t> payload;
};

/// Extract the RTP packets from an Ethernet/IPv4/UDP capture, skipping
/// frames that are not UDP or whose payload does not parse as a fixed RTP
/// header.  This is the offline half of the eavesdropper: score a capture
/// produced by the live proxy (or tcpdump) without the sockets.
[[nodiscard]] std::vector<WireRtpPacket> extract_rtp(const PcapFile& capture);

/// Addressing used when synthesizing the Ethernet/IP/UDP envelope.
struct CaptureEndpoints {
  std::uint32_t src_ip = 0xC0A80102;  ///< 192.168.1.2 (the phone).
  std::uint32_t dst_ip = 0xC0A80101;  ///< 192.168.1.1 (the server/AP).
  std::uint16_t src_port = 5004;
  std::uint16_t dst_port = 5004;
};

/// Write a pcap capture of the given packets.  Packets should be in
/// timestamp order (tcpdump writes what it hears, in order); an empty
/// list yields a valid, empty capture.  Timestamps that would make the
/// file invalid — negative, or running backwards past an earlier record
/// — are clamped (to zero / the previous record's time); the return
/// value is the number of records that needed clamping, so callers can
/// flag a suspect capture instead of silently shipping one tcpdump
/// rejects.
std::size_t write_pcap(std::ostream& out,
                       const std::vector<CapturedPacket>& packets,
                       const CaptureEndpoints& endpoints = {});
std::size_t write_pcap_file(const std::string& path,
                            const std::vector<CapturedPacket>& packets,
                            const CaptureEndpoints& endpoints = {});

/// Write a capture of raw overheard datagrams (each an RTP header +
/// payload as heard on the wire), synthesizing the same Ethernet/IPv4/UDP
/// envelope as write_pcap.  The IPv4 identification field reuses the RTP
/// sequence number when the datagram parses, else a running counter.
/// Same clamping contract (and return value) as write_pcap.
std::size_t write_pcap_datagrams(std::ostream& out,
                                 const std::vector<RawCapture>& captures,
                                 const CaptureEndpoints& endpoints = {});
std::size_t write_pcap_datagrams_file(const std::string& path,
                                      const std::vector<RawCapture>& captures,
                                      const CaptureEndpoints& endpoints = {});

/// Build the capture list for a node from a transfer: every packet whose
/// `captured[i]` flag is set, stamped with its completion time.
[[nodiscard]] std::vector<CapturedPacket> capture_of(
    const std::vector<VideoPacket>& packets,
    const std::vector<bool>& captured, const std::vector<double>& timestamps);

/// Serialize one packet's on-the-wire bytes (Ethernet + IPv4 + UDP + RTP +
/// payload) — also used by the pcap writer.  Single exact-size allocation:
/// the packet's contiguous wire image is enveloped directly.
[[nodiscard]] std::vector<std::uint8_t> wire_frame(
    const VideoPacket& packet, const CaptureEndpoints& endpoints);

/// Span-out overload: rebuild the frame into `out` (cleared first) so
/// batch writers reuse one buffer across records; returns a view of it.
std::span<const std::uint8_t> wire_frame(const VideoPacket& packet,
                                         const CaptureEndpoints& endpoints,
                                         std::vector<std::uint8_t>& out);

}  // namespace tv::net
