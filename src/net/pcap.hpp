// Pcap capture writing — the tcpdump stand-in of Fig. 3.
//
// The paper's eavesdropper "overhears the transmission on the channel by
// using tcpdump on his rooted phone or laptop".  This writer emits the
// packets a node captured as a classic little-endian pcap file
// (LINKTYPE_ETHERNET) with synthesized Ethernet/IPv4/UDP framing around
// the real RTP payloads, so simulated captures open in
// Wireshark/tcpdump for inspection ("Decode As" RTP shows the marker-bit
// encryption flags).
#pragma once

#include <cstdint>
#include <iosfwd>
#include <string>
#include <vector>

#include "net/packetizer.hpp"

namespace tv::net {

/// One captured packet with its capture timestamp.
struct CapturedPacket {
  double timestamp_s = 0.0;
  const VideoPacket* packet = nullptr;
};

/// Addressing used when synthesizing the Ethernet/IP/UDP envelope.
struct CaptureEndpoints {
  std::uint32_t src_ip = 0xC0A80102;  ///< 192.168.1.2 (the phone).
  std::uint32_t dst_ip = 0xC0A80101;  ///< 192.168.1.1 (the server/AP).
  std::uint16_t src_port = 5004;
  std::uint16_t dst_port = 5004;
};

/// Write a pcap capture of the given packets.  Packets should be in
/// timestamp order (tcpdump writes what it hears, in order); an empty
/// list yields a valid, empty capture.  Timestamps that would make the
/// file invalid — negative, or running backwards past an earlier record
/// — are clamped (to zero / the previous record's time); the return
/// value is the number of records that needed clamping, so callers can
/// flag a suspect capture instead of silently shipping one tcpdump
/// rejects.
std::size_t write_pcap(std::ostream& out,
                       const std::vector<CapturedPacket>& packets,
                       const CaptureEndpoints& endpoints = {});
std::size_t write_pcap_file(const std::string& path,
                            const std::vector<CapturedPacket>& packets,
                            const CaptureEndpoints& endpoints = {});

/// Build the capture list for a node from a transfer: every packet whose
/// `captured[i]` flag is set, stamped with its completion time.
[[nodiscard]] std::vector<CapturedPacket> capture_of(
    const std::vector<VideoPacket>& packets,
    const std::vector<bool>& captured, const std::vector<double>& timestamps);

/// Serialize one packet's on-the-wire bytes (Ethernet + IPv4 + UDP + RTP +
/// payload) — also used by the pcap writer.
[[nodiscard]] std::vector<std::uint8_t> wire_frame(
    const VideoPacket& packet, const CaptureEndpoints& endpoints);

}  // namespace tv::net
