#include "net/packetizer.hpp"

#include <algorithm>
#include <array>
#include <cstring>
#include <optional>
#include <stdexcept>

#include "crypto/ofb.hpp"

namespace tv::net {

void VideoPacket::allocate_payload(util::Arena& arena,
                                   std::span<const std::uint8_t> bytes) {
  payload = PacketBuf::allocate(arena, header(), bytes.size());
  if (!bytes.empty()) {
    std::memcpy(payload.data(), bytes.data(), bytes.size());
  }
}

void VideoPacket::allocate_payload(util::Arena& arena, std::size_t size,
                                   std::uint8_t fill) {
  payload = PacketBuf::allocate(arena, header(), size);
  if (size > 0) std::memset(payload.data(), fill, size);
}

std::vector<VideoPacket> packetize(const video::EncodedStream& stream,
                                   util::Arena& arena, std::size_t mtu,
                                   double fps) {
  if (mtu <= kIpUdpOverhead + RtpHeader::kSize) {
    throw std::invalid_argument{"packetize: mtu too small"};
  }
  const std::size_t payload_max = max_payload(mtu);
  std::vector<VideoPacket> packets;
  std::uint16_t seq = 0;
  for (const video::EncodedFrame& frame : stream.frames) {
    const std::size_t size = frame.data.size();
    const int fragments =
        static_cast<int>((size + payload_max - 1) / payload_max);
    for (int f = 0; f < fragments; ++f) {
      VideoPacket p;
      p.sequence = seq++;
      p.timestamp = static_cast<std::uint32_t>(
          static_cast<double>(frame.index) * 90000.0 / fps);
      p.frame_index = frame.index;
      p.fragment_index = f;
      p.fragment_count = fragments;
      p.byte_offset = static_cast<std::size_t>(f) * payload_max;
      p.is_i_frame = frame.is_i;
      const std::size_t begin = p.byte_offset;
      const std::size_t end = std::min(begin + payload_max, size);
      p.allocate_payload(
          arena, std::span<const std::uint8_t>{frame.data.data() + begin,
                                               end - begin});
      packets.push_back(p);
    }
  }
  return packets;
}

std::vector<VideoPacket> clone_packets(std::span<const VideoPacket> packets,
                                       util::Arena& arena) {
  std::vector<VideoPacket> clones;
  clones.reserve(packets.size());
  for (const VideoPacket& p : packets) {
    VideoPacket c = p;
    const util::ByteView wire = p.payload.wire();
    if (!wire.empty()) {
      std::uint8_t* bytes = arena.allocate(wire.size(), /*align=*/1);
      std::memcpy(bytes, wire.data(), wire.size());
      c.payload = PacketBuf::from_wire({bytes, wire.size()});
    }
    clones.push_back(c);
  }
  return clones;
}

void pad_to_bucket(std::vector<VideoPacket>& packets, util::Arena& arena,
                   std::size_t bucket, std::size_t mtu) {
  if (bucket == 0) return;
  if (bucket < 2 || bucket > kMaxRtpPadding + 1) {
    throw std::invalid_argument{
        "pad_to_bucket: bucket must be in [2, 256] (one-byte pad count)"};
  }
  const std::size_t payload_max = max_payload(mtu);
  for (VideoPacket& p : packets) {
    const std::size_t content = p.payload.size();
    if (content == 0) continue;
    const std::size_t target =
        std::min(((content + bucket - 1) / bucket) * bucket, payload_max);
    if (target <= content) continue;  // already on a boundary (or at MTU).
    RtpHeader header = p.header();
    header.padding = true;
    PacketBuf padded = PacketBuf::allocate(arena, header, target);
    std::memcpy(padded.data(), p.payload.data(), content);
    if (!rtp_write_pad_trailer(padded, content)) {
      throw std::logic_error{"pad_to_bucket: trailer write failed"};
    }
    p.pad_bytes = target - content;
    p.payload = padded;
  }
}

std::vector<std::vector<std::uint8_t>> packets_to_datagrams(
    std::span<const VideoPacket> packets) {
  std::vector<std::vector<std::uint8_t>> datagrams;
  datagrams.reserve(packets.size());
  for (const VideoPacket& p : packets) {
    const util::ByteView wire = p.payload.wire();
    datagrams.emplace_back(wire.begin(), wire.end());
  }
  return datagrams;
}

void encrypt_selected(std::vector<VideoPacket>& packets,
                      const std::vector<bool>& selected,
                      const crypto::BlockCipher& cipher,
                      std::span<const std::uint8_t> flow_iv) {
  if (selected.size() != packets.size()) {
    throw std::invalid_argument{"encrypt_selected: selection size mismatch"};
  }
  // One stream object for the whole pass: each segment re-seeds it with
  // its derived IV (OFB is per-segment by design, Section 5) without
  // reallocating the feedback/keystream buffers per packet.
  crypto::OfbStream stream{cipher};
  std::array<std::uint8_t, 16> iv{};
  const std::span<std::uint8_t> iv_span{iv.data(), cipher.block_size()};
  for (std::size_t i = 0; i < packets.size(); ++i) {
    if (!selected[i]) continue;
    VideoPacket& p = packets[i];
    crypto::segment_iv(cipher, flow_iv, p.sequence, iv_span);
    stream.reset(iv_span);
    stream.apply(p.payload);
    p.encrypted = true;
    p.payload.set_marker(true);
  }
}

void hide_wire_markers(std::vector<VideoPacket>& packets) {
  for (VideoPacket& p : packets) p.payload.set_marker(false);
}

EncryptionStats encryption_stats(const std::vector<VideoPacket>& packets) {
  EncryptionStats stats;
  for (const VideoPacket& p : packets) {
    ++stats.total_packets;
    stats.total_payload_bytes += p.payload.size();
    if (p.encrypted) {
      ++stats.encrypted_packets;
      stats.encrypted_payload_bytes += p.payload.size();
    }
  }
  return stats;
}

std::vector<video::ReceivedFrameData> reassemble(
    const std::vector<VideoPacket>& packets,
    const std::vector<bool>& delivered, int frame_count,
    const crypto::BlockCipher* cipher,
    std::span<const std::uint8_t> flow_iv) {
  if (delivered.size() != packets.size()) {
    throw std::invalid_argument{"reassemble: delivered size mismatch"};
  }
  // Frame sizes from fragment metadata.
  std::vector<std::size_t> frame_sizes(static_cast<std::size_t>(frame_count),
                                       0);
  for (const VideoPacket& p : packets) {
    if (p.frame_index < 0 || p.frame_index >= frame_count) {
      throw std::invalid_argument{"reassemble: frame index out of range"};
    }
    frame_sizes[static_cast<std::size_t>(p.frame_index)] =
        std::max(frame_sizes[static_cast<std::size_t>(p.frame_index)],
                 p.byte_offset + p.content_size());
  }
  std::vector<video::ReceivedFrameData> frames;
  frames.reserve(static_cast<std::size_t>(frame_count));
  for (int i = 0; i < frame_count; ++i) {
    frames.push_back(video::ReceivedFrameData::lost(
        frame_sizes[static_cast<std::size_t>(i)]));
  }
  std::optional<crypto::OfbStream> stream;
  std::array<std::uint8_t, 16> iv{};
  if (cipher != nullptr) stream.emplace(*cipher);
  std::vector<std::uint8_t> payload;
  for (std::size_t i = 0; i < packets.size(); ++i) {
    if (!delivered[i]) continue;
    const VideoPacket& p = packets[i];
    if (p.encrypted && cipher == nullptr) continue;  // erasure for snooper.
    payload.assign(p.payload.begin(), p.payload.end());
    if (p.encrypted) {
      const std::span<std::uint8_t> iv_span{iv.data(), cipher->block_size()};
      crypto::segment_iv(*cipher, flow_iv, p.sequence, iv_span);
      stream->reset(iv_span);
      stream->apply(payload);
    }
    // Keystreams cover the whole (padded) payload; only the content
    // bytes in front of the pad trailer are video data.
    payload.resize(p.content_size());
    auto& frame = frames[static_cast<std::size_t>(p.frame_index)];
    for (std::size_t b = 0; b < payload.size(); ++b) {
      frame.data[p.byte_offset + b] = payload[b];
      frame.byte_ok[p.byte_offset + b] = true;
    }
  }
  return frames;
}

}  // namespace tv::net
