#include "net/fault_injector.hpp"

#include <algorithm>
#include <stdexcept>
#include <utility>

namespace tv::net {

const char* to_string(FaultKind kind) {
  switch (kind) {
    case FaultKind::kDrop: return "drop";
    case FaultKind::kCorruptHeader: return "corrupt-header";
    case FaultKind::kCorruptPayload: return "corrupt-payload";
    case FaultKind::kTruncate: return "truncate";
    case FaultKind::kDuplicate: return "duplicate";
    case FaultKind::kReorder: return "reorder";
  }
  return "?";
}

void FaultPlan::validate() const {
  for (double p : {drop_prob, corrupt_header_prob, corrupt_payload_prob,
                   truncate_prob, duplicate_prob, reorder_prob}) {
    if (p < 0.0 || p > 1.0) {
      throw std::invalid_argument{
          "FaultPlan: probabilities must lie in [0, 1]"};
    }
  }
  if (max_bit_flips < 1) {
    throw std::invalid_argument{"FaultPlan: max_bit_flips must be >= 1"};
  }
  if (max_reorder_displacement < 1) {
    throw std::invalid_argument{
        "FaultPlan: max_reorder_displacement must be >= 1"};
  }
}

FaultInjector::FaultInjector(const FaultPlan& plan, std::uint64_t seed)
    : plan_(plan), rng_(seed) {
  plan_.validate();
}

InjectionResult FaultInjector::apply(
    const std::vector<VideoPacket>& packets) {
  return apply_raw(packets_to_datagrams(packets));
}

AppliedFaults FaultInjector::damage(std::vector<std::uint8_t>& d,
                                    std::size_t index,
                                    std::vector<InjectedFault>* faults) {
  AppliedFaults applied;
  if (rng_.bernoulli(plan_.drop_prob)) {
    if (faults != nullptr) faults->push_back({FaultKind::kDrop, index, 0});
    applied.dropped = true;
    return applied;
  }
  if (!d.empty() && rng_.bernoulli(plan_.corrupt_header_prob)) {
    const std::size_t header_bytes = std::min(d.size(), RtpHeader::kSize);
    const auto bit =
        static_cast<std::uint32_t>(rng_.uniform_int(header_bytes * 8));
    d[bit / 8] ^= static_cast<std::uint8_t>(1u << (bit % 8));
    if (faults != nullptr) {
      faults->push_back({FaultKind::kCorruptHeader, index, bit});
    }
    ++applied.damaged;
  }
  if (d.size() > RtpHeader::kSize &&
      rng_.bernoulli(plan_.corrupt_payload_prob)) {
    const std::size_t payload_bits = (d.size() - RtpHeader::kSize) * 8;
    const auto flips =
        1 + rng_.uniform_int(static_cast<std::uint64_t>(plan_.max_bit_flips));
    for (std::uint64_t f = 0; f < flips; ++f) {
      const auto bit = static_cast<std::uint32_t>(
          rng_.uniform_int(payload_bits));
      const std::size_t byte = RtpHeader::kSize + bit / 8;
      d[byte] ^= static_cast<std::uint8_t>(1u << (bit % 8));
      if (faults != nullptr) {
        faults->push_back({FaultKind::kCorruptPayload, index, bit});
      }
      ++applied.damaged;
    }
  }
  if (!d.empty() && rng_.bernoulli(plan_.truncate_prob)) {
    // Cut anywhere, including below the RTP header: the receiver must
    // treat a runt datagram as garbage, not crash on it.
    const auto new_len =
        static_cast<std::uint32_t>(rng_.uniform_int(d.size()));
    d.resize(new_len);
    if (faults != nullptr) {
      faults->push_back({FaultKind::kTruncate, index, new_len});
    }
    ++applied.damaged;
  }
  return applied;
}

AppliedFaults FaultInjector::apply_one(std::vector<std::uint8_t>& datagram) {
  AppliedFaults applied = damage(datagram, 0, nullptr);
  if (applied.dropped) return applied;  // nothing delivered: no more draws.
  applied.duplicated = rng_.bernoulli(plan_.duplicate_prob);
  // Reorder pass over the delivered singleton (or identical twin): the
  // content cannot change — both copies are byte-equal — but the draws
  // must happen so batch and per-datagram feeding share one RNG stream.
  const std::size_t delivered = applied.duplicated ? 2 : 1;
  for (std::size_t pos = 0; pos < delivered; ++pos) {
    if (!rng_.bernoulli(plan_.reorder_prob)) continue;
    const std::size_t room = delivered - 1 - pos;
    if (room == 0) continue;
    (void)rng_.uniform_int(std::min<std::uint64_t>(
        room, static_cast<std::uint64_t>(plan_.max_reorder_displacement)));
  }
  return applied;
}

InjectionResult FaultInjector::apply_raw(
    std::vector<std::vector<std::uint8_t>> datagrams) {
  InjectionResult result;
  result.datagrams.reserve(datagrams.size());
  result.origins.reserve(datagrams.size());

  for (std::size_t i = 0; i < datagrams.size(); ++i) {
    auto& d = datagrams[i];
    if (damage(d, i, &result.faults).dropped) continue;
    result.datagrams.push_back(d);
    result.origins.push_back(i);
    if (rng_.bernoulli(plan_.duplicate_prob)) {
      result.datagrams.push_back(std::move(d));
      result.origins.push_back(i);
      result.faults.push_back({FaultKind::kDuplicate, i, 0});
    }
  }

  // Reordering pass: displace marked datagrams later in delivery order.
  // Applied after drops/duplicates so displacement distances refer to
  // what is actually delivered.
  for (std::size_t pos = 0; pos < result.datagrams.size(); ++pos) {
    if (!rng_.bernoulli(plan_.reorder_prob)) continue;
    const std::size_t room = result.datagrams.size() - 1 - pos;
    if (room == 0) continue;
    const std::size_t shift =
        1 + rng_.uniform_int(std::min<std::uint64_t>(
                room, static_cast<std::uint64_t>(
                          plan_.max_reorder_displacement)));
    const std::size_t dest = pos + shift;
    std::rotate(result.datagrams.begin() + static_cast<std::ptrdiff_t>(pos),
                result.datagrams.begin() + static_cast<std::ptrdiff_t>(pos) + 1,
                result.datagrams.begin() + static_cast<std::ptrdiff_t>(dest) + 1);
    std::rotate(result.origins.begin() + static_cast<std::ptrdiff_t>(pos),
                result.origins.begin() + static_cast<std::ptrdiff_t>(pos) + 1,
                result.origins.begin() + static_cast<std::ptrdiff_t>(dest) + 1);
    result.faults.push_back({FaultKind::kReorder, result.origins[dest],
                             static_cast<std::uint32_t>(dest)});
  }
  return result;
}

}  // namespace tv::net
