// Fragmentation of encoded frames into RTP packets, selective encryption,
// and receiver/eavesdropper reassembly.
//
// This is the byte-level heart of Fig. 3: the sender fragments each encoded
// frame into MTU-sized RTP packets, encrypts the payloads selected by the
// active policy (OFB per packet, marker bit set), and transmits.  The
// legitimate receiver decrypts marked packets; the eavesdropper must treat
// them as erasures.
//
// Buffer ownership (docs/architecture.md "Buffer ownership"): a packet
// does not own its bytes.  packetize() serializes each packet's wire
// image — 12-byte RTP header immediately followed by the payload — into
// the caller's util::Arena exactly once; VideoPacket::payload is a
// PacketBuf view into that region.  Everything downstream (crypto,
// pipeline stages, fault injector, pcap, live sender) reads or rewrites
// those bytes in place; nothing re-serializes.  Copying a VideoPacket
// copies the view — use clone_packets() for an independent mutable copy
// (each experiment/flow encrypts its own clone).
#pragma once

#include <cstdint>
#include <optional>
#include <span>
#include <vector>

#include "crypto/block_cipher.hpp"
#include "net/packet_buf.hpp"
#include "net/rtp.hpp"
#include "util/arena.hpp"
#include "video/codec.hpp"

namespace tv::net {

/// One RTP packet of video payload plus the metadata the simulators and
/// models need (frame type, fragment position, encryption state).
struct VideoPacket {
  std::uint16_t sequence = 0;   ///< RTP sequence number.
  std::uint32_t timestamp = 0;  ///< RTP timestamp (90 kHz).
  int frame_index = 0;
  int fragment_index = 0;       ///< position of this fragment in its frame.
  int fragment_count = 0;       ///< total fragments of the frame.
  std::size_t byte_offset = 0;  ///< payload's offset within the frame data.
  bool is_i_frame = false;
  bool encrypted = false;       ///< RTP marker bit (mirrored in the wire).
  std::size_t pad_bytes = 0;    ///< RFC 3550 pad trailer length appended by
                                ///< pad_to_bucket (0 = unpadded); the wire
                                ///< header's P bit mirrors pad_bytes > 0.
  PacketBuf payload;            ///< view into arena-owned wire bytes.

  /// Bytes on the wire including RTP + UDP + IPv4 headers.
  [[nodiscard]] std::size_t wire_bytes() const {
    return payload.size() + RtpHeader::kSize + kIpUdpOverhead;
  }

  /// The serialized RTP header this packet's metadata describes (what
  /// allocate_payload writes into the wire region).
  [[nodiscard]] RtpHeader header() const {
    RtpHeader h;
    h.marker = encrypted;
    h.padding = pad_bytes > 0;
    h.sequence_number = sequence;
    h.timestamp = timestamp;
    h.ssrc = kDefaultSsrc;
    return h;
  }

  /// Payload bytes that are video content (padding excluded).
  [[nodiscard]] std::size_t content_size() const {
    return payload.size() - pad_bytes;
  }

  /// Allocate this packet's wire region from `arena` and fill the payload
  /// with `bytes` (or `fill`).  Serializes header() into the region;
  /// call after the metadata fields are set.
  void allocate_payload(util::Arena& arena,
                        std::span<const std::uint8_t> bytes);
  void allocate_payload(util::Arena& arena, std::size_t size,
                        std::uint8_t fill = 0);
};

/// Split every frame of an encoded stream into RTP packets with payloads of
/// at most max_payload(mtu) bytes, serialized wire-format into `arena`.
/// Timestamps advance at 90 kHz / fps.
[[nodiscard]] std::vector<VideoPacket> packetize(
    const video::EncodedStream& stream, util::Arena& arena,
    std::size_t mtu = kDefaultMtu, double fps = 30.0);

/// An independent mutable copy of a packet stream: fresh wire bytes in
/// `arena`, same metadata.  Experiments clone the shared workload before
/// encrypting so per-flow keystreams never alias.
[[nodiscard]] std::vector<VideoPacket> clone_packets(
    std::span<const VideoPacket> packets, util::Arena& arena);

/// Traffic-shaping countermeasure (docs/adversary.md): grow every payload
/// to the next multiple of `bucket` bytes with an RFC 3550 pad trailer,
/// re-serializing the affected wire regions into `arena`.  Targets are
/// clamped to max_payload(mtu); payloads already on a bucket boundary (or
/// empty) stay untouched.  Call *before* encrypt_selected so the trailer —
/// and with it the true length — is hidden inside the ciphertext of
/// encrypted packets.  bucket == 0 is a no-op; buckets above
/// kMaxRtpPadding + 1 throw (the one-byte pad count cannot express them).
void pad_to_bucket(std::vector<VideoPacket>& packets, util::Arena& arena,
                   std::size_t bucket, std::size_t mtu = kDefaultMtu);

/// Owned wire datagrams (RTP header + payload) for each packet, each
/// allocated at exactly its final size — no growth-by-insert.  The fault
/// injector and offline capture tools damage or archive these copies
/// without touching the packets' arena-backed originals.
[[nodiscard]] std::vector<std::vector<std::uint8_t>> packets_to_datagrams(
    std::span<const VideoPacket> packets);

/// Encrypt the payloads of the packets selected by `selected` (same length
/// as `packets`) with per-packet OFB keystreams derived from `flow_iv` and
/// the RTP sequence number, and set their marker bits — in place, both in
/// the metadata and in the serialized wire header.
void encrypt_selected(std::vector<VideoPacket>& packets,
                      const std::vector<bool>& selected,
                      const crypto::BlockCipher& cipher,
                      std::span<const std::uint8_t> flow_iv);

/// Marker-hiding countermeasure: clear the wire marker bit on every
/// packet while leaving the `encrypted` metadata intact.  The legitimate
/// receiver learns the encryption flags out-of-band from the StreamMap
/// (live::reassemble_wire with markers_hidden); the adversary loses its
/// per-packet "this one is encrypted" oracle.  Call after
/// encrypt_selected.
void hide_wire_markers(std::vector<VideoPacket>& packets);

/// Aggregate encryption statistics for a packetized, policy-applied stream.
struct EncryptionStats {
  std::size_t total_packets = 0;
  std::size_t encrypted_packets = 0;
  std::size_t total_payload_bytes = 0;
  std::size_t encrypted_payload_bytes = 0;

  /// q(P): fraction of packets encrypted under the policy (Section 4.3).
  [[nodiscard]] double packet_fraction() const {
    return total_packets > 0 ? static_cast<double>(encrypted_packets) /
                                   static_cast<double>(total_packets)
                             : 0.0;
  }
  [[nodiscard]] double byte_fraction() const {
    return total_payload_bytes > 0
               ? static_cast<double>(encrypted_payload_bytes) /
                     static_cast<double>(total_payload_bytes)
               : 0.0;
  }
};

[[nodiscard]] EncryptionStats encryption_stats(
    const std::vector<VideoPacket>& packets);

/// Rebuild per-frame byte availability from the packets a node captured.
///
/// `delivered[i]` says whether packet i survived the channel for this node.
/// If `cipher` is non-null the node can decrypt marked payloads (legitimate
/// receiver); otherwise marked payloads are unusable erasures even when the
/// bytes were overheard (eavesdropper, Section 3 threat model).
[[nodiscard]] std::vector<video::ReceivedFrameData> reassemble(
    const std::vector<VideoPacket>& packets,
    const std::vector<bool>& delivered, int frame_count,
    const crypto::BlockCipher* cipher,
    std::span<const std::uint8_t> flow_iv);

}  // namespace tv::net
