// RTP header handling (RFC 3550 fixed header).
//
// Section 5 of the paper: each video segment, encrypted or not, is
// encapsulated in an RTP packet; when the payload is encrypted the RTP
// Marker Bit is set so the receiver knows to decrypt.  We serialize real
// 12-byte headers so header overhead, marker signalling, and the
// eavesdropper's view are all byte-accurate.
#pragma once

#include <cstdint>
#include <optional>
#include <span>
#include <vector>

namespace tv::net {

/// Fixed part of an RTP header (no CSRC list, no extensions).
struct RtpHeader {
  static constexpr std::size_t kSize = 12;
  static constexpr std::uint8_t kVersion = 2;

  bool marker = false;          ///< paper's "payload is encrypted" flag.
  bool padding = false;         ///< RFC 3550 P bit: payload ends in a
                                ///< pad trailer (see pad helpers below).
  std::uint8_t payload_type = 96;  ///< dynamic PT for the video stream.
  std::uint16_t sequence_number = 0;
  std::uint32_t timestamp = 0;  ///< 90 kHz media clock.
  std::uint32_t ssrc = 0;

  [[nodiscard]] std::vector<std::uint8_t> serialize() const;

  /// Serialize into a caller-owned buffer without allocating — the live
  /// sender's per-datagram path.  Writes exactly kSize bytes and returns
  /// true; returns false (writing nothing) when the buffer is too small.
  /// Symmetric with try_parse: write_to followed by try_parse of the same
  /// span round-trips every representable header.
  [[nodiscard]] bool write_to(std::span<std::uint8_t> out) const noexcept;

  /// Parse a header; throws std::invalid_argument on short input, a
  /// version mismatch, or header bits this fixed-header type cannot
  /// represent (a nonzero CSRC count or the extension flag).
  [[nodiscard]] static RtpHeader parse(std::span<const std::uint8_t> bytes);

  /// Non-throwing variant for hostile input (corrupted or truncated
  /// captures): returns std::nullopt wherever parse() would throw.
  [[nodiscard]] static std::optional<RtpHeader> try_parse(
      std::span<const std::uint8_t> bytes) noexcept;
};

/// RFC 3550 §5.1 pad trailer: when the P bit is set, the final payload
/// byte counts the trailing pad bytes (itself included), so a single
/// trailer can express 1..255 bytes of padding.
inline constexpr std::size_t kMaxRtpPadding = 255;

/// Content size of a possibly-padded payload.  With the P bit clear the
/// whole payload is content; with it set the trailer is stripped.
/// Returns std::nullopt for an inconsistent trailer (empty payload, a
/// zero count, or a count larger than the payload) — hostile-capture
/// input, same contract as try_parse.
[[nodiscard]] std::optional<std::size_t> rtp_unpadded_size(
    const RtpHeader& header, std::span<const std::uint8_t> payload) noexcept;

/// Fill the pad region of `payload` in place: the first `content_size`
/// bytes are left untouched, the tail is overwritten with a
/// deterministic nonzero filler and the pad count goes into the final
/// byte.  Returns false (writing nothing) when there is no room for a
/// trailer (pad of 0) or the pad exceeds kMaxRtpPadding.
[[nodiscard]] bool rtp_write_pad_trailer(std::span<std::uint8_t> payload,
                                         std::size_t content_size) noexcept;

/// Lower-layer overhead per packet on the wire: IPv4 (20) + UDP (8).
inline constexpr std::size_t kIpUdpOverhead = 28;

/// Default network MTU (Table 1 experiments ran on 802.11g Ethernet MTUs).
inline constexpr std::size_t kDefaultMtu = 1500;

/// Maximum RTP payload for a given MTU.
[[nodiscard]] constexpr std::size_t max_payload(std::size_t mtu) {
  return mtu - kIpUdpOverhead - RtpHeader::kSize;
}

}  // namespace tv::net
