// RTP header handling (RFC 3550 fixed header).
//
// Section 5 of the paper: each video segment, encrypted or not, is
// encapsulated in an RTP packet; when the payload is encrypted the RTP
// Marker Bit is set so the receiver knows to decrypt.  We serialize real
// 12-byte headers so header overhead, marker signalling, and the
// eavesdropper's view are all byte-accurate.
#pragma once

#include <cstdint>
#include <optional>
#include <span>
#include <vector>

namespace tv::net {

/// Fixed part of an RTP header (no CSRC list, no extensions).
struct RtpHeader {
  static constexpr std::size_t kSize = 12;
  static constexpr std::uint8_t kVersion = 2;

  bool marker = false;          ///< paper's "payload is encrypted" flag.
  std::uint8_t payload_type = 96;  ///< dynamic PT for the video stream.
  std::uint16_t sequence_number = 0;
  std::uint32_t timestamp = 0;  ///< 90 kHz media clock.
  std::uint32_t ssrc = 0;

  [[nodiscard]] std::vector<std::uint8_t> serialize() const;

  /// Serialize into a caller-owned buffer without allocating — the live
  /// sender's per-datagram path.  Writes exactly kSize bytes and returns
  /// true; returns false (writing nothing) when the buffer is too small.
  /// Symmetric with try_parse: write_to followed by try_parse of the same
  /// span round-trips every representable header.
  [[nodiscard]] bool write_to(std::span<std::uint8_t> out) const noexcept;

  /// Parse a header; throws std::invalid_argument on short input, a
  /// version mismatch, or header bits this fixed-header type cannot
  /// represent (a nonzero CSRC count or the extension flag).
  [[nodiscard]] static RtpHeader parse(std::span<const std::uint8_t> bytes);

  /// Non-throwing variant for hostile input (corrupted or truncated
  /// captures): returns std::nullopt wherever parse() would throw.
  [[nodiscard]] static std::optional<RtpHeader> try_parse(
      std::span<const std::uint8_t> bytes) noexcept;
};

/// Lower-layer overhead per packet on the wire: IPv4 (20) + UDP (8).
inline constexpr std::size_t kIpUdpOverhead = 28;

/// Default network MTU (Table 1 experiments ran on 802.11g Ethernet MTUs).
inline constexpr std::size_t kDefaultMtu = 1500;

/// Maximum RTP payload for a given MTU.
[[nodiscard]] constexpr std::size_t max_payload(std::size_t mtu) {
  return mtu - kIpUdpOverhead - RtpHeader::kSize;
}

}  // namespace tv::net
