// Robust RTP receive path: reorder buffer, duplicate suppression,
// sequence-number wraparound, and non-throwing validation.
//
// The sender's packetizer emits clean, ordered packets; the network does
// not deliver them that way.  This receiver accepts raw datagrams in
// arrival order — possibly corrupted, truncated, duplicated or reordered
// (see net/fault_injector.hpp) — and releases valid packets in stream
// order.  Malformed input is counted and dropped, never thrown on: a
// cafe-WiFi capture must not be able to crash the pipeline.
#pragma once

#include <cstdint>
#include <deque>
#include <map>
#include <span>
#include <vector>

#include "net/rtp.hpp"

namespace tv::net {

struct ReceiverConfig {
  /// Packets held back waiting for a gap to fill before the receiver
  /// gives up on the missing ones and releases what it has.
  std::size_t reorder_capacity = 32;
};

/// A packet the receiver accepted, with its wraparound-corrected
/// (64-bit extended) sequence number.  Owns the full datagram bytes —
/// stored exactly once, moved (never re-copied) through the reorder
/// buffer and out of drain_ready()/flush(); `payload()` is a view past
/// the 12-byte header.
struct ReceivedPacket {
  std::int64_t extended_sequence = 0;
  RtpHeader header;
  std::vector<std::uint8_t> datagram;  ///< full wire bytes as heard.

  /// The payload region of the datagram (header parsed ⇒ size ≥ kSize).
  [[nodiscard]] std::span<const std::uint8_t> payload() const {
    return {datagram.data() + RtpHeader::kSize,
            datagram.size() - RtpHeader::kSize};
  }
};

struct ReceiverStats {
  std::size_t datagrams = 0;    ///< everything pushed.
  std::size_t accepted = 0;     ///< parsed and queued for release.
  std::size_t invalid = 0;      ///< runt datagrams / unparsable headers.
  std::size_t duplicates = 0;   ///< same sequence seen again.
  std::size_t reordered = 0;    ///< arrived behind a later packet, healed.
  std::size_t too_late = 0;     ///< behind the release point, dropped.
  std::size_t given_up = 0;     ///< gaps released past (missing packets).
};

/// Streaming receiver: push datagrams as they arrive, drain in-order
/// packets as they become releasable, flush at end of stream.
class Receiver {
 public:
  explicit Receiver(ReceiverConfig config = {});

  /// Feed one datagram as heard on the wire.  Never throws on content.
  /// Copies the bytes exactly once (on acceptance) into the stored
  /// ReceivedPacket.
  void push(std::span<const std::uint8_t> datagram);

  /// Zero-copy variant: adopt the caller's buffer outright.  The live
  /// receive path hands over the datagram it just read so accepted bytes
  /// are never copied at all.
  void push(std::vector<std::uint8_t>&& datagram);

  /// Packets releasable without giving up on any gap (consecutive run
  /// from the release point), in stream order.
  [[nodiscard]] std::vector<ReceivedPacket> drain_ready();

  /// End of stream: release everything buffered, skipping gaps.
  [[nodiscard]] std::vector<ReceivedPacket> flush();

  [[nodiscard]] const ReceiverStats& stats() const { return stats_; }

  /// Packets currently held (reorder buffer + released-but-undrained).
  /// The live server's overload detector sums this across sessions.
  [[nodiscard]] std::size_t buffered() const {
    return buffer_.size() + ready_.size();
  }

 private:
  /// Map a 16-bit wire sequence onto the 64-bit extended sequence line,
  /// choosing the cycle that lands nearest the highest sequence seen
  /// (RFC 3550 appendix A.1 logic, tolerant of pre-wrap stragglers).
  [[nodiscard]] std::int64_t extend_sequence(std::uint16_t seq);

  /// Shared admission logic: header parse + duplicate/too-late checks.
  /// Returns false when the datagram must be dropped; on true the caller
  /// materializes the packet bytes and calls commit().
  [[nodiscard]] bool admit(std::span<const std::uint8_t> datagram,
                           std::int64_t* extended, RtpHeader* header);
  void commit(ReceivedPacket&& packet);

  ReceiverConfig config_;
  ReceiverStats stats_;
  std::map<std::int64_t, ReceivedPacket> buffer_;
  std::deque<ReceivedPacket> ready_;  ///< released by overflow, undrained.
  std::int64_t highest_seen_ = -1;   ///< highest extended sequence so far.
  std::int64_t next_release_ = -1;   ///< next extended sequence to release.
  bool started_ = false;
};

}  // namespace tv::net
