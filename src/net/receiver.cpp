#include "net/receiver.hpp"

#include <cstdlib>
#include <utility>

namespace tv::net {

Receiver::Receiver(ReceiverConfig config) : config_(config) {
  if (config_.reorder_capacity == 0) config_.reorder_capacity = 1;
}

std::int64_t Receiver::extend_sequence(std::uint16_t seq) {
  if (!started_) return static_cast<std::int64_t>(seq);
  // Candidate cycles around the highest sequence seen; pick the nearest.
  const std::int64_t base = highest_seen_ & ~std::int64_t{0xffff};
  std::int64_t best = base + seq;
  for (const std::int64_t cand :
       {base - 0x10000 + seq, base + seq, base + 0x10000 + seq}) {
    if (std::llabs(cand - highest_seen_) < std::llabs(best - highest_seen_)) {
      best = cand;
    }
  }
  return best;
}

bool Receiver::admit(std::span<const std::uint8_t> datagram,
                     std::int64_t* extended, RtpHeader* header) {
  ++stats_.datagrams;
  const auto parsed = RtpHeader::try_parse(datagram);
  if (!parsed) {
    ++stats_.invalid;
    return false;
  }
  const std::int64_t ext = extend_sequence(parsed->sequence_number);
  if (started_) {
    if (buffer_.count(ext) != 0) {
      ++stats_.duplicates;  // still waiting in the reorder buffer.
      return false;
    }
    if (ext < next_release_) {
      // Behind the release point: either a duplicate of something already
      // released or a straggler we gave up on.  Unusable either way.
      ++stats_.too_late;
      return false;
    }
    if (ext < highest_seen_) ++stats_.reordered;
  } else {
    started_ = true;
    next_release_ = ext;
  }
  *extended = ext;
  *header = *parsed;
  return true;
}

void Receiver::commit(ReceivedPacket&& packet) {
  const std::int64_t ext = packet.extended_sequence;
  buffer_.emplace(ext, std::move(packet));
  if (ext > highest_seen_) highest_seen_ = ext;
  ++stats_.accepted;

  // Keep the reorder buffer bounded: give up on the oldest gaps and move
  // the packets past them into the ready queue.
  while (buffer_.size() > config_.reorder_capacity) {
    auto it = buffer_.begin();
    if (it->first != next_release_) {
      stats_.given_up += static_cast<std::size_t>(it->first - next_release_);
      next_release_ = it->first;
    }
    ready_.push_back(std::move(it->second));
    buffer_.erase(it);
    ++next_release_;
  }
}

void Receiver::push(std::span<const std::uint8_t> datagram) {
  ReceivedPacket packet;
  if (!admit(datagram, &packet.extended_sequence, &packet.header)) return;
  packet.datagram.assign(datagram.begin(), datagram.end());
  commit(std::move(packet));
}

void Receiver::push(std::vector<std::uint8_t>&& datagram) {
  ReceivedPacket packet;
  if (!admit(datagram, &packet.extended_sequence, &packet.header)) return;
  packet.datagram = std::move(datagram);
  commit(std::move(packet));
}

std::vector<ReceivedPacket> Receiver::drain_ready() {
  std::vector<ReceivedPacket> out;
  out.reserve(ready_.size());
  while (!ready_.empty()) {
    out.push_back(std::move(ready_.front()));
    ready_.pop_front();
  }
  while (!buffer_.empty() && buffer_.begin()->first == next_release_) {
    out.push_back(std::move(buffer_.begin()->second));
    buffer_.erase(buffer_.begin());
    ++next_release_;
  }
  return out;
}

std::vector<ReceivedPacket> Receiver::flush() {
  std::vector<ReceivedPacket> out = drain_ready();
  while (!buffer_.empty()) {
    auto it = buffer_.begin();
    if (it->first != next_release_) {
      stats_.given_up += static_cast<std::size_t>(it->first - next_release_);
      next_release_ = it->first;
    }
    out.push_back(std::move(it->second));
    buffer_.erase(it);
    ++next_release_;
  }
  return out;
}

}  // namespace tv::net
