// FIPS-197 AES implementation (128- and 256-bit keys).
//
// A straightforward table-free byte-oriented implementation: S-box lookups
// plus xtime() for MixColumns.  Not constant-time and not meant to be; the
// repository uses it to reproduce the computational *cost structure* of the
// paper's encryption policies and to produce real ciphertext for the
// eavesdropper-distortion experiments.
#pragma once

#include <array>
#include <cstdint>
#include <span>
#include <vector>

#include "crypto/block_cipher.hpp"

namespace tv::crypto {

/// AES with a 128-, 192- or 256-bit key (the paper uses 128 and 256).
class Aes final : public BlockCipher {
 public:
  /// key must be 16, 24 or 32 bytes.  Throws std::invalid_argument otherwise.
  explicit Aes(std::span<const std::uint8_t> key);

  [[nodiscard]] std::size_t block_size() const override { return 16; }
  [[nodiscard]] std::size_t key_size() const override { return key_bytes_; }
  [[nodiscard]] std::string_view name() const override {
    return key_bytes_ == 16 ? "AES128" : (key_bytes_ == 24 ? "AES192" : "AES256");
  }

  void encrypt_block(std::span<const std::uint8_t> in,
                     std::span<std::uint8_t> out) const override;
  void decrypt_block(std::span<const std::uint8_t> in,
                     std::span<std::uint8_t> out) const override;

 private:
  std::size_t key_bytes_ = 0;
  int rounds_ = 0;
  // Expanded round keys, 4 * (rounds_ + 1) 32-bit words stored as bytes.
  std::vector<std::uint8_t> round_keys_;
};

}  // namespace tv::crypto
