// FIPS-197 AES implementation (128- and 256-bit keys).
//
// A straightforward table-free byte-oriented implementation: S-box lookups
// plus xtime() for MixColumns.  Not constant-time and not meant to be; the
// repository uses it to reproduce the computational *cost structure* of the
// paper's encryption policies and to produce real ciphertext for the
// eavesdropper-distortion experiments.  On x86 CPUs with AES-NI,
// suite::make_cipher selects the byte-identical hardware backend in
// aes_ni.hpp instead; this class remains the portable reference.
#pragma once

#include <array>
#include <cstdint>
#include <span>

#include "crypto/block_cipher.hpp"

namespace tv::crypto {

/// Expanded AES round keys, shared by the scalar and AES-NI backends so
/// both run the exact FIPS-197 key schedule.
struct AesKeySchedule {
  std::size_t key_bytes = 0;
  int rounds = 0;
  /// 4 * (rounds + 1) 32-bit words stored as bytes; sized for AES-256.
  std::array<std::uint8_t, 16 * 15> round_keys{};

  /// key must be 16, 24 or 32 bytes.  Throws std::invalid_argument
  /// otherwise.
  [[nodiscard]] static AesKeySchedule expand(
      std::span<const std::uint8_t> key);

  [[nodiscard]] std::string_view name() const {
    return key_bytes == 16 ? "AES128"
                           : (key_bytes == 24 ? "AES192" : "AES256");
  }
};

/// AES with a 128-, 192- or 256-bit key (the paper uses 128 and 256).
class Aes final : public BlockCipher {
 public:
  /// key must be 16, 24 or 32 bytes.  Throws std::invalid_argument otherwise.
  explicit Aes(std::span<const std::uint8_t> key);

  [[nodiscard]] std::size_t block_size() const override { return 16; }
  [[nodiscard]] std::size_t key_size() const override {
    return schedule_.key_bytes;
  }
  [[nodiscard]] std::string_view name() const override {
    return schedule_.name();
  }

  void encrypt_block(std::span<const std::uint8_t> in,
                     std::span<std::uint8_t> out) const override;
  void decrypt_block(std::span<const std::uint8_t> in,
                     std::span<std::uint8_t> out) const override;

  /// Batched hot paths: one virtual call, dispatch-free inner loop.
  void encrypt_blocks(std::span<const std::uint8_t> in,
                      std::span<std::uint8_t> out,
                      std::size_t n) const override;
  void ofb_keystream(std::span<std::uint8_t> feedback,
                     std::span<std::uint8_t> out,
                     std::size_t n) const override;

 private:
  void encrypt_one(const std::uint8_t* in, std::uint8_t* out) const;

  AesKeySchedule schedule_;
};

}  // namespace tv::crypto
