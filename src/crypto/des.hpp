// ANSI X3.92 DES and 3DES-EDE (Triple DES).
//
// The paper's third cipher option.  Like the AES implementation this is a
// clear-over-clever reference implementation validated against published
// test vectors; OFB mode only ever calls the forward transform.
#pragma once

#include <array>
#include <cstdint>
#include <span>

#include "crypto/block_cipher.hpp"

namespace tv::crypto {

/// Single DES with a 64-bit key (parity bits ignored).
class Des final : public BlockCipher {
 public:
  /// key must be exactly 8 bytes.
  explicit Des(std::span<const std::uint8_t> key);

  [[nodiscard]] std::size_t block_size() const override { return 8; }
  [[nodiscard]] std::size_t key_size() const override { return 8; }
  [[nodiscard]] std::string_view name() const override { return "DES"; }

  void encrypt_block(std::span<const std::uint8_t> in,
                     std::span<std::uint8_t> out) const override;
  void decrypt_block(std::span<const std::uint8_t> in,
                     std::span<std::uint8_t> out) const override;
  void encrypt_blocks(std::span<const std::uint8_t> in,
                      std::span<std::uint8_t> out,
                      std::size_t n) const override;
  void ofb_keystream(std::span<std::uint8_t> feedback,
                     std::span<std::uint8_t> out,
                     std::size_t n) const override;

  /// Raw 64-bit block transforms used by TripleDes.
  [[nodiscard]] std::uint64_t encrypt64(std::uint64_t block) const;
  [[nodiscard]] std::uint64_t decrypt64(std::uint64_t block) const;

 private:
  std::array<std::uint64_t, 16> subkeys_{};  // 48-bit round keys.
};

/// 3DES in EDE mode with a 24-byte key (K1 | K2 | K3).  Supplying
/// K1 == K2 == K3 degenerates to single DES, which the tests exploit.
class TripleDes final : public BlockCipher {
 public:
  /// key must be exactly 24 bytes.
  explicit TripleDes(std::span<const std::uint8_t> key);

  [[nodiscard]] std::size_t block_size() const override { return 8; }
  [[nodiscard]] std::size_t key_size() const override { return 24; }
  [[nodiscard]] std::string_view name() const override { return "3DES"; }

  void encrypt_block(std::span<const std::uint8_t> in,
                     std::span<std::uint8_t> out) const override;
  void decrypt_block(std::span<const std::uint8_t> in,
                     std::span<std::uint8_t> out) const override;
  void encrypt_blocks(std::span<const std::uint8_t> in,
                      std::span<std::uint8_t> out,
                      std::size_t n) const override;
  void ofb_keystream(std::span<std::uint8_t> feedback,
                     std::span<std::uint8_t> out,
                     std::size_t n) const override;

 private:
  [[nodiscard]] std::uint64_t ede64(std::uint64_t block) const {
    return k3_.encrypt64(k2_.decrypt64(k1_.encrypt64(block)));
  }

  Des k1_;
  Des k2_;
  Des k3_;
};

}  // namespace tv::crypto
