#include "crypto/block_cipher.hpp"

#include <algorithm>
#include <stdexcept>

namespace tv::crypto {

void BlockCipher::check_batch_args(std::size_t in_size, std::size_t out_size,
                                   std::size_t n) const {
  const std::size_t need = n * block_size();
  if (in_size < need || out_size < need) {
    throw std::invalid_argument{
        "BlockCipher: batch spans must hold n * block_size() bytes"};
  }
}

void BlockCipher::encrypt_blocks(std::span<const std::uint8_t> in,
                                 std::span<std::uint8_t> out,
                                 std::size_t n) const {
  check_batch_args(in.size(), out.size(), n);
  const std::size_t block = block_size();
  for (std::size_t i = 0; i < n; ++i) {
    encrypt_block(in.subspan(i * block, block), out.subspan(i * block, block));
  }
}

void BlockCipher::ofb_keystream(std::span<std::uint8_t> feedback,
                                std::span<std::uint8_t> out,
                                std::size_t n) const {
  const std::size_t block = block_size();
  if (feedback.size() < block) {
    throw std::invalid_argument{
        "BlockCipher::ofb_keystream: feedback smaller than block"};
  }
  check_batch_args(out.size(), out.size(), n);
  for (std::size_t i = 0; i < n; ++i) {
    std::span<std::uint8_t> slot = out.subspan(i * block, block);
    encrypt_block(feedback.first(block), slot);
    std::copy(slot.begin(), slot.end(), feedback.begin());
  }
}

}  // namespace tv::crypto
