// Abstract block cipher interface.
//
// The paper's encryption policies run AES128, AES256 or 3DES in Output
// Feedback (OFB) mode over each video segment (Section 5).  OFB only ever
// uses the forward (encrypt) transform, but the ciphers implement both
// directions so they can be validated against the full standard test
// vectors.
#pragma once

#include <cstddef>
#include <cstdint>
#include <span>
#include <string_view>

namespace tv::crypto {

/// A block cipher with a fixed block size, operating on exactly one block.
class BlockCipher {
 public:
  virtual ~BlockCipher() = default;

  /// Block size in bytes (16 for AES, 8 for DES/3DES).
  [[nodiscard]] virtual std::size_t block_size() const = 0;

  /// Key size in bytes accepted by the concrete cipher.
  [[nodiscard]] virtual std::size_t key_size() const = 0;

  /// Human-readable algorithm name ("AES128", "3DES", ...).
  [[nodiscard]] virtual std::string_view name() const = 0;

  /// Encrypt exactly one block: in.size() == out.size() == block_size().
  virtual void encrypt_block(std::span<const std::uint8_t> in,
                             std::span<std::uint8_t> out) const = 0;

  /// Decrypt exactly one block.
  virtual void decrypt_block(std::span<const std::uint8_t> in,
                             std::span<std::uint8_t> out) const = 0;
};

}  // namespace tv::crypto
