// Abstract block cipher interface.
//
// The paper's encryption policies run AES128, AES256 or 3DES in Output
// Feedback (OFB) mode over each video segment (Section 5).  OFB only ever
// uses the forward (encrypt) transform, but the ciphers implement both
// directions so they can be validated against the full standard test
// vectors.
//
// The hot path is batched: encrypt_blocks() transforms n independent
// blocks per virtual call and ofb_keystream() advances the OFB feedback
// chain n blocks per virtual call, so the per-block cost of concrete
// ciphers (and their SIMD backends) is not dominated by virtual dispatch.
// Both have loop fallbacks over the one-block primitives, so a new cipher
// only has to implement encrypt_block()/decrypt_block() to be correct and
// can add batched overrides purely as an optimization.
#pragma once

#include <cstddef>
#include <cstdint>
#include <span>
#include <string_view>

namespace tv::crypto {

/// A block cipher with a fixed block size.
class BlockCipher {
 public:
  virtual ~BlockCipher() = default;

  /// Block size in bytes (16 for AES, 8 for DES/3DES).
  [[nodiscard]] virtual std::size_t block_size() const = 0;

  /// Key size in bytes accepted by the concrete cipher.
  [[nodiscard]] virtual std::size_t key_size() const = 0;

  /// Human-readable algorithm name ("AES128", "3DES", ...).
  [[nodiscard]] virtual std::string_view name() const = 0;

  /// Encrypt exactly one block: in.size() == out.size() == block_size().
  virtual void encrypt_block(std::span<const std::uint8_t> in,
                             std::span<std::uint8_t> out) const = 0;

  /// Decrypt exactly one block.
  virtual void decrypt_block(std::span<const std::uint8_t> in,
                             std::span<std::uint8_t> out) const = 0;

  /// Encrypt `n` independent blocks (ECB-style batch): in and out must
  /// each hold at least n * block_size() bytes.  in and out may alias
  /// exactly (in.data() == out.data()) but must not otherwise overlap.
  /// The default loops over encrypt_block(); concrete ciphers override it
  /// with a dispatch-free (and possibly SIMD) inner loop.
  virtual void encrypt_blocks(std::span<const std::uint8_t> in,
                              std::span<std::uint8_t> out,
                              std::size_t n) const;

  /// Advance the OFB chain `n` blocks: starting from the block_size()
  /// bytes in `feedback`, repeatedly encrypt the feedback block, append
  /// each result to `out` (n * block_size() bytes of keystream) and leave
  /// the final block in `feedback` for the next call.  The chain is
  /// inherently serial — O_i = E_K(O_{i-1}) — so batching here amortizes
  /// the virtual call and lets backends keep the feedback block in a
  /// register across iterations.
  virtual void ofb_keystream(std::span<std::uint8_t> feedback,
                             std::span<std::uint8_t> out,
                             std::size_t n) const;

 protected:
  /// Shared argument validation for the batched entry points; throws
  /// std::invalid_argument on undersized spans.
  void check_batch_args(std::size_t in_size, std::size_t out_size,
                        std::size_t n) const;
};

}  // namespace tv::crypto
