#include "crypto/aes_ni.hpp"

#include <stdexcept>

#include "crypto/aes.hpp"

#if defined(TV_HAVE_AESNI)
#include <wmmintrin.h>

#include <array>
#include <cstring>
#endif

namespace tv::crypto {

#if defined(TV_HAVE_AESNI)

namespace {

class AesNi final : public BlockCipher {
 public:
  explicit AesNi(std::span<const std::uint8_t> key)
      : schedule_(AesKeySchedule::expand(key)) {
    for (int r = 0; r <= schedule_.rounds; ++r) {
      enc_keys_[static_cast<std::size_t>(r)] = _mm_loadu_si128(
          reinterpret_cast<const __m128i*>(
              schedule_.round_keys.data() + static_cast<std::size_t>(r) * 16));
    }
    // The equivalent inverse cipher applies InvMixColumns to the middle
    // round keys (FIPS-197 section 5.3.5); AESIMC does exactly that.
    dec_keys_[0] = enc_keys_[static_cast<std::size_t>(schedule_.rounds)];
    for (int r = 1; r < schedule_.rounds; ++r) {
      dec_keys_[static_cast<std::size_t>(r)] = _mm_aesimc_si128(
          enc_keys_[static_cast<std::size_t>(schedule_.rounds - r)]);
    }
    dec_keys_[static_cast<std::size_t>(schedule_.rounds)] = enc_keys_[0];
  }

  [[nodiscard]] std::size_t block_size() const override { return 16; }
  [[nodiscard]] std::size_t key_size() const override {
    return schedule_.key_bytes;
  }
  [[nodiscard]] std::string_view name() const override {
    return schedule_.name();
  }

  void encrypt_block(std::span<const std::uint8_t> in,
                     std::span<std::uint8_t> out) const override {
    if (in.size() != 16 || out.size() != 16) {
      throw std::invalid_argument{"AesNi::encrypt_block: need 16-byte buffers"};
    }
    const __m128i c = encrypt_one(
        _mm_loadu_si128(reinterpret_cast<const __m128i*>(in.data())));
    _mm_storeu_si128(reinterpret_cast<__m128i*>(out.data()), c);
  }

  void decrypt_block(std::span<const std::uint8_t> in,
                     std::span<std::uint8_t> out) const override {
    if (in.size() != 16 || out.size() != 16) {
      throw std::invalid_argument{"AesNi::decrypt_block: need 16-byte buffers"};
    }
    __m128i b = _mm_loadu_si128(reinterpret_cast<const __m128i*>(in.data()));
    b = _mm_xor_si128(b, dec_keys_[0]);
    for (int r = 1; r < schedule_.rounds; ++r) {
      b = _mm_aesdec_si128(b, dec_keys_[static_cast<std::size_t>(r)]);
    }
    b = _mm_aesdeclast_si128(
        b, dec_keys_[static_cast<std::size_t>(schedule_.rounds)]);
    _mm_storeu_si128(reinterpret_cast<__m128i*>(out.data()), b);
  }

  void encrypt_blocks(std::span<const std::uint8_t> in,
                      std::span<std::uint8_t> out,
                      std::size_t n) const override {
    check_batch_args(in.size(), out.size(), n);
    const std::uint8_t* src = in.data();
    std::uint8_t* dst = out.data();
    std::size_t i = 0;
    // Four blocks in flight hide the AESENC latency chain (the blocks are
    // independent, so the units pipeline them).
    for (; i + 4 <= n; i += 4) {
      __m128i b0 = _mm_loadu_si128(
          reinterpret_cast<const __m128i*>(src + (i + 0) * 16));
      __m128i b1 = _mm_loadu_si128(
          reinterpret_cast<const __m128i*>(src + (i + 1) * 16));
      __m128i b2 = _mm_loadu_si128(
          reinterpret_cast<const __m128i*>(src + (i + 2) * 16));
      __m128i b3 = _mm_loadu_si128(
          reinterpret_cast<const __m128i*>(src + (i + 3) * 16));
      b0 = _mm_xor_si128(b0, enc_keys_[0]);
      b1 = _mm_xor_si128(b1, enc_keys_[0]);
      b2 = _mm_xor_si128(b2, enc_keys_[0]);
      b3 = _mm_xor_si128(b3, enc_keys_[0]);
      for (int r = 1; r < schedule_.rounds; ++r) {
        const __m128i rk = enc_keys_[static_cast<std::size_t>(r)];
        b0 = _mm_aesenc_si128(b0, rk);
        b1 = _mm_aesenc_si128(b1, rk);
        b2 = _mm_aesenc_si128(b2, rk);
        b3 = _mm_aesenc_si128(b3, rk);
      }
      const __m128i last = enc_keys_[static_cast<std::size_t>(schedule_.rounds)];
      b0 = _mm_aesenclast_si128(b0, last);
      b1 = _mm_aesenclast_si128(b1, last);
      b2 = _mm_aesenclast_si128(b2, last);
      b3 = _mm_aesenclast_si128(b3, last);
      _mm_storeu_si128(reinterpret_cast<__m128i*>(dst + (i + 0) * 16), b0);
      _mm_storeu_si128(reinterpret_cast<__m128i*>(dst + (i + 1) * 16), b1);
      _mm_storeu_si128(reinterpret_cast<__m128i*>(dst + (i + 2) * 16), b2);
      _mm_storeu_si128(reinterpret_cast<__m128i*>(dst + (i + 3) * 16), b3);
    }
    for (; i < n; ++i) {
      const __m128i c = encrypt_one(
          _mm_loadu_si128(reinterpret_cast<const __m128i*>(src + i * 16)));
      _mm_storeu_si128(reinterpret_cast<__m128i*>(dst + i * 16), c);
    }
  }

  void ofb_keystream(std::span<std::uint8_t> feedback,
                     std::span<std::uint8_t> out,
                     std::size_t n) const override {
    if (feedback.size() < 16) {
      throw std::invalid_argument{"AesNi::ofb_keystream: feedback too small"};
    }
    check_batch_args(out.size(), out.size(), n);
    // The chain is serial by construction; keeping the feedback block in a
    // register across all n iterations is the whole win.
    __m128i fb =
        _mm_loadu_si128(reinterpret_cast<const __m128i*>(feedback.data()));
    for (std::size_t i = 0; i < n; ++i) {
      fb = encrypt_one(fb);
      _mm_storeu_si128(reinterpret_cast<__m128i*>(out.data() + i * 16), fb);
    }
    _mm_storeu_si128(reinterpret_cast<__m128i*>(feedback.data()), fb);
  }

 private:
  [[nodiscard]] __m128i encrypt_one(__m128i b) const {
    b = _mm_xor_si128(b, enc_keys_[0]);
    for (int r = 1; r < schedule_.rounds; ++r) {
      b = _mm_aesenc_si128(b, enc_keys_[static_cast<std::size_t>(r)]);
    }
    return _mm_aesenclast_si128(
        b, enc_keys_[static_cast<std::size_t>(schedule_.rounds)]);
  }

  AesKeySchedule schedule_;
  // Plain arrays: std::array<__m128i, N> trips -Wignored-attributes on the
  // vector type's alignment attribute under -Werror.
  __m128i enc_keys_[15] = {};
  __m128i dec_keys_[15] = {};
};

}  // namespace

bool aes_ni_available() {
  static const bool available = __builtin_cpu_supports("aes") != 0;
  return available;
}

std::unique_ptr<BlockCipher> make_aes_ni(std::span<const std::uint8_t> key) {
  if (!aes_ni_available()) {
    throw std::runtime_error{"make_aes_ni: AES-NI not available on this CPU"};
  }
  return std::make_unique<AesNi>(key);
}

#else  // !TV_HAVE_AESNI

bool aes_ni_available() { return false; }

std::unique_ptr<BlockCipher> make_aes_ni(
    std::span<const std::uint8_t> /*key*/) {
  throw std::runtime_error{"make_aes_ni: AES-NI backend not built in"};
}

#endif

}  // namespace tv::crypto
