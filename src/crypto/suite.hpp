// Cipher suite registry: the three algorithms evaluated in the paper
// (AES128, AES256, 3DES) behind one factory, plus per-algorithm cost
// metadata used by the delay/energy models.
#pragma once

#include <cstdint>
#include <memory>
#include <span>
#include <string_view>

#include "crypto/block_cipher.hpp"

namespace tv::crypto {

/// The symmetric algorithms from Table 1.
enum class Algorithm { kAes128, kAes256, kTripleDes };

[[nodiscard]] std::string_view to_string(Algorithm a);

/// Parse "AES128" / "AES256" / "3DES" (case-sensitive).  Throws
/// std::invalid_argument for anything else.
[[nodiscard]] Algorithm algorithm_from_string(std::string_view name);

/// Key size in bytes for the given algorithm.
[[nodiscard]] std::size_t key_size(Algorithm a);

/// Which concrete implementation backs a cipher instance.  All backends
/// are byte-identical (pinned against the NIST vectors and each other by
/// the property tests); they differ only in speed.
enum class CipherBackend {
  kAuto,    ///< fastest available: AES-NI for AES when the CPU has it.
  kScalar,  ///< the portable software implementation.
  kAesNi,   ///< hardware AES; make_cipher throws when unavailable.
};

[[nodiscard]] std::string_view to_string(CipherBackend b);

/// True when make_cipher(kAuto) would pick the hardware AES path.
[[nodiscard]] bool aes_ni_selected(Algorithm a);

/// Construct a cipher instance; key.size() must equal key_size(a).
/// With kAuto (the default and what every production call site uses),
/// AES128/AES256 get the runtime-detected AES-NI backend when the CPU
/// supports it and the scalar implementation otherwise; 3DES is always
/// scalar.  Requesting kAesNi explicitly throws std::runtime_error when
/// the backend is missing (non-x86 build or a CPU without the extension).
[[nodiscard]] std::unique_ptr<BlockCipher> make_cipher(
    Algorithm a, std::span<const std::uint8_t> key,
    CipherBackend backend = CipherBackend::kAuto);

/// Convenience: derive a key of the right size from a 64-bit seed (for
/// experiments, where key agreement is out of scope per Section 3).
[[nodiscard]] std::unique_ptr<BlockCipher> make_cipher_from_seed(
    Algorithm a, std::uint64_t seed,
    CipherBackend backend = CipherBackend::kAuto);

/// Relative per-byte software cost of the algorithm, normalized to
/// AES128 == 1.  Used by device profiles to scale encryption-time
/// parameters; the ordering (AES128 < AES256 < 3DES) matches both our
/// microbenchmarks and the published comparisons the paper cites [15, 28].
[[nodiscard]] double relative_cost_per_byte(Algorithm a);

}  // namespace tv::crypto
