// Additional block-cipher modes: CBC with PKCS#7 padding and CTR.
//
// The paper's implementation uses OFB (Section 5), but the commercial
// systems it surveys do not: Apple HLS ships AES-128-CBC segments and
// MPEG-DASH/CENC uses AES-CTR.  Having all three lets the benches and
// examples compare the paper's choice against the deployed alternatives
// (identical confidentiality for full-segment encryption; different error
// propagation and padding overhead).
#pragma once

#include <cstdint>
#include <span>
#include <vector>

#include "crypto/block_cipher.hpp"

namespace tv::crypto {

/// CBC encryption with PKCS#7 padding: output size is the input rounded up
/// to the next full block (always at least one padding byte).
[[nodiscard]] std::vector<std::uint8_t> cbc_encrypt(
    const BlockCipher& cipher, std::span<const std::uint8_t> iv,
    std::span<const std::uint8_t> plaintext);

/// CBC decryption; throws std::invalid_argument on a malformed length or
/// bad PKCS#7 padding.
[[nodiscard]] std::vector<std::uint8_t> cbc_decrypt(
    const BlockCipher& cipher, std::span<const std::uint8_t> iv,
    std::span<const std::uint8_t> ciphertext);

/// CTR keystream transform (like OFB, encrypt == decrypt, no padding).
/// The counter occupies the trailing bytes of the block, big-endian,
/// starting from `initial_counter`.
[[nodiscard]] std::vector<std::uint8_t> ctr_transform(
    const BlockCipher& cipher, std::span<const std::uint8_t> nonce,
    std::span<const std::uint8_t> data, std::uint64_t initial_counter = 0);

}  // namespace tv::crypto
