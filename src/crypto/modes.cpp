#include "crypto/modes.hpp"

#include <stdexcept>

namespace tv::crypto {

std::vector<std::uint8_t> cbc_encrypt(const BlockCipher& cipher,
                                      std::span<const std::uint8_t> iv,
                                      std::span<const std::uint8_t> plaintext) {
  const std::size_t block = cipher.block_size();
  if (iv.size() != block) {
    throw std::invalid_argument{"cbc_encrypt: iv size != block size"};
  }
  const std::size_t pad = block - (plaintext.size() % block);
  std::vector<std::uint8_t> out(plaintext.size() + pad);
  std::copy(plaintext.begin(), plaintext.end(), out.begin());
  for (std::size_t i = plaintext.size(); i < out.size(); ++i) {
    out[i] = static_cast<std::uint8_t>(pad);
  }
  std::vector<std::uint8_t> chain(iv.begin(), iv.end());
  for (std::size_t off = 0; off < out.size(); off += block) {
    for (std::size_t i = 0; i < block; ++i) out[off + i] ^= chain[i];
    const std::span<std::uint8_t> this_block{&out[off], block};
    cipher.encrypt_block(this_block, this_block);
    std::copy(this_block.begin(), this_block.end(), chain.begin());
  }
  return out;
}

std::vector<std::uint8_t> cbc_decrypt(
    const BlockCipher& cipher, std::span<const std::uint8_t> iv,
    std::span<const std::uint8_t> ciphertext) {
  const std::size_t block = cipher.block_size();
  if (iv.size() != block) {
    throw std::invalid_argument{"cbc_decrypt: iv size != block size"};
  }
  if (ciphertext.empty() || ciphertext.size() % block != 0) {
    throw std::invalid_argument{"cbc_decrypt: bad ciphertext length"};
  }
  std::vector<std::uint8_t> out(ciphertext.size());
  std::vector<std::uint8_t> chain(iv.begin(), iv.end());
  std::vector<std::uint8_t> next_chain(block);
  for (std::size_t off = 0; off < ciphertext.size(); off += block) {
    std::copy(ciphertext.begin() + static_cast<std::ptrdiff_t>(off),
              ciphertext.begin() + static_cast<std::ptrdiff_t>(off + block),
              next_chain.begin());
    cipher.decrypt_block(ciphertext.subspan(off, block),
                         std::span<std::uint8_t>(&out[off], block));
    for (std::size_t i = 0; i < block; ++i) out[off + i] ^= chain[i];
    chain = next_chain;
  }
  const std::uint8_t pad = out.back();
  if (pad == 0 || pad > block || pad > out.size()) {
    throw std::invalid_argument{"cbc_decrypt: bad padding"};
  }
  for (std::size_t i = out.size() - pad; i < out.size(); ++i) {
    if (out[i] != pad) {
      throw std::invalid_argument{"cbc_decrypt: bad padding"};
    }
  }
  out.resize(out.size() - pad);
  return out;
}

std::vector<std::uint8_t> ctr_transform(const BlockCipher& cipher,
                                        std::span<const std::uint8_t> nonce,
                                        std::span<const std::uint8_t> data,
                                        std::uint64_t initial_counter) {
  const std::size_t block = cipher.block_size();
  if (nonce.size() != block) {
    throw std::invalid_argument{"ctr_transform: nonce size != block size"};
  }
  std::vector<std::uint8_t> out(data.begin(), data.end());
  std::vector<std::uint8_t> counter_block(nonce.begin(), nonce.end());
  std::vector<std::uint8_t> keystream(block);
  std::uint64_t counter = initial_counter;
  for (std::size_t off = 0; off < out.size(); off += block) {
    // Fold the 64-bit counter into the trailing bytes (big-endian add).
    auto cb = counter_block;
    std::uint64_t c = counter;
    for (std::size_t i = 0; i < 8 && i < block; ++i) {
      const std::size_t pos = block - 1 - i;
      const std::uint16_t sum = static_cast<std::uint16_t>(
          cb[pos] + (c & 0xff));
      cb[pos] = static_cast<std::uint8_t>(sum & 0xff);
      c = (c >> 8) + (sum >> 8);  // carry propagates with the shift.
    }
    cipher.encrypt_block(cb, keystream);
    const std::size_t n = std::min(block, out.size() - off);
    for (std::size_t i = 0; i < n; ++i) out[off + i] ^= keystream[i];
    ++counter;
  }
  return out;
}

}  // namespace tv::crypto
