#include "crypto/ofb.hpp"

#include <algorithm>
#include <cstring>
#include <stdexcept>

namespace tv::crypto {

namespace {

/// Keystream buffered per refill, in blocks.  One MTU-sized packet
/// (1460 B) fits in a single refill for both block sizes, so a typical
/// segment costs exactly one virtual ofb_keystream() call.
constexpr std::size_t kMaxBufferBlocks = 256;

/// XOR `n` bytes of `ks` into `data`, word-at-a-time.
void xor_bytes(std::uint8_t* data, const std::uint8_t* ks, std::size_t n) {
  std::size_t i = 0;
  for (; i + 8 <= n; i += 8) {
    std::uint64_t d;
    std::uint64_t k;
    std::memcpy(&d, data + i, 8);
    std::memcpy(&k, ks + i, 8);
    d ^= k;
    std::memcpy(data + i, &d, 8);
  }
  for (; i < n; ++i) data[i] ^= ks[i];
}

}  // namespace

OfbStream::OfbStream(const BlockCipher& cipher)
    : cipher_(cipher), block_size_(cipher.block_size()) {
  if (block_size_ == 0 || block_size_ > feedback_.size()) {
    throw std::invalid_argument{"OfbStream: unsupported block size"};
  }
}

OfbStream::OfbStream(const BlockCipher& cipher,
                     std::span<const std::uint8_t> iv)
    : OfbStream(cipher) {
  reset(iv);
}

void OfbStream::reset(std::span<const std::uint8_t> iv) {
  if (iv.size() != block_size_) {
    throw std::invalid_argument{"OfbStream: iv size != block size"};
  }
  std::copy(iv.begin(), iv.end(), feedback_.begin());
  seeded_ = true;
  used_ = 0;
  filled_ = 0;
}

void OfbStream::refill(std::size_t want_bytes) {
  // Generate just enough blocks for the caller's remaining bytes (capped
  // by the buffer), so short segments don't pay for keystream they never
  // consume.
  const std::size_t want_blocks = std::min(
      kMaxBufferBlocks, (want_bytes + block_size_ - 1) / block_size_);
  const std::size_t blocks = std::max<std::size_t>(1, want_blocks);
  // Grown lazily (and kept across reset()) so a stream reused across many
  // segments allocates once and a tiny one-shot allocates only one block.
  if (keystream_.size() < blocks * block_size_) {
    keystream_.resize(blocks * block_size_);
  }
  cipher_.ofb_keystream(std::span<std::uint8_t>{feedback_.data(), block_size_},
                        std::span<std::uint8_t>{keystream_.data(),
                                                blocks * block_size_},
                        blocks);
  used_ = 0;
  filled_ = blocks * block_size_;
}

void OfbStream::apply(std::span<std::uint8_t> data) {
  if (!seeded_) {
    throw std::logic_error{"OfbStream::apply: reset(iv) has not been called"};
  }
  std::uint8_t* p = data.data();
  std::size_t remaining = data.size();
  while (remaining > 0) {
    if (used_ == filled_) refill(remaining);
    const std::size_t take = std::min(remaining, filled_ - used_);
    xor_bytes(p, keystream_.data() + used_, take);
    used_ += take;
    p += take;
    remaining -= take;
  }
}

void ofb_transform(const BlockCipher& cipher, std::span<const std::uint8_t> iv,
                   std::span<const std::uint8_t> data,
                   std::span<std::uint8_t> out) {
  if (out.size() != data.size()) {
    throw std::invalid_argument{"ofb_transform: out size != data size"};
  }
  if (out.data() != data.data()) {
    std::copy(data.begin(), data.end(), out.begin());
  }
  OfbStream stream{cipher, iv};
  stream.apply(out);
}

std::vector<std::uint8_t> ofb_transform(const BlockCipher& cipher,
                                        std::span<const std::uint8_t> iv,
                                        std::span<const std::uint8_t> data) {
  std::vector<std::uint8_t> out(data.begin(), data.end());
  ofb_transform(cipher, iv, out, out);
  return out;
}

void ofb_transform_inplace(const BlockCipher& cipher,
                           std::span<const std::uint8_t> iv,
                           std::span<std::uint8_t> data) {
  ofb_transform(cipher, iv, data, data);
}

void segment_iv(const BlockCipher& cipher,
                std::span<const std::uint8_t> flow_iv,
                std::uint64_t sequence_number, std::span<std::uint8_t> out) {
  const std::size_t block = cipher.block_size();
  if (flow_iv.size() != block) {
    throw std::invalid_argument{"segment_iv: flow iv size != block size"};
  }
  if (out.size() != block) {
    throw std::invalid_argument{"segment_iv: out size != block size"};
  }
  // Encrypt (flow_iv xor seq) so IVs are unpredictable without the key and
  // unique per segment.
  if (out.data() != flow_iv.data()) {
    std::copy(flow_iv.begin(), flow_iv.end(), out.begin());
  }
  for (std::size_t i = 0; i < 8 && i < block; ++i) {
    out[block - 1 - i] ^=
        static_cast<std::uint8_t>((sequence_number >> (8 * i)) & 0xff);
  }
  cipher.encrypt_block(out, out);
}

std::vector<std::uint8_t> segment_iv(const BlockCipher& cipher,
                                     std::span<const std::uint8_t> flow_iv,
                                     std::uint64_t sequence_number) {
  std::vector<std::uint8_t> block(cipher.block_size());
  segment_iv(cipher, flow_iv, sequence_number, block);
  return block;
}

}  // namespace tv::crypto
