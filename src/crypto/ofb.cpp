#include "crypto/ofb.hpp"

#include <stdexcept>

namespace tv::crypto {

OfbStream::OfbStream(const BlockCipher& cipher,
                     std::span<const std::uint8_t> iv)
    : cipher_(cipher),
      feedback_(iv.begin(), iv.end()),
      used_(cipher.block_size()) {
  if (iv.size() != cipher.block_size()) {
    throw std::invalid_argument{"OfbStream: iv size != block size"};
  }
}

void OfbStream::apply(std::span<std::uint8_t> data) {
  const std::size_t block = cipher_.block_size();
  for (auto& byte : data) {
    if (used_ == block) {
      cipher_.encrypt_block(feedback_, feedback_);
      used_ = 0;
    }
    byte ^= feedback_[used_++];
  }
}

std::vector<std::uint8_t> ofb_transform(const BlockCipher& cipher,
                                        std::span<const std::uint8_t> iv,
                                        std::span<const std::uint8_t> data) {
  std::vector<std::uint8_t> out(data.begin(), data.end());
  ofb_transform_inplace(cipher, iv, out);
  return out;
}

void ofb_transform_inplace(const BlockCipher& cipher,
                           std::span<const std::uint8_t> iv,
                           std::span<std::uint8_t> data) {
  OfbStream stream{cipher, iv};
  stream.apply(data);
}

std::vector<std::uint8_t> segment_iv(const BlockCipher& cipher,
                                     std::span<const std::uint8_t> flow_iv,
                                     std::uint64_t sequence_number) {
  if (flow_iv.size() != cipher.block_size()) {
    throw std::invalid_argument{"segment_iv: flow iv size != block size"};
  }
  // Encrypt (flow_iv xor seq) so IVs are unpredictable without the key and
  // unique per segment.
  std::vector<std::uint8_t> block(flow_iv.begin(), flow_iv.end());
  for (std::size_t i = 0; i < 8 && i < block.size(); ++i) {
    block[block.size() - 1 - i] ^=
        static_cast<std::uint8_t>((sequence_number >> (8 * i)) & 0xff);
  }
  cipher.encrypt_block(block, block);
  return block;
}

}  // namespace tv::crypto
