// Output Feedback (OFB) stream mode.
//
// Section 5: "the OFB encryption mode is applied to each segment separately,
// and therefore a possible error at the receiver does not propagate to the
// following segments".  OFB turns any block cipher into a synchronous
// stream cipher: O_0 = IV, O_i = E_K(O_{i-1}), C_i = P_i xor O_i.
// Encryption and decryption are the same operation.
#pragma once

#include <cstdint>
#include <span>
#include <vector>

#include "crypto/block_cipher.hpp"

namespace tv::crypto {

/// One-shot OFB transform of `data` under `cipher` with `iv`
/// (iv.size() == cipher.block_size()).  Returns the transformed bytes;
/// applying the function twice with the same iv restores the input.
[[nodiscard]] std::vector<std::uint8_t> ofb_transform(
    const BlockCipher& cipher, std::span<const std::uint8_t> iv,
    std::span<const std::uint8_t> data);

/// In-place variant writing into `data`.
void ofb_transform_inplace(const BlockCipher& cipher,
                           std::span<const std::uint8_t> iv,
                           std::span<std::uint8_t> data);

/// Incremental OFB keystream, for callers that encrypt a segment in chunks.
class OfbStream {
 public:
  OfbStream(const BlockCipher& cipher, std::span<const std::uint8_t> iv);

  /// XOR the next keystream bytes into `data`.
  void apply(std::span<std::uint8_t> data);

 private:
  const BlockCipher& cipher_;
  std::vector<std::uint8_t> feedback_;
  std::size_t used_ = 0;  // bytes of `feedback_` already consumed.
};

/// Derive a deterministic per-segment IV from a flow IV and a segment
/// sequence number, as the sender and receiver must agree on one without
/// shipping it per packet.
[[nodiscard]] std::vector<std::uint8_t> segment_iv(
    const BlockCipher& cipher, std::span<const std::uint8_t> flow_iv,
    std::uint64_t sequence_number);

}  // namespace tv::crypto
