// Output Feedback (OFB) stream mode.
//
// Section 5: "the OFB encryption mode is applied to each segment separately,
// and therefore a possible error at the receiver does not propagate to the
// following segments".  OFB turns any block cipher into a synchronous
// stream cipher: O_0 = IV, O_i = E_K(O_{i-1}), C_i = P_i xor O_i.
// Encryption and decryption are the same operation.
//
// The implementation is batched: keystream is produced through the
// cipher's ofb_keystream() hot path (one virtual call per refill, not per
// block) and XORed into the payload word-at-a-time, so per-segment cost
// is dominated by the cipher core, not by dispatch or byte loops.
#pragma once

#include <array>
#include <cstdint>
#include <span>
#include <vector>

#include "crypto/block_cipher.hpp"

namespace tv::crypto {

/// One-shot OFB transform writing into `out` (out.size() == data.size();
/// in-place allowed when out.data() == data.data()).  Applying the
/// transform twice with the same iv restores the input.
void ofb_transform(const BlockCipher& cipher, std::span<const std::uint8_t> iv,
                   std::span<const std::uint8_t> data,
                   std::span<std::uint8_t> out);

/// Deprecated one-shot returning a fresh vector; prefer the span-out
/// overload (or ofb_transform_inplace) which does not allocate per call.
/// Kept as a thin wrapper for tests and exploratory code.
[[nodiscard]] std::vector<std::uint8_t> ofb_transform(
    const BlockCipher& cipher, std::span<const std::uint8_t> iv,
    std::span<const std::uint8_t> data);

/// In-place variant writing into `data`.
void ofb_transform_inplace(const BlockCipher& cipher,
                           std::span<const std::uint8_t> iv,
                           std::span<std::uint8_t> data);

/// Incremental OFB keystream, for callers that encrypt a segment in chunks
/// — and, via reset(), for callers that encrypt many segments in sequence
/// with one stream object (no per-segment buffer churn).
class OfbStream {
 public:
  /// Unseeded stream bound to a cipher: reset(iv) must be called before
  /// the first apply().  This is the constructor for per-segment reuse.
  explicit OfbStream(const BlockCipher& cipher);

  OfbStream(const BlockCipher& cipher, std::span<const std::uint8_t> iv);

  /// Restart the keystream from a fresh IV (iv.size() == block size),
  /// discarding any unconsumed keystream.  The internal buffers are
  /// reused, so resetting per segment costs no allocation.
  void reset(std::span<const std::uint8_t> iv);

  /// XOR the next keystream bytes into `data`.
  void apply(std::span<std::uint8_t> data);

 private:
  void refill(std::size_t want_bytes);

  const BlockCipher& cipher_;
  std::size_t block_size_;
  bool seeded_ = false;
  /// OFB feedback register O_i; ciphers have block size <= 16.
  std::array<std::uint8_t, 16> feedback_{};
  /// Buffered keystream bytes [used_, filled_) not yet consumed.
  std::vector<std::uint8_t> keystream_;
  std::size_t used_ = 0;
  std::size_t filled_ = 0;
};

/// Derive a deterministic per-segment IV from a flow IV and a segment
/// sequence number, as the sender and receiver must agree on one without
/// shipping it per packet.  Writes cipher.block_size() bytes into `out`.
void segment_iv(const BlockCipher& cipher,
                std::span<const std::uint8_t> flow_iv,
                std::uint64_t sequence_number, std::span<std::uint8_t> out);

/// Allocating convenience wrapper around the span-out overload.
[[nodiscard]] std::vector<std::uint8_t> segment_iv(
    const BlockCipher& cipher, std::span<const std::uint8_t> flow_iv,
    std::uint64_t sequence_number);

}  // namespace tv::crypto
