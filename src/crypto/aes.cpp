#include "crypto/aes.hpp"

#include <cstring>
#include <stdexcept>

namespace tv::crypto {

namespace {

constexpr std::array<std::uint8_t, 256> kSbox = {
    0x63, 0x7c, 0x77, 0x7b, 0xf2, 0x6b, 0x6f, 0xc5, 0x30, 0x01, 0x67, 0x2b,
    0xfe, 0xd7, 0xab, 0x76, 0xca, 0x82, 0xc9, 0x7d, 0xfa, 0x59, 0x47, 0xf0,
    0xad, 0xd4, 0xa2, 0xaf, 0x9c, 0xa4, 0x72, 0xc0, 0xb7, 0xfd, 0x93, 0x26,
    0x36, 0x3f, 0xf7, 0xcc, 0x34, 0xa5, 0xe5, 0xf1, 0x71, 0xd8, 0x31, 0x15,
    0x04, 0xc7, 0x23, 0xc3, 0x18, 0x96, 0x05, 0x9a, 0x07, 0x12, 0x80, 0xe2,
    0xeb, 0x27, 0xb2, 0x75, 0x09, 0x83, 0x2c, 0x1a, 0x1b, 0x6e, 0x5a, 0xa0,
    0x52, 0x3b, 0xd6, 0xb3, 0x29, 0xe3, 0x2f, 0x84, 0x53, 0xd1, 0x00, 0xed,
    0x20, 0xfc, 0xb1, 0x5b, 0x6a, 0xcb, 0xbe, 0x39, 0x4a, 0x4c, 0x58, 0xcf,
    0xd0, 0xef, 0xaa, 0xfb, 0x43, 0x4d, 0x33, 0x85, 0x45, 0xf9, 0x02, 0x7f,
    0x50, 0x3c, 0x9f, 0xa8, 0x51, 0xa3, 0x40, 0x8f, 0x92, 0x9d, 0x38, 0xf5,
    0xbc, 0xb6, 0xda, 0x21, 0x10, 0xff, 0xf3, 0xd2, 0xcd, 0x0c, 0x13, 0xec,
    0x5f, 0x97, 0x44, 0x17, 0xc4, 0xa7, 0x7e, 0x3d, 0x64, 0x5d, 0x19, 0x73,
    0x60, 0x81, 0x4f, 0xdc, 0x22, 0x2a, 0x90, 0x88, 0x46, 0xee, 0xb8, 0x14,
    0xde, 0x5e, 0x0b, 0xdb, 0xe0, 0x32, 0x3a, 0x0a, 0x49, 0x06, 0x24, 0x5c,
    0xc2, 0xd3, 0xac, 0x62, 0x91, 0x95, 0xe4, 0x79, 0xe7, 0xc8, 0x37, 0x6d,
    0x8d, 0xd5, 0x4e, 0xa9, 0x6c, 0x56, 0xf4, 0xea, 0x65, 0x7a, 0xae, 0x08,
    0xba, 0x78, 0x25, 0x2e, 0x1c, 0xa6, 0xb4, 0xc6, 0xe8, 0xdd, 0x74, 0x1f,
    0x4b, 0xbd, 0x8b, 0x8a, 0x70, 0x3e, 0xb5, 0x66, 0x48, 0x03, 0xf6, 0x0e,
    0x61, 0x35, 0x57, 0xb9, 0x86, 0xc1, 0x1d, 0x9e, 0xe1, 0xf8, 0x98, 0x11,
    0x69, 0xd9, 0x8e, 0x94, 0x9b, 0x1e, 0x87, 0xe9, 0xce, 0x55, 0x28, 0xdf,
    0x8c, 0xa1, 0x89, 0x0d, 0xbf, 0xe6, 0x42, 0x68, 0x41, 0x99, 0x2d, 0x0f,
    0xb0, 0x54, 0xbb, 0x16};

constexpr std::array<std::uint8_t, 256> make_inverse_sbox() {
  std::array<std::uint8_t, 256> inv{};
  for (int i = 0; i < 256; ++i) {
    inv[kSbox[static_cast<std::size_t>(i)]] = static_cast<std::uint8_t>(i);
  }
  return inv;
}

constexpr std::array<std::uint8_t, 256> kInvSbox = make_inverse_sbox();

constexpr std::uint8_t xtime(std::uint8_t x) {
  return static_cast<std::uint8_t>((x << 1) ^ ((x & 0x80) ? 0x1b : 0x00));
}

// GF(2^8) multiplication (used by InvMixColumns).
constexpr std::uint8_t gmul(std::uint8_t a, std::uint8_t b) {
  std::uint8_t p = 0;
  for (int i = 0; i < 8; ++i) {
    if (b & 1) p ^= a;
    a = xtime(a);
    b >>= 1;
  }
  return p;
}

using State = std::array<std::uint8_t, 16>;  // column-major 4x4 state.

void sub_bytes(State& s) {
  for (auto& b : s) b = kSbox[b];
}

void inv_sub_bytes(State& s) {
  for (auto& b : s) b = kInvSbox[b];
}

// State layout: s[4*c + r] is row r, column c (matches FIPS-197 input order).
void shift_rows(State& s) {
  State t = s;
  for (int r = 1; r < 4; ++r) {
    for (int c = 0; c < 4; ++c) {
      s[static_cast<std::size_t>(4 * c + r)] =
          t[static_cast<std::size_t>(4 * ((c + r) % 4) + r)];
    }
  }
}

void inv_shift_rows(State& s) {
  State t = s;
  for (int r = 1; r < 4; ++r) {
    for (int c = 0; c < 4; ++c) {
      s[static_cast<std::size_t>(4 * ((c + r) % 4) + r)] =
          t[static_cast<std::size_t>(4 * c + r)];
    }
  }
}

void mix_columns(State& s) {
  for (int c = 0; c < 4; ++c) {
    std::uint8_t* col = &s[static_cast<std::size_t>(4 * c)];
    const std::uint8_t a0 = col[0], a1 = col[1], a2 = col[2], a3 = col[3];
    const std::uint8_t all = static_cast<std::uint8_t>(a0 ^ a1 ^ a2 ^ a3);
    col[0] = static_cast<std::uint8_t>(a0 ^ all ^ xtime(static_cast<std::uint8_t>(a0 ^ a1)));
    col[1] = static_cast<std::uint8_t>(a1 ^ all ^ xtime(static_cast<std::uint8_t>(a1 ^ a2)));
    col[2] = static_cast<std::uint8_t>(a2 ^ all ^ xtime(static_cast<std::uint8_t>(a2 ^ a3)));
    col[3] = static_cast<std::uint8_t>(a3 ^ all ^ xtime(static_cast<std::uint8_t>(a3 ^ a0)));
  }
}

void inv_mix_columns(State& s) {
  for (int c = 0; c < 4; ++c) {
    std::uint8_t* col = &s[static_cast<std::size_t>(4 * c)];
    const std::uint8_t a0 = col[0], a1 = col[1], a2 = col[2], a3 = col[3];
    col[0] = static_cast<std::uint8_t>(gmul(a0, 0x0e) ^ gmul(a1, 0x0b) ^
                                       gmul(a2, 0x0d) ^ gmul(a3, 0x09));
    col[1] = static_cast<std::uint8_t>(gmul(a0, 0x09) ^ gmul(a1, 0x0e) ^
                                       gmul(a2, 0x0b) ^ gmul(a3, 0x0d));
    col[2] = static_cast<std::uint8_t>(gmul(a0, 0x0d) ^ gmul(a1, 0x09) ^
                                       gmul(a2, 0x0e) ^ gmul(a3, 0x0b));
    col[3] = static_cast<std::uint8_t>(gmul(a0, 0x0b) ^ gmul(a1, 0x0d) ^
                                       gmul(a2, 0x09) ^ gmul(a3, 0x0e));
  }
}

void add_round_key(State& s, const std::uint8_t* rk) {
  for (int i = 0; i < 16; ++i) s[static_cast<std::size_t>(i)] ^= rk[i];
}

}  // namespace

AesKeySchedule AesKeySchedule::expand(std::span<const std::uint8_t> key) {
  if (key.size() != 16 && key.size() != 24 && key.size() != 32) {
    throw std::invalid_argument{"Aes: key must be 16, 24 or 32 bytes"};
  }
  AesKeySchedule ks;
  ks.key_bytes = key.size();
  const int nk = static_cast<int>(key.size() / 4);
  ks.rounds = nk + 6;
  const int total_words = 4 * (ks.rounds + 1);
  std::memcpy(ks.round_keys.data(), key.data(), key.size());
  std::uint8_t rcon = 0x01;
  for (int w = nk; w < total_words; ++w) {
    std::uint8_t temp[4];
    std::memcpy(temp, &ks.round_keys[static_cast<std::size_t>(w - 1) * 4], 4);
    if (w % nk == 0) {
      // RotWord + SubWord + Rcon.
      const std::uint8_t t0 = temp[0];
      temp[0] = static_cast<std::uint8_t>(kSbox[temp[1]] ^ rcon);
      temp[1] = kSbox[temp[2]];
      temp[2] = kSbox[temp[3]];
      temp[3] = kSbox[t0];
      rcon = xtime(rcon);
    } else if (nk > 6 && w % nk == 4) {
      for (auto& b : temp) b = kSbox[b];
    }
    for (int i = 0; i < 4; ++i) {
      ks.round_keys[static_cast<std::size_t>(w) * 4 +
                    static_cast<std::size_t>(i)] =
          ks.round_keys[static_cast<std::size_t>(w - nk) * 4 +
                        static_cast<std::size_t>(i)] ^
          temp[i];
    }
  }
  return ks;
}

Aes::Aes(std::span<const std::uint8_t> key)
    : schedule_(AesKeySchedule::expand(key)) {}

void Aes::encrypt_one(const std::uint8_t* in, std::uint8_t* out) const {
  State s;
  std::memcpy(s.data(), in, 16);
  add_round_key(s, schedule_.round_keys.data());
  for (int round = 1; round < schedule_.rounds; ++round) {
    sub_bytes(s);
    shift_rows(s);
    mix_columns(s);
    add_round_key(s,
                  &schedule_.round_keys[static_cast<std::size_t>(round) * 16]);
  }
  sub_bytes(s);
  shift_rows(s);
  add_round_key(
      s, &schedule_.round_keys[static_cast<std::size_t>(schedule_.rounds) * 16]);
  std::memcpy(out, s.data(), 16);
}

void Aes::encrypt_block(std::span<const std::uint8_t> in,
                        std::span<std::uint8_t> out) const {
  if (in.size() != 16 || out.size() != 16) {
    throw std::invalid_argument{"Aes::encrypt_block: need 16-byte buffers"};
  }
  encrypt_one(in.data(), out.data());
}

void Aes::encrypt_blocks(std::span<const std::uint8_t> in,
                         std::span<std::uint8_t> out, std::size_t n) const {
  check_batch_args(in.size(), out.size(), n);
  for (std::size_t i = 0; i < n; ++i) {
    encrypt_one(in.data() + i * 16, out.data() + i * 16);
  }
}

void Aes::ofb_keystream(std::span<std::uint8_t> feedback,
                        std::span<std::uint8_t> out, std::size_t n) const {
  if (feedback.size() < 16) {
    throw std::invalid_argument{"Aes::ofb_keystream: feedback too small"};
  }
  check_batch_args(out.size(), out.size(), n);
  const std::uint8_t* prev = feedback.data();
  for (std::size_t i = 0; i < n; ++i) {
    std::uint8_t* slot = out.data() + i * 16;
    encrypt_one(prev, slot);
    prev = slot;
  }
  if (n > 0) std::memcpy(feedback.data(), prev, 16);
}

void Aes::decrypt_block(std::span<const std::uint8_t> in,
                        std::span<std::uint8_t> out) const {
  if (in.size() != 16 || out.size() != 16) {
    throw std::invalid_argument{"Aes::decrypt_block: need 16-byte buffers"};
  }
  State s;
  std::memcpy(s.data(), in.data(), 16);
  add_round_key(
      s, &schedule_.round_keys[static_cast<std::size_t>(schedule_.rounds) * 16]);
  for (int round = schedule_.rounds - 1; round >= 1; --round) {
    inv_shift_rows(s);
    inv_sub_bytes(s);
    add_round_key(s,
                  &schedule_.round_keys[static_cast<std::size_t>(round) * 16]);
    inv_mix_columns(s);
  }
  inv_shift_rows(s);
  inv_sub_bytes(s);
  add_round_key(s, schedule_.round_keys.data());
  std::memcpy(out.data(), s.data(), 16);
}

}  // namespace tv::crypto
