#include "crypto/suite.hpp"

#include <stdexcept>
#include <vector>

#include "crypto/aes.hpp"
#include "crypto/aes_ni.hpp"
#include "crypto/des.hpp"

namespace tv::crypto {

std::string_view to_string(Algorithm a) {
  switch (a) {
    case Algorithm::kAes128: return "AES128";
    case Algorithm::kAes256: return "AES256";
    case Algorithm::kTripleDes: return "3DES";
  }
  throw std::invalid_argument{"to_string: bad Algorithm"};
}

Algorithm algorithm_from_string(std::string_view name) {
  if (name == "AES128") return Algorithm::kAes128;
  if (name == "AES256") return Algorithm::kAes256;
  if (name == "3DES") return Algorithm::kTripleDes;
  throw std::invalid_argument{"algorithm_from_string: unknown algorithm"};
}

std::size_t key_size(Algorithm a) {
  switch (a) {
    case Algorithm::kAes128: return 16;
    case Algorithm::kAes256: return 32;
    case Algorithm::kTripleDes: return 24;
  }
  throw std::invalid_argument{"key_size: bad Algorithm"};
}

std::string_view to_string(CipherBackend b) {
  switch (b) {
    case CipherBackend::kAuto: return "auto";
    case CipherBackend::kScalar: return "scalar";
    case CipherBackend::kAesNi: return "aes-ni";
  }
  throw std::invalid_argument{"to_string: bad CipherBackend"};
}

bool aes_ni_selected(Algorithm a) {
  return a != Algorithm::kTripleDes && aes_ni_available();
}

std::unique_ptr<BlockCipher> make_cipher(Algorithm a,
                                         std::span<const std::uint8_t> key,
                                         CipherBackend backend) {
  if (key.size() != key_size(a)) {
    throw std::invalid_argument{"make_cipher: wrong key size"};
  }
  switch (a) {
    case Algorithm::kAes128:
    case Algorithm::kAes256:
      if (backend == CipherBackend::kAesNi ||
          (backend == CipherBackend::kAuto && aes_ni_available())) {
        return make_aes_ni(key);  // throws when explicitly requested but absent.
      }
      return std::make_unique<Aes>(key);
    case Algorithm::kTripleDes:
      if (backend == CipherBackend::kAesNi) {
        throw std::runtime_error{"make_cipher: no hardware backend for 3DES"};
      }
      return std::make_unique<TripleDes>(key);
  }
  throw std::invalid_argument{"make_cipher: bad Algorithm"};
}

std::unique_ptr<BlockCipher> make_cipher_from_seed(Algorithm a,
                                                   std::uint64_t seed,
                                                   CipherBackend backend) {
  // SplitMix64 expansion of the seed into key material.
  std::vector<std::uint8_t> key(key_size(a));
  std::uint64_t state = seed;
  for (std::size_t i = 0; i < key.size(); ++i) {
    if (i % 8 == 0) {
      state += 0x9e3779b97f4a7c15ULL;
      std::uint64_t z = state;
      z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
      z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
      state = z ^ (z >> 31);
    }
    key[i] = static_cast<std::uint8_t>((state >> (8 * (i % 8))) & 0xff);
  }
  return make_cipher(a, key, backend);
}

double relative_cost_per_byte(Algorithm a) {
  switch (a) {
    case Algorithm::kAes128: return 1.0;
    case Algorithm::kAes256: return 1.38;  // 14 rounds vs 10.
    case Algorithm::kTripleDes: return 3.6;  // 48 Feistel rounds on 8B blocks.
  }
  throw std::invalid_argument{"relative_cost_per_byte: bad Algorithm"};
}

}  // namespace tv::crypto
