// Hardware AES backend (x86 AES-NI).
//
// Byte-identical to the scalar crypto::Aes — it runs the same FIPS-197
// key schedule (AesKeySchedule) and the AESENC/AESDEC instruction
// semantics are exactly the standard round functions — but one block costs
// ~10 instructions instead of hundreds of S-box lookups.  The translation
// unit is compiled with -maes only on x86 builds; everywhere else the
// factory below reports the backend unavailable and make_cipher falls
// back to the scalar implementation.
//
// Availability is a *runtime* property (cpuid), not just a compile-time
// one: a binary built with AES-NI support still runs on a CPU without it
// by taking the scalar path, which is why suite::make_cipher consults
// aes_ni_available() per construction.
#pragma once

#include <cstdint>
#include <memory>
#include <span>

#include "crypto/block_cipher.hpp"

namespace tv::crypto {

/// True when this build has the AES-NI backend compiled in *and* the CPU
/// executing right now advertises the AES instruction set.
[[nodiscard]] bool aes_ni_available();

/// Construct the hardware AES cipher (key 16, 24 or 32 bytes).  Throws
/// std::runtime_error when aes_ni_available() is false and
/// std::invalid_argument on a bad key size.
[[nodiscard]] std::unique_ptr<BlockCipher> make_aes_ni(
    std::span<const std::uint8_t> key);

}  // namespace tv::crypto
