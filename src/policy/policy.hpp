// Encryption policies (Section 3): which packets of a video flow get
// encrypted, and with which algorithm.
//
// A selection policy P is (i) the symmetric algorithm and (ii) the set of
// packets to encrypt.  The paper evaluates: none, all, I-frame packets
// only, P-frame packets only, I-frames plus a fraction alpha of P-frame
// packets (Fig. 9 / Table 2), and partial I-frame encryption (Section 6.2,
// found inadequate).  Fractional selections are deterministic stride
// patterns so experiments are exactly reproducible.
#pragma once

#include <string>
#include <string_view>
#include <vector>

#include "crypto/suite.hpp"
#include "net/packetizer.hpp"

namespace tv::policy {

enum class Mode {
  kNone,            ///< send everything in the clear.
  kIFrames,         ///< encrypt every packet of every I-frame.
  kPFrames,         ///< encrypt every packet of every P-frame.
  kAll,             ///< encrypt everything.
  kIPlusFractionP,  ///< I-frames plus fraction `fraction` of P packets.
  kFractionI,       ///< fraction `fraction` of I-frame packets only.
};

[[nodiscard]] const char* to_string(Mode mode);

struct EncryptionPolicy {
  Mode mode = Mode::kNone;
  crypto::Algorithm algorithm = crypto::Algorithm::kAes256;
  double fraction = 0.0;  ///< alpha for the fractional modes, in [0, 1].

  /// Human-readable label, e.g. "I+20%P (AES256)".
  [[nodiscard]] std::string label() const;

  /// Canonical machine-readable spec ("none", "I", "P", "all", "I+<pct>P",
  /// "<pct>I") that round-trips through policy_from_string.
  [[nodiscard]] std::string spec() const;

  /// Decide, per packet, whether this policy encrypts it.
  [[nodiscard]] std::vector<bool> select(
      const std::vector<net::VideoPacket>& packets) const;

  /// The fractions (q_I, q_P) of I-frame/P-frame packets this policy
  /// encrypts — the model inputs of Sections 4.2.2 and 4.3.
  [[nodiscard]] double i_packet_fraction() const;
  [[nodiscard]] double p_packet_fraction() const;

  void validate() const;
};

/// The four headline policies of Figs. 4-8 for a given algorithm, in the
/// paper's plotting order: none, P, I, all.
[[nodiscard]] std::vector<EncryptionPolicy> headline_policies(
    crypto::Algorithm algorithm);

/// One rung down the graceful-degradation ladder the live supervisor
/// walks under queue pressure: the encrypted share of P packets halves
/// each step until only I-frames remain — the confidentiality floor the
/// paper keeps (I-frame encryption already denies the eavesdropper a
/// usable picture), while each step sheds encryption work.
///
///   all -> I+50%P -> I+25%P -> ... -> I        (fractions < 5% snap to I)
///   P   -> none    (no I coverage to preserve)
///   <pct>I -> none (partial-I was found inadequate; dropping it costs
///                   nothing the paper values)
///   I, none -> unchanged (ladder floor).
[[nodiscard]] EncryptionPolicy degrade_step(const EncryptionPolicy& policy);

/// Parse a policy spec for `algorithm`.  Accepted grammar:
///   none | I | P | all | I+<pct>P (e.g. I+20P) | <pct>I (e.g. 50I)
/// Percentages may be fractional ("I+12.5P").  Throws std::invalid_argument
/// with the accepted grammar on malformed input.  Inverse of
/// EncryptionPolicy::spec().
[[nodiscard]] EncryptionPolicy policy_from_string(std::string_view spec,
                                                  crypto::Algorithm algorithm);

/// Traffic-shaping countermeasures against the ciphertext-only
/// traffic-analysis adversary (docs/adversary.md).  Orthogonal to the
/// encryption policy: encryption decides what an eavesdropper can *read*,
/// shaping decides what the wire *looks like*.  Every knob is priced in
/// the paper's delay/energy currency by running the shaped packets
/// through the same `core::ServiceModel`/`energy::` pipeline.
struct ShapingPolicy {
  /// 0 = off.  Otherwise pad every RTP payload up to the next multiple
  /// of this bucket (RFC 3550 pad trailer, applied before encryption so
  /// the true length is hidden inside the ciphertext).  Buckets are
  /// limited to [2, 256]: the one-byte pad count caps padding at 255.
  std::size_t pad_bucket_bytes = 0;

  /// Clear the wire marker bits and carry the "payload is encrypted"
  /// flag out-of-band in the StreamMap instead (the paper's Section 5
  /// signalling channel), denying the adversary its per-packet oracle.
  bool hide_markers = false;

  /// Sigma (seconds) of a seeded half-normal jitter added to every
  /// packet's send time.  0 = off.  Mean added delay is sigma*sqrt(2/pi).
  double jitter_stddev_s = 0.0;

  [[nodiscard]] bool enabled() const {
    return pad_bucket_bytes != 0 || hide_markers || jitter_stddev_s > 0.0;
  }

  /// Canonical spec: "none", or "+"-joined knobs in fixed order, e.g.
  /// "pad256+hidemark+jit2ms".  Round-trips through shaping_from_string.
  [[nodiscard]] std::string spec() const;

  void validate() const;
};

/// Parse a shaping spec.  Accepted grammar: "none", or any "+"-joined
/// combination of pad<bytes> | hidemark | jit<ms>ms (fractional ms ok).
/// Throws std::invalid_argument on malformed input.  Inverse of
/// ShapingPolicy::spec().
[[nodiscard]] ShapingPolicy shaping_from_string(std::string_view spec);

}  // namespace tv::policy
