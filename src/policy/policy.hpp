// Encryption policies (Section 3): which packets of a video flow get
// encrypted, and with which algorithm.
//
// A selection policy P is (i) the symmetric algorithm and (ii) the set of
// packets to encrypt.  The paper evaluates: none, all, I-frame packets
// only, P-frame packets only, I-frames plus a fraction alpha of P-frame
// packets (Fig. 9 / Table 2), and partial I-frame encryption (Section 6.2,
// found inadequate).  Fractional selections are deterministic stride
// patterns so experiments are exactly reproducible.
#pragma once

#include <string>
#include <string_view>
#include <vector>

#include "crypto/suite.hpp"
#include "net/packetizer.hpp"

namespace tv::policy {

enum class Mode {
  kNone,            ///< send everything in the clear.
  kIFrames,         ///< encrypt every packet of every I-frame.
  kPFrames,         ///< encrypt every packet of every P-frame.
  kAll,             ///< encrypt everything.
  kIPlusFractionP,  ///< I-frames plus fraction `fraction` of P packets.
  kFractionI,       ///< fraction `fraction` of I-frame packets only.
};

[[nodiscard]] const char* to_string(Mode mode);

struct EncryptionPolicy {
  Mode mode = Mode::kNone;
  crypto::Algorithm algorithm = crypto::Algorithm::kAes256;
  double fraction = 0.0;  ///< alpha for the fractional modes, in [0, 1].

  /// Human-readable label, e.g. "I+20%P (AES256)".
  [[nodiscard]] std::string label() const;

  /// Canonical machine-readable spec ("none", "I", "P", "all", "I+<pct>P",
  /// "<pct>I") that round-trips through policy_from_string.
  [[nodiscard]] std::string spec() const;

  /// Decide, per packet, whether this policy encrypts it.
  [[nodiscard]] std::vector<bool> select(
      const std::vector<net::VideoPacket>& packets) const;

  /// The fractions (q_I, q_P) of I-frame/P-frame packets this policy
  /// encrypts — the model inputs of Sections 4.2.2 and 4.3.
  [[nodiscard]] double i_packet_fraction() const;
  [[nodiscard]] double p_packet_fraction() const;

  void validate() const;
};

/// The four headline policies of Figs. 4-8 for a given algorithm, in the
/// paper's plotting order: none, P, I, all.
[[nodiscard]] std::vector<EncryptionPolicy> headline_policies(
    crypto::Algorithm algorithm);

/// One rung down the graceful-degradation ladder the live supervisor
/// walks under queue pressure: the encrypted share of P packets halves
/// each step until only I-frames remain — the confidentiality floor the
/// paper keeps (I-frame encryption already denies the eavesdropper a
/// usable picture), while each step sheds encryption work.
///
///   all -> I+50%P -> I+25%P -> ... -> I        (fractions < 5% snap to I)
///   P   -> none    (no I coverage to preserve)
///   <pct>I -> none (partial-I was found inadequate; dropping it costs
///                   nothing the paper values)
///   I, none -> unchanged (ladder floor).
[[nodiscard]] EncryptionPolicy degrade_step(const EncryptionPolicy& policy);

/// Parse a policy spec for `algorithm`.  Accepted grammar:
///   none | I | P | all | I+<pct>P (e.g. I+20P) | <pct>I (e.g. 50I)
/// Percentages may be fractional ("I+12.5P").  Throws std::invalid_argument
/// with the accepted grammar on malformed input.  Inverse of
/// EncryptionPolicy::spec().
[[nodiscard]] EncryptionPolicy policy_from_string(std::string_view spec,
                                                  crypto::Algorithm algorithm);

}  // namespace tv::policy
