#include "policy/policy.hpp"

#include <cmath>
#include <stdexcept>

namespace tv::policy {

namespace {

/// Deterministic stride selector: returns true for the k-th eligible item
/// iff floor((k+1) f) > floor(k f), selecting an exact fraction f with an
/// even spread (Bresenham-style).
bool stride_select(long k, double fraction) {
  return std::floor((static_cast<double>(k) + 1.0) * fraction) >
         std::floor(static_cast<double>(k) * fraction);
}

}  // namespace

const char* to_string(Mode mode) {
  switch (mode) {
    case Mode::kNone: return "none";
    case Mode::kIFrames: return "I";
    case Mode::kPFrames: return "P";
    case Mode::kAll: return "all";
    case Mode::kIPlusFractionP: return "I+aP";
    case Mode::kFractionI: return "aI";
  }
  return "?";
}

std::string EncryptionPolicy::label() const {
  const std::string alg{crypto::to_string(algorithm)};
  switch (mode) {
    case Mode::kNone: return "none";
    case Mode::kIFrames: return "I (" + alg + ")";
    case Mode::kPFrames: return "P (" + alg + ")";
    case Mode::kAll: return "all (" + alg + ")";
    case Mode::kIPlusFractionP:
      return "I+" + std::to_string(static_cast<int>(fraction * 100.0 + 0.5)) +
             "%P (" + alg + ")";
    case Mode::kFractionI:
      return std::to_string(static_cast<int>(fraction * 100.0 + 0.5)) +
             "%I (" + alg + ")";
  }
  return "?";
}

void EncryptionPolicy::validate() const {
  if (fraction < 0.0 || fraction > 1.0) {
    throw std::invalid_argument{"EncryptionPolicy: fraction out of [0,1]"};
  }
  if ((mode == Mode::kIPlusFractionP || mode == Mode::kFractionI) &&
      fraction == 0.0 && mode == Mode::kFractionI) {
    // 0% of I packets is just "none"; allowed but almost surely a mistake.
  }
}

std::vector<bool> EncryptionPolicy::select(
    const std::vector<net::VideoPacket>& packets) const {
  validate();
  std::vector<bool> out(packets.size(), false);
  long i_seen = 0;
  long p_seen = 0;
  for (std::size_t k = 0; k < packets.size(); ++k) {
    const bool is_i = packets[k].is_i_frame;
    bool enc = false;
    switch (mode) {
      case Mode::kNone:
        break;
      case Mode::kAll:
        enc = true;
        break;
      case Mode::kIFrames:
        enc = is_i;
        break;
      case Mode::kPFrames:
        enc = !is_i;
        break;
      case Mode::kIPlusFractionP:
        enc = is_i || (!is_i && stride_select(p_seen, fraction));
        break;
      case Mode::kFractionI:
        enc = is_i && stride_select(i_seen, fraction);
        break;
    }
    if (is_i) {
      ++i_seen;
    } else {
      ++p_seen;
    }
    out[k] = enc;
  }
  return out;
}

double EncryptionPolicy::i_packet_fraction() const {
  switch (mode) {
    case Mode::kNone:
    case Mode::kPFrames:
      return 0.0;
    case Mode::kIFrames:
    case Mode::kAll:
    case Mode::kIPlusFractionP:
      return 1.0;
    case Mode::kFractionI:
      return fraction;
  }
  return 0.0;
}

double EncryptionPolicy::p_packet_fraction() const {
  switch (mode) {
    case Mode::kNone:
    case Mode::kIFrames:
    case Mode::kFractionI:
      return 0.0;
    case Mode::kPFrames:
    case Mode::kAll:
      return 1.0;
    case Mode::kIPlusFractionP:
      return fraction;
  }
  return 0.0;
}

std::vector<EncryptionPolicy> headline_policies(crypto::Algorithm algorithm) {
  return {
      {Mode::kNone, algorithm, 0.0},
      {Mode::kPFrames, algorithm, 0.0},
      {Mode::kIFrames, algorithm, 0.0},
      {Mode::kAll, algorithm, 0.0},
  };
}

}  // namespace tv::policy
