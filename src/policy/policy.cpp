#include "policy/policy.hpp"

#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <stdexcept>

#include "net/rtp.hpp"

namespace tv::policy {

namespace {

/// "20" for 0.2, "12.5" for 0.125 — shortest representation of the
/// percentage, so spec() stays readable and round-trips exactly enough.
std::string format_pct(double fraction) {
  char buf[32];
  std::snprintf(buf, sizeof buf, "%g", fraction * 100.0);
  return buf;
}

/// Parse a percentage like "20" or "12.5" into a fraction; throws on
/// malformed or out-of-range input.
double parse_pct(std::string_view text, std::string_view full_spec) {
  const std::string value{text};
  errno = 0;
  char* end = nullptr;
  const double pct = std::strtod(value.c_str(), &end);
  if (value.empty() || end != value.c_str() + value.size() || errno != 0 ||
      pct < 0.0 || pct > 100.0) {
    throw std::invalid_argument{"bad percentage in policy spec: " +
                                std::string{full_spec}};
  }
  return pct / 100.0;
}

/// Deterministic stride selector: returns true for the k-th eligible item
/// iff floor((k+1) f) > floor(k f), selecting an exact fraction f with an
/// even spread (Bresenham-style).
bool stride_select(long k, double fraction) {
  return std::floor((static_cast<double>(k) + 1.0) * fraction) >
         std::floor(static_cast<double>(k) * fraction);
}

}  // namespace

const char* to_string(Mode mode) {
  switch (mode) {
    case Mode::kNone: return "none";
    case Mode::kIFrames: return "I";
    case Mode::kPFrames: return "P";
    case Mode::kAll: return "all";
    case Mode::kIPlusFractionP: return "I+aP";
    case Mode::kFractionI: return "aI";
  }
  return "?";
}

std::string EncryptionPolicy::label() const {
  const std::string alg{crypto::to_string(algorithm)};
  switch (mode) {
    case Mode::kNone: return "none";
    case Mode::kIFrames: return "I (" + alg + ")";
    case Mode::kPFrames: return "P (" + alg + ")";
    case Mode::kAll: return "all (" + alg + ")";
    case Mode::kIPlusFractionP:
      return "I+" + std::to_string(static_cast<int>(fraction * 100.0 + 0.5)) +
             "%P (" + alg + ")";
    case Mode::kFractionI:
      return std::to_string(static_cast<int>(fraction * 100.0 + 0.5)) +
             "%I (" + alg + ")";
  }
  return "?";
}

std::string EncryptionPolicy::spec() const {
  switch (mode) {
    case Mode::kNone: return "none";
    case Mode::kIFrames: return "I";
    case Mode::kPFrames: return "P";
    case Mode::kAll: return "all";
    case Mode::kIPlusFractionP: return "I+" + format_pct(fraction) + "P";
    case Mode::kFractionI: return format_pct(fraction) + "I";
  }
  return "?";
}

void EncryptionPolicy::validate() const {
  if (fraction < 0.0 || fraction > 1.0) {
    throw std::invalid_argument{"EncryptionPolicy: fraction out of [0,1]"};
  }
  if ((mode == Mode::kIPlusFractionP || mode == Mode::kFractionI) &&
      fraction == 0.0 && mode == Mode::kFractionI) {
    // 0% of I packets is just "none"; allowed but almost surely a mistake.
  }
}

std::vector<bool> EncryptionPolicy::select(
    const std::vector<net::VideoPacket>& packets) const {
  validate();
  std::vector<bool> out(packets.size(), false);
  long i_seen = 0;
  long p_seen = 0;
  for (std::size_t k = 0; k < packets.size(); ++k) {
    const bool is_i = packets[k].is_i_frame;
    bool enc = false;
    switch (mode) {
      case Mode::kNone:
        break;
      case Mode::kAll:
        enc = true;
        break;
      case Mode::kIFrames:
        enc = is_i;
        break;
      case Mode::kPFrames:
        enc = !is_i;
        break;
      case Mode::kIPlusFractionP:
        enc = is_i || (!is_i && stride_select(p_seen, fraction));
        break;
      case Mode::kFractionI:
        enc = is_i && stride_select(i_seen, fraction);
        break;
    }
    if (is_i) {
      ++i_seen;
    } else {
      ++p_seen;
    }
    out[k] = enc;
  }
  return out;
}

double EncryptionPolicy::i_packet_fraction() const {
  switch (mode) {
    case Mode::kNone:
    case Mode::kPFrames:
      return 0.0;
    case Mode::kIFrames:
    case Mode::kAll:
    case Mode::kIPlusFractionP:
      return 1.0;
    case Mode::kFractionI:
      return fraction;
  }
  return 0.0;
}

double EncryptionPolicy::p_packet_fraction() const {
  switch (mode) {
    case Mode::kNone:
    case Mode::kIFrames:
    case Mode::kFractionI:
      return 0.0;
    case Mode::kPFrames:
    case Mode::kAll:
      return 1.0;
    case Mode::kIPlusFractionP:
      return fraction;
  }
  return 0.0;
}

EncryptionPolicy degrade_step(const EncryptionPolicy& policy) {
  EncryptionPolicy next = policy;
  switch (policy.mode) {
    case Mode::kNone:
    case Mode::kIFrames:
      break;  // ladder floor.
    case Mode::kAll:
      next.mode = Mode::kIPlusFractionP;
      next.fraction = 0.5;
      break;
    case Mode::kIPlusFractionP:
      next.fraction = policy.fraction / 2.0;
      if (next.fraction < 0.05) {
        next.mode = Mode::kIFrames;
        next.fraction = 0.0;
      }
      break;
    case Mode::kPFrames:
    case Mode::kFractionI:
      next.mode = Mode::kNone;
      next.fraction = 0.0;
      break;
  }
  return next;
}

EncryptionPolicy policy_from_string(std::string_view spec,
                                    crypto::Algorithm algorithm) {
  if (spec == "none") return {Mode::kNone, algorithm, 0.0};
  if (spec == "I") return {Mode::kIFrames, algorithm, 0.0};
  if (spec == "P") return {Mode::kPFrames, algorithm, 0.0};
  if (spec == "all") return {Mode::kAll, algorithm, 0.0};
  // "I+<pct>P", e.g. I+20P.
  if (spec.size() > 3 && spec.rfind("I+", 0) == 0 && spec.back() == 'P') {
    const double fraction =
        parse_pct(spec.substr(2, spec.size() - 3), spec);
    return {Mode::kIPlusFractionP, algorithm, fraction};
  }
  // "<pct>I", e.g. 50I (Section 6.2's partial I-frame encryption).
  if (spec.size() > 1 && spec.back() == 'I') {
    const double fraction =
        parse_pct(spec.substr(0, spec.size() - 1), spec);
    return {Mode::kFractionI, algorithm, fraction};
  }
  throw std::invalid_argument{"unknown policy: " + std::string{spec} +
                              " (none|I|P|all|I+<pct>P|<pct>I)"};
}

std::string ShapingPolicy::spec() const {
  if (!enabled()) return "none";
  std::string out;
  const auto append = [&out](const std::string& part) {
    if (!out.empty()) out += '+';
    out += part;
  };
  if (pad_bucket_bytes != 0) {
    append("pad" + std::to_string(pad_bucket_bytes));
  }
  if (hide_markers) append("hidemark");
  if (jitter_stddev_s > 0.0) {
    char buf[32];
    std::snprintf(buf, sizeof buf, "jit%gms", jitter_stddev_s * 1000.0);
    append(buf);
  }
  return out;
}

void ShapingPolicy::validate() const {
  if (pad_bucket_bytes != 0 &&
      (pad_bucket_bytes < 2 || pad_bucket_bytes > net::kMaxRtpPadding + 1)) {
    throw std::invalid_argument{
        "ShapingPolicy: pad bucket must be 0 (off) or in [2, 256]"};
  }
  if (!(jitter_stddev_s >= 0.0) || jitter_stddev_s > 1.0) {
    throw std::invalid_argument{
        "ShapingPolicy: jitter sigma must be in [0, 1] seconds"};
  }
}

ShapingPolicy shaping_from_string(std::string_view spec) {
  ShapingPolicy out;
  if (spec == "none") return out;
  // Knobs must appear at most once each, in spec() order, so every
  // accepted string is the canonical one it round-trips to.
  int last_rank = -1;
  const auto take_rank = [&last_rank, spec](int rank) {
    if (rank <= last_rank) {
      throw std::invalid_argument{
          "shaping knobs must appear once, in pad/hidemark/jit order: " +
          std::string{spec}};
    }
    last_rank = rank;
  };
  std::size_t start = 0;
  while (start <= spec.size()) {
    const std::size_t plus = spec.find('+', start);
    const std::string_view part = spec.substr(
        start, plus == std::string_view::npos ? std::string_view::npos
                                              : plus - start);
    if (part.rfind("pad", 0) == 0 && part.size() > 3) {
      take_rank(0);
      const std::string digits{part.substr(3)};
      errno = 0;
      char* end = nullptr;
      const long bucket = std::strtol(digits.c_str(), &end, 10);
      if (end != digits.c_str() + digits.size() || errno != 0 || bucket < 2 ||
          bucket > static_cast<long>(net::kMaxRtpPadding) + 1) {
        throw std::invalid_argument{"bad pad bucket in shaping spec: " +
                                    std::string{spec}};
      }
      out.pad_bucket_bytes = static_cast<std::size_t>(bucket);
    } else if (part == "hidemark") {
      take_rank(1);
      out.hide_markers = true;
    } else if (part.rfind("jit", 0) == 0 && part.size() > 5 &&
               part.substr(part.size() - 2) == "ms") {
      take_rank(2);
      const std::string digits{part.substr(3, part.size() - 5)};
      errno = 0;
      char* end = nullptr;
      const double ms = std::strtod(digits.c_str(), &end);
      if (digits.empty() || end != digits.c_str() + digits.size() ||
          errno != 0 || !(ms > 0.0)) {
        throw std::invalid_argument{"bad jitter in shaping spec: " +
                                    std::string{spec}};
      }
      out.jitter_stddev_s = ms / 1000.0;
    } else {
      throw std::invalid_argument{
          "unknown shaping knob: " + std::string{part} +
          " (none|pad<bytes>|hidemark|jit<ms>ms, joined with +)"};
    }
    if (plus == std::string_view::npos) break;
    start = plus + 1;
  }
  out.validate();
  return out;
}

std::vector<EncryptionPolicy> headline_policies(crypto::Algorithm algorithm) {
  return {
      {Mode::kNone, algorithm, 0.0},
      {Mode::kPFrames, algorithm, 0.0},
      {Mode::kIFrames, algorithm, 0.0},
      {Mode::kAll, algorithm, 0.0},
  };
}

}  // namespace tv::policy
