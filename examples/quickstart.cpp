// Quickstart: capture -> encode -> selectively encrypt -> transfer.
//
// Shows the minimal end-to-end use of the library: build a synthetic clip,
// encode it, encrypt only the I-frame packets with AES-256, simulate the
// WiFi transfer, and compare what the legitimate receiver and an
// eavesdropper can reconstruct.
#include <cstdio>

#include "core/experiment.hpp"

using namespace tv;

int main() {
  // 1. A 3-second (90-frame) low-motion CIF clip, GOP size 30.
  const core::Workload workload =
      core::build_workload(video::MotionLevel::kLow, /*gop_size=*/30,
                           /*frames=*/90, /*seed=*/42);
  std::printf("encoded %zu frames: mean I-frame %.0f B, mean P-frame %.0f B, "
              "%zu RTP packets\n",
              workload.stream.frames.size(), workload.stream.mean_i_bytes(),
              workload.stream.mean_p_bytes(), workload.packets.size());

  // 2. The policy: encrypt every packet of every I-frame with AES-256.
  core::ExperimentSpec spec;
  spec.policy = {policy::Mode::kIFrames, crypto::Algorithm::kAes256, 0.0};
  spec.pipeline.device = core::samsung_galaxy_s2();
  spec.repetitions = 3;
  spec.sensitivity_fraction = core::default_sensitivity(workload.motion);

  // 3. Run the transfer and look at both ends of the wire.
  const core::ExperimentResult result = core::run_experiment(spec, workload);
  std::printf("\npolicy %s encrypts %.0f%% of packets (%.0f%% of bytes)\n",
              result.label.c_str(),
              100.0 * result.encryption.packet_fraction(),
              100.0 * result.encryption.byte_fraction());
  std::printf("mean per-packet delay: %.1f ms (model predicts %.1f ms)\n",
              result.delay_ms.mean(), result.predicted_delay.mean_delay_ms);
  std::printf("receiver PSNR:     %.1f dB (MOS %.1f)\n",
              result.receiver_psnr_db.mean(), result.receiver_mos.mean());
  std::printf("eavesdropper PSNR: %.1f dB (MOS %.1f)  <- the protection\n",
              result.eavesdropper_psnr_db.mean(),
              result.eavesdropper_mos.mean());
  std::printf("device power: %.2f W\n", result.power_w.mean());
  return 0;
}
