// Cafe scenario: you are uploading a video over open WiFi while someone at
// the next table runs tcpdump.  Renders what each party actually sees
// (ASCII luma thumbnails) under three protection levels, for slow- and
// fast-motion content — the live version of the paper's Fig. 6.
#include <cstdio>
#include <vector>

#include "core/experiment.hpp"
#include "video/quality.hpp"
#include "util/arena.hpp"

using namespace tv;

namespace {

void show(const video::Frame& frame, const char* title) {
  std::printf("--- %s ---\n", title);
  for (const auto& line : video::ascii_thumbnail(frame, 56, 18)) {
    std::printf("%s\n", line.c_str());
  }
}

}  // namespace

int main() {
  for (auto motion : {video::MotionLevel::kLow, video::MotionLevel::kHigh}) {
    const auto workload = core::build_workload(motion, 30, 90, 7);
    const int shot = 45;
    std::printf("\n############ %s-motion clip ############\n",
                video::to_string(motion));
    show(workload.clip[shot], "original frame 45");

    const std::vector<policy::EncryptionPolicy> policies = {
        {policy::Mode::kNone, crypto::Algorithm::kAes256, 0.0},
        {policy::Mode::kIFrames, crypto::Algorithm::kAes256, 0.0},
        {policy::Mode::kIPlusFractionP, crypto::Algorithm::kAes256, 0.20},
    };
    for (const auto& pol : policies) {
      util::Arena arena;
      std::vector<net::VideoPacket> packets =
          net::clone_packets(workload.packets, arena);
      const auto selected = pol.select(packets);
      const auto cipher = crypto::make_cipher_from_seed(pol.algorithm, 99);
      std::vector<std::uint8_t> iv(cipher->block_size(), 0x17);
      net::encrypt_selected(packets, selected, *cipher, iv);

      core::PipelineConfig pipeline;
      pipeline.device = core::samsung_galaxy_s2();
      const auto transfer = core::simulate_transfer(pipeline, packets, 1234);
      const auto captured = net::reassemble(
          packets, transfer.eavesdropper_captured,
          static_cast<int>(workload.stream.frames.size()), nullptr, iv);
      const video::Decoder decoder{workload.codec};
      const auto seen = decoder.decode_stream(
          workload.stream.width, workload.stream.height, captured);
      char title[128];
      std::snprintf(title, sizeof title,
                    "eavesdropper under '%s'  (clip PSNR %.1f dB, MOS %.2f)",
                    pol.label().c_str(),
                    video::sequence_psnr(workload.clip, seen),
                    video::sequence_mos(workload.clip, seen));
      show(seen[shot], title);
    }
  }
  std::printf(
      "\nTakeaway: I-frame-only encryption blanks slow-motion content; fast "
      "motion needs I+20%%P before the snooper's screen turns to mush.\n");
  return 0;
}
