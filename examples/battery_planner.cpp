// Battery planner: how much recording time does each protection level buy?
//
// Uses the experiment pipeline to measure mean device power per policy and
// cipher on both handsets, converts to Monsoon-style uAh readings (eq. 29)
// and to hours of streaming on a standard 1650 mAh battery.
#include <cstdio>
#include <vector>

#include "core/experiment.hpp"
#include "energy/monsoon.hpp"

using namespace tv;

int main() {
  const double battery_mah = 1650.0;  // Galaxy S-II stock battery.
  const auto workload =
      core::build_workload(video::MotionLevel::kLow, 30, 120, 3);

  for (const auto& device :
       {core::samsung_galaxy_s2(), core::htc_amaze_4g()}) {
    std::printf("\n=== %s (slow-motion upload, GOP 30) ===\n",
                device.name.c_str());
    std::printf("%-18s %-10s %-12s %-12s\n", "policy", "power W",
                "uAh per 10s", "hours/battery");
    for (auto alg : {crypto::Algorithm::kAes256,
                     crypto::Algorithm::kTripleDes}) {
      const std::vector<policy::EncryptionPolicy> ladder = {
          {policy::Mode::kNone, alg, 0.0},
          {policy::Mode::kIFrames, alg, 0.0},
          {policy::Mode::kPFrames, alg, 0.0},
          {policy::Mode::kAll, alg, 0.0},
      };
      for (const auto& pol : ladder) {
        core::ExperimentSpec spec;
        spec.policy = pol;
        spec.pipeline.device = device;
        spec.repetitions = 5;
        spec.evaluate_quality = false;
        const auto r = core::run_experiment(spec, workload);
        const double watts = r.power_w.mean();
        const double uah = energy::microamp_hours_from_watts(watts, 10.0);
        const double hours =
            battery_mah * 1e-3 * energy::kMonsoonVoltage / watts;
        std::printf("%-18s %-10.2f %-12.0f %-12.1f\n", pol.label().c_str(),
                    watts, uah, hours);
      }
    }
  }
  std::printf(
      "\nTakeaway: I-frame-only AES keeps you close to unencrypted battery "
      "life; full 3DES encryption costs the most streaming time.\n");
  return 0;
}
