// Artifact export: produce files real tools can open.
//
// Runs one slow-motion transfer under I-frame encryption and writes
//   out/original.y4m       — the captured clip (ffplay out/original.y4m)
//   out/receiver.y4m       — what the legitimate receiver reconstructs
//   out/eavesdropper.y4m   — what the snooper reconstructs
//   out/eavesdropper.pcap  — the snooper's tcpdump capture (Wireshark;
//                            the RTP marker bit flags encrypted payloads)
#include <cstdio>
#include <filesystem>

#include "core/experiment.hpp"
#include "net/pcap.hpp"
#include "video/y4m.hpp"
#include "util/arena.hpp"

using namespace tv;

int main() {
  std::filesystem::create_directories("out");

  const auto workload = core::build_workload(video::MotionLevel::kLow, 30,
                                             120, 8);
  policy::EncryptionPolicy pol{policy::Mode::kIFrames,
                               crypto::Algorithm::kAes256, 0.0};
  tv::util::Arena arena;
  std::vector<net::VideoPacket> packets =
      net::clone_packets(workload.packets, arena);
  const auto selected = pol.select(packets);
  const auto cipher = crypto::make_cipher_from_seed(pol.algorithm, 4242);
  std::vector<std::uint8_t> iv(cipher->block_size(), 0x5c);
  net::encrypt_selected(packets, selected, *cipher, iv);

  core::PipelineConfig pipeline;
  pipeline.device = core::samsung_galaxy_s2();
  const auto transfer = core::simulate_transfer(pipeline, packets, 1);
  const int frames = static_cast<int>(workload.stream.frames.size());
  const video::Decoder decoder{workload.codec};

  const auto rx_frames = net::reassemble(packets, transfer.receiver_delivered,
                                         frames, cipher.get(), iv);
  const auto rx = decoder.decode_stream(workload.stream.width,
                                        workload.stream.height, rx_frames);
  const auto ev_frames = net::reassemble(
      packets, transfer.eavesdropper_captured, frames, nullptr, iv);
  const auto ev = decoder.decode_stream(workload.stream.width,
                                        workload.stream.height, ev_frames);

  video::write_y4m_file("out/original.y4m", workload.clip);
  video::write_y4m_file("out/receiver.y4m", rx);
  video::write_y4m_file("out/eavesdropper.y4m", ev);

  std::vector<double> timestamps;
  timestamps.reserve(packets.size());
  for (const auto& t : transfer.timings) timestamps.push_back(t.completion);
  net::write_pcap_file(
      "out/eavesdropper.pcap",
      net::capture_of(packets, transfer.eavesdropper_captured, timestamps));

  std::printf("wrote out/original.y4m (%zu frames)\n", workload.clip.size());
  std::printf("wrote out/receiver.y4m      PSNR %.1f dB\n",
              video::sequence_psnr(workload.clip, rx));
  std::printf("wrote out/eavesdropper.y4m  PSNR %.1f dB (policy %s)\n",
              video::sequence_psnr(workload.clip, ev), pol.label().c_str());
  std::printf("wrote out/eavesdropper.pcap (%zu packets captured)\n",
              net::capture_of(packets, transfer.eavesdropper_captured,
                              timestamps)
                  .size());
  std::printf("open the .y4m files with ffplay and the .pcap with wireshark\n");
  return 0;
}
