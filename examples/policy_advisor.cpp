// The Fig. 1 workflow: a user picks "preserve privacy with performance
// tradeoff", so the framework (i) calibrates the model from a short probe
// transfer, (ii) evaluates the policy ladder analytically — no extra
// transfers — and (iii) recommends the cheapest policy that makes the
// stream unusable to an eavesdropper.
#include <cstdio>

#include "core/advisor.hpp"
#include "video/motion.hpp"
#include "core/experiment.hpp"

using namespace tv;

int main() {
  // The clip the user just captured (fast motion: a street scene).
  const auto workload =
      core::build_workload(video::MotionLevel::kHigh, 30, 120, 99);
  const auto report = video::classify_motion(workload.clip);
  std::printf("AForge-style motion classifier: score %.3f -> %s motion\n",
              report.score, video::to_string(report.level));

  // Probe transfer (unencrypted) to calibrate the model, Section 6.1.
  core::PipelineConfig pipeline;
  pipeline.device = core::samsung_galaxy_s2();
  const auto probe = core::simulate_transfer(pipeline, workload.packets, 555);
  const auto traffic =
      core::calibrate_traffic(workload.packets, probe.timings, workload.fps);
  const auto service = core::calibrate_service(workload.packets,
                                               probe.timings, pipeline,
                                               traffic);
  std::printf("calibrated 2-MMPP: lambda1=%.0f/s (I bursts), lambda2=%.1f/s "
              "(P traffic), p1=%.1f/s, p2=%.2f/s\n",
              traffic.mmpp.lambda1, traffic.mmpp.lambda2, traffic.mmpp.r12,
              traffic.mmpp.r21);

  core::DistortionInputs di;
  di.gop_size = workload.codec.gop_size;
  di.n_gops = static_cast<int>(workload.stream.frames.size()) /
              workload.codec.gop_size;
  di.sensitivity_fraction = core::default_sensitivity(report.level);
  di.base_mse = workload.base_mse;
  di.null_mse = workload.null_mse;
  di.inter = workload.inter;

  core::AdvisorRequest request;
  request.max_eavesdropper_psnr_db = 18.0;  // "unviewable" ceiling.
  request.objective = core::AdvisorRequest::Objective::kDelay;

  const auto result =
      core::advise(request, traffic, service, pipeline.device, di,
                   1.0 - pipeline.eavesdropper_loss_prob);

  std::printf("\n%-16s %-12s %-12s %-10s %s\n", "policy", "delay (ms)",
              "eaves dB", "power (W)", "confidential?");
  for (const auto& eval : result.evaluations) {
    std::printf("%-16s %-12.1f %-12.1f %-10.2f %s\n",
                eval.policy.label().c_str(), eval.delay.mean_delay_ms,
                eval.eavesdropper.psnr_db, eval.power.mean_power_w,
                eval.confidential ? "yes" : "no");
  }
  if (result.recommendation) {
    std::printf("\nrecommended: %s  (%.1f ms, %.2f W, eavesdropper %.1f dB)\n",
                result.recommendation->policy.label().c_str(),
                result.recommendation->delay.mean_delay_ms,
                result.recommendation->power.mean_power_w,
                result.recommendation->eavesdropper.psnr_db);
  } else {
    std::printf("\nno policy meets the ceiling; encrypt everything.\n");
  }
  return 0;
}
