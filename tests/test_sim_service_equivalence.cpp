// Cross-implementation equivalence for the shared service law.
//
// sim::simulate_sender must draw its T_e/T_b/T_t stages through
// core::ServiceModel on the documented derived RNG streams — the same model
// core::simulate_transfer composes.  This test captures the simulator's
// per-packet service events and replays the exact draw sequence against
// ServiceModel on independently re-derived streams: every captured stage
// value must match bit-for-bit.  If either side stops consuming the shared
// model (or reorders its draws), the replay diverges immediately.
#include <gtest/gtest.h>

#include <string_view>
#include <vector>

#include "core/service_model.hpp"
#include "core/trace.hpp"
#include "sim/sender_sim.hpp"
#include "util/rng.hpp"

namespace tv::sim {
namespace {

// The simulator's per-stage stream tags (sender_sim.cpp).
constexpr std::uint64_t kClassStream = 3;
constexpr std::uint64_t kEncryptStream = 4;
constexpr std::uint64_t kBackoffStream = 5;
constexpr std::uint64_t kTransmitStream = 6;

class CollectSink final : public core::TraceSink {
 public:
  void event(const core::TraceEvent& e) override { events.push_back(e); }
  std::vector<core::TraceEvent> events;
};

SenderSimSpec traced_spec() {
  SenderSimSpec spec;
  spec.arrivals = queueing::Mmpp2{50.0, 5.0, 2400.0, 160.0};
  spec.service.p_i = 0.15;
  spec.service.q_i = 1.0;
  spec.service.q_p = 0.25;  // both classes exercise the encrypt branch.
  spec.service.enc_i_mean = 0.45e-3;
  spec.service.enc_i_stddev = 0.05e-3;
  spec.service.enc_p_mean = 0.35e-3;
  spec.service.enc_p_stddev = 0.04e-3;
  spec.service.tx_i_mean = 1.2e-3;
  spec.service.tx_i_stddev = 1.2e-4;
  spec.service.tx_p_mean = 0.8e-3;
  spec.service.tx_p_stddev = 0.8e-4;
  spec.service.success_prob = 0.9;
  spec.service.backoff_rate = 3000.0;
  spec.events = 4000;
  spec.warmup = 400;
  spec.batches = 20;
  spec.seed = 2025;
  return spec;
}

TEST(ServiceModelEquivalence, SenderSimDrawsAreTheSharedModelsDraws) {
  SenderSimSpec spec = traced_spec();
  CollectSink sink;
  spec.trace = &sink;
  (void)simulate_sender(spec);
  ASSERT_FALSE(sink.events.empty());

  // Replay: independent streams derived exactly as the simulator derives
  // them, consumed through the shared core::ServiceModel.
  util::Rng class_rng{util::derive_seed(spec.seed, kClassStream)};
  util::Rng enc_rng{util::derive_seed(spec.seed, kEncryptStream)};
  util::Rng backoff_rng{util::derive_seed(spec.seed, kBackoffStream)};
  util::Rng tx_rng{util::derive_seed(spec.seed, kTransmitStream)};
  core::ServiceModel model;
  model.mac_success_prob = spec.service.success_prob;
  model.backoff_rate = spec.service.backoff_rate;

  const auto& p = spec.service;
  std::size_t idx = 0;
  std::int64_t packet = 0;
  std::uint64_t encrypted_packets = 0;
  while (idx < sink.events.size()) {
    const bool is_i = class_rng.bernoulli(p.p_i);
    const bool encrypted = class_rng.bernoulli(is_i ? p.q_i : p.q_p);
    if (encrypted) {
      ++encrypted_packets;
      ASSERT_LT(idx, sink.events.size());
      const auto& e = sink.events[idx++];
      ASSERT_EQ(std::string_view{e.kind}, "encrypt") << "packet " << packet;
      EXPECT_EQ(e.packet, packet);
      EXPECT_EQ(e.value_s,
                core::ServiceModel::draw_encryption(
                    enc_rng, is_i ? p.enc_i_mean : p.enc_p_mean,
                    is_i ? p.enc_i_stddev : p.enc_p_stddev));
    }
    {
      ASSERT_LT(idx, sink.events.size());
      const auto& e = sink.events[idx++];
      ASSERT_EQ(std::string_view{e.kind}, "backoff") << "packet " << packet;
      EXPECT_EQ(e.packet, packet);
      EXPECT_EQ(e.value_s, model.draw_backoff(backoff_rng).total_s);
    }
    {
      ASSERT_LT(idx, sink.events.size());
      const auto& e = sink.events[idx++];
      ASSERT_EQ(std::string_view{e.kind}, "transmit") << "packet " << packet;
      EXPECT_EQ(e.packet, packet);
      EXPECT_EQ(e.value_s, core::ServiceModel::draw_transmission(
                               tx_rng, is_i ? p.tx_i_mean : p.tx_p_mean,
                               is_i ? p.tx_i_stddev : p.tx_p_stddev));
    }
    ++packet;
  }
  // Every started packet (warmup included) emitted a full stage record,
  // and the mixed policy exercised both the encrypt and the clear path.
  EXPECT_EQ(packet, static_cast<std::int64_t>(spec.events + spec.warmup));
  EXPECT_GT(encrypted_packets, 0u);
  EXPECT_LT(encrypted_packets, static_cast<std::uint64_t>(packet));
}

TEST(ServiceModelEquivalence, TracingLeavesSenderStatisticsUntouched) {
  SenderSimSpec plain = traced_spec();
  SenderSimSpec traced = traced_spec();
  CollectSink sink;
  traced.trace = &sink;
  const SenderSimResult a = simulate_sender(plain);
  const SenderSimResult b = simulate_sender(traced);
  EXPECT_EQ(a.wait.mean(), b.wait.mean());
  EXPECT_EQ(a.service.mean(), b.service.mean());
  EXPECT_EQ(a.sojourn.mean(), b.sojourn.mean());
  EXPECT_EQ(a.busy_time, b.busy_time);
  EXPECT_EQ(a.served, b.served);
  EXPECT_FALSE(sink.events.empty());
}

}  // namespace
}  // namespace tv::sim
