#include "distortion/frame_success.hpp"

#include <gtest/gtest.h>

#include <cmath>

#include "distortion/inter_gop.hpp"
#include "util/rng.hpp"
#include "video/scene.hpp"

namespace tv::distortion {
namespace {

TEST(DecryptionRates, ReceiverAndEavesdropper) {
  EXPECT_DOUBLE_EQ(receiver_decryption_rate(0.97), 0.97);
  // p_d^e = (1 - q) p_s, Section 4.3.
  EXPECT_DOUBLE_EQ(eavesdropper_decryption_rate(0.4, 0.9), 0.54);
  EXPECT_DOUBLE_EQ(eavesdropper_decryption_rate(1.0, 0.9), 0.0);
  EXPECT_DOUBLE_EQ(eavesdropper_decryption_rate(0.0, 0.9), 0.9);
  EXPECT_THROW((void)eavesdropper_decryption_rate(-0.1, 0.9),
               std::invalid_argument);
}

TEST(FrameSuccess, SinglePacketFrameIsJustPd) {
  // n = 1: only the first packet matters (eq. 20 with s = 0).
  EXPECT_DOUBLE_EQ(frame_success_probability(1, 0, 0.83), 0.83);
}

TEST(FrameSuccess, ZeroSensitivityNeedsOnlyHeaderPacket) {
  EXPECT_NEAR(frame_success_probability(10, 0, 0.9), 0.9, 1e-12);
}

TEST(FrameSuccess, FullSensitivityNeedsEveryPacket) {
  const double p = 0.95;
  EXPECT_NEAR(frame_success_probability(8, 7, p), std::pow(p, 8), 1e-12);
}

TEST(FrameSuccess, MatchesExplicitBinomialSum) {
  // n = 4, s = 2: p * sum_{i>=2} C(3,i) p^i (1-p)^(3-i).
  const double p = 0.8;
  const double tail = 3.0 * p * p * (1 - p) + p * p * p;
  EXPECT_NEAR(frame_success_probability(4, 2, p), p * tail, 1e-12);
}

TEST(FrameSuccess, BoundaryDecryptionRates) {
  EXPECT_DOUBLE_EQ(frame_success_probability(12, 5, 0.0), 0.0);
  EXPECT_DOUBLE_EQ(frame_success_probability(12, 5, 1.0), 1.0);
}

class FrameSuccessMonotone
    : public ::testing::TestWithParam<std::pair<int, int>> {};

TEST_P(FrameSuccessMonotone, IncreasesWithPdDecreasesWithSensitivity) {
  const auto [n, s] = GetParam();
  double prev = -1.0;
  for (double p : {0.1, 0.3, 0.5, 0.7, 0.9, 0.99}) {
    const double v = frame_success_probability(n, s, p);
    EXPECT_GT(v, prev);
    prev = v;
  }
  if (s + 1 <= n - 1) {
    EXPECT_GE(frame_success_probability(n, s, 0.8),
              frame_success_probability(n, s + 1, 0.8));
  }
}

INSTANTIATE_TEST_SUITE_P(Shapes, FrameSuccessMonotone,
                         ::testing::Values(std::pair{2, 1}, std::pair{5, 2},
                                           std::pair{18, 9}, std::pair{18, 17},
                                           std::pair{40, 10}));

TEST(FrameSuccess, AgreesWithMonteCarlo) {
  util::Rng rng{31};
  const int n = 12;
  const int s = 7;
  const double p = 0.85;
  int ok = 0;
  constexpr int kTrials = 200000;
  for (int t = 0; t < kTrials; ++t) {
    if (!rng.bernoulli(p)) continue;  // first packet.
    int usable = 0;
    for (int i = 0; i < n - 1; ++i) usable += rng.bernoulli(p) ? 1 : 0;
    if (usable >= s) ++ok;
  }
  EXPECT_NEAR(static_cast<double>(ok) / kTrials,
              frame_success_probability(n, s, p), 0.005);
}

TEST(FrameSuccess, ValidatesArguments) {
  EXPECT_THROW((void)frame_success_probability(0, 0, 0.5), std::invalid_argument);
  EXPECT_THROW((void)frame_success_probability(4, 4, 0.5), std::invalid_argument);
  EXPECT_THROW((void)frame_success_probability(4, -1, 0.5), std::invalid_argument);
  EXPECT_THROW((void)frame_success_probability(4, 1, 1.5), std::invalid_argument);
}

TEST(Sensitivity, FractionMapping) {
  EXPECT_EQ(sensitivity_from_fraction(1, 0.9), 0);   // single packet frame.
  EXPECT_EQ(sensitivity_from_fraction(11, 0.5), 5);
  EXPECT_EQ(sensitivity_from_fraction(11, 1.0), 10);
  EXPECT_EQ(sensitivity_from_fraction(11, 0.0), 0);
  EXPECT_THROW((void)sensitivity_from_fraction(0, 0.5), std::invalid_argument);
  EXPECT_THROW((void)sensitivity_from_fraction(5, 1.5), std::invalid_argument);
}

TEST(DistanceDistortion, MeasurementGrowsWithDistanceForMovingContent) {
  const video::SceneGenerator gen{
      video::SceneParameters::preset(video::MotionLevel::kMedium), 3};
  const auto clip = gen.render_clip(40);
  const auto samples = measure_substitution_distortion(clip, 8);
  ASSERT_EQ(samples.distances.size(), 8u);
  EXPECT_GT(samples.mse.back(), samples.mse.front());
}

TEST(DistanceDistortion, FitInterpolatesMeasurements) {
  DistanceSamples samples;
  for (int d = 1; d <= 10; ++d) {
    samples.distances.push_back(d);
    samples.mse.push_back(5.0 * d + 0.3 * d * d);
  }
  const auto fit = DistanceDistortion::fit(samples, 5);
  for (int d = 1; d <= 10; ++d) {
    EXPECT_NEAR(fit(d), 5.0 * d + 0.3 * d * d, 0.5);
  }
}

TEST(DistanceDistortion, ClampsOutsideFittedRange) {
  DistanceSamples samples;
  for (int d = 1; d <= 6; ++d) {
    samples.distances.push_back(d);
    samples.mse.push_back(10.0 * d);
  }
  const auto fit = DistanceDistortion::fit(samples, 3);
  EXPECT_NEAR(fit(0.2), fit(1.0), 1e-9);     // below range.
  EXPECT_NEAR(fit(100.0), fit(6.0), 1e-9);   // saturated.
  EXPECT_GE(fit.max_distortion(), fit(3.0));
  EXPECT_DOUBLE_EQ(fit.saturation_distance(), 6.0);
}

TEST(DistanceDistortion, NeverNegative) {
  // A wiggly fit must be clamped at zero.
  DistanceSamples samples;
  for (int d = 1; d <= 7; ++d) {
    samples.distances.push_back(d);
    samples.mse.push_back(d <= 2 ? 0.01 : 20.0 * d);
  }
  const auto fit = DistanceDistortion::fit(samples, 5);
  for (double d = 1.0; d <= 7.0; d += 0.1) {
    EXPECT_GE(fit(d), 0.0);
  }
}

TEST(DistanceDistortion, DefaultIsZero) {
  const DistanceDistortion d;
  EXPECT_DOUBLE_EQ(d(1.0), 0.0);
  EXPECT_DOUBLE_EQ(d(100.0), 0.0);
}

}  // namespace
}  // namespace tv::distortion
