#include "sim/sender_sim.hpp"

#include <gtest/gtest.h>

#include <cmath>
#include <stdexcept>

#include "queueing/mmpp_g1.hpp"

namespace tv::sim {
namespace {

// A small but non-degenerate spec: modulated arrivals, all four service
// stages live, moderate load.  Kept cheap enough for the unit tier.
SenderSimSpec modulated_spec() {
  SenderSimSpec spec;
  spec.arrivals = queueing::Mmpp2{50.0, 5.0, 2400.0, 160.0};
  spec.service.p_i = 0.15;
  spec.service.q_i = 1.0;
  spec.service.q_p = 0.0;
  spec.service.enc_i_mean = 0.45e-3;
  spec.service.enc_i_stddev = 0.05e-3;
  spec.service.enc_p_mean = 0.35e-3;
  spec.service.enc_p_stddev = 0.04e-3;
  spec.service.tx_i_mean = 1.2e-3;
  spec.service.tx_i_stddev = 1.2e-4;
  spec.service.tx_p_mean = 0.8e-3;
  spec.service.tx_p_stddev = 0.8e-4;
  spec.service.success_prob = 0.9;
  spec.service.backoff_rate = 3000.0;
  spec.events = 40000;
  spec.warmup = 4000;
  spec.batches = 40;
  spec.seed = 7;
  return spec;
}

TEST(SenderSim, DeterministicInSeed) {
  const SenderSimSpec spec = modulated_spec();
  const SenderSimResult a = simulate_sender(spec);
  const SenderSimResult b = simulate_sender(spec);
  EXPECT_EQ(a.wait.mean(), b.wait.mean());
  EXPECT_EQ(a.service.mean(), b.service.mean());
  EXPECT_EQ(a.measured_time, b.measured_time);
  EXPECT_EQ(a.state1_time, b.state1_time);
  EXPECT_EQ(a.arrivals_state1, b.arrivals_state1);

  SenderSimSpec other = spec;
  other.seed = 8;
  EXPECT_NE(simulate_sender(other).wait.mean(), a.wait.mean());
}

TEST(SenderSim, CountsMatchTheSpec) {
  const SenderSimSpec spec = modulated_spec();
  const SenderSimResult r = simulate_sender(spec);
  EXPECT_EQ(r.wait.count(), spec.events);
  EXPECT_EQ(r.service.count(), spec.events);
  EXPECT_EQ(r.sojourn.count(), spec.events);
  EXPECT_EQ(r.served, spec.events);
  EXPECT_EQ(r.wait_state1.count() + r.wait_state2.count(), spec.events);
  // The arrival-state counters cover every arrival, warmup included: the
  // modulating chain is stationary from time zero, so transient packets
  // are valid samples of the arrival-state process (unlike their waits).
  EXPECT_EQ(r.arrivals_state1 + r.arrivals_state2,
            spec.warmup + spec.events);
  // events divides evenly into batches here, so every batch closed.
  EXPECT_EQ(r.wait_batch_means.count(), spec.batches);
  EXPECT_GT(r.measured_time, 0.0);
  EXPECT_GT(r.chain_time, 0.0);
  EXPECT_GT(r.busy_time, 0.0);
  EXPECT_LT(r.utilization(), 1.0);
  EXPECT_GT(r.state1_fraction(), 0.0);
  EXPECT_LT(r.state1_fraction(), 1.0);
}

// Degenerate the MMPP to Poisson (lambda1 == lambda2): the analytic solver
// then reproduces Pollaczek-Khinchine exactly, and the simulated mean wait
// must land inside the batch-means confidence band around it.
TEST(SenderSim, PoissonCaseMatchesPollaczekKhinchine) {
  SenderSimSpec spec = modulated_spec();
  spec.arrivals = queueing::Mmpp2{50.0, 5.0, 400.0, 400.0};
  spec.events = 60000;
  spec.warmup = 6000;
  spec.batches = 60;
  const SenderSimResult r = simulate_sender(spec);

  const auto model = queueing::ServiceTimeModel::from_parameters(spec.service);
  const auto solution = queueing::MmppG1Solver{spec.arrivals, model}.solve();
  const double tolerance =
      4.0 * r.wait_batch_means.stderr_mean() + 0.02 * solution.mean_wait;
  EXPECT_NEAR(r.wait.mean(), solution.mean_wait, tolerance);
  EXPECT_NEAR(r.service.mean(), model.mean(),
              4.0 * r.service.stderr_mean());
  EXPECT_NEAR(r.utilization(), solution.utilization,
              0.03 * solution.utilization);
}

// With lambda1 >> lambda2 the chain occupancy and the arrival-weighted
// state shares must track the stationary distribution of eq. (2).
TEST(SenderSim, StateOccupancyTracksStationaryDistribution) {
  const SenderSimSpec spec = modulated_spec();
  const SenderSimResult r = simulate_sender(spec);
  const auto pi = spec.arrivals.stationary();
  const double lambda_bar =
      pi[0] * spec.arrivals.lambda1 + pi[1] * spec.arrivals.lambda2;
  EXPECT_NEAR(r.state1_fraction(), pi[0], 0.05);
  EXPECT_NEAR(r.arrival_state1_fraction(),
              pi[0] * spec.arrivals.lambda1 / lambda_bar, 0.07);
  // Packets arriving in the I-burst state queue behind the burst and wait
  // longer on average than packets arriving in the drained state.
  EXPECT_GT(r.wait_state1.mean(), r.wait_state2.mean());
}

TEST(SenderSim, RejectsInvalidSpecs) {
  SenderSimSpec unstable = modulated_spec();
  unstable.arrivals = queueing::Mmpp2{50.0, 5.0, 2400.0, 2400.0};
  EXPECT_THROW(unstable.validate(), std::domain_error);
  EXPECT_THROW((void)simulate_sender(unstable), std::domain_error);

  SenderSimSpec no_events = modulated_spec();
  no_events.events = 0;
  EXPECT_THROW(no_events.validate(), std::invalid_argument);

  SenderSimSpec bad_batches = modulated_spec();
  bad_batches.batches = 1;
  EXPECT_THROW(bad_batches.validate(), std::invalid_argument);
  bad_batches.batches = bad_batches.events + 1;
  EXPECT_THROW(bad_batches.validate(), std::invalid_argument);
}

}  // namespace
}  // namespace tv::sim
