#include "crypto/aes.hpp"

#include <gtest/gtest.h>

#include <array>
#include <cstdint>
#include <vector>

#include "util/rng.hpp"

namespace tv::crypto {
namespace {

std::vector<std::uint8_t> sequential_key(std::size_t n) {
  std::vector<std::uint8_t> key(n);
  for (std::size_t i = 0; i < n; ++i) key[i] = static_cast<std::uint8_t>(i);
  return key;
}

// FIPS-197 Appendix C example vectors: plaintext 00112233...ff under the
// sequential key.
const std::array<std::uint8_t, 16> kFipsPlain = {
    0x00, 0x11, 0x22, 0x33, 0x44, 0x55, 0x66, 0x77,
    0x88, 0x99, 0xaa, 0xbb, 0xcc, 0xdd, 0xee, 0xff};

TEST(Aes, Fips197Aes128Vector) {
  const Aes aes{sequential_key(16)};
  std::array<std::uint8_t, 16> out{};
  aes.encrypt_block(kFipsPlain, out);
  const std::array<std::uint8_t, 16> expected = {
      0x69, 0xc4, 0xe0, 0xd8, 0x6a, 0x7b, 0x04, 0x30,
      0xd8, 0xcd, 0xb7, 0x80, 0x70, 0xb4, 0xc5, 0x5a};
  EXPECT_EQ(out, expected);
}

TEST(Aes, Fips197Aes192Vector) {
  const Aes aes{sequential_key(24)};
  std::array<std::uint8_t, 16> out{};
  aes.encrypt_block(kFipsPlain, out);
  const std::array<std::uint8_t, 16> expected = {
      0xdd, 0xa9, 0x7c, 0xa4, 0x86, 0x4c, 0xdf, 0xe0,
      0x6e, 0xaf, 0x70, 0xa0, 0xec, 0x0d, 0x71, 0x91};
  EXPECT_EQ(out, expected);
}

TEST(Aes, Fips197Aes256Vector) {
  const Aes aes{sequential_key(32)};
  std::array<std::uint8_t, 16> out{};
  aes.encrypt_block(kFipsPlain, out);
  const std::array<std::uint8_t, 16> expected = {
      0x8e, 0xa2, 0xb7, 0xca, 0x51, 0x67, 0x45, 0xbf,
      0xea, 0xfc, 0x49, 0x90, 0x4b, 0x49, 0x60, 0x89};
  EXPECT_EQ(out, expected);
}

TEST(Aes, DecryptInvertsEncryptOnFipsVectors) {
  for (std::size_t bytes : {16u, 24u, 32u}) {
    const Aes aes{sequential_key(bytes)};
    std::array<std::uint8_t, 16> ct{};
    std::array<std::uint8_t, 16> back{};
    aes.encrypt_block(kFipsPlain, ct);
    aes.decrypt_block(ct, back);
    EXPECT_EQ(back, kFipsPlain) << "key size " << bytes;
  }
}

class AesRoundtrip : public ::testing::TestWithParam<std::size_t> {};

TEST_P(AesRoundtrip, RandomBlocksRoundtrip) {
  util::Rng rng{GetParam()};
  std::vector<std::uint8_t> key(GetParam() % 2 == 0 ? 16 : 32);
  for (auto& b : key) b = static_cast<std::uint8_t>(rng());
  const Aes aes{key};
  for (int i = 0; i < 50; ++i) {
    std::array<std::uint8_t, 16> pt{};
    for (auto& b : pt) b = static_cast<std::uint8_t>(rng());
    std::array<std::uint8_t, 16> ct{};
    std::array<std::uint8_t, 16> back{};
    aes.encrypt_block(pt, ct);
    aes.decrypt_block(ct, back);
    EXPECT_EQ(back, pt);
    EXPECT_NE(ct, pt);  // 2^-128 chance of a fixed point; effectively never.
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, AesRoundtrip,
                         ::testing::Values(1u, 2u, 3u, 4u, 5u, 6u));

TEST(Aes, EncryptionIsKeyDependent) {
  const Aes a{sequential_key(16)};
  auto other = sequential_key(16);
  other[0] ^= 0x01;
  const Aes b{other};
  std::array<std::uint8_t, 16> ca{};
  std::array<std::uint8_t, 16> cb{};
  a.encrypt_block(kFipsPlain, ca);
  b.encrypt_block(kFipsPlain, cb);
  EXPECT_NE(ca, cb);
}

TEST(Aes, RejectsBadKeyAndBlockSizes) {
  EXPECT_THROW(Aes{sequential_key(15)}, std::invalid_argument);
  EXPECT_THROW(Aes{sequential_key(0)}, std::invalid_argument);
  const Aes aes{sequential_key(16)};
  std::array<std::uint8_t, 15> small{};
  std::array<std::uint8_t, 16> out{};
  EXPECT_THROW(aes.encrypt_block(small, out), std::invalid_argument);
  EXPECT_THROW(aes.decrypt_block(small, out), std::invalid_argument);
}

TEST(Aes, MetadataIsConsistent) {
  const Aes aes128{sequential_key(16)};
  EXPECT_EQ(aes128.block_size(), 16u);
  EXPECT_EQ(aes128.key_size(), 16u);
  EXPECT_EQ(aes128.name(), "AES128");
  const Aes aes256{sequential_key(32)};
  EXPECT_EQ(aes256.name(), "AES256");
}

}  // namespace
}  // namespace tv::crypto
