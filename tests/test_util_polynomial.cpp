#include "util/polynomial.hpp"

#include <gtest/gtest.h>

#include <vector>

#include "util/rng.hpp"

namespace tv::util {
namespace {

TEST(Polynomial, EvaluatesHorner) {
  const Polynomial p{{1.0, -2.0, 3.0}};  // 1 - 2x + 3x^2.
  EXPECT_DOUBLE_EQ(p(0.0), 1.0);
  EXPECT_DOUBLE_EQ(p(1.0), 2.0);
  EXPECT_DOUBLE_EQ(p(2.0), 9.0);
}

TEST(Polynomial, DerivativeCoefficients) {
  const Polynomial p{{5.0, 1.0, 2.0, 4.0}};
  const Polynomial d = p.derivative();
  ASSERT_EQ(d.coefficients().size(), 3u);
  EXPECT_DOUBLE_EQ(d.coefficients()[0], 1.0);
  EXPECT_DOUBLE_EQ(d.coefficients()[1], 4.0);
  EXPECT_DOUBLE_EQ(d.coefficients()[2], 12.0);
  EXPECT_DOUBLE_EQ(Polynomial{{7.0}}.derivative()(3.0), 0.0);
}

TEST(Polyfit, RecoversExactPolynomial) {
  const Polynomial truth{{2.0, -1.0, 0.5, 0.25}};
  std::vector<double> xs;
  std::vector<double> ys;
  for (int i = 0; i <= 10; ++i) {
    xs.push_back(i * 0.7);
    ys.push_back(truth(i * 0.7));
  }
  const Polynomial fit = polyfit(xs, ys, 3);
  for (std::size_t i = 0; i < 4; ++i) {
    EXPECT_NEAR(fit.coefficients()[i], truth.coefficients()[i], 1e-8);
  }
  EXPECT_NEAR(r_squared(fit, xs, ys), 1.0, 1e-12);
}

TEST(Polyfit, Degree5OnNoisySamplesHasHighR2) {
  Rng rng{77};
  const Polynomial truth{{3.0, 2.0, 0.0, 0.1, 0.0, 0.01}};
  std::vector<double> xs;
  std::vector<double> ys;
  for (int i = 1; i <= 30; ++i) {
    xs.push_back(static_cast<double>(i) / 3.0);
    ys.push_back(truth(xs.back()) + rng.gaussian(0.0, 0.05));
  }
  const Polynomial fit = polyfit(xs, ys, 5);
  EXPECT_GT(r_squared(fit, xs, ys), 0.999);
}

TEST(Polyfit, RejectsDegenerateInput) {
  const std::vector<double> xs = {1.0, 2.0};
  const std::vector<double> ys = {1.0};
  EXPECT_THROW((void)polyfit(xs, ys, 1), std::invalid_argument);
  const std::vector<double> few = {1.0, 2.0};
  EXPECT_THROW((void)polyfit(few, few, 2), std::invalid_argument);
}

TEST(RSquared, ZeroForMeanPredictor) {
  const std::vector<double> xs = {1.0, 2.0, 3.0};
  const std::vector<double> ys = {1.0, 5.0, 3.0};
  const Polynomial mean_only{{3.0}};
  EXPECT_NEAR(r_squared(mean_only, xs, ys), 0.0, 1e-12);
}

}  // namespace
}  // namespace tv::util
