// Backend-equivalence and batched-API tests for the cipher redesign.
//
// The contract under test: every backend (scalar, AES-NI) and every call
// shape (per-block, batched, OFB stream) of the same algorithm+key
// produces byte-identical output.  That is what lets make_cipher() pick
// AES-NI by default without moving a single golden file.

#include <gtest/gtest.h>

#include <array>
#include <chrono>
#include <cstdint>
#include <vector>

#include "core/host_calibration.hpp"
#include "crypto/aes_ni.hpp"
#include "crypto/ofb.hpp"
#include "crypto/suite.hpp"
#include "util/cycle_clock.hpp"
#include "util/rng.hpp"

namespace tv::crypto {
namespace {

std::vector<std::uint8_t> sequential_key(std::size_t n) {
  std::vector<std::uint8_t> key(n);
  for (std::size_t i = 0; i < n; ++i) key[i] = static_cast<std::uint8_t>(i);
  return key;
}

std::vector<std::uint8_t> random_bytes(util::Rng& rng, std::size_t n) {
  std::vector<std::uint8_t> out(n);
  for (auto& b : out) b = static_cast<std::uint8_t>(rng() & 0xff);
  return out;
}

constexpr std::array<Algorithm, 3> kAlgorithms = {
    Algorithm::kAes128, Algorithm::kAes256, Algorithm::kTripleDes};

// FIPS-197 Appendix C vectors through the AES-NI backend: hardware rounds
// must match the reference cipher exactly, not just self-consistently.
const std::array<std::uint8_t, 16> kFipsPlain = {
    0x00, 0x11, 0x22, 0x33, 0x44, 0x55, 0x66, 0x77,
    0x88, 0x99, 0xaa, 0xbb, 0xcc, 0xdd, 0xee, 0xff};

TEST(AesNiBackend, Fips197Vectors) {
  if (!aes_ni_available()) GTEST_SKIP() << "no AES-NI on this CPU/build";
  const struct {
    std::size_t key_bytes;
    std::array<std::uint8_t, 16> expected;
  } cases[] = {
      {16,
       {0x69, 0xc4, 0xe0, 0xd8, 0x6a, 0x7b, 0x04, 0x30, 0xd8, 0xcd, 0xb7,
        0x80, 0x70, 0xb4, 0xc5, 0x5a}},
      {24,
       {0xdd, 0xa9, 0x7c, 0xa4, 0x86, 0x4c, 0xdf, 0xe0, 0x6e, 0xaf, 0x70,
        0xa0, 0xec, 0x0d, 0x71, 0x91}},
      {32,
       {0x8e, 0xa2, 0xb7, 0xca, 0x51, 0x67, 0x45, 0xbf, 0xea, 0xfc, 0x49,
        0x90, 0x4b, 0x49, 0x60, 0x89}},
  };
  for (const auto& c : cases) {
    const auto cipher = make_aes_ni(sequential_key(c.key_bytes));
    std::array<std::uint8_t, 16> out{};
    cipher->encrypt_block(kFipsPlain, out);
    EXPECT_EQ(out, c.expected) << "key bytes " << c.key_bytes;
    std::array<std::uint8_t, 16> back{};
    cipher->decrypt_block(out, back);
    EXPECT_EQ(back, kFipsPlain) << "key bytes " << c.key_bytes;
  }
}

TEST(AesNiBackend, SelectionRules) {
  // 3DES never routes to AES-NI; a forced kAesNi request for it throws.
  EXPECT_FALSE(aes_ni_selected(Algorithm::kTripleDes));
  EXPECT_THROW(make_cipher_from_seed(Algorithm::kTripleDes, 1,
                                     CipherBackend::kAesNi),
               std::runtime_error);
  for (Algorithm alg : {Algorithm::kAes128, Algorithm::kAes256}) {
    EXPECT_EQ(aes_ni_selected(alg), aes_ni_available());
    const auto cipher = make_cipher_from_seed(alg, 1, CipherBackend::kAuto);
    EXPECT_EQ(cipher->key_size(), alg == Algorithm::kAes128 ? 16u : 32u);
  }
  if (!aes_ni_available()) {
    EXPECT_THROW(
        make_cipher_from_seed(Algorithm::kAes128, 1, CipherBackend::kAesNi),
        std::runtime_error);
  }
}

// Batched encrypt_blocks must equal a per-block loop, on every backend.
TEST(BatchedApi, EncryptBlocksMatchesPerBlockLoop) {
  util::Rng rng{20130807};
  for (Algorithm alg : kAlgorithms) {
    for (CipherBackend backend : {CipherBackend::kScalar,
                                  CipherBackend::kAuto}) {
      const auto cipher = make_cipher_from_seed(alg, 42, backend);
      const std::size_t block = cipher->block_size();
      for (std::size_t n : {std::size_t{0}, std::size_t{1}, std::size_t{3},
                            std::size_t{17}, std::size_t{64}}) {
        const auto plain = random_bytes(rng, n * block);
        std::vector<std::uint8_t> batched(plain.size());
        std::vector<std::uint8_t> looped(plain.size());
        cipher->encrypt_blocks(plain, batched, n);
        for (std::size_t i = 0; i < n; ++i) {
          cipher->encrypt_block(
              std::span<const std::uint8_t>{plain.data() + i * block, block},
              std::span<std::uint8_t>{looped.data() + i * block, block});
        }
        EXPECT_EQ(batched, looped)
            << to_string(alg) << "/" << to_string(backend) << " n=" << n;
      }
    }
  }
}

TEST(BatchedApi, RejectsShortSpans) {
  const auto cipher =
      make_cipher_from_seed(Algorithm::kAes128, 7, CipherBackend::kScalar);
  std::vector<std::uint8_t> buf(64);
  EXPECT_THROW(cipher->encrypt_blocks(
                   std::span<const std::uint8_t>{buf.data(), 48}, buf, 4),
               std::invalid_argument);
  EXPECT_THROW(cipher->encrypt_blocks(
                   buf, std::span<std::uint8_t>{buf.data(), 48}, 4),
               std::invalid_argument);
}

// The acceptance property of the redesign: scalar and AES-NI backends are
// indistinguishable through the OFB path for arbitrary payload lengths.
TEST(BackendEquivalence, IdenticalOfbCiphertextForRandomLengths) {
  util::Rng rng{777};
  for (Algorithm alg : kAlgorithms) {
    const auto reference =
        make_cipher_from_seed(alg, 99, CipherBackend::kScalar);
    std::vector<std::unique_ptr<BlockCipher>> others;
    others.push_back(make_cipher_from_seed(alg, 99, CipherBackend::kAuto));
    if (alg != Algorithm::kTripleDes && aes_ni_available()) {
      others.push_back(make_cipher_from_seed(alg, 99, CipherBackend::kAesNi));
    }
    const std::vector<std::uint8_t> iv(reference->block_size(), 0x24);
    for (int trial = 0; trial < 24; ++trial) {
      const std::size_t len = static_cast<std::size_t>(rng() % 4097);
      const auto plain = random_bytes(rng, len);
      const auto expected = ofb_transform(*reference, iv, plain);
      for (const auto& other : others) {
        EXPECT_EQ(ofb_transform(*other, iv, plain), expected)
            << to_string(alg) << " len=" << len;
      }
    }
  }
}

TEST(OfbStreamApi, ResetEqualsFreshStream) {
  util::Rng rng{31337};
  const auto cipher =
      make_cipher_from_seed(Algorithm::kAes128, 5, CipherBackend::kAuto);
  const std::vector<std::uint8_t> iv1(cipher->block_size(), 0x11);
  const std::vector<std::uint8_t> iv2(cipher->block_size(), 0x22);
  const auto plain = random_bytes(rng, 1500);

  // One reused stream across two segments...
  OfbStream reused{*cipher};
  auto seg1 = plain;
  reused.reset(iv1);
  reused.apply(seg1);
  auto seg2 = plain;
  reused.reset(iv2);
  reused.apply(seg2);

  // ...must equal two fresh single-segment streams.
  EXPECT_EQ(seg1, ofb_transform(*cipher, iv1, plain));
  EXPECT_EQ(seg2, ofb_transform(*cipher, iv2, plain));
  EXPECT_NE(seg1, seg2);

  // Unseeded use is a programming error, loudly.
  OfbStream unseeded{*cipher};
  auto buf = plain;
  EXPECT_THROW(unseeded.apply(buf), std::logic_error);
}

TEST(OfbSpanApi, SpanOutMatchesVectorOverloadAndAliasing) {
  util::Rng rng{4242};
  for (Algorithm alg : kAlgorithms) {
    const auto cipher = make_cipher_from_seed(alg, 11, CipherBackend::kAuto);
    const std::vector<std::uint8_t> iv(cipher->block_size(), 0x5c);
    const auto plain = random_bytes(rng, 999);
    const auto expected = ofb_transform(*cipher, iv, plain);

    std::vector<std::uint8_t> out(plain.size());
    ofb_transform(*cipher, iv, plain, out);
    EXPECT_EQ(out, expected);

    auto in_place = plain;
    ofb_transform(*cipher, iv, in_place, in_place);
    EXPECT_EQ(in_place, expected);

    std::vector<std::uint8_t> wrong_size(plain.size() + 1);
    EXPECT_THROW(ofb_transform(*cipher, iv, plain, wrong_size),
                 std::invalid_argument);
  }
}

TEST(OfbSpanApi, SegmentIvSpanMatchesVectorOverload) {
  const auto cipher =
      make_cipher_from_seed(Algorithm::kAes256, 13, CipherBackend::kAuto);
  const std::vector<std::uint8_t> flow_iv(cipher->block_size(), 0x77);
  for (std::uint64_t seq : {0ULL, 1ULL, 65535ULL, 0x123456789ULL}) {
    const auto expected = segment_iv(*cipher, flow_iv, seq);
    std::vector<std::uint8_t> out(cipher->block_size());
    segment_iv(*cipher, flow_iv, seq, out);
    EXPECT_EQ(out, expected) << "seq=" << seq;
  }
}

// Cross-check the cost-model ordering against reality: the scalar
// implementations this model describes must actually rank
// AES128 < AES256 < 3DES per byte on this machine.
TEST(CostModel, RelativeCostOrderingMatchesMeasurement) {
  if (!util::cycle_clock_available()) {
    GTEST_SKIP() << "no cycle counter on this target";
  }
  ASSERT_LT(relative_cost_per_byte(Algorithm::kAes128),
            relative_cost_per_byte(Algorithm::kAes256));
  ASSERT_LT(relative_cost_per_byte(Algorithm::kAes256),
            relative_cost_per_byte(Algorithm::kTripleDes));

  const auto measure_cycles_per_byte = [](Algorithm alg) {
    const auto cipher =
        make_cipher_from_seed(alg, 2013, CipherBackend::kScalar);
    std::vector<std::uint8_t> buf(64 * 1024, 0xa5);
    const std::vector<std::uint8_t> iv(cipher->block_size(), 0x3c);
    OfbStream stream{*cipher};
    std::uint64_t best = ~0ULL;
    for (int rep = 0; rep < 3; ++rep) {
      stream.reset(iv);
      const std::uint64_t c0 = util::cycle_now();
      stream.apply(buf);
      best = std::min(best, util::cycle_now() - c0);
    }
    return static_cast<double>(best) / static_cast<double>(buf.size());
  };
  const double aes128 = measure_cycles_per_byte(Algorithm::kAes128);
  const double aes256 = measure_cycles_per_byte(Algorithm::kAes256);
  const double des3 = measure_cycles_per_byte(Algorithm::kTripleDes);
  EXPECT_LT(aes128, aes256) << "aes128=" << aes128 << " aes256=" << aes256;
  EXPECT_LT(aes256, des3) << "aes256=" << aes256 << " 3des=" << des3;
}

TEST(HostCalibration, MeasuresSaneProfile) {
  const auto m = core::measure_host_crypto(Algorithm::kAes128,
                                           CipherBackend::kScalar, 1 << 16);
  EXPECT_EQ(m.backend, CipherBackend::kScalar);
  EXPECT_GT(m.throughput_mb_s, 0.0);
  EXPECT_GE(m.per_packet_overhead_s, 0.0);
  EXPECT_GE(m.jitter_stddev_s, 0.0);

  const auto resolved =
      core::measure_host_crypto(Algorithm::kAes128, CipherBackend::kAuto,
                                1 << 16);
  EXPECT_EQ(resolved.backend, aes_ni_available() ? CipherBackend::kAesNi
                                                 : CipherBackend::kScalar);

  const auto profile = core::calibrated_host_profile(CipherBackend::kScalar);
  EXPECT_EQ(profile.key, "host");
  for (Algorithm alg : kAlgorithms) {
    EXPECT_GT(profile.speed(alg).throughput_mb_s, 0.0) << to_string(alg);
    // encryption_seconds must grow with payload so the service model stays
    // well ordered.
    EXPECT_LT(profile.encryption_seconds(alg, 100),
              profile.encryption_seconds(alg, 100000));
  }
}

}  // namespace
}  // namespace tv::crypto
