// Heterogeneous multi-class DCF: the n-station fixed point
// (wifi::solve_dcf_classes) and the multi-station slotted DES
// (wifi::simulate_dcf_classes), including the single-class degeneracy
// contracts both document and pinned 2-/3-station Bianchi regressions.
#include <gtest/gtest.h>

#include <stdexcept>
#include <vector>

#include "wifi/dcf_model.hpp"
#include "wifi/dcf_sim.hpp"

namespace tv::wifi {
namespace {

// --- Fixed point. ----------------------------------------------------------

TEST(MultiDcf, RejectsBadClasses) {
  EXPECT_THROW((void)solve_dcf_classes({}), std::invalid_argument);
  EXPECT_THROW((void)solve_dcf_classes({{0, 16, 6}}), std::invalid_argument);
  EXPECT_THROW((void)solve_dcf_classes({{2, 0, 6}}), std::invalid_argument);
  EXPECT_THROW((void)solve_dcf_classes({{2, 16, -1}}), std::invalid_argument);
  EXPECT_THROW((void)solve_dcf_classes({{2, 16, 6}, {1, 0, 6}}),
               std::invalid_argument);
}

// With one class the update sequence is solve_dcf's exact floating-point
// sequence (the cross-class product is empty == 1.0), so every output —
// including the iteration count — matches bit for bit.  This is the
// contract the cell engine's n=1 acceptance criterion rests on.
TEST(MultiDcf, SingleClassMatchesScalarSolverBitwise) {
  const int ns[] = {1, 2, 3, 5, 10, 25};
  const int ws[] = {8, 16, 32, 128};
  const int ms[] = {0, 1, 3, 6};
  for (int n : ns) {
    for (int w : ws) {
      for (int m : ms) {
        const DcfSolution scalar = solve_dcf({n, w, m});
        const MultiDcfSolution multi = solve_dcf_classes({{n, w, m}});
        ASSERT_EQ(multi.attempt_probability.size(), 1u);
        EXPECT_EQ(multi.attempt_probability[0], scalar.attempt_probability)
            << "n=" << n << " W=" << w << " m=" << m;
        EXPECT_EQ(multi.collision_probability[0],
                  scalar.collision_probability)
            << "n=" << n << " W=" << w << " m=" << m;
        EXPECT_EQ(multi.iterations, scalar.iterations)
            << "n=" << n << " W=" << w << " m=" << m;
      }
    }
  }
}

TEST(MultiDcf, OneStationCellIsDegenerate) {
  const MultiDcfSolution s = solve_dcf_classes({{1, 16, 6}});
  EXPECT_EQ(s.attempt_probability[0], 2.0 / 17.0);
  EXPECT_EQ(s.collision_probability[0], 0.0);
  EXPECT_EQ(s.iterations, 0);
  // The lone station's slot is idle or a success, never a collision.
  EXPECT_DOUBLE_EQ(s.idle_prob + s.success_prob, 1.0);
  EXPECT_DOUBLE_EQ(s.per_station_success_prob[0], s.success_prob);
}

// Splitting a homogeneous population into two identical classes must not
// change the physics, only the bookkeeping granularity.
TEST(MultiDcf, SymmetricSplitMatchesPooledPopulation) {
  const MultiDcfSolution pooled = solve_dcf_classes({{4, 16, 6}});
  const MultiDcfSolution split = solve_dcf_classes({{2, 16, 6}, {2, 16, 6}});
  EXPECT_NEAR(split.attempt_probability[0], pooled.attempt_probability[0],
              1e-12);
  EXPECT_NEAR(split.attempt_probability[1], pooled.attempt_probability[0],
              1e-12);
  EXPECT_NEAR(split.collision_probability[0], pooled.collision_probability[0],
              1e-12);
  EXPECT_NEAR(split.success_prob, pooled.success_prob, 1e-12);
  EXPECT_NEAR(split.class_success_prob[0] + split.class_success_prob[1],
              pooled.class_success_prob[0], 1e-12);
}

// The Jacobi iteration reads only the previous iterate, so a two-class
// cell solved in either order yields the same solution (for two classes
// even bitwise: every cross-class product has a single factor).
TEST(MultiDcf, TwoClassOrderInvariance) {
  const std::vector<DcfClass> ab{{3, 16, 4}, {5, 64, 6}};
  const std::vector<DcfClass> ba{{5, 64, 6}, {3, 16, 4}};
  const MultiDcfSolution s_ab = solve_dcf_classes(ab);
  const MultiDcfSolution s_ba = solve_dcf_classes(ba);
  EXPECT_EQ(s_ab.attempt_probability[0], s_ba.attempt_probability[1]);
  EXPECT_EQ(s_ab.attempt_probability[1], s_ba.attempt_probability[0]);
  EXPECT_EQ(s_ab.collision_probability[0], s_ba.collision_probability[1]);
  EXPECT_EQ(s_ab.collision_probability[1], s_ba.collision_probability[0]);
  EXPECT_EQ(s_ab.idle_prob, s_ba.idle_prob);
  EXPECT_EQ(s_ab.success_prob, s_ba.success_prob);
}

TEST(MultiDcf, BackgroundTrafficRaisesVideoCollisionProbability) {
  const MultiDcfSolution alone = solve_dcf_classes({{4, 16, 6}});
  const MultiDcfSolution shared =
      solve_dcf_classes({{4, 16, 6}, {5, 32, 6}});
  EXPECT_GT(shared.collision_probability[0], alone.collision_probability[0]);
  // A wider background window attempts less often than the video class.
  EXPECT_LT(shared.attempt_probability[1], shared.attempt_probability[0]);
  EXPECT_LT(shared.per_station_success_prob[0],
            alone.per_station_success_prob[0]);
}

TEST(MultiDcf, SlotEventProbabilitiesAreConsistent) {
  const MultiDcfSolution s = solve_dcf_classes({{3, 16, 5}, {4, 32, 6}});
  EXPECT_DOUBLE_EQ(s.idle_prob + s.any_transmission_prob, 1.0);
  EXPECT_NEAR(s.success_prob,
              s.class_success_prob[0] + s.class_success_prob[1], 1e-15);
  for (std::size_t c = 0; c < 2; ++c) {
    EXPECT_GT(s.attempt_probability[c], 0.0);
    EXPECT_LT(s.attempt_probability[c], 1.0);
    EXPECT_GT(s.collision_probability[c], 0.0);
    EXPECT_LT(s.collision_probability[c], 1.0);
    EXPECT_GT(s.class_success_prob[c], 0.0);
  }
  EXPECT_LE(s.success_prob, s.any_transmission_prob);
}

// In a homogeneous two-station cell the fixed point collapses to a closed
// relation: a station collides iff the other one transmits, so p == tau.
TEST(MultiDcf, TwoStationCollisionEqualsAttemptProbability) {
  for (int w : {8, 16, 32, 64}) {
    const MultiDcfSolution s = solve_dcf_classes({{2, w, 6}});
    EXPECT_NEAR(s.collision_probability[0], s.attempt_probability[0], 1e-11)
        << "W=" << w;
  }
}

// Pinned regression values (7 significant digits, from the tracked
// validation grid): a silent solver change must trip these.
TEST(MultiDcf, PinnedBianchiRegressionValues) {
  const MultiDcfSolution two = solve_dcf_classes({{2, 16, 3}});
  EXPECT_NEAR(two.attempt_probability[0], 0.1047133, 1e-6);
  EXPECT_NEAR(two.collision_probability[0], 0.1047133, 1e-6);

  const MultiDcfSolution three = solve_dcf_classes({{3, 32, 6}});
  EXPECT_NEAR(three.attempt_probability[0], 0.0537201, 1e-6);
  EXPECT_NEAR(three.collision_probability[0], 0.1045544, 1e-6);

  const MultiDcfSolution eight = solve_dcf_classes({{8, 32, 6}});
  EXPECT_NEAR(eight.attempt_probability[0], 0.0407546, 1e-6);
  EXPECT_NEAR(eight.collision_probability[0], 0.2526776, 1e-6);
}

// --- Discrete-event simulator. ---------------------------------------------

// simulate_dcf is documented as the single-class, zero-warmup special case
// of simulate_dcf_classes with a prefix-compatible RNG stream; the raw
// counters must agree bit for bit.
TEST(MultiDcfSim, SingleClassDelegationIsBitwise) {
  for (int n : {1, 2, 4, 9}) {
    const DcfParameters params{n, 16, 6};
    const DcfSimResult single = simulate_dcf(params, 20000, 42);
    const MultiDcfSimResult multi =
        simulate_dcf_classes({{n, 16, 6}}, 20000, 0, 42);
    EXPECT_EQ(multi.transmissions[0], single.transmissions) << "n=" << n;
    EXPECT_EQ(multi.collisions[0], single.collisions) << "n=" << n;
    EXPECT_EQ(multi.slots, single.slots) << "n=" << n;
    EXPECT_EQ(multi.attempt_probability[0], single.attempt_probability);
    EXPECT_EQ(multi.collision_probability[0], single.collision_probability);
  }
}

// Degenerate-window tie-break: with W = 1 every draw is 0, so both
// stations transmit in every slot and — no capture effect — every slot is
// a collision.  Pins the all-transmitters-collide semantics documented in
// dcf_sim.hpp.
TEST(MultiDcfSim, DegenerateWindowAlwaysCollides) {
  const MultiDcfSimResult r = simulate_dcf_classes({{2, 1, 0}}, 5000, 0, 7);
  EXPECT_EQ(r.slots, 5000u);
  EXPECT_EQ(r.busy_slots, 5000u);
  EXPECT_EQ(r.success_slots, 0u);
  EXPECT_EQ(r.transmissions[0], 10000u);
  EXPECT_EQ(r.collisions[0], 10000u);
  EXPECT_EQ(r.attempt_probability[0], 1.0);
  EXPECT_EQ(r.collision_probability[0], 1.0);
}

TEST(MultiDcfSim, WarmupSlotsAreExcludedFromMeasurement) {
  const MultiDcfSimResult r =
      simulate_dcf_classes({{3, 16, 6}}, 8000, 2000, 11);
  EXPECT_EQ(r.slots, 8000u);
  EXPECT_LE(r.success_slots, r.busy_slots);
  EXPECT_LE(r.busy_slots, r.slots);
  // The same population measured with and without warmup must differ: the
  // cold start (all stations at stage 0) inflates early attempt rates.
  const MultiDcfSimResult cold =
      simulate_dcf_classes({{3, 16, 6}}, 8000, 0, 11);
  EXPECT_NE(r.transmissions[0], cold.transmissions[0]);
}

// Measured 2- and 3-station statistics against the fixed point — the
// regression the historical one-station-only usage never exercised.
TEST(MultiDcfSim, TwoAndThreeStationBianchiRegression) {
  {
    const std::vector<DcfClass> cell{{2, 16, 3}};
    const MultiDcfSolution model = solve_dcf_classes(cell);
    const MultiDcfSimResult sim =
        simulate_dcf_classes(cell, 200000, 10000, 1234);
    EXPECT_NEAR(sim.attempt_probability[0], model.attempt_probability[0],
                0.01);
    EXPECT_NEAR(sim.collision_probability[0], model.collision_probability[0],
                0.02);
  }
  {
    const std::vector<DcfClass> cell{{3, 32, 6}};
    const MultiDcfSolution model = solve_dcf_classes(cell);
    const MultiDcfSimResult sim =
        simulate_dcf_classes(cell, 200000, 10000, 99);
    EXPECT_NEAR(sim.attempt_probability[0], model.attempt_probability[0],
                0.01);
    EXPECT_NEAR(sim.collision_probability[0], model.collision_probability[0],
                0.02);
  }
}

// Per-class accounting in a heterogeneous cell: the wider background
// window must measurably attempt less often than the video class.
TEST(MultiDcfSim, HeterogeneousClassesAreMeasuredSeparately) {
  const std::vector<DcfClass> cell{{3, 16, 6}, {3, 64, 6}};
  const MultiDcfSimResult r = simulate_dcf_classes(cell, 100000, 5000, 5);
  ASSERT_EQ(r.attempt_probability.size(), 2u);
  EXPECT_GT(r.transmissions[0], r.transmissions[1]);
  EXPECT_GT(r.attempt_probability[0], r.attempt_probability[1]);
  EXPECT_LE(r.collisions[0], r.transmissions[0]);
  EXPECT_LE(r.collisions[1], r.transmissions[1]);
  EXPECT_LE(r.success_slots, r.busy_slots);
  EXPECT_LE(r.busy_slots, r.slots);
}

}  // namespace
}  // namespace tv::wifi
