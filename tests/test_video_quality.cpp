#include "video/quality.hpp"

#include <gtest/gtest.h>

#include "video/frame.hpp"

namespace tv::video {
namespace {

TEST(Mos, EvalVidBands) {
  EXPECT_EQ(mos_from_psnr(45.0), 5);
  EXPECT_EQ(mos_from_psnr(37.1), 5);
  EXPECT_EQ(mos_from_psnr(36.9), 4);
  EXPECT_EQ(mos_from_psnr(31.0), 3);
  EXPECT_EQ(mos_from_psnr(25.0), 2);
  EXPECT_EQ(mos_from_psnr(20.0), 1);
  EXPECT_EQ(mos_from_psnr(5.0), 1);
}

TEST(SequenceMos, PerFrameBandsAreAveraged) {
  Frame ref(32, 32);
  ref.fill(100, 128, 128);
  Frame perfect = ref;           // PSNR inf -> band 5.
  Frame bad(32, 32);
  bad.fill(200, 128, 128);       // MSE 10000 -> ~8 dB -> band 1.
  const double mos = sequence_mos({ref, ref}, {perfect, bad});
  EXPECT_DOUBLE_EQ(mos, 3.0);    // (5 + 1) / 2 -> fractional MOS possible.
}

TEST(SequenceMos, RejectsMismatchedLengths) {
  Frame f(32, 32);
  EXPECT_THROW((void)sequence_mos({f, f}, {f}), std::invalid_argument);
  EXPECT_THROW((void)sequence_mos({}, {}), std::invalid_argument);
}

TEST(PsnrTrace, CapsInfiniteValues) {
  Frame ref(32, 32);
  ref.fill(128, 128, 128);
  const auto trace = psnr_trace({ref}, {ref}, 60.0);
  ASSERT_EQ(trace.size(), 1u);
  EXPECT_DOUBLE_EQ(trace[0], 60.0);
}

TEST(PsnrTrace, ReportsPerFrameValues) {
  Frame ref(32, 32);
  ref.fill(100, 128, 128);
  Frame off(32, 32);
  off.fill(110, 128, 128);  // MSE 100 -> 28.13 dB.
  const auto trace = psnr_trace({ref, ref}, {ref, off});
  EXPECT_DOUBLE_EQ(trace[0], 60.0);
  EXPECT_NEAR(trace[1], 28.13, 0.01);
}

}  // namespace
}  // namespace tv::video
