#include "sim/eavesdropper_sim.hpp"

#include <gtest/gtest.h>

#include <cmath>
#include <numeric>
#include <stdexcept>

#include "distortion/frame_success.hpp"
#include "distortion/gop_model.hpp"
#include "util/polynomial.hpp"

namespace tv::sim {
namespace {

EavesdropperSimSpec base_spec() {
  EavesdropperSimSpec spec;
  spec.gop_size = 30;
  spec.n_gops = 10;
  spec.repetitions = 300;
  spec.i_packets_per_frame = 12;
  spec.p_packets_per_frame = 3;
  spec.sensitivity_fraction = 0.6;
  spec.packet_success_rate = 0.9;
  spec.base_mse = 4.0;
  spec.null_reference_mse = 900.0;
  spec.inter = distortion::DistanceDistortion{
      util::Polynomial{{0.0, 14.0, -0.15}}, 30.0};
  spec.d_min = spec.inter(1.0);
  spec.d_max = spec.inter(static_cast<double>(spec.gop_size - 1));
  spec.age_cap_gops = 8;
  spec.seed = 11;
  return spec;
}

TEST(EavesdropperSim, DeterministicInSeed) {
  const EavesdropperSimSpec spec = base_spec();
  const EavesdropperSimResult a = simulate_eavesdropper(spec);
  const EavesdropperSimResult b = simulate_eavesdropper(spec);
  EXPECT_EQ(a.flow_mse.mean(), b.flow_mse.mean());
  EXPECT_EQ(a.gop_state_pmf, b.gop_state_pmf);

  EavesdropperSimSpec other = spec;
  other.seed = 12;
  EXPECT_NE(simulate_eavesdropper(other).flow_mse.mean(), a.flow_mse.mean());
}

TEST(EavesdropperSim, PerfectChannelRecoversEverything) {
  EavesdropperSimSpec spec = base_spec();
  spec.packet_success_rate = 1.0;
  const EavesdropperSimResult r = simulate_eavesdropper(spec);
  EXPECT_DOUBLE_EQ(r.i_frame_success.mean(), 1.0);
  EXPECT_DOUBLE_EQ(r.p_frame_success.mean(), 1.0);
  EXPECT_DOUBLE_EQ(r.gop_state_pmf[0], 1.0);
  // Every GOP intact: the flow distortion collapses to the coding floor.
  EXPECT_DOUBLE_EQ(r.flow_mse.mean(), spec.base_mse);
}

TEST(EavesdropperSim, FullyEncryptedIFramesKillEveryGop) {
  EavesdropperSimSpec spec = base_spec();
  spec.packet_success_rate = 1.0;
  spec.q_i = 1.0;
  const EavesdropperSimResult r = simulate_eavesdropper(spec);
  EXPECT_DOUBLE_EQ(r.i_frame_success.mean(), 0.0);
  EXPECT_DOUBLE_EQ(r.gop_state_pmf[static_cast<std::size_t>(spec.gop_size)],
                   1.0);
  // No reference frame is ever displayed, so every GOP is Case 3.
  EXPECT_DOUBLE_EQ(r.flow_mse.mean(),
                   spec.null_reference_mse + spec.base_mse);
}

TEST(EavesdropperSim, PmfIsNormalizedAndCountsAdd) {
  const EavesdropperSimSpec spec = base_spec();
  const EavesdropperSimResult r = simulate_eavesdropper(spec);
  ASSERT_EQ(r.gop_state_pmf.size(),
            static_cast<std::size_t>(spec.gop_size) + 1);
  const double total = std::accumulate(r.gop_state_pmf.begin(),
                                       r.gop_state_pmf.end(), 0.0);
  EXPECT_NEAR(total, 1.0, 1e-12);
  EXPECT_EQ(r.gops, static_cast<std::uint64_t>(spec.n_gops) *
                        static_cast<std::uint64_t>(spec.repetitions));
  EXPECT_EQ(r.frames, r.gops * static_cast<std::uint64_t>(spec.gop_size));
}

// Frame recovery is a pure binomial event, so the empirical success rates
// must match the closed form of eq. (20) within the iid flow CI.
TEST(EavesdropperSim, FrameSuccessMatchesBinomialTail) {
  const EavesdropperSimSpec spec = base_spec();
  const EavesdropperSimResult r = simulate_eavesdropper(spec);
  const double p_d = spec.packet_success_rate;  // q = 0: all decryptable.
  const double p_i = distortion::frame_success_probability(
      spec.i_packets_per_frame,
      distortion::sensitivity_from_fraction(spec.i_packets_per_frame,
                                            spec.sensitivity_fraction),
      p_d);
  const double p_p = distortion::frame_success_probability(
      spec.p_packets_per_frame,
      distortion::sensitivity_from_fraction(spec.p_packets_per_frame,
                                            spec.sensitivity_fraction),
      p_d);
  EXPECT_NEAR(r.i_frame_success.mean(), p_i,
              4.0 * r.i_frame_success.stderr_mean() + 1e-3);
  EXPECT_NEAR(r.p_frame_success.mean(), p_p,
              4.0 * r.p_frame_success.stderr_mean() + 1e-3);

  // The first-loss occupancy follows the geometric-style chain of eq. (22);
  // check the fully-intact slot, whose analytic value is P_I * P_P^{G-1}.
  const double intact = p_i * std::pow(p_p, spec.gop_size - 1);
  const double sd = std::sqrt(intact * (1.0 - intact) /
                              static_cast<double>(r.gops));
  EXPECT_NEAR(r.gop_state_pmf[0], intact, 4.0 * sd + 2e-3);
}

TEST(EavesdropperSim, RejectsInvalidSpecs) {
  EavesdropperSimSpec tiny = base_spec();
  tiny.gop_size = 1;
  EXPECT_THROW(tiny.validate(), std::invalid_argument);

  EavesdropperSimSpec bad_prob = base_spec();
  bad_prob.q_i = 1.5;
  EXPECT_THROW(bad_prob.validate(), std::invalid_argument);

  EavesdropperSimSpec bad_reps = base_spec();
  bad_reps.repetitions = 0;
  EXPECT_THROW((void)simulate_eavesdropper(bad_reps), std::invalid_argument);
}

}  // namespace
}  // namespace tv::sim
