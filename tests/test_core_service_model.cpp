// The shared service law (core::ServiceModel): the single owner of the
// per-packet T_e/T_b/T_t draws of eq. (3).  These tests pin the draw
// primitives bit-for-bit against the underlying Rng calls (so neither
// consumer can drift from the other) and cross-check that the transfer
// pipeline's per-packet timings are exactly what the model's stage events
// report.
#include "core/service_model.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <map>
#include <string_view>
#include <vector>

#include "core/pipeline.hpp"
#include "core/trace.hpp"
#include "util/arena.hpp"

namespace tv::core {
namespace {

/// Trace sink that keeps every event.
class CollectSink final : public TraceSink {
 public:
  void event(const TraceEvent& e) override { events.push_back(e); }
  std::vector<TraceEvent> events;
};

TEST(ServiceModel, EncryptionIsTheClampedGaussianDraw) {
  util::Rng a{42};
  util::Rng b{42};
  // Exactly one Gaussian variate, clamped at zero (eq. 15).
  const double drawn = ServiceModel::draw_encryption(a, 4.5e-4, 5e-5);
  const double expected = std::max(0.0, b.gaussian(4.5e-4, 5e-5));
  EXPECT_EQ(drawn, expected);
  // The streams stay aligned afterwards: next raw words agree.
  EXPECT_EQ(a(), b());
}

TEST(ServiceModel, EncryptionClampsNegativeTailsToZero) {
  util::Rng rng{7};
  // A hugely negative mean forces the clamp on every draw.
  for (int i = 0; i < 64; ++i) {
    EXPECT_EQ(ServiceModel::draw_encryption(rng, -1.0, 1e-3), 0.0);
  }
}

TEST(ServiceModel, DeviceConvenienceUsesCalibratedMeanAndJitter) {
  const DeviceProfile device = samsung_galaxy_s2();
  const auto alg = crypto::Algorithm::kAes256;
  util::Rng a{9};
  util::Rng b{9};
  const double drawn = ServiceModel::draw_encryption(a, device, alg, 1400);
  const double expected = ServiceModel::draw_encryption(
      b, device.encryption_seconds(alg, 1400),
      device.speed(alg).jitter_stddev_s);
  EXPECT_EQ(drawn, expected);
}

TEST(ServiceModel, BackoffDrawsGeometricCollisionsThenExpWaits) {
  ServiceModel model;
  model.mac_success_prob = 0.6;
  model.backoff_rate = 500.0;
  util::Rng a{12};
  util::Rng b{12};
  const auto draw = model.draw_backoff(a);
  // Replay the documented draw order against the raw Rng.
  const std::uint64_t collisions = b.geometric_failures(0.6);
  double total = 0.0;
  for (std::uint64_t c = 0; c < collisions; ++c) total += b.exponential(500.0);
  EXPECT_EQ(draw.collisions, collisions);
  EXPECT_EQ(draw.total_s, total);
  EXPECT_EQ(a(), b());
}

TEST(ServiceModel, BackoffFeedsEveryAccumulatorPerWait) {
  // The FP contract: each wait is added to the clock and the accumulator as
  // it is drawn, so running totals round exactly as if the caller had
  // inlined the loop.  Start both from nonzero values where the rounding
  // order is observable.
  ServiceModel model;
  model.mac_success_prob = 0.25;  // several collisions on average.
  model.backoff_rate = 100.0;
  for (std::uint64_t seed = 0; seed < 32; ++seed) {
    util::Rng a{seed};
    util::Rng b{seed};
    double clock = 123.456;
    double accumulator = 0.789;
    const auto draw = model.draw_backoff(a, &clock, &accumulator);

    double expected_clock = 123.456;
    double expected_acc = 0.789;
    const std::uint64_t collisions = b.geometric_failures(0.25);
    for (std::uint64_t c = 0; c < collisions; ++c) {
      const double wait = b.exponential(100.0);
      expected_clock += wait;
      expected_acc += wait;
    }
    EXPECT_EQ(draw.collisions, collisions);
    EXPECT_EQ(clock, expected_clock);
    EXPECT_EQ(accumulator, expected_acc);
  }
}

TEST(ServiceModel, TransmissionIsTheClampedGaussianDraw) {
  util::Rng a{77};
  util::Rng b{77};
  EXPECT_EQ(ServiceModel::draw_transmission(a, 1.2e-3, 1.2e-4),
            std::max(0.0, b.gaussian(1.2e-3, 1.2e-4)));
  EXPECT_EQ(ServiceModel::draw_transmission(a, -5.0, 1e-6), 0.0);
}

// --- Pipeline-side equivalence: the service events the model emits are ---
// --- exactly the quantities simulate_transfer records per packet.      ---

util::Arena& test_arena() {
  static util::Arena arena;  // lives for the whole test binary.
  return arena;
}

std::vector<net::VideoPacket> encrypted_packets() {
  std::vector<net::VideoPacket> packets;
  for (int f = 0; f < 8; ++f) {
    net::VideoPacket p;
    p.sequence = static_cast<std::uint16_t>(f);
    p.frame_index = f;
    p.fragment_index = 0;
    p.fragment_count = 1;
    p.is_i_frame = f % 4 == 0;
    p.encrypted = p.is_i_frame;
    p.allocate_payload(test_arena(), p.is_i_frame ? 1400 : 300, 0x5a);
    packets.push_back(std::move(p));
  }
  return packets;
}

TEST(ServiceModelEquivalence, PipelineTimingsMatchTheTracedDraws) {
  PipelineConfig config;
  config.device = samsung_galaxy_s2();
  CollectSink sink;
  const auto packets = encrypted_packets();
  const auto result = simulate_transfer(config, packets, 31, &sink);

  std::map<std::int64_t, double> encrypt_s;
  std::map<std::int64_t, double> service_sum_s;
  for (const auto& e : sink.events) {
    if (e.stage != Stage::kService) continue;
    if (std::string_view{e.kind} == "encrypt") encrypt_s[e.packet] = e.value_s;
    service_sum_s[e.packet] += e.value_s;
  }
  for (std::size_t i = 0; i < packets.size(); ++i) {
    const auto& t = result.timings[i];
    const auto idx = static_cast<std::int64_t>(i);
    // T_e lands bit-for-bit in the packet's timing record; clear packets
    // draw no encryption event at all.
    if (packets[i].encrypted) {
      ASSERT_TRUE(encrypt_s.count(idx));
      EXPECT_EQ(encrypt_s[idx], t.encryption_s);
    } else {
      EXPECT_FALSE(encrypt_s.count(idx));
    }
    // The traced T_e + T_b + T_t account for the whole service interval
    // (UDP, lossless: one attempt, no recovery waits, no ARQ overhead).
    EXPECT_NEAR(t.completion - t.service_start, service_sum_s[idx], 1e-12);
  }
}

TEST(ServiceModelEquivalence, TracingDoesNotPerturbTheTransfer) {
  PipelineConfig config;
  config.device = samsung_galaxy_s2();
  const auto packets = encrypted_packets();
  CollectSink sink;
  const auto traced = simulate_transfer(config, packets, 555, &sink);
  const auto plain = simulate_transfer(config, packets, 555, nullptr);
  ASSERT_EQ(traced.timings.size(), plain.timings.size());
  for (std::size_t i = 0; i < plain.timings.size(); ++i) {
    EXPECT_EQ(traced.timings[i].arrival, plain.timings[i].arrival);
    EXPECT_EQ(traced.timings[i].completion, plain.timings[i].completion);
    EXPECT_EQ(traced.timings[i].encryption_s, plain.timings[i].encryption_s);
  }
  EXPECT_FALSE(sink.events.empty());
}

}  // namespace
}  // namespace tv::core
