#include "util/thread_pool.hpp"

#include <gtest/gtest.h>

#include <atomic>
#include <numeric>
#include <stdexcept>
#include <vector>

namespace tv::util {
namespace {

TEST(ThreadPool, DefaultThreadCountIsAtLeastOne) {
  EXPECT_GE(ThreadPool::default_thread_count(), 1u);
  ThreadPool pool;
  EXPECT_GE(pool.thread_count(), 1u);
}

TEST(ThreadPool, SubmitReturnsValue) {
  ThreadPool pool{4};
  auto future = pool.submit([] { return 6 * 7; });
  EXPECT_EQ(future.get(), 42);
}

TEST(ThreadPool, SubmitPropagatesExceptionThroughFuture) {
  ThreadPool pool{2};
  auto future = pool.submit(
      []() -> int { throw std::runtime_error{"boom"}; });
  EXPECT_THROW((void)future.get(), std::runtime_error);
}

TEST(ThreadPool, ManySubmissionsAllRun) {
  ThreadPool pool{4};
  constexpr int kTasks = 200;
  std::vector<std::future<int>> futures;
  futures.reserve(kTasks);
  for (int i = 0; i < kTasks; ++i) {
    futures.push_back(pool.submit([i] { return i; }));
  }
  long long sum = 0;
  for (auto& f : futures) sum += f.get();
  EXPECT_EQ(sum, static_cast<long long>(kTasks) * (kTasks - 1) / 2);
}

TEST(ThreadPool, ParallelForCoversEveryIndexExactlyOnce) {
  ThreadPool pool{4};
  constexpr std::size_t kN = 1000;
  std::vector<std::atomic<int>> hits(kN);
  pool.parallel_for(kN, [&](std::size_t i) { hits[i].fetch_add(1); });
  for (std::size_t i = 0; i < kN; ++i) EXPECT_EQ(hits[i].load(), 1) << i;
}

TEST(ThreadPool, ParallelForZeroAndOne) {
  ThreadPool pool{4};
  int calls = 0;
  pool.parallel_for(0, [&](std::size_t) { ++calls; });
  EXPECT_EQ(calls, 0);
  pool.parallel_for(1, [&](std::size_t i) {
    EXPECT_EQ(i, 0u);
    ++calls;
  });
  EXPECT_EQ(calls, 1);
}

TEST(ThreadPool, ParallelForPropagatesException) {
  ThreadPool pool{4};
  EXPECT_THROW(pool.parallel_for(64,
                                 [](std::size_t i) {
                                   if (i == 17) {
                                     throw std::runtime_error{"bad index"};
                                   }
                                 }),
               std::runtime_error);
}

TEST(ThreadPool, NestedParallelForDoesNotDeadlock) {
  ThreadPool pool{2};  // fewer workers than outer iterations.
  std::atomic<int> total{0};
  pool.parallel_for(8, [&](std::size_t) {
    pool.parallel_for(8, [&](std::size_t) { total.fetch_add(1); });
  });
  EXPECT_EQ(total.load(), 64);
}

TEST(ThreadPool, DestructorDrainsQueuedTasks) {
  std::atomic<int> ran{0};
  {
    ThreadPool pool{1};
    // A slow head task backs up the queue so later tasks are still queued
    // when the destructor runs; all of them must still execute.
    for (int i = 0; i < 50; ++i) {
      (void)pool.submit([&ran] { ran.fetch_add(1); });
    }
  }
  EXPECT_EQ(ran.load(), 50);
}

TEST(ThreadPool, RunPendingTaskFromOutside) {
  ThreadPool pool{1};
  // Block the lone worker so a queued task is guaranteed pending, then
  // help from this thread.  Wait until the worker has *started* the
  // blocker before queueing — otherwise the helper below could pop the
  // blocker itself and spin on `release` forever.
  std::atomic<bool> started{false};
  std::atomic<bool> release{false};
  auto blocker = pool.submit([&] {
    started.store(true);
    while (!release.load()) std::this_thread::yield();
  });
  while (!started.load()) std::this_thread::yield();
  std::atomic<bool> ran{false};
  auto queued = pool.submit([&] { ran.store(true); });
  while (!ran.load()) {
    if (!pool.run_pending_task()) std::this_thread::yield();
  }
  release.store(true);
  blocker.get();
  queued.get();
  EXPECT_TRUE(ran.load());
}

}  // namespace
}  // namespace tv::util
